package sqlstate

import (
	"bytes"
	"testing"
)

func TestPartitionKeysRouteByTable(t *testing.T) {
	cases := []struct {
		name string
		op   []byte
		want string // "" = nil keyset (unkeyed)
	}{
		{"create", EncodeExec("CREATE TABLE accounts (id INTEGER, balance INTEGER)"), "table:accounts"},
		{"drop", EncodeExec("DROP TABLE IF EXISTS accounts"), "table:accounts"},
		{"insert", EncodeExec("INSERT INTO accounts (id, balance) VALUES (1, 10)"), "table:accounts"},
		{"update", EncodeExec("UPDATE accounts SET balance = 11 WHERE id = 1"), "table:accounts"},
		{"delete", EncodeExec("DELETE FROM accounts WHERE id = 1"), "table:accounts"},
		{"select", EncodeQuery("SELECT balance FROM accounts WHERE id = 1"), "table:accounts"},
		{"select other table", EncodeQuery("SELECT * FROM audit_log"), "table:audit_log"},
		{"tableless select", EncodeQuery("SELECT 1+1"), ""},
		{"txn control", EncodeExec("BEGIN"), ""},
		{"parse error", EncodeExec("FROB THE KNOB"), ""},
		{"malformed op", []byte{0xff}, ""},
	}
	for _, tc := range cases {
		keys := PartitionKeys(tc.op)
		if tc.want == "" {
			if keys != nil {
				t.Fatalf("%s: keyset = %q, want nil", tc.name, keys)
			}
			continue
		}
		if len(keys) != 1 || !bytes.Equal(keys[0], []byte(tc.want)) {
			t.Fatalf("%s: keyset = %q, want [%q]", tc.name, keys, tc.want)
		}
	}

	// Placement invariant the router relies on: every statement over one
	// table produces the same key, whatever the statement kind.
	if !bytes.Equal(PartitionKeys(cases[0].op)[0], PartitionKeys(cases[5].op)[0]) {
		t.Fatal("CREATE and SELECT over the same table produced different keys")
	}
}
