package sqlstate

import (
	"repro/internal/sqldb"
)

// shardPlanCacheCap bounds the per-app classification cache; workloads
// repeat statement templates, so this stays tiny in practice. The cache
// is dropped wholesale when full (no eviction bookkeeping).
const shardPlanCacheCap = 4096

// shardPlan caches one statement's classification so the SQL is parsed
// once per template, not once in Keys (on the protocol loop) and again
// in Execute (on the shard worker).
type shardPlan struct {
	table      string
	shardable  bool
	txnControl bool
	key        [][]byte // precomputed conflict keyset (shardable only)
}

// Keys implements core.Sharder with per-table conflict keysets for
// single-table read-only statements; everything else is a barrier.
//
// Only nondeterminism-free single-table SELECTs get a keyset. Mutating
// statements can never be keyed, whatever tables they name: the embedded
// engine allocates pages from a database-wide freelist, so two writes —
// even into different tables — do not commute at the byte level and would
// break the checkpoint-digest contract if they interleaved differently
// across replicas. Reads write nothing, so spreading them per-table is
// safe; the table key still serializes them behind any scheduled write
// (all writes being barriers) and spreads query execution across shard
// workers. SELECTs calling now()/random() are excluded because their
// result depends on the per-operation agreed nondeterminism values, which
// the concurrent read path does not install (see Execute).
func (a *App) Keys(op []byte) [][]byte {
	if a.err != nil {
		return nil
	}
	kind, sql, err := decodeOpHeader(op)
	if err != nil || kind != opQuery {
		return nil
	}
	// The keyset is precomputed in the cached plan: Keys runs per
	// committed operation on the protocol loop — keep it allocation-free
	// for repeated statement templates.
	return a.classify(sql).key
}

// ObserveExecShards implements core.ShardObserver: Execute routes
// shardable queries down the concurrency-safe private-pager path only
// when the engine can actually run queries in parallel; serial
// deployments keep the long-lived cached handle.
func (a *App) ObserveExecShards(shards int) {
	a.sharded.Store(shards > 1)
}

// classify is parseStatement behind the app's plan cache: the protocol
// loop (Keys) and the shard workers (Execute) both classify every
// statement, and workloads repeat statement templates — one parse per
// template instead of one per call.
func (a *App) classify(sql string) shardPlan {
	a.planMu.Lock()
	plan, ok := a.plans[sql]
	a.planMu.Unlock()
	if !ok {
		plan = parseStatement(sql)
		a.planMu.Lock()
		if len(a.plans) >= shardPlanCacheCap {
			a.plans = make(map[string]shardPlan, shardPlanCacheCap)
		}
		if a.plans == nil {
			a.plans = make(map[string]shardPlan, 64)
		}
		a.plans[sql] = plan
		a.planMu.Unlock()
	}
	return plan
}

// parseStatement classifies one statement: whether it is transaction
// control (rejected on the replicated path), and whether it is a SELECT
// confined to a single table and free of the agreed-nondeterminism
// functions — such a statement may execute concurrently with other
// shardable SELECTs over a private pager.
func parseStatement(sql string) shardPlan {
	st, _, err := sqldb.Parse(sql)
	if err != nil {
		return shardPlan{} // let the engine produce its own parse error
	}
	switch st.(type) {
	case *sqldb.BeginStmt, *sqldb.CommitStmt, *sqldb.RollbackStmt:
		return shardPlan{txnControl: true}
	}
	sel, ok := st.(*sqldb.SelectStmt)
	if !ok || sel.Table == "" {
		return shardPlan{}
	}
	for _, it := range sel.Items {
		if !it.Star && exprDeterministic(it.Expr) != nil {
			return shardPlan{}
		}
	}
	if exprDeterministic(sel.Where) != nil {
		return shardPlan{}
	}
	for _, ob := range sel.OrderBy {
		if exprDeterministic(ob.Expr) != nil {
			return shardPlan{}
		}
	}
	if exprDeterministic(sel.Limit) != nil {
		return shardPlan{}
	}
	return shardPlan{
		table:     sel.Table,
		shardable: true,
		key:       [][]byte{[]byte("table:" + sel.Table)},
	}
}

// nonDetCall marks an expression tree containing now() or random().
type nonDetCall struct{}

func (nonDetCall) Error() string { return "nondeterministic call" }

// exprDeterministic walks an expression and returns non-nil if it calls a
// function whose value comes from the agreed nondeterminism inputs.
func exprDeterministic(e sqldb.Expr) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqldb.UnaryExpr:
		return exprDeterministic(x.E)
	case *sqldb.BinaryExpr:
		if err := exprDeterministic(x.L); err != nil {
			return err
		}
		return exprDeterministic(x.R)
	case *sqldb.CallExpr:
		if x.Name == "now" || x.Name == "random" {
			return nonDetCall{}
		}
		for _, arg := range x.Args {
			if err := exprDeterministic(arg); err != nil {
				return err
			}
		}
		return nil
	default:
		return nil
	}
}
