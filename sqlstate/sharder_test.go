package sqlstate

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/internal/state"
)

func TestSharderKeys(t *testing.T) {
	app := NewApp(Options{})
	cases := []struct {
		name string
		op   []byte
		want []byte // nil = barrier
	}{
		{"single-table select", EncodeQuery("SELECT * FROM votes"), []byte("table:votes")},
		{"select with where", EncodeQuery("SELECT voter FROM votes WHERE vote = ?", sqldb.Text("yes")), []byte("table:votes")},
		{"select with order/limit", EncodeQuery("SELECT voter FROM votes ORDER BY voter LIMIT 10"), []byte("table:votes")},
		{"aggregate select", EncodeQuery("SELECT count(*) FROM votes"), []byte("table:votes")},
		{"tableless select", EncodeQuery("SELECT 1+1"), nil},
		{"nondet now()", EncodeQuery("SELECT voter FROM votes WHERE ts < now()"), nil},
		{"nondet random()", EncodeQuery("SELECT random()"), nil},
		{"insert is a barrier", EncodeExec("INSERT INTO votes (voter) VALUES (?)", sqldb.Text("v")), nil},
		{"update is a barrier", EncodeExec("UPDATE votes SET vote = ? WHERE voter = ?", sqldb.Text("no"), sqldb.Text("v")), nil},
		{"delete is a barrier", EncodeExec("DELETE FROM votes"), nil},
		{"create is a barrier", EncodeExec("CREATE TABLE t (a INTEGER)"), nil},
		{"malformed op", []byte{0xff, 0x01}, nil},
		{"unparsable sql", EncodeQuery("SELEC oops"), nil},
	}
	for _, tc := range cases {
		keys := app.Keys(tc.op)
		if tc.want == nil {
			if keys != nil {
				t.Errorf("%s: got keys %q, want barrier", tc.name, keys)
			}
			continue
		}
		if len(keys) != 1 || !bytes.Equal(keys[0], tc.want) {
			t.Errorf("%s: got keys %q, want [%q]", tc.name, keys, tc.want)
		}
	}
}

// TestTxnControlRejectedIdentically: explicit transaction control is
// rejected deterministically — a BEGIN that slipped through would hold
// the shared handle's transaction open across ordered operations,
// wedging every later Reload — and serial and sharded replicas must
// answer byte-identically before and after (reply-stream parity across
// ExecShards).
func TestTxnControlRejectedIdentically(t *testing.T) {
	newApp := func() *App {
		region, err := state.NewRegion(1<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		app := NewApp(Options{InitSQL: []string{"CREATE TABLE t (a INTEGER)"}})
		app.AttachState(region)
		if app.err != nil {
			t.Fatal(app.err)
		}
		return app
	}
	nd := core.NonDetValues{}
	query := EncodeQuery("SELECT a FROM t")

	serial := newApp()
	sharded := newApp()
	sharded.ObserveExecShards(4) // what the replica reports when sharding

	for _, sql := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		ra := serial.Execute(EncodeExec(sql), nd, false)
		rb := sharded.Execute(EncodeExec(sql), nd, false)
		if !bytes.Equal(ra, rb) {
			t.Fatalf("%s: reply streams diverge: %q vs %q", sql, ra, rb)
		}
		if _, err := DecodeResponse(ra); err == nil {
			t.Fatalf("%s: transaction control must be rejected", sql)
		}
		if serial.DB().Pager().InTransaction() {
			t.Fatalf("%s: left a transaction open", sql)
		}
	}

	// The service keeps working afterwards, identically on both paths.
	for _, app := range []*App{serial, sharded} {
		if _, err := DecodeResponse(app.Execute(EncodeExec("INSERT INTO t (a) VALUES (7)"), nd, false)); err != nil {
			t.Fatalf("insert after rejected txn control: %v", err)
		}
	}
	ra, aerr := DecodeResponse(serial.Execute(query, nd, false))
	rb, berr := DecodeResponse(sharded.Execute(query, nd, false))
	if aerr != nil || berr != nil {
		t.Fatalf("query: %v / %v", aerr, berr)
	}
	if len(ra.Rows.Data) != 1 || len(rb.Rows.Data) != 1 || ra.Rows.Data[0][0].I != 7 || rb.Rows.Data[0][0].I != 7 {
		t.Fatalf("rows diverge: %+v vs %+v", ra.Rows.Data, rb.Rows.Data)
	}
}
