package sqlstate

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/internal/state"
)

func testRegion(t *testing.T) *state.Region {
	t.Helper()
	r, err := state.NewRegion(1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegionFileReadWrite(t *testing.T) {
	region := testRegion(t)
	vfs, err := NewVFS(region, "db", "")
	if err != nil {
		t.Fatal(err)
	}
	defer vfs.Close()
	f, err := vfs.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 0 {
		t.Fatalf("fresh db size = %d", size)
	}
	data := []byte("hello replicated world")
	if _, err := f.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 122 {
		t.Fatalf("logical size = %d, want 122", size)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// The bytes live in the region (replicated).
	regionBytes := make([]byte, len(data))
	if _, err := region.ReadAt(regionBytes, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(regionBytes, data) {
		t.Fatal("database bytes must live in the replicated region")
	}
	// Truncation zeroes the tail (canonical digests).
	if err := f.Truncate(105); err != nil {
		t.Fatal(err)
	}
	if size, _ := f.Size(); size != 105 {
		t.Fatalf("size after truncate = %d", size)
	}
	tail := make([]byte, 10)
	if _, err := region.ReadAt(tail, 105); err != nil {
		t.Fatal(err)
	}
	for _, b := range tail {
		if b != 0 {
			t.Fatal("truncated range must be zeroed")
		}
	}
}

func TestRegionFileCapacity(t *testing.T) {
	region := testRegion(t)
	vfs, err := NewVFS(region, "db", "")
	if err != nil {
		t.Fatal(err)
	}
	defer vfs.Close()
	f, err := vfs.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	// The last 8 bytes are VFS bookkeeping: writing into them must fail.
	if _, err := f.WriteAt([]byte("x"), region.Size()-4); err == nil {
		t.Fatal("write into the reserved tail must fail")
	}
	if err := f.Truncate(region.Size()); err == nil {
		t.Fatal("truncate beyond capacity must fail")
	}
}

func TestVFSNonDeterminismRouting(t *testing.T) {
	region := testRegion(t)
	vfs, err := NewVFS(region, "db", "")
	if err != nil {
		t.Fatal(err)
	}
	defer vfs.Close()
	nd := core.NonDetValues{Time: time.Unix(42, 99)}
	nd.Rand[0] = 7
	vfs.SetNonDet(nd)
	if !vfs.Now().Equal(time.Unix(42, 99)) {
		t.Fatalf("Now() = %v", vfs.Now())
	}
	var a, b [16]byte
	if err := vfs.Rand(a[:]); err != nil {
		t.Fatal(err)
	}
	if err := vfs.Rand(b[:]); err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("the random stream must advance")
	}
	// Re-setting the same non-determinism resets the stream: a second
	// replica executing the same request sees the same values.
	vfs.SetNonDet(nd)
	var a2 [16]byte
	if err := vfs.Rand(a2[:]); err != nil {
		t.Fatal(err)
	}
	if a != a2 {
		t.Fatal("the random stream must be a pure function of the agreed seed")
	}
	// Different seed, different stream.
	nd.Rand[0] = 8
	vfs.SetNonDet(nd)
	var c [16]byte
	if err := vfs.Rand(c[:]); err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different agreed seeds must give different streams")
	}
}

func TestVFSJournalOnDisk(t *testing.T) {
	region := testRegion(t)
	vfs, err := NewVFS(region, "db", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer vfs.Close()
	jf, err := vfs.Open("db-journal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteAt([]byte("journal"), 0); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	ok, err := vfs.Exists("db-journal")
	if err != nil || !ok {
		t.Fatalf("journal must exist on disk: %v %v", ok, err)
	}
	if err := vfs.Delete("db-journal"); err != nil {
		t.Fatal(err)
	}
	ok, _ = vfs.Exists("db-journal")
	if ok {
		t.Fatal("journal must be deletable")
	}
	if err := vfs.Delete("db"); err == nil {
		t.Fatal("the region database must not be deletable")
	}
}

func TestVFSDiskImageSync(t *testing.T) {
	region := testRegion(t)
	dir := t.TempDir()
	vfs, err := NewVFS(region, "db", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer vfs.Close()
	f, err := vfs.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xCD}, 4096)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// The disk image mirrors the synced page (§3.2: the database file
	// is synchronized with its disk image on commit).
	img := make([]byte, 4096)
	if _, err := vfs.mirror.ReadAt(img, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, payload) {
		t.Fatal("disk image must match the region after Sync")
	}
}

func TestAppExecuteSQL(t *testing.T) {
	app := NewApp(Options{
		Durable: false,
		InitSQL: []string{"CREATE TABLE kv (k TEXT, v TEXT)"},
	})
	app.AttachState(testRegion(t))
	nd := core.NonDetValues{Time: time.Unix(1, 0)}

	resp := app.Execute(EncodeExec("INSERT INTO kv VALUES ('a', '1')"), nd, false)
	r, err := DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.RowsAffected != 1 {
		t.Fatalf("result %+v", r.Result)
	}

	resp = app.Execute(EncodeQuery("SELECT v FROM kv WHERE k = ?", Text("a")), nd, true)
	r, err = DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows.Data) != 1 || r.Rows.Data[0][0].S != "1" {
		t.Fatalf("rows %+v", r.Rows)
	}

	// SQL errors come back as service errors.
	resp = app.Execute(EncodeExec("INSERT INTO missing VALUES (1)"), nd, false)
	if _, err := DecodeResponse(resp); err == nil {
		t.Fatal("error must round-trip")
	}
	// Mutation on the read-only path is refused.
	resp = app.Execute(EncodeExec("INSERT INTO kv VALUES ('b', '2')"), nd, true)
	if _, err := DecodeResponse(resp); err == nil {
		t.Fatal("read-only mutation must be refused")
	}
	// Garbage op.
	resp = app.Execute([]byte{0xFF, 0x01}, nd, false)
	if _, err := DecodeResponse(resp); err == nil {
		t.Fatal("garbage op must be refused")
	}
}

func TestAppDeterministicAcrossReplicas(t *testing.T) {
	// Two replicas of the app executing the same ordered ops with the
	// same non-determinism must produce identical region digests — the
	// property checkpoint agreement depends on.
	mk := func() (*App, *state.Region) {
		region := testRegion(t)
		app := NewApp(Options{
			Durable: false,
			InitSQL: []string{"CREATE TABLE t (v TEXT, ts INTEGER, r INTEGER)"},
		})
		app.AttachState(region)
		return app, region
	}
	a1, r1 := mk()
	a2, r2 := mk()
	ops := [][]byte{
		EncodeExec("INSERT INTO t VALUES ('x', now(), random())"),
		EncodeExec("INSERT INTO t VALUES ('y', now(), random())"),
		EncodeExec("UPDATE t SET v = 'z' WHERE v = 'x'"),
		EncodeExec("DELETE FROM t WHERE v = 'y'"),
	}
	for i, op := range ops {
		nd := core.NonDetValues{Time: time.Unix(int64(100+i), 0)}
		nd.Rand[5] = byte(i)
		out1 := a1.Execute(op, nd, false)
		out2 := a2.Execute(op, nd, false)
		if !bytes.Equal(out1, out2) {
			t.Fatalf("op %d: replies diverge", i)
		}
	}
	if r1.Root() != r2.Root() {
		t.Fatal("region digests diverge: replicas could never checkpoint")
	}
}

func TestAppSurvivesRegionRewrite(t *testing.T) {
	// Simulate a state transfer: replica B's region is overwritten with
	// replica A's content; B's engine must pick it up via Reload.
	regionA := testRegion(t)
	appA := NewApp(Options{Durable: false, InitSQL: []string{"CREATE TABLE t (v INTEGER)"}})
	appA.AttachState(regionA)
	nd := core.NonDetValues{Time: time.Unix(5, 0)}
	for i := 0; i < 5; i++ {
		if _, err := DecodeResponse(appA.Execute(EncodeExec("INSERT INTO t VALUES (1)"), nd, false)); err != nil {
			t.Fatal(err)
		}
	}

	regionB := testRegion(t)
	appB := NewApp(Options{Durable: false, InitSQL: []string{"CREATE TABLE t (v INTEGER)"}})
	appB.AttachState(regionB)
	// Overwrite B's region with A's pages (what state transfer does).
	for p := 0; p < regionA.NumPages(); p++ {
		data, err := regionA.Page(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := regionB.ApplyPage(p, data); err != nil {
			t.Fatal(err)
		}
	}
	resp := appB.Execute(EncodeQuery("SELECT count(*) FROM t"), nd, false)
	r, err := DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Data[0][0].I != 5 {
		t.Fatalf("count after region rewrite = %v", r.Rows.Data)
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	r1, err := DecodeResponse(encodeResult(sqldb.Result{RowsAffected: 3, LastInsertID: 9}))
	if err != nil || r1.Result.RowsAffected != 3 || r1.Result.LastInsertID != 9 {
		t.Fatalf("%v %+v", err, r1)
	}
	rows := &sqldb.Rows{Columns: []string{"a", "b"}, Data: [][]sqldb.Value{
		{Int(1), Text("x")},
		{Null(), Bytes([]byte{9})},
	}}
	r2, err := DecodeResponse(encodeRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows.Data) != 2 || r2.Rows.Data[0][1].S != "x" || !r2.Rows.Data[1][0].IsNull() {
		t.Fatalf("%+v", r2.Rows)
	}
	if _, err := DecodeResponse(encodeError(errors.New("boom"))); err == nil || err.Error() != "boom" {
		t.Fatalf("error round trip: %v", err)
	}
	if _, err := DecodeResponse([]byte{99}); err == nil {
		t.Fatal("malformed response must error")
	}
	if _, err := DecodeResponse(nil); err == nil {
		t.Fatal("empty response must error")
	}
}

func TestDurableRequiresDiskDir(t *testing.T) {
	app := NewApp(Options{Durable: true})
	app.AttachState(testRegion(t))
	resp := app.Execute(EncodeQuery("SELECT 1"), core.NonDetValues{}, false)
	if _, err := DecodeResponse(resp); err == nil {
		t.Fatal("durable mode without a disk directory must fail loudly")
	}
}
