package sqlstate

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/internal/state"
	"repro/internal/wire"
)

// Options configures the SQL state application.
type Options struct {
	// DBName names the database file inside the region.
	DBName string
	// DiskDir hosts the rollback journal and the database's disk
	// image. Required when Durable.
	DiskDir string
	// Durable selects full ACID (rollback journal + fsync on commit);
	// false reproduces the paper's no-ACID comparison mode (§4.2).
	Durable bool
	// Authorize, if set, authorizes dynamic-client joins (§3.1): it
	// receives the identification buffer and returns the principal.
	Authorize func(appAuth []byte) (string, bool)
	// InitSQL runs once when a fresh database initializes (schema).
	InitSQL []string
}

// App replicates an embedded SQL database behind PBFT: every ordered
// request is a SQL statement executed against the region-hosted database
// (§3.2). It implements core.Application and core.StateUser; requests are
// encoded with EncodeExec/EncodeQuery and replies decoded with
// DecodeResponse.
type App struct {
	opts Options
	vfs  *VFS
	db   *sqldb.DB
	err  error // initialization failure, reported on every Execute

	// Sharding classification cache (see sharder.go), shared between
	// the protocol loop (Keys) and the shard workers (Execute).
	planMu sync.Mutex
	plans  map[string]shardPlan
	// sharded is set by ObserveExecShards (core.ShardObserver) when the
	// replica's engine actually shards; serial deployments never pay
	// the concurrent read path's per-query pager setup.
	sharded atomic.Bool
}

var (
	_ core.Application   = (*App)(nil)
	_ core.StateUser     = (*App)(nil)
	_ core.Sharder       = (*App)(nil)
	_ core.ShardObserver = (*App)(nil)
)

// NewApp builds the application; the replica attaches the state region.
func NewApp(opts Options) *App {
	if opts.DBName == "" {
		opts.DBName = "state.db"
	}
	return &App{opts: opts}
}

// AttachState implements core.StateUser: mount the VFS and open (or
// initialize) the database inside the region.
func (a *App) AttachState(region *state.Region) {
	if a.opts.Durable && a.opts.DiskDir == "" {
		a.err = errors.New("sqlstate: Durable requires DiskDir")
		return
	}
	vfs, err := NewVFS(region, a.opts.DBName, a.opts.DiskDir)
	if err != nil {
		a.err = err
		return
	}
	a.vfs = vfs
	fresh, err := vfs.Exists(a.opts.DBName)
	if err != nil {
		a.err = err
		return
	}
	db, err := sqldb.Open(vfs, a.opts.DBName, a.opts.Durable)
	if err != nil {
		a.err = err
		return
	}
	a.db = db
	if !fresh {
		for _, sql := range a.opts.InitSQL {
			if _, err := db.Exec(sql); err != nil {
				a.err = fmt.Errorf("init sql %q: %w", sql, err)
				return
			}
		}
	}
}

// DB exposes the underlying database (the paper's "standard SQLite
// handle" returned to the application, §3.2) for direct local reads; in
// a replicated deployment, mutate only through ordered requests.
func (a *App) DB() *sqldb.DB { return a.db }

// Authorize implements core.Authorizer. Without a configured hook the
// service is open: any identification buffer is accepted and used as the
// principal (still enforcing one live session per principal).
func (a *App) Authorize(appAuth []byte) (string, bool) {
	if a.opts.Authorize == nil {
		return string(appAuth), true
	}
	return a.opts.Authorize(appAuth)
}

// Execute implements core.Application: run one encoded SQL operation with
// the agreed non-determinism.
//
// Shardable SELECTs (see Keys) take a concurrency-safe path: a private
// pager over the same region file, touching no shared state, so the
// execution engine may run them in parallel with each other. Every other
// operation — all mutations included — reaches this method exclusively
// (its keyset is nil, an engine barrier) and uses the long-lived database
// handle with the per-operation nondeterminism installed.
func (a *App) Execute(op []byte, nd core.NonDetValues, readOnly bool) []byte {
	if a.err != nil {
		return encodeError(a.err)
	}
	kind, sql, args, err := decodeOp(op)
	if err != nil {
		return encodeError(err)
	}
	// The concurrent read path only pays off when the engine may
	// actually run queries in parallel (see the sharded flag); the
	// serial configuration keeps the long-lived cached handle.
	plan := a.classify(sql)
	if kind == opQuery && plan.shardable && a.sharded.Load() {
		return a.queryConcurrent(sql, args)
	}
	if kind == opExec && plan.txnControl {
		// Explicit transactions cannot span ordered operations: a
		// client BEGIN would hold the shared handle's transaction open
		// across requests, wedging Reload (and thus every later
		// operation) forever, and its uncommitted view could never be
		// served consistently by replicas executing reads elsewhere.
		// Each mutating operation already commits atomically; reject
		// transaction control deterministically, identically at every
		// replica and shard count.
		return encodeError(errTxnControl)
	}
	a.vfs.SetNonDet(nd)
	if err := a.db.Pager().Reload(); err != nil {
		return encodeError(err)
	}
	switch kind {
	case opQuery:
		rows, err := a.db.Query(sql, args...)
		if err != nil {
			return encodeError(err)
		}
		return encodeRows(rows)
	case opExec:
		if readOnly {
			return encodeError(errors.New("sqlstate: mutating statement on the read-only path"))
		}
		res, err := a.db.Exec(sql, args...)
		if err != nil {
			return encodeError(err)
		}
		return encodeResult(res)
	default:
		return encodeError(fmt.Errorf("sqlstate: unknown op kind %d", kind))
	}
}

// errTxnControl rejects BEGIN/COMMIT/ROLLBACK on the replicated path.
var errTxnControl = errors.New("sqlstate: explicit transactions are not supported through the replicated service; every operation commits atomically")

// queryConcurrent runs a shardable SELECT over a private read-only pager
// (no journal recovery, no writes ever). The only shared structure it
// touches is the region itself (internally locked; reads allocate
// nothing), so any number of these may run concurrently on the engine's
// shards. The result is byte-identical to the serial path: same region
// bytes, same rows, the same ErrInTransaction refusal while a client
// holds the shared handle's explicit transaction open, and — by the
// shardable exclusion of now()/random() — no dependence on the
// nondeterminism values the serial path would have installed.
func (a *App) queryConcurrent(sql string, args []sqldb.Value) []byte {
	// Transaction state only changes inside barrier operations, which
	// the engine never runs concurrently with keyed reads, so this read
	// is race-free — and required: the serial path answers every
	// operation with ErrInTransaction (via Reload) while a transaction
	// is open, and replicas at other shard counts must answer the same.
	if a.db.Pager().InTransaction() {
		return encodeError(sqldb.ErrInTransaction)
	}
	db, err := sqldb.OpenReadOnly(a.vfs, a.opts.DBName)
	if err != nil {
		return encodeError(err)
	}
	defer db.Close()
	rows, err := db.Query(sql, args...)
	if err != nil {
		return encodeError(err)
	}
	return encodeRows(rows)
}

// OpenDiskImage opens a replica's on-disk database image as an ordinary
// standalone database — the §3.2 by-product: "even if the node is to be
// removed from the replicated service, its data will be usable on its
// own, being just another database file". diskDir is the DiskDir the
// replica's App used; dbName defaults to "state.db".
func OpenDiskImage(diskDir string, dbName ...string) (*sqldb.DB, error) {
	name := "state.db"
	if len(dbName) > 0 && dbName[0] != "" {
		name = dbName[0]
	}
	vfs := &sqldb.DiskVFS{Root: diskDir}
	return sqldb.Open(vfs, name+".image", false)
}

// --- Operation and response encoding ------------------------------------

const (
	opExec  uint8 = 1
	opQuery uint8 = 2

	respError  uint8 = 0
	respResult uint8 = 1
	respRows   uint8 = 2
)

// EncodeExec encodes a mutating statement as a request body.
func EncodeExec(sql string, args ...sqldb.Value) []byte {
	return encodeOp(opExec, sql, args)
}

// EncodeQuery encodes a SELECT as a request body (safe for the read-only
// path when the statement does not mutate).
func EncodeQuery(sql string, args ...sqldb.Value) []byte {
	return encodeOp(opQuery, sql, args)
}

func encodeOp(kind uint8, sql string, args []sqldb.Value) []byte {
	w := wire.NewWriter(16 + len(sql))
	w.U8(kind)
	w.String32(sql)
	w.Bytes32(sqldb.EncodeRow(args))
	return w.Bytes()
}

func decodeOp(b []byte) (kind uint8, sql string, args []sqldb.Value, err error) {
	r := wire.NewReader(b)
	kind = r.U8()
	sql = r.String32()
	rawArgs := r.Bytes32()
	if err := r.Done(); err != nil {
		return 0, "", nil, err
	}
	if len(rawArgs) > 0 {
		args, err = sqldb.DecodeRow(rawArgs)
		if err != nil {
			return 0, "", nil, err
		}
	}
	return kind, sql, args, nil
}

// decodeOpHeader reads kind and sql without materializing the argument
// values — Keys runs per committed operation on the protocol loop and
// never needs them.
func decodeOpHeader(b []byte) (kind uint8, sql string, err error) {
	r := wire.NewReader(b)
	kind = r.U8()
	sql = r.String32()
	r.Bytes32()
	if err := r.Done(); err != nil {
		return 0, "", err
	}
	return kind, sql, nil
}

func encodeError(err error) []byte {
	w := wire.NewWriter(8 + len(err.Error()))
	w.U8(respError)
	w.String32(err.Error())
	return w.Bytes()
}

func encodeResult(res sqldb.Result) []byte {
	w := wire.NewWriter(24)
	w.U8(respResult)
	w.U64(uint64(res.RowsAffected))
	w.U64(uint64(res.LastInsertID))
	return w.Bytes()
}

func encodeRows(rows *sqldb.Rows) []byte {
	w := wire.NewWriter(256)
	w.U8(respRows)
	w.U32(uint32(len(rows.Columns)))
	for _, c := range rows.Columns {
		w.String32(c)
	}
	w.U32(uint32(len(rows.Data)))
	for _, row := range rows.Data {
		w.Bytes32(sqldb.EncodeRow(row))
	}
	return w.Bytes()
}

// Response is a decoded reply from the replicated SQL service.
type Response struct {
	Result *sqldb.Result
	Rows   *sqldb.Rows
}

// DecodeResponse parses a reply body; a service-side error comes back as
// a Go error.
func DecodeResponse(b []byte) (*Response, error) {
	r := wire.NewReader(b)
	switch r.U8() {
	case respError:
		msg := r.String32()
		if err := r.Done(); err != nil {
			return nil, err
		}
		return nil, errors.New(msg)
	case respResult:
		res := sqldb.Result{
			RowsAffected: int64(r.U64()),
			LastInsertID: int64(r.U64()),
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return &Response{Result: &res}, nil
	case respRows:
		ncols := int(r.U32())
		rows := &sqldb.Rows{}
		for i := 0; i < ncols && r.Err() == nil; i++ {
			rows.Columns = append(rows.Columns, r.String32())
		}
		nrows := int(r.U32())
		for i := 0; i < nrows && r.Err() == nil; i++ {
			raw := r.Bytes32()
			if r.Err() != nil {
				break
			}
			vals, err := sqldb.DecodeRow(raw)
			if err != nil {
				return nil, err
			}
			rows.Data = append(rows.Data, vals)
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return &Response{Rows: rows}, nil
	default:
		return nil, errors.New("sqlstate: malformed response")
	}
}
