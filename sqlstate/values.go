package sqlstate

import (
	"repro/internal/sqldb"
)

// Re-exported engine types, so applications built on the replicated SQL
// state need only this package.
type (
	// Value is one dynamically typed SQL value.
	Value = sqldb.Value
	// Rows is a materialized result set.
	Rows = sqldb.Rows
	// Result reports a mutating statement's outcome.
	Result = sqldb.Result
	// DB is the embedded database handle (local, non-replicated use).
	DB = sqldb.DB
)

// Value type codes (Value.T).
const (
	TNull = sqldb.TNull
	TInt  = sqldb.TInt
	TReal = sqldb.TReal
	TText = sqldb.TText
	TBlob = sqldb.TBlob
)

// Null returns the SQL NULL value.
func Null() Value { return sqldb.Null() }

// Int builds an INTEGER value.
func Int(v int64) Value { return sqldb.Int(v) }

// Real builds a REAL value.
func Real(v float64) Value { return sqldb.Real(v) }

// Text builds a TEXT value.
func Text(s string) Value { return sqldb.Text(s) }

// Bytes builds a BLOB value.
func Bytes(b []byte) Value { return sqldb.Bytes(b) }
