package sqlstate

import (
	"repro/internal/sqldb"
)

// PartitionKeys is the partition-router keyset function for the SQL
// application (internal/partition.KeysFunc): it names the table one
// statement touches as a "table:<name>" key, so a partitioned
// deployment places every statement over a table on the group that
// owns it.
//
// It deliberately differs from App.Keys, the intra-group execution
// sharder. That one keys only read-only single-table SELECTs, because
// within one group all statements share a database file and writes
// never commute. Across groups there is no shared state at all — each
// group runs its own database — so here writes are keyed too:
// CREATE/DROP TABLE, INSERT, UPDATE, DELETE, and SELECT all route by
// the table they name. Statements that fail to parse, table-less
// SELECTs, and transaction control return nil and fall to the
// router's unkeyed policy (home group or rejection); multi-statement
// transactions spanning tables owned by different groups are exactly
// the cross-group case the partition layer does not linearize (see
// ARCHITECTURE.md "Partition layer").
func PartitionKeys(op []byte) [][]byte {
	_, sql, err := decodeOpHeader(op)
	if err != nil {
		return nil
	}
	st, _, err := sqldb.Parse(sql)
	if err != nil {
		return nil
	}
	var table string
	switch x := st.(type) {
	case *sqldb.CreateTableStmt:
		table = x.Name
	case *sqldb.DropTableStmt:
		table = x.Name
	case *sqldb.InsertStmt:
		table = x.Table
	case *sqldb.UpdateStmt:
		table = x.Table
	case *sqldb.DeleteStmt:
		table = x.Table
	case *sqldb.SelectStmt:
		table = x.Table
	}
	if table == "" {
		return nil
	}
	return [][]byte{[]byte("table:" + table)}
}
