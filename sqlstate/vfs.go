// Package sqlstate is the paper's §3.2 state abstraction: the embedded
// ACID SQL engine (internal/sqldb, the SQLite substitute) mounted on the
// PBFT replicated state region through a VFS layer (Fig. 3).
//
// The database file lives in the replicated memory region — every page
// write performs the region's modify notification, so PBFT's
// copy-on-write checkpoints and Merkle-tree synchronization see the
// database like any other state. The rollback journal lives on the real
// disk, and commits synchronize the database's disk image, exactly the
// design of §3.2: a committed transaction is durable, and a node's
// database file is usable on its own if the node leaves the service.
// Time and randomness are routed through the agreed non-determinism
// values, so every replica computes identical rows (§2.5, §4.2).
package sqlstate

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/internal/state"
)

// regionTailReserve is the number of bytes at the end of the region
// reserved for VFS bookkeeping (the database file's logical size).
const regionTailReserve = 8

// VFS implements sqldb.VFS over a replicated state region. The database
// file maps onto the region; every other file (the rollback journal) goes
// to a disk directory.
type VFS struct {
	mu      sync.Mutex
	region  *state.Region
	dbName  string
	diskDir string
	mirror  *os.File // disk image of the database, synced on commit
	dirty   map[int64]bool

	nd      core.NonDetValues
	randCtr uint64
}

var _ sqldb.VFS = (*VFS)(nil)

// NewVFS mounts a VFS for the named database file over the region.
// diskDir hosts the rollback journal and the database's disk image;
// empty disables the disk image (the journal still needs a directory, so
// diskDir may only be empty when the pager runs in non-durable mode).
func NewVFS(region *state.Region, dbName, diskDir string) (*VFS, error) {
	v := &VFS{
		region:  region,
		dbName:  dbName,
		diskDir: diskDir,
		dirty:   make(map[int64]bool),
	}
	if diskDir != "" {
		if err := os.MkdirAll(diskDir, 0o755); err != nil {
			return nil, err
		}
		mirror, err := os.OpenFile(filepath.Join(diskDir, dbName+".image"), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		v.mirror = mirror
	}
	return v, nil
}

// SetNonDet installs the agreed non-deterministic values for the
// operation being executed; the replica calls it before every Execute.
func (v *VFS) SetNonDet(nd core.NonDetValues) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nd = nd
	v.randCtr = 0
}

// Now implements sqldb.VFS with the agreed timestamp.
func (v *VFS) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.nd.Time.IsZero() {
		return time.Unix(0, 0)
	}
	return v.nd.Time
}

// Rand implements sqldb.VFS with a deterministic stream expanded from the
// agreed seed: every replica sees identical "randomness" (§2.5).
func (v *VFS) Rand(p []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(p) > 0 {
		var block [8 + 32]byte
		binary.BigEndian.PutUint64(block[:8], v.randCtr)
		copy(block[8:], v.nd.Rand[:])
		sum := sha256.Sum256(block[:])
		n := copy(p, sum[:])
		p = p[n:]
		v.randCtr++
	}
	return nil
}

// Open implements sqldb.VFS.
func (v *VFS) Open(name string) (sqldb.File, error) {
	if name == v.dbName {
		return &regionFile{vfs: v}, nil
	}
	if v.diskDir == "" {
		return nil, fmt.Errorf("sqlstate: no disk directory for file %q", name)
	}
	f, err := os.OpenFile(filepath.Join(v.diskDir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &diskFile{f: f}, nil
}

// Delete implements sqldb.VFS.
func (v *VFS) Delete(name string) error {
	if name == v.dbName {
		return fmt.Errorf("sqlstate: cannot delete the region database")
	}
	if v.diskDir == "" {
		return nil
	}
	err := os.Remove(filepath.Join(v.diskDir, name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Exists implements sqldb.VFS.
func (v *VFS) Exists(name string) (bool, error) {
	if name == v.dbName {
		return v.logicalSize() > 0, nil
	}
	if v.diskDir == "" {
		return false, nil
	}
	_, err := os.Stat(filepath.Join(v.diskDir, name))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// logicalSize reads the database file's logical size from the region
// tail.
func (v *VFS) logicalSize() int64 {
	var buf [8]byte
	if _, err := v.region.ReadAt(buf[:], v.region.Size()-regionTailReserve); err != nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(buf[:]))
}

func (v *VFS) setLogicalSize(size int64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(size))
	_, err := v.region.WriteAt(buf[:], v.region.Size()-regionTailReserve)
	return err
}

// Close releases the disk image handle.
func (v *VFS) Close() error {
	if v.mirror != nil {
		return v.mirror.Close()
	}
	return nil
}

// regionFile is the database file mapped onto the replicated region.
type regionFile struct {
	vfs *VFS
}

var _ sqldb.File = (*regionFile)(nil)

func (f *regionFile) capacity() int64 {
	return f.vfs.region.Size() - regionTailReserve
}

func (f *regionFile) ReadAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > f.capacity() {
		return 0, fmt.Errorf("sqlstate: read beyond region capacity")
	}
	// Reads beyond the logical size return zeros, like a sparse file
	// (§3.2's large-sparse-file trick).
	return f.vfs.region.ReadAt(p, off)
}

func (f *regionFile) WriteAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > f.capacity() {
		return 0, fmt.Errorf("sqlstate: database grew past the region capacity (%d bytes)", f.capacity())
	}
	// Region WriteAt performs the PBFT modify notification itself.
	n, err := f.vfs.region.WriteAt(p, off)
	if err != nil {
		return n, err
	}
	if end := off + int64(len(p)); end > f.vfs.logicalSize() {
		if err := f.vfs.setLogicalSize(end); err != nil {
			return n, err
		}
	}
	f.vfs.mu.Lock()
	for page := off / sqldb.PageSize; page <= (off+int64(len(p))-1)/sqldb.PageSize; page++ {
		f.vfs.dirty[page] = true
	}
	f.vfs.mu.Unlock()
	return n, nil
}

func (f *regionFile) Truncate(size int64) error {
	if size > f.capacity() {
		return fmt.Errorf("sqlstate: truncate beyond region capacity")
	}
	cur := f.vfs.logicalSize()
	if size < cur {
		// Zero the truncated range so region digests stay canonical.
		zero := make([]byte, 4096)
		for off := size; off < cur; off += int64(len(zero)) {
			n := int64(len(zero))
			if off+n > cur {
				n = cur - off
			}
			if _, err := f.vfs.region.WriteAt(zero[:n], off); err != nil {
				return err
			}
		}
	}
	return f.vfs.setLogicalSize(size)
}

// Sync flushes the dirty pages to the database's disk image (the §3.2
// "database file is synchronized with its disk image on transaction
// commit"). Without a disk image it is a no-op.
func (f *regionFile) Sync() error {
	v := f.vfs
	if v.mirror == nil {
		return nil
	}
	v.mu.Lock()
	pages := make([]int64, 0, len(v.dirty))
	for p := range v.dirty {
		pages = append(pages, p)
	}
	v.dirty = make(map[int64]bool)
	v.mu.Unlock()
	buf := make([]byte, sqldb.PageSize)
	for _, page := range pages {
		off := page * sqldb.PageSize
		if _, err := v.region.ReadAt(buf, off); err != nil {
			return err
		}
		if _, err := v.mirror.WriteAt(buf, off); err != nil {
			return err
		}
	}
	return v.mirror.Sync()
}

func (f *regionFile) Size() (int64, error) { return f.vfs.logicalSize(), nil }

func (f *regionFile) Close() error { return nil }

// diskFile adapts an *os.File (journal files).
type diskFile struct{ f *os.File }

func (d *diskFile) ReadAt(p []byte, off int64) (int, error)  { return d.f.ReadAt(p, off) }
func (d *diskFile) WriteAt(p []byte, off int64) (int, error) { return d.f.WriteAt(p, off) }
func (d *diskFile) Truncate(size int64) error                { return d.f.Truncate(size) }
func (d *diskFile) Sync() error                              { return d.f.Sync() }
func (d *diskFile) Close() error                             { return d.f.Close() }
func (d *diskFile) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
