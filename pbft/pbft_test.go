package pbft

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/crypto"
)

type echoApp struct{}

func (echoApp) Execute(op []byte, nd NonDetValues, readOnly bool) []byte {
	return append([]byte("echo:"), op...)
}

func testOptions() Options {
	o := DefaultOptions()
	o.StateSize = 1 << 20
	o.PageSize = 256
	o.CheckpointInterval = 8
	o.RequestTimeout = 400 * time.Millisecond
	o.StatusInterval = 50 * time.Millisecond
	return o
}

// buildUDPCluster deploys 3f+1 replicas and one client over real UDP
// sockets on the loopback interface — the original PBFT deployment model.
func buildUDPCluster(t *testing.T, opts Options) (*Config, []*Replica, *Client) {
	t.Helper()
	n := 3*opts.F + 1
	cfg := &Config{Opts: opts}
	conns := make([]Conn, n)
	keys := make([]*KeyPair, n)
	for i := 0; i < n; i++ {
		conn, err := ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		kp, err := GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
		keys[i] = kp
		cfg.Replicas = append(cfg.Replicas, NodeInfo{ID: uint32(i), Addr: conn.Addr(), PubKey: kp.Public()})
	}
	clientConn, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clientKey, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clients = append(cfg.Clients, NodeInfo{ID: uint32(n), Addr: clientConn.Addr(), PubKey: clientKey.Public()})

	replicas := make([]*Replica, n)
	for i := 0; i < n; i++ {
		rep, err := NewReplica(cfg, uint32(i), keys[i], conns[i], echoApp{})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		replicas[i] = rep
	}
	t.Cleanup(func() {
		for _, r := range replicas {
			r.Stop()
		}
	})
	cl, err := NewClient(cfg, uint32(n), clientKey, clientConn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cfg, replicas, cl
}

func TestUDPClusterEndToEnd(t *testing.T) {
	// The full stack over real UDP sockets: requests, agreement,
	// replies, checkpoints.
	_, replicas, cl := buildUDPCluster(t, testOptions())
	for i := 0; i < 20; i++ {
		resp, err := cl.Invoke(context.Background(), []byte(fmt.Sprintf("op%d", i)))
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if string(resp) != fmt.Sprintf("echo:op%d", i) {
			t.Fatalf("invoke %d: %q", i, resp)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, r := range replicas {
		for {
			info := r.Info()
			if info.LastStable >= 16 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d: stable checkpoint stuck at %d", r.ID(), info.LastStable)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestUDPClusterSignatureMode(t *testing.T) {
	_, _, cl := buildUDPCluster(t, testOptions().Robust())
	resp, err := cl.Invoke(context.Background(), []byte("signed"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:signed" {
		t.Fatalf("resp %q", resp)
	}
}

func TestDeploymentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.DynamicClients = true
	dep := &Deployment{Options: opts}
	var keys []*KeyPair
	for i := 0; i < 4; i++ {
		kp, err := GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, kp)
		dep.Replicas = append(dep.Replicas, DeployNode{
			ID:     uint32(i),
			Addr:   fmt.Sprintf("127.0.0.1:%d", 9000+i),
			PubKey: PublicKeyHex(kp),
		})
	}
	path := filepath.Join(dir, "config.json")
	if err := dep.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDeployment(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := loaded.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 4 || !cfg.Opts.DynamicClients {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Replicas[2].Addr != "127.0.0.1:9002" {
		t.Fatalf("addr = %s", cfg.Replicas[2].Addr)
	}
	// Key files round-trip and reproduce the same public identity.
	kpath := filepath.Join(dir, "r0.key")
	if err := SaveKeyFile(kpath, keys[0]); err != nil {
		t.Fatal(err)
	}
	kp2, err := LoadKeyFile(kpath)
	if err != nil {
		t.Fatal(err)
	}
	if PublicKeyHex(kp2) != PublicKeyHex(keys[0]) {
		t.Fatal("key file must reproduce the identity")
	}
	// Signatures from the reloaded key verify against the original
	// public key (same private material).
	msg := []byte("prove it")
	if !crypto.Verify(keys[0].Public(), msg, kp2.Sign(msg)) {
		t.Fatal("reloaded key must sign verifiably")
	}
}

func TestDeploymentRejectsBadData(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDeployment(bad); err == nil {
		t.Fatal("bad json must fail")
	}
	if _, err := LoadDeployment(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must fail")
	}
	dep := &Deployment{Options: DefaultOptions()}
	dep.Replicas = []DeployNode{{ID: 0, Addr: "a", PubKey: "zz-not-hex"}}
	if _, err := dep.Config(); err == nil {
		t.Fatal("bad pubkey hex must fail")
	}
	// Too few replicas fails Config validation.
	kp, _ := GenerateKeyPair(nil)
	dep.Replicas = []DeployNode{{ID: 0, Addr: "a", PubKey: PublicKeyHex(kp)}}
	if _, err := dep.Config(); err == nil {
		t.Fatal("undersized group must fail validation")
	}
	if _, err := LoadKeyFile(filepath.Join(dir, "missing.key")); err == nil {
		t.Fatal("missing key file must fail")
	}
	if err := os.WriteFile(filepath.Join(dir, "short.key"), []byte("abcd"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeyFile(filepath.Join(dir, "short.key")); err == nil {
		t.Fatal("short key file must fail")
	}
}
