package pbft

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/crypto"
)

// DeployNode is one node entry in a deployment file.
type DeployNode struct {
	ID     uint32 `json:"id"`
	Addr   string `json:"addr"`
	PubKey string `json:"pubkey"` // hex of the marshaled public identity
}

// Deployment is the JSON deployment description shared by every process
// of a cluster (the static a-priori knowledge PBFT assumes, §3.1).
type Deployment struct {
	Options  Options      `json:"options"`
	Replicas []DeployNode `json:"replicas"`
	Clients  []DeployNode `json:"clients,omitempty"`
}

// Config materializes the deployment into a protocol Config.
func (d *Deployment) Config() (*Config, error) {
	cfg := &core.Config{Opts: d.Options}
	for _, n := range d.Replicas {
		ni, err := deployToNode(n)
		if err != nil {
			return nil, err
		}
		cfg.Replicas = append(cfg.Replicas, ni)
	}
	for _, n := range d.Clients {
		ni, err := deployToNode(n)
		if err != nil {
			return nil, err
		}
		cfg.Clients = append(cfg.Clients, ni)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func deployToNode(n DeployNode) (NodeInfo, error) {
	raw, err := hex.DecodeString(n.PubKey)
	if err != nil {
		return NodeInfo{}, fmt.Errorf("node %d: bad public key: %w", n.ID, err)
	}
	pub, err := crypto.UnmarshalPublicKey(raw)
	if err != nil {
		return NodeInfo{}, fmt.Errorf("node %d: %w", n.ID, err)
	}
	return NodeInfo{ID: n.ID, Addr: n.Addr, PubKey: pub}, nil
}

// LoadDeployment reads a deployment file.
func LoadDeployment(path string) (*Deployment, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Deployment
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &d, nil
}

// Save writes the deployment file.
func (d *Deployment) Save(path string) error {
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// MarshalKeyPair serializes private key material for a key file.
func MarshalKeyPair(kp *KeyPair) []byte { return kp.Marshal() }

// UnmarshalKeyPair parses a key file's content.
func UnmarshalKeyPair(b []byte) (*KeyPair, error) { return crypto.UnmarshalKeyPair(b) }

// LoadKeyFile reads a hex key file written by the deployment generator.
func LoadKeyFile(path string) (*KeyPair, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := hex.DecodeString(stringTrim(raw))
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return crypto.UnmarshalKeyPair(b)
}

// SaveKeyFile writes a hex key file.
func SaveKeyFile(path string, kp *KeyPair) error {
	return os.WriteFile(path, []byte(hex.EncodeToString(kp.Marshal())+"\n"), 0o600)
}

func stringTrim(b []byte) string {
	s := string(b)
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r' || s[len(s)-1] == ' ') {
		s = s[:len(s)-1]
	}
	return s
}

// PublicKeyHex renders a node's public identity for a deployment file.
func PublicKeyHex(kp *KeyPair) string {
	return hex.EncodeToString(crypto.MarshalPublicKey(kp.Public()))
}
