package pbft

import (
	"repro/internal/partition"
)

// Partitioned multi-group consensus: N independent PBFT groups, each
// owning a static key range, behind one routing layer. See package
// repro/internal/partition for the routing contract (what is and is not
// linearizable across groups) and ARCHITECTURE.md ("Partition layer").
type (
	// PartitionMap is the versioned partition table mapping the 64-bit
	// key-hash ring onto groups.
	PartitionMap = partition.Map
	// PartitionRouter maps operations onto groups using a Sharder-shaped
	// keyset function.
	PartitionRouter = partition.Router
	// PartitionRouterOption configures a PartitionRouter.
	PartitionRouterOption = partition.RouterOption
	// PartitionKeysFunc extracts an operation's placement keyset; it is
	// the same shape as Sharder.Keys.
	PartitionKeysFunc = partition.KeysFunc
	// PartitionedClient holds one pipelined client session per group and
	// routes every operation to its owning group.
	PartitionedClient = partition.Client
	// PartitionGroupResult is one group's answer to a fan-out read.
	PartitionGroupResult = partition.GroupResult
	// CrossGroupError reports an operation that spans groups under the
	// reject policy; match it with errors.Is(err, ErrCrossGroup).
	CrossGroupError = partition.CrossGroupError
)

// ErrCrossGroup is the sentinel for operations a RejectCrossGroup router
// refuses to place.
var ErrCrossGroup = partition.ErrCrossGroup

// UniformPartitionMap builds a version-1 table splitting the key-hash
// ring evenly across groups.
func UniformPartitionMap(groups int) *PartitionMap { return partition.Uniform(groups) }

// UnmarshalPartitionMap parses and validates a PartitionMap.Marshal form.
func UnmarshalPartitionMap(b []byte) (*PartitionMap, error) { return partition.UnmarshalMap(b) }

// NewPartitionRouter builds a router over m. keys may be nil (every
// operation routes to the home group).
func NewPartitionRouter(m *PartitionMap, keys PartitionKeysFunc, opts ...PartitionRouterOption) (*PartitionRouter, error) {
	return partition.NewRouter(m, keys, opts...)
}

// WithHomeGroup sets the group receiving unkeyed and (by default)
// cross-group operations.
func WithHomeGroup(g int) PartitionRouterOption { return partition.WithHomeGroup(g) }

// RejectCrossGroup makes Route fail unkeyed and multi-group operations
// with a *CrossGroupError instead of using the home group.
func RejectCrossGroup() PartitionRouterOption { return partition.RejectCrossGroup() }

// NewPartitionedClient wraps one per-group client session per router
// group; sessions[g] must be a client of group g's deployment.
func NewPartitionedClient(router *PartitionRouter, sessions []*Client) (*PartitionedClient, error) {
	return partition.NewClient(router, sessions)
}
