// Package pbft is the public API of the PBFT middleware: Practical
// Byzantine Fault Tolerance (Castro–Liskov) with the extensions studied
// in "On the Practicality of 'Practical' Byzantine Fault Tolerance"
// (MIDDLEWARE 2012) — dynamic client membership and a pluggable
// application interface whose state lives in a replicated, checkpointed
// memory region.
//
// A service deployment is N = 3f+1 replicas, each running a Replica
// around an Application, plus any number of clients. Clients either come
// pre-provisioned in the Config (static membership) or Join at runtime
// (§3.1 of the paper). See package sqlstate for the SQL/ACID state
// abstraction of §3.2 and the examples directory for complete programs.
//
// # Replica lifecycle and observability
//
// A replica is an observable node runtime with a one-shot, context-aware
// lifecycle: Run(ctx) blocks while the replica serves, and Shutdown(ctx)
// stops it gracefully — the ingress backlog is drained, the execution
// engine is reaped, and pending replies are flushed before the
// connection closes, so requests the group committed still get answers.
// Shutdown is idempotent and safe in every state; Run after Shutdown
// returns ErrStopped. (Start/Stop remain as deprecated wrappers.)
//
//	rep, _ := pbft.NewReplica(cfg, id, kp, conn, app)
//	go rep.Run(ctx)
//	...
//	_ = rep.Shutdown(shutdownCtx)
//
// Protocol progress is observable two ways: Replica.Info returns a
// polled snapshot (now including the execution-engine queue depth and
// the ingress verify backlog), and Options.WithTracer installs a typed
// event Tracer — OnViewChange, OnCheckpoint, OnStateTransfer, OnBatch,
// OnCommit, OnClientSession — fired from the protocol loop with zero
// hot-loop cost when no tracer is installed. Package pbft/metrics is the
// batteries-included Tracer: an aggregating registry with counters and
// latency histograms served over HTTP (/metrics, /healthz). See
// ARCHITECTURE.md ("Observability") for the event taxonomy and the
// blocking rules tracer hooks must obey.
//
// # Clients, concurrency and pipelining
//
// A Client is safe for concurrent use and pipelines requests: Submit
// returns a *Call future immediately, and up to WithPipelineDepth
// requests stay in flight at once while a single demux goroutine collects
// reply quorums for all of them. The synchronous wrappers block per call
// but may be used from many goroutines over one client:
//
//	cl, _ := pbft.NewClient(cfg, id, kp, conn, pbft.WithPipelineDepth(16))
//	call := cl.Submit(ctx, op)          // asynchronous: a future
//	result, err := call.Result()        // wait for the reply quorum
//	result, err = cl.Invoke(ctx, op)    // synchronous wrapper
//	result, err = cl.InvokeReadOnly(ctx, op)
//
// Every submission takes a context.Context; cancellation or a deadline
// completes the call promptly with the context's error. Replicas track a
// per-client window of Options.ClientWindow outstanding timestamps, so a
// pipelined client's requests are ordered and executed concurrently
// without being dropped as duplicates.
//
// # Sharded execution
//
// Replicas apply committed operations through a deterministic sharded
// execution engine. An Application that also implements Sharder declares
// each operation's conflict keyset; with Options.ExecShards > 1 (e.g.
// DefaultOptions().WithExecShards(n)) non-conflicting operations apply
// concurrently on different shard workers while conflicting ones keep
// commit order, replies are released strictly in sequence order, and
// checkpoint digests stay byte-identical to serial execution. Read-only
// operations are dispatched through the same engine, so slow reads never
// run on the replica's protocol loop. The shard count is a local tuning
// knob, not part of the replicated contract — replicas may differ. See
// ARCHITECTURE.md for the determinism rules a Sharder must obey.
//
// # Hot-path performance
//
// DefaultOptions enables two self-tuning hot-path mechanisms, both local
// knobs outside the replicated contract. Options.AdaptiveBatching sizes
// the primary's next pre-prepare with an AIMD controller driven by
// observed batch occupancy and commit latency (the static MaxBatch is
// the ceiling, MaxBatchBytes still caps the datagram; the live window is
// ReplicaInfo.BatchWindow and the pbft_batch_window gauge).
// Options.AsyncReap overlaps agreement with application execution:
// completed applies are reaped — and replies sent, still strictly in
// sequence order — off the protocol loop, with checkpoints, membership
// operations and view changes draining everything exactly as before, so
// checkpoint digests stay byte-identical to synchronous reaping.
// Message memory (sealed envelopes, seal/verify scratch, MAC states, UDP
// receive buffers) is pooled; see ARCHITECTURE.md, "Hot path & memory
// discipline", for the ownership rules and the allocation budget CI
// enforces.
package pbft

import (
	"io"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/state"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Re-exported protocol types. The aliases make the internal packages'
// documented types available as pbft.X without an import maze.
type (
	// Options selects the library configuration (the axes of the
	// paper's Table 1: UseMACs, AllBig, Batching, DynamicClients).
	// Options.WithDataDir makes a replica durable: crash-restart then
	// recovers from the WAL-backed on-disk state instead of a full
	// state transfer.
	Options = core.Options
	// Config describes a deployment: the replica group and the static
	// clients.
	Config = core.Config
	// NodeInfo is one node's public identity.
	NodeInfo = core.NodeInfo
	// Replica is one member of the PBFT group.
	Replica = core.Replica
	// ReplicaInfo is a progress snapshot of a replica.
	ReplicaInfo = core.Info
	// Tracer receives typed protocol events from a replica (install via
	// Options.WithTracer). See the core.Tracer blocking rules: hooks run
	// on the protocol loop and must not block or call back in.
	Tracer = core.Tracer
	// NopTracer is an all-empty Tracer to embed in partial tracers.
	NopTracer = core.NopTracer
	// ViewChangeEvent reports view-change progress (start/install).
	ViewChangeEvent = core.ViewChangeEvent
	// CheckpointEvent reports checkpoint production and stabilization.
	CheckpointEvent = core.CheckpointEvent
	// StateTransferEvent reports state-transfer progress.
	StateTransferEvent = core.StateTransferEvent
	// BatchEvent reports one agreed batch handed to execution.
	BatchEvent = core.BatchEvent
	// CommitEvent reports a sequence number reaching its commit quorum.
	CommitEvent = core.CommitEvent
	// ClientSessionEvent reports client session lifecycle.
	ClientSessionEvent = core.ClientSessionEvent
	// ViewChangePhase tags ViewChangeEvents (start/install).
	ViewChangePhase = core.ViewChangePhase
	// StateTransferPhase tags StateTransferEvents (start/finish/abort).
	StateTransferPhase = core.StateTransferPhase
	// ClientSessionKind tags ClientSessionEvents (hello/join/leave/evict).
	ClientSessionKind = core.ClientSessionKind
	// Client invokes operations against the replicated service. It is
	// safe for concurrent use and pipelines up to WithPipelineDepth
	// requests.
	Client = client.Client
	// Call is one in-flight request: a future returned by Client.Submit.
	Call = client.Call
	// ClientOption configures a client at construction
	// (WithPipelineDepth, WithMaxRetries).
	ClientOption = client.Option
	// CallOption configures one Submit (ReadOnly).
	CallOption = client.CallOption
	// Application is the replicated service implementation.
	Application = core.Application
	// Sharder is implemented by applications that opt into sharded
	// execution: Keys returns an operation's conflict keyset (nil =
	// barrier). See the determinism rules on core.Sharder.
	Sharder = core.Sharder
	// ShardObserver is notified of the engine's effective shard count
	// before the replica starts (optional).
	ShardObserver = core.ShardObserver
	// Authorizer admits dynamic clients at the application level.
	Authorizer = core.Authorizer
	// StateUser receives the replicated state region before start.
	StateUser = core.StateUser
	// StateRegion is the replicated memory region handed to StateUser
	// applications: free reads, modify notification before writes
	// (WriteAt notifies itself).
	StateRegion = state.Region
	// NonDetValues carries the agreed non-deterministic inputs.
	NonDetValues = core.NonDetValues
	// KeyPair is a node's long-term key material.
	KeyPair = crypto.KeyPair
	// PublicKey is a node's public identity.
	PublicKey = crypto.PublicKey
	// Conn is a datagram endpoint (UDP or in-memory).
	Conn = transport.Conn
	// UDPConn is the real-socket endpoint behind ListenUDP. Beyond Conn
	// it exposes the syscall batching counters (BatchStats) that the
	// observability surface and the swarm benchmark report.
	UDPConn = transport.UDPConn
	// BatchStats is a snapshot of a UDP endpoint's syscall batching
	// counters: syscalls issued, datagrams moved, and the
	// datagrams-per-syscall occupancy histograms.
	BatchStats = transport.BatchStats
	// Network is the in-memory fault-injecting network.
	Network = transport.Network
	// Faults configures link behaviour on the in-memory network.
	Faults = transport.Faults
	// FlightRecorder is the per-node request-lifecycle flight recorder:
	// phase stamps keyed by (client, timestamp) flow into a lock-free
	// ring of completed timelines, a protocol-event ring and a
	// rolling-quantile slow-request log. Install on a replica with
	// Options.WithRecorder and on a client with WithClientRecorder; dump
	// with Replica.FlightDump or the /debug/flight endpoint
	// (metrics.Mux + Metrics.AddFlight).
	FlightRecorder = trace.Recorder
	// FlightRecorderConfig sizes a FlightRecorder (zero values select
	// the defaults documented on trace.Config).
	FlightRecorderConfig = trace.Config
	// FlightDump is a point-in-time recorder snapshot in JSON shape.
	FlightDump = trace.Dump
	// TimelineDump is one request's stamped phases in JSON shape.
	TimelineDump = trace.TimelineDump
	// Phase identifies one request-lifecycle stamp point (client submit
	// through reply quorum); Phase.String is the snake_case label used by
	// the pbft_phase_seconds metric and the flight-dump JSON.
	Phase = trace.Phase
	// PhaseSink receives per-phase latencies from a FlightRecorder as
	// timelines complete (implemented by metrics.Metrics).
	PhaseSink = trace.Sink
)

// BatchOccupancyBounds are the inclusive upper bounds of the first four
// BatchStats occupancy buckets (the fifth is unbounded).
var BatchOccupancyBounds = transport.BatchOccupancyBounds

// Tracer event phase and kind values, re-exported for switch statements.
const (
	ViewChangeStart     = core.ViewChangeStart
	ViewChangeInstall   = core.ViewChangeInstall
	StateTransferStart  = core.StateTransferStart
	StateTransferFinish = core.StateTransferFinish
	StateTransferAbort  = core.StateTransferAbort
	SessionHello        = core.SessionHello
	SessionJoin         = core.SessionJoin
	SessionLeave        = core.SessionLeave
	SessionEvict        = core.SessionEvict
)

// Request-lifecycle phases, re-exported for PhaseSink implementations
// and flight-dump consumers (pipeline order).
const (
	PhaseClientSubmit    = trace.ClientSubmit
	PhaseClientSealed    = trace.ClientSealed
	PhaseClientFirstSend = trace.ClientFirstSend
	PhaseIngressArrive   = trace.IngressArrive
	PhaseVerifyDone      = trace.VerifyDone
	PhaseLoopDispatch    = trace.LoopDispatch
	PhaseBatchEnqueue    = trace.BatchEnqueue
	PhasePrePrepareSent  = trace.PrePrepareSent
	PhasePrepareQuorum   = trace.PrepareQuorum
	PhaseCommitQuorum    = trace.CommitQuorum
	PhaseExecSchedule    = trace.ExecSchedule
	PhaseExecDone        = trace.ExecDone
	PhaseReplySealed     = trace.ReplySealed
	PhaseReplySent       = trace.ReplySent
	PhaseClientComplete  = trace.ClientComplete
	// NumPhases is the count of stampable phases; PhaseEndToEnd is the
	// synthetic first-to-last sink phase emitted per completed timeline.
	NumPhases     = trace.NumPhases
	PhaseEndToEnd = trace.EndToEnd
)

// NewFlightRecorder builds a request-lifecycle flight recorder. Install
// it with Options.WithRecorder (replica side) or WithClientRecorder
// (client side); a nil recorder costs one nil check per stamp point.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return trace.New(cfg)
}

// WithClientRecorder attaches a flight recorder to a client: Submit
// stamps the client-side phases and quorum completion onto the
// per-request timeline.
func WithClientRecorder(rec *FlightRecorder) ClientOption {
	return client.WithRecorder(rec)
}

// ErrJoinDenied is returned by Client.Join when the service refuses.
type ErrJoinDenied = client.ErrJoinDenied

// Client sentinel errors, re-exported for errors.Is checks.
var (
	// ErrClosed is returned by operations on a closed client.
	ErrClosed = client.ErrClosed
	// ErrTimeout is returned when a call's retransmission budget ran out
	// before a reply quorum assembled.
	ErrTimeout = client.ErrTimeout
	// ErrNotJoined is returned when a dynamic client invokes before Join.
	ErrNotJoined = client.ErrNotJoined
)

// Replica lifecycle sentinel errors, re-exported for errors.Is checks.
var (
	// ErrStopped is returned by Replica.Run after Shutdown: the replica
	// lifecycle is one-shot; build a new replica to restart.
	ErrStopped = core.ErrStopped
	// ErrRunning is returned by Replica.Run while the replica runs.
	ErrRunning = core.ErrRunning
)

// WithPipelineDepth bounds how many requests a client keeps in flight at
// once (0 selects the deployment's Options.ClientWindow).
func WithPipelineDepth(n int) ClientOption { return client.WithPipelineDepth(n) }

// WithMaxRetries sizes the per-call retry budget: a call fails with
// ErrTimeout after n x Options.RequestTimeout without a reply quorum.
// Retransmissions are paced adaptively within that budget (dense at
// first, then exponential backoff), so fewer than n sends may occur.
func WithMaxRetries(n int) ClientOption { return client.WithMaxRetries(n) }

// WithBackoffCap bounds the per-call retransmission backoff ceiling
// (0 or negative selects the default of 8x Options.RequestTimeout; a cap
// at or below RequestTimeout selects fixed-interval retransmission).
func WithBackoffCap(d time.Duration) ClientOption { return client.WithBackoffCap(d) }

// ReadOnly marks one Submit read-only (immediate execution, 2f+1 quorum).
func ReadOnly() CallOption { return client.ReadOnly() }

// DefaultOptions returns the original library's preferred configuration:
// every optimization on (first row of Table 1).
func DefaultOptions() Options { return core.DefaultOptions() }

// GenerateKeyPair creates node key material (rng nil means crypto/rand).
func GenerateKeyPair(rng io.Reader) (*KeyPair, error) {
	return crypto.GenerateKeyPair(rng)
}

// NewReplica builds a replica over the connection; drive it with
// Run(ctx) and stop it with Shutdown(ctx).
func NewReplica(cfg *Config, id uint32, kp *KeyPair, conn Conn, app Application) (*Replica, error) {
	return core.NewReplica(cfg, id, kp, conn, app)
}

// NewClient builds a pre-provisioned (static membership) client.
func NewClient(cfg *Config, id uint32, kp *KeyPair, conn Conn, opts ...ClientOption) (*Client, error) {
	return client.New(cfg, id, kp, conn, opts...)
}

// NewDynamicClient builds a client that must Join before invoking (§3.1).
func NewDynamicClient(cfg *Config, kp *KeyPair, conn Conn, opts ...ClientOption) (*Client, error) {
	return client.NewDynamic(cfg, kp, conn, opts...)
}

// ListenUDP opens a UDP endpoint (the original deployment transport).
func ListenUDP(addr string) (Conn, error) {
	return transport.ListenUDP(addr)
}

// NewNetwork creates an in-memory network with fault injection, used by
// tests, benchmarks and the fault-behaviour demos (§2.4).
func NewNetwork(seed int64) *Network {
	return transport.NewNetwork(seed)
}
