// Package metrics is the aggregating observability surface of the PBFT
// node runtime: a pbft.Tracer implementation that folds the typed event
// stream into counters and latency histograms, polls replica gauges
// (execution-engine queue depth, ingress verify backlog), and exposes
// everything over HTTP in the Prometheus text format.
//
// One Metrics registry may serve one replica (cmd/pbft-server) or
// aggregate several (the bench harness registers every replica of a
// cluster); events carry the reporting replica's id and the hooks are
// safe for concurrent use. Typical wiring:
//
//	m := metrics.New()
//	rep, _ := pbft.NewReplica(cfg, id, kp, conn, app) // opts.WithTracer(m)
//	m.AddReplica(id, rep.Info)
//	go http.ListenAndServe(addr, metrics.Mux(m, rep.Running))
//	go rep.Run(ctx)
//
// The tracer hooks run on the replica's protocol loop, so they do only
// constant work under a mutex: counter bumps and bounded histogram
// inserts. Everything else (gauge polling, text rendering) happens on the
// scraper's goroutine.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/pbft"
)

// phaseKey identifies one replica's per-phase latency series.
type phaseKey struct {
	replica uint32
	phase   pbft.Phase
}

// Metrics implements pbft.Tracer by aggregation, with an optional GROUP
// dimension for partitioned multi-group deployments: events recorded
// through the registry itself land in group 0 (the single-group case),
// while Group(g) returns a view that records into group g. A registry
// holding only group 0 renders exactly the classic exposition; as soon
// as a second group exists every per-group series gains a group label.
// The zero value is not usable; construct with New.
type Metrics struct {
	mu sync.Mutex

	// groups holds one counter set per consensus group. Group 0 always
	// exists (it is the whole deployment when partitioning is off).
	groups map[int]*groupState

	now func() time.Time

	infoMu     sync.Mutex
	infos      []*replicaInfoSource
	transports []transportSource
	flights    []flightSource
}

// groupState is one group's aggregate counters and histograms.
type groupState struct {
	commits            uint64
	batches            uint64
	requests           uint64
	tentativeBatches   uint64
	vcStarted          uint64
	vcInstalled        uint64
	checkpoints        uint64
	stableCheckpoints  uint64
	transfersStarted   uint64
	transfersCompleted uint64
	transfersAborted   uint64
	sessionHellos      uint64
	joins              uint64
	leaves             uint64
	evictions          uint64

	batchSize  *histogram
	vcDuration *histogram // seconds, start -> install per replica

	// phases holds one latency histogram per (replica, phase), fed by
	// flight recorders through ObservePhase as request timelines
	// complete. It replaces the old tentative->commit histogram: the
	// prepare->commit interval is now one segment of the full
	// per-request breakdown (pbft_phase_seconds).
	phases map[phaseKey]*histogram

	// vcStart maps a replica's view-change start time until the install
	// closes it (bounded by the replica count).
	vcStart map[uint32]time.Time
}

func newGroupState() *groupState {
	return &groupState{
		batchSize:  newHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		vcDuration: newHistogram([]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}),
		phases:     make(map[phaseKey]*histogram),
		vcStart:    make(map[uint32]time.Time),
	}
}

// group returns (creating if needed) group g's state. Callers hold m.mu.
func (m *Metrics) group(g int) *groupState {
	gs, ok := m.groups[g]
	if !ok {
		gs = newGroupState()
		m.groups[g] = gs
	}
	return gs
}

// groupIDs returns the registered group ids, ascending. Callers hold
// m.mu.
func (m *Metrics) groupIDs() []int {
	ids := make([]int, 0, len(m.groups))
	for g := range m.groups {
		ids = append(ids, g)
	}
	sort.Ints(ids)
	return ids
}

// flightSource is one registered flight recorder's dump function,
// served by the /debug/flight endpoint.
type flightSource struct {
	id   uint32
	dump func() pbft.FlightDump
}

// transportSource is one registered UDP endpoint's syscall-batching
// counter snapshot function. BatchStats reads are plain atomic loads, so
// unlike replica gauges they need no timeout machinery.
type transportSource struct {
	id    uint32
	group int
	stats func() pbft.BatchStats
}

// replicaInfoSource wraps one replica's Info func with single-flight,
// timeout-bounded polling: Replica.Info round-trips through the protocol
// loop, so a busy (or application-blocked) loop must not hang a scrape
// or pile up handler goroutines — a slow poll is abandoned to the single
// outstanding goroutine and the scrape serves the last known values.
type replicaInfoSource struct {
	id    uint32
	group int
	info  func() pbft.ReplicaInfo

	mu       sync.Mutex
	last     pbft.ReplicaInfo
	pollDone chan struct{} // non-nil while a poll is in flight
}

// gaugePollTimeout bounds how long one scrape waits for fresh gauges.
const gaugePollTimeout = 200 * time.Millisecond

// poll returns fresh info when the loop answers within the timeout, and
// the previous snapshot otherwise. At most one poll goroutine exists per
// source regardless of scrape frequency.
func (s *replicaInfoSource) poll(timeout time.Duration) pbft.ReplicaInfo {
	s.mu.Lock()
	done := s.pollDone
	if done == nil {
		done = make(chan struct{})
		s.pollDone = done
		go func() {
			info := s.info()
			s.mu.Lock()
			s.last = info
			s.pollDone = nil
			s.mu.Unlock()
			close(done)
		}()
	}
	s.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// phaseBounds are the pbft_phase_seconds bucket bounds: phases span
// microseconds (ingress->verify) to seconds (chaos recovery), so the
// grid starts far below the old commit-latency floor.
var phaseBounds = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// New builds an empty registry.
func New() *Metrics {
	return &Metrics{
		groups: map[int]*groupState{0: newGroupState()},
		now:    time.Now,
	}
}

// Group returns a view of the registry that records into group g: its
// tracer hooks, ObservePhase, and Add* registrations are the per-group
// analogues of the registry's own. Partitioned deployments hand group
// g's replicas Group(g); everything else keeps using the registry
// directly (group 0). Registering any group other than 0 switches the
// exposition to group-labeled series.
func (m *Metrics) Group(g int) *GroupView {
	m.mu.Lock()
	m.group(g)
	m.mu.Unlock()
	return &GroupView{m: m, g: g}
}

// ObservePhase implements the flight recorder's sink interface
// (pbft.PhaseSink): one adjacent-phase segment (or the synthetic
// end-to-end value) of a completed request timeline. Called from
// whatever goroutine finalizes the timeline, so it does only a bounded
// histogram insert under the registry mutex.
func (m *Metrics) ObservePhase(replica uint32, phase pbft.Phase, d time.Duration) {
	m.observePhase(0, replica, phase, d)
}

func (m *Metrics) observePhase(g int, replica uint32, phase pbft.Phase, d time.Duration) {
	k := phaseKey{replica, phase}
	m.mu.Lock()
	gs := m.group(g)
	h, ok := gs.phases[k]
	if !ok {
		h = newHistogram(phaseBounds)
		gs.phases[k] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// AddFlight registers a flight recorder's dump function (typically
// Replica.FlightDump): the /debug/flight endpoint serves every
// registered recorder's snapshot as JSON. Safe to call while serving.
func (m *Metrics) AddFlight(id uint32, dump func() pbft.FlightDump) {
	m.infoMu.Lock()
	m.flights = append(m.flights, flightSource{id: id, dump: dump})
	m.infoMu.Unlock()
}

// AddReplica registers a gauge source: the replica's Info func is polled
// at scrape time for queue-depth and backlog gauges. Safe to call while
// serving.
func (m *Metrics) AddReplica(id uint32, info func() pbft.ReplicaInfo) {
	m.addReplica(0, id, info)
}

func (m *Metrics) addReplica(g int, id uint32, info func() pbft.ReplicaInfo) {
	m.infoMu.Lock()
	m.infos = append(m.infos, &replicaInfoSource{id: id, group: g, info: info})
	m.infoMu.Unlock()
}

// AddTransport registers a UDP endpoint's syscall-batching counters
// (UDPConn.BatchStats), exposed as the pbft_udp_* series: syscall and
// datagram totals plus datagrams-per-syscall occupancy histograms.
// Safe to call while serving.
func (m *Metrics) AddTransport(id uint32, stats func() pbft.BatchStats) {
	m.addTransport(0, id, stats)
}

func (m *Metrics) addTransport(g int, id uint32, stats func() pbft.BatchStats) {
	m.infoMu.Lock()
	m.transports = append(m.transports, transportSource{id: id, group: g, stats: stats})
	m.infoMu.Unlock()
}

// --- pbft.Tracer ---------------------------------------------------------

// OnViewChange implements pbft.Tracer.
func (m *Metrics) OnViewChange(e pbft.ViewChangeEvent) { m.onViewChange(0, e) }

func (m *Metrics) onViewChange(g int, e pbft.ViewChangeEvent) {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	gs := m.group(g)
	switch e.Phase {
	case pbft.ViewChangeStart:
		gs.vcStarted++
		if _, running := gs.vcStart[e.Replica]; !running {
			// A cascade (start for v+1 after a stalled start for v) keeps
			// the first start time: the sample measures how long the
			// replica was without an operating view.
			gs.vcStart[e.Replica] = t
		}
	case pbft.ViewChangeInstall:
		gs.vcInstalled++
		if s, ok := gs.vcStart[e.Replica]; ok {
			gs.vcDuration.observe(t.Sub(s).Seconds())
			delete(gs.vcStart, e.Replica)
		}
	}
}

// OnCheckpoint implements pbft.Tracer.
func (m *Metrics) OnCheckpoint(e pbft.CheckpointEvent) { m.onCheckpoint(0, e) }

func (m *Metrics) onCheckpoint(g int, e pbft.CheckpointEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gs := m.group(g)
	if e.Stable {
		gs.stableCheckpoints++
	} else {
		gs.checkpoints++
	}
}

// OnStateTransfer implements pbft.Tracer.
func (m *Metrics) OnStateTransfer(e pbft.StateTransferEvent) { m.onStateTransfer(0, e) }

func (m *Metrics) onStateTransfer(g int, e pbft.StateTransferEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gs := m.group(g)
	switch e.Phase {
	case pbft.StateTransferStart:
		gs.transfersStarted++
	case pbft.StateTransferFinish:
		gs.transfersCompleted++
	case pbft.StateTransferAbort:
		gs.transfersAborted++
	}
}

// OnBatch implements pbft.Tracer.
func (m *Metrics) OnBatch(e pbft.BatchEvent) { m.onBatch(0, e) }

func (m *Metrics) onBatch(g int, e pbft.BatchEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gs := m.group(g)
	gs.batches++
	gs.requests += uint64(e.Requests)
	gs.batchSize.observe(float64(e.Requests))
	if e.Tentative {
		gs.tentativeBatches++
	}
}

// OnCommit implements pbft.Tracer.
func (m *Metrics) OnCommit(e pbft.CommitEvent) { m.onCommit(0, e) }

func (m *Metrics) onCommit(g int, e pbft.CommitEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.group(g).commits++
}

// OnClientSession implements pbft.Tracer.
func (m *Metrics) OnClientSession(e pbft.ClientSessionEvent) { m.onClientSession(0, e) }

func (m *Metrics) onClientSession(g int, e pbft.ClientSessionEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gs := m.group(g)
	switch e.Kind {
	case pbft.SessionHello:
		gs.sessionHellos++
	case pbft.SessionJoin:
		gs.joins++
	case pbft.SessionLeave:
		gs.leaves++
	case pbft.SessionEvict:
		gs.evictions++
	}
}

// --- Group views ---------------------------------------------------------

// GroupView is a Metrics registry scoped to one consensus group of a
// partitioned deployment: it implements pbft.Tracer and the
// registration surface exactly like the registry itself, but every
// event, gauge source, and transport it records carries the group id.
// Views are cheap handles over the shared registry — hand each group's
// replicas their own and scrape one endpoint for the whole deployment.
type GroupView struct {
	m *Metrics
	g int
}

// ID returns the group id this view records into.
func (v *GroupView) ID() int { return v.g }

// OnViewChange implements pbft.Tracer for the view's group.
func (v *GroupView) OnViewChange(e pbft.ViewChangeEvent) { v.m.onViewChange(v.g, e) }

// OnCheckpoint implements pbft.Tracer for the view's group.
func (v *GroupView) OnCheckpoint(e pbft.CheckpointEvent) { v.m.onCheckpoint(v.g, e) }

// OnStateTransfer implements pbft.Tracer for the view's group.
func (v *GroupView) OnStateTransfer(e pbft.StateTransferEvent) { v.m.onStateTransfer(v.g, e) }

// OnBatch implements pbft.Tracer for the view's group.
func (v *GroupView) OnBatch(e pbft.BatchEvent) { v.m.onBatch(v.g, e) }

// OnCommit implements pbft.Tracer for the view's group.
func (v *GroupView) OnCommit(e pbft.CommitEvent) { v.m.onCommit(v.g, e) }

// OnClientSession implements pbft.Tracer for the view's group.
func (v *GroupView) OnClientSession(e pbft.ClientSessionEvent) { v.m.onClientSession(v.g, e) }

// ObservePhase records one phase segment into the view's group
// (pbft.PhaseSink).
func (v *GroupView) ObservePhase(replica uint32, phase pbft.Phase, d time.Duration) {
	v.m.observePhase(v.g, replica, phase, d)
}

// AddReplica registers a gauge source under the view's group: the
// replica's gauges render with both group and replica labels.
func (v *GroupView) AddReplica(id uint32, info func() pbft.ReplicaInfo) {
	v.m.addReplica(v.g, id, info)
}

// AddTransport registers a UDP endpoint's syscall-batching counters
// under the view's group.
func (v *GroupView) AddTransport(id uint32, stats func() pbft.BatchStats) {
	v.m.addTransport(v.g, id, stats)
}

// --- Snapshots -----------------------------------------------------------

// Snapshot is a point-in-time copy of every aggregate. Snapshots support
// Sub for per-window deltas (the bench prints one per experiment).
type Snapshot struct {
	Commits            uint64
	Batches            uint64
	Requests           uint64
	TentativeBatches   uint64
	ViewChangesStarted uint64
	// ViewChangesInstalled counts completed view changes (new view
	// entered); the harness asserts on it ("exactly one view change").
	ViewChangesInstalled    uint64
	Checkpoints             uint64
	StableCheckpoints       uint64
	StateTransfersStarted   uint64
	StateTransfersCompleted uint64
	StateTransfersAborted   uint64
	SessionHellos           uint64
	Joins                   uint64
	Leaves                  uint64
	Evictions               uint64

	BatchSize          HistogramSnapshot
	ViewChangeDuration HistogramSnapshot // seconds

	// Phases holds one latency histogram per request-lifecycle phase
	// (seconds), keyed by the snake_case phase label and merged across
	// replicas; phase "end_to_end" is the synthetic whole-timeline
	// value. Populated only when flight recorders feed this registry.
	Phases map[string]HistogramSnapshot
}

// snapshotLocked copies one group's aggregates. Callers hold m.mu.
func (gs *groupState) snapshotLocked() Snapshot {
	var phases map[string]HistogramSnapshot
	if len(gs.phases) > 0 {
		phases = make(map[string]HistogramSnapshot, len(gs.phases))
		for k, h := range gs.phases {
			phases[k.phase.String()] = phases[k.phase.String()].merge(h.snapshot())
		}
	}
	return Snapshot{
		Commits:                 gs.commits,
		Batches:                 gs.batches,
		Requests:                gs.requests,
		TentativeBatches:        gs.tentativeBatches,
		ViewChangesStarted:      gs.vcStarted,
		ViewChangesInstalled:    gs.vcInstalled,
		Checkpoints:             gs.checkpoints,
		StableCheckpoints:       gs.stableCheckpoints,
		StateTransfersStarted:   gs.transfersStarted,
		StateTransfersCompleted: gs.transfersCompleted,
		StateTransfersAborted:   gs.transfersAborted,
		SessionHellos:           gs.sessionHellos,
		Joins:                   gs.joins,
		Leaves:                  gs.leaves,
		Evictions:               gs.evictions,
		BatchSize:               gs.batchSize.snapshot(),
		ViewChangeDuration:      gs.vcDuration.snapshot(),
		Phases:                  phases,
	}
}

// Snapshot returns a consistent copy of the aggregates, summed across
// every group (identical to the classic single-group snapshot when only
// group 0 exists).
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := m.groupIDs()
	out := m.groups[ids[0]].snapshotLocked()
	for _, g := range ids[1:] {
		out = out.add(m.groups[g].snapshotLocked())
	}
	return out
}

// GroupSnapshot returns a consistent copy of one group's aggregates (a
// zero Snapshot for a group that was never registered).
func (m *Metrics) GroupSnapshot(g int) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	gs, ok := m.groups[g]
	if !ok {
		return Snapshot{}
	}
	return gs.snapshotLocked()
}

// GroupIDs returns the ids of every registered group, ascending. A
// non-partitioned registry reports just group 0.
func (m *Metrics) GroupIDs() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groupIDs()
}

// add sums another snapshot into this one (fresh maps, no aliasing) —
// the cross-group fold behind the aggregate Snapshot.
func (s Snapshot) add(o Snapshot) Snapshot {
	out := s
	out.Commits += o.Commits
	out.Batches += o.Batches
	out.Requests += o.Requests
	out.TentativeBatches += o.TentativeBatches
	out.ViewChangesStarted += o.ViewChangesStarted
	out.ViewChangesInstalled += o.ViewChangesInstalled
	out.Checkpoints += o.Checkpoints
	out.StableCheckpoints += o.StableCheckpoints
	out.StateTransfersStarted += o.StateTransfersStarted
	out.StateTransfersCompleted += o.StateTransfersCompleted
	out.StateTransfersAborted += o.StateTransfersAborted
	out.SessionHellos += o.SessionHellos
	out.Joins += o.Joins
	out.Leaves += o.Leaves
	out.Evictions += o.Evictions
	out.BatchSize = s.BatchSize.merge(o.BatchSize)
	out.ViewChangeDuration = s.ViewChangeDuration.merge(o.ViewChangeDuration)
	if len(s.Phases) > 0 || len(o.Phases) > 0 {
		out.Phases = make(map[string]HistogramSnapshot, len(s.Phases)+len(o.Phases))
		for name, h := range s.Phases {
			out.Phases[name] = h
		}
		for name, h := range o.Phases {
			out.Phases[name] = out.Phases[name].merge(h)
		}
	}
	return out
}

// Sub returns the delta s - prev (counters and histogram buckets are
// monotone, so the difference is a valid window measurement).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := s
	out.Commits -= prev.Commits
	out.Batches -= prev.Batches
	out.Requests -= prev.Requests
	out.TentativeBatches -= prev.TentativeBatches
	out.ViewChangesStarted -= prev.ViewChangesStarted
	out.ViewChangesInstalled -= prev.ViewChangesInstalled
	out.Checkpoints -= prev.Checkpoints
	out.StableCheckpoints -= prev.StableCheckpoints
	out.StateTransfersStarted -= prev.StateTransfersStarted
	out.StateTransfersCompleted -= prev.StateTransfersCompleted
	out.StateTransfersAborted -= prev.StateTransfersAborted
	out.SessionHellos -= prev.SessionHellos
	out.Joins -= prev.Joins
	out.Leaves -= prev.Leaves
	out.Evictions -= prev.Evictions
	out.BatchSize = s.BatchSize.sub(prev.BatchSize)
	out.ViewChangeDuration = s.ViewChangeDuration.sub(prev.ViewChangeDuration)
	if len(s.Phases) > 0 {
		out.Phases = make(map[string]HistogramSnapshot, len(s.Phases))
		for name, h := range s.Phases {
			out.Phases[name] = h.sub(prev.Phases[name])
		}
	}
	return out
}

// Summary renders a one-line digest (the bench prints it per experiment).
func (s Snapshot) Summary() string {
	return fmt.Sprintf(
		"commits=%d batches=%d reqs=%d batch-avg=%.1f view-changes=%d checkpoints=%d stable=%d state-transfers=%d sessions(hello/join/leave/evict)=%d/%d/%d/%d",
		s.Commits, s.Batches, s.Requests, s.BatchSize.Mean(),
		s.ViewChangesInstalled, s.Checkpoints, s.StableCheckpoints,
		s.StateTransfersCompleted, s.SessionHellos, s.Joins, s.Leaves, s.Evictions)
}

// --- Histograms ----------------------------------------------------------

// histogram is a fixed-bound bucket histogram (Prometheus shape:
// cumulative buckets at scrape time, plain counts internally).
type histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	sort.Float64s(bounds)
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe inserts one sample. Callers hold the registry mutex.
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

func (h *histogram) snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// HistogramSnapshot is a copied histogram state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the overflow (+Inf) bucket.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Mean returns the average observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket the rank falls into — the usual Prometheus
// histogram_quantile estimate. Values beyond the last finite bound clamp
// to it; an empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, b := range h.Bounds {
		prev := cum
		cum += h.Counts[i]
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if h.Counts[i] == 0 {
				return b
			}
			return lo + (b-lo)*(rank-float64(prev))/float64(h.Counts[i])
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// merge folds another snapshot over the same bounds into this one (a
// zero-value receiver adopts the other's shape) — used to aggregate
// per-replica phase series into one per-phase snapshot.
func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	if h.Count == 0 && len(h.Counts) == 0 {
		return o
	}
	out := HistogramSnapshot{Bounds: h.Bounds, Sum: h.Sum + o.Sum, Count: h.Count + o.Count}
	out.Counts = append([]uint64(nil), h.Counts...)
	for i := range o.Counts {
		if i < len(out.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}

func (h HistogramSnapshot) sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Bounds: h.Bounds, Sum: h.Sum - prev.Sum, Count: h.Count - prev.Count}
	out.Counts = make([]uint64, len(h.Counts))
	for i := range h.Counts {
		c := h.Counts[i]
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		out.Counts[i] = c
	}
	return out
}

// --- HTTP exposition -----------------------------------------------------

// WritePrometheus renders every aggregate — and one gauge set per
// registered replica — in the Prometheus text exposition format. A
// registry with only group 0 renders the classic unlabeled (and
// replica-labeled) series; once any other group is registered every
// per-group series carries a group label, so partitioned deployments
// are queryable per group and per replica from one scrape.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	ids := m.groupIDs()
	multi := len(ids) > 1
	snaps := make(map[int]Snapshot, len(ids))
	for _, g := range ids {
		snaps[g] = m.groups[g].snapshotLocked()
	}
	m.mu.Unlock()

	counters := []struct {
		name, help string
		pick       func(Snapshot) uint64
	}{
		{"pbft_commits_total", "Sequence numbers committed (2f+1 certificates).", func(s Snapshot) uint64 { return s.Commits }},
		{"pbft_batches_total", "Agreed batches handed to the execution engine.", func(s Snapshot) uint64 { return s.Batches }},
		{"pbft_requests_total", "Requests inside agreed batches.", func(s Snapshot) uint64 { return s.Requests }},
		{"pbft_tentative_batches_total", "Batches executed tentatively (after prepare, before commit).", func(s Snapshot) uint64 { return s.TentativeBatches }},
		{"pbft_view_changes_started_total", "View changes started (vote broadcast).", func(s Snapshot) uint64 { return s.ViewChangesStarted }},
		{"pbft_view_changes_total", "View changes completed (new view installed).", func(s Snapshot) uint64 { return s.ViewChangesInstalled }},
		{"pbft_checkpoints_total", "Local checkpoints produced.", func(s Snapshot) uint64 { return s.Checkpoints }},
		{"pbft_stable_checkpoints_total", "Checkpoints stabilized by 2f+1 proof.", func(s Snapshot) uint64 { return s.StableCheckpoints }},
		{"pbft_state_transfers_started_total", "State transfers started.", func(s Snapshot) uint64 { return s.StateTransfersStarted }},
		{"pbft_state_transfers_total", "State transfers completed.", func(s Snapshot) uint64 { return s.StateTransfersCompleted }},
		{"pbft_state_transfers_aborted_total", "State transfers aborted.", func(s Snapshot) uint64 { return s.StateTransfersAborted }},
		{"pbft_session_hellos_total", "Client MAC sessions (re-)established.", func(s Snapshot) uint64 { return s.SessionHellos }},
		{"pbft_joins_total", "Dynamic clients admitted.", func(s Snapshot) uint64 { return s.Joins }},
		{"pbft_leaves_total", "Dynamic clients departed.", func(s Snapshot) uint64 { return s.Leaves }},
		{"pbft_evictions_total", "Client sessions evicted.", func(s Snapshot) uint64 { return s.Evictions }},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
		if multi {
			for _, g := range ids {
				fmt.Fprintf(w, "%s{group=\"%d\"} %d\n", c.name, g, c.pick(snaps[g]))
			}
		} else {
			fmt.Fprintf(w, "%s %d\n", c.name, c.pick(snaps[ids[0]]))
		}
	}
	for _, hist := range []struct {
		name, help string
		pick       func(Snapshot) HistogramSnapshot
	}{
		{"pbft_batch_size", "Requests per agreed batch.", func(s Snapshot) HistogramSnapshot { return s.BatchSize }},
		{"pbft_view_change_duration_seconds", "View-change start to new-view install.", func(s Snapshot) HistogramSnapshot { return s.ViewChangeDuration }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", hist.name, hist.help, hist.name)
		if multi {
			for _, g := range ids {
				writeHistogramSeries(w, hist.name, fmt.Sprintf("group=\"%d\"", g), hist.pick(snaps[g]))
			}
		} else {
			writeHistogramSeries(w, hist.name, "", hist.pick(snaps[ids[0]]))
		}
	}
	m.writePhases(w, multi)

	m.infoMu.Lock()
	infos := append([]*replicaInfoSource(nil), m.infos...)
	transports := append([]transportSource(nil), m.transports...)
	m.infoMu.Unlock()
	writeTransports(w, transports, multi)
	if len(infos) == 0 {
		return
	}
	type gaugeRow struct {
		labels string
		info   pbft.ReplicaInfo
	}
	rows := make([]gaugeRow, 0, len(infos))
	for _, src := range infos {
		labels := fmt.Sprintf("replica=\"%d\"", src.id)
		if multi {
			labels = fmt.Sprintf("group=\"%d\",replica=\"%d\"", src.group, src.id)
		}
		rows = append(rows, gaugeRow{labels: labels, info: src.poll(gaugePollTimeout)})
	}
	fmt.Fprintf(w, "# HELP pbft_exec_queue_depth Operations inside the execution engine (applies + detached reads).\n# TYPE pbft_exec_queue_depth gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_exec_queue_depth{%s} %d\n", r.labels, r.info.ExecQueueDepth)
	}
	fmt.Fprintf(w, "# HELP pbft_ingress_backlog Packets verified (or being verified) and not yet consumed by the protocol loop.\n# TYPE pbft_ingress_backlog gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_ingress_backlog{%s} %d\n", r.labels, r.info.IngressBacklog)
	}
	fmt.Fprintf(w, "# HELP pbft_batch_window Batch-size bound for the next pre-prepare (adaptive controller's live window, or the static MaxBatch).\n# TYPE pbft_batch_window gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_batch_window{%s} %d\n", r.labels, r.info.BatchWindow)
	}
	fmt.Fprintf(w, "# HELP pbft_last_exec Last executed sequence number.\n# TYPE pbft_last_exec gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_last_exec{%s} %d\n", r.labels, r.info.LastExec)
	}
	fmt.Fprintf(w, "# HELP pbft_last_stable Last stable checkpoint sequence number.\n# TYPE pbft_last_stable gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_last_stable{%s} %d\n", r.labels, r.info.LastStable)
	}
	fmt.Fprintf(w, "# HELP pbft_view Current view.\n# TYPE pbft_view gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_view{%s} %d\n", r.labels, r.info.View)
	}
	fmt.Fprintf(w, "# HELP pbft_client_sessions Clients currently holding live MAC session keys (bounded by Options.MaxClientSessions).\n# TYPE pbft_client_sessions gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_client_sessions{%s} %d\n", r.labels, r.info.ClientSessions)
	}
	// Ingress drop verdicts as typed counters: an active adversary shows
	// up here (forged MACs under "auth", garbage floods under
	// "malformed", equivocation under "conflicting_preprepare") without
	// perturbing the protocol-event counters above.
	fmt.Fprintf(w, "# HELP pbft_auth_failures_total Packets rejected for failed MAC/signature authentication.\n# TYPE pbft_auth_failures_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_auth_failures_total{%s} %d\n", r.labels, r.info.Stats.DroppedBadAuth)
	}
	fmt.Fprintf(w, "# HELP pbft_drops_total Packets dropped before reaching the protocol, by reason.\n# TYPE pbft_drops_total counter\n")
	for _, r := range rows {
		st := r.info.Stats
		fmt.Fprintf(w, "pbft_drops_total{%s,reason=\"auth\"} %d\n", r.labels, st.DroppedBadAuth)
		fmt.Fprintf(w, "pbft_drops_total{%s,reason=\"malformed\"} %d\n", r.labels, st.DroppedMalformed)
		fmt.Fprintf(w, "pbft_drops_total{%s,reason=\"ignored\"} %d\n", r.labels, st.DroppedIgnored)
		fmt.Fprintf(w, "pbft_drops_total{%s,reason=\"nondet\"} %d\n", r.labels, st.RejectedNonDet)
		fmt.Fprintf(w, "pbft_drops_total{%s,reason=\"conflicting_preprepare\"} %d\n", r.labels, st.ConflictingPrePrepares)
		fmt.Fprintf(w, "pbft_drops_total{%s,reason=\"forged_join\"} %d\n", r.labels, st.DroppedForgedJoins)
	}

	// Durable-replica series render only for replicas running with a
	// data directory, so a diskless deployment's exposition stays
	// byte-identical to one scraped before durability existed.
	durable := rows[:0:0]
	for _, r := range rows {
		if r.info.Stats.DurableNow {
			durable = append(durable, r)
		}
	}
	if len(durable) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP pbft_restarts_total Recoveries from an existing on-disk manifest (0 on first boot).\n# TYPE pbft_restarts_total counter\n")
	for _, r := range durable {
		fmt.Fprintf(w, "pbft_restarts_total{%s} %d\n", r.labels, r.info.Stats.Restarts)
	}
	fmt.Fprintf(w, "# HELP pbft_recovery_seconds Duration of the last disk recovery (WAL replay + manifest restore) at startup.\n# TYPE pbft_recovery_seconds gauge\n")
	for _, r := range durable {
		fmt.Fprintf(w, "pbft_recovery_seconds{%s} %g\n", r.labels, float64(r.info.Stats.RecoveryNanos)/1e9)
	}
	fmt.Fprintf(w, "# HELP pbft_wal_fsyncs_total WAL commit fsyncs (one per persisted stable checkpoint batch).\n# TYPE pbft_wal_fsyncs_total counter\n")
	for _, r := range durable {
		fmt.Fprintf(w, "pbft_wal_fsyncs_total{%s} %d\n", r.labels, r.info.Stats.WALFsyncs)
	}
	fmt.Fprintf(w, "# HELP pbft_wal_bytes_total Bytes appended to the write-ahead log.\n# TYPE pbft_wal_bytes_total counter\n")
	for _, r := range durable {
		fmt.Fprintf(w, "pbft_wal_bytes_total{%s} %d\n", r.labels, r.info.Stats.WALBytes)
	}
	fmt.Fprintf(w, "# HELP pbft_wal_checkpoints_total WAL fold-backs into the base pages file.\n# TYPE pbft_wal_checkpoints_total counter\n")
	for _, r := range durable {
		fmt.Fprintf(w, "pbft_wal_checkpoints_total{%s} %d\n", r.labels, r.info.Stats.WALCheckpoints)
	}
	fmt.Fprintf(w, "# HELP pbft_persist_errors_total Failed stable-checkpoint persists (the store latches broken; the replica continues in-memory).\n# TYPE pbft_persist_errors_total counter\n")
	for _, r := range durable {
		fmt.Fprintf(w, "pbft_persist_errors_total{%s} %d\n", r.labels, r.info.Stats.PersistErrors)
	}
}

// writePhases renders pbft_phase_seconds: one histogram per
// (phase, group, replica) tuple fed by the flight recorders, in
// pipeline-phase, group, then replica order so scrapes are
// deterministic. The group label appears only in multi-group
// registries.
func (m *Metrics) writePhases(w io.Writer, multi bool) {
	type groupPhaseKey struct {
		group int
		k     phaseKey
	}
	m.mu.Lock()
	var keys []groupPhaseKey
	snaps := make(map[groupPhaseKey]HistogramSnapshot)
	for _, g := range m.groupIDs() {
		for k, h := range m.groups[g].phases {
			gk := groupPhaseKey{group: g, k: k}
			keys = append(keys, gk)
			snaps[gk] = h.snapshot()
		}
	}
	m.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].k.phase != keys[j].k.phase {
			return keys[i].k.phase < keys[j].k.phase
		}
		if keys[i].group != keys[j].group {
			return keys[i].group < keys[j].group
		}
		return keys[i].k.replica < keys[j].k.replica
	})
	fmt.Fprintf(w, "# HELP pbft_phase_seconds Per-request lifecycle phase latency (adjacent stamp points; end_to_end is first to last).\n# TYPE pbft_phase_seconds histogram\n")
	for _, gk := range keys {
		h := snaps[gk]
		labels := fmt.Sprintf("phase=%q,replica=\"%d\"", gk.k.phase.String(), gk.k.replica)
		if multi {
			labels = fmt.Sprintf("group=\"%d\",%s", gk.group, labels)
		}
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "pbft_phase_seconds_bucket{%s,le=\"%g\"} %d\n", labels, b, cum)
		}
		fmt.Fprintf(w, "pbft_phase_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, h.Count)
		fmt.Fprintf(w, "pbft_phase_seconds_sum{%s} %g\n", labels, h.Sum)
		fmt.Fprintf(w, "pbft_phase_seconds_count{%s} %d\n", labels, h.Count)
	}
}

// WriteUDPStats renders only the pbft_udp_* transport series. Front-ends
// that expose client metrics plus their own UDP endpoint counters
// (pbft-gateway) and the bench's -metrics summary use it to surface the
// syscall-batching numbers without the full replica exposition.
func (m *Metrics) WriteUDPStats(w io.Writer) {
	m.mu.Lock()
	multi := len(m.groups) > 1
	m.mu.Unlock()
	m.infoMu.Lock()
	transports := append([]transportSource(nil), m.transports...)
	m.infoMu.Unlock()
	writeTransports(w, transports, multi)
}

// writeTransports renders the registered UDP endpoints' syscall-batching
// counters: totals plus occupancy histograms over the fixed BatchStats
// buckets (1, 2-3, 4-7, 8-15, 16+ datagrams per syscall).
func writeTransports(w io.Writer, transports []transportSource, multi bool) {
	if len(transports) == 0 {
		return
	}
	rows := make([]transportRow, 0, len(transports))
	for _, src := range transports {
		labels := fmt.Sprintf("replica=\"%d\"", src.id)
		if multi {
			labels = fmt.Sprintf("group=\"%d\",replica=\"%d\"", src.group, src.id)
		}
		rows = append(rows, transportRow{labels: labels, s: src.stats()})
	}
	fmt.Fprintf(w, "# HELP pbft_udp_recv_syscalls_total Receive syscalls that returned at least one datagram.\n# TYPE pbft_udp_recv_syscalls_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_udp_recv_syscalls_total{%s} %d\n", r.labels, r.s.RecvCalls)
	}
	fmt.Fprintf(w, "# HELP pbft_udp_recv_datagrams_total Datagrams returned by receive syscalls.\n# TYPE pbft_udp_recv_datagrams_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_udp_recv_datagrams_total{%s} %d\n", r.labels, r.s.RecvMsgs)
	}
	fmt.Fprintf(w, "# HELP pbft_udp_send_syscalls_total Send syscalls issued.\n# TYPE pbft_udp_send_syscalls_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_udp_send_syscalls_total{%s} %d\n", r.labels, r.s.SendCalls)
	}
	fmt.Fprintf(w, "# HELP pbft_udp_send_datagrams_total Datagrams moved by send syscalls.\n# TYPE pbft_udp_send_datagrams_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_udp_send_datagrams_total{%s} %d\n", r.labels, r.s.SendMsgs)
	}
	writeOccupancy(w, "pbft_udp_recv_batch_occupancy", "Datagrams per receive syscall.", rows,
		func(s pbft.BatchStats) ([5]uint64, uint64, uint64) { return s.RecvOccupancy, s.RecvCalls, s.RecvMsgs })
	writeOccupancy(w, "pbft_udp_send_batch_occupancy", "Datagrams per send syscall.", rows,
		func(s pbft.BatchStats) ([5]uint64, uint64, uint64) { return s.SendOccupancy, s.SendCalls, s.SendMsgs })
}

// transportRow is one endpoint's counter snapshot at scrape time.
type transportRow struct {
	labels string
	s      pbft.BatchStats
}

// writeOccupancy renders one occupancy histogram per endpoint. The bucket
// counts are syscalls, the sum is datagrams — so sum/count is the mean
// batch occupancy, exactly like a latency histogram's mean.
func writeOccupancy(w io.Writer, name, help string, rows []transportRow, pick func(pbft.BatchStats) ([5]uint64, uint64, uint64)) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, r := range rows {
		occ, calls, msgs := pick(r.s)
		cum := uint64(0)
		for i, b := range pbft.BatchOccupancyBounds {
			cum += occ[i]
			fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", name, r.labels, b, cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, r.labels, calls)
		fmt.Fprintf(w, "%s_sum{%s} %d\n", name, r.labels, msgs)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, r.labels, calls)
	}
}

func writeCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeHistogram(w io.Writer, name, help string, h HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writeHistogramSeries(w, name, "", h)
}

// writeHistogramSeries renders one histogram's bucket/sum/count lines,
// with optional extra labels (the multi-group group dimension). HELP and
// TYPE headers are the caller's responsibility so several labeled series
// can share one metric family.
func writeHistogramSeries(w io.Writer, name, labels string, h HistogramSnapshot) {
	brace := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		default:
			return "{" + labels + "," + extra + "}"
		}
	}
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(fmt.Sprintf("le=\"%g\"", b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace("le=\"+Inf\""), h.Count)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, brace(""), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, brace(""), h.Count)
}

// Handler serves the /metrics content.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.WritePrometheus(w)
	})
}

// FlightHandler serves the registered flight recorders' snapshots as a
// JSON array (one pbft.FlightDump per recorder, in registration order).
// ?replica=N narrows the response to one recorder's dump.
func (m *Metrics) FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.infoMu.Lock()
		flights := append([]flightSource(nil), m.flights...)
		m.infoMu.Unlock()
		var only *uint32
		if v := r.URL.Query().Get("replica"); v != "" {
			id64, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				http.Error(w, "bad replica id", http.StatusBadRequest)
				return
			}
			id := uint32(id64)
			only = &id
		}
		dumps := make([]pbft.FlightDump, 0, len(flights))
		for _, f := range flights {
			if only != nil && f.id != *only {
				continue
			}
			dumps = append(dumps, f.dump())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dumps)
	})
}

// Mux builds the node's observability endpoint: /metrics serving the
// registry, /healthz answering 200 while healthy() is true (503
// otherwise; a nil healthy is always healthy), and /debug/flight
// serving the registered flight recorders' timelines as JSON.
// cmd/pbft-server mounts it with the replica's Running method.
func Mux(m *Metrics, healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/debug/flight", m.FlightHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}
