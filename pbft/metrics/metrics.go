// Package metrics is the aggregating observability surface of the PBFT
// node runtime: a pbft.Tracer implementation that folds the typed event
// stream into counters and latency histograms, polls replica gauges
// (execution-engine queue depth, ingress verify backlog), and exposes
// everything over HTTP in the Prometheus text format.
//
// One Metrics registry may serve one replica (cmd/pbft-server) or
// aggregate several (the bench harness registers every replica of a
// cluster); events carry the reporting replica's id and the hooks are
// safe for concurrent use. Typical wiring:
//
//	m := metrics.New()
//	rep, _ := pbft.NewReplica(cfg, id, kp, conn, app) // opts.WithTracer(m)
//	m.AddReplica(id, rep.Info)
//	go http.ListenAndServe(addr, metrics.Mux(m, rep.Running))
//	go rep.Run(ctx)
//
// The tracer hooks run on the replica's protocol loop, so they do only
// constant work under a mutex: counter bumps and bounded histogram
// inserts. Everything else (gauge polling, text rendering) happens on the
// scraper's goroutine.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/pbft"
)

// phaseKey identifies one replica's per-phase latency series.
type phaseKey struct {
	replica uint32
	phase   pbft.Phase
}

// Metrics implements pbft.Tracer by aggregation. The zero value is not
// usable; construct with New.
type Metrics struct {
	mu sync.Mutex

	commits            uint64
	batches            uint64
	requests           uint64
	tentativeBatches   uint64
	vcStarted          uint64
	vcInstalled        uint64
	checkpoints        uint64
	stableCheckpoints  uint64
	transfersStarted   uint64
	transfersCompleted uint64
	transfersAborted   uint64
	sessionHellos      uint64
	joins              uint64
	leaves             uint64
	evictions          uint64

	batchSize  *histogram
	vcDuration *histogram // seconds, start -> install per replica

	// phases holds one latency histogram per (replica, phase), fed by
	// flight recorders through ObservePhase as request timelines
	// complete. It replaces the old tentative->commit histogram: the
	// prepare->commit interval is now one segment of the full
	// per-request breakdown (pbft_phase_seconds).
	phases map[phaseKey]*histogram

	// vcStart maps a replica's view-change start time until the install
	// closes it (bounded by the replica count).
	vcStart map[uint32]time.Time

	now func() time.Time

	infoMu     sync.Mutex
	infos      []*replicaInfoSource
	transports []transportSource
	flights    []flightSource
}

// flightSource is one registered flight recorder's dump function,
// served by the /debug/flight endpoint.
type flightSource struct {
	id   uint32
	dump func() pbft.FlightDump
}

// transportSource is one registered UDP endpoint's syscall-batching
// counter snapshot function. BatchStats reads are plain atomic loads, so
// unlike replica gauges they need no timeout machinery.
type transportSource struct {
	id    uint32
	stats func() pbft.BatchStats
}

// replicaInfoSource wraps one replica's Info func with single-flight,
// timeout-bounded polling: Replica.Info round-trips through the protocol
// loop, so a busy (or application-blocked) loop must not hang a scrape
// or pile up handler goroutines — a slow poll is abandoned to the single
// outstanding goroutine and the scrape serves the last known values.
type replicaInfoSource struct {
	id   uint32
	info func() pbft.ReplicaInfo

	mu       sync.Mutex
	last     pbft.ReplicaInfo
	pollDone chan struct{} // non-nil while a poll is in flight
}

// gaugePollTimeout bounds how long one scrape waits for fresh gauges.
const gaugePollTimeout = 200 * time.Millisecond

// poll returns fresh info when the loop answers within the timeout, and
// the previous snapshot otherwise. At most one poll goroutine exists per
// source regardless of scrape frequency.
func (s *replicaInfoSource) poll(timeout time.Duration) pbft.ReplicaInfo {
	s.mu.Lock()
	done := s.pollDone
	if done == nil {
		done = make(chan struct{})
		s.pollDone = done
		go func() {
			info := s.info()
			s.mu.Lock()
			s.last = info
			s.pollDone = nil
			s.mu.Unlock()
			close(done)
		}()
	}
	s.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// phaseBounds are the pbft_phase_seconds bucket bounds: phases span
// microseconds (ingress->verify) to seconds (chaos recovery), so the
// grid starts far below the old commit-latency floor.
var phaseBounds = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// New builds an empty registry.
func New() *Metrics {
	return &Metrics{
		batchSize:  newHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		vcDuration: newHistogram([]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}),
		phases:     make(map[phaseKey]*histogram),
		vcStart:    make(map[uint32]time.Time),
		now:        time.Now,
	}
}

// ObservePhase implements the flight recorder's sink interface
// (pbft.PhaseSink): one adjacent-phase segment (or the synthetic
// end-to-end value) of a completed request timeline. Called from
// whatever goroutine finalizes the timeline, so it does only a bounded
// histogram insert under the registry mutex.
func (m *Metrics) ObservePhase(replica uint32, phase pbft.Phase, d time.Duration) {
	k := phaseKey{replica, phase}
	m.mu.Lock()
	h, ok := m.phases[k]
	if !ok {
		h = newHistogram(phaseBounds)
		m.phases[k] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// AddFlight registers a flight recorder's dump function (typically
// Replica.FlightDump): the /debug/flight endpoint serves every
// registered recorder's snapshot as JSON. Safe to call while serving.
func (m *Metrics) AddFlight(id uint32, dump func() pbft.FlightDump) {
	m.infoMu.Lock()
	m.flights = append(m.flights, flightSource{id: id, dump: dump})
	m.infoMu.Unlock()
}

// AddReplica registers a gauge source: the replica's Info func is polled
// at scrape time for queue-depth and backlog gauges. Safe to call while
// serving.
func (m *Metrics) AddReplica(id uint32, info func() pbft.ReplicaInfo) {
	m.infoMu.Lock()
	m.infos = append(m.infos, &replicaInfoSource{id: id, info: info})
	m.infoMu.Unlock()
}

// AddTransport registers a UDP endpoint's syscall-batching counters
// (UDPConn.BatchStats), exposed as the pbft_udp_* series: syscall and
// datagram totals plus datagrams-per-syscall occupancy histograms.
// Safe to call while serving.
func (m *Metrics) AddTransport(id uint32, stats func() pbft.BatchStats) {
	m.infoMu.Lock()
	m.transports = append(m.transports, transportSource{id: id, stats: stats})
	m.infoMu.Unlock()
}

// --- pbft.Tracer ---------------------------------------------------------

// OnViewChange implements pbft.Tracer.
func (m *Metrics) OnViewChange(e pbft.ViewChangeEvent) {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e.Phase {
	case pbft.ViewChangeStart:
		m.vcStarted++
		if _, running := m.vcStart[e.Replica]; !running {
			// A cascade (start for v+1 after a stalled start for v) keeps
			// the first start time: the sample measures how long the
			// replica was without an operating view.
			m.vcStart[e.Replica] = t
		}
	case pbft.ViewChangeInstall:
		m.vcInstalled++
		if s, ok := m.vcStart[e.Replica]; ok {
			m.vcDuration.observe(t.Sub(s).Seconds())
			delete(m.vcStart, e.Replica)
		}
	}
}

// OnCheckpoint implements pbft.Tracer.
func (m *Metrics) OnCheckpoint(e pbft.CheckpointEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.Stable {
		m.stableCheckpoints++
	} else {
		m.checkpoints++
	}
}

// OnStateTransfer implements pbft.Tracer.
func (m *Metrics) OnStateTransfer(e pbft.StateTransferEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e.Phase {
	case pbft.StateTransferStart:
		m.transfersStarted++
	case pbft.StateTransferFinish:
		m.transfersCompleted++
	case pbft.StateTransferAbort:
		m.transfersAborted++
	}
}

// OnBatch implements pbft.Tracer.
func (m *Metrics) OnBatch(e pbft.BatchEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.requests += uint64(e.Requests)
	m.batchSize.observe(float64(e.Requests))
	if e.Tentative {
		m.tentativeBatches++
	}
}

// OnCommit implements pbft.Tracer.
func (m *Metrics) OnCommit(e pbft.CommitEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commits++
}

// OnClientSession implements pbft.Tracer.
func (m *Metrics) OnClientSession(e pbft.ClientSessionEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e.Kind {
	case pbft.SessionHello:
		m.sessionHellos++
	case pbft.SessionJoin:
		m.joins++
	case pbft.SessionLeave:
		m.leaves++
	case pbft.SessionEvict:
		m.evictions++
	}
}

// --- Snapshots -----------------------------------------------------------

// Snapshot is a point-in-time copy of every aggregate. Snapshots support
// Sub for per-window deltas (the bench prints one per experiment).
type Snapshot struct {
	Commits            uint64
	Batches            uint64
	Requests           uint64
	TentativeBatches   uint64
	ViewChangesStarted uint64
	// ViewChangesInstalled counts completed view changes (new view
	// entered); the harness asserts on it ("exactly one view change").
	ViewChangesInstalled    uint64
	Checkpoints             uint64
	StableCheckpoints       uint64
	StateTransfersStarted   uint64
	StateTransfersCompleted uint64
	StateTransfersAborted   uint64
	SessionHellos           uint64
	Joins                   uint64
	Leaves                  uint64
	Evictions               uint64

	BatchSize          HistogramSnapshot
	ViewChangeDuration HistogramSnapshot // seconds

	// Phases holds one latency histogram per request-lifecycle phase
	// (seconds), keyed by the snake_case phase label and merged across
	// replicas; phase "end_to_end" is the synthetic whole-timeline
	// value. Populated only when flight recorders feed this registry.
	Phases map[string]HistogramSnapshot
}

// Snapshot returns a consistent copy of the aggregates.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var phases map[string]HistogramSnapshot
	if len(m.phases) > 0 {
		phases = make(map[string]HistogramSnapshot, len(m.phases))
		for k, h := range m.phases {
			phases[k.phase.String()] = phases[k.phase.String()].merge(h.snapshot())
		}
	}
	return Snapshot{
		Commits:                 m.commits,
		Batches:                 m.batches,
		Requests:                m.requests,
		TentativeBatches:        m.tentativeBatches,
		ViewChangesStarted:      m.vcStarted,
		ViewChangesInstalled:    m.vcInstalled,
		Checkpoints:             m.checkpoints,
		StableCheckpoints:       m.stableCheckpoints,
		StateTransfersStarted:   m.transfersStarted,
		StateTransfersCompleted: m.transfersCompleted,
		StateTransfersAborted:   m.transfersAborted,
		SessionHellos:           m.sessionHellos,
		Joins:                   m.joins,
		Leaves:                  m.leaves,
		Evictions:               m.evictions,
		BatchSize:               m.batchSize.snapshot(),
		ViewChangeDuration:      m.vcDuration.snapshot(),
		Phases:                  phases,
	}
}

// Sub returns the delta s - prev (counters and histogram buckets are
// monotone, so the difference is a valid window measurement).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := s
	out.Commits -= prev.Commits
	out.Batches -= prev.Batches
	out.Requests -= prev.Requests
	out.TentativeBatches -= prev.TentativeBatches
	out.ViewChangesStarted -= prev.ViewChangesStarted
	out.ViewChangesInstalled -= prev.ViewChangesInstalled
	out.Checkpoints -= prev.Checkpoints
	out.StableCheckpoints -= prev.StableCheckpoints
	out.StateTransfersStarted -= prev.StateTransfersStarted
	out.StateTransfersCompleted -= prev.StateTransfersCompleted
	out.StateTransfersAborted -= prev.StateTransfersAborted
	out.SessionHellos -= prev.SessionHellos
	out.Joins -= prev.Joins
	out.Leaves -= prev.Leaves
	out.Evictions -= prev.Evictions
	out.BatchSize = s.BatchSize.sub(prev.BatchSize)
	out.ViewChangeDuration = s.ViewChangeDuration.sub(prev.ViewChangeDuration)
	if len(s.Phases) > 0 {
		out.Phases = make(map[string]HistogramSnapshot, len(s.Phases))
		for name, h := range s.Phases {
			out.Phases[name] = h.sub(prev.Phases[name])
		}
	}
	return out
}

// Summary renders a one-line digest (the bench prints it per experiment).
func (s Snapshot) Summary() string {
	return fmt.Sprintf(
		"commits=%d batches=%d reqs=%d batch-avg=%.1f view-changes=%d checkpoints=%d stable=%d state-transfers=%d sessions(hello/join/leave/evict)=%d/%d/%d/%d",
		s.Commits, s.Batches, s.Requests, s.BatchSize.Mean(),
		s.ViewChangesInstalled, s.Checkpoints, s.StableCheckpoints,
		s.StateTransfersCompleted, s.SessionHellos, s.Joins, s.Leaves, s.Evictions)
}

// --- Histograms ----------------------------------------------------------

// histogram is a fixed-bound bucket histogram (Prometheus shape:
// cumulative buckets at scrape time, plain counts internally).
type histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	sort.Float64s(bounds)
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe inserts one sample. Callers hold the registry mutex.
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

func (h *histogram) snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// HistogramSnapshot is a copied histogram state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the overflow (+Inf) bucket.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Mean returns the average observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket the rank falls into — the usual Prometheus
// histogram_quantile estimate. Values beyond the last finite bound clamp
// to it; an empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, b := range h.Bounds {
		prev := cum
		cum += h.Counts[i]
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if h.Counts[i] == 0 {
				return b
			}
			return lo + (b-lo)*(rank-float64(prev))/float64(h.Counts[i])
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// merge folds another snapshot over the same bounds into this one (a
// zero-value receiver adopts the other's shape) — used to aggregate
// per-replica phase series into one per-phase snapshot.
func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	if h.Count == 0 && len(h.Counts) == 0 {
		return o
	}
	out := HistogramSnapshot{Bounds: h.Bounds, Sum: h.Sum + o.Sum, Count: h.Count + o.Count}
	out.Counts = append([]uint64(nil), h.Counts...)
	for i := range o.Counts {
		if i < len(out.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}

func (h HistogramSnapshot) sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Bounds: h.Bounds, Sum: h.Sum - prev.Sum, Count: h.Count - prev.Count}
	out.Counts = make([]uint64, len(h.Counts))
	for i := range h.Counts {
		c := h.Counts[i]
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		out.Counts[i] = c
	}
	return out
}

// --- HTTP exposition -----------------------------------------------------

// WritePrometheus renders every aggregate — and one gauge set per
// registered replica — in the Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	s := m.Snapshot()
	writeCounter(w, "pbft_commits_total", "Sequence numbers committed (2f+1 certificates).", s.Commits)
	writeCounter(w, "pbft_batches_total", "Agreed batches handed to the execution engine.", s.Batches)
	writeCounter(w, "pbft_requests_total", "Requests inside agreed batches.", s.Requests)
	writeCounter(w, "pbft_tentative_batches_total", "Batches executed tentatively (after prepare, before commit).", s.TentativeBatches)
	writeCounter(w, "pbft_view_changes_started_total", "View changes started (vote broadcast).", s.ViewChangesStarted)
	writeCounter(w, "pbft_view_changes_total", "View changes completed (new view installed).", s.ViewChangesInstalled)
	writeCounter(w, "pbft_checkpoints_total", "Local checkpoints produced.", s.Checkpoints)
	writeCounter(w, "pbft_stable_checkpoints_total", "Checkpoints stabilized by 2f+1 proof.", s.StableCheckpoints)
	writeCounter(w, "pbft_state_transfers_started_total", "State transfers started.", s.StateTransfersStarted)
	writeCounter(w, "pbft_state_transfers_total", "State transfers completed.", s.StateTransfersCompleted)
	writeCounter(w, "pbft_state_transfers_aborted_total", "State transfers aborted.", s.StateTransfersAborted)
	writeCounter(w, "pbft_session_hellos_total", "Client MAC sessions (re-)established.", s.SessionHellos)
	writeCounter(w, "pbft_joins_total", "Dynamic clients admitted.", s.Joins)
	writeCounter(w, "pbft_leaves_total", "Dynamic clients departed.", s.Leaves)
	writeCounter(w, "pbft_evictions_total", "Client sessions evicted.", s.Evictions)
	writeHistogram(w, "pbft_batch_size", "Requests per agreed batch.", s.BatchSize)
	writeHistogram(w, "pbft_view_change_duration_seconds", "View-change start to new-view install.", s.ViewChangeDuration)
	m.writePhases(w)

	m.infoMu.Lock()
	infos := append([]*replicaInfoSource(nil), m.infos...)
	transports := append([]transportSource(nil), m.transports...)
	m.infoMu.Unlock()
	writeTransports(w, transports)
	if len(infos) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP pbft_exec_queue_depth Operations inside the execution engine (applies + detached reads).\n# TYPE pbft_exec_queue_depth gauge\n")
	type gaugeRow struct {
		id   uint32
		info pbft.ReplicaInfo
	}
	rows := make([]gaugeRow, 0, len(infos))
	for _, src := range infos {
		rows = append(rows, gaugeRow{id: src.id, info: src.poll(gaugePollTimeout)})
	}
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_exec_queue_depth{replica=\"%d\"} %d\n", r.id, r.info.ExecQueueDepth)
	}
	fmt.Fprintf(w, "# HELP pbft_ingress_backlog Packets verified (or being verified) and not yet consumed by the protocol loop.\n# TYPE pbft_ingress_backlog gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_ingress_backlog{replica=\"%d\"} %d\n", r.id, r.info.IngressBacklog)
	}
	fmt.Fprintf(w, "# HELP pbft_batch_window Batch-size bound for the next pre-prepare (adaptive controller's live window, or the static MaxBatch).\n# TYPE pbft_batch_window gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_batch_window{replica=\"%d\"} %d\n", r.id, r.info.BatchWindow)
	}
	fmt.Fprintf(w, "# HELP pbft_last_exec Last executed sequence number.\n# TYPE pbft_last_exec gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_last_exec{replica=\"%d\"} %d\n", r.id, r.info.LastExec)
	}
	fmt.Fprintf(w, "# HELP pbft_last_stable Last stable checkpoint sequence number.\n# TYPE pbft_last_stable gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_last_stable{replica=\"%d\"} %d\n", r.id, r.info.LastStable)
	}
	fmt.Fprintf(w, "# HELP pbft_view Current view.\n# TYPE pbft_view gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_view{replica=\"%d\"} %d\n", r.id, r.info.View)
	}
	fmt.Fprintf(w, "# HELP pbft_client_sessions Clients currently holding live MAC session keys (bounded by Options.MaxClientSessions).\n# TYPE pbft_client_sessions gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_client_sessions{replica=\"%d\"} %d\n", r.id, r.info.ClientSessions)
	}
	// Ingress drop verdicts as typed counters: an active adversary shows
	// up here (forged MACs under "auth", garbage floods under
	// "malformed", equivocation under "conflicting_preprepare") without
	// perturbing the protocol-event counters above.
	fmt.Fprintf(w, "# HELP pbft_auth_failures_total Packets rejected for failed MAC/signature authentication.\n# TYPE pbft_auth_failures_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_auth_failures_total{replica=\"%d\"} %d\n", r.id, r.info.Stats.DroppedBadAuth)
	}
	fmt.Fprintf(w, "# HELP pbft_drops_total Packets dropped before reaching the protocol, by reason.\n# TYPE pbft_drops_total counter\n")
	for _, r := range rows {
		st := r.info.Stats
		fmt.Fprintf(w, "pbft_drops_total{replica=\"%d\",reason=\"auth\"} %d\n", r.id, st.DroppedBadAuth)
		fmt.Fprintf(w, "pbft_drops_total{replica=\"%d\",reason=\"malformed\"} %d\n", r.id, st.DroppedMalformed)
		fmt.Fprintf(w, "pbft_drops_total{replica=\"%d\",reason=\"ignored\"} %d\n", r.id, st.DroppedIgnored)
		fmt.Fprintf(w, "pbft_drops_total{replica=\"%d\",reason=\"nondet\"} %d\n", r.id, st.RejectedNonDet)
		fmt.Fprintf(w, "pbft_drops_total{replica=\"%d\",reason=\"conflicting_preprepare\"} %d\n", r.id, st.ConflictingPrePrepares)
	}
}

// writePhases renders pbft_phase_seconds: one histogram per
// (phase, replica) pair fed by the flight recorders, in pipeline-phase
// then replica order so scrapes are deterministic.
func (m *Metrics) writePhases(w io.Writer) {
	m.mu.Lock()
	keys := make([]phaseKey, 0, len(m.phases))
	snaps := make(map[phaseKey]HistogramSnapshot, len(m.phases))
	for k, h := range m.phases {
		keys = append(keys, k)
		snaps[k] = h.snapshot()
	}
	m.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].phase != keys[j].phase {
			return keys[i].phase < keys[j].phase
		}
		return keys[i].replica < keys[j].replica
	})
	fmt.Fprintf(w, "# HELP pbft_phase_seconds Per-request lifecycle phase latency (adjacent stamp points; end_to_end is first to last).\n# TYPE pbft_phase_seconds histogram\n")
	for _, k := range keys {
		h := snaps[k]
		labels := fmt.Sprintf("phase=%q,replica=\"%d\"", k.phase.String(), k.replica)
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "pbft_phase_seconds_bucket{%s,le=\"%g\"} %d\n", labels, b, cum)
		}
		fmt.Fprintf(w, "pbft_phase_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, h.Count)
		fmt.Fprintf(w, "pbft_phase_seconds_sum{%s} %g\n", labels, h.Sum)
		fmt.Fprintf(w, "pbft_phase_seconds_count{%s} %d\n", labels, h.Count)
	}
}

// WriteUDPStats renders only the pbft_udp_* transport series. Front-ends
// that expose client metrics plus their own UDP endpoint counters
// (pbft-gateway) and the bench's -metrics summary use it to surface the
// syscall-batching numbers without the full replica exposition.
func (m *Metrics) WriteUDPStats(w io.Writer) {
	m.infoMu.Lock()
	transports := append([]transportSource(nil), m.transports...)
	m.infoMu.Unlock()
	writeTransports(w, transports)
}

// writeTransports renders the registered UDP endpoints' syscall-batching
// counters: totals plus occupancy histograms over the fixed BatchStats
// buckets (1, 2-3, 4-7, 8-15, 16+ datagrams per syscall).
func writeTransports(w io.Writer, transports []transportSource) {
	if len(transports) == 0 {
		return
	}
	rows := make([]transportRow, 0, len(transports))
	for _, src := range transports {
		rows = append(rows, transportRow{id: src.id, s: src.stats()})
	}
	fmt.Fprintf(w, "# HELP pbft_udp_recv_syscalls_total Receive syscalls that returned at least one datagram.\n# TYPE pbft_udp_recv_syscalls_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_udp_recv_syscalls_total{replica=\"%d\"} %d\n", r.id, r.s.RecvCalls)
	}
	fmt.Fprintf(w, "# HELP pbft_udp_recv_datagrams_total Datagrams returned by receive syscalls.\n# TYPE pbft_udp_recv_datagrams_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_udp_recv_datagrams_total{replica=\"%d\"} %d\n", r.id, r.s.RecvMsgs)
	}
	fmt.Fprintf(w, "# HELP pbft_udp_send_syscalls_total Send syscalls issued.\n# TYPE pbft_udp_send_syscalls_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_udp_send_syscalls_total{replica=\"%d\"} %d\n", r.id, r.s.SendCalls)
	}
	fmt.Fprintf(w, "# HELP pbft_udp_send_datagrams_total Datagrams moved by send syscalls.\n# TYPE pbft_udp_send_datagrams_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "pbft_udp_send_datagrams_total{replica=\"%d\"} %d\n", r.id, r.s.SendMsgs)
	}
	writeOccupancy(w, "pbft_udp_recv_batch_occupancy", "Datagrams per receive syscall.", rows,
		func(s pbft.BatchStats) ([5]uint64, uint64, uint64) { return s.RecvOccupancy, s.RecvCalls, s.RecvMsgs })
	writeOccupancy(w, "pbft_udp_send_batch_occupancy", "Datagrams per send syscall.", rows,
		func(s pbft.BatchStats) ([5]uint64, uint64, uint64) { return s.SendOccupancy, s.SendCalls, s.SendMsgs })
}

// transportRow is one endpoint's counter snapshot at scrape time.
type transportRow struct {
	id uint32
	s  pbft.BatchStats
}

// writeOccupancy renders one occupancy histogram per endpoint. The bucket
// counts are syscalls, the sum is datagrams — so sum/count is the mean
// batch occupancy, exactly like a latency histogram's mean.
func writeOccupancy(w io.Writer, name, help string, rows []transportRow, pick func(pbft.BatchStats) ([5]uint64, uint64, uint64)) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, r := range rows {
		occ, calls, msgs := pick(r.s)
		cum := uint64(0)
		for i, b := range pbft.BatchOccupancyBounds {
			cum += occ[i]
			fmt.Fprintf(w, "%s_bucket{replica=\"%d\",le=\"%d\"} %d\n", name, r.id, b, cum)
		}
		fmt.Fprintf(w, "%s_bucket{replica=\"%d\",le=\"+Inf\"} %d\n", name, r.id, calls)
		fmt.Fprintf(w, "%s_sum{replica=\"%d\"} %d\n", name, r.id, msgs)
		fmt.Fprintf(w, "%s_count{replica=\"%d\"} %d\n", name, r.id, calls)
	}
}

func writeCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeHistogram(w io.Writer, name, help string, h HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count)
}

// Handler serves the /metrics content.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.WritePrometheus(w)
	})
}

// FlightHandler serves the registered flight recorders' snapshots as a
// JSON array (one pbft.FlightDump per recorder, in registration order).
// ?replica=N narrows the response to one recorder's dump.
func (m *Metrics) FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.infoMu.Lock()
		flights := append([]flightSource(nil), m.flights...)
		m.infoMu.Unlock()
		var only *uint32
		if v := r.URL.Query().Get("replica"); v != "" {
			id64, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				http.Error(w, "bad replica id", http.StatusBadRequest)
				return
			}
			id := uint32(id64)
			only = &id
		}
		dumps := make([]pbft.FlightDump, 0, len(flights))
		for _, f := range flights {
			if only != nil && f.id != *only {
				continue
			}
			dumps = append(dumps, f.dump())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dumps)
	})
}

// Mux builds the node's observability endpoint: /metrics serving the
// registry, /healthz answering 200 while healthy() is true (503
// otherwise; a nil healthy is always healthy), and /debug/flight
// serving the registered flight recorders' timelines as JSON.
// cmd/pbft-server mounts it with the replica's Running method.
func Mux(m *Metrics, healthy func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/debug/flight", m.FlightHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}
