package metrics

import (
	"io"
	"net/http"
	"sync"
	"time"
)

// ClientMetrics instruments the client side of the protocol — a gateway
// or any embedder of pbft.Client — with request counters and a latency
// histogram, exposed in the same Prometheus text format as the replica
// registry. Safe for concurrent use.
type ClientMetrics struct {
	mu       sync.Mutex
	requests uint64
	failures uint64
	latency  *histogram // seconds
}

// NewClient builds an empty client-side registry.
func NewClient() *ClientMetrics {
	return &ClientMetrics{
		latency: newHistogram([]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}),
	}
}

// Observe records one completed call: its duration and outcome.
func (c *ClientMetrics) Observe(d time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	if err != nil {
		c.failures++
	}
	c.latency.observe(d.Seconds())
}

// ClientSnapshot is a point-in-time copy of the client aggregates.
type ClientSnapshot struct {
	Requests uint64
	Failures uint64
	Latency  HistogramSnapshot // seconds
}

// Snapshot returns a consistent copy of the aggregates.
func (c *ClientMetrics) Snapshot() ClientSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientSnapshot{Requests: c.requests, Failures: c.failures, Latency: c.latency.snapshot()}
}

// WritePrometheus renders the client aggregates.
func (c *ClientMetrics) WritePrometheus(w io.Writer) {
	s := c.Snapshot()
	writeCounter(w, "pbft_client_requests_total", "Client calls completed (any outcome).", s.Requests)
	writeCounter(w, "pbft_client_failures_total", "Client calls completed with an error.", s.Failures)
	writeHistogram(w, "pbft_client_latency_seconds", "Client call duration, submit to outcome.", s.Latency)
}

// Handler serves the /metrics content.
func (c *ClientMetrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.WritePrometheus(w)
	})
}
