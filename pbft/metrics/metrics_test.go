package metrics

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pbft"
)

func TestCountersAndSnapshotDelta(t *testing.T) {
	m := New()
	m.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 3, Tentative: true})
	m.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 1})
	m.OnViewChange(pbft.ViewChangeEvent{Replica: 1, Phase: pbft.ViewChangeStart, Target: 1})
	m.OnViewChange(pbft.ViewChangeEvent{Replica: 1, Phase: pbft.ViewChangeInstall, View: 1})
	m.OnCheckpoint(pbft.CheckpointEvent{Replica: 0, Seq: 8})
	m.OnCheckpoint(pbft.CheckpointEvent{Replica: 0, Seq: 8, Stable: true})
	m.OnStateTransfer(pbft.StateTransferEvent{Replica: 2, Phase: pbft.StateTransferStart, Seq: 8})
	m.OnStateTransfer(pbft.StateTransferEvent{Replica: 2, Phase: pbft.StateTransferFinish, Seq: 8})
	m.OnClientSession(pbft.ClientSessionEvent{Replica: 0, ClientID: 9, Kind: pbft.SessionHello})

	s := m.Snapshot()
	if s.Commits != 1 || s.Batches != 1 || s.Requests != 3 || s.TentativeBatches != 1 {
		t.Fatalf("batch/commit counters wrong: %+v", s)
	}
	if s.ViewChangesStarted != 1 || s.ViewChangesInstalled != 1 {
		t.Fatalf("view-change counters wrong: %+v", s)
	}
	if s.Checkpoints != 1 || s.StableCheckpoints != 1 {
		t.Fatalf("checkpoint counters wrong: %+v", s)
	}
	if s.StateTransfersStarted != 1 || s.StateTransfersCompleted != 1 || s.StateTransfersAborted != 0 {
		t.Fatalf("transfer counters wrong: %+v", s)
	}
	if s.SessionHellos != 1 {
		t.Fatalf("session counters wrong: %+v", s)
	}
	m.ObservePhase(0, pbft.PhaseCommitQuorum, 2*time.Millisecond)
	m.ObservePhase(1, pbft.PhaseCommitQuorum, 4*time.Millisecond)
	m.ObservePhase(0, pbft.PhaseEndToEnd, 10*time.Millisecond)
	s = m.Snapshot()
	if got := s.Phases[pbft.PhaseCommitQuorum.String()].Count; got != 2 {
		t.Fatalf("commit_quorum phase samples = %d, want 2 (merged across replicas)", got)
	}
	if got := s.Phases[pbft.PhaseEndToEnd.String()].Count; got != 1 {
		t.Fatalf("end_to_end phase samples = %d, want 1", got)
	}
	if s.ViewChangeDuration.Count != 1 {
		t.Fatalf("view-change duration samples = %d, want 1", s.ViewChangeDuration.Count)
	}
	if got := s.BatchSize.Mean(); got != 3 {
		t.Fatalf("batch size mean = %v, want 3", got)
	}

	// Windowed delta: only what happened after `before`.
	before := m.Snapshot()
	m.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 2})
	delta := m.Snapshot().Sub(before)
	if delta.Commits != 1 || delta.Batches != 0 {
		t.Fatalf("delta = %+v, want exactly one new commit", delta)
	}
	if delta.BatchSize.Count != 0 {
		t.Fatalf("delta histogram count = %d, want 0", delta.BatchSize.Count)
	}
}

func TestPrometheusExpositionAndHealthz(t *testing.T) {
	m := New()
	m.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 2})
	m.AddReplica(0, func() pbft.ReplicaInfo {
		info := pbft.ReplicaInfo{View: 3, LastExec: 17, LastStable: 16, ExecQueueDepth: 5, IngressBacklog: 7}
		info.Stats.DroppedBadAuth = 11
		info.Stats.DroppedMalformed = 13
		info.Stats.RejectedNonDet = 2
		info.Stats.ConflictingPrePrepares = 1
		return info
	})
	healthy := true
	srv := httptest.NewServer(Mux(m, func() bool { return healthy }))
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics", 200)
	for _, want := range []string{
		"pbft_batches_total 1",
		"pbft_requests_total 2",
		"pbft_batch_size_bucket{le=\"2\"} 1",
		"pbft_batch_size_count 1",
		"pbft_exec_queue_depth{replica=\"0\"} 5",
		"pbft_ingress_backlog{replica=\"0\"} 7",
		"pbft_view{replica=\"0\"} 3",
		"pbft_last_exec{replica=\"0\"} 17",
		"pbft_auth_failures_total{replica=\"0\"} 11",
		"pbft_drops_total{replica=\"0\",reason=\"auth\"} 11",
		"pbft_drops_total{replica=\"0\",reason=\"malformed\"} 13",
		"pbft_drops_total{replica=\"0\",reason=\"ignored\"} 0",
		"pbft_drops_total{replica=\"0\",reason=\"nondet\"} 2",
		"pbft_drops_total{replica=\"0\",reason=\"conflicting_preprepare\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	if got := httpGet(t, srv.URL+"/healthz", 200); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz = %q", got)
	}
	healthy = false
	httpGet(t, srv.URL+"/healthz", 503)
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 7, 7, 20} {
		h.observe(v)
	}
	s := h.snapshot()
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(0.5); q < 2 || q > 4 {
		t.Fatalf("median = %v, want within (2,4]", q)
	}
	if q := s.Quantile(1); q != 8 {
		t.Fatalf("q1 = %v, want clamp to last bound 8", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestClientMetrics(t *testing.T) {
	c := NewClient()
	c.Observe(2*time.Millisecond, nil)
	c.Observe(3*time.Millisecond, errors.New("boom"))
	s := c.Snapshot()
	if s.Requests != 2 || s.Failures != 1 || s.Latency.Count != 2 {
		t.Fatalf("client snapshot wrong: %+v", s)
	}
	var sb strings.Builder
	c.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "pbft_client_requests_total 2") {
		t.Fatalf("client exposition missing counter:\n%s", sb.String())
	}
}

// TestPhaseExpositionAndFlightEndpoint drives a real flight recorder
// through one request lifecycle wired to the registry as its phase sink,
// then asserts both exposition surfaces: pbft_phase_seconds on /metrics
// and the timeline JSON on /debug/flight.
func TestPhaseExpositionAndFlightEndpoint(t *testing.T) {
	m := New()
	rec := pbft.NewFlightRecorder(pbft.FlightRecorderConfig{Replica: 2, Sink: m})
	rec.Stamp(7, 42, pbft.PhaseIngressArrive)
	rec.Stamp(7, 42, pbft.PhaseVerifyDone)
	rec.Stamp(7, 42, pbft.PhaseCommitQuorum)
	rec.Finish(7, 42, pbft.PhaseReplySent)
	m.AddFlight(2, rec.Dump)

	srv := httptest.NewServer(Mux(m, nil))
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics", 200)
	for _, want := range []string{
		`pbft_phase_seconds_count{phase="verify_done",replica="2"} 1`,
		`pbft_phase_seconds_count{phase="commit_quorum",replica="2"} 1`,
		`pbft_phase_seconds_count{phase="end_to_end",replica="2"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	flight := httpGet(t, srv.URL+"/debug/flight", 200)
	var dumps []pbft.FlightDump
	if err := json.Unmarshal([]byte(flight), &dumps); err != nil {
		t.Fatalf("/debug/flight not JSON: %v\n%s", err, flight)
	}
	if len(dumps) != 1 || dumps[0].Replica != 2 {
		t.Fatalf("want one dump for replica 2, got %+v", dumps)
	}
	if len(dumps[0].Completed) != 1 || dumps[0].Completed[0].Client != 7 {
		t.Fatalf("completed timeline missing: %+v", dumps[0])
	}
	if got := httpGet(t, srv.URL+"/debug/flight?replica=9", 200); !strings.Contains(got, "[]") {
		t.Fatalf("filter by unknown replica should be empty, got %q", got)
	}
	httpGet(t, srv.URL+"/debug/flight?replica=bogus", 400)
}

// TestClientMetricsConcurrency pins the ClientMetrics thread-safety
// contract under -race: concurrent Observe, Snapshot, Quantile and
// WritePrometheus must not trip the race detector. (Observe and
// Snapshot serialize on the registry mutex; Quantile runs on a copied
// snapshot whose Bounds slice is shared but immutable.)
func TestClientMetricsConcurrency(t *testing.T) {
	c := NewClient()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var err error
				if i%7 == 0 {
					err = errors.New("boom")
				}
				c.Observe(time.Duration(i)*time.Microsecond, err)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := c.Snapshot()
				_ = s.Latency.Quantile(0.99)
				c.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()
	if s := c.Snapshot(); s.Requests != 2000 {
		t.Fatalf("requests = %d, want 2000", s.Requests)
	}
}

func httpGet(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, r.StatusCode, wantStatus)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
