package metrics

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pbft"
)

func TestCountersAndSnapshotDelta(t *testing.T) {
	m := New()
	m.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 3, Tentative: true})
	m.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 1})
	m.OnViewChange(pbft.ViewChangeEvent{Replica: 1, Phase: pbft.ViewChangeStart, Target: 1})
	m.OnViewChange(pbft.ViewChangeEvent{Replica: 1, Phase: pbft.ViewChangeInstall, View: 1})
	m.OnCheckpoint(pbft.CheckpointEvent{Replica: 0, Seq: 8})
	m.OnCheckpoint(pbft.CheckpointEvent{Replica: 0, Seq: 8, Stable: true})
	m.OnStateTransfer(pbft.StateTransferEvent{Replica: 2, Phase: pbft.StateTransferStart, Seq: 8})
	m.OnStateTransfer(pbft.StateTransferEvent{Replica: 2, Phase: pbft.StateTransferFinish, Seq: 8})
	m.OnClientSession(pbft.ClientSessionEvent{Replica: 0, ClientID: 9, Kind: pbft.SessionHello})

	s := m.Snapshot()
	if s.Commits != 1 || s.Batches != 1 || s.Requests != 3 || s.TentativeBatches != 1 {
		t.Fatalf("batch/commit counters wrong: %+v", s)
	}
	if s.ViewChangesStarted != 1 || s.ViewChangesInstalled != 1 {
		t.Fatalf("view-change counters wrong: %+v", s)
	}
	if s.Checkpoints != 1 || s.StableCheckpoints != 1 {
		t.Fatalf("checkpoint counters wrong: %+v", s)
	}
	if s.StateTransfersStarted != 1 || s.StateTransfersCompleted != 1 || s.StateTransfersAborted != 0 {
		t.Fatalf("transfer counters wrong: %+v", s)
	}
	if s.SessionHellos != 1 {
		t.Fatalf("session counters wrong: %+v", s)
	}
	m.ObservePhase(0, pbft.PhaseCommitQuorum, 2*time.Millisecond)
	m.ObservePhase(1, pbft.PhaseCommitQuorum, 4*time.Millisecond)
	m.ObservePhase(0, pbft.PhaseEndToEnd, 10*time.Millisecond)
	s = m.Snapshot()
	if got := s.Phases[pbft.PhaseCommitQuorum.String()].Count; got != 2 {
		t.Fatalf("commit_quorum phase samples = %d, want 2 (merged across replicas)", got)
	}
	if got := s.Phases[pbft.PhaseEndToEnd.String()].Count; got != 1 {
		t.Fatalf("end_to_end phase samples = %d, want 1", got)
	}
	if s.ViewChangeDuration.Count != 1 {
		t.Fatalf("view-change duration samples = %d, want 1", s.ViewChangeDuration.Count)
	}
	if got := s.BatchSize.Mean(); got != 3 {
		t.Fatalf("batch size mean = %v, want 3", got)
	}

	// Windowed delta: only what happened after `before`.
	before := m.Snapshot()
	m.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 2})
	delta := m.Snapshot().Sub(before)
	if delta.Commits != 1 || delta.Batches != 0 {
		t.Fatalf("delta = %+v, want exactly one new commit", delta)
	}
	if delta.BatchSize.Count != 0 {
		t.Fatalf("delta histogram count = %d, want 0", delta.BatchSize.Count)
	}
}

func TestPrometheusExpositionAndHealthz(t *testing.T) {
	m := New()
	m.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 2})
	m.AddReplica(0, func() pbft.ReplicaInfo {
		info := pbft.ReplicaInfo{View: 3, LastExec: 17, LastStable: 16, ExecQueueDepth: 5, IngressBacklog: 7}
		info.Stats.DroppedBadAuth = 11
		info.Stats.DroppedMalformed = 13
		info.Stats.RejectedNonDet = 2
		info.Stats.ConflictingPrePrepares = 1
		return info
	})
	healthy := true
	srv := httptest.NewServer(Mux(m, func() bool { return healthy }))
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics", 200)
	for _, want := range []string{
		"pbft_batches_total 1",
		"pbft_requests_total 2",
		"pbft_batch_size_bucket{le=\"2\"} 1",
		"pbft_batch_size_count 1",
		"pbft_exec_queue_depth{replica=\"0\"} 5",
		"pbft_ingress_backlog{replica=\"0\"} 7",
		"pbft_view{replica=\"0\"} 3",
		"pbft_last_exec{replica=\"0\"} 17",
		"pbft_auth_failures_total{replica=\"0\"} 11",
		"pbft_drops_total{replica=\"0\",reason=\"auth\"} 11",
		"pbft_drops_total{replica=\"0\",reason=\"malformed\"} 13",
		"pbft_drops_total{replica=\"0\",reason=\"ignored\"} 0",
		"pbft_drops_total{replica=\"0\",reason=\"nondet\"} 2",
		"pbft_drops_total{replica=\"0\",reason=\"conflicting_preprepare\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	if got := httpGet(t, srv.URL+"/healthz", 200); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz = %q", got)
	}
	healthy = false
	httpGet(t, srv.URL+"/healthz", 503)
}

// TestDurableExposition covers the durable-replica series gating: a
// diskless registry's exposition carries none of them (scrapes stay
// byte-identical to pre-durability output), while a durable replica in
// the same registry renders the full set — without leaking the series
// onto its diskless peers.
func TestDurableExposition(t *testing.T) {
	durableSeries := []string{
		"pbft_restarts_total",
		"pbft_recovery_seconds",
		"pbft_wal_fsyncs_total",
		"pbft_wal_bytes_total",
		"pbft_wal_checkpoints_total",
		"pbft_persist_errors_total",
	}
	disklessInfo := func() pbft.ReplicaInfo {
		info := pbft.ReplicaInfo{View: 1, LastExec: 9}
		info.Stats.DroppedForgedJoins = 3
		return info
	}

	diskless := New()
	diskless.AddReplica(0, disklessInfo)
	var a strings.Builder
	diskless.WritePrometheus(&a)
	for _, s := range durableSeries {
		if strings.Contains(a.String(), s) {
			t.Fatalf("diskless exposition leaks durable series %q:\n%s", s, a.String())
		}
	}
	if !strings.Contains(a.String(), "pbft_drops_total{replica=\"0\",reason=\"forged_join\"} 3") {
		t.Fatalf("exposition missing forged_join drops row:\n%s", a.String())
	}

	mixed := New()
	mixed.AddReplica(0, disklessInfo)
	mixed.AddReplica(1, func() pbft.ReplicaInfo {
		var info pbft.ReplicaInfo
		info.Stats.DurableNow = true
		info.Stats.Restarts = 2
		info.Stats.RecoveryNanos = 1_500_000_000
		info.Stats.WALFsyncs = 7
		info.Stats.WALBytes = 4096
		info.Stats.WALCheckpoints = 1
		info.Stats.PersistErrors = 0
		return info
	})
	var b strings.Builder
	mixed.WritePrometheus(&b)
	for _, want := range []string{
		"pbft_restarts_total{replica=\"1\"} 2",
		"pbft_recovery_seconds{replica=\"1\"} 1.5",
		"pbft_wal_fsyncs_total{replica=\"1\"} 7",
		"pbft_wal_bytes_total{replica=\"1\"} 4096",
		"pbft_wal_checkpoints_total{replica=\"1\"} 1",
		"pbft_persist_errors_total{replica=\"1\"} 0",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("mixed exposition missing %q:\n%s", want, b.String())
		}
	}
	if strings.Contains(b.String(), "pbft_restarts_total{replica=\"0\"}") {
		t.Fatalf("durable series leaked onto a diskless replica:\n%s", b.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 7, 7, 20} {
		h.observe(v)
	}
	s := h.snapshot()
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(0.5); q < 2 || q > 4 {
		t.Fatalf("median = %v, want within (2,4]", q)
	}
	if q := s.Quantile(1); q != 8 {
		t.Fatalf("q1 = %v, want clamp to last bound 8", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestClientMetrics(t *testing.T) {
	c := NewClient()
	c.Observe(2*time.Millisecond, nil)
	c.Observe(3*time.Millisecond, errors.New("boom"))
	s := c.Snapshot()
	if s.Requests != 2 || s.Failures != 1 || s.Latency.Count != 2 {
		t.Fatalf("client snapshot wrong: %+v", s)
	}
	var sb strings.Builder
	c.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "pbft_client_requests_total 2") {
		t.Fatalf("client exposition missing counter:\n%s", sb.String())
	}
}

// TestPhaseExpositionAndFlightEndpoint drives a real flight recorder
// through one request lifecycle wired to the registry as its phase sink,
// then asserts both exposition surfaces: pbft_phase_seconds on /metrics
// and the timeline JSON on /debug/flight.
func TestPhaseExpositionAndFlightEndpoint(t *testing.T) {
	m := New()
	rec := pbft.NewFlightRecorder(pbft.FlightRecorderConfig{Replica: 2, Sink: m})
	rec.Stamp(7, 42, pbft.PhaseIngressArrive)
	rec.Stamp(7, 42, pbft.PhaseVerifyDone)
	rec.Stamp(7, 42, pbft.PhaseCommitQuorum)
	rec.Finish(7, 42, pbft.PhaseReplySent)
	m.AddFlight(2, rec.Dump)

	srv := httptest.NewServer(Mux(m, nil))
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics", 200)
	for _, want := range []string{
		`pbft_phase_seconds_count{phase="verify_done",replica="2"} 1`,
		`pbft_phase_seconds_count{phase="commit_quorum",replica="2"} 1`,
		`pbft_phase_seconds_count{phase="end_to_end",replica="2"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	flight := httpGet(t, srv.URL+"/debug/flight", 200)
	var dumps []pbft.FlightDump
	if err := json.Unmarshal([]byte(flight), &dumps); err != nil {
		t.Fatalf("/debug/flight not JSON: %v\n%s", err, flight)
	}
	if len(dumps) != 1 || dumps[0].Replica != 2 {
		t.Fatalf("want one dump for replica 2, got %+v", dumps)
	}
	if len(dumps[0].Completed) != 1 || dumps[0].Completed[0].Client != 7 {
		t.Fatalf("completed timeline missing: %+v", dumps[0])
	}
	if got := httpGet(t, srv.URL+"/debug/flight?replica=9", 200); !strings.Contains(got, "[]") {
		t.Fatalf("filter by unknown replica should be empty, got %q", got)
	}
	httpGet(t, srv.URL+"/debug/flight?replica=bogus", 400)
}

// TestClientMetricsConcurrency pins the ClientMetrics thread-safety
// contract under -race: concurrent Observe, Snapshot, Quantile and
// WritePrometheus must not trip the race detector. (Observe and
// Snapshot serialize on the registry mutex; Quantile runs on a copied
// snapshot whose Bounds slice is shared but immutable.)
func TestClientMetricsConcurrency(t *testing.T) {
	c := NewClient()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var err error
				if i%7 == 0 {
					err = errors.New("boom")
				}
				c.Observe(time.Duration(i)*time.Microsecond, err)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := c.Snapshot()
				_ = s.Latency.Quantile(0.99)
				c.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()
	if s := c.Snapshot(); s.Requests != 2000 {
		t.Fatalf("requests = %d, want 2000", s.Requests)
	}
}

func httpGet(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, r.StatusCode, wantStatus)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestGroupViewsSplitCountersAndSnapshots(t *testing.T) {
	m := New()
	g0 := m.Group(0)
	g1 := m.Group(1)
	g0.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 2})
	g0.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 1})
	g1.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 3})
	g1.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 1})
	g1.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 2})
	g1.ObservePhase(0, pbft.PhaseEndToEnd, 5*time.Millisecond)

	if ids := m.GroupIDs(); len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("GroupIDs = %v, want [0 1]", ids)
	}
	s0, s1 := m.GroupSnapshot(0), m.GroupSnapshot(1)
	if s0.Commits != 1 || s0.Requests != 2 {
		t.Fatalf("group 0 snapshot = %+v", s0)
	}
	if s1.Commits != 2 || s1.Requests != 3 {
		t.Fatalf("group 1 snapshot = %+v", s1)
	}
	if got := s1.Phases[pbft.PhaseEndToEnd.String()].Count; got != 1 {
		t.Fatalf("group 1 end_to_end samples = %d, want 1", got)
	}
	if len(s0.Phases) != 0 {
		t.Fatalf("group 0 has phase samples: %+v", s0.Phases)
	}
	// The aggregate snapshot is the cross-group sum, so existing callers
	// (the bench's per-experiment delta) see the whole deployment.
	agg := m.Snapshot()
	if agg.Commits != 3 || agg.Batches != 2 || agg.Requests != 5 {
		t.Fatalf("aggregate snapshot = %+v, want commits=3 batches=2 requests=5", agg)
	}
	if got := agg.Phases[pbft.PhaseEndToEnd.String()].Count; got != 1 {
		t.Fatalf("aggregate end_to_end samples = %d, want 1", got)
	}
	if m.GroupSnapshot(7).Commits != 0 {
		t.Fatal("unregistered group snapshot not zero")
	}
}

func TestGroupLabeledExposition(t *testing.T) {
	m := New()
	m.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 1}) // registry itself = group 0
	g1 := m.Group(1)
	g1.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 1})
	g1.OnCommit(pbft.CommitEvent{Replica: 1, Seq: 1})
	g1.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 4})
	g1.ObservePhase(2, pbft.PhaseCommitQuorum, time.Millisecond)
	m.AddReplica(0, func() pbft.ReplicaInfo { return pbft.ReplicaInfo{LastExec: 9} })
	g1.AddReplica(0, func() pbft.ReplicaInfo { return pbft.ReplicaInfo{LastExec: 4} })

	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"pbft_commits_total{group=\"0\"} 1\n",
		"pbft_commits_total{group=\"1\"} 2\n",
		"pbft_batches_total{group=\"0\"} 0\n",
		"pbft_batches_total{group=\"1\"} 1\n",
		"pbft_batch_size_bucket{group=\"1\",le=\"4\"} 1\n",
		"pbft_batch_size_sum{group=\"0\"} 0\n",
		"pbft_phase_seconds_count{group=\"1\",phase=\"commit_quorum\",replica=\"2\"} 1\n",
		"pbft_last_exec{group=\"0\",replica=\"0\"} 9\n",
		"pbft_last_exec{group=\"1\",replica=\"0\"} 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-group exposition missing %q:\n%s", want, out)
		}
	}
	// No unlabeled counter lines survive in multi-group mode: the same
	// family must not mix bare and group-labeled series.
	if strings.Contains(out, "\npbft_commits_total ") {
		t.Fatalf("multi-group exposition still has unlabeled pbft_commits_total:\n%s", out)
	}
}
