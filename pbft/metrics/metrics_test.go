package metrics

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pbft"
)

func TestCountersAndSnapshotDelta(t *testing.T) {
	m := New()
	m.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 3, Tentative: true})
	m.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 1})
	m.OnViewChange(pbft.ViewChangeEvent{Replica: 1, Phase: pbft.ViewChangeStart, Target: 1})
	m.OnViewChange(pbft.ViewChangeEvent{Replica: 1, Phase: pbft.ViewChangeInstall, View: 1})
	m.OnCheckpoint(pbft.CheckpointEvent{Replica: 0, Seq: 8})
	m.OnCheckpoint(pbft.CheckpointEvent{Replica: 0, Seq: 8, Stable: true})
	m.OnStateTransfer(pbft.StateTransferEvent{Replica: 2, Phase: pbft.StateTransferStart, Seq: 8})
	m.OnStateTransfer(pbft.StateTransferEvent{Replica: 2, Phase: pbft.StateTransferFinish, Seq: 8})
	m.OnClientSession(pbft.ClientSessionEvent{Replica: 0, ClientID: 9, Kind: pbft.SessionHello})

	s := m.Snapshot()
	if s.Commits != 1 || s.Batches != 1 || s.Requests != 3 || s.TentativeBatches != 1 {
		t.Fatalf("batch/commit counters wrong: %+v", s)
	}
	if s.ViewChangesStarted != 1 || s.ViewChangesInstalled != 1 {
		t.Fatalf("view-change counters wrong: %+v", s)
	}
	if s.Checkpoints != 1 || s.StableCheckpoints != 1 {
		t.Fatalf("checkpoint counters wrong: %+v", s)
	}
	if s.StateTransfersStarted != 1 || s.StateTransfersCompleted != 1 || s.StateTransfersAborted != 0 {
		t.Fatalf("transfer counters wrong: %+v", s)
	}
	if s.SessionHellos != 1 {
		t.Fatalf("session counters wrong: %+v", s)
	}
	if s.CommitLatency.Count != 1 {
		t.Fatalf("commit latency samples = %d, want 1 (tentative batch closed by commit)", s.CommitLatency.Count)
	}
	if s.ViewChangeDuration.Count != 1 {
		t.Fatalf("view-change duration samples = %d, want 1", s.ViewChangeDuration.Count)
	}
	if got := s.BatchSize.Mean(); got != 3 {
		t.Fatalf("batch size mean = %v, want 3", got)
	}

	// Windowed delta: only what happened after `before`.
	before := m.Snapshot()
	m.OnCommit(pbft.CommitEvent{Replica: 0, Seq: 2})
	delta := m.Snapshot().Sub(before)
	if delta.Commits != 1 || delta.Batches != 0 {
		t.Fatalf("delta = %+v, want exactly one new commit", delta)
	}
	if delta.BatchSize.Count != 0 {
		t.Fatalf("delta histogram count = %d, want 0", delta.BatchSize.Count)
	}
}

func TestPrometheusExpositionAndHealthz(t *testing.T) {
	m := New()
	m.OnBatch(pbft.BatchEvent{Replica: 0, Seq: 1, Requests: 2})
	m.AddReplica(0, func() pbft.ReplicaInfo {
		info := pbft.ReplicaInfo{View: 3, LastExec: 17, LastStable: 16, ExecQueueDepth: 5, IngressBacklog: 7}
		info.Stats.DroppedBadAuth = 11
		info.Stats.DroppedMalformed = 13
		info.Stats.RejectedNonDet = 2
		info.Stats.ConflictingPrePrepares = 1
		return info
	})
	healthy := true
	srv := httptest.NewServer(Mux(m, func() bool { return healthy }))
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics", 200)
	for _, want := range []string{
		"pbft_batches_total 1",
		"pbft_requests_total 2",
		"pbft_batch_size_bucket{le=\"2\"} 1",
		"pbft_batch_size_count 1",
		"pbft_exec_queue_depth{replica=\"0\"} 5",
		"pbft_ingress_backlog{replica=\"0\"} 7",
		"pbft_view{replica=\"0\"} 3",
		"pbft_last_exec{replica=\"0\"} 17",
		"pbft_auth_failures_total{replica=\"0\"} 11",
		"pbft_drops_total{replica=\"0\",reason=\"auth\"} 11",
		"pbft_drops_total{replica=\"0\",reason=\"malformed\"} 13",
		"pbft_drops_total{replica=\"0\",reason=\"ignored\"} 0",
		"pbft_drops_total{replica=\"0\",reason=\"nondet\"} 2",
		"pbft_drops_total{replica=\"0\",reason=\"conflicting_preprepare\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	if got := httpGet(t, srv.URL+"/healthz", 200); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz = %q", got)
	}
	healthy = false
	httpGet(t, srv.URL+"/healthz", 503)
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 6, 7, 7, 20} {
		h.observe(v)
	}
	s := h.snapshot()
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(0.5); q < 2 || q > 4 {
		t.Fatalf("median = %v, want within (2,4]", q)
	}
	if q := s.Quantile(1); q != 8 {
		t.Fatalf("q1 = %v, want clamp to last bound 8", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestClientMetrics(t *testing.T) {
	c := NewClient()
	c.Observe(2*time.Millisecond, nil)
	c.Observe(3*time.Millisecond, errors.New("boom"))
	s := c.Snapshot()
	if s.Requests != 2 || s.Failures != 1 || s.Latency.Count != 2 {
		t.Fatalf("client snapshot wrong: %+v", s)
	}
	var sb strings.Builder
	c.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "pbft_client_requests_total 2") {
		t.Fatalf("client exposition missing counter:\n%s", sb.String())
	}
}

func httpGet(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, r.StatusCode, wantStatus)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
