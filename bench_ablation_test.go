package repro

import (
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/harness"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. They
// answer "how much does each mechanism matter" beyond the paper's on/off
// configuration matrix.

// BenchmarkAblationCongestionWindow sweeps the primary's congestion
// window (§2.1): 1 maximizes batching, large values approach unbatched
// pipelining.
func BenchmarkAblationCongestionWindow(b *testing.B) {
	for _, window := range []int{1, 2, 4, 8, 32} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			lc := harness.LibConfig{Static: true, MACs: true, AllBig: true, Batch: true}
			opts := harness.BenchOptionsFor(lc)
			opts.CongestionWindow = window
			benchWithOptions(b, opts, true)
		})
	}
}

// BenchmarkAblationCheckpointInterval sweeps K: small intervals pay
// frequent snapshot+digest costs, large ones grow the log window.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	for _, k := range []uint64{16, 64, 256} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			lc := harness.LibConfig{Static: true, MACs: true, AllBig: true, Batch: true}
			opts := harness.BenchOptionsFor(lc)
			opts.CheckpointInterval = k
			benchWithOptions(b, opts, true)
		})
	}
}

// BenchmarkAblationTentativeExecution isolates the tentative-execution
// optimization: without it, execution (and the reply) waits for the
// commit certificate.
func BenchmarkAblationTentativeExecution(b *testing.B) {
	for _, tentative := range []bool{true, false} {
		b.Run(fmt.Sprintf("tentative=%v", tentative), func(b *testing.B) {
			lc := harness.LibConfig{Static: true, MACs: true, AllBig: true, Batch: true}
			opts := harness.BenchOptionsFor(lc)
			opts.TentativeExecution = tentative
			benchWithOptions(b, opts, true)
		})
	}
}

// BenchmarkAblationDatagramBound sweeps the pre-prepare size cap that
// couples batching with the big-request optimization: small caps choke
// inline (non-big) batches.
func BenchmarkAblationDatagramBound(b *testing.B) {
	for _, bytes := range []int{2000, 8000, 64000} {
		b.Run(fmt.Sprintf("cap=%d", bytes), func(b *testing.B) {
			lc := harness.LibConfig{Static: true, MACs: true, AllBig: false, Batch: true}
			opts := harness.BenchOptionsFor(lc)
			opts.MaxBatchBytes = bytes
			benchWithOptions(b, opts, true)
		})
	}
}

// benchWithOptions runs the null workload (1024 B) against a cluster
// built from explicit library options, with 12 parallel static clients.
func benchWithOptions(b *testing.B, opts core.Options, _ bool) {
	b.Helper()
	const numClients = 12
	c, err := harness.NewCluster(harness.ClusterOptions{
		Opts:       opts,
		NumClients: numClients,
		Seed:       42,
		App:        harness.NewEchoFactory(1024),
		Bandwidth:  938e6 / 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	pool := make(chan *client.Client, numClients)
	for i := 0; i < numClients; i++ {
		cl, err := c.Client(i)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { cl.Close() })
		pool <- cl
	}
	payload := make([]byte, 1024)
	runClientBench(b, pool, func(int) []byte { return payload }, nil)
}
