// Command pbft-gateway is the web front-end the paper's §3.3.3 finds
// missing from PBFT: browsers cannot speak the UDP, binary,
// quorum-collecting client protocol, so web applications need an
// HTTP/JSON gateway that embeds a real PBFT client.
//
// The gateway joins the replicated service as a dynamic client (or uses a
// static identity) and translates REST calls into ordered SQL requests.
// Handlers share one concurrent PBFT client and pipeline up to -pipeline
// requests at once, so simultaneous HTTP requests are not serialized:
//
//	pbft-gateway -dir ./deploy -listen 127.0.0.1:8080 -join gateway:secret
//
//	curl -s localhost:8080/query -d '{"sql":"SELECT voter, vote FROM votes"}'
//	curl -s localhost:8080/exec  -d '{"sql":"INSERT INTO votes (voter, vote, ts, rnd) VALUES (?,?,now(),random())","args":["alice","yes"]}'
//
// With -partitions N the gateway fronts a partitioned deployment of N
// independent PBFT groups (ARCHITECTURE.md "Partition layer"): group g's
// deployment is loaded from <dir>/group-<g>/config.json, one client
// session runs per group, and each statement routes to the group owning
// the table it names (sqlstate.PartitionKeys); statements that name no
// table go to the deterministic home group. Cross-group transactions are
// not linearized — each table lives entirely within one group.
//
// The paper's caveat applies and is worth repeating: the gateway is a
// centralized component in front of a decentralized service. Each
// organization should run its own gateway (or embed the client library
// directly); the BFT guarantees only cover what happens behind it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/pbft"
	"repro/pbft/metrics"
	"repro/sqlstate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbft-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "./deploy", "deployment directory")
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
	join := flag.String("join", "", "join dynamically with this identification buffer")
	id := flag.Uint("id", 0, "static client id (when not joining)")
	pipeline := flag.Int("pipeline", 0, "requests kept in flight at once (0 = deployment window)")
	partitions := flag.Int("partitions", 1, "consensus groups (>1 loads <dir>/group-<g>/config.json per group and routes by table)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	flag.Parse()
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	if *partitions < 1 {
		return fmt.Errorf("bad -partitions %d: need at least one group", *partitions)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	copts := []pbft.ClientOption{pbft.WithPipelineDepth(*pipeline)}

	// The gateway's UDP endpoints run the same syscall-batched transport
	// as the replicas; register them so /metrics carries the pbft_udp_*
	// batching series alongside the HTTP request counters. Partitioned
	// mode registers each group's endpoint under its group label.
	udp := metrics.New()

	var service invoker
	if *partitions > 1 {
		sessions := make([]*pbft.Client, 0, *partitions)
		closeAll := func() {
			for _, s := range sessions {
				s.Close()
			}
		}
		for g := 0; g < *partitions; g++ {
			cl, conn, err := dialGroup(filepath.Join(*dir, fmt.Sprintf("group-%d", g)), *join, *id, copts)
			if err != nil {
				closeAll()
				return fmt.Errorf("group %d: %w", g, err)
			}
			if uc, ok := conn.(*pbft.UDPConn); ok {
				udp.Group(g).AddTransport(cl.ID(), uc.BatchStats)
			}
			sessions = append(sessions, cl)
		}
		defer closeAll()
		router, err := pbft.NewPartitionRouter(pbft.UniformPartitionMap(*partitions), sqlstate.PartitionKeys)
		if err != nil {
			return err
		}
		service, err = pbft.NewPartitionedClient(router, sessions)
		if err != nil {
			return err
		}
	} else {
		cl, conn, err := dialGroup(*dir, *join, *id, copts)
		if err != nil {
			return err
		}
		defer cl.Close()
		if uc, ok := conn.(*pbft.UDPConn); ok {
			udp.AddTransport(cl.ID(), uc.BatchStats)
		}
		service = cl
	}

	gw := &gateway{client: service, metrics: metrics.NewClient()}
	mux := http.NewServeMux()
	mux.HandleFunc("/exec", gw.handleExec)
	mux.HandleFunc("/query", gw.handleQuery)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		gw.metrics.WritePrometheus(w)
		udp.WriteUDPStats(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("gateway listening",
		"addr", *listen, "partitions", *partitions, "pipeline", *pipeline)
	return srv.ListenAndServe()
}

// dialGroup builds the client session for one deployment directory:
// either a dynamic client joining with the -join buffer, or the static
// identity -id from the deployment's key files.
func dialGroup(dir, join string, id uint, copts []pbft.ClientOption) (*pbft.Client, pbft.Conn, error) {
	dep, err := pbft.LoadDeployment(filepath.Join(dir, "config.json"))
	if err != nil {
		return nil, nil, err
	}
	cfg, err := dep.Config()
	if err != nil {
		return nil, nil, err
	}
	if join != "" {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return nil, nil, err
		}
		conn, err := pbft.ListenUDP("127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		cl, err := pbft.NewDynamicClient(cfg, kp, conn, copts...)
		if err != nil {
			conn.Close()
			return nil, nil, err
		}
		if err := cl.Join(context.Background(), []byte(join)); err != nil {
			cl.Close()
			return nil, nil, err
		}
		return cl, conn, nil
	}
	kp, err := pbft.LoadKeyFile(filepath.Join(dir, fmt.Sprintf("client-%d.key", int(id)-cfg.N())))
	if err != nil {
		return nil, nil, err
	}
	var addr string
	for _, c := range cfg.Clients {
		if c.ID == uint32(id) {
			addr = c.Addr
		}
	}
	if addr == "" {
		return nil, nil, fmt.Errorf("client id %d not in deployment", id)
	}
	conn, err := pbft.ListenUDP(addr)
	if err != nil {
		return nil, nil, err
	}
	cl, err := pbft.NewClient(cfg, uint32(id), kp, conn, copts...)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return cl, conn, nil
}

// invoker is what a handler needs from the replicated service: the
// ordered and read-only optimized call paths. Both the single-group
// pbft.Client and the routing pbft.PartitionedClient satisfy it, so the
// handlers are identical in either mode.
type invoker interface {
	Invoke(ctx context.Context, op []byte) ([]byte, error)
	InvokeReadOnly(ctx context.Context, op []byte) ([]byte, error)
}

// gateway multiplexes HTTP requests over one concurrent PBFT client
// (or one per partition group): handlers submit directly and each
// client pipelines up to its window, blocking the excess — one endpoint
// serves many simultaneous users without a client identity per user.
type gateway struct {
	client invoker
	// metrics aggregates request counts and PBFT call latency, exposed
	// at /metrics in the Prometheus text format.
	metrics *metrics.ClientMetrics
}

type sqlRequest struct {
	SQL  string `json:"sql"`
	Args []any  `json:"args"`
	// ReadOnly uses the optimized read-only path for SELECTs.
	ReadOnly bool `json:"readOnly"`
}

type sqlResponse struct {
	Columns      []string `json:"columns,omitempty"`
	Rows         [][]any  `json:"rows,omitempty"`
	RowsAffected *int64   `json:"rowsAffected,omitempty"`
	LastInsertID *int64   `json:"lastInsertId,omitempty"`
	Error        string   `json:"error,omitempty"`
}

func (g *gateway) handleExec(w http.ResponseWriter, r *http.Request) {
	g.handle(w, r, false)
}

func (g *gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	g.handle(w, r, true)
}

func (g *gateway) handle(w http.ResponseWriter, r *http.Request, query bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req sqlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, sqlResponse{Error: "bad request: " + err.Error()})
		return
	}
	if query && !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(req.SQL)), "SELECT") {
		writeJSON(w, http.StatusBadRequest, sqlResponse{Error: "/query accepts SELECT only"})
		return
	}
	args, err := jsonArgs(req.Args)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, sqlResponse{Error: err.Error()})
		return
	}
	var body []byte
	if query {
		body = sqlstate.EncodeQuery(req.SQL, args...)
	} else {
		body = sqlstate.EncodeExec(req.SQL, args...)
	}

	var raw []byte
	start := time.Now()
	if query && req.ReadOnly {
		raw, err = g.client.InvokeReadOnly(r.Context(), body)
	} else {
		raw, err = g.client.Invoke(r.Context(), body)
	}
	g.metrics.Observe(time.Since(start), err)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, sqlResponse{Error: "service: " + err.Error()})
		return
	}
	resp, err := sqlstate.DecodeResponse(raw)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, sqlResponse{Error: err.Error()})
		return
	}
	out := sqlResponse{}
	if resp.Result != nil {
		out.RowsAffected = &resp.Result.RowsAffected
		out.LastInsertID = &resp.Result.LastInsertID
	}
	if resp.Rows != nil {
		out.Columns = resp.Rows.Columns
		for _, row := range resp.Rows.Data {
			jsRow := make([]any, 0, len(row))
			for _, v := range row {
				jsRow = append(jsRow, valueToJSON(v))
			}
			out.Rows = append(out.Rows, jsRow)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// jsonArgs maps JSON values onto SQL values.
func jsonArgs(in []any) ([]sqlstate.Value, error) {
	out := make([]sqlstate.Value, 0, len(in))
	for i, a := range in {
		switch v := a.(type) {
		case nil:
			out = append(out, sqlstate.Null())
		case bool:
			if v {
				out = append(out, sqlstate.Int(1))
			} else {
				out = append(out, sqlstate.Int(0))
			}
		case float64:
			if v == float64(int64(v)) {
				out = append(out, sqlstate.Int(int64(v)))
			} else {
				out = append(out, sqlstate.Real(v))
			}
		case string:
			out = append(out, sqlstate.Text(v))
		default:
			return nil, fmt.Errorf("argument %d: unsupported JSON type %T", i+1, a)
		}
	}
	return out, nil
}

func valueToJSON(v sqlstate.Value) any {
	switch v.T {
	case sqlstate.TNull:
		return nil
	case sqlstate.TInt:
		return v.I
	case sqlstate.TReal:
		return v.F
	case sqlstate.TBlob:
		return v.Blob
	default:
		return v.AsText()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
