// Command pbft-client talks to a pbft-server deployment over UDP.
//
// One-shot SQL against the replicated database (app=sql servers):
//
//	pbft-client -dir ./deploy -id 4 -sql "INSERT INTO votes (voter, vote, ts, rnd) VALUES ('alice','yes',now(),random())"
//	pbft-client -dir ./deploy -id 4 -sql "SELECT voter, vote FROM votes"
//
// Raw operation against echo/counter servers:
//
//	pbft-client -dir ./deploy -id 4 -op inc
//
// Dynamic clients (deployment generated with -dynamic) join first:
//
//	pbft-client -dir ./deploy -join alice:sesame -sql "SELECT count(*) FROM votes"
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/pbft"
	"repro/sqlstate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbft-client:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "./deploy", "deployment directory")
	id := flag.Uint("id", 0, "static client id (from config.json)")
	join := flag.String("join", "", "join dynamically with this identification buffer (§3.1)")
	sql := flag.String("sql", "", "run one SQL statement against the replicated database")
	op := flag.String("op", "", "send one raw operation (echo/counter apps)")
	readOnly := flag.Bool("readonly", false, "use the read-only optimization (SELECT only)")
	leave := flag.Bool("leave", false, "leave the service after the operation (dynamic clients)")
	flag.Parse()

	dep, err := pbft.LoadDeployment(filepath.Join(*dir, "config.json"))
	if err != nil {
		return err
	}
	cfg, err := dep.Config()
	if err != nil {
		return err
	}

	var cl *pbft.Client
	if *join != "" {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		conn, err := pbft.ListenUDP("127.0.0.1:0")
		if err != nil {
			return err
		}
		cl, err = pbft.NewDynamicClient(cfg, kp, conn)
		if err != nil {
			return err
		}
		if err := cl.Join([]byte(*join)); err != nil {
			return err
		}
		fmt.Printf("joined as client %d\n", cl.ID())
	} else {
		kp, err := pbft.LoadKeyFile(filepath.Join(*dir, fmt.Sprintf("client-%d.key", int(*id)-cfg.N())))
		if err != nil {
			return err
		}
		var addr string
		for _, c := range cfg.Clients {
			if c.ID == uint32(*id) {
				addr = c.Addr
			}
		}
		if addr == "" {
			return fmt.Errorf("client id %d not in deployment", *id)
		}
		conn, err := pbft.ListenUDP(addr)
		if err != nil {
			return err
		}
		cl, err = pbft.NewClient(cfg, uint32(*id), kp, conn)
		if err != nil {
			return err
		}
	}
	defer cl.Close()

	switch {
	case *sql != "":
		body := sqlstate.EncodeExec(*sql)
		if isSelect(*sql) {
			body = sqlstate.EncodeQuery(*sql)
		}
		var resp []byte
		var err error
		if *readOnly {
			resp, err = cl.InvokeReadOnly(body)
		} else {
			resp, err = cl.Invoke(body)
		}
		if err != nil {
			return err
		}
		r, err := sqlstate.DecodeResponse(resp)
		if err != nil {
			return err
		}
		printResponse(r)
	case *op != "":
		resp, err := cl.Invoke([]byte(*op))
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", resp)
	default:
		if *join == "" {
			return fmt.Errorf("nothing to do: pass -sql or -op")
		}
	}

	if *leave {
		if err := cl.Leave(); err != nil {
			return err
		}
		fmt.Println("left the service")
	}
	return nil
}

func isSelect(sql string) bool {
	return strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "SELECT")
}

func printResponse(r *sqlstate.Response) {
	if r.Result != nil {
		fmt.Printf("ok: %d row(s) affected, last insert id %d\n", r.Result.RowsAffected, r.Result.LastInsertID)
		return
	}
	fmt.Println(strings.Join(r.Rows.Columns, " | "))
	for _, row := range r.Rows.Data {
		parts := make([]string, 0, len(row))
		for _, v := range row {
			parts = append(parts, v.AsText())
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(r.Rows.Data))
}
