// Command pbft-client talks to a pbft-server deployment over UDP.
//
// One-shot SQL against the replicated database (app=sql servers):
//
//	pbft-client -dir ./deploy -id 4 -sql "INSERT INTO votes (voter, vote, ts, rnd) VALUES ('alice','yes',now(),random())"
//	pbft-client -dir ./deploy -id 4 -sql "SELECT voter, vote FROM votes"
//
// Raw operation against echo/counter servers:
//
//	pbft-client -dir ./deploy -id 4 -op inc
//
// Dynamic clients (deployment generated with -dynamic) join first:
//
//	pbft-client -dir ./deploy -join alice:sesame -sql "SELECT count(*) FROM votes"
//
// Pipelined submission keeps -pipeline requests in flight through the
// concurrent client API; -count repeats the operation that many times:
//
//	pbft-client -dir ./deploy -id 4 -op inc -count 64 -pipeline 16
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/pbft"
	"repro/pbft/metrics"
	"repro/sqlstate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbft-client:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "./deploy", "deployment directory")
	id := flag.Uint("id", 0, "static client id (from config.json)")
	join := flag.String("join", "", "join dynamically with this identification buffer (§3.1)")
	sql := flag.String("sql", "", "run one SQL statement against the replicated database")
	op := flag.String("op", "", "send one raw operation (echo/counter apps)")
	readOnly := flag.Bool("readonly", false, "use the read-only optimization (SELECT only)")
	leave := flag.Bool("leave", false, "leave the service after the operation (dynamic clients)")
	count := flag.Int("count", 1, "repeat the operation this many times")
	pipeline := flag.Int("pipeline", 1, "requests kept in flight at once (request pipelining)")
	timeout := flag.Duration("timeout", time.Minute, "overall deadline for the run")
	stats := flag.Bool("stats", false, "print per-call latency statistics after the run")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	flag.Parse()
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	if *stats {
		callStats = metrics.NewClient()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	dep, err := pbft.LoadDeployment(filepath.Join(*dir, "config.json"))
	if err != nil {
		return err
	}
	cfg, err := dep.Config()
	if err != nil {
		return err
	}

	copts := []pbft.ClientOption{pbft.WithPipelineDepth(*pipeline)}
	var cl *pbft.Client
	if *join != "" {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		conn, err := pbft.ListenUDP("127.0.0.1:0")
		if err != nil {
			return err
		}
		cl, err = pbft.NewDynamicClient(cfg, kp, conn, copts...)
		if err != nil {
			return err
		}
		if err := cl.Join(ctx, []byte(*join)); err != nil {
			return err
		}
		logger.Info("joined service", "client", cl.ID())
	} else {
		kp, err := pbft.LoadKeyFile(filepath.Join(*dir, fmt.Sprintf("client-%d.key", int(*id)-cfg.N())))
		if err != nil {
			return err
		}
		var addr string
		for _, c := range cfg.Clients {
			if c.ID == uint32(*id) {
				addr = c.Addr
			}
		}
		if addr == "" {
			return fmt.Errorf("client id %d not in deployment", *id)
		}
		conn, err := pbft.ListenUDP(addr)
		if err != nil {
			return err
		}
		cl, err = pbft.NewClient(cfg, uint32(*id), kp, conn, copts...)
		if err != nil {
			return err
		}
	}
	defer cl.Close()

	switch {
	case *sql != "":
		body := sqlstate.EncodeExec(*sql)
		var callOpts []pbft.CallOption
		if isSelect(*sql) {
			body = sqlstate.EncodeQuery(*sql)
		}
		if *readOnly {
			callOpts = append(callOpts, pbft.ReadOnly())
		}
		resp, err := invokeMany(ctx, cl, body, *count, callOpts...)
		if err != nil {
			return err
		}
		r, err := sqlstate.DecodeResponse(resp)
		if err != nil {
			return err
		}
		printResponse(r)
	case *op != "":
		resp, err := invokeMany(ctx, cl, []byte(*op), *count)
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", resp)
	default:
		if *join == "" {
			return fmt.Errorf("nothing to do: pass -sql or -op")
		}
	}

	if *leave {
		if err := cl.Leave(ctx); err != nil {
			return err
		}
		logger.Info("left service", "client", cl.ID())
	}
	if callStats != nil {
		s := callStats.Snapshot()
		ms := func(sec float64) float64 { return sec * 1e3 }
		fmt.Printf("latency: %d calls, %d failed, mean %.2fms p50 %.2fms p95 %.2fms p99 %.2fms\n",
			s.Requests, s.Failures, ms(s.Latency.Mean()),
			ms(s.Latency.Quantile(0.50)), ms(s.Latency.Quantile(0.95)), ms(s.Latency.Quantile(0.99)))
	}
	return nil
}

// callStats collects per-call latency when -stats is set (nil otherwise).
var callStats *metrics.ClientMetrics

// invokeMany submits the operation count times through the client's
// pipeline window and returns the last response. With count 1 it is a
// plain synchronous invoke.
func invokeMany(ctx context.Context, cl *pbft.Client, body []byte, count int, opts ...pbft.CallOption) ([]byte, error) {
	if count < 1 {
		count = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	calls := make([]*pbft.Call, 0, count)
	for i := 0; i < count; i++ {
		call := cl.Submit(ctx, body, opts...)
		if callStats != nil {
			// Per-call latency: stamp at completion, not at the ordered
			// result collection below (pipelined calls overlap).
			submitted := time.Now()
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-call.Done()
				callStats.Observe(time.Since(submitted), call.Err())
			}()
		}
		calls = append(calls, call)
	}
	var last []byte
	for _, call := range calls {
		resp, err := call.Result()
		if err != nil {
			return nil, err
		}
		last = resp
	}
	wg.Wait()
	if count > 1 {
		elapsed := time.Since(start)
		fmt.Printf("%d ops in %s (%.0f ops/s, window %d)\n",
			count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds(), cl.PipelineDepth())
	}
	return last, nil
}

func isSelect(sql string) bool {
	return strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "SELECT")
}

func printResponse(r *sqlstate.Response) {
	if r.Result != nil {
		fmt.Printf("ok: %d row(s) affected, last insert id %d\n", r.Result.RowsAffected, r.Result.LastInsertID)
		return
	}
	fmt.Println(strings.Join(r.Rows.Columns, " | "))
	for _, row := range r.Rows.Data {
		parts := make([]string, 0, len(row))
		for _, v := range row {
			parts = append(parts, v.AsText())
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(r.Rows.Data))
}
