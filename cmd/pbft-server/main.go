// Command pbft-server runs one PBFT replica over UDP, the deployment
// model of the original implementation.
//
// Generate a 4-replica, 2-client local deployment:
//
//	pbft-server -gen -dir ./deploy -replicas 4 -clients 2
//
// Then run each replica (in separate terminals or with &):
//
//	pbft-server -dir ./deploy -id 0 -app sql
//	pbft-server -dir ./deploy -id 1 -app sql
//	pbft-server -dir ./deploy -id 2 -app sql
//	pbft-server -dir ./deploy -id 3 -app sql
//
// and talk to the service with pbft-client.
//
// Durability: -data DIR makes the replica durable — the replicated
// state region and the protocol-critical minimum (stable checkpoint,
// view, client dedup windows) persist under DIR through a WAL-backed
// store, so a crash-restarted replica rejoins at its last stable
// checkpoint and fetches only the delta from its peers. Without -data
// (the default) the replica is diskless, as in the original paper.
//
// Observability: the metrics endpoint serves /metrics (Prometheus),
// /healthz, and /debug/flight — the flight recorder's last-N request
// timelines with per-phase latency marks (disable the recorder with
// -flight=false). -debug additionally mounts net/http/pprof under
// /debug/pprof on the same mux.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/pbft"
	"repro/pbft/metrics"
	"repro/sqlstate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbft-server:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon's structured logger on stderr.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func run() error {
	gen := flag.Bool("gen", false, "generate a deployment into -dir and exit")
	dir := flag.String("dir", "./deploy", "deployment directory (config.json + key files)")
	replicas := flag.Int("replicas", 4, "replica count for -gen (3f+1)")
	clients := flag.Int("clients", 2, "static client count for -gen")
	basePort := flag.Int("baseport", 7000, "first UDP port for -gen")
	host := flag.String("host", "127.0.0.1", "host/IP for -gen addresses")
	dynamic := flag.Bool("dynamic", false, "enable dynamic client membership for -gen (§3.1)")
	robust := flag.Bool("robust", false, "use the most robust configuration for -gen (nomac, noallbig)")
	id := flag.Uint("id", 0, "replica id to run")
	app := flag.String("app", "sql", "application: echo | counter | sql")
	data := flag.String("data", "", "durable state directory for this replica (WAL-backed pages + manifest; empty = diskless)")
	metricsAddr := flag.String("metrics", "127.0.0.1:0", "HTTP address for /metrics, /healthz and /debug/flight (empty disables)")
	flight := flag.Bool("flight", true, "record per-request phase timelines (served at /debug/flight)")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof on the metrics mux")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	drainTimeout := flag.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGINT/SIGTERM")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		return err
	}

	if *gen {
		return generate(logger, *dir, *replicas, *clients, *basePort, *host, *dynamic, *robust)
	}

	dep, err := pbft.LoadDeployment(filepath.Join(*dir, "config.json"))
	if err != nil {
		return err
	}
	cfg, err := dep.Config()
	if err != nil {
		return err
	}
	kp, err := pbft.LoadKeyFile(filepath.Join(*dir, fmt.Sprintf("replica-%d.key", *id)))
	if err != nil {
		return err
	}
	conn, err := pbft.ListenUDP(cfg.Replicas[*id].Addr)
	if err != nil {
		return err
	}

	var application pbft.Application
	switch *app {
	case "echo":
		application = &harness.EchoApp{RespSize: 32}
	case "counter":
		application = &harness.CounterApp{}
	case "sql":
		application = sqlstate.NewApp(sqlstate.Options{
			DiskDir: filepath.Join(*dir, fmt.Sprintf("replica-%d-data", *id)),
			Durable: true,
			InitSQL: harness.VotesSchema,
		})
	default:
		return fmt.Errorf("unknown application %q", *app)
	}

	// The metrics registry doubles as the replica's event tracer; the
	// HTTP mux serves it as /metrics plus a /healthz tied to the
	// replica's lifecycle.
	reg := metrics.New()
	cfg.Opts = cfg.Opts.WithTracer(reg)

	// Durable replica state (-data): crash-restart recovers from the
	// WAL-backed pages file and manifest instead of a full state
	// transfer. Diskless (the default) keeps the original fault model.
	if *data != "" {
		cfg.Opts = cfg.Opts.WithDataDir(*data)
	}

	// The flight recorder stamps every request's lifecycle phases; its
	// per-phase segments feed the registry's pbft_phase_seconds series
	// and its timeline ring serves /debug/flight.
	var rec *pbft.FlightRecorder
	if *flight {
		rec = pbft.NewFlightRecorder(pbft.FlightRecorderConfig{Replica: int(*id), Sink: reg})
		cfg.Opts = cfg.Opts.WithRecorder(rec)
	}

	rep, err := pbft.NewReplica(cfg, uint32(*id), kp, conn, application)
	if err != nil {
		return err
	}
	reg.AddReplica(uint32(*id), rep.Info)
	if rec != nil {
		reg.AddFlight(uint32(*id), rec.Dump)
	}
	if uc, ok := conn.(*pbft.UDPConn); ok {
		// Syscall batching counters: recv/send totals and the
		// datagrams-per-syscall occupancy histograms.
		reg.AddTransport(uint32(*id), uc.BatchStats)
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := metrics.Mux(reg, rep.Running)
		if *debug {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		metricsSrv = &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { _ = metricsSrv.Serve(ln) }()
		logger.Info("metrics listening",
			"replica", *id, "addr", ln.Addr().String(),
			"flight", rec != nil, "pprof", *debug)
	}

	runErr := make(chan error, 1)
	go func() { runErr <- rep.Run(context.Background()) }()
	logger.Info("replica listening",
		"replica", *id, "addr", cfg.Replicas[*id].Addr, "app", *app,
		"f", cfg.Opts.F, "n", cfg.N())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-runErr:
		return err
	}
	// Graceful, bounded shutdown: drain the ingress backlog, reap the
	// execution engine, flush pending replies, then close.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := rep.Shutdown(ctx); err != nil {
		logger.Error("graceful shutdown failed", "replica", *id, "err", err)
	}
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	info := rep.Info()
	logger.Info("replica stopped",
		"replica", *id, "view", info.View,
		"last_exec", info.LastExec, "last_stable", info.LastStable)
	return nil
}

func generate(logger *slog.Logger, dir string, replicas, clients, basePort int, host string, dynamic, robust bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	opts := pbft.DefaultOptions()
	if robust {
		opts = opts.Robust()
	}
	opts.DynamicClients = dynamic
	dep := &pbft.Deployment{Options: opts}
	port := basePort
	for i := 0; i < replicas; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		if err := pbft.SaveKeyFile(filepath.Join(dir, fmt.Sprintf("replica-%d.key", i)), kp); err != nil {
			return err
		}
		dep.Replicas = append(dep.Replicas, pbft.DeployNode{
			ID:     uint32(i),
			Addr:   fmt.Sprintf("%s:%d", host, port),
			PubKey: pbft.PublicKeyHex(kp),
		})
		port++
	}
	for i := 0; i < clients; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		if err := pbft.SaveKeyFile(filepath.Join(dir, fmt.Sprintf("client-%d.key", i)), kp); err != nil {
			return err
		}
		dep.Clients = append(dep.Clients, pbft.DeployNode{
			ID:     uint32(replicas + i),
			Addr:   fmt.Sprintf("%s:%d", host, port),
			PubKey: pbft.PublicKeyHex(kp),
		})
		port++
	}
	if err := dep.Save(filepath.Join(dir, "config.json")); err != nil {
		return err
	}
	logger.Info("deployment written",
		"path", filepath.Join(dir, "config.json"),
		"replicas", replicas, "clients", clients, "f", opts.F)
	return nil
}
