// Command pbft-server runs one PBFT replica over UDP, the deployment
// model of the original implementation.
//
// Generate a 4-replica, 2-client local deployment:
//
//	pbft-server -gen -dir ./deploy -replicas 4 -clients 2
//
// Then run each replica (in separate terminals or with &):
//
//	pbft-server -dir ./deploy -id 0 -app sql
//	pbft-server -dir ./deploy -id 1 -app sql
//	pbft-server -dir ./deploy -id 2 -app sql
//	pbft-server -dir ./deploy -id 3 -app sql
//
// and talk to the service with pbft-client.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/pbft"
	"repro/pbft/metrics"
	"repro/sqlstate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbft-server:", err)
		os.Exit(1)
	}
}

func run() error {
	gen := flag.Bool("gen", false, "generate a deployment into -dir and exit")
	dir := flag.String("dir", "./deploy", "deployment directory (config.json + key files)")
	replicas := flag.Int("replicas", 4, "replica count for -gen (3f+1)")
	clients := flag.Int("clients", 2, "static client count for -gen")
	basePort := flag.Int("baseport", 7000, "first UDP port for -gen")
	host := flag.String("host", "127.0.0.1", "host/IP for -gen addresses")
	dynamic := flag.Bool("dynamic", false, "enable dynamic client membership for -gen (§3.1)")
	robust := flag.Bool("robust", false, "use the most robust configuration for -gen (nomac, noallbig)")
	id := flag.Uint("id", 0, "replica id to run")
	app := flag.String("app", "sql", "application: echo | counter | sql")
	metricsAddr := flag.String("metrics", "127.0.0.1:0", "HTTP address for /metrics and /healthz (empty disables)")
	drainTimeout := flag.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGINT/SIGTERM")
	flag.Parse()

	if *gen {
		return generate(*dir, *replicas, *clients, *basePort, *host, *dynamic, *robust)
	}

	dep, err := pbft.LoadDeployment(filepath.Join(*dir, "config.json"))
	if err != nil {
		return err
	}
	cfg, err := dep.Config()
	if err != nil {
		return err
	}
	kp, err := pbft.LoadKeyFile(filepath.Join(*dir, fmt.Sprintf("replica-%d.key", *id)))
	if err != nil {
		return err
	}
	conn, err := pbft.ListenUDP(cfg.Replicas[*id].Addr)
	if err != nil {
		return err
	}

	var application pbft.Application
	switch *app {
	case "echo":
		application = &harness.EchoApp{RespSize: 32}
	case "counter":
		application = &harness.CounterApp{}
	case "sql":
		application = sqlstate.NewApp(sqlstate.Options{
			DiskDir: filepath.Join(*dir, fmt.Sprintf("replica-%d-data", *id)),
			Durable: true,
			InitSQL: harness.VotesSchema,
		})
	default:
		return fmt.Errorf("unknown application %q", *app)
	}

	// The metrics registry doubles as the replica's event tracer; the
	// HTTP mux serves it as /metrics plus a /healthz tied to the
	// replica's lifecycle.
	reg := metrics.New()
	cfg.Opts = cfg.Opts.WithTracer(reg)

	rep, err := pbft.NewReplica(cfg, uint32(*id), kp, conn, application)
	if err != nil {
		return err
	}
	reg.AddReplica(uint32(*id), rep.Info)
	if uc, ok := conn.(*pbft.UDPConn); ok {
		// Syscall batching counters: recv/send totals and the
		// datagrams-per-syscall occupancy histograms.
		reg.AddTransport(uint32(*id), uc.BatchStats)
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsSrv = &http.Server{
			Handler:           metrics.Mux(reg, rep.Running),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { _ = metricsSrv.Serve(ln) }()
		fmt.Printf("metrics on http://%s/metrics (healthz on /healthz)\n", ln.Addr())
	}

	runErr := make(chan error, 1)
	go func() { runErr <- rep.Run(context.Background()) }()
	fmt.Printf("replica %d listening on %s (app=%s, f=%d, n=%d)\n",
		*id, cfg.Replicas[*id].Addr, *app, cfg.Opts.F, cfg.N())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-runErr:
		return err
	}
	// Graceful, bounded shutdown: drain the ingress backlog, reap the
	// execution engine, flush pending replies, then close.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := rep.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "pbft-server: graceful shutdown: %v\n", err)
	}
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	info := rep.Info()
	fmt.Printf("replica %d stopped: view=%d executed=%d stable=%d\n",
		*id, info.View, info.LastExec, info.LastStable)
	return nil
}

func generate(dir string, replicas, clients, basePort int, host string, dynamic, robust bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	opts := pbft.DefaultOptions()
	if robust {
		opts = opts.Robust()
	}
	opts.DynamicClients = dynamic
	dep := &pbft.Deployment{Options: opts}
	port := basePort
	for i := 0; i < replicas; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		if err := pbft.SaveKeyFile(filepath.Join(dir, fmt.Sprintf("replica-%d.key", i)), kp); err != nil {
			return err
		}
		dep.Replicas = append(dep.Replicas, pbft.DeployNode{
			ID:     uint32(i),
			Addr:   fmt.Sprintf("%s:%d", host, port),
			PubKey: pbft.PublicKeyHex(kp),
		})
		port++
	}
	for i := 0; i < clients; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		if err := pbft.SaveKeyFile(filepath.Join(dir, fmt.Sprintf("client-%d.key", i)), kp); err != nil {
			return err
		}
		dep.Clients = append(dep.Clients, pbft.DeployNode{
			ID:     uint32(replicas + i),
			Addr:   fmt.Sprintf("%s:%d", host, port),
			PubKey: pbft.PublicKeyHex(kp),
		})
		port++
	}
	if err := dep.Save(filepath.Join(dir, "config.json")); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d replicas, %d clients (f=%d)\n",
		filepath.Join(dir, "config.json"), replicas, clients, opts.F)
	return nil
}
