// Command pbft-bench regenerates every table and figure of the paper's
// evaluation (§4) plus the behavioural experiments of §2.3–2.5 and the
// message-complexity note of §3.3.3.
//
// Usage:
//
//	pbft-bench -experiment table1            # Table 1 (null ops)
//	pbft-bench -experiment fig4 -size 1024   # Figure 4 series
//	pbft-bench -experiment fig5              # Figure 5 (SQL inserts)
//	pbft-bench -experiment acid              # §4.2 ACID vs no-ACID
//	pbft-bench -experiment dynamic           # §4.1 dynamic-client overhead
//	pbft-bench -experiment wan               # §3.3.3 message complexity
//	pbft-bench -experiment loss              # §2.4 packet-loss behaviour
//	pbft-bench -experiment recovery          # §2.3 restart recovery
//	pbft-bench -experiment pipeline          # pipelined client vs client fleet
//	pbft-bench -experiment exec -shards 4    # sharded execution engine
//	pbft-bench -experiment swarm             # massive-connection ingress
//	pbft-bench -experiment chaos             # Byzantine adversary suite under load
//	pbft-bench -experiment partitions        # multi-group scaling (1→2→4 groups)
//	pbft-bench -experiment soak              # durable restart-storm soak
//	pbft-bench -experiment all
//
// The -pipeline flag sets how many requests each load client keeps in
// flight (request pipelining over the concurrent client API); the default
// 1 is the paper's closed-loop model. The -shards flag sets the largest
// execution shard count the exec experiment sweeps to (compared against
// the serial configuration). The partitions experiment sweeps the group
// count 1→2→...→-groups and reports the aggregate-TPS-vs-groups scaling
// curve of the partition router (ARCHITECTURE.md "Partition layer"),
// asserting per-group digest convergence after each run. The soak
// experiment cycles restart storms (rolling restart, simultaneous
// restart of every replica, kill mid-WAL-append) over one durable
// cluster under load, asserting stable-digest convergence per episode
// and recording recovery latencies; -soak-episodes sets the episode
// budget and -soak-data pins the durable root. The -json flag
// additionally writes a
// machine-readable summary (one row per measured configuration plus run
// metadata) to a file — the repository's BENCH_PR*.json perf-trajectory
// artifacts are produced this way.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/pbft/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pbft-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "all", "table1|fig4|fig5|acid|dynamic|wan|loss|lossy|recovery|pipeline|exec|swarm|chaos|partitions|soak|all")
	duration := flag.Duration("duration", 3*time.Second, "measured window per configuration")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "warmup before measuring")
	clients := flag.Int("clients", 12, "closed-loop clients (paper: 12)")
	size := flag.Int("size", 1024, "null request/response size in bytes (paper: 256..4096)")
	pipeline := flag.Int("pipeline", 1, "in-flight requests per load client (1 = closed loop)")
	shards := flag.Int("shards", 4, "max execution shards for the exec experiment")
	groups := flag.Int("groups", 4, "max PBFT groups for the partitions experiment")
	seed := flag.Int64("seed", 42, "simulated network seed")
	withMetrics := flag.Bool("metrics", false, "print a protocol-event metrics summary per experiment")
	swarmDefaults := harness.DefaultSwarmOptions()
	swarmClients := flag.Int("swarm-clients", swarmDefaults.Clients, "churning clients for the swarm experiment")
	swarmSessions := flag.Int("swarm-sessions", swarmDefaults.MaxSessions, "session-table cap for the swarm experiment")
	swarmChurn := flag.Int("swarm-churn", swarmDefaults.ChurnEvery, "ops per client between close+recreate in the swarm (0 = no churn)")
	swarmUDP := flag.Int("swarm-udp-clients", swarmDefaults.UDPClients, "loopback-UDP clients for the swarm syscall phase (0 = skip)")
	soakEpisodes := flag.Int("soak-episodes", 6, "fault episodes for the soak experiment")
	soakData := flag.String("soak-data", "", "durable root for the soak experiment (empty = temp dir)")
	jsonOut := flag.String("json", "", "write a machine-readable experiment summary to this file (\"-\" = stdout)")
	flag.Parse()

	opts := harness.DefaultExperimentOptions()
	opts.Duration = *duration
	opts.Warmup = *warmup
	opts.NumClients = *clients
	opts.RequestSize = *size
	opts.PipelineDepth = *pipeline
	opts.Seed = *seed
	opts.Out = os.Stdout

	// One aggregating registry across every replica of every cluster an
	// experiment builds; the per-experiment report is the snapshot delta.
	var reg *metrics.Metrics
	if *withMetrics {
		reg = metrics.New()
		opts.Tracer = reg
		// The partitions experiment records each group into its own
		// labeled series (Snapshot still aggregates across groups, so
		// the per-experiment delta below is unchanged).
		opts.GroupTracer = func(g int) harness.Tracer { return reg.Group(g) }
		// Real UDP endpoints (the swarm's loopback phase) register their
		// syscall-batching counters here; the pbft_udp_* section below
		// prints them after the runs.
		opts.AddTransport = reg.AddTransport
	}

	// Machine-readable summary (-json): every measured configuration row,
	// plus enough run metadata to compare files across PRs — the perf
	// trajectory artifacts (BENCH_PR5.json, ...).
	var rows []harness.ExperimentResult
	if *jsonOut != "" {
		opts.Record = func(r harness.ExperimentResult) { rows = append(rows, r) }
	}

	runOne := func(name string) error {
		var before metrics.Snapshot
		if reg != nil {
			before = reg.Snapshot()
			defer func() {
				fmt.Printf("[metrics %s] %s\n", name, reg.Snapshot().Sub(before).Summary())
			}()
		}
		switch name {
		case "table1":
			return harness.RunTable1(opts)
		case "fig4":
			return harness.RunFigure4(opts)
		case "fig5":
			return harness.RunFigure5(opts, os.TempDir())
		case "acid":
			return harness.RunACIDComparison(opts, os.TempDir())
		case "dynamic":
			return harness.RunDynamicOverhead(opts)
		case "wan":
			return harness.RunWANScaling(opts, []int{1, 2, 3, 4})
		case "loss":
			return harness.RunLossExperiment(opts)
		case "lossy":
			return harness.RunLossyBatchAblation(opts, []float64{0, 0.005, 0.01, 0.02})
		case "pipeline":
			return harness.RunPipelineComparison(opts, []int{1, 4, 8, 16})
		case "exec":
			list := []int{1}
			for s := 2; s < *shards; s *= 2 {
				list = append(list, s)
			}
			if *shards > 1 {
				list = append(list, *shards)
			}
			return harness.RunExecShardComparison(opts, list)
		case "recovery":
			return harness.RunRecoveryExperiment(opts, []time.Duration{
				200 * time.Millisecond, 500 * time.Millisecond, time.Second,
			})
		case "swarm":
			sw := swarmDefaults
			sw.Clients = *swarmClients
			sw.MaxSessions = *swarmSessions
			sw.ChurnEvery = *swarmChurn
			sw.Depth = *pipeline
			sw.UDPClients = *swarmUDP
			return harness.RunSwarm(opts, sw)
		case "chaos":
			return harness.RunChaos(opts)
		case "soak":
			return harness.RunSoak(opts, harness.SoakOptions{
				Episodes: *soakEpisodes,
				DataDir:  *soakData,
			})
		case "partitions":
			list := []int{1}
			for g := 2; g < *groups; g *= 2 {
				list = append(list, g)
			}
			if *groups > 1 {
				list = append(list, *groups)
			}
			return harness.RunPartitions(opts, list)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	run := func() error {
		if *experiment == "all" {
			for _, name := range []string{"table1", "fig4", "fig5", "acid", "dynamic", "wan", "loss", "lossy", "recovery", "pipeline", "exec"} {
				if err := runOne(name); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				fmt.Println()
			}
			return nil
		}
		return runOne(*experiment)
	}
	if err := run(); err != nil {
		return err
	}
	if reg != nil {
		var buf bytes.Buffer
		reg.WriteUDPStats(&buf)
		if buf.Len() > 0 {
			fmt.Printf("\nUDP syscall batching (pbft_udp_*)\n%s", buf.String())
		}
	}
	if *jsonOut != "" {
		return writeJSONSummary(*jsonOut, *experiment, opts, rows)
	}
	return nil
}

// jsonSummary is the -json output shape: run metadata plus one row per
// measured configuration.
type jsonSummary struct {
	Experiment  string                     `json:"experiment"`
	DurationSec float64                    `json:"duration_sec"`
	Clients     int                        `json:"clients"`
	RequestSize int                        `json:"request_size"`
	Pipeline    int                        `json:"pipeline"`
	Seed        int64                      `json:"seed"`
	GoMaxProcs  int                        `json:"gomaxprocs"`
	GoVersion   string                     `json:"go_version"`
	Results     []harness.ExperimentResult `json:"results"`
}

func writeJSONSummary(path, experiment string, opts harness.ExperimentOptions, rows []harness.ExperimentResult) error {
	s := jsonSummary{
		Experiment:  experiment,
		DurationSec: opts.Duration.Seconds(),
		Clients:     opts.NumClients,
		RequestSize: opts.RequestSize,
		Pipeline:    opts.PipelineDepth,
		Seed:        opts.Seed,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Results:     rows,
	}
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
