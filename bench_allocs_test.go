// Allocation-counting benchmarks: the guard rail of the hot-path memory
// discipline (pooled writers, sealed-envelope release-after-send, pooled
// HMAC states, single-copy transport fan-out). Run with -benchmem; CI
// additionally asserts a hard allocs/op budget via TestAllocBudget so a
// regression fails the build instead of rotting silently.
package repro

import (
	"context"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/client"
	"repro/internal/harness"
)

// runAllocsWorkload drives b.N requests through the canonical 16×1
// pipeline path (16 closed-loop clients, depth 1 — the BenchmarkPipeline
// configuration the perf trajectory tracks) and reports allocations.
func runAllocsWorkload(b *testing.B) {
	const inflight = 16
	lc := harness.Table1Configs()[0] // sta_mac_allbig_batch, the default
	c, err := harness.NewCluster(harness.ClusterOptions{
		Opts:       harness.BenchOptionsFor(lc),
		NumClients: inflight,
		Seed:       42,
		App:        harness.NewEchoFactory(1024),
		Bandwidth:  938e6 / 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	clients := make([]*client.Client, inflight)
	for i := range clients {
		cl, err := c.Client(i, client.WithPipelineDepth(1))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { cl.Close() })
		clients[i] = cl
	}
	payload := make([]byte, 1024)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	var failed atomic.Bool
	ops := make(chan struct{}, inflight)
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			for range ops {
				if _, err := cl.Invoke(ctx, payload); err != nil {
					failed.Store(true)
					return
				}
			}
		}(clients[w])
	}
	for i := 0; i < b.N; i++ {
		ops <- struct{}{}
	}
	close(ops)
	wg.Wait()
	if failed.Load() {
		b.Fatal("invoke failed")
	}
}

// BenchmarkAllocs measures whole-system allocations per request on the
// 16×1 pipeline path (every goroutine counts: clients, ingress verifiers,
// protocol loops, exec shards, reapers, the simulated network).
//
// Trajectory (1-CPU dev container, min of 3): PR 4 baseline 356 allocs/op
// / 99152 B/op; PR 5 (pooled memory) 147 allocs/op / 48050 B/op.
func BenchmarkAllocs(b *testing.B) {
	runAllocsWorkload(b)
}

// TestAllocBudget is the CI assertion behind BenchmarkAllocs: it fails
// when allocs/op on the 16×1 pipeline path exceeds the budget in the
// PBFT_MAX_ALLOCS_PER_OP environment variable. Unset, the test skips —
// local `go test ./...` stays timing-robust while CI pins the budget.
func TestAllocBudget(t *testing.T) {
	budgetStr := os.Getenv("PBFT_MAX_ALLOCS_PER_OP")
	if budgetStr == "" {
		t.Skip("PBFT_MAX_ALLOCS_PER_OP not set")
	}
	budget, err := strconv.ParseInt(budgetStr, 10, 64)
	if err != nil {
		t.Fatalf("bad PBFT_MAX_ALLOCS_PER_OP %q: %v", budgetStr, err)
	}
	res := testing.Benchmark(BenchmarkAllocs)
	if got := res.AllocsPerOp(); got > budget {
		t.Fatalf("allocs/op = %d, budget %d (ns/op %d, B/op %d): the hot path regressed",
			got, budget, res.NsPerOp(), res.AllocedBytesPerOp())
	}
	t.Logf("allocs/op = %d within budget %d (ns/op %d, B/op %d)",
		res.AllocsPerOp(), budget, res.NsPerOp(), res.AllocedBytesPerOp())
}
