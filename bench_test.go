// Package repro's root benchmarks regenerate the paper's evaluation as
// testing.B benchmarks — one family per table/figure:
//
//	BenchmarkTable1          — Table 1: the ten library configurations, null ops
//	BenchmarkFigure4Sizes    — Figure 4: request-size sweep (256..4096 B)
//	BenchmarkFigure5         — Figure 5: replicated ACID SQL inserts
//	BenchmarkACIDvsNoACID    — §4.2: journal+fsync vs neither
//	BenchmarkDynamicOverhead — §4.1: static vs dynamic client management
//	BenchmarkGroupSize       — §3.3.3: agreement latency as n = 3f+1 grows
//	BenchmarkPipeline        — 1 pipelined client vs an equal client fleet
//
// Each op is one client request against a live in-process cluster of
// 3f+1 replicas over the simulated 1 GbE network; parallel workers model
// the paper's 12 closed-loop clients. ns/op is therefore request latency
// under load; throughput = parallelism / ns-per-op. The full paper-style
// TPS tables come from `go run ./cmd/pbft-bench`.
package repro

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sqldb"
	"repro/sqlstate"
)

// benchCluster builds a cluster plus a pool of ready clients. Optional
// mutators adjust the library options (e.g. the execution shard count).
func benchCluster(b *testing.B, lc harness.LibConfig, app harness.AppFactory, numClients int, mutate ...func(*core.Options)) (*harness.Cluster, chan *client.Client) {
	b.Helper()
	opts := harness.BenchOptionsFor(lc)
	for _, m := range mutate {
		m(&opts)
	}
	c, err := harness.NewCluster(harness.ClusterOptions{
		Opts:       opts,
		NumClients: numClients,
		Seed:       42,
		App:        app,
		Bandwidth:  938e6 / 8, // the paper's measured 1 GbE
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	pool := make(chan *client.Client, numClients)
	for i := 0; i < numClients; i++ {
		var cl *client.Client
		if lc.Static {
			cl, err = c.Client(i)
		} else {
			cl, err = c.DynamicClient(fmt.Sprintf("bench-dyn-%d", i))
			if err == nil {
				err = cl.Join(context.Background(), []byte(fmt.Sprintf("benchuser%d:x", i)))
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { cl.Close() })
		pool <- cl
	}
	return c, pool
}

// runClientBench drives b.N operations through the client pool in
// parallel (the closed-loop client model of §4).
func runClientBench(b *testing.B, pool chan *client.Client, op func(i int) []byte, check func([]byte) error) {
	b.Helper()
	b.SetParallelism(len(pool)) // roughly the paper's 12 clients
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		select {
		case cl := <-pool:
			defer func() { pool <- cl }()
			i := 0
			for pb.Next() {
				resp, err := cl.Invoke(context.Background(), op(i))
				if err != nil {
					b.Error(err)
					return
				}
				if check != nil {
					if err := check(resp); err != nil {
						b.Error(err)
						return
					}
				}
				i++
			}
		default:
			// More workers than clients: surplus workers idle.
			for pb.Next() {
			}
		}
	})
}

// BenchmarkTable1 regenerates Table 1: null operations per second for the
// ten library configurations (1024-byte requests, like the paper's
// representative plot).
func BenchmarkTable1(b *testing.B) {
	for _, lc := range harness.Table1Configs() {
		b.Run(lc.Name, func(b *testing.B) {
			_, pool := benchCluster(b, lc, harness.NewEchoFactory(1024), 12)
			payload := make([]byte, 1024)
			runClientBench(b, pool, func(int) []byte { return payload }, nil)
		})
	}
}

// BenchmarkFigure4Sizes sweeps the request/response sizes of Figure 4's
// underlying experiment on the default configuration.
func BenchmarkFigure4Sizes(b *testing.B) {
	lc := harness.Table1Configs()[0] // sta_mac_allbig_batch, the default
	for _, size := range []int{256, 1024, 2048, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			_, pool := benchCluster(b, lc, harness.NewEchoFactory(size), 12)
			payload := make([]byte, size)
			runClientBench(b, pool, func(int) []byte { return payload }, nil)
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: one durable SQL INSERT per
// request across the §4.2 configurations.
func BenchmarkFigure5(b *testing.B) {
	for _, lc := range harness.Fig5Configs() {
		b.Run(lc.Name, func(b *testing.B) {
			dir, err := os.MkdirTemp("", "fig5-*")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { os.RemoveAll(dir) })
			_, pool := benchCluster(b, lc, harness.NewSQLFactory(true, dir), 12)
			w := &harness.SQLInsertWorkload{}
			runClientBench(b, pool,
				func(i int) []byte { return w.Op(0, i) },
				w.Check)
		})
	}
}

// BenchmarkACIDvsNoACID isolates the §4.2 durability cost: the most
// robust configuration with the rollback journal + fsync versus neither
// (the paper: 534 vs 1155 TPS, ~2x).
func BenchmarkACIDvsNoACID(b *testing.B) {
	for _, durable := range []bool{true, false} {
		name := "ACID"
		if !durable {
			name = "NoACID"
		}
		b.Run(name, func(b *testing.B) {
			lc := harness.LibConfig{Name: name, Static: false, Batch: true, Durable: durable}
			dir := ""
			if durable {
				var err error
				dir, err = os.MkdirTemp("", "acid-*")
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { os.RemoveAll(dir) })
			}
			_, pool := benchCluster(b, lc, harness.NewSQLFactory(durable, dir), 12)
			w := &harness.SQLInsertWorkload{}
			runClientBench(b, pool,
				func(i int) []byte { return w.Op(0, i) },
				w.Check)
		})
	}
}

// BenchmarkDynamicOverhead isolates the §4.1 result: dynamic client
// management costs ~0.5% on the most robust configuration.
func BenchmarkDynamicOverhead(b *testing.B) {
	for _, lc := range []harness.LibConfig{
		{Name: "static", Static: true, Batch: true},
		{Name: "dynamic", Static: false, Batch: true},
	} {
		b.Run(lc.Name, func(b *testing.B) {
			_, pool := benchCluster(b, lc, harness.NewEchoFactory(1024), 12)
			payload := make([]byte, 1024)
			runClientBench(b, pool, func(int) []byte { return payload }, nil)
		})
	}
}

// BenchmarkVerifyWorkers sweeps the ingress verification pool size on the
// default MAC+batching configuration: the staged pipeline moves
// authenticator checks and wire decoding off the protocol loop, so on
// multi-core hosts throughput should grow with the worker count (see also
// the BenchmarkVerifyPipeline micro-benchmark in internal/core).
func BenchmarkVerifyWorkers(b *testing.B) {
	lc := harness.Table1Configs()[0] // sta_mac_allbig_batch, the default
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := harness.BenchOptionsFor(lc)
			opts.VerifyWorkers = workers
			c, err := harness.NewCluster(harness.ClusterOptions{
				Opts:       opts,
				NumClients: 12,
				Seed:       42,
				App:        harness.NewEchoFactory(1024),
				Bandwidth:  938e6 / 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			pool := make(chan *client.Client, 12)
			for i := 0; i < 12; i++ {
				cl, err := c.Client(i)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { cl.Close() })
				pool <- cl
			}
			payload := make([]byte, 1024)
			runClientBench(b, pool, func(int) []byte { return payload }, nil)
		})
	}
}

// BenchmarkPipeline compares the two ways of keeping 16 requests in
// flight on the default configuration: the paper's model (16 closed-loop
// clients, one outstanding request each — a goroutine + connection +
// session per simulated user) against one pipelined client multiplexing
// a 16-deep window through the concurrent Submit API. ns/op is per
// operation at equal total in-flight budget.
func BenchmarkPipeline(b *testing.B) {
	const inflight = 16
	lc := harness.Table1Configs()[0] // sta_mac_allbig_batch, the default
	for _, bc := range []struct {
		name              string
		numClients, depth int
	}{
		{"16clients_x_depth1", inflight, 1},
		{"1client_x_depth16", 1, inflight},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c, err := harness.NewCluster(harness.ClusterOptions{
				Opts:       harness.BenchOptionsFor(lc),
				NumClients: bc.numClients,
				Seed:       42,
				App:        harness.NewEchoFactory(1024),
				Bandwidth:  938e6 / 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			clients := make([]*client.Client, bc.numClients)
			for i := range clients {
				cl, err := c.Client(i, client.WithPipelineDepth(bc.depth))
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { cl.Close() })
				clients[i] = cl
			}
			payload := make([]byte, 1024)
			ctx := context.Background()
			b.ResetTimer()
			// inflight workers split across the clients: every worker
			// drives one in-flight slot.
			var wg sync.WaitGroup
			var failed atomic.Bool
			ops := make(chan struct{}, inflight)
			for w := 0; w < inflight; w++ {
				wg.Add(1)
				go func(cl *client.Client) {
					defer wg.Done()
					for range ops {
						if _, err := cl.Invoke(ctx, payload); err != nil {
							failed.Store(true)
							return
						}
					}
				}(clients[w%len(clients)])
			}
			for i := 0; i < b.N; i++ {
				ops <- struct{}{}
			}
			close(ops)
			wg.Wait()
			if failed.Load() {
				b.Fatal("invoke failed")
			}
		})
	}
}

// BenchmarkGroupSize shows the §3.3.3 obstacle: request latency grows
// with the group size (quadratic message complexity).
func BenchmarkGroupSize(b *testing.B) {
	for _, f := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("f=%d_n=%d", f, 3*f+1), func(b *testing.B) {
			opts := harness.BenchOptionsFor(harness.LibConfig{Static: true, MACs: true, AllBig: true, Batch: false})
			opts.F = f
			c, err := harness.NewCluster(harness.ClusterOptions{
				Opts:       opts,
				NumClients: 1,
				Seed:       42,
				App:        harness.NewEchoFactory(64),
				Bandwidth:  938e6 / 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			cl, err := c.Client(0)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { cl.Close() })
			payload := make([]byte, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Invoke(context.Background(), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQLInsertLocal measures the embedded engine alone (no
// replication): the §4.2 denominator showing where the time goes.
func BenchmarkSQLInsertLocal(b *testing.B) {
	for _, durable := range []bool{true, false} {
		name := "durable"
		if !durable {
			name = "volatile"
		}
		b.Run(name, func(b *testing.B) {
			vfs := &sqldb.DiskVFS{Root: b.TempDir()}
			db, err := sqldb.Open(vfs, "bench.db", durable)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { db.Close() })
			if _, err := db.Exec(harness.VotesSchema[0]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := db.Exec("INSERT INTO votes (voter, vote, ts, rnd) VALUES (?, 'y', 1, 2)",
					sqlstate.Text(fmt.Sprint(i)))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
