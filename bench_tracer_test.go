package repro

import (
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/trace"
	"repro/pbft/metrics"
)

// BenchmarkTracerOverhead guards the observability surface's cost claims:
//
//	none             — no tracer or recorder installed: the nil fast
//	                   path. This must be at parity with the pre-tracer
//	                   pipeline (one predictable nil check per event and
//	                   stamp site; compare against BenchmarkPipeline).
//	metrics          — the full aggregating metrics registry installed on
//	                   every replica: the price of live counters and
//	                   histograms.
//	recorder         — a flight recorder per replica with no sink: the
//	                   price of per-request phase stamping and the
//	                   lock-free completed ring.
//	recorder+metrics — recorder sinking per-phase durations into the
//	                   registry (pbft_phase_seconds): the full PR 8
//	                   observability stack, the pbft-server -flight wiring.
//
// CI runs it with -benchtime 1x on every push as a smoke (the hooks fire,
// nothing deadlocks under load); locally, compare ns/op across the
// sub-benchmarks to measure each layer's hot-loop cost.
func BenchmarkTracerOverhead(b *testing.B) {
	const numClients = 12
	lc := harness.Table1Configs()[0] // sta_mac_allbig_batch, the default
	for _, bc := range []struct {
		name  string
		setup func(id uint32) (core.Tracer, *trace.Recorder)
	}{
		{"none", nil},
		{"metrics", func(uint32) (core.Tracer, *trace.Recorder) {
			return metrics.New(), nil
		}},
		{"recorder", func(id uint32) (core.Tracer, *trace.Recorder) {
			return nil, trace.New(trace.Config{Replica: int(id)})
		}},
		{"recorder+metrics", func(id uint32) (core.Tracer, *trace.Recorder) {
			reg := metrics.New()
			return reg, trace.New(trace.Config{Replica: int(id), Sink: reg})
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := harness.ClusterOptions{
				Opts:       harness.BenchOptionsFor(lc),
				NumClients: numClients,
				Seed:       42,
				App:        harness.NewEchoFactory(1024),
				Bandwidth:  938e6 / 8,
			}
			if bc.setup != nil {
				// One tracer+recorder pair per replica; the factories are
				// called once per id in sequence, so pairing through a map
				// keyed by id keeps the registry and its sink together.
				pairs := make(map[uint32]*trace.Recorder)
				setup := bc.setup
				opts.Tracer = func(id uint32) core.Tracer {
					tr, rec := setup(id)
					pairs[id] = rec
					return tr
				}
				opts.Recorder = func(id uint32) *trace.Recorder {
					return pairs[id]
				}
			}
			c, err := harness.NewCluster(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			pool := makeClientPool(b, c, numClients)
			payload := make([]byte, 1024)
			runClientBench(b, pool, func(int) []byte { return payload }, nil)
		})
	}
}

// makeClientPool builds the closed-loop client pool for a pre-built
// cluster (benchCluster fuses cluster+pool construction; this variant
// lets the cluster carry a tracer).
func makeClientPool(b *testing.B, c *harness.Cluster, numClients int) chan *client.Client {
	b.Helper()
	pool := make(chan *client.Client, numClients)
	for i := 0; i < numClients; i++ {
		cl, err := c.Client(i)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { cl.Close() })
		pool <- cl
	}
	return pool
}
