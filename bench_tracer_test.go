package repro

import (
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/pbft/metrics"
)

// BenchmarkTracerOverhead guards the observability surface's cost claims:
//
//	none    — no tracer installed: the nil fast path. This must be at
//	          parity with the pre-tracer pipeline (one predictable nil
//	          check per event site; compare against BenchmarkPipeline).
//	metrics — the full aggregating metrics registry installed on every
//	          replica: the price of live counters and histograms.
//
// CI runs it with -benchtime 1x on every push as a smoke (the hooks fire,
// nothing deadlocks under load); locally, compare ns/op between the two
// sub-benchmarks to measure the tracer's hot-loop cost.
func BenchmarkTracerOverhead(b *testing.B) {
	const numClients = 12
	lc := harness.Table1Configs()[0] // sta_mac_allbig_batch, the default
	for _, bc := range []struct {
		name   string
		tracer func(uint32) core.Tracer
	}{
		{"none", nil},
		{"metrics", func(uint32) core.Tracer { return metrics.New() }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c, err := harness.NewCluster(harness.ClusterOptions{
				Opts:       harness.BenchOptionsFor(lc),
				NumClients: numClients,
				Seed:       42,
				App:        harness.NewEchoFactory(1024),
				Bandwidth:  938e6 / 8,
				Tracer:     bc.tracer,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Stop)
			pool := makeClientPool(b, c, numClients)
			payload := make([]byte, 1024)
			runClientBench(b, pool, func(int) []byte { return payload }, nil)
		})
	}
}

// makeClientPool builds the closed-loop client pool for a pre-built
// cluster (benchCluster fuses cluster+pool construction; this variant
// lets the cluster carry a tracer).
func makeClientPool(b *testing.B, c *harness.Cluster, numClients int) chan *client.Client {
	b.Helper()
	pool := make(chan *client.Client, numClients)
	for i := 0; i < numClients; i++ {
		cl, err := c.Client(i)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { cl.Close() })
		pool <- cl
	}
	return pool
}
