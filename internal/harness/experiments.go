package harness

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// LibConfig names one library configuration of the paper's Table 1.
type LibConfig struct {
	Name    string
	Static  bool // static client management ("sta"/"nosta")
	MACs    bool // authenticators ("mac"/"nomac")
	AllBig  bool // all requests treated as big ("allbig"/"noallbig")
	Batch   bool // request batching ("batch"/"nobatch")
	Durable bool // ACID for the SQL experiments
}

// Table1Configs are the ten rows of Table 1, in the paper's order.
func Table1Configs() []LibConfig {
	return []LibConfig{
		{Name: "sta_mac_allbig_batch", Static: true, MACs: true, AllBig: true, Batch: true},
		{Name: "sta_mac_allbig_nobatch", Static: true, MACs: true, AllBig: true, Batch: false},
		{Name: "sta_mac_noallbig_batch", Static: true, MACs: true, AllBig: false, Batch: true},
		{Name: "sta_mac_noallbig_nobatch", Static: true, MACs: true, AllBig: false, Batch: false},
		{Name: "sta_nomac_allbig_batch", Static: true, MACs: false, AllBig: true, Batch: true},
		{Name: "sta_nomac_allbig_nobatch", Static: true, MACs: false, AllBig: true, Batch: false},
		{Name: "sta_nomac_noallbig_batch", Static: true, MACs: false, AllBig: false, Batch: true},
		{Name: "sta_nomac_noallbig_nobatch", Static: true, MACs: false, AllBig: false, Batch: false},
		{Name: "nosta_nomac_noallbig_batch", Static: false, MACs: false, AllBig: false, Batch: true},
		{Name: "nosta_nomac_noallbig_nobatch", Static: false, MACs: false, AllBig: false, Batch: false},
	}
}

// Fig5Configs are the configurations of Figure 5 (batching always on,
// per §4.2).
func Fig5Configs() []LibConfig {
	return []LibConfig{
		{Name: "sta_mac_allbig", Static: true, MACs: true, AllBig: true, Batch: true, Durable: true},
		{Name: "sta_mac_noallbig", Static: true, MACs: true, AllBig: false, Batch: true, Durable: true},
		{Name: "sta_nomac_allbig", Static: true, MACs: false, AllBig: true, Batch: true, Durable: true},
		{Name: "sta_nomac_noallbig", Static: true, MACs: false, AllBig: false, Batch: true, Durable: true},
		{Name: "nosta_nomac_noallbig", Static: false, MACs: false, AllBig: false, Batch: true, Durable: true},
	}
}

// ExperimentOptions sizes an experiment run.
// Tracer re-exports the protocol event tracer interface so commands
// outside the internal tree (pbft-bench) can populate the tracer hooks
// of ExperimentOptions without importing internal/core.
type Tracer = core.Tracer

type ExperimentOptions struct {
	// NumClients is the closed-loop client count (the paper uses 12).
	NumClients int
	// Duration is the measured window per configuration.
	Duration time.Duration
	// Warmup runs the workload briefly before measuring.
	Warmup time.Duration
	// RequestSize is the null request/response size (Table 1: 1024).
	RequestSize int
	// PipelineDepth is how many requests each load client keeps in
	// flight (0 or 1 = the paper's closed-loop model).
	PipelineDepth int
	// Seed makes the simulated network reproducible.
	Seed int64
	// Out receives the report (defaults to stdout).
	Out io.Writer
	// Tracer, when set, is installed on every replica of every cluster
	// an experiment builds (one shared aggregating instance; its hooks
	// must be safe for concurrent use). pbft-bench -metrics uses it to
	// print a protocol-event summary per experiment.
	Tracer core.Tracer
	// GroupTracer, when set, supersedes Tracer for partitioned
	// experiments: it builds the tracer for one consensus group, so a
	// group-aware registry (metrics.Metrics.Group) can label events per
	// group instead of folding every group into one aggregate.
	GroupTracer func(group int) Tracer
	// Record, when set, receives one machine-readable row per measured
	// configuration, in addition to the human-readable report on Out.
	// pbft-bench -json aggregates the rows into an experiment summary
	// file (the perf-trajectory artifacts like BENCH_PR5.json).
	Record func(ExperimentResult)
	// AddTransport, when set, receives every real UDP endpoint an
	// experiment binds (currently the swarm's loopback phase), keyed by
	// replica id. pbft-bench -metrics points it at the metrics
	// registry's AddTransport so the pbft_udp_* syscall-batching series
	// cover the bench the same way they cover pbft-server.
	AddTransport func(id uint32, stats func() transport.BatchStats)
}

// ExperimentResult is one machine-readable measurement row: an experiment
// family, the configuration name within it, and the core numbers. Extra
// carries experiment-specific series (packets per request, sharded-op
// counts, ...).
type ExperimentResult struct {
	Experiment string             `json:"experiment"`
	Name       string             `json:"name"`
	TPS        float64            `json:"tps"`
	Ops        uint64             `json:"ops"`
	Errors     uint64             `json:"errors"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// record emits one row to the Record hook, if installed.
func (o *ExperimentOptions) record(experiment, name string, res RunResult, extra map[string]float64) {
	if o.Record == nil {
		return
	}
	o.Record(ExperimentResult{
		Experiment: experiment,
		Name:       name,
		TPS:        res.TPS(),
		Ops:        res.Ops,
		Errors:     res.Errors,
		Extra:      extra,
	})
}

// DefaultExperimentOptions mirrors the paper's setup scaled to a quick
// local run.
func DefaultExperimentOptions() ExperimentOptions {
	return ExperimentOptions{
		NumClients:  12,
		Duration:    3 * time.Second,
		Warmup:      500 * time.Millisecond,
		RequestSize: 1024,
		Seed:        42,
	}
}

// tracerFactory adapts the shared experiment tracer to the cluster's
// per-replica factory shape.
func (o *ExperimentOptions) tracerFactory() func(uint32) core.Tracer {
	if o.Tracer == nil {
		return nil
	}
	return func(uint32) core.Tracer { return o.Tracer }
}

func (o *ExperimentOptions) out() io.Writer {
	if o.Out != nil {
		return o.Out
	}
	return os.Stdout
}

// BenchOptionsFor maps a LibConfig onto library options (exported for
// the root-level benchmarks).
func BenchOptionsFor(lc LibConfig) core.Options {
	return buildOptions(lc)
}

// buildOptions maps a LibConfig onto library options.
func buildOptions(lc LibConfig) core.Options {
	o := core.DefaultOptions()
	o.UseMACs = lc.MACs
	o.AllBig = lc.AllBig
	o.Batching = lc.Batch
	o.DynamicClients = !lc.Static
	o.CheckpointInterval = 64
	o.StateSize = 8 << 20
	o.ViewChangeTimeout = 5 * time.Second
	o.RequestTimeout = time.Second
	return o
}

// MeasureConfig runs one configuration with the null workload and
// returns its throughput (one Table 1 cell).
func MeasureConfig(lc LibConfig, opts ExperimentOptions, app AppFactory, w Workload) (RunResult, error) {
	co := buildOptions(lc)
	numClients := opts.NumClients
	cluster, err := NewCluster(ClusterOptions{
		Opts:       co,
		NumClients: numClients,
		Seed:       opts.Seed,
		App:        app,
		// The paper's testbed: 1 GbE measured at 938 Mbit/s by iperf.
		Bandwidth: 938e6 / 8,
		Tracer:    opts.tracerFactory(),
	})
	if err != nil {
		return RunResult{}, err
	}
	defer cluster.Stop()
	depth := opts.PipelineDepth
	if depth < 1 {
		depth = 1
	}
	if opts.Warmup > 0 {
		if _, err := cluster.RunPipelined(numClients, depth, w, opts.Warmup, !lc.Static); err != nil {
			return RunResult{}, err
		}
	}
	return cluster.RunPipelined(numClients, depth, w, opts.Duration, !lc.Static)
}

// RunTable1 regenerates Table 1: every library configuration measured
// with null operations at the given request size.
func RunTable1(opts ExperimentOptions) error {
	w := opts.out()
	fmt.Fprintf(w, "Table 1 — null-operation throughput, %d clients, %d-byte requests/responses\n",
		opts.NumClients, opts.RequestSize)
	fmt.Fprintf(w, "%-30s %8s %10s %8s\n", "Name", "TPS", "ops", "errors")
	for _, lc := range Table1Configs() {
		res, err := MeasureConfig(lc, opts, NewEchoFactory(opts.RequestSize), &NullWorkload{Size: opts.RequestSize})
		if err != nil {
			return fmt.Errorf("config %s: %w", lc.Name, err)
		}
		opts.record("table1", lc.Name, res, nil)
		fmt.Fprintf(w, "%-30s %8.0f %10d %8d\n", lc.Name, res.TPS(), res.Ops, res.Errors)
	}
	return nil
}

// RunFigure4 regenerates Figure 4: the Table 1 series, one bar per
// configuration, at the representative 1024-byte size (other sizes via
// opts.RequestSize).
func RunFigure4(opts ExperimentOptions) error {
	w := opts.out()
	fmt.Fprintf(w, "Figure 4 — PBFT tests (null ops, %d bytes)\n", opts.RequestSize)
	max := 0.0
	type bar struct {
		name string
		tps  float64
	}
	bars := make([]bar, 0, 10)
	for _, lc := range Table1Configs() {
		res, err := MeasureConfig(lc, opts, NewEchoFactory(opts.RequestSize), &NullWorkload{Size: opts.RequestSize})
		if err != nil {
			return fmt.Errorf("config %s: %w", lc.Name, err)
		}
		opts.record("fig4", lc.Name, res, nil)
		bars = append(bars, bar{lc.Name, res.TPS()})
		if res.TPS() > max {
			max = res.TPS()
		}
	}
	for _, b := range bars {
		width := 0
		if max > 0 {
			width = int(b.tps / max * 50)
		}
		fmt.Fprintf(w, "%-30s %8.0f %s\n", b.name, b.tps, barString(width))
	}
	return nil
}

func barString(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// RunFigure5 regenerates Figure 5: single-row INSERTs through the
// replicated ACID SQL state (batching on, §4.2).
func RunFigure5(opts ExperimentOptions, diskRoot string) error {
	w := opts.out()
	fmt.Fprintf(w, "Figure 5 — PBFT + SQL benchmark (single-row INSERT per request, ACID)\n")
	fmt.Fprintf(w, "%-30s %8s %10s %8s\n", "Name", "TPS", "ops", "errors")
	for _, lc := range Fig5Configs() {
		root, err := os.MkdirTemp(diskRoot, "fig5-"+lc.Name+"-*")
		if err != nil {
			return err
		}
		res, err := MeasureConfig(lc, opts, NewSQLFactory(lc.Durable, root), &SQLInsertWorkload{})
		_ = os.RemoveAll(root)
		if err != nil {
			return fmt.Errorf("config %s: %w", lc.Name, err)
		}
		opts.record("fig5", lc.Name, res, nil)
		fmt.Fprintf(w, "%-30s %8.0f %10d %8d\n", lc.Name, res.TPS(), res.Ops, res.Errors)
	}
	return nil
}

// RunACIDComparison regenerates the §4.2 isolation experiment: the most
// robust configuration with and without ACID semantics (the paper
// measured 534 vs 1155 TPS, about a 2x gap).
func RunACIDComparison(opts ExperimentOptions, diskRoot string) error {
	w := opts.out()
	fmt.Fprintf(w, "§4.2 — ACID vs no-ACID, most robust configuration, dynamic clients\n")
	fmt.Fprintf(w, "%-30s %8s %10s %8s\n", "Mode", "TPS", "ops", "errors")
	base := LibConfig{Name: "acid", Static: false, MACs: false, AllBig: false, Batch: true, Durable: true}
	for _, durable := range []bool{true, false} {
		lc := base
		lc.Durable = durable
		name := "ACID (journal+fsync)"
		if !durable {
			name = "No-ACID (no journal/sync)"
		}
		root := ""
		if durable {
			var err error
			root, err = os.MkdirTemp(diskRoot, "acid-*")
			if err != nil {
				return err
			}
		}
		res, err := MeasureConfig(lc, opts, NewSQLFactory(durable, root), &SQLInsertWorkload{})
		if root != "" {
			_ = os.RemoveAll(root)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		opts.record("acid", name, res, nil)
		fmt.Fprintf(w, "%-30s %8.0f %10d %8d\n", name, res.TPS(), res.Ops, res.Errors)
	}
	return nil
}

// RunLossyBatchAblation backs the Table 1 divergence note: under even
// mild packet loss (the §2.4 premise that UDP drops under stress), the
// unbatched configuration collapses — its per-request message storm keeps
// tripping timeouts and recovery — while batching shrugs it off. This is
// the mechanism behind the paper's 16x batch/nobatch gap.
func RunLossyBatchAblation(opts ExperimentOptions, lossRates []float64) error {
	w := opts.out()
	fmt.Fprintf(w, "Table 1 ablation — mac_allbig batch vs nobatch under uniform packet loss\n")
	fmt.Fprintf(w, "%8s %14s %14s %8s\n", "loss", "batch TPS", "nobatch TPS", "ratio")
	for _, loss := range lossRates {
		tps := make(map[bool]float64)
		for _, batch := range []bool{true, false} {
			lc := LibConfig{Static: true, MACs: true, AllBig: true, Batch: batch}
			co := buildOptions(lc)
			cluster, err := NewCluster(ClusterOptions{
				Opts:       co,
				NumClients: opts.NumClients,
				Seed:       opts.Seed,
				App:        NewEchoFactory(opts.RequestSize),
				Bandwidth:  938e6 / 8,
			})
			if err != nil {
				return err
			}
			cluster.Net.SetDefaultFaults(transport.Faults{LossRate: loss})
			res, err := cluster.RunClosedLoop(opts.NumClients, &NullWorkload{Size: opts.RequestSize}, opts.Duration, false)
			cluster.Stop()
			if err != nil {
				return err
			}
			name := fmt.Sprintf("loss=%.3f_batch=%v", loss, batch)
			opts.record("lossy", name, res, map[string]float64{"loss": loss})
			tps[batch] = res.TPS()
		}
		ratio := 0.0
		if tps[false] > 0 {
			ratio = tps[true] / tps[false]
		}
		fmt.Fprintf(w, "%7.1f%% %14.0f %14.0f %7.1fx\n", loss*100, tps[true], tps[false], ratio)
	}
	return nil
}

// RunDynamicOverhead measures the §4.1 dynamic-client overhead in
// isolation (the paper: 988 vs 992 TPS, ~0.5%).
func RunDynamicOverhead(opts ExperimentOptions) error {
	w := opts.out()
	fmt.Fprintf(w, "§4.1 — dynamic client management overhead (most robust configuration)\n")
	fmt.Fprintf(w, "%-30s %8s\n", "Mode", "TPS")
	for _, lc := range []LibConfig{
		{Name: "static (sta_nomac_noallbig_batch)", Static: true, Batch: true},
		{Name: "dynamic (nosta_nomac_noallbig_batch)", Static: false, Batch: true},
	} {
		res, err := MeasureConfig(lc, opts, NewEchoFactory(opts.RequestSize), &NullWorkload{Size: opts.RequestSize})
		if err != nil {
			return fmt.Errorf("config %s: %w", lc.Name, err)
		}
		opts.record("dynamic", lc.Name, res, nil)
		fmt.Fprintf(w, "%-30s %8.0f\n", lc.Name, res.TPS())
	}
	return nil
}

// RunPipelineComparison measures what request pipelining buys: the same
// total in-flight budget arranged as many closed-loop clients (the
// paper's model: one outstanding request each, one endpoint per simulated
// user) versus one pipelined client multiplexing the whole window. The
// pipelined arrangement is how a single gateway endpoint serves a large
// user population without a goroutine+connection per user.
func RunPipelineComparison(opts ExperimentOptions, depths []int) error {
	w := opts.out()
	if len(depths) == 0 {
		depths = []int{1, 4, 8, 16}
	}
	fmt.Fprintf(w, "Pipelined client — %d in-flight requests: N clients x depth 1 vs 1 client x depth N\n", depths[len(depths)-1])
	fmt.Fprintf(w, "%8s %18s %18s %8s\n", "inflight", "N clients TPS", "pipelined TPS", "errors")
	// Every cluster runs with a flight recorder per replica sinking into
	// one collector: the per-phase latency breakdown below is where a
	// pipeline depth's extra throughput comes from (and what it costs in
	// per-request queueing).
	phases := &PhaseCollector{}
	for _, depth := range depths {
		run := func(numClients, d int) (RunResult, error) {
			cluster, err := NewCluster(ClusterOptions{
				Opts:       buildOptions(LibConfig{Static: true, MACs: true, AllBig: true, Batch: true}),
				NumClients: numClients,
				Seed:       opts.Seed,
				App:        NewEchoFactory(opts.RequestSize),
				Bandwidth:  938e6 / 8,
				Recorder:   phases.Factory(),
			})
			if err != nil {
				return RunResult{}, err
			}
			defer cluster.Stop()
			return cluster.RunPipelined(numClients, d, &NullWorkload{Size: opts.RequestSize}, opts.Duration, false)
		}
		wide, err := run(depth, 1)
		if err != nil {
			return err
		}
		deep, err := run(1, depth)
		if err != nil {
			return err
		}
		opts.record("pipeline", fmt.Sprintf("%dclients_x_depth1", depth), wide, nil)
		opts.record("pipeline", fmt.Sprintf("1client_x_depth%d", depth), deep, nil)
		fmt.Fprintf(w, "%8d %18.0f %18.0f %8d\n", depth, wide.TPS(), deep.TPS(), wide.Errors+deep.Errors)
	}
	rows := phases.Snapshot().Rows()
	if len(rows) > 0 {
		fmt.Fprintf(w, "\nPer-phase latency breakdown (replica flight recorders, all runs merged)\n")
		fmt.Fprintf(w, "%-18s %10s %12s\n", "phase", "samples", "mean")
		for _, r := range rows {
			fmt.Fprintf(w, "%-18s %10d %12s\n", r.Phase.String(), r.Count, r.Mean.Round(time.Microsecond))
			if opts.Record != nil {
				opts.Record(ExperimentResult{
					Experiment: "pipeline_phase",
					Name:       r.Phase.String(),
					Ops:        r.Count,
					Extra:      map[string]float64{"mean_ms": r.Mean.Seconds() * 1e3},
				})
			}
		}
	}
	return nil
}

// RunExecShardComparison measures the sharded execution engine: the
// keyed-counter workload (mostly non-conflicting operations) against the
// same cluster at each shard count. Shards beyond the host's core count
// cannot help; on a single-core host the interesting result is that
// sharding does not regress (the engine's scheduling overhead is paid but
// unusable).
func RunExecShardComparison(opts ExperimentOptions, shards []int) error {
	w := opts.out()
	if len(shards) == 0 {
		shards = []int{1, 2, 4}
	}
	fmt.Fprintf(w, "Sharded execution — keyed counter workload, %d clients x depth %d\n",
		opts.NumClients, max(opts.PipelineDepth, 1))
	fmt.Fprintf(w, "%8s %10s %10s %12s %10s %8s\n", "shards", "TPS", "ops", "sharded-ops", "barriers", "errors")
	for _, s := range shards {
		o := buildOptions(LibConfig{Static: true, MACs: true, AllBig: true, Batch: true}).WithExecShards(s)
		cluster, err := NewCluster(ClusterOptions{
			Opts:       o,
			NumClients: opts.NumClients,
			Seed:       opts.Seed,
			App:        NewCounterFactory(),
			Bandwidth:  938e6 / 8,
			Tracer:     opts.tracerFactory(),
		})
		if err != nil {
			return err
		}
		depth := max(opts.PipelineDepth, 1)
		if opts.Warmup > 0 {
			if _, err := cluster.RunPipelined(opts.NumClients, depth, &KeyedCounterWorkload{}, opts.Warmup, false); err != nil {
				cluster.Stop()
				return err
			}
		}
		res, err := cluster.RunPipelined(opts.NumClients, depth, &KeyedCounterWorkload{}, opts.Duration, false)
		info := cluster.Replicas[0].Info()
		cluster.Stop()
		if err != nil {
			return err
		}
		opts.record("exec", fmt.Sprintf("shards=%d", s), res, map[string]float64{
			"sharded_ops": float64(info.Stats.ExecSharded),
			"barriers":    float64(info.Stats.ExecBarriers),
		})
		sharded, barriers := fmt.Sprint(info.Stats.ExecSharded), fmt.Sprint(info.Stats.ExecBarriers)
		if s <= 1 {
			sharded, barriers = "-", "-" // serial: nothing is routed by keyset
		}
		fmt.Fprintf(w, "%8d %10.0f %10d %12s %10s %8d\n",
			s, res.TPS(), res.Ops, sharded, barriers, res.Errors)
	}
	return nil
}

// RunWANScaling demonstrates the quadratic message complexity the paper
// cites as the WAN obstacle (§3.3.3): protocol messages per executed
// request as the group size grows.
func RunWANScaling(opts ExperimentOptions, fs []int) error {
	w := opts.out()
	fmt.Fprintf(w, "§3.3.3 — message complexity vs group size (n = 3f+1)\n")
	fmt.Fprintf(w, "%4s %4s %12s %14s %12s\n", "f", "n", "requests", "packets", "pkts/req")
	for _, f := range fs {
		o := core.DefaultOptions()
		o.F = f
		o.CheckpointInterval = 64
		o.StateSize = 4 << 20
		o.ViewChangeTimeout = 10 * time.Second
		o.Batching = false // isolate per-request agreement cost
		cluster, err := NewCluster(ClusterOptions{
			Opts:       o,
			NumClients: 2,
			Seed:       opts.Seed,
			App:        NewEchoFactory(64),
			Tracer:     opts.tracerFactory(),
		})
		if err != nil {
			return err
		}
		cluster.Net.ResetStats()
		res, err := cluster.RunClosedLoop(2, &NullWorkload{Size: 64}, opts.Duration, false)
		stats := cluster.Net.Stats()
		cluster.Stop()
		if err != nil {
			return err
		}
		perReq := 0.0
		if res.Ops > 0 {
			perReq = float64(stats.Packets) / float64(res.Ops)
		}
		opts.record("wan", fmt.Sprintf("f=%d_n=%d", f, 3*f+1), res, map[string]float64{
			"packets":      float64(stats.Packets),
			"pkts_per_req": perReq,
		})
		fmt.Fprintf(w, "%4d %4d %12d %14d %12.1f\n", f, 3*f+1, res.Ops, stats.Packets, perReq)
	}
	return nil
}

// RunLossExperiment reproduces §2.4: with all-big requests, client→replica
// loss wedges a replica until a checkpoint-driven state transfer; without
// big handling the client's retransmission makes progress all-or-nothing.
func RunLossExperiment(opts ExperimentOptions) error {
	w := opts.out()
	fmt.Fprintf(w, "§2.4 — behaviour under client→replica packet loss\n")
	for _, allBig := range []bool{true, false} {
		o := buildOptions(LibConfig{Static: true, MACs: true, AllBig: allBig, Batch: true})
		o.CheckpointInterval = 16
		cluster, err := NewCluster(ClusterOptions{
			Opts:       o,
			NumClients: 2,
			Seed:       opts.Seed,
			App:        NewEchoFactory(64),
			Tracer:     opts.tracerFactory(),
		})
		if err != nil {
			return err
		}
		// 30% loss from every client to replica 3 only.
		for i := 0; i < 2; i++ {
			cluster.Net.SetLinkFaults(ClientAddr(i), ReplicaAddr(3), transport.Faults{LossRate: 0.3})
		}
		res, err := cluster.RunClosedLoop(2, &NullWorkload{Size: 64}, opts.Duration, false)
		if err != nil {
			cluster.Stop()
			return err
		}
		info := cluster.Replicas[3].Info()
		mode := "allbig"
		if !allBig {
			mode = "noallbig"
		}
		fmt.Fprintf(w, "%-10s TPS=%7.0f replica3: exec=%d stable=%d wedged=%v state-transfers=%d\n",
			mode, res.TPS(), info.LastExec, info.LastStable, info.Stats.WedgedNow, info.Stats.StateTransfers)
		cluster.Stop()
	}
	return nil
}

// RunRecoveryExperiment reproduces §2.3: a restarted replica cannot
// authenticate logged client requests until the blind session-hello
// retransmission arrives; recovery time tracks the hello interval.
func RunRecoveryExperiment(opts ExperimentOptions, helloIntervals []time.Duration) error {
	w := opts.out()
	fmt.Fprintf(w, "§2.3 — replica restart recovery vs authenticator retransmission period\n")
	fmt.Fprintf(w, "%14s %16s\n", "hello period", "recovery time")
	for _, hi := range helloIntervals {
		o := buildOptions(LibConfig{Static: true, MACs: true, AllBig: true, Batch: true})
		o.CheckpointInterval = 16
		o.HelloInterval = hi
		cluster, err := NewCluster(ClusterOptions{
			Opts:       o,
			NumClients: 2,
			Seed:       opts.Seed,
			App:        NewEchoFactory(64),
			Tracer:     opts.tracerFactory(),
		})
		if err != nil {
			return err
		}
		// Drive load, crash and restart replica 3, measure how long it
		// takes to execute again.
		stop := make(chan struct{})
		go func() {
			_, _ = cluster.RunClosedLoop(2, &NullWorkload{Size: 64}, opts.Duration+4*time.Second, false)
			close(stop)
		}()
		time.Sleep(500 * time.Millisecond)
		cluster.StopReplica(3)
		time.Sleep(300 * time.Millisecond)
		restart := time.Now()
		if err := cluster.RestartReplica(3); err != nil {
			cluster.Stop()
			return err
		}
		// Direct execution (not mere state transfer) requires the
		// replica to authenticate client bodies again, which waits on
		// the blind hello retransmission — the §2.3 stall.
		recovered := time.Duration(0)
		for recovered == 0 {
			info := cluster.Replicas[3].Info()
			if info.Stats.Executed > 0 {
				recovered = time.Since(restart)
				break
			}
			select {
			case <-stop:
				recovered = -1
			case <-time.After(5 * time.Millisecond):
			}
		}
		fmt.Fprintf(w, "%14s %16s\n", hi, recovered)
		<-stop
		cluster.Stop()
	}
	return nil
}
