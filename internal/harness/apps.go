package harness

import (
	"encoding/binary"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/state"
)

// EchoApp is the null-operation service used by the paper's §4.1
// throughput experiments: it returns a fixed-size response without
// touching state. The replica spends its time purely in the protocol.
type EchoApp struct {
	// RespSize is the reply body size in bytes.
	RespSize int
	// Executed counts operations (read with atomic).
	Executed atomic.Uint64
}

var _ core.Application = (*EchoApp)(nil)

// Execute implements core.Application.
func (a *EchoApp) Execute(op []byte, nd core.NonDetValues, readOnly bool) []byte {
	a.Executed.Add(1)
	return make([]byte, a.RespSize)
}

// NewEchoFactory builds an EchoApp per replica.
func NewEchoFactory(respSize int) AppFactory {
	return func(uint32) core.Application {
		return &EchoApp{RespSize: respSize}
	}
}

// CounterApp is a minimal stateful service used by the integration tests:
// a uint64 counter persisted in the replicated state region. Operations:
// "inc" adds one and returns the new value; "get" (read-only capable)
// returns the current value. Its determinism and region-backed state make
// divergence between replicas detectable via checkpoint digests.
type CounterApp struct {
	region *state.Region
}

var (
	_ core.Application = (*CounterApp)(nil)
	_ core.StateUser   = (*CounterApp)(nil)
)

// AttachState implements core.StateUser.
func (a *CounterApp) AttachState(region *state.Region) { a.region = region }

// Execute implements core.Application.
func (a *CounterApp) Execute(op []byte, nd core.NonDetValues, readOnly bool) []byte {
	var buf [8]byte
	if _, err := a.region.ReadAt(buf[:], 0); err != nil {
		return nil
	}
	v := binary.BigEndian.Uint64(buf[:])
	switch string(op) {
	case "inc":
		if readOnly {
			return nil // refuse mutation on the read-only path
		}
		v++
		binary.BigEndian.PutUint64(buf[:], v)
		if _, err := a.region.WriteAt(buf[:], 0); err != nil {
			return nil
		}
	case "get":
	default:
		return []byte("unknown op")
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, v)
	return out
}

// NewCounterFactory builds a CounterApp per replica.
func NewCounterFactory() AppFactory {
	return func(uint32) core.Application { return &CounterApp{} }
}

// AuthCounterApp wraps CounterApp with an application-level authorizer
// for dynamic membership tests: the identification buffer is
// "user:password"; any non-empty user with password "sesame" is accepted,
// and the user name is the principal.
type AuthCounterApp struct {
	CounterApp
}

var _ core.Authorizer = (*AuthCounterApp)(nil)

// Authorize implements core.Authorizer.
func (a *AuthCounterApp) Authorize(appAuth []byte) (string, bool) {
	s := string(appAuth)
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			user, pass := s[:i], s[i+1:]
			return user, user != "" && pass == "sesame"
		}
	}
	return "", false
}

// NewAuthCounterFactory builds an AuthCounterApp per replica.
func NewAuthCounterFactory() AppFactory {
	return func(uint32) core.Application { return &AuthCounterApp{} }
}
