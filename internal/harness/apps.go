package harness

import (
	"encoding/binary"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/state"
)

// EchoApp is the null-operation service used by the paper's §4.1
// throughput experiments: it returns a fixed-size response without
// touching state. The replica spends its time purely in the protocol.
type EchoApp struct {
	// RespSize is the reply body size in bytes.
	RespSize int
	// Executed counts operations (read with atomic).
	Executed atomic.Uint64
}

var _ core.Application = (*EchoApp)(nil)

// Execute implements core.Application.
func (a *EchoApp) Execute(op []byte, nd core.NonDetValues, readOnly bool) []byte {
	a.Executed.Add(1)
	return make([]byte, a.RespSize)
}

// NewEchoFactory builds an EchoApp per replica.
func NewEchoFactory(respSize int) AppFactory {
	return func(uint32) core.Application {
		return &EchoApp{RespSize: respSize}
	}
}

// counterSlots is the number of 8-byte counter cells a CounterApp hosts.
// Slot 0 serves the legacy unkeyed "inc"/"get" operations; named counters
// hash onto slots 1..counterSlots-1.
const counterSlots = 1024

// CounterApp is a minimal stateful service used by the integration tests:
// an array of uint64 counters persisted in the replicated state region.
//
// Operations: "inc" / "get" address the legacy counter in slot 0 and are
// unkeyed (execution barriers under the sharded engine); "inc <name>",
// "get <name>" and "bump <name>" address the named counter's slot and
// carry that slot as their conflict key, so operations on different slots
// apply concurrently. "bump" increments like "inc" but answers a fixed
// "OK": its reply is independent of the interleaving with other clients'
// bumps of the same counter, which is what the determinism suite needs to
// compare reply streams across shard counts under contention.
//
// Each operation touches only its slot's 8 bytes, so disjoint-keyset
// operations commute byte-wise — the Sharder contract. Distinct names
// that collide onto one slot share a conflict key and therefore
// serialize; the key IS the storage cell, never the name.
type CounterApp struct {
	region *state.Region
}

var (
	_ core.Application = (*CounterApp)(nil)
	_ core.StateUser   = (*CounterApp)(nil)
	_ core.Sharder     = (*CounterApp)(nil)
)

// AttachState implements core.StateUser.
func (a *CounterApp) AttachState(region *state.Region) { a.region = region }

// counterSlot maps an operation to its slot: 0 for the legacy unkeyed
// ops, a name-hashed slot in [1, counterSlots) otherwise.
func counterSlot(name []byte) uint64 {
	if len(name) == 0 {
		return 0
	}
	return 1 + exec.Hash64(name)%(counterSlots-1)
}

// splitCounterOp parses "verb" or "verb name" without copying (Keys runs
// per committed operation on the protocol loop — keep it allocation-free).
func splitCounterOp(op []byte) (verb, name []byte) {
	for i := 0; i < len(op); i++ {
		if op[i] == ' ' {
			return op[:i], op[i+1:]
		}
	}
	return op, nil
}

// Keys implements core.Sharder: the conflict key of a named operation is
// its storage slot; legacy unkeyed operations are barriers.
func (a *CounterApp) Keys(op []byte) [][]byte { return CounterKeys(op) }

// CounterKeys is CounterApp's conflict keyset as a standalone function:
// the partition router uses the same keysets for data placement that the
// exec engine uses for conflict detection, and the router side has no
// application instance in hand.
func CounterKeys(op []byte) [][]byte {
	verb, name := splitCounterOp(op)
	if len(name) == 0 {
		return nil
	}
	switch string(verb) { // compiler-recognized, no allocation
	case "inc", "get", "bump":
		key := make([]byte, 8)
		binary.BigEndian.PutUint64(key, counterSlot(name))
		return [][]byte{key}
	}
	return nil
}

// Execute implements core.Application.
func (a *CounterApp) Execute(op []byte, nd core.NonDetValues, readOnly bool) []byte {
	verb, name := splitCounterOp(op)
	off := int64(counterSlot(name) * 8)
	var buf [8]byte
	if _, err := a.region.ReadAt(buf[:], off); err != nil {
		return nil
	}
	v := binary.BigEndian.Uint64(buf[:])
	switch string(verb) {
	case "inc", "bump":
		if readOnly {
			return nil // refuse mutation on the read-only path
		}
		v++
		binary.BigEndian.PutUint64(buf[:], v)
		if _, err := a.region.WriteAt(buf[:], off); err != nil {
			return nil
		}
	case "get":
	default:
		return []byte("unknown op")
	}
	if string(verb) == "bump" {
		return []byte("OK")
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, v)
	return out
}

// NewCounterFactory builds a CounterApp per replica.
func NewCounterFactory() AppFactory {
	return func(uint32) core.Application { return &CounterApp{} }
}

// AuthCounterApp wraps CounterApp with an application-level authorizer
// for dynamic membership tests: the identification buffer is
// "user:password"; any non-empty user with password "sesame" is accepted,
// and the user name is the principal.
type AuthCounterApp struct {
	CounterApp
}

var _ core.Authorizer = (*AuthCounterApp)(nil)

// Authorize implements core.Authorizer.
func (a *AuthCounterApp) Authorize(appAuth []byte) (string, bool) {
	s := string(appAuth)
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			user, pass := s[:i], s[i+1:]
			return user, user != "" && pass == "sesame"
		}
	}
	return "", false
}

// NewAuthCounterFactory builds an AuthCounterApp per replica.
func NewAuthCounterFactory() AppFactory {
	return func(uint32) core.Application { return &AuthCounterApp{} }
}
