package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/transport"
)

// SwarmOptions sizes the massive-connection ingress experiment: a client
// population well past the session-table cap, churning hard enough that
// the replicas evict, readmit, and deduplicate continuously.
type SwarmOptions struct {
	// Clients is the mem-transport churn population (phase A).
	Clients int
	// MaxSessions is Options.MaxClientSessions: sized below Clients so
	// the session table runs at its cap and every late hello evicts.
	MaxSessions int
	// ChurnEvery closes and recreates a client after this many completed
	// operations (fresh ephemeral keys, fresh hello; 0 disables churn).
	ChurnEvery int
	// Depth is the pipeline depth per client.
	Depth int
	// RampEvery staggers client start-up: one batch of rampBatch clients
	// per interval, so the initial hello storm does not overwhelm the
	// shared CPU before steady state (0 = no ramp).
	RampEvery time.Duration
	// HelloInterval overrides the blind hello retransmission cadence
	// (0 = the swarm default of 15s; the smoke tests shorten it so
	// eviction recovery happens within their budget).
	HelloInterval time.Duration
	// UDPClients is the loopback-UDP population (phase B, the syscall
	// batching measurement; 0 skips the phase).
	UDPClients int
}

// DefaultSwarmOptions is the committed BENCH_PR6 shape: 6000 clients over
// a 5500-session cap (the acceptance floor is sustaining 5000).
func DefaultSwarmOptions() SwarmOptions {
	return SwarmOptions{
		Clients:     6000,
		MaxSessions: 5500,
		ChurnEvery:  128,
		Depth:       1,
		RampEvery:   25 * time.Millisecond,
		UDPClients:  64,
	}
}

// rampBatch is how many clients one ramp interval starts.
const rampBatch = 100

// swarmCoreOptions maps the swarm shape onto library options. The hello
// retransmission interval is stretched well past the default 500ms:
// hellos are signed and blindly retransmitted (§2.3), and thousands of
// clients re-signing twice a second would measure ed25519 throughput, not
// ingress capacity. Request timeouts stretch accordingly — an evicted
// client's requests fail MAC verification until its next hello readmits
// it, so recovery latency is bounded by HelloInterval, not RequestTimeout.
func swarmCoreOptions(sw SwarmOptions, n int) core.Options {
	co := buildOptions(LibConfig{Name: "swarm", Static: true, MACs: true, Batch: true})
	co.MaxNodes = n + sw.Clients + 64
	co.MaxClientSessions = sw.MaxSessions
	co.HelloInterval = 15 * time.Second
	if sw.HelloInterval > 0 {
		co.HelloInterval = sw.HelloInterval
	}
	co.RequestTimeout = 3 * time.Second
	return co
}

// swarmSample is one periodic probe of replica 0's session table.
type swarmSample struct {
	sessions  int
	evictions uint64
}

// RunSwarm runs the massive-connection experiment: phase A floods an
// in-process cluster with a churning client swarm past the session cap,
// phase B re-measures a small cluster over real loopback UDP sockets to
// observe the syscall batching the in-memory transport cannot.
func RunSwarm(opts ExperimentOptions, sw SwarmOptions) error {
	w := opts.out()
	if sw.Clients > 0 {
		if err := runSwarmChurn(opts, sw, w); err != nil {
			return fmt.Errorf("swarm churn: %w", err)
		}
	}
	if sw.UDPClients > 0 {
		if err := runSwarmUDP(opts, sw, w); err != nil {
			return fmt.Errorf("swarm udp: %w", err)
		}
	}
	return nil
}

// runSwarmChurn is phase A: Clients churning pipelined clients against a
// MaxSessions-capped cluster, measuring sustained sessions, eviction
// throughput, latency quantiles, and the allocation rate of the pooled
// decode path under session churn.
func runSwarmChurn(opts ExperimentOptions, sw SwarmOptions, w io.Writer) error {
	depth := sw.Depth
	if depth < 1 {
		depth = 1
	}
	co := swarmCoreOptions(sw, 4)
	cluster, err := NewCluster(ClusterOptions{
		Opts:       co,
		NumClients: sw.Clients,
		Seed:       opts.Seed,
		App:        NewEchoFactory(opts.RequestSize),
		Tracer:     opts.tracerFactory(),
		// Thousands of endpoints: the default full-size inbound queue per
		// endpoint would eagerly allocate gigabytes of channel buffers.
		// Each client sees at most 4 replies per in-flight request plus
		// stray retransmissions.
		ClientRecvBuffer: 64 + 4*depth,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	fmt.Fprintf(w, "Swarm — %d churning clients, session cap %d, depth %d, churn every %d ops\n",
		sw.Clients, co.MaxClientSessions, depth, sw.ChurnEvery)

	var (
		ops      atomic.Uint64
		errs     atomic.Uint64
		latMu    sync.Mutex
		lats     []time.Duration
		memStart runtime.MemStats
		memEnd   runtime.MemStats
	)
	workload := &NullWorkload{Size: opts.RequestSize}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	runtime.GC()
	runtime.ReadMemStats(&memStart)
	start := time.Now()

	// Session sampler: peak sustained sessions and the eviction counter,
	// probed through the protocol loop.
	var peakSessions atomic.Int64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s := swarmProbe(cluster)
				if int64(s.sessions) > peakSessions.Load() {
					peakSessions.Store(int64(s.sessions))
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sw.Clients; i++ {
		if sw.RampEvery > 0 && i > 0 && i%rampBatch == 0 {
			select {
			case <-time.After(sw.RampEvery):
			case <-ctx.Done():
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			swarmClientLoop(ctx, cluster, i, depth, sw.ChurnEvery, workload, &ops, &errs, func(d time.Duration) {
				latMu.Lock()
				lats = append(lats, d)
				latMu.Unlock()
			})
		}(i)
	}

	select {
	case <-time.After(opts.Duration):
	case <-ctx.Done():
	}
	cancel()
	wg.Wait()
	<-samplerDone
	elapsed := time.Since(start)
	runtime.ReadMemStats(&memEnd)

	final := swarmProbe(cluster)
	res := RunResult{Ops: ops.Load(), Duration: elapsed, Errors: errs.Load()}
	allocsPerOp := 0.0
	if res.Ops > 0 {
		allocsPerOp = float64(memEnd.Mallocs-memStart.Mallocs) / float64(res.Ops)
	}
	p50, p99 := latencyQuantiles(lats)
	heapMB := float64(memEnd.HeapAlloc) / (1 << 20)

	extra := map[string]float64{
		"sessions_peak":  float64(peakSessions.Load()),
		"sessions_final": float64(final.sessions),
		"evictions":      float64(final.evictions),
		"p50_ms":         p50.Seconds() * 1e3,
		"p99_ms":         p99.Seconds() * 1e3,
		"allocs_per_op":  allocsPerOp,
		"heap_mb":        heapMB,
	}
	opts.record("swarm", fmt.Sprintf("mem_churn_%dc", sw.Clients), res, extra)
	fmt.Fprintf(w, "%-24s %8s %10s %8s %10s %10s %10s %10s %10s %9s\n",
		"Name", "TPS", "ops", "errors", "sess-peak", "sess-end", "evicted", "p50-ms", "p99-ms", "allocs/op")
	fmt.Fprintf(w, "%-24s %8.0f %10d %8d %10d %10d %10d %10.1f %10.1f %9.1f\n",
		fmt.Sprintf("mem_churn_%dc", sw.Clients), res.TPS(), res.Ops, res.Errors,
		peakSessions.Load(), final.sessions, final.evictions,
		p50.Seconds()*1e3, p99.Seconds()*1e3, allocsPerOp)
	fmt.Fprintf(w, "heap after run: %.0f MB (whole process: swarm clients + 4 replicas)\n", heapMB)
	return nil
}

// swarmClientLoop drives one client identity: invoke through a pipelined
// client, and every churnEvery completed operations tear the client down
// and recreate it — fresh ephemeral session keys, fresh hello, a dedup
// window that must survive the transition.
func swarmClientLoop(ctx context.Context, cluster *Cluster, i, depth, churnEvery int, w Workload,
	ops, errs *atomic.Uint64, observe func(time.Duration)) {
	for ctx.Err() == nil {
		cl, err := cluster.Client(i,
			client.WithPipelineDepth(depth),
			// Calls must survive eviction stalls (up to HelloInterval)
			// without burning their retry budget.
			client.WithMaxRetries(1000))
		if err != nil {
			// Address still draining from the previous incarnation.
			select {
			case <-time.After(10 * time.Millisecond):
			case <-ctx.Done():
			}
			continue
		}
		var wg sync.WaitGroup
		var epochOps atomic.Int64
		for d := 0; d < depth; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					if churnEvery > 0 && epochOps.Load() >= int64(churnEvery) {
						return
					}
					t0 := time.Now()
					_, err := cl.Invoke(ctx, w.Op(i, int(ops.Load())))
					if err != nil {
						if ctx.Err() == nil {
							errs.Add(1)
						}
						continue
					}
					observe(time.Since(t0))
					ops.Add(1)
					epochOps.Add(1)
				}
			}()
		}
		wg.Wait()
		_ = cl.Close()
		if churnEvery <= 0 {
			return
		}
	}
}

// swarmProbe reads the live session count and eviction counter off the
// cluster (sessions from replica 0; evictions summed across replicas).
func swarmProbe(c *Cluster) swarmSample {
	var s swarmSample
	for i, r := range c.Replicas {
		if r == nil {
			continue
		}
		info := r.Info()
		if i == 0 {
			s.sessions = info.ClientSessions
		}
		s.evictions += info.Stats.SessionsEvicted
	}
	return s
}

// latencyQuantiles returns the p50 and p99 of the collected samples.
func latencyQuantiles(lats []time.Duration) (p50, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(f float64) time.Duration {
		i := int(f * float64(len(lats)-1))
		return lats[i]
	}
	return q(0.50), q(0.99)
}

// runSwarmUDP is phase B: the same protocol over real loopback UDP
// sockets, where recvmmsg/sendmmsg batching is observable. It reports
// syscalls per operation and the datagrams-per-syscall occupancy that the
// in-memory transport has no notion of.
func runSwarmUDP(opts ExperimentOptions, sw SwarmOptions, w io.Writer) error {
	const n = 4
	depth := sw.Depth
	if depth < 1 {
		depth = 1
	}
	co := buildOptions(LibConfig{Name: "swarm-udp", Static: true, MACs: true, Batch: true})
	co.MaxNodes = n + sw.UDPClients + 16

	// Sockets first: real ports are only known after binding, and the
	// config must carry the bound addresses.
	replicaConns := make([]*transport.UDPConn, n)
	clientConns := make([]*transport.UDPConn, sw.UDPClients)
	closeAll := func() {
		for _, c := range replicaConns {
			if c != nil {
				_ = c.Close()
			}
		}
		for _, c := range clientConns {
			if c != nil {
				_ = c.Close()
			}
		}
	}
	defer closeAll()
	cfg := &core.Config{Opts: co}
	replicaKeys := make([]*crypto.KeyPair, n)
	for i := 0; i < n; i++ {
		conn, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			return err
		}
		replicaConns[i] = conn
		if opts.AddTransport != nil {
			// BatchStats reads are plain atomic loads and stay valid
			// after Close, so registering the endpoint with an outer
			// metrics registry (pbft-bench -metrics) is safe even though
			// the sockets die with this phase.
			opts.AddTransport(uint32(i), conn.BatchStats)
		}
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		replicaKeys[i] = kp
		cfg.Replicas = append(cfg.Replicas, core.NodeInfo{ID: uint32(i), Addr: conn.Addr(), PubKey: kp.Public()})
	}
	clientKeys := make([]*crypto.KeyPair, sw.UDPClients)
	for i := range clientConns {
		conn, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			return err
		}
		clientConns[i] = conn
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		clientKeys[i] = kp
		cfg.Clients = append(cfg.Clients, core.NodeInfo{ID: uint32(n + i), Addr: conn.Addr(), PubKey: kp.Public()})
	}

	replicas := make([]*core.Replica, n)
	for i := 0; i < n; i++ {
		rep, err := core.NewReplica(cfg, uint32(i), replicaKeys[i], replicaConns[i], NewEchoFactory(opts.RequestSize)(uint32(i)))
		if err != nil {
			return err
		}
		replicas[i] = rep
		go func() { _ = rep.Run(context.Background()) }()
	}
	defer func() {
		for _, rep := range replicas {
			_ = rep.Shutdown(context.Background())
		}
	}()

	workload := &NullWorkload{Size: opts.RequestSize}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ops, errs atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := range clientConns {
		cl, err := client.New(cfg, uint32(n+i), clientKeys[i], clientConns[i],
			client.WithPipelineDepth(depth), client.WithMaxRetries(1000))
		if err != nil {
			return err
		}
		clientConns[i] = nil // the client owns (and closes) the conn now
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			defer cl.Close()
			for ctx.Err() == nil {
				if _, err := cl.Invoke(ctx, workload.Op(i, int(ops.Load()))); err != nil {
					if ctx.Err() == nil {
						errs.Add(1)
					}
					continue
				}
				ops.Add(1)
			}
		}(i, cl)
	}
	<-time.After(opts.Duration)
	cancel()
	wg.Wait()
	elapsed := time.Since(start)

	var agg transport.BatchStats
	for _, c := range replicaConns {
		s := c.BatchStats()
		agg.RecvCalls += s.RecvCalls
		agg.RecvMsgs += s.RecvMsgs
		agg.SendCalls += s.SendCalls
		agg.SendMsgs += s.SendMsgs
		for i := range agg.RecvOccupancy {
			agg.RecvOccupancy[i] += s.RecvOccupancy[i]
			agg.SendOccupancy[i] += s.SendOccupancy[i]
		}
	}
	res := RunResult{Ops: ops.Load(), Duration: elapsed, Errors: errs.Load()}
	sysPerOp := 0.0
	if res.Ops > 0 {
		sysPerOp = float64(agg.Syscalls()) / float64(res.Ops)
	}
	extra := map[string]float64{
		"syscalls_per_op":      sysPerOp,
		"recv_batch_occupancy": agg.RecvPerCall(),
		"send_batch_occupancy": agg.SendPerCall(),
	}
	opts.record("swarm", fmt.Sprintf("udp_loopback_%dc", sw.UDPClients), res, extra)
	fmt.Fprintf(w, "\nSwarm UDP — %d pipelined clients over loopback sockets (replica-side syscall counters)\n", sw.UDPClients)
	fmt.Fprintf(w, "%-24s %8s %10s %8s %13s %10s %10s\n",
		"Name", "TPS", "ops", "errors", "syscalls/op", "recv-occ", "send-occ")
	fmt.Fprintf(w, "%-24s %8.0f %10d %8d %13.2f %10.2f %10.2f\n",
		fmt.Sprintf("udp_loopback_%dc", sw.UDPClients), res.TPS(), res.Ops, res.Errors,
		sysPerOp, agg.RecvPerCall(), agg.SendPerCall())
	return nil
}
