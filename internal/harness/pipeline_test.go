package harness

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/transport"
)

// TestPipelineConcurrentInvokes is the acceptance test for the concurrent
// client API: one client, many goroutines, a pipeline window deeper than
// one — every operation must succeed exactly once across the replicas.
func TestPipelineConcurrentInvokes(t *testing.T) {
	const depth, workers, perWorker = 8, 16, 6
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 1,
		Seed:       51,
		App:        NewCounterFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0, client.WithPipelineDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	var failures atomic.Uint64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < perWorker; n++ {
				if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
					t.Errorf("worker %d op %d: %v", g, n, err)
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() > 0 {
		return
	}
	// Exactly-once: the replicated counter equals the submitted
	// increments — a lost op would read low, a duplicate execution high.
	const want = workers * perWorker
	resp, err := cl.Invoke(context.Background(), []byte("get"))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(resp); got != want {
		t.Fatalf("counter = %d, want %d (duplicate or lost execution)", got, want)
	}
}

// TestPipelineDedupUnderDuplication floods the network with duplicated
// datagrams while a pipelined client runs: the replica-side sliding
// window must keep executions exact despite every request potentially
// arriving (and being relayed) twice.
func TestPipelineDedupUnderDuplication(t *testing.T) {
	const depth, total = 4, 24
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 1,
		Seed:       52,
		App:        NewEchoFactory(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Net.SetDefaultFaults(transport.Faults{DuplicateRate: 0.5})
	cl, err := c.Client(0, client.WithPipelineDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	calls := make([]*client.Call, 0, total)
	for i := 0; i < total; i++ {
		calls = append(calls, cl.Submit(context.Background(), []byte(fmt.Sprintf("dup-%d", i))))
	}
	for i, call := range calls {
		if _, err := call.Result(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for id, r := range c.Replicas {
			got := r.Info().Stats.Executed
			if got > total {
				t.Fatalf("replica %d executed %d > %d submitted under duplication", id, got, total)
			}
			if got != total {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge on the exact execution count")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipelineCancelMidQuorum cuts the client off from all but one
// replica so a quorum can never assemble, then cancels: the call must
// complete promptly with the context error while other calls on the same
// client are unaffected afterwards.
func TestPipelineCancelMidQuorum(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 1,
		Seed:       53,
		App:        NewEchoFactory(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0, client.WithMaxRetries(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Warm up through the healthy network.
	if _, err := cl.Invoke(context.Background(), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	// Sever replies from 3 of 4 replicas: at most one (tentative-free)
	// reply can arrive, below every quorum.
	for id := uint32(1); id <= 3; id++ {
		c.Net.SetLinkFaults(ReplicaAddr(id), ClientAddr(0), transport.Faults{Partitioned: true})
	}
	ctx, cancel := context.WithCancel(context.Background())
	call := cl.Submit(ctx, []byte("stuck"))
	time.Sleep(50 * time.Millisecond) // let partial replies trickle in
	start := time.Now()
	cancel()
	select {
	case <-call.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled call did not complete")
	}
	if _, err := call.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("cancellation took %s", waited)
	}
	// Heal the network; the client keeps working.
	for id := uint32(1); id <= 3; id++ {
		c.Net.SetLinkFaults(ReplicaAddr(id), ClientAddr(0), transport.Faults{})
	}
	if _, err := cl.Invoke(context.Background(), []byte("healed")); err != nil {
		t.Fatalf("invoke after cancellation: %v", err)
	}
}

// TestPipelineDepthSaturation verifies a single client actually sustains
// its full window: with depth n, n submissions proceed without any
// completing first, and all n complete.
func TestPipelineDepthSaturation(t *testing.T) {
	const depth = 8
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 1,
		Seed:       54,
		App:        NewEchoFactory(16),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0, client.WithPipelineDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Hold replies back so the window genuinely fills.
	for id := uint32(0); id <= 3; id++ {
		c.Net.SetLinkFaults(ReplicaAddr(id), ClientAddr(0), transport.Faults{Delay: 100 * time.Millisecond})
	}
	calls := make([]*client.Call, 0, depth)
	start := time.Now()
	for i := 0; i < depth; i++ {
		calls = append(calls, cl.Submit(context.Background(), []byte(fmt.Sprintf("sat-%d", i))))
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Fatalf("submitting %d calls blocked for %s: window not sustained", depth, elapsed)
	}
	for i, call := range calls {
		if _, err := call.Result(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}
