package harness

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/sqlstate"
)

// execWorkloadOps builds the randomized determinism workload: for each
// client a deterministic (seeded) sequence mixing
//
//   - non-conflicting keyed ops: counters owned by that client alone,
//     replying with the client-deterministic running count,
//   - conflicting keyed ops: a small set of shared hot counters bumped by
//     everyone ("bump" answers a fixed "OK", so the reply does not leak
//     the cross-client interleaving),
//   - unkeyed barrier ops: the legacy slot-0 counter via "bump" (OK).
//
// Every reply is therefore a pure function of (client, iteration): the
// streams must match exactly between any two runs of the workload,
// whatever the shard count.
func execWorkloadOps(clients, perClient int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	ops := make([][]string, clients)
	// The "own" counters' replies are running counts, which are only
	// comparable across runs if no two distinct names collide onto one
	// slot (colliding ops would serialize in cross-run-dependent commit
	// order). Guard it, so a rename surfaces here instead of as a flaky
	// determinism failure.
	slots := make(map[uint64]string)
	guard := func(name string) {
		s := counterSlot([]byte(name))
		if prev, ok := slots[s]; ok {
			panic(fmt.Sprintf("workload names %q and %q collide on slot %d — pick different names", prev, name, s))
		}
		slots[s] = name
	}
	for i := 0; i < clients; i++ {
		for k := 0; k < 3; k++ {
			guard(fmt.Sprintf("own-%d-%d", i, k))
		}
	}
	for k := 0; k < 4; k++ {
		guard(fmt.Sprintf("shared-%d", k)) // a collision with an own key would couple their counts
	}
	for i := range ops {
		for n := 0; n < perClient; n++ {
			switch d := rng.Intn(10); {
			case d < 5: // own-key increment: reply = that key's running count
				ops[i] = append(ops[i], fmt.Sprintf("inc own-%d-%d", i, rng.Intn(3)))
			case d < 8: // shared hot key: conflicts across clients
				ops[i] = append(ops[i], fmt.Sprintf("bump shared-%d", rng.Intn(4)))
			case d < 9: // own-key read
				ops[i] = append(ops[i], fmt.Sprintf("get own-%d-%d", i, rng.Intn(3)))
			default: // unkeyed: an execution barrier
				ops[i] = append(ops[i], "bump")
			}
		}
	}
	return ops
}

// execDeterminismRun drives the workload on a fresh cluster at the given
// shard count and returns the per-client reply streams plus, per replica,
// the stable checkpoint digest reached at quiescence.
func execDeterminismRun(t *testing.T, shards int) (streams [][]string, lastStable uint64, digests [][32]byte) {
	t.Helper()
	const numClients, perClient = 4, 40
	o := fastOpts()
	o.ExecShards = shards
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: numClients,
		Seed:       7,
		App:        NewCounterFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ops := execWorkloadOps(numClients, perClient, 1234)
	streams = make([][]string, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		cl, err := c.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, op := range ops[i] {
				resp, err := cl.Invoke(context.Background(), []byte(op))
				if err != nil {
					t.Errorf("client %d: %q: %v", i, op, err)
					return
				}
				streams[i] = append(streams[i], string(resp))
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesce: wait until every replica reports the same stable
	// checkpoint, then compare the agreed digests.
	deadline := time.Now().Add(10 * time.Second)
	for {
		infos := make([]core.Info, len(c.Replicas))
		for i, r := range c.Replicas {
			infos[i] = r.Info()
		}
		stable := infos[0].LastStable
		same := stable > 0
		for _, info := range infos[1:] {
			if info.LastStable != stable {
				same = false
			}
		}
		if same {
			digests = make([][32]byte, len(infos))
			for i, info := range infos {
				digests[i] = info.StableDigest
			}
			return streams, stable, digests
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged on a stable checkpoint: %+v", infos)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExecDeterminism is the cross-replica determinism suite: the same
// randomized conflicting/non-conflicting keyed workload at ExecShards 1
// and 4 must produce identical per-client reply streams, and within each
// run every replica must agree on the stable checkpoint digest. Run under
// -race in CI, this also shakes out scheduling races in the engine and
// the applications' concurrent Execute paths.
func TestExecDeterminism(t *testing.T) {
	type result struct {
		streams [][]string
		stable  uint64
		digests [][32]byte
	}
	results := make(map[int]result)
	for _, shards := range []int{1, 4} {
		streams, stable, digests := execDeterminismRun(t, shards)
		for i, d := range digests[1:] {
			if d != digests[0] {
				t.Fatalf("shards=%d: replica %d stable digest diverged at seq %d", shards, i+1, stable)
			}
		}
		results[shards] = result{streams, stable, digests}
	}
	serial, sharded := results[1], results[4]
	for i := range serial.streams {
		if len(serial.streams[i]) != len(sharded.streams[i]) {
			t.Fatalf("client %d: %d replies serial vs %d sharded",
				i, len(serial.streams[i]), len(sharded.streams[i]))
		}
		for n := range serial.streams[i] {
			if serial.streams[i][n] != sharded.streams[i][n] {
				t.Fatalf("client %d op %d: reply %q (serial) != %q (4 shards)",
					i, n, serial.streams[i][n], sharded.streams[i][n])
			}
		}
	}
}

// TestExecShardedState: after a sharded run, the replicas' raw region
// content matches the serial run byte for byte (client timestamps never
// enter the region, so the regions — unlike the checkpoint metadata — are
// comparable across runs).
func TestExecShardedState(t *testing.T) {
	regionPrefix := func(shards int) []byte {
		o := fastOpts()
		o.ExecShards = shards
		c, err := NewCluster(ClusterOptions{
			Opts:       o,
			NumClients: 2,
			Seed:       11,
			App:        NewCounterFactory(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		ops := execWorkloadOps(2, 30, 99)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			cl, err := c.Client(i)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for _, op := range ops[i] {
					if _, err := cl.Invoke(context.Background(), []byte(op)); err != nil {
						t.Errorf("client %d: %v", i, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		var maxExec uint64
		for _, r := range c.Replicas {
			if info := r.Info(); info.LastExec > maxExec {
				maxExec = info.LastExec
			}
		}
		if !c.WaitConverged(maxExec, 10*time.Second) {
			t.Fatal("replicas did not converge")
		}
		// All counter slots live in the first 8 KiB of the region.
		prefix := make([]byte, counterSlots*8)
		app := c.Apps[0].(*CounterApp)
		if _, err := app.region.ReadAt(prefix, 0); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(c.Apps); i++ {
			other := make([]byte, counterSlots*8)
			if _, err := c.Apps[i].(*CounterApp).region.ReadAt(other, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(prefix, other) {
				t.Fatalf("shards=%d: replica %d region diverged from replica 0", shards, i)
			}
		}
		return prefix
	}
	serial := regionPrefix(1)
	sharded := regionPrefix(4)
	if !bytes.Equal(serial, sharded) {
		t.Fatal("sharded execution left different region content than serial execution")
	}
}

// TestExecReadOnlySharded: keyed read-only operations dispatch through
// the engine (off the protocol loop) and still assemble quorums.
func TestExecReadOnlySharded(t *testing.T) {
	o := fastOpts()
	o.ExecShards = 4
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       13,
		App:        NewCounterFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 5; i++ {
		invokeMust(t, cl, "inc ro-key")
	}
	resp, err := cl.InvokeReadOnly(context.Background(), []byte("get ro-key"))
	if err != nil {
		t.Fatalf("read-only get: %v", err)
	}
	if got := string(invokeMust(t, cl, "get ro-key")); got != string(resp) {
		t.Fatalf("read-only path answered %x, ordered path %x", resp, got)
	}
	info := c.Replicas[0].Info()
	if info.Stats.ReadOnlyExec == 0 {
		t.Fatal("read-only op never took the read-only path")
	}
	if info.Stats.ExecSharded == 0 {
		t.Fatal("keyed ops never took the sharded path")
	}
}

// TestExecSQLSharded: the replicated SQL application under the sharded
// engine — INSERTs are barriers, single-table SELECTs run concurrently
// over private pagers — must answer queries correctly and keep replicas
// digest-identical.
func TestExecSQLSharded(t *testing.T) {
	o := fastOpts()
	o.ExecShards = 4
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 2,
		Seed:       21,
		App:        NewSQLFactory(true, t.TempDir()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cl, err := c.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			for n := 0; n < 10; n++ {
				resp, err := cl.Invoke(context.Background(), sqlstate.EncodeExec(
					"INSERT INTO votes (voter, vote, ts, rnd) VALUES (?, ?, now(), random())",
					sqldb.Text(fmt.Sprintf("voter-%d-%d", i, n)), sqldb.Text("yes")))
				if err != nil {
					t.Errorf("client %d insert %d: %v", i, n, err)
					return
				}
				if _, err := sqlstate.DecodeResponse(resp); err != nil {
					t.Errorf("client %d insert %d: %v", i, n, err)
					return
				}
				// Interleave sharded reads (ordered and read-only path).
				q := sqlstate.EncodeQuery("SELECT count(*) FROM votes WHERE voter = ?",
					sqldb.Text(fmt.Sprintf("voter-%d-%d", i, n)))
				resp, err = cl.Invoke(context.Background(), q)
				if err != nil {
					t.Errorf("client %d query %d: %v", i, n, err)
					return
				}
				r, err := sqlstate.DecodeResponse(resp)
				if err != nil {
					t.Errorf("client %d query %d: %v", i, n, err)
					return
				}
				if got := r.Rows.Data[0][0].I; got != 1 {
					t.Errorf("client %d query %d: count = %d, want 1", i, n, got)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	cl, err := c.Client(0)
	if err == nil {
		defer cl.Close()
	}
	var maxExec uint64
	for _, r := range c.Replicas {
		if info := r.Info(); info.LastExec > maxExec {
			maxExec = info.LastExec
		}
	}
	if !c.WaitConverged(maxExec, 10*time.Second) {
		t.Fatal("replicas did not converge")
	}
	info := c.Replicas[0].Info()
	if info.Stats.ExecSharded == 0 {
		t.Fatal("no SELECT took the sharded path")
	}
}
