package harness

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/pbft/metrics"
)

// recorderCluster builds a cluster with one flight recorder per replica
// (kept by id for assertions) using the given per-recorder config.
func recorderCluster(t *testing.T, seed int64, cfg trace.Config, tweak ...func(*core.Options)) (*Cluster, map[uint32]*trace.Recorder, *sync.Mutex) {
	t.Helper()
	recs := make(map[uint32]*trace.Recorder)
	var mu sync.Mutex
	o := fastOpts()
	o.ViewChangeTimeout = 600 * time.Millisecond
	for _, f := range tweak {
		f(&o)
	}
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       seed,
		App:        NewCounterFactory(),
		Recorder: func(id uint32) *trace.Recorder {
			rc := cfg
			rc.Replica = int(id)
			rec := trace.New(rc)
			mu.Lock()
			recs[id] = rec // a restart replaces the entry: fresh incarnation, fresh recorder
			mu.Unlock()
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, recs, &mu
}

// TestFlightDebugEndpointFullTimeline is the acceptance path: requests
// flow through a real cluster, the primary's recorder is registered with
// a metrics registry, and /debug/flight returns the full per-phase
// timeline of a completed request.
func TestFlightDebugEndpointFullTimeline(t *testing.T) {
	// Commit-then-execute ordering: with tentative execution the reply
	// (which finalizes the timeline) legitimately precedes the commit
	// quorum, so the full-lifecycle assertion runs without it.
	c, recs, mu := recorderCluster(t, 95, trace.Config{}, func(o *core.Options) {
		o.TentativeExecution = false
	})
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		invokeMust(t, cl, "inc")
	}

	m := metrics.New()
	mu.Lock()
	primary := recs[0]
	mu.Unlock()
	m.AddFlight(0, primary.Dump)
	srv := httptest.NewServer(metrics.Mux(m, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("GET /debug/flight: status=%d err=%v", resp.StatusCode, err)
	}
	var dumps []trace.Dump
	if err := json.Unmarshal(body, &dumps); err != nil {
		t.Fatalf("/debug/flight not JSON: %v\n%s", err, body)
	}
	if len(dumps) != 1 || dumps[0].Replica != 0 {
		t.Fatalf("want one dump for replica 0, got %+v", dumps)
	}
	clientID := uint32(len(c.Cfg.Replicas)) // pre-provisioned client 0
	var tl *trace.TimelineDump
	for i := range dumps[0].Completed {
		if dumps[0].Completed[i].Client == clientID {
			tl = &dumps[0].Completed[i]
		}
	}
	if tl == nil {
		t.Fatalf("no completed timeline for client %d in %+v", clientID, dumps[0])
	}
	// The primary observes the entire replica-side lifecycle: every
	// phase from ingress arrival to the reply leaving must be stamped,
	// at non-decreasing offsets.
	want := []string{
		"ingress_arrive", "verify_done", "loop_dispatch",
		"batch_enqueue", "preprepare_sent", "prepare_quorum", "commit_quorum",
		"exec_schedule", "exec_done", "reply_sealed", "reply_sent",
	}
	got := make(map[string]int64, len(tl.Phases))
	var prev int64
	for _, pm := range tl.Phases {
		got[pm.Phase] = pm.AtNs
		if pm.AtNs < prev {
			t.Fatalf("phase %s at %d precedes previous mark %d (timeline %+v)", pm.Phase, pm.AtNs, prev, tl)
		}
		prev = pm.AtNs
	}
	for _, name := range want {
		if _, ok := got[name]; !ok {
			t.Fatalf("timeline missing phase %q: %+v", name, tl.Phases)
		}
	}
	if tl.EndToEnd <= 0 {
		t.Fatalf("end-to-end = %d, want > 0", tl.EndToEnd)
	}
	if len(tl.Segments) < len(want)-1 {
		t.Fatalf("segments = %d, want at least %d", len(tl.Segments), len(want)-1)
	}
}

// TestFlightRecorderSpansViewChange crashes the primary under load and
// asserts the new primary's flight recorder captured the failover: a
// timeline committed in view 0, the view-change events, and a timeline
// committed in view 1 — with the install event between them in time.
func TestFlightRecorderSpansViewChange(t *testing.T) {
	c, recs, mu := recorderCluster(t, 96, trace.Config{})
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	invokeMust(t, cl, "inc") // commits in view 0
	c.StopReplica(0)         // primary of view 0
	for i := 0; i < 3; i++ {
		invokeMust(t, cl, "inc") // timeouts drive the view change; commits in view 1
	}

	mu.Lock()
	rec := recs[1] // primary of view 1
	mu.Unlock()
	d := rec.Dump()

	var installAt int64 = -1
	sawStart := false
	for _, e := range d.Events {
		switch e.Kind {
		case "view_change_start":
			sawStart = true
		case "view_change_install":
			if e.View == 1 {
				installAt = e.AtNs
			}
		}
	}
	if !sawStart || installAt < 0 {
		t.Fatalf("events missing view-change start/install of view 1: %+v", d.Events)
	}

	var lastV0, firstV1 int64 = -1, -1
	for _, tl := range d.Completed {
		last := int64(0)
		for _, pm := range tl.Phases {
			if pm.AtNs > last {
				last = pm.AtNs
			}
		}
		if tl.View == 0 && last > lastV0 {
			lastV0 = last
		}
		if tl.View == 1 && (firstV1 < 0 || last < firstV1) {
			firstV1 = last
		}
	}
	if lastV0 < 0 || firstV1 < 0 {
		t.Fatalf("ring must span the failover with view-0 and view-1 timelines: %+v", d.Completed)
	}
	if !(lastV0 < installAt && installAt < firstV1) {
		t.Fatalf("install at %d must fall between the view-0 timeline (%d) and the view-1 timeline (%d)",
			installAt, lastV0, firstV1)
	}
}

// TestFlightRingWrapUnderChurn drives more requests than a small ring
// holds and asserts the ring kept the newest timelines while the
// completed total kept counting.
func TestFlightRingWrapUnderChurn(t *testing.T) {
	const ring = 8
	c, recs, mu := recorderCluster(t, 97, trace.Config{Ring: ring})
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const total = 40
	for i := 0; i < total; i++ {
		invokeMust(t, cl, "inc")
	}

	mu.Lock()
	rec := recs[1] // a backup sees every request exactly once
	mu.Unlock()
	// The client returns on the first f+1 replies; the backup's own
	// reply (which finalizes its timeline) may still be in flight.
	deadline := time.Now().Add(5 * time.Second)
	d := rec.Dump()
	for d.CompletedTotal < total {
		if time.Now().After(deadline) {
			t.Fatalf("completed total = %d, want >= %d", d.CompletedTotal, total)
		}
		time.Sleep(5 * time.Millisecond)
		d = rec.Dump()
	}
	if len(d.Completed) != ring {
		t.Fatalf("ring holds %d timelines, want exactly %d after wrap", len(d.Completed), ring)
	}
	var maxTS uint64
	for _, tl := range d.Completed {
		if tl.Timestamp > maxTS {
			maxTS = tl.Timestamp
		}
	}
	// The newest completed request must still be in the ring (wrap
	// evicts oldest-first). Timestamps are the client's sequential
	// counter, so the last request carries the largest one.
	if _, ok := rec.Lookup(uint32(len(c.Cfg.Replicas)), maxTS); !ok {
		t.Fatalf("newest timeline (ts=%d) missing from the ring", maxTS)
	}
}
