package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// chaosTracer timestamps recovery-relevant tracer events (view installs,
// state-transfer finishes) and forwards everything to an optional outer
// tracer. One shared instance serves every replica; hooks are
// concurrency-safe.
type chaosTracer struct {
	fwd core.Tracer // may be nil

	mu       sync.Mutex
	installs []chaosInstall
}

type chaosInstall struct {
	replica uint32
	view    uint64
	at      time.Time
}

func (c *chaosTracer) OnViewChange(e core.ViewChangeEvent) {
	if e.Phase == core.ViewChangeInstall {
		c.mu.Lock()
		c.installs = append(c.installs, chaosInstall{replica: e.Replica, view: e.View, at: time.Now()})
		c.mu.Unlock()
	}
	if c.fwd != nil {
		c.fwd.OnViewChange(e)
	}
}

// installOf returns the newest install of view v on replica id after
// cutoff.
func (c *chaosTracer) installOf(id uint32, v uint64, cutoff time.Time) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.installs) - 1; i >= 0; i-- {
		in := c.installs[i]
		if in.replica == id && in.view == v && in.at.After(cutoff) {
			return in.at, true
		}
	}
	return time.Time{}, false
}

func (c *chaosTracer) OnCheckpoint(e core.CheckpointEvent) {
	if c.fwd != nil {
		c.fwd.OnCheckpoint(e)
	}
}

func (c *chaosTracer) OnStateTransfer(e core.StateTransferEvent) {
	if c.fwd != nil {
		c.fwd.OnStateTransfer(e)
	}
}

func (c *chaosTracer) OnBatch(e core.BatchEvent) {
	if c.fwd != nil {
		c.fwd.OnBatch(e)
	}
}

func (c *chaosTracer) OnCommit(e core.CommitEvent) {
	if c.fwd != nil {
		c.fwd.OnCommit(e)
	}
}

func (c *chaosTracer) OnClientSession(e core.ClientSessionEvent) {
	if c.fwd != nil {
		c.fwd.OnClientSession(e)
	}
}

// RunChaos drives the adversary suite under load and measures recovery
// latencies: equivocation-inject → view install, corrupt-MAC storm →
// (asserted) zero protocol effect, partition → heal → convergence. Each
// phase emits one result row; the -json artifact turns them into the
// BENCH_PR7 recovery table. Every adversary schedule and the network
// fault RNG derive from opts.Seed.
func RunChaos(opts ExperimentOptions) error {
	w := opts.out()
	fmt.Fprintf(w, "Chaos suite — scripted Byzantine faults under load (%d clients, seed %d)\n",
		opts.NumClients, opts.Seed)
	fmt.Fprintf(w, "%-22s %8s %8s %8s %16s\n", "Phase", "TPS", "ops", "errors", "recovery")

	o := buildOptions(LibConfig{Static: true, MACs: true, AllBig: true, Batch: true})
	o.CheckpointInterval = 16
	o.ViewChangeTimeout = 800 * time.Millisecond
	o.RequestTimeout = 300 * time.Millisecond

	loadClients := opts.NumClients
	if loadClients < 1 {
		loadClients = 4
	}
	tracer := &chaosTracer{fwd: opts.Tracer}
	// Per-replica flight recorders feed one collector; each chaos phase
	// snapshots it so its result row carries per-phase attribution for
	// the recovery interval (where the lifecycle stalled while the
	// adversary was active).
	phases := &PhaseCollector{}
	cluster, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: loadClients,
		Seed:       opts.Seed,
		App:        NewCounterFactory(),
		Bandwidth:  938e6 / 8,
		Tracer:     func(uint32) core.Tracer { return tracer },
		Recorder:   phases.Factory(),
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Rebuild replica 0 as the scripted adversary: a disarmed gate in
	// front of an equivocator, with the conn handle kept for later
	// behavior swaps.
	ident, err := cluster.ReplicaIdentity(0)
	if err != nil {
		return err
	}
	gate := adversary.NewGate(adversary.NewEquivocator(ident))
	var advConn *adversary.Conn
	cluster.StopReplica(0)
	if err := cluster.StartAdversary(0, func(conn transport.Conn) transport.Conn {
		advConn = adversary.Wrap(conn, gate)
		return advConn
	}); err != nil {
		return err
	}

	phaseDur := opts.Duration
	if phaseDur < 3*time.Second {
		phaseDur = 3 * time.Second
	}

	// Phase 1 — equivocating primary. Arm mid-load and time the view
	// change on the slowest correct replica.
	type loadOut struct {
		res RunResult
		err error
	}
	done := make(chan loadOut, 1)
	phaseBase := phases.Snapshot()
	go func() {
		res, err := cluster.RunClosedLoop(loadClients, &NullWorkload{Size: 64}, phaseDur, false)
		done <- loadOut{res, err}
	}()
	time.Sleep(phaseDur / 4)
	armed := time.Now()
	gate.Arm()
	out := <-done
	if out.err != nil {
		return fmt.Errorf("chaos equivocate load: %w", out.err)
	}
	gate.Disarm()
	var recovery time.Duration
	for _, id := range []uint32{1, 2, 3} {
		var at time.Time
		installDeadline := time.Now().Add(10 * time.Second)
		for {
			var ok bool
			if at, ok = tracer.installOf(id, 1, armed); ok {
				break
			}
			if time.Now().After(installDeadline) {
				return fmt.Errorf("chaos: replica %d never installed view 1 after equivocation", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if d := at.Sub(armed); d > recovery {
			recovery = d
		}
	}
	phaseWin := phases.Snapshot()
	opts.record("chaos", "equivocate_primary", out.res, phaseWin.Sub(phaseBase).Attr(map[string]float64{
		"recovery_ms": float64(recovery.Milliseconds()),
	}))
	phaseBase = phaseWin
	fmt.Fprintf(w, "%-22s %8.0f %8d %8d %16s\n", "equivocate_primary", out.res.TPS(), out.res.Ops, out.res.Errors, recovery)

	// Phase 2 — corrupt MACs from a backup: all of replica 0's votes are
	// garbage-authenticated. The group must mask it with zero protocol
	// effect; the receivers' auth-failure counters are the evidence the
	// storm actually happened.
	baselineView := cluster.Replicas[1].Info().View
	var baseAuth uint64
	for _, id := range []uint32{1, 2, 3} {
		baseAuth += cluster.Replicas[id].Info().Stats.DroppedBadAuth
	}
	advConn.SetBehavior(adversary.NewCorruptor(opts.Seed, 1, wire.MTPrepare, wire.MTCommit, wire.MTCheckpoint))
	res, err := cluster.RunClosedLoop(loadClients, &NullWorkload{Size: 64}, phaseDur, false)
	if err != nil {
		return fmt.Errorf("chaos corrupt load: %w", err)
	}
	advConn.SetBehavior(nil)
	var nowAuth uint64
	for _, id := range []uint32{1, 2, 3} {
		nowAuth += cluster.Replicas[id].Info().Stats.DroppedBadAuth
	}
	if v := cluster.Replicas[1].Info().View; v != baselineView {
		return fmt.Errorf("chaos: corrupt MACs moved the view %d -> %d; must be masked", baselineView, v)
	}
	if nowAuth == baseAuth {
		return fmt.Errorf("chaos: corrupt-MAC phase produced no counted rejections")
	}
	phaseWin = phases.Snapshot()
	opts.record("chaos", "corrupt_macs", res, phaseWin.Sub(phaseBase).Attr(map[string]float64{
		"auth_failures": float64(nowAuth - baseAuth),
		"view_changes":  0,
	}))
	phaseBase = phaseWin
	fmt.Fprintf(w, "%-22s %8.0f %8d %8d %16s\n", "corrupt_macs", res.TPS(), res.Ops, res.Errors,
		fmt.Sprintf("%d rejected", nowAuth-baseAuth))

	// Phase 3 — asymmetric partition and heal: replica 3 goes deaf (its
	// outbound stays up), the group advances, then the partition heals
	// and we time replica 3's convergence back to the group's frontier.
	for _, peer := range []uint32{0, 1, 2} {
		cluster.Net.SetLinkFaults(ReplicaAddr(peer), ReplicaAddr(3), transport.Faults{Partitioned: true})
	}
	done = make(chan loadOut, 1)
	go func() {
		res, err := cluster.RunClosedLoop(loadClients, &NullWorkload{Size: 64}, phaseDur, false)
		done <- loadOut{res, err}
	}()
	time.Sleep(phaseDur / 2)
	var frontier uint64
	for _, id := range []uint32{0, 1, 2} {
		if e := cluster.Replicas[id].Info().LastExec; e > frontier {
			frontier = e
		}
	}
	healed := time.Now()
	for _, peer := range []uint32{0, 1, 2} {
		cluster.Net.ClearLinkFaults(ReplicaAddr(peer), ReplicaAddr(3))
	}
	out = <-done
	if out.err != nil {
		return fmt.Errorf("chaos partition load: %w", out.err)
	}
	var converge time.Duration
	deadline := time.Now().Add(30 * time.Second)
	for {
		if cluster.Replicas[3].Info().LastExec >= frontier {
			converge = time.Since(healed)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: replica 3 never converged after heal (frontier %d, at %d)",
				frontier, cluster.Replicas[3].Info().LastExec)
		}
		time.Sleep(5 * time.Millisecond)
	}
	opts.record("chaos", "partition_heal", out.res, phases.Snapshot().Sub(phaseBase).Attr(map[string]float64{
		"heal_convergence_ms": float64(converge.Milliseconds()),
	}))
	fmt.Fprintf(w, "%-22s %8.0f %8d %8d %16s\n", "partition_heal", out.res.TPS(), out.res.Ops, out.res.Errors, converge)
	return nil
}
