package harness

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// PhaseCollector aggregates the per-phase latency segments emitted by
// flight recorders (trace.Sink) across every replica of a cluster into
// one mean/count table per phase. Experiments install it through
// Factory and read it back as rows for the per-phase breakdown report
// and the -json phase-attribution extras.
type PhaseCollector struct {
	mu   sync.Mutex
	snap PhaseSnapshot
}

// ObservePhase implements trace.Sink. Called from whatever goroutine
// finalizes a request timeline; it does constant work under the mutex.
func (p *PhaseCollector) ObservePhase(_ uint32, phase trace.Phase, d time.Duration) {
	if phase > trace.NumPhases {
		return
	}
	p.mu.Lock()
	p.snap.sum[phase] += d
	p.snap.count[phase]++
	p.mu.Unlock()
}

// Factory returns a ClusterOptions.Recorder factory: one flight
// recorder per replica, all sinking into this collector.
func (p *PhaseCollector) Factory() func(uint32) *trace.Recorder {
	return func(id uint32) *trace.Recorder {
		return trace.New(trace.Config{Replica: int(id), Sink: p})
	}
}

// Snapshot returns a point-in-time copy; Sub yields window deltas.
func (p *PhaseCollector) Snapshot() PhaseSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

// PhaseSnapshot is a copied per-phase aggregate (value semantics; the
// arrays are indexed by trace.Phase with the last entry holding the
// synthetic end-to-end series).
type PhaseSnapshot struct {
	sum   [trace.NumPhases + 1]time.Duration
	count [trace.NumPhases + 1]uint64
}

// Sub returns the delta s - prev (sums and counts are monotone).
func (s PhaseSnapshot) Sub(prev PhaseSnapshot) PhaseSnapshot {
	out := s
	for i := range out.sum {
		out.sum[i] -= prev.sum[i]
		out.count[i] -= prev.count[i]
	}
	return out
}

// PhaseRow is one phase's aggregate over a measurement window.
type PhaseRow struct {
	Phase trace.Phase
	Count uint64
	Mean  time.Duration
}

// Rows returns the phases with at least one sample, in pipeline order
// (end_to_end last).
func (s PhaseSnapshot) Rows() []PhaseRow {
	var out []PhaseRow
	for p := trace.Phase(0); p <= trace.NumPhases; p++ {
		if s.count[p] == 0 {
			continue
		}
		out = append(out, PhaseRow{
			Phase: p,
			Count: s.count[p],
			Mean:  s.sum[p] / time.Duration(s.count[p]),
		})
	}
	return out
}

// Attr renders the window as -json extra keys: one
// "phase_<name>_mean_ms" per sampled phase, merged into extra (which
// may be nil).
func (s PhaseSnapshot) Attr(extra map[string]float64) map[string]float64 {
	rows := s.Rows()
	if len(rows) == 0 {
		return extra
	}
	if extra == nil {
		extra = make(map[string]float64, len(rows))
	}
	for _, r := range rows {
		extra["phase_"+r.Phase.String()+"_mean_ms"] = r.Mean.Seconds() * 1e3
	}
	return extra
}
