package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// waitReplicaStable polls until replica id reports a stable checkpoint
// at or past minStable. For a durable replica that also means its
// manifest is on disk: persist runs synchronously inside makeStable,
// before Info can observe the new LastStable.
func waitReplicaStable(t *testing.T, c *Cluster, id uint32, minStable uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if info := c.Replicas[id].Info(); info.LastStable >= minStable {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d never reached stable checkpoint %d (at %d)",
				id, minStable, c.Replicas[id].Info().LastStable)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// restartTransferStats runs the shared delta-transfer scenario — dirty
// many state pages, crash replica 3, advance the group well past its
// checkpoint, restart it — and reports how many pages the restarted
// incarnation fetched plus its tracer-observed transfer finishes.
func restartTransferStats(t *testing.T, durable bool, seed int64) (info core.Info, finishes int) {
	t.Helper()
	tracers := make(map[uint32]*recordingTracer)
	var mu sync.Mutex
	co := ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 1,
		Seed:       seed,
		App:        NewCounterFactory(),
		Tracer: func(id uint32) core.Tracer {
			tr := &recordingTracer{}
			mu.Lock()
			tracers[id] = tr // a restart replaces the entry: fresh incarnation, fresh trace
			mu.Unlock()
			return tr
		},
	}
	if durable {
		co.DataDir = t.TempDir()
	}
	c, err := NewCluster(co)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Phase 1: distinct keys spread writes over most of the counter
	// table's pages — the bulk a diskless restart has to re-fetch.
	for i := 0; i < 120; i++ {
		invokeMust(t, cl, fmt.Sprintf("bump key-%d", i))
	}
	waitReplicaStable(t, c, 3, 112, 10*time.Second)
	c.StopReplica(3)

	// Phase 2: a single hot key — the delta is narrow — while the group
	// moves ≥ 2K past replica 3's checkpoint, forcing its restarted
	// incarnation through state transfer rather than log replay.
	for i := 0; i < 24; i++ {
		invokeMust(t, cl, "bump key-7")
	}
	if err := c.RestartReplica(3); err != nil {
		t.Fatal(err)
	}
	if !c.WaitConverged(144, 30*time.Second) {
		t.Fatalf("restarted replica never converged: %+v", c.Replicas[3].Info())
	}
	info = c.Replicas[3].Info()
	if info.Stats.StateTransfers == 0 {
		t.Fatal("restarted replica recovered without a state transfer; the scenario is not exercising the sync path")
	}
	mu.Lock()
	tr := tracers[3]
	mu.Unlock()
	for _, e := range tr.stateTransfers() {
		if e.Phase == core.StateTransferFinish {
			finishes++
		}
	}
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, 136, 20*time.Second)
	return info, finishes
}

// TestDurableRestartDeltaTransfer is the delta-recovery acceptance
// test: the same crash-restart scenario runs once durable and once
// diskless, and the durable restart must fetch strictly fewer pages —
// its WAL-restored region already holds everything up to the manifest
// checkpoint, so the syncer (seeded from the restored leaf digests)
// requests only the pages that changed since.
func TestDurableRestartDeltaTransfer(t *testing.T) {
	durInfo, durFinishes := restartTransferStats(t, true, 201)
	dlInfo, dlFinishes := restartTransferStats(t, false, 201)

	if durFinishes == 0 || dlFinishes == 0 {
		t.Fatalf("tracer saw no StateTransferFinish (durable=%d diskless=%d)", durFinishes, dlFinishes)
	}
	st := durInfo.Stats
	if !st.DurableNow {
		t.Fatal("durable replica does not report DurableNow")
	}
	if st.Restarts != 1 {
		t.Fatalf("durable replica reports %d restarts, want 1", st.Restarts)
	}
	if st.RecoveryNanos == 0 {
		t.Fatal("durable replica reports zero recovery duration")
	}
	if dlInfo.Stats.PagesFetched == 0 {
		t.Fatal("diskless control fetched zero pages")
	}
	if st.PagesFetched >= dlInfo.Stats.PagesFetched {
		t.Fatalf("durable restart fetched %d pages, diskless fetched %d: recovery is not delta-only",
			st.PagesFetched, dlInfo.Stats.PagesFetched)
	}
}

// TestDurableRestartStormSimultaneous kills every replica at once —
// more than f failures, beyond the BFT fault model, survivable only
// because state is on disk — while load is in flight, restarts them
// all, and requires the group to resume committing from its durable
// checkpoints with byte-identical stable digests.
func TestDurableRestartStormSimultaneous(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 3,
		Seed:       202,
		App:        NewCounterFactory(),
		DataDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 40; i++ {
		invokeMust(t, cl, fmt.Sprintf("bump key-%d", i))
	}
	// Every replica must have a manifest on disk before the storm.
	for id := uint32(0); id < 4; id++ {
		waitReplicaStable(t, c, id, 32, 10*time.Second)
	}

	// Background load so the kill lands mid-traffic: requests are in
	// flight (some committed above the stable checkpoint, some not)
	// at the crash point.
	loader, err := c.Client(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			cctx, ccancel := context.WithTimeout(ctx, time.Second)
			_, _ = loader.Invoke(cctx, []byte("bump storm"))
			ccancel()
		}
	}()
	time.Sleep(200 * time.Millisecond)
	for id := uint32(0); id < 4; id++ {
		c.StopReplica(id)
	}
	cancel()
	wg.Wait()
	loader.Close()

	for id := uint32(0); id < 4; id++ {
		if err := c.RestartReplica(id); err != nil {
			t.Fatalf("restart replica %d: %v", id, err)
		}
	}
	// A fresh client: its wall-clock timestamps land above the dedup
	// windows the replicas recovered from their manifests.
	cl2, err := c.Client(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < 24; i++ {
		invokeMust(t, cl2, fmt.Sprintf("bump post-%d", i))
	}
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, 40, 30*time.Second)
	for id := uint32(0); id < 4; id++ {
		st := c.Replicas[id].Info().Stats
		if !st.DurableNow {
			t.Fatalf("replica %d lost its data dir across the storm", id)
		}
		if st.Restarts != 1 {
			t.Fatalf("replica %d reports %d manifest recoveries, want 1", id, st.Restarts)
		}
		if st.PersistErrors != 0 {
			t.Fatalf("replica %d latched %d persist errors", id, st.PersistErrors)
		}
	}
}

// TestDurableRollingRestartUnderLoad cycles a crash-restart through
// every replica — including the primary — while a client keeps
// submitting, then requires full digest convergence with each replica
// having recovered from its manifest exactly once.
func TestDurableRollingRestartUnderLoad(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 2,
		Seed:       203,
		App:        NewCounterFactory(),
		DataDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 24; i++ {
		invokeMust(t, cl, fmt.Sprintf("bump key-%d", i))
	}

	loader, err := c.Client(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
			_, _ = loader.Invoke(cctx, []byte("bump roll"))
			ccancel()
		}
	}()

	for id := uint32(0); id < 4; id++ {
		waitReplicaStable(t, c, id, 16, 15*time.Second)
		// Snapshot the live peers' frontier before the crash.
		var frontier uint64
		for peer := uint32(0); peer < 4; peer++ {
			if peer == id {
				continue
			}
			if e := c.Replicas[peer].Info().LastExec; e > frontier {
				frontier = e
			}
		}
		if err := c.RestartReplica(id); err != nil {
			t.Fatalf("rolling restart replica %d: %v", id, err)
		}
		// Catch-up is judged against the LIVE frontier once it has moved
		// past the pre-crash snapshot, not against the snapshot itself:
		// the restarted replica rejoins at its durable stable checkpoint,
		// which can already satisfy the old frontier while the replica is
		// still wedged on a request body it missed (§2.4 — under AllBig,
		// bodies travel only by client multicast, and a completed call is
		// never rebroadcast). Restarting the next replica while this one
		// is wedged livelocks the group: with two of four replicas unable
		// to execute, no newer checkpoint can stabilize, so the state
		// transfer that would heal the wedge never gets a target. Catching
		// a frontier that advanced past the crash point proves the replica
		// re-executed (or state-transferred) through any such gap.
		deadline := time.Now().Add(30 * time.Second)
		for {
			var cur uint64
			for peer := uint32(0); peer < 4; peer++ {
				if peer == id {
					continue
				}
				if e := c.Replicas[peer].Info().LastExec; e > cur {
					cur = e
				}
			}
			if info := c.Replicas[id].Info(); cur > frontier && info.LastExec >= cur {
				break
			}
			if time.Now().After(deadline) {
				var peers []core.Info
				for p := uint32(0); p < 4; p++ {
					peers = append(peers, c.Replicas[p].Info())
				}
				t.Fatalf("replica %d never recaught the live frontier (pre-crash %d, at %d); group: %+v",
					id, frontier, c.Replicas[id].Info().LastExec, peers)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	cancel()
	wg.Wait()
	loader.Close()

	// Quiesce with fresh traffic so the final checkpoint postdates
	// every restart, then require byte-identical digests.
	for i := 0; i < 16; i++ {
		invokeMust(t, cl, "bump tail")
	}
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, 32, 30*time.Second)
	for id := uint32(0); id < 4; id++ {
		st := c.Replicas[id].Info().Stats
		if st.Restarts != 1 {
			t.Fatalf("replica %d reports %d manifest recoveries, want 1", id, st.Restarts)
		}
	}
}

// TestDurableManifestLossBootsClean regression-tests the crash window
// before a manifest lands: the pages file holds content but no
// manifest describes it. Every replica's manifest is deleted while its
// pages (and WAL) are left behind; the restarted group must boot on
// genuinely clean genesis state — the unverifiable page image must
// never be applied to the region — and re-converge from scratch. If a
// replica kept the dirty image, re-executing the fresh workload on top
// of it would produce divergent checkpoint digests and the group would
// never converge.
func TestDurableManifestLossBootsClean(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 2,
		Seed:       205,
		App:        NewCounterFactory(),
		DataDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 40; i++ {
		invokeMust(t, cl, fmt.Sprintf("bump key-%d", i))
	}
	for id := uint32(0); id < 4; id++ {
		waitReplicaStable(t, c, id, 32, 10*time.Second)
	}
	for id := uint32(0); id < 4; id++ {
		c.StopReplica(id)
	}
	// Asymmetric wipe: every manifest goes, but only replicas 0-2 lose
	// their page files too. Replica 3 restarts with orphaned page
	// content and must discard it — if the unverified image leaked into
	// its region, its genesis checkpoint digest would differ from the
	// truly-clean peers below.
	for id := uint32(0); id < 4; id++ {
		dir := c.ReplicaDataDir(id)
		if err := os.Remove(filepath.Join(dir, "manifest")); err != nil {
			t.Fatalf("replica %d: delete manifest: %v", id, err)
		}
		if id == 3 {
			var pageBytes int64
			for _, name := range []string{"pages", "pages.wal"} {
				if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
					pageBytes += fi.Size()
				}
			}
			if pageBytes == 0 {
				t.Fatal("replica 3 has no page content on disk; scenario is vacuous")
			}
			continue
		}
		for _, name := range []string{"pages", "pages.wal"} {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
				t.Fatalf("replica %d: delete %s: %v", id, name, err)
			}
		}
	}
	for id := uint32(0); id < 4; id++ {
		if err := c.RestartReplica(id); err != nil {
			t.Fatalf("restart replica %d: %v", id, err)
		}
	}
	// Before any traffic: everyone sits at the genesis checkpoint, and
	// its digest is computed over the boot-time region. A replica that
	// applied the orphaned pages would already disagree here.
	genesis := c.Replicas[0].Info()
	if genesis.LastStable != 0 {
		t.Fatalf("replica 0 recovered a stable checkpoint (%d) with no manifest", genesis.LastStable)
	}
	for id := uint32(1); id < 4; id++ {
		info := c.Replicas[id].Info()
		if info.LastStable != 0 {
			t.Fatalf("replica %d recovered a stable checkpoint (%d) with no manifest", id, info.LastStable)
		}
		if info.StableDigest != genesis.StableDigest {
			t.Fatalf("replica %d boots on a dirty region: genesis digest %x != %x",
				id, info.StableDigest[:8], genesis.StableDigest[:8])
		}
	}
	// A fresh client: the recovered dedup windows are gone with the
	// manifests, so this is logically a brand-new cluster.
	cl2, err := c.Client(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < 24; i++ {
		invokeMust(t, cl2, fmt.Sprintf("bump fresh-%d", i))
	}
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, 16, 30*time.Second)
	for id := uint32(0); id < 4; id++ {
		st := c.Replicas[id].Info().Stats
		if !st.DurableNow {
			t.Fatalf("replica %d lost its data dir", id)
		}
		if st.Restarts != 0 {
			t.Fatalf("replica %d counted %d manifest recoveries after manifest loss, want 0", id, st.Restarts)
		}
	}
}

// TestDurableKillMidWALAppend simulates kill -9 during a WAL append
// and worse: first a torn tail (garbage after the last commit record —
// recovery must truncate it and rejoin from the manifest), then a cut
// into committed WAL history (pages regress behind the manifest root —
// recovery must reset to a clean first boot and re-fetch everything,
// never serve divergent state).
func TestDurableKillMidWALAppend(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 1,
		Seed:       204,
		App:        NewCounterFactory(),
		DataDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 40; i++ {
		invokeMust(t, cl, fmt.Sprintf("bump key-%d", i))
	}
	waitReplicaStable(t, c, 3, 32, 10*time.Second)
	c.StopReplica(3)

	// Torn tail: the crash interrupted an append after the last commit
	// record. 0xA7 is not a valid record kind, so recovery truncates
	// back to the last complete commit — the manifest still matches.
	walPath := filepath.Join(c.ReplicaDataDir(3), "pages.wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 300)
	for i := range torn {
		torn[i] = 0xA7
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartReplica(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		invokeMust(t, cl, fmt.Sprintf("bump torn-%d", i))
	}
	if !c.WaitConverged(56, 30*time.Second) {
		t.Fatalf("replica never converged after torn-tail recovery: %+v", c.Replicas[3].Info())
	}
	st := c.Replicas[3].Info().Stats
	if !st.DurableNow || st.Restarts != 1 {
		t.Fatalf("torn-tail recovery did not use the manifest: %+v", st)
	}
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, 48, 20*time.Second)

	// Cut into committed history: the WAL now ends before the state the
	// manifest promises, so the restored root cannot match. The replica
	// must reset its disk and rejoin via a full state transfer.
	c.StopReplica(3)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("WAL empty after post-restart checkpoints; scenario cannot cut history")
	}
	if err := os.Truncate(walPath, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartReplica(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		invokeMust(t, cl, fmt.Sprintf("bump cut-%d", i))
	}
	if !c.WaitConverged(72, 30*time.Second) {
		t.Fatalf("replica never converged after WAL history cut: %+v", c.Replicas[3].Info())
	}
	if got := c.Replicas[3].Info().Stats.StateTransfers; got == 0 {
		t.Fatal("reset replica rejoined without a state transfer")
	}
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, 64, 20*time.Second)
}
