package harness

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// TestBatchBoundarySingleOversizedRequest: a single request whose inline
// body exceeds MaxBatchBytes must still be proposed and committed — alone
// in its batch — rather than starved by the datagram bound. (The bound
// caps where a batch is CUT, never whether its first request ships.)
func TestBatchBoundarySingleOversizedRequest(t *testing.T) {
	o := fastOpts()
	o.AllBig = false // inline bodies, so MaxBatchBytes sees their full size
	o.BigThreshold = 0
	o.MaxBatchBytes = 100 // every 1 KiB request is over the bound by itself
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       23,
		App:        NewEchoFactory(1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0, client.WithPipelineDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const ops = 24
	payload := bytes.Repeat([]byte{0xA5}, 1024)
	want := make([]byte, 1024) // EchoApp answers RespSize zero bytes
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < ops/8; n++ {
				resp, err := cl.Invoke(context.Background(), payload)
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if !bytes.Equal(resp, want) {
					t.Errorf("response corrupted")
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Every batch carried exactly one (oversized) request.
	info := c.Replicas[0].Info()
	if info.Stats.Executed != ops {
		t.Fatalf("executed = %d, want %d", info.Stats.Executed, ops)
	}
	if info.Stats.Batches != ops {
		t.Fatalf("batches = %d, want %d (one oversized request per batch)", info.Stats.Batches, ops)
	}
}

// TestAdaptiveBatchingWindowBounds: under a bursty pipelined workload the
// adaptive window stays inside [1, MaxBatch] on every replica, and the
// cluster keeps committing. The controller's own dynamics are unit-tested
// in internal/core; this is the end-to-end guard rail.
func TestAdaptiveBatchingWindowBounds(t *testing.T) {
	o := fastOpts()
	o.AdaptiveBatching = true
	o.MaxBatch = 8
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 2,
		Seed:       29,
		App:        NewEchoFactory(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	checkWindows := func() {
		for i, r := range c.Replicas {
			if w := r.Info().BatchWindow; w < 1 || w > o.MaxBatch {
				t.Fatalf("replica %d: batch window %d escaped [1,%d]", i, w, o.MaxBatch)
			}
		}
	}
	payload := bytes.Repeat([]byte{1}, 64)
	clients := make([]*client.Client, 2)
	for i := range clients {
		cl, err := c.Client(i, client.WithPipelineDepth(16))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}
	for burst := 0; burst < 3; burst++ {
		var wg sync.WaitGroup
		for _, cl := range clients {
			cl := cl
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := 0; n < 40; n++ {
					if _, err := cl.Invoke(context.Background(), payload); err != nil {
						t.Errorf("invoke: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		checkWindows()
		time.Sleep(50 * time.Millisecond) // idle gap between bursts
	}
	checkWindows()
}

// TestPoolScribbleOwnership: with debug scribbling on, every buffer
// returned to the arena is overwritten immediately. A release-after-send
// ownership violation anywhere on the hot path (sealed envelopes, reply
// payload scratch, verify scratch, receive buffers) would corrupt live
// data — authentication failures, wrong echoes, divergence — and, under
// -race (the CI mode for this test), a write-while-read report. The
// workload deliberately crosses checkpoint boundaries and exercises the
// cached-retransmission and read-only paths.
func TestPoolScribbleOwnership(t *testing.T) {
	wire.SetPoolDebug(true)
	defer wire.SetPoolDebug(false)

	o := fastOpts()
	o.CheckpointInterval = 4 // cross several checkpoint barriers
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 2,
		Seed:       31,
		App:        NewEchoFactory(256),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	payload := bytes.Repeat([]byte{0x5C}, 256)
	want := make([]byte, 256) // EchoApp answers zero bytes; 0xDB = scribble
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cl, err := c.Client(i, client.WithPipelineDepth(4))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 30; n++ {
				resp, err := cl.Invoke(context.Background(), payload)
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if !bytes.Equal(resp, want) {
					t.Errorf("scribbled buffer leaked into a reply")
					return
				}
				if n%10 == 9 {
					if _, err := cl.InvokeReadOnly(context.Background(), payload); err != nil {
						t.Errorf("read-only: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
