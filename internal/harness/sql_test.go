package harness

import (
	"context"
	"testing"
	"time"

	"repro/internal/sqldb"
	"repro/sqlstate"
)

func TestSQLClusterEndToEnd(t *testing.T) {
	o := fastOpts()
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       20,
		App:        NewSQLFactory(true, t.TempDir()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The e-voting insert of §4.2.
	for i := 0; i < 5; i++ {
		resp, err := cl.Invoke(context.Background(), sqlstate.EncodeExec(
			"INSERT INTO votes (voter, vote, ts, rnd) VALUES (?, ?, now(), random())",
			sqldb.Text("alice"), sqldb.Text("yes")))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		r, err := sqlstate.DecodeResponse(resp)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if r.Result.RowsAffected != 1 {
			t.Fatalf("insert %d: %+v", i, r.Result)
		}
	}
	// Query through ordered path: replies must match across replicas
	// (the paper added ts/rnd columns exactly to verify this).
	resp, err := cl.Invoke(context.Background(), sqlstate.EncodeQuery("SELECT count(*), min(rnd), max(rnd) FROM votes"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sqlstate.DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Data[0][0].I != 5 {
		t.Fatalf("count = %v", r.Rows.Data)
	}
	// If ts/rnd were not deterministic, replicas would have diverged and
	// the client could not have assembled matching reply quorums above.

	// Read-only query path.
	resp, err = cl.InvokeReadOnly(context.Background(), sqlstate.EncodeQuery("SELECT count(*) FROM votes"))
	if err != nil {
		t.Fatal(err)
	}
	r, err = sqlstate.DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Data[0][0].I != 5 {
		t.Fatalf("read-only count = %v", r.Rows.Data)
	}
	// A mutating statement on the read-only path must be refused.
	resp, err = cl.InvokeReadOnly(context.Background(), sqlstate.EncodeExec("DELETE FROM votes"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqlstate.DecodeResponse(resp); err == nil {
		t.Fatal("mutation via read-only path must fail")
	}
}

func TestSQLClusterRestartStateTransfer(t *testing.T) {
	o := fastOpts()
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       21,
		App:        NewSQLFactory(true, t.TempDir()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	insert := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			resp, err := cl.Invoke(context.Background(), sqlstate.EncodeExec(
				"INSERT INTO votes (voter, vote, ts, rnd) VALUES (?, 'y', now(), random())",
				sqldb.Text("v")))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sqlstate.DecodeResponse(resp); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert(5)
	c.StopReplica(2)
	insert(20) // well past a checkpoint (K=8)
	if err := c.RestartReplica(2); err != nil {
		t.Fatal(err)
	}
	insert(10)
	deadline := time.Now().Add(10 * time.Second)
	for {
		info := c.Replicas[2].Info()
		if info.LastExec >= 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 2 stuck: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The restarted replica's database content must now answer queries
	// consistently (it participates in reply quorums).
	resp, err := cl.Invoke(context.Background(), sqlstate.EncodeQuery("SELECT count(*) FROM votes"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sqlstate.DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Data[0][0].I != 35 {
		t.Fatalf("count = %v, want 35", r.Rows.Data)
	}
}

func TestExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	opts := DefaultExperimentOptions()
	opts.NumClients = 4
	opts.Duration = 300 * time.Millisecond
	opts.Warmup = 100 * time.Millisecond
	opts.RequestSize = 256
	opts.Out = discard{}
	if err := RunDynamicOverhead(opts); err != nil {
		t.Fatal(err)
	}
	if err := RunACIDComparison(opts, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := RunLossExperiment(opts); err != nil {
		t.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
