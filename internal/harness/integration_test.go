package harness

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/transport"
)

// invokeMust performs one Invoke and fails the test on error.
func invokeMust(t *testing.T, cl *client.Client, op string) []byte {
	t.Helper()
	resp, err := cl.Invoke(context.Background(), []byte(op))
	if err != nil {
		t.Fatalf("invoke %q: %v", op, err)
	}
	return resp
}

func TestConcurrentClients(t *testing.T) {
	const numClients, perClient = 8, 25
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: numClients,
		Seed:       3,
		App:        NewCounterFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for i := 0; i < numClients; i++ {
		cl, err := c.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
					errs <- err
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every increment must have landed exactly once.
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp := invokeMust(t, cl, "get")
	if got := binary.BigEndian.Uint64(resp); got != numClients*perClient {
		t.Fatalf("counter = %d, want %d", got, numClients*perClient)
	}
}

func TestAllConfigurationAxes(t *testing.T) {
	// Every cell of the paper's configuration matrix (Table 1 axes) must
	// produce a correct service, whatever its throughput.
	for _, mac := range []bool{true, false} {
		for _, allbig := range []bool{true, false} {
			for _, batch := range []bool{true, false} {
				name := fmt.Sprintf("mac=%v allbig=%v batch=%v", mac, allbig, batch)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					o := fastOpts()
					o.UseMACs = mac
					o.AllBig = allbig
					o.Batching = batch
					c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 2, Seed: 4, App: NewCounterFactory()})
					if err != nil {
						t.Fatal(err)
					}
					defer c.Stop()
					cl, err := c.Client(0)
					if err != nil {
						t.Fatal(err)
					}
					defer cl.Close()
					for i := 1; i <= 10; i++ {
						resp := invokeMust(t, cl, "inc")
						if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
							t.Fatalf("inc %d: got %d", i, got)
						}
					}
				})
			}
		}
	}
}

func TestViewChangeOnPrimaryFailure(t *testing.T) {
	o := fastOpts()
	o.ViewChangeTimeout = 400 * time.Millisecond
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 5, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 1; i <= 5; i++ {
		invokeMust(t, cl, "inc")
	}
	// Kill the primary of view 0 (replica 0). The client's retransmits
	// arm the backups' liveness timers; a view change must elect
	// replica 1 and the service must keep going.
	c.StopReplica(0)
	for i := 6; i <= 12; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("inc"))
		if err != nil {
			t.Fatalf("inc %d after primary failure: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d: got %d", i, got)
		}
	}
	for _, id := range []uint32{1, 2, 3} {
		info := c.Replicas[id].Info()
		if info.View == 0 {
			t.Fatalf("replica %d still in view 0 after primary failure", id)
		}
	}
}

func TestNormalCaseMessageSchedule(t *testing.T) {
	// Figure 1: in the failure-free case a request is executed by every
	// replica without any view change or state transfer.
	c, err := NewCluster(ClusterOptions{Opts: fastOpts(), NumClients: 1, Seed: 6, App: NewEchoFactory(16)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		invokeMust(t, cl, "x")
	}
	if !c.WaitConverged(10, 5*time.Second) {
		t.Fatal("replicas did not converge")
	}
	for id, r := range c.Replicas {
		info := r.Info()
		if info.View != 0 || info.Stats.ViewChanges != 0 {
			t.Fatalf("replica %d: unexpected view change (view=%d)", id, info.View)
		}
		if info.Stats.StateTransfers != 0 {
			t.Fatalf("replica %d: unexpected state transfer", id)
		}
		if info.Stats.Executed != 10 {
			t.Fatalf("replica %d executed %d requests, want 10", id, info.Stats.Executed)
		}
	}
}

func TestReplicaRestartRecovers(t *testing.T) {
	o := fastOpts()
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 7, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 1; i <= 10; i++ {
		invokeMust(t, cl, "inc")
	}
	// Crash a backup, make progress past a checkpoint, restart it.
	c.StopReplica(3)
	for i := 11; i <= 30; i++ {
		invokeMust(t, cl, "inc")
	}
	if err := c.RestartReplica(3); err != nil {
		t.Fatal(err)
	}
	// Keep the service busy so checkpoints keep forming.
	for i := 31; i <= 45; i++ {
		invokeMust(t, cl, "inc")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		info := c.Replicas[3].Info()
		if info.LastExec >= 40 {
			if info.Stats.StateTransfers == 0 {
				t.Fatal("restarted replica recovered without a state transfer")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica stuck at exec %d (stable %d)", info.LastExec, info.LastStable)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBigRequestLossWedgesReplica(t *testing.T) {
	// §2.4: with all requests big, losing the single client→replica body
	// transmission wedges that replica until the next checkpoint's state
	// transfer. Non-big requests do not have this failure mode.
	o := fastOpts()
	o.AllBig = true
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 8, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	invokeMust(t, cl, "inc")
	// Drop the client→replica-3 link: replica 3 misses the body but the
	// agreement (replica→replica) still reaches it.
	c.Net.SetLinkFaults(ClientAddr(0), ReplicaAddr(3), transport.Faults{Partitioned: true})
	invokeMust(t, cl, "inc")
	invokeMust(t, cl, "inc")

	// Replica 3 must be wedged: agreement done, execution stuck.
	deadline := time.Now().Add(3 * time.Second)
	wedged := false
	for time.Now().Before(deadline) {
		if info := c.Replicas[3].Info(); info.Stats.WedgedNow {
			wedged = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !wedged {
		t.Fatal("replica 3 never wedged on the missing big-request body")
	}

	// Heal the link for future requests and push past the checkpoint
	// interval: the state transfer must unwedge replica 3.
	c.Net.ClearLinkFaults(ClientAddr(0), ReplicaAddr(3))
	for i := 0; i < int(o.CheckpointInterval)+2; i++ {
		invokeMust(t, cl, "inc")
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		info := c.Replicas[3].Info()
		if !info.Stats.WedgedNow && info.LastExec >= o.CheckpointInterval && info.Stats.StateTransfers > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 3 still wedged: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNonBigLossAllOrNothing(t *testing.T) {
	// §2.4: without big-request handling the client sends to the primary
	// and retransmits on timeout; a lost request means either every
	// replica executes or none does — no single replica wedges.
	o := fastOpts()
	o.AllBig = false
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 9, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Heavy loss on the client→primary link: retransmission must win.
	c.Net.SetLinkFaults(ClientAddr(0), ReplicaAddr(0), transport.Faults{LossRate: 0.7})
	for i := 1; i <= 10; i++ {
		resp := invokeMust(t, cl, "inc")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d: got %d", i, got)
		}
	}
	if !c.WaitConverged(10, 5*time.Second) {
		t.Fatal("replicas did not converge")
	}
	for id, r := range c.Replicas {
		if info := r.Info(); info.Stats.WedgedNow {
			t.Fatalf("replica %d wedged in non-big mode", id)
		}
	}
}

func TestDynamicJoinInvokeLeave(t *testing.T) {
	// Figure 2 / §3.1: the two-phase join admits a client which can then
	// invoke operations and leave; after leaving its requests are refused.
	o := fastOpts()
	o.DynamicClients = true
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 0, Seed: 10, App: NewAuthCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cl, err := c.DynamicClient("dyn-1", client.WithMaxRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Join(context.Background(), []byte("alice:sesame")); err != nil {
		t.Fatalf("join: %v", err)
	}
	if cl.ID() == core.JoinSender {
		t.Fatal("join must assign a client id")
	}
	for i := 1; i <= 5; i++ {
		resp := invokeMust(t, cl, "inc")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d: got %d", i, got)
		}
	}
	if err := cl.Leave(context.Background()); err != nil {
		t.Fatalf("leave: %v", err)
	}
	// After leaving, requests must time out (the table entry is gone).
	if _, err := cl.Invoke(context.Background(), []byte("inc")); err == nil {
		t.Fatal("invoke after leave must fail")
	}
}

func TestDynamicJoinDeniedByApplication(t *testing.T) {
	o := fastOpts()
	o.DynamicClients = true
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 0, Seed: 11, App: NewAuthCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.DynamicClient("dyn-bad")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Join(context.Background(), []byte("mallory:wrongpass"))
	if err == nil {
		t.Fatal("join with bad credentials must be denied")
	}
	if _, ok := err.(*client.ErrJoinDenied); !ok {
		t.Fatalf("got %v, want ErrJoinDenied", err)
	}
}

func TestDynamicSingleSessionPerPrincipal(t *testing.T) {
	// §3.1: establishing a new session for a principal terminates the
	// previous one, bounding a credential-holder to one live session.
	o := fastOpts()
	o.DynamicClients = true
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 0, Seed: 12, App: NewAuthCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	first, err := c.DynamicClient("dyn-a", client.WithMaxRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if err := first.Join(context.Background(), []byte("bob:sesame")); err != nil {
		t.Fatal(err)
	}
	invokeMust(t, first, "inc")

	second, err := c.DynamicClient("dyn-b")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.Join(context.Background(), []byte("bob:sesame")); err != nil {
		t.Fatal(err)
	}
	invokeMust(t, second, "inc")

	// The first session must be dead.
	if _, err := first.Invoke(context.Background(), []byte("inc")); err == nil {
		t.Fatal("first session must be terminated when the principal rejoins")
	}
}

func TestJoinSequence(t *testing.T) {
	// Figure 2 as an observable schedule: joins are ordered like any
	// request, so the replicas' JoinsExecuted counters all advance.
	o := fastOpts()
	o.DynamicClients = true
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 0, Seed: 13, App: NewAuthCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 3; i++ {
		cl, err := c.DynamicClient(fmt.Sprintf("dyn-seq-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Join(context.Background(), []byte(fmt.Sprintf("user%d:sesame", i))); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		invokeMust(t, cl, "inc")
		cl.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, r := range c.Replicas {
			if r.Info().Stats.JoinsExecuted != 3 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for id, r := range c.Replicas {
				t.Logf("replica %d: %+v", id, r.Info().Stats)
			}
			t.Fatal("not all replicas executed all joins")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStaticModeRejectsJoin(t *testing.T) {
	c, err := NewCluster(ClusterOptions{Opts: fastOpts(), NumClients: 1, Seed: 14, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.DynamicClient("dyn-static", client.WithMaxRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Join(context.Background(), []byte("x:sesame")); err == nil {
		t.Fatal("join must not succeed when DynamicClients is off")
	}
}

func TestUnknownClientDropped(t *testing.T) {
	// A request from an identifier absent from the redirection table is
	// dropped before any signature verification (§3.1).
	c, err := NewCluster(ClusterOptions{Opts: fastOpts(), NumClients: 1, Seed: 15, App: NewEchoFactory(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.DynamicClient("dyn-ghost", client.WithMaxRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Forge a static-style client with an unknown id by using the
	// dynamic client's key but an arbitrary id: the replicas must not
	// answer. (Invoke fails because the client never joined; craft the
	// check through a plain timeout.)
	if err := cl.Join(context.Background(), nil); err == nil {
		t.Fatal("expected join rejection in static mode")
	}
}
