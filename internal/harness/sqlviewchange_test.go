package harness

import (
	"context"
	"testing"
	"time"

	"repro/sqlstate"
)

// TestSQLSurvivesViewChange runs the §4.2 SQL workload across a primary
// failure: the replicated database must come out exactly-once consistent
// (no vote lost, none double-inserted) even though tentative executions
// were rolled back and re-run during the view change.
func TestSQLSurvivesViewChange(t *testing.T) {
	o := fastOpts()
	o.ViewChangeTimeout = 400 * time.Millisecond
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 2,
		Seed:       70,
		App:        NewSQLFactory(true, t.TempDir()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	insert := func(voter string) {
		t.Helper()
		resp, err := cl.Invoke(context.Background(), sqlstate.EncodeExec(
			"INSERT INTO votes (voter, vote, ts, rnd) VALUES (?, 'y', now(), random())",
			sqlstate.Text(voter)))
		if err != nil {
			t.Fatalf("insert %s: %v", voter, err)
		}
		r, err := sqlstate.DecodeResponse(resp)
		if err != nil {
			t.Fatalf("insert %s: %v", voter, err)
		}
		if r.Result.RowsAffected != 1 {
			t.Fatalf("insert %s: %+v", voter, r.Result)
		}
	}

	for i := 0; i < 6; i++ {
		insert("before")
	}
	c.StopReplica(0) // primary of view 0
	for i := 0; i < 6; i++ {
		insert("after")
	}

	resp, err := cl.Invoke(context.Background(), sqlstate.EncodeQuery("SELECT count(*) FROM votes"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sqlstate.DecodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rows.Data[0][0].I; got != 12 {
		t.Fatalf("votes = %d, want 12 (exactly-once across the view change)", got)
	}
	// Surviving replicas agree on the new view.
	for _, id := range []uint32{1, 2, 3} {
		if info := c.Replicas[id].Info(); info.View == 0 {
			t.Fatalf("replica %d still in view 0", id)
		}
	}
}

// TestSQLDurableDataSurvivesOnDisk checks the §3.2 by-product the paper
// advertises: a replica's database file is usable on its own — its disk
// image contains the committed rows and opens as an ordinary database.
func TestSQLDurableDataSurvivesOnDisk(t *testing.T) {
	dir := t.TempDir()
	o := fastOpts()
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       71,
		App:        NewSQLFactory(true, dir),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, err := cl.Invoke(context.Background(), sqlstate.EncodeExec(
			"INSERT INTO votes (voter, vote, ts, rnd) VALUES ('d', 'y', now(), random())"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sqlstate.DecodeResponse(resp); err != nil {
			t.Fatal(err)
		}
	}
	if !c.WaitConverged(5, 5*time.Second) {
		t.Fatal("not converged")
	}
	cl.Close()
	c.Stop()

	// Open replica 0's disk image directly with the embedded engine —
	// "its data will be usable on its own, being just another database
	// file" (§3.2).
	db, err := sqlstate.OpenDiskImage(dir + "/replica-0")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rows, err := db.Query("SELECT count(*) FROM votes")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].I != 5 {
		t.Fatalf("disk image has %d votes, want 5", rows.Data[0][0].I)
	}
}
