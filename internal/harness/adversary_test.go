package harness

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// adversaryCluster builds an f=1 cluster with a recording tracer per
// replica. Restarted (or adversary-replaced) replicas get a fresh
// tracer, replacing the map entry.
func adversaryCluster(t *testing.T, o core.Options, seed int64) (*Cluster, func(id uint32) *recordingTracer) {
	t.Helper()
	tracers := make(map[uint32]*recordingTracer)
	var mu sync.Mutex
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 2,
		Seed:       seed,
		App:        NewCounterFactory(),
		Tracer: func(id uint32) core.Tracer {
			tr := &recordingTracer{}
			mu.Lock()
			tracers[id] = tr
			mu.Unlock()
			return tr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, func(id uint32) *recordingTracer {
		mu.Lock()
		defer mu.Unlock()
		return tracers[id]
	}
}

// replaceWithAdversary swaps replica id for one whose outgoing traffic
// passes through behavior.
func replaceWithAdversary(t *testing.T, c *Cluster, id uint32, behavior adversary.Behavior) {
	t.Helper()
	c.StopReplica(id)
	if err := c.StartAdversary(id, func(conn transport.Conn) transport.Conn {
		return adversary.Wrap(conn, behavior)
	}); err != nil {
		t.Fatal(err)
	}
}

// waitStableDigests polls until every listed replica reports the same
// stable checkpoint at or past minStable, then returns the (asserted
// byte-identical) digest.
func waitStableDigests(t *testing.T, c *Cluster, ids []uint32, minStable uint64, timeout time.Duration) [32]byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		infos := make([]core.Info, len(ids))
		for i, id := range ids {
			infos[i] = c.Replicas[id].Info()
		}
		ok := infos[0].LastStable >= minStable
		for _, info := range infos[1:] {
			if info.LastStable != infos[0].LastStable {
				ok = false
			}
		}
		if ok {
			for i, info := range infos[1:] {
				if info.StableDigest != infos[0].StableDigest {
					t.Fatalf("replica %d stable digest %x != replica %d digest %x at seq %d",
						ids[i+1], info.StableDigest[:8], ids[0], infos[0].StableDigest[:8], infos[0].LastStable)
				}
			}
			return infos[0].StableDigest
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas %v never agreed on a stable checkpoint >= %d: %+v", ids, minStable, infos)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdversaryEquivocatingPrimary is the headline scenario: the view-0
// primary equivocates (different batch digests to different backups for
// the same slot, two conflicting variants each). Every correct replica
// must (a) observe the equivocation directly (ConflictingPrePrepares),
// (b) depose the primary with EXACTLY one view change — one Install of
// view 1, no cascade — and (c) end byte-identical on the next stable
// checkpoint.
func TestAdversaryEquivocatingPrimary(t *testing.T) {
	o := fastOpts()
	o.ViewChangeTimeout = 500 * time.Millisecond
	c, tracer := adversaryCluster(t, o, 71)
	defer c.Stop()

	ident, err := c.ReplicaIdentity(0)
	if err != nil {
		t.Fatal(err)
	}
	gate := adversary.NewGate(adversary.NewEquivocator(ident))
	replaceWithAdversary(t, c, 0, gate)

	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Settle under the honest regime, then arm.
	invokeMust(t, cl, "inc")
	invokeMust(t, cl, "inc")
	gate.Arm()

	// The equivocated slot cannot gather a prepare quorum; the liveness
	// timers depose replica 0 and the call completes under view 1.
	for i := 3; i <= 12; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("inc"))
		if err != nil {
			t.Fatalf("inc %d under equivocation: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d (agreement diverged)", i, got)
		}
	}

	for _, id := range []uint32{1, 2, 3} {
		info := c.Replicas[id].Info()
		if info.View != 1 {
			t.Fatalf("replica %d view = %d, want exactly 1 (one view change, no cascade)", id, info.View)
		}
		if info.Stats.ConflictingPrePrepares == 0 {
			t.Fatalf("replica %d never observed conflicting pre-prepares", id)
		}
		var installs int
		for _, e := range tracer(id).viewChanges() {
			if e.Target != 1 {
				t.Fatalf("replica %d voted/installed view %d, want only view 1: %+v", id, e.Target, e)
			}
			if e.Phase == core.ViewChangeInstall {
				installs++
				if e.View != 1 {
					t.Fatalf("replica %d installed view %d, want 1", id, e.View)
				}
			}
		}
		if installs != 1 {
			t.Fatalf("replica %d installed %d views, want exactly 1", id, installs)
		}
	}
	waitStableDigests(t, c, []uint32{1, 2, 3}, o.CheckpointInterval, 10*time.Second)
}

// TestAdversaryCorruptMACs verifies the zero-protocol-effect property:
// a backup that corrupts the authenticated payload of every vote it
// sends is indistinguishable from a silent one. The group must stay in
// view 0, count the rejections, and keep returning correct results.
func TestAdversaryCorruptMACs(t *testing.T) {
	o := fastOpts()
	c, tracer := adversaryCluster(t, o, 72)
	defer c.Stop()

	replaceWithAdversary(t, c, 2, adversary.NewCorruptor(72, 1,
		wire.MTPrepare, wire.MTCommit, wire.MTCheckpoint))

	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 10; i++ {
		resp := invokeMust(t, cl, "inc")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d", i, got)
		}
	}

	var rejections uint64
	for _, id := range []uint32{0, 1, 3} {
		info := c.Replicas[id].Info()
		if info.View != 0 {
			t.Fatalf("replica %d moved to view %d — corrupt MACs must have zero protocol effect", id, info.View)
		}
		if got := tracer(id).viewChanges(); len(got) != 0 {
			t.Fatalf("replica %d recorded view-change events %+v, want none", id, got)
		}
		rejections += info.Stats.DroppedBadAuth
	}
	if rejections == 0 {
		t.Fatal("correct replicas counted zero auth rejections despite a corrupting peer")
	}
	waitStableDigests(t, c, []uint32{0, 1, 3}, o.CheckpointInterval, 10*time.Second)
}

// TestAdversaryWithholdingBackup checks liveness under f silent voters:
// a backup that suppresses its prepares and commits (but otherwise runs
// the protocol) must be masked with no view change.
func TestAdversaryWithholdingBackup(t *testing.T) {
	o := fastOpts()
	c, tracer := adversaryCluster(t, o, 73)
	defer c.Stop()

	replaceWithAdversary(t, c, 1, adversary.NewWithholder(wire.MTPrepare, wire.MTCommit))

	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 10; i++ {
		resp := invokeMust(t, cl, "inc")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d", i, got)
		}
	}
	for _, id := range []uint32{0, 2, 3} {
		if info := c.Replicas[id].Info(); info.View != 0 {
			t.Fatalf("replica %d moved to view %d — f withholders must be masked", id, info.View)
		}
		if got := tracer(id).viewChanges(); len(got) != 0 {
			t.Fatalf("replica %d recorded view-change events %+v, want none", id, got)
		}
	}
	waitStableDigests(t, c, []uint32{0, 2, 3}, o.CheckpointInterval, 10*time.Second)
}

// TestAdversaryAsymmetricPartitionHeals cuts only the inbound direction
// of replica 3's links (it can talk, it cannot hear — the asymmetric
// partition SetLinkFaults exists for), lets the group advance past a
// checkpoint, heals, and asserts recovery happens via state transfer
// (replayed pre-prepares fail §2.5 validation) ending in byte-identical
// state. The per-link counters must attribute the drops to the three
// severed directions.
func TestAdversaryAsymmetricPartitionHeals(t *testing.T) {
	o := fastOpts()
	o.MaxTimeDrift = 300 * time.Millisecond
	o.ViewChangeTimeout = time.Hour // isolate recovery from view changes
	c, tracer := adversaryCluster(t, o, 74)
	defer c.Stop()

	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, peer := range []uint32{0, 1, 2} {
		c.Net.SetLinkFaults(ReplicaAddr(peer), ReplicaAddr(3), transport.Faults{Partitioned: true})
	}
	for i := 1; i <= int(o.CheckpointInterval)+4; i++ {
		invokeMust(t, cl, "inc")
	}
	time.Sleep(400 * time.Millisecond) // age the pre-prepares past MaxTimeDrift

	for _, peer := range []uint32{0, 1, 2} {
		if ls := c.Net.LinkStats(ReplicaAddr(peer), ReplicaAddr(3)); ls.Dropped == 0 {
			t.Fatalf("link %d->3 recorded no drops while partitioned: %+v", peer, ls)
		}
		if ls := c.Net.LinkStats(ReplicaAddr(3), ReplicaAddr(peer)); ls.Dropped != 0 {
			t.Fatalf("link 3->%d dropped %d packets — the partition must be asymmetric", peer, ls.Dropped)
		}
		c.Net.ClearLinkFaults(ReplicaAddr(peer), ReplicaAddr(3))
	}

	// Replica 3 must converge through state transfer, not replay.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var finished bool
		for _, e := range tracer(3).stateTransfers() {
			if e.Phase == core.StateTransferFinish {
				finished = true
			}
		}
		if finished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 3 never finished a state transfer: %+v", tracer(3).stateTransfers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if info := c.Replicas[3].Info(); info.Stats.RejectedNonDet == 0 {
		t.Fatal("healed replica accepted replayed pre-prepares — §2.5 validation missed")
	}
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, o.CheckpointInterval, 10*time.Second)
}

// TestAdversaryCombinedEquivocationAndPartition drives two simultaneous
// faults at the protocol's f=1 budget boundary from different fault
// classes: the view-0 primary equivocates (Byzantine) while replica 3's
// inbound links are severed (asymmetric partition — it can talk, it
// cannot hear). The two connected correct replicas plus the deposed-but-
// otherwise-honest adversary must complete EXACTLY one view change (a
// single installed view, no cascade — the lone partitioned replica's
// escalating votes must never drag the group higher), keep serving
// clients, and after the partition heals all four replicas must converge
// to byte-identical stable digests.
func TestAdversaryCombinedEquivocationAndPartition(t *testing.T) {
	o := fastOpts()
	o.ViewChangeTimeout = 500 * time.Millisecond
	c, tracer := adversaryCluster(t, o, 79)
	defer c.Stop()

	ident, err := c.ReplicaIdentity(0)
	if err != nil {
		t.Fatal(err)
	}
	gate := adversary.NewGate(adversary.NewEquivocator(ident))
	replaceWithAdversary(t, c, 0, gate)

	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Settle under the honest regime, then inject both faults at once.
	invokeMust(t, cl, "inc")
	invokeMust(t, cl, "inc")
	for _, peer := range []uint32{0, 1, 2} {
		c.Net.SetLinkFaults(ReplicaAddr(peer), ReplicaAddr(3), transport.Faults{Partitioned: true})
	}
	gate.Arm()

	// Liveness across the combined fault: the equivocated slots cannot
	// prepare, the timers depose replica 0, and agreement continues in
	// view 1 with the quorum {0, 1, 2} (the adversary equivocates only
	// pre-prepares it authors as primary; as a backup it votes honestly).
	for i := 3; i <= 14; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("inc"))
		if err != nil {
			t.Fatalf("inc %d under combined fault: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d (agreement diverged)", i, got)
		}
	}
	gate.Disarm()

	// The connected correct replicas observed the equivocation directly
	// and installed exactly view 1 — replica 3's solo votes for ever
	// higher views are one short of the f+1 needed to move anyone.
	for _, id := range []uint32{1, 2} {
		info := c.Replicas[id].Info()
		if info.View != 1 {
			t.Fatalf("replica %d view = %d, want exactly 1 (single view change, no cascade)", id, info.View)
		}
		if info.Stats.ConflictingPrePrepares == 0 {
			t.Fatalf("replica %d never observed conflicting pre-prepares", id)
		}
		var installs int
		for _, e := range tracer(id).viewChanges() {
			if e.Phase == core.ViewChangeInstall {
				installs++
				if e.View != 1 {
					t.Fatalf("replica %d installed view %d, want 1", id, e.View)
				}
			}
		}
		if installs != 1 {
			t.Fatalf("replica %d installed %d views, want exactly 1", id, installs)
		}
	}

	// Heal. The isolated replica missed the view change entirely; status
	// gossip hands it the new-view proof and retransmission/state
	// transfer close its execution gap.
	for _, peer := range []uint32{0, 1, 2} {
		c.Net.ClearLinkFaults(ReplicaAddr(peer), ReplicaAddr(3))
	}
	for i := 15; i <= 14+int(o.CheckpointInterval)+4; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("inc"))
		if err != nil {
			t.Fatalf("inc %d after heal: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d after heal", i, got)
		}
	}

	digest := waitStableDigests(t, c, []uint32{0, 1, 2, 3}, o.CheckpointInterval, 15*time.Second)
	// The new-view proof reaches the healed replica through status
	// gossip, which runs on its own cadence — poll rather than snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if info := c.Replicas[3].Info(); info.View == 1 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("healed replica 3 settled in view %d, want 1", info.View)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("converged at digest %x", digest[:8])
}

// TestAdversaryStaleViewChangeReplay records a genuine view-change vote
// during a real view change, then re-injects it from a foreign endpoint
// after the group has settled in the new view. The replay authenticates
// (the signature is real) and must be rejected on protocol state alone:
// no further view change, no extra installs.
func TestAdversaryStaleViewChangeReplay(t *testing.T) {
	o := fastOpts()
	o.ViewChangeTimeout = 400 * time.Millisecond
	c, tracer := adversaryCluster(t, o, 75)
	defer c.Stop()

	tap := adversary.NewReplayer(wire.MTViewChange)
	replaceWithAdversary(t, c, 2, tap)

	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	invokeMust(t, cl, "inc")
	c.StopReplica(0) // depose the view-0 primary for real
	for i := 2; i <= 5; i++ {
		if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
			t.Fatalf("inc %d across the view change: %v", i, err)
		}
	}
	if got := len(tap.Captured()); got == 0 {
		t.Fatal("replayer captured no view-change votes during a real view change")
	}

	attacker, err := c.Net.Listen("attacker")
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	for round := 0; round < 3; round++ {
		for _, raw := range tap.Captured() {
			for _, id := range []uint32{1, 2, 3} {
				if err := attacker.Send(ReplicaAddr(id), raw); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// The replay must change nothing: service keeps running in view 1.
	for i := 6; i <= 9; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("inc"))
		if err != nil {
			t.Fatalf("inc %d after replay: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d", i, got)
		}
	}
	for _, id := range []uint32{1, 2, 3} {
		info := c.Replicas[id].Info()
		if info.View != 1 {
			t.Fatalf("replica %d view = %d after replay, want 1", id, info.View)
		}
		var installs int
		for _, e := range tracer(id).viewChanges() {
			if e.Phase == core.ViewChangeInstall {
				installs++
			}
		}
		if installs != 1 {
			t.Fatalf("replica %d installed %d views, want exactly 1 (replay must not re-trigger)", id, installs)
		}
	}
	waitStableDigests(t, c, []uint32{1, 2, 3}, o.CheckpointInterval, 10*time.Second)
}

// TestAdversaryForgedJoin floods the group with join requests whose
// envelope signature does not verify against the credential the body
// presents: JoinOp.PubKey carries keypair A's identity while the
// envelope is sealed by keypair B. §3.1 requires replicas to
// authenticate a join against the key embedded in its own body, so each
// forgery must die at that check — counted under the typed
// forged-join drop reason with zero protocol activity (nothing ordered,
// no liveness timers, no view change) while honest traffic keeps
// committing and the group converges on byte-identical digests.
func TestAdversaryForgedJoin(t *testing.T) {
	o := fastOpts()
	o.DynamicClients = true
	c, tracer := adversaryCluster(t, o, 78)
	defer c.Stop()

	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	invokeMust(t, cl, "inc")
	invokeMust(t, cl, "inc")

	presented, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	forger, err := c.Net.Listen("forger")
	if err != nil {
		t.Fatal(err)
	}
	defer forger.Close()

	const forgeries = 5
	for round := 0; round < forgeries; round++ {
		op := wire.JoinOp{
			Phase:   wire.JoinPhaseHello,
			Addr:    "forger",
			PubKey:  crypto.MarshalPublicKey(presented.Public()),
			Nonce:   0x4000 + uint64(round),
			AppAuth: []byte("mallory:sesame"),
		}
		req := &wire.Request{
			ClientID:  core.JoinSender,
			Timestamp: 0x4000 + uint64(round),
			Flags:     wire.FlagSystem | wire.FlagBig,
			Op:        wire.MarshalSysOp(wire.OpJoin, op.Marshal()),
		}
		env := &wire.Envelope{
			Type:    wire.MTRequest,
			Sender:  core.JoinSender,
			Payload: req.Marshal(),
		}
		env.SealSig(signer) // valid signature — by the WRONG key
		raw := env.Marshal()
		for id := uint32(0); id < uint32(len(c.Replicas)); id++ {
			if err := forger.Send(ReplicaAddr(id), raw); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The service must be entirely unimpressed: honest operations keep
	// executing in sequence throughout the forgery flood.
	for i := 3; i <= 12; i++ {
		resp := invokeMust(t, cl, "inc")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d during forged-join flood", i, got)
		}
	}

	// Every replica received every forgery directly (no relay involved),
	// so each must account all of them under the typed drop reason.
	deadline := time.Now().Add(5 * time.Second)
	for {
		counted := true
		for _, r := range c.Replicas {
			if r.Info().Stats.DroppedForgedJoins < forgeries {
				counted = false
			}
		}
		if counted {
			break
		}
		if time.Now().After(deadline) {
			for id, r := range c.Replicas {
				t.Logf("replica %d: DroppedForgedJoins=%d", id, r.Info().Stats.DroppedForgedJoins)
			}
			t.Fatal("forged joins were not all counted under the typed drop reason")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Zero protocol effect: no replica ordered a forgery or armed a
	// liveness timer for one — the group never left view 0.
	for id := uint32(0); id < uint32(len(c.Replicas)); id++ {
		info := c.Replicas[id].Info()
		if info.View != 0 {
			t.Fatalf("replica %d moved to view %d — forged joins must have zero protocol effect", id, info.View)
		}
		if info.Stats.JoinsExecuted != 0 {
			t.Fatalf("replica %d executed %d joins — a forgery was admitted", id, info.Stats.JoinsExecuted)
		}
		if got := tracer(id).viewChanges(); len(got) != 0 {
			t.Fatalf("replica %d recorded view-change events %+v, want none", id, got)
		}
	}
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, o.CheckpointInterval, 10*time.Second)
}

// TestAdversarySlowlorisClient opens a genuine session from a real
// provisioned identity and then only trickles garbage. The replicas
// must account the noise as malformed drops and keep serving the honest
// client at full correctness.
func TestAdversarySlowlorisClient(t *testing.T) {
	o := fastOpts()
	o.MaxClientSessions = 2
	c, _ := adversaryCluster(t, o, 76)
	defer c.Stop()

	atkConn, err := c.Net.Listen("slowloris")
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]string, len(c.Cfg.Replicas))
	for i := range targets {
		targets[i] = ReplicaAddr(uint32(i))
	}
	sl, err := adversary.NewSlowloris(atkConn, uint32(len(c.Cfg.Replicas))+1, c.ClientKey(1), targets, 2*time.Millisecond, 76)
	if err != nil {
		t.Fatal(err)
	}
	sl.Start()
	defer sl.Stop()

	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 10; i++ {
		resp := invokeMust(t, cl, "inc")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d under slowloris pressure", i, got)
		}
	}
	var malformed uint64
	for _, r := range c.Replicas {
		malformed += r.Info().Stats.DroppedMalformed
	}
	if malformed == 0 {
		t.Fatal("slowloris trickle was never counted as malformed drops")
	}
}

// TestAdversaryClientTimestampEquivocation drives a Byzantine CLIENT
// that, alongside every real request, sends each replica a validly
// signed copy of the same operation at a different stale timestamp —
// a different lie per replica. The per-client dedup window must absorb
// every variant below its floor: counters advance by exactly one per
// real call (no re-execution), no replica starts liveness timers for
// the replayed operations (zero view changes), and the group converges
// on a byte-identical stable digest.
func TestAdversaryClientTimestampEquivocation(t *testing.T) {
	o := fastOpts()
	// Signature mode: client requests are re-sealable by the interposer
	// (MAC-mode clients seal with private ephemeral session keys).
	o.UseMACs = false
	// AllBig multicast gives the per-destination equivocation its hook.
	o.AllBig = true
	o.ClientWindow = 4
	c, tracer := adversaryCluster(t, o, 97)
	defer c.Stop()

	clientID := uint32(len(c.Cfg.Replicas)) // pre-provisioned client 0
	ident := adversary.NewClientIdentity(clientID, c.ClientKey(0))
	eq := adversary.NewTimestampEquivocator(ident, o.ClientWindow)
	gate := adversary.NewGate(eq)
	cl, err := c.AdversaryClient(0, func(conn transport.Conn) transport.Conn {
		return adversary.Wrap(conn, gate)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Settle honestly first so the replicas' dedup floors exist (the
	// floor trails the highest EXECUTED timestamp; before any execution
	// a below-floor replay is indistinguishable from a fresh request),
	// then turn the equivocation on.
	for i := 1; i <= 5; i++ {
		resp := invokeMust(t, cl, "inc ctr")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("honest inc %d executed as %d", i, got)
		}
	}
	gate.Arm()

	// Every inc must bump the counter by exactly one: a dedup window
	// that admitted any stale variant would re-execute an earlier inc
	// and break the sequence.
	for i := 6; i <= 40; i++ {
		resp := invokeMust(t, cl, "inc ctr")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d executed as %d: a stale equivocated request was re-executed", i, got)
		}
	}
	if eq.Stale() == 0 {
		t.Fatal("equivocator injected no stale variants; the scenario tested nothing")
	}

	// Stale replays must be absorbed before the liveness machinery: a
	// backup that relayed one to the primary and armed its timer would
	// eventually depose a correct primary.
	for id := uint32(0); id < uint32(len(c.Replicas)); id++ {
		if vcs := tracer(id).viewChanges(); len(vcs) != 0 {
			t.Fatalf("replica %d saw view changes under client equivocation: %+v", id, vcs)
		}
	}

	// All four replicas settle on the same stable checkpoint digest.
	waitStableDigests(t, c, []uint32{0, 1, 2, 3}, 8, 10*time.Second)
	t.Logf("dedup absorbed %d stale variants", eq.Stale())
}
