package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/client"
)

// SoakOptions configures the restart-storm soak experiment.
type SoakOptions struct {
	// Episodes is how many scripted fault episodes to cycle (0 = 6).
	// Episodes rotate through the storm script: rolling restart of all
	// N replicas under load, simultaneous restart of every replica
	// (> f failures — survivable only because state is durable), and a
	// kill mid-WAL-append (torn tail injected into the victim's WAL).
	Episodes int
	// DataDir is the durable root shared by every episode (the whole
	// point: state survives the storms). Empty uses a temp directory
	// removed when the soak ends.
	DataDir string
}

// soakEpisodeKinds is the scripted fault rotation.
var soakEpisodeKinds = []string{"rolling_restart", "restart_all", "torn_wal_restart"}

// RunSoak cycles scripted restart storms over one durable cluster under
// closed-loop load, asserting after every episode that the group
// converges back to byte-identical stable digests, and records each
// episode's recovery latency (last restart → observed convergence).
// Any failed convergence or persist error fails the soak.
func RunSoak(opts ExperimentOptions, so SoakOptions) error {
	w := opts.out()
	episodes := so.Episodes
	if episodes < 1 {
		episodes = 6
	}
	dataDir := so.DataDir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "pbft-soak-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}

	// Inline request bodies (AllBig off): a restart storm that catches a
	// big request committed-by-digest strands the group if every body
	// copy was volatile and the client is gone — the §2.4 wedge's escape
	// (state transfer past the gap) needs at least one unwedged replica.
	// Small inline requests keep every agreed batch self-contained, so
	// the storms only ever test durability, not big-request liveness.
	o := buildOptions(LibConfig{Static: true, MACs: true, AllBig: false, Batch: true})
	o.CheckpointInterval = 16
	o.ViewChangeTimeout = 800 * time.Millisecond
	o.RequestTimeout = 300 * time.Millisecond
	o.StatusInterval = 50 * time.Millisecond

	loadClients := opts.NumClients
	if loadClients < 1 {
		loadClients = 4
	}
	cluster, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: loadClients,
		Seed:       opts.Seed,
		App:        NewCounterFactory(),
		Bandwidth:  938e6 / 8,
		Tracer:     opts.tracerFactory(),
		DataDir:    dataDir,
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	episodeDur := opts.Duration
	if episodeDur < 2*time.Second {
		episodeDur = 2 * time.Second
	}
	fmt.Fprintf(w, "Durability soak — restart storms over a durable cluster (%d episodes, %d clients, seed %d)\n",
		episodes, loadClients, opts.Seed)
	fmt.Fprintf(w, "%-20s %8s %8s %8s %14s\n", "Episode", "TPS", "ops", "errors", "recovery")

	type loadOut struct {
		res RunResult
		err error
	}
	for ep := 0; ep < episodes; ep++ {
		kind := soakEpisodeKinds[ep%len(soakEpisodeKinds)]
		done := make(chan loadOut, 1)
		go func() {
			res, err := cluster.RunClosedLoop(loadClients, &KeyedCounterWorkload{}, episodeDur, false)
			done <- loadOut{res, err}
		}()
		time.Sleep(episodeDur / 4)

		var restartAt time.Time
		switch kind {
		case "rolling_restart":
			for id := uint32(0); id < 4; id++ {
				cluster.StopReplica(id)
				time.Sleep(50 * time.Millisecond)
				if err := cluster.RestartReplica(id); err != nil {
					return fmt.Errorf("soak ep %d: rolling restart replica %d: %w", ep, id, err)
				}
				time.Sleep(150 * time.Millisecond)
			}
			restartAt = time.Now()
		case "restart_all":
			for id := uint32(0); id < 4; id++ {
				cluster.StopReplica(id)
			}
			time.Sleep(100 * time.Millisecond)
			restartAt = time.Now()
			for id := uint32(0); id < 4; id++ {
				if err := cluster.RestartReplica(id); err != nil {
					return fmt.Errorf("soak ep %d: restart replica %d: %w", ep, id, err)
				}
			}
		case "torn_wal_restart":
			const victim = 3
			cluster.StopReplica(victim)
			// kill -9 mid-append: garbage past the last commit record.
			walPath := filepath.Join(cluster.ReplicaDataDir(victim), "pages.wal")
			if f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
				torn := make([]byte, 300)
				for i := range torn {
					torn[i] = 0xA7
				}
				_, _ = f.Write(torn)
				_ = f.Close()
			}
			restartAt = time.Now()
			if err := cluster.RestartReplica(victim); err != nil {
				return fmt.Errorf("soak ep %d: torn-WAL restart: %w", ep, err)
			}
		}

		out := <-done
		if out.err != nil {
			return fmt.Errorf("soak ep %d (%s) load: %w", ep, kind, out.err)
		}
		if err := soakNudgeAndConverge(cluster, o.CheckpointInterval); err != nil {
			return fmt.Errorf("soak ep %d (%s): %w", ep, kind, err)
		}
		recovery := time.Since(restartAt)

		var restarts uint64
		for id := uint32(0); id < 4; id++ {
			st := cluster.Replicas[id].Info().Stats
			if !st.DurableNow {
				return fmt.Errorf("soak ep %d: replica %d lost durability", ep, id)
			}
			if st.PersistErrors != 0 {
				return fmt.Errorf("soak ep %d: replica %d latched %d persist errors", ep, id, st.PersistErrors)
			}
			restarts += st.Restarts
		}
		name := fmt.Sprintf("ep%d_%s", ep, kind)
		opts.record("soak", name, out.res, map[string]float64{
			"recovery_ms":    float64(recovery.Milliseconds()),
			"restarts_total": float64(restarts),
		})
		fmt.Fprintf(w, "%-20s %8.0f %8d %8d %14s\n", name, out.res.TPS(), out.res.Ops, out.res.Errors, recovery)
	}
	return nil
}

// soakNudgeAndConverge pushes fresh traffic — enough ops to move the
// stable checkpoint at least a full sync window past any laggard, so a
// replica stuck with a sub-window gap over a garbage-collected log can
// recover via state transfer — then polls until every replica reports
// the same stable checkpoint with a byte-identical digest.
func soakNudgeAndConverge(c *Cluster, k uint64) error {
	cl, err := c.Client(0, client.WithPipelineDepth(1))
	if err != nil {
		return err
	}
	defer cl.Close()
	nudge := int(2*k + 4)
	nudgeDeadline := time.Now().Add(45 * time.Second)
	for sent := 0; sent < nudge; {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := cl.Invoke(ctx, []byte(fmt.Sprintf("bump flush-%d", sent)))
		cancel()
		if err == nil {
			sent++
			continue
		}
		// Individual ops may time out while a storm-induced view change
		// settles; only a stalled group fails the episode.
		if time.Now().After(nudgeDeadline) {
			return fmt.Errorf("convergence nudge stalled at %d/%d ops (%v): %s",
				sent, nudge, err, soakClusterState(c))
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		infos := make([]uint64, 4)
		digests := make([][32]byte, 4)
		ok := true
		for id := uint32(0); id < 4; id++ {
			info := c.Replicas[id].Info()
			infos[id] = info.LastStable
			digests[id] = info.StableDigest
			if id > 0 && (infos[id] != infos[0] || digests[id] != digests[0]) {
				ok = false
			}
		}
		if ok && infos[0] > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("stable digests never converged: %s", soakClusterState(c))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// soakClusterState renders a one-line per-replica progress summary for
// soak failure messages.
func soakClusterState(c *Cluster) string {
	var b strings.Builder
	for id := uint32(0); id < 4; id++ {
		info := c.Replicas[id].Info()
		fmt.Fprintf(&b, "r%d{view=%d exec=%d stable=%d vc=%v sync=%v wedged=%v} ",
			id, info.View, info.LastExec, info.LastStable,
			info.InViewChange, info.Stats.SyncingNow, info.Stats.WedgedNow)
	}
	return strings.TrimSpace(b.String())
}
