package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/sqlstate"
)

// Workload produces the operation each closed-loop client repeats.
type Workload interface {
	// Op returns the next request body for client i, iteration n.
	Op(i, n int) []byte
	// Check inspects a reply (optional; return error to fail the run).
	Check(resp []byte) error
}

// NullWorkload is the paper's §4.1 null-operation workload: requests of a
// fixed size, echo replies.
type NullWorkload struct {
	// Size is the request body size in bytes (the paper sweeps 256,
	// 1024, 2048, 4096).
	Size int
}

// Op implements Workload.
func (w *NullWorkload) Op(i, n int) []byte { return make([]byte, w.Size) }

// Check implements Workload.
func (w *NullWorkload) Check([]byte) error { return nil }

// KeyedCounterWorkload drives the sharded execution engine: every request
// bumps one of Keys named counters (CounterApp "bump <name>"), spreading
// clients across the keyset so non-conflicting operations dominate. The
// "bump" reply is a fixed "OK", so throughput runs stay checkable under
// cross-client contention.
type KeyedCounterWorkload struct {
	// Keys is the number of distinct counter names (0 = 128).
	Keys int
}

func (w *KeyedCounterWorkload) keyCount() int {
	if w.Keys > 0 {
		return w.Keys
	}
	return 128
}

// Op implements Workload.
func (w *KeyedCounterWorkload) Op(i, n int) []byte {
	// Every client walks the keyset cyclically, phase-shifted by a
	// fixed stride per client index: clients at different phases mix
	// conflicting (same key, different clients) and non-conflicting
	// operations as the walks overlap.
	k := (i*7919 + n) % w.keyCount()
	return []byte(fmt.Sprintf("bump key-%d", k))
}

// Check implements Workload.
func (w *KeyedCounterWorkload) Check(resp []byte) error {
	if string(resp) != "OK" {
		return fmt.Errorf("harness: bump answered %q", resp)
	}
	return nil
}

// SQLInsertWorkload is the §4.2 workload: one row inserted per request —
// key, value, the agreed timestamp and an agreed random value (the paper
// added the latter two to check replies are identical across replicas).
type SQLInsertWorkload struct{}

// Op implements Workload.
func (w *SQLInsertWorkload) Op(i, n int) []byte {
	return sqlstate.EncodeExec(
		"INSERT INTO votes (voter, vote, ts, rnd) VALUES (?, ?, now(), random())",
		sqldb.Text(fmt.Sprintf("voter-%d-%d", i, n)),
		sqldb.Text("yes"),
	)
}

// Check implements Workload.
func (w *SQLInsertWorkload) Check(resp []byte) error {
	r, err := sqlstate.DecodeResponse(resp)
	if err != nil {
		return err
	}
	if r.Result == nil || r.Result.RowsAffected != 1 {
		return fmt.Errorf("harness: unexpected insert response %+v", r)
	}
	return nil
}

// VotesSchema is the schema the SQL experiments initialize.
var VotesSchema = []string{
	"CREATE TABLE IF NOT EXISTS votes (voter TEXT, vote TEXT, ts INTEGER, rnd INTEGER)",
}

// NewSQLFactory builds the replicated SQL application per replica
// (§3.2): durable selects ACID mode; diskRoot hosts journals and disk
// images (one subdirectory per replica).
func NewSQLFactory(durable bool, diskRoot string) AppFactory {
	return func(id uint32) core.Application {
		diskDir := ""
		if diskRoot != "" {
			diskDir = fmt.Sprintf("%s/replica-%d", diskRoot, id)
		}
		return sqlstate.NewApp(sqlstate.Options{
			DiskDir: diskDir,
			Durable: durable,
			InitSQL: VotesSchema,
		})
	}
}

// RunResult reports one throughput measurement.
type RunResult struct {
	Ops      uint64
	Duration time.Duration
	Errors   uint64
}

// TPS returns operations per second.
func (r RunResult) TPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// RunClosedLoop drives numClients closed-loop clients (one outstanding
// request each, like the paper's measurement clients) for the given
// duration and returns the aggregate throughput. Clients joined
// dynamically are used when dynamic is true (§3.1 overhead measurement).
func (c *Cluster) RunClosedLoop(numClients int, w Workload, duration time.Duration, dynamic bool) (RunResult, error) {
	return c.RunPipelined(numClients, 1, w, duration, dynamic)
}

// RunPipelined drives numClients load-generating clients, each keeping
// depth requests in flight through one pipelined client (depth 1 is the
// paper's closed-loop model). One goroutine per in-flight slot submits
// through the shared client; the client's own window provides the
// backpressure.
func (c *Cluster) RunPipelined(numClients, depth int, w Workload, duration time.Duration, dynamic bool) (RunResult, error) {
	if depth < 1 {
		depth = 1
	}
	clients := make([]*client.Client, numClients)
	for i := 0; i < numClients; i++ {
		var cl *client.Client
		var err error
		if dynamic {
			cl, err = c.DynamicClient(fmt.Sprintf("dyn-load-%d", i), client.WithPipelineDepth(depth))
			if err == nil {
				err = cl.Join(context.Background(), []byte(fmt.Sprintf("loaduser%d:sesame", i)))
			}
		} else {
			cl, err = c.Client(i, client.WithPipelineDepth(depth))
		}
		if err != nil {
			for _, done := range clients[:i] {
				if done != nil {
					done.Close()
				}
			}
			return RunResult{}, err
		}
		clients[i] = cl
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	var ops, errs atomic.Uint64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	start := time.Now()
	for i, cl := range clients {
		for d := 0; d < depth; d++ {
			wg.Add(1)
			go func(i, d int, cl *client.Client) {
				defer wg.Done()
				for n := d; ; n += depth {
					if ctx.Err() != nil {
						return
					}
					resp, err := cl.Invoke(ctx, w.Op(i, n))
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						errs.Add(1)
						continue
					}
					if err := w.Check(resp); err != nil {
						errs.Add(1)
						continue
					}
					ops.Add(1)
				}
			}(i, d, cl)
		}
	}
	time.Sleep(duration)
	cancel()
	wg.Wait()
	elapsed := time.Since(start)
	return RunResult{Ops: ops.Load(), Duration: elapsed, Errors: errs.Load()}, nil
}
