// Package harness assembles in-process PBFT clusters over the simulated
// network, generates workloads, and regenerates the paper's tables and
// figures (§4). It is the engine behind cmd/pbft-bench, the root-level
// benchmarks, and the integration tests.
package harness

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"repro/internal/adversary"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// AppFactory builds one application instance per replica.
type AppFactory func(replica uint32) core.Application

// ClusterOptions configures an in-process cluster.
type ClusterOptions struct {
	Opts       core.Options
	NumClients int
	Seed       int64
	App        AppFactory
	// Bandwidth models per-node egress speed in bytes/second
	// (0 = infinite). The experiments use the paper's measured
	// 938 Mbit/s.
	Bandwidth float64
	// Tracer, when set, builds one event tracer per replica (a factory
	// may return the same aggregating instance for every id — the
	// tracer hooks must then be safe for concurrent use). Restarted
	// replicas get a fresh factory call.
	Tracer func(replica uint32) core.Tracer
	// Recorder, when set, builds one request-lifecycle flight recorder
	// per replica (installed via Options.Recorder; nil returns leave
	// that replica untraced). Restarted replicas get a fresh factory
	// call, so a recorder never spans two replica incarnations.
	Recorder func(replica uint32) *trace.Recorder
	// ClientRecvBuffer sizes each client endpoint's inbound queue
	// (0 = the transport default). The swarm experiment runs thousands
	// of client endpoints; the default full-size queue per endpoint
	// would cost gigabytes of eagerly allocated channel buffers.
	ClientRecvBuffer int
	// DataDir makes every replica durable: replica id persists under
	// DataDir/replica-<id> (WAL-backed pages + manifest). The directory
	// survives StopReplica/RestartReplica, so a restarted replica
	// recovers from disk and fetches only the delta via state transfer.
	// Empty keeps the cluster diskless.
	DataDir string
}

// Cluster is an in-process PBFT deployment: N replicas and a set of
// pre-provisioned clients over one simulated network.
type Cluster struct {
	Net      *transport.Network
	Cfg      *core.Config
	Replicas []*core.Replica
	Apps     []core.Application

	replicaKeys []*crypto.KeyPair
	clientKeys  []*crypto.KeyPair
	conns       []transport.Conn // per-replica endpoint, for crash simulation
	appFactory  AppFactory
	tracerFor   func(replica uint32) core.Tracer
	recorderFor func(replica uint32) *trace.Recorder
	rng         *rand.Rand
	clientRecv  int    // client endpoint inbound queue depth (0 = default)
	dataDir     string // durable root; "" = diskless
}

// ReplicaAddr returns the network address of replica id.
func ReplicaAddr(id uint32) string { return fmt.Sprintf("replica-%d", id) }

// ClientAddr returns the network address of pre-provisioned client i.
func ClientAddr(i int) string { return fmt.Sprintf("client-%d", i) }

// NewCluster builds and starts a cluster. Stop releases it.
func NewCluster(o ClusterOptions) (*Cluster, error) {
	if o.App == nil {
		return nil, fmt.Errorf("harness: ClusterOptions.App is required")
	}
	n := 3*o.Opts.F + 1
	c := &Cluster{
		Net:         transport.NewNetwork(o.Seed),
		appFactory:  o.App,
		tracerFor:   o.Tracer,
		recorderFor: o.Recorder,
		rng:         rand.New(rand.NewSource(o.Seed + 1)),
		clientRecv:  o.ClientRecvBuffer,
		dataDir:     o.DataDir,
	}
	if o.Bandwidth > 0 {
		c.Net.SetBandwidth(o.Bandwidth)
	}
	cfg := &core.Config{Opts: o.Opts}
	c.replicaKeys = make([]*crypto.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			return nil, err
		}
		c.replicaKeys[i] = kp
		cfg.Replicas = append(cfg.Replicas, core.NodeInfo{
			ID:     uint32(i),
			Addr:   ReplicaAddr(uint32(i)),
			PubKey: kp.Public(),
		})
	}
	c.clientKeys = make([]*crypto.KeyPair, o.NumClients)
	for i := 0; i < o.NumClients; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			return nil, err
		}
		c.clientKeys[i] = kp
		cfg.Clients = append(cfg.Clients, core.NodeInfo{
			ID:     uint32(n + i),
			Addr:   ClientAddr(i),
			PubKey: kp.Public(),
		})
	}
	c.Cfg = cfg

	c.Replicas = make([]*core.Replica, n)
	c.Apps = make([]core.Application, n)
	c.conns = make([]transport.Conn, n)
	for i := 0; i < n; i++ {
		if err := c.startReplica(uint32(i)); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// startReplica creates, wires and starts replica id through the
// context-driven lifecycle (Run in a background goroutine).
func (c *Cluster) startReplica(id uint32) error {
	return c.startWrapped(id, nil)
}

// StartAdversary starts replica id with its transport connection passed
// through wrap — the hook the adversary package's scripted behaviors
// attach through. The replica runs unmodified protocol code; only its
// view of the network is filtered. The slot must be vacant (StopReplica
// first when repurposing a running replica).
func (c *Cluster) StartAdversary(id uint32, wrap func(transport.Conn) transport.Conn) error {
	if c.Replicas[id] != nil {
		return fmt.Errorf("harness: replica %d is running; stop it before starting an adversary", id)
	}
	return c.startWrapped(id, wrap)
}

// startWrapped is the shared start path: listen, optionally interpose
// on the conn, build and run the replica.
func (c *Cluster) startWrapped(id uint32, wrap func(transport.Conn) transport.Conn) error {
	mc, err := c.Net.Listen(ReplicaAddr(id))
	if err != nil {
		return err
	}
	var conn transport.Conn = mc
	if wrap != nil {
		conn = wrap(conn)
	}
	app := c.appFactory(id)
	cfg := c.Cfg
	if c.tracerFor != nil || c.recorderFor != nil || c.dataDir != "" {
		// Per-replica tracer/recorder/data dir: shallow-copy the shared
		// config (the slices inside are read-only) and install this
		// replica's instances.
		clone := *c.Cfg
		if c.tracerFor != nil {
			clone.Opts.Tracer = c.tracerFor(id)
		}
		if c.recorderFor != nil {
			clone.Opts.Recorder = c.recorderFor(id)
		}
		if c.dataDir != "" {
			clone.Opts.DataDir = c.ReplicaDataDir(id)
		}
		cfg = &clone
	}
	rep, err := core.NewReplica(cfg, id, c.replicaKeys[id], conn, app)
	if err != nil {
		_ = conn.Close()
		return err
	}
	c.Replicas[id] = rep
	c.Apps[id] = app
	c.conns[id] = conn
	go func() { _ = rep.Run(context.Background()) }()
	return nil
}

// StopReplica halts one replica as a simulated CRASH: its volatile state
// is gone and — crucially for the fault-injection suite — nothing leaves
// the machine after the crash point. The connection is severed first, so
// the replica's teardown cannot drain, reply, or gossip on the way down
// (a graceful drain would weaken the fault model to fail-stop-after-
// flush). For a graceful stop, call Shutdown on the replica directly.
func (c *Cluster) StopReplica(id uint32) {
	if c.Replicas[id] != nil {
		_ = c.conns[id].Close()
		_ = c.Replicas[id].Shutdown(context.Background())
		c.Replicas[id] = nil
		c.Apps[id] = nil
	}
}

// RestartReplica brings a stopped replica back with fresh volatile
// state; it recovers via checkpoint proofs and state transfer. With
// ClusterOptions.DataDir set, the replica's on-disk state is preserved
// across the restart: the new incarnation recovers from its WAL-backed
// pages and manifest and fetches only the delta.
func (c *Cluster) RestartReplica(id uint32) error {
	if c.Replicas[id] != nil {
		c.StopReplica(id)
	}
	return c.startReplica(id)
}

// ReplicaDataDir returns replica id's durable directory ("" when the
// cluster is diskless). Chaos scenarios use it to corrupt on-disk
// state between incarnations (kill -9 mid-WAL-append).
func (c *Cluster) ReplicaDataDir(id uint32) string {
	if c.dataDir == "" {
		return ""
	}
	return filepath.Join(c.dataDir, fmt.Sprintf("replica-%d", id))
}

// Client builds the i-th pre-provisioned client. The caller owns it (and
// must Close it).
func (c *Cluster) Client(i int, opts ...client.Option) (*client.Client, error) {
	conn, err := c.Net.ListenBuffered(ClientAddr(i), c.clientRecv)
	if err != nil {
		return nil, err
	}
	cl, err := client.New(c.Cfg, uint32(len(c.Cfg.Replicas)+i), c.clientKeys[i], conn, opts...)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return cl, nil
}

// AdversaryClient builds the i-th pre-provisioned client with its
// transport connection passed through wrap — the client-side mirror of
// StartAdversary. The client runs unmodified library code; the wrapper
// tampers with its traffic on the way out (equivocation, replay, drops).
func (c *Cluster) AdversaryClient(i int, wrap func(transport.Conn) transport.Conn, opts ...client.Option) (*client.Client, error) {
	mc, err := c.Net.ListenBuffered(ClientAddr(i), c.clientRecv)
	if err != nil {
		return nil, err
	}
	var conn transport.Conn = mc
	if wrap != nil {
		conn = wrap(conn)
	}
	cl, err := client.New(c.Cfg, uint32(len(c.Cfg.Replicas)+i), c.clientKeys[i], conn, opts...)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return cl, nil
}

// DynamicClient builds an un-admitted client that must Join (§3.1).
func (c *Cluster) DynamicClient(addr string, opts ...client.Option) (*client.Client, error) {
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		return nil, err
	}
	conn, err := c.Net.Listen(addr)
	if err != nil {
		return nil, err
	}
	cl, err := client.NewDynamic(c.Cfg, kp, conn, opts...)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return cl, nil
}

// ReplicaKey exposes a replica's key material (fault-injection tests
// model Byzantine replicas that hold real keys).
func (c *Cluster) ReplicaKey(id uint32) *crypto.KeyPair { return c.replicaKeys[id] }

// ClientKey exposes pre-provisioned client i's key material (slowloris
// attackers hold a real client identity).
func (c *Cluster) ClientKey(i int) *crypto.KeyPair { return c.clientKeys[i] }

// ReplicaIdentity builds the adversary-package sealing identity for
// replica id: the real keys, usable to re-authenticate tampered
// messages.
func (c *Cluster) ReplicaIdentity(id uint32) (*adversary.Identity, error) {
	pubs := make([]crypto.PublicKey, len(c.Cfg.Replicas))
	for i, ri := range c.Cfg.Replicas {
		pubs[i] = ri.PubKey
	}
	return adversary.NewIdentity(id, c.replicaKeys[id], pubs, c.Cfg.Opts.UseMACs)
}

// SealAsReplica authenticates an envelope exactly as replica id would
// (authenticator in MAC mode, signature otherwise) and returns the wire
// bytes. Byzantine-replica tests use it to re-authenticate mutated
// messages.
func (c *Cluster) SealAsReplica(id uint32, env *wire.Envelope) []byte {
	ident, err := c.ReplicaIdentity(id)
	if err != nil {
		return nil
	}
	return ident.Seal(env)
}

// Stop halts every replica and tears the network down.
func (c *Cluster) Stop() {
	for i := range c.Replicas {
		if c.Replicas[i] != nil {
			_ = c.Replicas[i].Shutdown(context.Background())
			c.Replicas[i] = nil
		}
	}
	_ = c.Net.Close()
}

// WaitConverged polls until every live replica executed at least seq —
// scheduled by the protocol loop AND applied by the execution engine
// (with asynchronous reaping, LastExec advances at scheduling time, so a
// quiesced engine is what makes direct region reads race-free), or
// the timeout expires; it returns the highest LastExec seen per replica.
func (c *Cluster) WaitConverged(seq uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, r := range c.Replicas {
			if r == nil {
				continue
			}
			info := r.Info()
			if info.LastExec < seq || info.ExecQueueDepth > 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
