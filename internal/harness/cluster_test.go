package harness

import (
	"context"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/core"
)

// fastOpts returns small-scale options suitable for tests.
func fastOpts() core.Options {
	o := core.DefaultOptions()
	o.CheckpointInterval = 8
	o.StateSize = 1 << 20
	o.PageSize = 256
	o.ViewChangeTimeout = time.Second
	o.StatusInterval = 50 * time.Millisecond
	o.HelloInterval = 100 * time.Millisecond
	o.RequestTimeout = 300 * time.Millisecond
	return o
}

func TestClusterEchoRoundTrip(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 1,
		Seed:       1,
		App:        NewEchoFactory(32),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 5; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("ping"))
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if len(resp) != 32 {
			t.Fatalf("invoke %d: got %d-byte reply, want 32", i, len(resp))
		}
	}
}

func TestClusterCounterSequential(t *testing.T) {
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: 1,
		Seed:       2,
		App:        NewCounterFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 20; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("inc"))
		if err != nil {
			t.Fatalf("inc %d: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d: counter = %d", i, got)
		}
	}
	resp, err := cl.InvokeReadOnly(context.Background(), []byte("get"))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(resp); got != 20 {
		t.Fatalf("read-only get = %d, want 20", got)
	}
}
