package harness

import (
	"context"
	"encoding/binary"
	"testing"
	"time"
)

func partitionedCluster(t *testing.T, groups, clients int) *PartitionedCluster {
	t.Helper()
	pc, err := NewPartitionedCluster(PartitionedClusterOptions{
		Groups:          groups,
		Opts:            fastOpts(),
		ClientsPerGroup: clients,
		Seed:            411,
		App:             NewCounterFactory(),
		Keys:            CounterKeys,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pc.Stop)
	return pc
}

// TestPartitionedClusterFanOut exercises the client contract end to
// end: unkeyed writes land on the home group, keyed writes land on the
// owning group, and an unkeyed read fans out to every group, observing
// each group's independent history.
func TestPartitionedClusterFanOut(t *testing.T) {
	pc := partitionedCluster(t, 2, 1)
	cl, err := pc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Unkeyed inc is a barrier op: no keyset, so it routes to the home
	// group (group 0) and bumps ITS unnamed counter.
	for want := uint64(1); want <= 3; want++ {
		resp, err := cl.Invoke(ctx, []byte("inc"))
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint64(resp); got != want {
			t.Fatalf("home-group inc %d executed as %d", want, got)
		}
	}
	// Drive group 1 directly through its session: its unnamed counter
	// advances independently of group 0's.
	for want := uint64(1); want <= 2; want++ {
		resp, err := cl.Session(1).Invoke(ctx, []byte("inc"))
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint64(resp); got != want {
			t.Fatalf("group-1 inc %d executed as %d", want, got)
		}
	}

	// Unkeyed read: fans out to all groups and reports each group's own
	// value — 3 on the home group, 2 on its sibling.
	results, err := cl.FanOutReadOnly(ctx, []byte("get"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("unkeyed fan-out hit %d groups, want 2", len(results))
	}
	want := []uint64{3, 2}
	for i, r := range results {
		if r.Group != i {
			t.Fatalf("fan-out result %d came from group %d", i, r.Group)
		}
		if got := binary.BigEndian.Uint64(r.Resp); got != want[i] {
			t.Fatalf("group %d reads %d, want %d", r.Group, got, want[i])
		}
	}

	// Keyed ops: the router's placement and the executed state agree —
	// the same key always increments the same group's counter.
	op := []byte("inc part-key")
	g, err := pc.Router().Route(op)
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 3; want++ {
		resp, err := cl.Invoke(ctx, op)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint64(resp); got != want {
			t.Fatalf("keyed inc %d executed as %d", want, got)
		}
	}
	// Reading through the owning group's session sees all three incs;
	// the sibling group never saw the key.
	resp, err := cl.Session(g).Invoke(ctx, []byte("get part-key"))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(resp); got != 3 {
		t.Fatalf("owning group %d reads %d, want 3", g, got)
	}
	resp, err = cl.Session(1-g).Invoke(ctx, []byte("get part-key"))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(resp); got != 0 {
		t.Fatalf("sibling group %d reads %d, want 0", 1-g, got)
	}
}

// TestPartitionDigestIndependentOfSiblingLoad is the determinism check
// behind the partition contract: a group's StableDigest is a function of
// its own ordered history only. Load on a sibling group must not move
// it.
func TestPartitionDigestIndependentOfSiblingLoad(t *testing.T) {
	pc := partitionedCluster(t, 2, 1)
	cl, err := pc.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Build history on group 0 and capture its converged digest
	// (fastOpts checkpoints every 8 seqs; 12 serial ops cross at least
	// one boundary).
	for i := 0; i < 12; i++ {
		if _, err := cl.Session(0).Invoke(ctx, []byte("inc a")); err != nil {
			t.Fatal(err)
		}
	}
	before, err := pc.ConvergedDigest(0, 8, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Hammer the sibling.
	for i := 0; i < 20; i++ {
		if _, err := cl.Session(1).Invoke(ctx, []byte("inc b")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pc.ConvergedDigest(1, 8, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Group 0's stable digest is exactly where it was.
	after, err := pc.ConvergedDigest(0, 8, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("group 0 digest moved under sibling-group load: %x != %x", before[:8], after[:8])
	}
}
