package harness

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/state"
)

// skewedCounterApp is a CounterApp whose increments add a different
// amount — a deterministic-but-wrong application, modeling state
// corruption or a diverging software version.
type skewedCounterApp struct {
	region *state.Region
	step   uint64
}

func (a *skewedCounterApp) AttachState(region *state.Region) { a.region = region }

func (a *skewedCounterApp) Execute(op []byte, nd core.NonDetValues, readOnly bool) []byte {
	var buf [8]byte
	if _, err := a.region.ReadAt(buf[:], 0); err != nil {
		return nil
	}
	v := binary.BigEndian.Uint64(buf[:])
	if string(op) == "inc" && !readOnly {
		v += a.step
		binary.BigEndian.PutUint64(buf[:], v)
		if _, err := a.region.WriteAt(buf[:], 0); err != nil {
			return nil
		}
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, v)
	return out
}

// TestDivergedReplicaDetectsAndResyncs exercises the foreign-checkpoint
// path: replica 3 runs a skewed application, so its checkpoint digests
// disagree with the quorum. When 2f+1 matching votes for a digest it does
// not have arrive, it must recognize its own divergence and state-transfer
// to the group's state.
func TestDivergedReplicaDetectsAndResyncs(t *testing.T) {
	o := fastOpts()
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       60,
		App: func(id uint32) core.Application {
			step := uint64(1)
			if id == 3 {
				step = 2 // replica 3 diverges deterministically
			}
			return &skewedCounterApp{step: step}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Drive past a checkpoint: the three correct replicas agree; replica
	// 3's digest is foreign to them and theirs is foreign to it.
	for i := 1; i <= int(o.CheckpointInterval)+4; i++ {
		resp := invokeMust(t, cl, "inc")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d: quorum answered %d (correct replicas must win)", i, got)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info := c.Replicas[3].Info()
		if info.Stats.StateTransfers > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("diverged replica never state-transferred: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
