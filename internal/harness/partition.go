package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/transport"
)

// PartitionedClusterOptions configures a multi-group deployment: G
// independent clusters booted from one topology spec, with a shared
// partition table in front.
type PartitionedClusterOptions struct {
	// Groups is the number of independent PBFT groups.
	Groups int
	// Opts configures every replica of every group identically.
	Opts core.Options
	// ClientsPerGroup is how many client identities each group
	// pre-provisions. A partitioned client with index i holds identity
	// i in every group, so this bounds the partitioned-client count.
	ClientsPerGroup int
	// Seed derives each group's network seed (group g uses Seed+g*7919),
	// keeping groups distinct but the whole deployment reproducible.
	Seed int64
	// App builds one application instance per replica (shared across
	// groups; each group's replicas get their own instances).
	App AppFactory
	// Keys is the placement keyset function installed in the router —
	// the same Sharder-shaped keysets the exec engine uses.
	Keys partition.KeysFunc
	// Bandwidth models per-node egress in bytes/second (0 = infinite).
	Bandwidth float64
	// LinkDelay adds a symmetric per-message latency inside each group's
	// network, modeling the LAN the paper measures instead of the
	// zero-latency in-process transport (where a 1-CPU host would make
	// every group's agreement round contend on compute instead of
	// waiting on links, hiding the scaling partitioning buys).
	LinkDelay time.Duration
	// Tracer, when set, builds one event tracer per (group, replica).
	Tracer func(group int, replica uint32) core.Tracer
	// RouterOpts configure the shared router (home group, reject
	// policy).
	RouterOpts []partition.RouterOption
}

// PartitionedCluster is G independent in-process PBFT groups — separate
// simulated networks, separate key material, separate histories — behind
// one partition router. It is the harness counterpart of a production
// multi-group deployment: nothing is shared between groups except the
// routing table.
type PartitionedCluster struct {
	Groups []*Cluster
	router *partition.Router
}

// NewPartitionedCluster boots all groups. Stop releases them.
func NewPartitionedCluster(o PartitionedClusterOptions) (*PartitionedCluster, error) {
	if o.Groups < 1 {
		return nil, fmt.Errorf("harness: need at least one group, got %d", o.Groups)
	}
	router, err := partition.NewRouter(partition.Uniform(o.Groups), o.Keys, o.RouterOpts...)
	if err != nil {
		return nil, err
	}
	pc := &PartitionedCluster{router: router}
	for g := 0; g < o.Groups; g++ {
		var tracer func(uint32) core.Tracer
		if o.Tracer != nil {
			group := g
			tracer = func(id uint32) core.Tracer { return o.Tracer(group, id) }
		}
		c, err := NewCluster(ClusterOptions{
			Opts:       o.Opts,
			NumClients: o.ClientsPerGroup,
			Seed:       o.Seed + int64(g)*7919,
			App:        o.App,
			Bandwidth:  o.Bandwidth,
			Tracer:     tracer,
		})
		if err != nil {
			pc.Stop()
			return nil, fmt.Errorf("harness: group %d: %w", g, err)
		}
		if o.LinkDelay > 0 {
			c.Net.SetDefaultFaults(transport.Faults{Delay: o.LinkDelay})
		}
		pc.Groups = append(pc.Groups, c)
	}
	return pc, nil
}

// Router returns the shared routing layer.
func (pc *PartitionedCluster) Router() *partition.Router { return pc.router }

// Client builds partitioned client i: one pipelined session per group,
// all holding identity i, routed through the shared table. The caller
// owns it (and must Close it).
func (pc *PartitionedCluster) Client(i int, copts ...client.Option) (*partition.Client, error) {
	sessions := make([]*client.Client, len(pc.Groups))
	for g, c := range pc.Groups {
		s, err := c.Client(i, copts...)
		if err != nil {
			for _, done := range sessions[:g] {
				_ = done.Close()
			}
			return nil, fmt.Errorf("harness: group %d session: %w", g, err)
		}
		sessions[g] = s
	}
	return partition.NewClient(pc.router, sessions)
}

// Stop releases every group.
func (pc *PartitionedCluster) Stop() {
	for _, c := range pc.Groups {
		if c != nil {
			c.Stop()
		}
	}
}

// ConvergedDigest waits until every replica of group g reports the same
// stable checkpoint at sequence ≥ minStable with byte-identical
// StableDigest, and returns that digest — the harness-level statement
// that the group's history converged.
func (pc *PartitionedCluster) ConvergedDigest(g int, minStable uint64, timeout time.Duration) ([32]byte, error) {
	c := pc.Groups[g]
	deadline := time.Now().Add(timeout)
	for {
		infos := make([]core.Info, len(c.Replicas))
		ok := true
		for i, rep := range c.Replicas {
			if rep == nil {
				return [32]byte{}, fmt.Errorf("harness: group %d replica %d not running", g, i)
			}
			infos[i] = rep.Info()
			if infos[i].LastStable < minStable || infos[i].LastStable != infos[0].LastStable ||
				infos[i].StableDigest != infos[0].StableDigest {
				ok = false
			}
		}
		if ok {
			return infos[0].StableDigest, nil
		}
		if time.Now().After(deadline) {
			state := make([]string, len(infos))
			for i, in := range infos {
				state[i] = fmt.Sprintf("r%d stable=%d digest=%x", i, in.LastStable, in.StableDigest[:4])
			}
			return [32]byte{}, fmt.Errorf("harness: group %d did not converge past %d: %v", g, minStable, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// PartitionedRunResult is one partitioned load run: the aggregate
// numbers plus the per-group operation tally (how the router spread the
// workload).
type PartitionedRunResult struct {
	RunResult
	// GroupOps counts operations completed per group.
	GroupOps []uint64
}

// RunPartitioned drives numClients partitioned clients, each keeping
// depth requests in flight, against the whole deployment. Sessions are
// primed first (one fan-out read per client, so every client holds a
// live MAC session with every group before the clock starts — the first
// write racing its own HELLO through the concurrent ingress pipeline
// would otherwise wedge replicas on missing request bodies), the
// workload then runs unmeasured for warmup, and only the final duration
// window is counted. Every operation routes through the partition table;
// per-group tallies come back in GroupOps.
func (pc *PartitionedCluster) RunPartitioned(numClients, depth int, w Workload, warmup, duration time.Duration) (PartitionedRunResult, error) {
	if depth < 1 {
		depth = 1
	}
	clients := make([]*partition.Client, numClients)
	for i := 0; i < numClients; i++ {
		cl, err := pc.Client(i, client.WithPipelineDepth(depth))
		if err != nil {
			for _, done := range clients[:i] {
				_ = done.Close()
			}
			return PartitionedRunResult{}, err
		}
		clients[i] = cl
	}
	defer func() {
		for _, cl := range clients {
			_ = cl.Close()
		}
	}()
	if err := primeSessions(clients); err != nil {
		return PartitionedRunResult{}, err
	}

	var ops, errs atomic.Uint64
	groupOps := make([]atomic.Uint64, pc.router.Groups())
	var measuring atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i, cl := range clients {
		for d := 0; d < depth; d++ {
			wg.Add(1)
			go func(i, d int, cl *partition.Client) {
				defer wg.Done()
				for n := d; ; n += depth {
					if ctx.Err() != nil {
						return
					}
					op := w.Op(i, n)
					g, err := cl.Router().Route(op)
					if err != nil {
						errs.Add(1)
						continue
					}
					resp, err := cl.Invoke(ctx, op)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						errs.Add(1)
						continue
					}
					if err := w.Check(resp); err != nil {
						errs.Add(1)
						continue
					}
					if measuring.Load() {
						ops.Add(1)
						groupOps[g].Add(1)
					}
				}
			}(i, d, cl)
		}
	}
	time.Sleep(warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(duration)
	elapsed := time.Since(start)
	cancel()
	wg.Wait()
	res := PartitionedRunResult{
		RunResult: RunResult{Ops: ops.Load(), Duration: elapsed, Errors: errs.Load()},
		GroupOps:  make([]uint64, len(groupOps)),
	}
	for g := range groupOps {
		res.GroupOps[g] = groupOps[g].Load()
	}
	return res, nil
}

// primeSessions issues one unkeyed fan-out read per client, retrying
// until every group answered: afterwards each session holds established
// MAC keys on every replica, so measured writes cannot race their own
// session establishment.
func primeSessions(clients []*partition.Client) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *partition.Client) {
			defer wg.Done()
			for {
				if _, err := cl.FanOutReadOnly(ctx, []byte("get")); err == nil {
					return
				} else if ctx.Err() != nil {
					errs[i] = fmt.Errorf("harness: priming client %d: %w", i, err)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Converge drives every group to a fresh stable checkpoint after a load
// run and waits until all of its replicas report byte-identical
// StableDigest there, returning the per-group digests. The flush
// traffic (flushOp must be an op the application accepts) pushes each
// group past its next checkpoint boundary so that even a replica wedged
// on a missing request body catches up via state transfer — convergence
// is asserted over every replica, not a quorum.
func (pc *PartitionedCluster) Converge(flushOp []byte, timeout time.Duration) ([][32]byte, error) {
	digests := make([][32]byte, len(pc.Groups))
	errs := make([]error, len(pc.Groups))
	var wg sync.WaitGroup
	for g := range pc.Groups {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			digests[g], errs[g] = pc.convergeGroup(g, flushOp, timeout)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return digests, nil
}

func (pc *PartitionedCluster) convergeGroup(g int, flushOp []byte, timeout time.Duration) ([32]byte, error) {
	c := pc.Groups[g]
	interval := c.Cfg.Opts.CheckpointInterval
	var target uint64
	for _, rep := range c.Replicas {
		if in := rep.Info(); in.LastExec > target {
			target = in.LastExec
		}
	}
	target = (target/interval + 1) * interval

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cl, err := c.Client(0)
	if err != nil {
		return [32]byte{}, fmt.Errorf("harness: group %d flush client: %w", g, err)
	}
	defer cl.Close()
	for {
		if digest, ok := pc.groupConverged(g, target); ok {
			return digest, nil
		}
		if ctx.Err() != nil {
			state := make([]string, len(c.Replicas))
			for i, rep := range c.Replicas {
				in := rep.Info()
				state[i] = fmt.Sprintf("r%d exec=%d stable=%d digest=%x", i, in.LastExec, in.LastStable, in.StableDigest[:4])
			}
			return [32]byte{}, fmt.Errorf("harness: group %d did not converge at checkpoint %d: %v", g, target, state)
		}
		_, _ = cl.Invoke(ctx, flushOp)
	}
}

// groupConverged reports whether every replica of group g sits at the
// same stable checkpoint ≥ target with byte-identical digest.
func (pc *PartitionedCluster) groupConverged(g int, target uint64) ([32]byte, bool) {
	c := pc.Groups[g]
	var first core.Info
	for i, rep := range c.Replicas {
		if rep == nil {
			return [32]byte{}, false
		}
		in := rep.Info()
		if i == 0 {
			first = in
		}
		if in.LastStable < target || in.LastStable != first.LastStable || in.StableDigest != first.StableDigest {
			return [32]byte{}, false
		}
	}
	return first.StableDigest, true
}

// DefaultPartitionLinkDelay is the per-message latency the partitions
// experiment injects inside each group: agreement rounds become
// link-bound (as on the paper's LAN testbed) so the aggregate-TPS curve
// measures what partitioning buys, not how many cores the bench host
// has.
const DefaultPartitionLinkDelay = 2 * time.Millisecond

// RunPartitions measures the aggregate-TPS-vs-groups scaling curve: the
// same keyed workload offered to 1, 2, 4... independent groups behind
// the partition router. The client population scales with the group
// count (opts.NumClients per group — each partition serves its own
// users), so the curve answers the capacity question: how much more
// offered load does the deployment absorb with G groups?
//
// After each measured run every group must converge: all four replicas
// at the same stable checkpoint with byte-identical StableDigest. A
// non-converged group fails the experiment — this is the digest check
// the CI partition smoke leans on.
func RunPartitions(opts ExperimentOptions, groupCounts []int) error {
	w := opts.out()
	depth := opts.PipelineDepth
	if depth < 1 {
		depth = 1
	}
	fmt.Fprintf(w, "Partitioned multi-group scaling — %d clients/group, depth %d, link delay %v\n",
		opts.NumClients, depth, DefaultPartitionLinkDelay)
	fmt.Fprintf(w, "%-10s %10s %12s %10s %8s %s\n", "groups", "TPS", "TPS/group", "scaling", "errors", "group ops")

	lc := LibConfig{Name: "partitions", Static: true, MACs: true, AllBig: true, Batch: true}
	var baseline float64
	for _, g := range groupCounts {
		numClients := opts.NumClients * g
		pc, err := NewPartitionedCluster(PartitionedClusterOptions{
			Groups:          g,
			Opts:            buildOptions(lc),
			ClientsPerGroup: numClients,
			Seed:            opts.Seed,
			App:             NewCounterFactory(),
			Keys:            CounterKeys,
			Bandwidth:       938e6 / 8,
			LinkDelay:       DefaultPartitionLinkDelay,
			Tracer:          partitionTracer(opts),
		})
		if err != nil {
			return err
		}
		wl := &KeyedCounterWorkload{}
		res, err := pc.RunPartitioned(numClients, depth, wl, opts.Warmup, opts.Duration)
		if err != nil {
			pc.Stop()
			return err
		}
		if _, err := pc.Converge([]byte("inc flush"), 30*time.Second); err != nil {
			pc.Stop()
			return err
		}
		pc.Stop()

		tps := res.TPS()
		if baseline == 0 {
			baseline = tps
		}
		scaling := tps / baseline
		fmt.Fprintf(w, "%-10d %10.1f %12.1f %9.2fx %8d %v\n",
			g, tps, tps/float64(g), scaling, res.Errors, res.GroupOps)
		extra := map[string]float64{
			"groups":        float64(g),
			"tps_per_group": tps / float64(g),
			"scaling_x":     scaling,
		}
		for gi, n := range res.GroupOps {
			extra[fmt.Sprintf("group_%d_ops", gi)] = float64(n)
		}
		opts.record("partitions", fmt.Sprintf("groups_%d", g), res.RunResult, extra)
	}
	return nil
}

// partitionTracer adapts the shared experiment tracer to the
// per-(group, replica) factory shape. A GroupTracer (group-labeling
// registry) wins over the flat shared Tracer.
func partitionTracer(opts ExperimentOptions) func(int, uint32) core.Tracer {
	if opts.GroupTracer != nil {
		return func(g int, _ uint32) core.Tracer { return opts.GroupTracer(g) }
	}
	if opts.Tracer == nil {
		return nil
	}
	return func(int, uint32) core.Tracer { return opts.Tracer }
}
