package harness

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/client"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestNonDetValidationFailsOnReplay reproduces §2.5: the default
// time-delta validator rejects replayed pre-prepares whose timestamps
// have drifted, so a lagging replica cannot re-run agreement from
// retransmissions and must wait for a checkpoint state transfer.
func TestNonDetValidationFailsOnReplay(t *testing.T) {
	o := fastOpts()
	o.MaxTimeDrift = 300 * time.Millisecond // tight delta: replay fails fast
	o.ViewChangeTimeout = time.Hour         // isolate the effect from view changes
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 30, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Partition replica 3 from the other replicas so it misses a few
	// agreements (but keep client links open).
	for _, peer := range []uint32{0, 1, 2} {
		c.Net.SetLinkFaults(ReplicaAddr(peer), ReplicaAddr(3), transport.Faults{Partitioned: true})
	}
	for i := 1; i <= 4; i++ {
		invokeMust(t, cl, "inc")
	}
	// Let the pre-prepares age past the drift tolerance, then heal.
	time.Sleep(400 * time.Millisecond)
	for _, peer := range []uint32{0, 1, 2} {
		c.Net.ClearLinkFaults(ReplicaAddr(peer), ReplicaAddr(3))
	}
	// Status gossip retransmits the old pre-prepares; replica 3 must
	// reject them (RejectedNonDet grows) and stay behind...
	deadline := time.Now().Add(2 * time.Second)
	rejected := false
	for time.Now().Before(deadline) {
		info := c.Replicas[3].Info()
		if info.Stats.RejectedNonDet > 0 {
			rejected = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !rejected {
		t.Fatal("replayed pre-prepares with stale timestamps must fail validation (§2.5)")
	}
	if info := c.Replicas[3].Info(); info.LastExec >= 4 {
		t.Fatalf("replica 3 executed %d requests despite failed validation", info.LastExec)
	}
	// ...until the next checkpoint's state transfer rescues it.
	for i := 5; i <= int(o.CheckpointInterval)+2; i++ {
		invokeMust(t, cl, "inc")
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		info := c.Replicas[3].Info()
		if info.LastExec >= o.CheckpointInterval && info.Stats.StateTransfers > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 3 never recovered via state transfer: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNonDetValidationDisabledReplaysFine is the ablation: with the §2.5
// validation turned off, the same replay succeeds without state transfer.
func TestNonDetValidationDisabledReplaysFine(t *testing.T) {
	o := fastOpts()
	o.MaxTimeDrift = 300 * time.Millisecond
	o.ValidateNonDet = false
	o.ViewChangeTimeout = time.Hour
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 31, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, peer := range []uint32{0, 1, 2} {
		c.Net.SetLinkFaults(ReplicaAddr(peer), ReplicaAddr(3), transport.Faults{Partitioned: true})
	}
	for i := 1; i <= 4; i++ {
		invokeMust(t, cl, "inc")
	}
	time.Sleep(400 * time.Millisecond)
	for _, peer := range []uint32{0, 1, 2} {
		c.Net.ClearLinkFaults(ReplicaAddr(peer), ReplicaAddr(3))
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		info := c.Replicas[3].Info()
		if info.LastExec >= 4 {
			if info.Stats.RejectedNonDet != 0 {
				t.Fatal("nothing should be rejected with validation off")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 3 stuck: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startByzantineReplica replaces replica id with one whose outgoing
// messages pass through mutate (nil return = suppress), via the
// adversary package's transport interposition.
func startByzantineReplica(t *testing.T, c *Cluster, id uint32, mutate func(to string, data []byte) []byte) {
	t.Helper()
	c.StopReplica(id)
	behavior := adversary.BehaviorFunc(func(to string, data []byte) [][]byte {
		if m := mutate(to, data); m != nil {
			return [][]byte{m}
		}
		return nil
	})
	if err := c.StartAdversary(id, func(conn transport.Conn) transport.Conn {
		return adversary.Wrap(conn, behavior)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestByzantineBackupGarblesMessages(t *testing.T) {
	// A backup that corrupts the payload of every protocol message: the
	// group (n=4, f=1) must mask it completely.
	o := fastOpts()
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 32, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	startByzantineReplica(t, c, 2, func(to string, data []byte) []byte {
		if len(data) > 10 {
			d := append([]byte(nil), data...)
			d[len(d)/2] ^= 0xFF
			return d
		}
		return data
	})
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 10; i++ {
		resp := invokeMust(t, cl, "inc")
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d", i, got)
		}
	}
}

func TestByzantineSilentBackup(t *testing.T) {
	// A backup that sends nothing at all (fail-silent): still 2f+1
	// correct replicas, the service must not miss a beat.
	o := fastOpts()
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 33, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	startByzantineReplica(t, c, 1, func(string, []byte) []byte { return nil })
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 10; i++ {
		invokeMust(t, cl, "inc")
	}
}

func TestByzantinePrimaryEquivocates(t *testing.T) {
	// The primary sends different pre-prepares to different backups for
	// the same sequence number. The backups cannot assemble matching
	// prepare certificates; the liveness timers fire and a view change
	// replaces the primary.
	o := fastOpts()
	o.ViewChangeTimeout = 500 * time.Millisecond
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 34, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var mu sync.Mutex
	startByzantineReplica(t, c, 0, func(to string, data []byte) []byte {
		env, err := wire.UnmarshalEnvelope(data)
		if err != nil || env.Type != wire.MTPrePrepare {
			return data
		}
		// Per-destination divergence: append junk to the NonDet so each
		// backup sees a different batch digest. (Re-auth the envelope:
		// a Byzantine node signs whatever it wants.)
		mu.Lock()
		defer mu.Unlock()
		pp, err := wire.UnmarshalPrePrepare(env.Payload)
		if err != nil {
			return data
		}
		pp.NonDet = append(append([]byte(nil), pp.NonDet...), []byte(to)...)
		fresh := &wire.Envelope{Type: env.Type, Sender: env.Sender, Payload: pp.Marshal()}
		// The Byzantine replica holds real keys; re-MAC the message.
		return c.SealAsReplica(0, fresh)
	})
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 5; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("inc"))
		if err != nil {
			t.Fatalf("inc %d: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d", i, got)
		}
	}
	moved := false
	for _, id := range []uint32{1, 2, 3} {
		if c.Replicas[id].Info().View > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("an equivocating primary must be deposed by a view change")
	}
}

func TestServiceSurvivesLossAndDuplication(t *testing.T) {
	// Background loss and duplication on every link: retransmission and
	// deduplication must keep the service correct, if slower (§2.4's
	// premise that UDP loss is routine under stress).
	o := fastOpts()
	o.AllBig = false // the robust path; allbig under loss is the wedge test
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 2, Seed: 35, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Net.SetDefaultFaults(transport.Faults{LossRate: 0.05, DuplicateRate: 0.05})

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cl, err := c.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cl.Close()
			for j := 0; j < 15; j++ {
				if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c.Net.SetDefaultFaults(transport.Faults{})
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp := invokeMust(t, cl, "get")
	if got := binary.BigEndian.Uint64(resp); got != 30 {
		t.Fatalf("counter = %d, want 30 (exactly-once under loss+dup)", got)
	}
}

func TestCascadedViewChanges(t *testing.T) {
	// Kill primaries of views 0 and 1 in turn: the group must survive
	// two successive view changes.
	o := fastOpts()
	o.ViewChangeTimeout = 400 * time.Millisecond
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 36, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	invokeMust(t, cl, "inc")
	c.StopReplica(0) // primary of view 0
	for i := 2; i <= 4; i++ {
		if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
			t.Fatalf("after first failure, inc %d: %v", i, err)
		}
	}
	// Find the current primary (view v -> replica v mod 4) and kill it
	// too, as long as it is not the only remaining quorum member.
	view := c.Replicas[1].Info().View
	primary := uint32(view % 4)
	if primary != 0 {
		c.StopReplica(primary)
	}
	// f=1 tolerates one fault; with two replicas down the group cannot
	// commit. Bring the first one back as a fresh process.
	if err := c.RestartReplica(0); err != nil {
		t.Fatal(err)
	}
	for i := 5; i <= 8; i++ {
		resp, err := cl.Invoke(context.Background(), []byte("inc"))
		if err != nil {
			t.Fatalf("after second failure, inc %d: %v", i, err)
		}
		if got := binary.BigEndian.Uint64(resp); got != uint64(i) {
			t.Fatalf("inc %d = %d", i, got)
		}
	}
}

func TestSessionEvictionWhenTableFull(t *testing.T) {
	// §3.1: when the node table is full, a new Join evicts sessions idle
	// past the staleness threshold; with no stale sessions it is denied.
	o := fastOpts()
	o.DynamicClients = true
	o.MaxNodes = 4 /* replicas */ + 2 /* sessions */
	o.SessionStaleAfter = 200 * time.Millisecond
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 0, Seed: 37, App: NewAuthCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	c1, err := c.DynamicClient("dyn-e1", client.WithMaxRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Join(context.Background(), []byte("u1:sesame")); err != nil {
		t.Fatal(err)
	}
	invokeMust(t, c1, "inc")

	c2, err := c.DynamicClient("dyn-e2")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Join(context.Background(), []byte("u2:sesame")); err != nil {
		t.Fatal(err)
	}
	invokeMust(t, c2, "inc")

	// Immediately, a third join must be denied: the table is full and
	// both sessions are fresh.
	c3, err := c.DynamicClient("dyn-e3", client.WithMaxRetries(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := c3.Join(context.Background(), []byte("u3:sesame")); err == nil {
		t.Fatal("join into a full table with fresh sessions must be denied")
	}

	// After the staleness window, the same join evicts the idle
	// sessions and succeeds.
	time.Sleep(300 * time.Millisecond)
	c4, err := c.DynamicClient("dyn-e4")
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	if err := c4.Join(context.Background(), []byte("u4:sesame")); err != nil {
		t.Fatalf("join after staleness window: %v", err)
	}
	invokeMust(t, c4, "inc")

	// The evicted session is dead.
	if _, err := c1.Invoke(context.Background(), []byte("inc")); err == nil {
		t.Fatal("evicted session must be terminated")
	}
}

func TestBigThresholdRouting(t *testing.T) {
	// With AllBig off and a threshold set, small requests go through the
	// primary while large ones take the multicast path; both must work.
	o := fastOpts()
	o.AllBig = false
	o.BigThreshold = 512
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 38, App: NewEchoFactory(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	small := make([]byte, 100)
	large := make([]byte, 2048)
	for i := 0; i < 3; i++ {
		if _, err := cl.Invoke(context.Background(), small); err != nil {
			t.Fatalf("small %d: %v", i, err)
		}
		if _, err := cl.Invoke(context.Background(), large); err != nil {
			t.Fatalf("large %d: %v", i, err)
		}
	}
}

func TestLogGarbageCollection(t *testing.T) {
	// The message log and checkpoint records must stay bounded by the
	// watermark window as the sequence space grows.
	o := fastOpts() // K = 8
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 39, App: NewEchoFactory(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 60; i++ {
		invokeMust(t, cl, fmt.Sprintf("op%d", i))
	}
	if !c.WaitConverged(60, 5*time.Second) {
		t.Fatal("not converged")
	}
	for id, r := range c.Replicas {
		info := r.Info()
		if info.LastStable < 48 {
			t.Fatalf("replica %d: lastStable %d, want >= 48 (GC driven by checkpoints)", id, info.LastStable)
		}
		if info.LastExec-info.LastStable > o.CheckpointInterval*2 {
			t.Fatalf("replica %d: window exec=%d stable=%d exceeds 2K", id, info.LastExec, info.LastStable)
		}
	}
}
