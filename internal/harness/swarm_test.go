package harness

import (
	"encoding/binary"
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

// swarmTestOpts is fastOpts with a session cap small enough that a modest
// client population overflows it, and a hello cadence fast enough that an
// evicted client readmits itself within the test budget.
func swarmTestOpts(cap int) core.Options {
	o := fastOpts()
	o.MaxClientSessions = cap
	o.HelloInterval = 50 * time.Millisecond
	o.CheckpointInterval = 16
	return o
}

// TestSessionEvictionChurn overflows a capped session table with more
// clients than it can hold and proves the eviction contract: the table
// never exceeds its cap, evictions actually happen, every operation
// completes (evicted clients readmit via hello and retransmit), and the
// dedup windows survive eviction — each increment lands exactly once.
func TestSessionEvictionChurn(t *testing.T) {
	const (
		cap        = 8
		numClients = 24
		incs       = 20
	)
	c, err := NewCluster(ClusterOptions{
		Opts:       swarmTestOpts(cap),
		NumClients: numClients,
		Seed:       11,
		App:        NewCounterFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Every client performs one keyed bump. With 24 identities over an
	// 8-session cap, admission of the later clients must evict the
	// earlier ones.
	for i := 0; i < numClients; i++ {
		cl, err := c.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		invokeMust(t, cl, "bump key-"+string(rune('a'+i%16)))
		cl.Close()
	}

	s := swarmProbe(c)
	if s.sessions > cap {
		t.Fatalf("session table holds %d sessions, cap is %d", s.sessions, cap)
	}
	if s.evictions == 0 {
		t.Fatalf("%d clients over a cap of %d must evict, counter is 0", numClients, cap)
	}

	// Client 0 was evicted long ago. Its increments must still complete
	// (readmission via hello + retransmission) and land exactly once
	// despite the retransmissions eviction forces.
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < incs; i++ {
		invokeMust(t, cl, "inc")
	}
	resp := invokeMust(t, cl, "get")
	if got := binary.BigEndian.Uint64(resp); got != incs {
		t.Fatalf("counter = %d, want %d: increments were dropped or replayed", got, incs)
	}
}

// TestSwarmSmoke runs the full swarm experiment at toy scale — both the
// mem-transport churn phase and the loopback-UDP phase — and checks the
// recorded rows: zero errors, sessions bounded by the cap, evictions
// observed, and the syscall counters populated.
func TestSwarmSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	var rows []ExperimentResult
	opts := ExperimentOptions{
		Duration:    2 * time.Second,
		RequestSize: 64,
		Seed:        7,
		Out:         io.Discard,
		Record:      func(r ExperimentResult) { rows = append(rows, r) },
	}
	sw := SwarmOptions{
		Clients:       60,
		MaxSessions:   40,
		ChurnEvery:    8,
		Depth:         1,
		HelloInterval: 200 * time.Millisecond,
		UDPClients:    8,
	}
	if err := RunSwarm(opts, sw); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("recorded %d rows, want 2 (mem churn + udp loopback)", len(rows))
	}

	churn := rows[0]
	if churn.Name != "mem_churn_60c" {
		t.Fatalf("row 0 = %q, want mem_churn_60c", churn.Name)
	}
	if churn.Errors != 0 {
		t.Fatalf("churn phase: %d client errors (eviction must stall, never fail, an op)", churn.Errors)
	}
	if churn.Ops == 0 {
		t.Fatal("churn phase completed no operations")
	}
	if peak := churn.Extra["sessions_peak"]; peak <= 0 || peak > float64(sw.MaxSessions) {
		t.Fatalf("sessions_peak = %v, want in (0, %d]", peak, sw.MaxSessions)
	}
	if churn.Extra["evictions"] == 0 {
		t.Fatal("60 churning clients over a 40-session cap produced no evictions")
	}

	udp := rows[1]
	if udp.Name != "udp_loopback_8c" {
		t.Fatalf("row 1 = %q, want udp_loopback_8c", udp.Name)
	}
	if udp.Errors != 0 {
		t.Fatalf("udp phase: %d client errors", udp.Errors)
	}
	if udp.Ops == 0 {
		t.Fatal("udp phase completed no operations")
	}
	if udp.Extra["syscalls_per_op"] <= 0 {
		t.Fatal("udp phase recorded no syscalls: batch counters are not wired")
	}
	if udp.Extra["recv_batch_occupancy"] < 1 {
		t.Fatalf("recv occupancy = %v, want >= 1", udp.Extra["recv_batch_occupancy"])
	}
}
