package harness

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/pbft/metrics"
)

// recordingTracer captures view-change and state-transfer events for
// exact-sequence assertions. Hooks fire on the replica's protocol loop;
// the mutex makes the recorded slices readable from the test goroutine.
type recordingTracer struct {
	core.NopTracer
	mu sync.Mutex
	vc []core.ViewChangeEvent
	st []core.StateTransferEvent
}

func (r *recordingTracer) OnViewChange(e core.ViewChangeEvent) {
	r.mu.Lock()
	r.vc = append(r.vc, e)
	r.mu.Unlock()
}

func (r *recordingTracer) OnStateTransfer(e core.StateTransferEvent) {
	r.mu.Lock()
	r.st = append(r.st, e)
	r.mu.Unlock()
}

func (r *recordingTracer) viewChanges() []core.ViewChangeEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]core.ViewChangeEvent(nil), r.vc...)
}

func (r *recordingTracer) stateTransfers() []core.StateTransferEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]core.StateTransferEvent(nil), r.st...)
}

// TestTracerViewChangeSequence injects a primary failure and asserts the
// exact view-change event sequence on every surviving replica: one Start
// voting for view 1, then one Install entering it. It then restarts the
// failed replica and asserts its state-transfer event sequence as it
// recovers through a checkpoint fetch.
func TestTracerViewChangeSequence(t *testing.T) {
	o := fastOpts()
	o.ViewChangeTimeout = 600 * time.Millisecond
	tracers := make(map[uint32]*recordingTracer)
	var mu sync.Mutex
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       91,
		App:        NewCounterFactory(),
		Tracer: func(id uint32) core.Tracer {
			tr := &recordingTracer{}
			mu.Lock()
			tracers[id] = tr // a restart replaces the entry: fresh lifetime, fresh trace
			mu.Unlock()
			return tr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	invokeMust(t, cl, "inc")
	c.StopReplica(0) // primary of view 0
	for i := 0; i < 3; i++ {
		invokeMust(t, cl, "inc") // timeouts drive the view change to view 1
	}

	mu.Lock()
	survivors := []*recordingTracer{tracers[1], tracers[2], tracers[3]}
	mu.Unlock()
	for id, tr := range survivors {
		events := tr.viewChanges()
		if len(events) != 2 {
			t.Fatalf("replica %d: view-change events = %+v, want exactly [start, install]", id+1, events)
		}
		if events[0].Phase != core.ViewChangeStart || events[0].Target != 1 || events[0].View != 0 {
			t.Fatalf("replica %d: first event %+v, want start 0->1", id+1, events[0])
		}
		if events[1].Phase != core.ViewChangeInstall || events[1].View != 1 {
			t.Fatalf("replica %d: second event %+v, want install of view 1", id+1, events[1])
		}
		if st := tr.stateTransfers(); len(st) != 0 {
			t.Fatalf("replica %d: unexpected state transfers %+v", id+1, st)
		}
	}

	// Restart the deposed primary and push the group past a checkpoint:
	// the fresh process recovers via state transfer, and its (fresh)
	// tracer must show the start -> finish sequence.
	if err := c.RestartReplica(0); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < o.CheckpointInterval+4; i++ {
		invokeMust(t, cl, "inc")
	}
	mu.Lock()
	tr0 := tracers[0]
	mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := tr0.stateTransfers()
		if len(st) > 0 && st[len(st)-1].Phase == core.StateTransferFinish {
			if st[0].Phase != core.StateTransferStart {
				t.Fatalf("restarted replica: first transfer event %+v, want start", st[0])
			}
			for _, e := range st {
				if e.Phase == core.StateTransferAbort {
					t.Fatalf("restarted replica: transfer aborted: %+v", st)
				}
			}
			fin := st[len(st)-1]
			if fin.Seq%o.CheckpointInterval != 0 || fin.Seq == 0 {
				t.Fatalf("transfer finished at non-checkpoint seq %d", fin.Seq)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never completed a state transfer; events: %+v", tr0.stateTransfers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsAssertExactlyOneViewChange is the metrics surface doing the
// harness's assertion work: per-replica registries count protocol events,
// and after a primary failure each survivor must report exactly one
// completed view change — no cascades, no spurious recoveries.
func TestMetricsAssertExactlyOneViewChange(t *testing.T) {
	o := fastOpts()
	o.ViewChangeTimeout = 600 * time.Millisecond
	regs := make(map[uint32]*metrics.Metrics)
	var mu sync.Mutex
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       93,
		App:        NewCounterFactory(),
		Tracer: func(id uint32) core.Tracer {
			reg := metrics.New()
			mu.Lock()
			regs[id] = reg
			mu.Unlock()
			return reg
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	invokeMust(t, cl, "inc")
	c.StopReplica(0)
	for i := 0; i < 3; i++ {
		invokeMust(t, cl, "inc")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range []uint32{1, 2, 3} {
		s := regs[id].Snapshot()
		if s.ViewChangesInstalled != 1 || s.ViewChangesStarted != 1 {
			t.Fatalf("replica %d: view changes started/installed = %d/%d, want 1/1", id, s.ViewChangesStarted, s.ViewChangesInstalled)
		}
		if s.ViewChangeDuration.Count != 1 {
			t.Fatalf("replica %d: view-change duration samples = %d, want 1", id, s.ViewChangeDuration.Count)
		}
		if s.Commits == 0 || s.Batches == 0 {
			t.Fatalf("replica %d: no commits/batches recorded: %+v", id, s)
		}
	}
}

// gateApp is a CounterApp-free minimal application whose Execute parks on
// a channel for one designated operation — the instrument for freezing
// one replica's protocol loop mid-execution.
type gateApp struct {
	gate chan struct{} // nil: never parks
}

func (a *gateApp) Execute(op []byte, nd core.NonDetValues, readOnly bool) []byte {
	if a.gate != nil && string(op) == "block" {
		<-a.gate
	}
	return []byte("ok")
}

// TestGracefulShutdownFlushesCommitted: requests the group committed
// while one replica's loop was busy are sitting, fully verified, in that
// replica's ingress queue. A graceful Shutdown must drain them — execute
// and reply — before closing the connection, instead of dropping them on
// the floor like the old hard stop.
func TestGracefulShutdownFlushesCommitted(t *testing.T) {
	const extra = 6 // committed requests queued behind the blocked one
	o := fastOpts()
	o.ViewChangeTimeout = time.Hour // isolate from liveness timers
	gate := make(chan struct{})
	c, err := NewCluster(ClusterOptions{
		Opts:       o,
		NumClients: 1,
		Seed:       92,
		App: func(id uint32) core.Application {
			if id == 3 {
				return &gateApp{gate: gate}
			}
			return &gateApp{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Replica 3 parks inside Execute("block"); replicas 0-2 answer the
	// f+1 quorum so the client proceeds.
	invokeMust(t, cl, "block")
	for i := 0; i < extra; i++ {
		invokeMust(t, cl, "inc")
	}
	// The agreement traffic for the extra requests has been verified by
	// replica 3's ingress pipeline and queued for its parked loop; give
	// the pipeline a beat to finish delivering.
	time.Sleep(200 * time.Millisecond)

	// Graceful shutdown: signal first (the loop will observe stop once
	// unblocked), then release the gate. The drain must process the
	// queued commits, execute them, and flush the replies before the
	// connection closes.
	shutDone := make(chan error, 1)
	go func() { shutDone <- c.Replicas[3].Shutdown(context.Background()) }()
	time.Sleep(50 * time.Millisecond)
	close(gate)
	select {
	case err := <-shutDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned")
	}

	info := c.Replicas[3].Info() // quiescent read of the stopped replica
	if got, want := info.Stats.Executed, uint64(1+extra); got != want {
		t.Fatalf("replica 3 executed %d requests, want %d (graceful drain must flush committed work)", got, want)
	}
	if info.LastExec != uint64(1+extra) {
		t.Fatalf("replica 3 LastExec = %d, want %d", info.LastExec, 1+extra)
	}
	c.Replicas[3] = nil // stopped by hand; keep Stop() from re-shutting it down
}
