package harness

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
)

// TestCounterValuesUniqueUnderConcurrency is a linearizability smoke
// check: concurrent increments must return unique, gap-free values —
// each increment appears exactly once in the total order.
func TestCounterValuesUniqueUnderConcurrency(t *testing.T) {
	const numClients, perClient = 6, 20
	c, err := NewCluster(ClusterOptions{
		Opts:       fastOpts(),
		NumClients: numClients,
		Seed:       50,
		App:        NewCounterFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var mu sync.Mutex
	seen := make(map[uint64]int)
	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for i := 0; i < numClients; i++ {
		cl, err := c.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				resp, err := cl.Invoke(context.Background(), []byte("inc"))
				if err != nil {
					errs <- err
					return
				}
				v := binary.BigEndian.Uint64(resp)
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(seen) != numClients*perClient {
		t.Fatalf("%d distinct counter values, want %d", len(seen), numClients*perClient)
	}
	for v := uint64(1); v <= numClients*perClient; v++ {
		if seen[v] != 1 {
			t.Fatalf("value %d observed %d times (must be exactly once)", v, seen[v])
		}
	}
}

// TestCounterConsistentUnderPrimaryFailure repeats the uniqueness check
// while the primary crashes mid-run: the view change must not lose or
// duplicate increments.
func TestCounterConsistentUnderPrimaryFailure(t *testing.T) {
	const numClients, perClient = 4, 15
	o := fastOpts()
	o.ViewChangeTimeout = 400 * time.Millisecond
	c, err := NewCluster(ClusterOptions{Opts: o, NumClients: numClients, Seed: 51, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var mu sync.Mutex
	seen := make(map[uint64]int)
	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for i := 0; i < numClients; i++ {
		cl, err := c.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				resp, err := cl.Invoke(context.Background(), []byte("inc"))
				if err != nil {
					errs <- err
					return
				}
				v := binary.BigEndian.Uint64(resp)
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}(cl)
	}
	time.Sleep(150 * time.Millisecond)
	c.StopReplica(0) // crash the primary mid-run
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(seen) != numClients*perClient {
		t.Fatalf("%d distinct values, want %d", len(seen), numClients*perClient)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d observed %d times", v, n)
		}
	}
}

// TestMessageComplexityGrowsQuadratically checks the §3.3.3 observation:
// protocol packets per request grow superlinearly with the group size.
func TestMessageComplexityGrowsQuadratically(t *testing.T) {
	perReq := make(map[int]float64)
	for _, f := range []int{1, 2} {
		o := fastOpts()
		o.F = f
		o.Batching = false // isolate the per-request agreement cost
		o.ViewChangeTimeout = 10 * time.Second
		c, err := NewCluster(ClusterOptions{Opts: o, NumClients: 1, Seed: 52, App: NewEchoFactory(16)})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := c.Client(0)
		if err != nil {
			c.Stop()
			t.Fatal(err)
		}
		// Warm up (hellos, status), then measure a request burst.
		for i := 0; i < 3; i++ {
			invokeMust(t, cl, "x")
		}
		c.Net.ResetStats()
		const ops = 20
		for i := 0; i < ops; i++ {
			invokeMust(t, cl, "x")
		}
		stats := c.Net.Stats()
		perReq[f] = float64(stats.Packets) / ops
		cl.Close()
		c.Stop()
	}
	// n goes 4 -> 7 (1.75x); quadratic message complexity means packets
	// per request should grow clearly superlinearly (~3x); allow slack
	// for status gossip.
	ratio := perReq[2] / perReq[1]
	if ratio < 1.8 {
		t.Fatalf("packets/request grew only %.2fx from n=4 to n=7 (want superlinear growth): %v", ratio, perReq)
	}
}

// TestReadOnlyObservesCommittedWrites checks the read-only path returns
// fresh values once writes quiesce.
func TestReadOnlyObservesCommittedWrites(t *testing.T) {
	c, err := NewCluster(ClusterOptions{Opts: fastOpts(), NumClients: 1, Seed: 53, App: NewCounterFactory()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 1; i <= 7; i++ {
		invokeMust(t, cl, "inc")
	}
	if !c.WaitConverged(7, 5*time.Second) {
		t.Fatal("not converged")
	}
	resp, err := cl.InvokeReadOnly(context.Background(), []byte("get"))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(resp); got != 7 {
		t.Fatalf("read-only get = %d, want 7", got)
	}
}
