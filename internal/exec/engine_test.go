package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSameKeyFIFO: operations sharing a key execute in submission order.
func TestSameKeyFIFO(t *testing.T) {
	for _, shards := range []int{1, 4} {
		e := New(shards)
		var last int64 = -1
		var bad atomic.Int64
		key := [][]byte{[]byte("k")}
		for i := 0; i < 1000; i++ {
			i := int64(i)
			e.Submit(key, func() {
				if last != i-1 {
					bad.Add(1)
				}
				last = i
			})
		}
		e.Stop()
		if bad.Load() != 0 {
			t.Fatalf("shards=%d: %d out-of-order executions", shards, bad.Load())
		}
	}
}

// TestBarrierExclusive: a barrier task never overlaps keyed work submitted
// before or after it.
func TestBarrierExclusive(t *testing.T) {
	e := New(4)
	var running atomic.Int32
	var overlap atomic.Int32
	keyed := func(k string) func() {
		return func() {
			if running.Add(1) > 4 { // more than the shard count: impossible
				overlap.Add(1)
			}
			running.Add(-1)
		}
	}
	for round := 0; round < 50; round++ {
		for i := 0; i < 8; i++ {
			e.Submit([][]byte{[]byte(fmt.Sprint("key", i))}, keyed(fmt.Sprint("key", i)))
		}
		e.Submit(nil, func() {
			if running.Load() != 0 {
				overlap.Add(1)
			}
		})
	}
	e.Stop()
	if overlap.Load() != 0 {
		t.Fatalf("%d barrier overlaps", overlap.Load())
	}
}

// TestMultiShardKeysetIsBarrier: a keyset spanning shards runs after all
// prior keyed work.
func TestMultiShardKeysetIsBarrier(t *testing.T) {
	e := New(8)
	// Find two keys on different shards.
	var a, b []byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprint("key", i))
		if a == nil {
			a = k
			continue
		}
		sa, _ := e.shardOf([][]byte{a})
		sb, _ := e.shardOf([][]byte{k})
		if sa != sb {
			b = k
			break
		}
	}
	if _, ok := e.shardOf([][]byte{a, b}); ok {
		t.Fatal("multi-shard keyset reported a single shard")
	}
	var doneA, doneB, sawBoth atomic.Bool
	e.Submit([][]byte{a}, func() { doneA.Store(true) })
	e.Submit([][]byte{b}, func() { doneB.Store(true) })
	task := e.Submit([][]byte{a, b}, func() { sawBoth.Store(doneA.Load() && doneB.Load()) })
	<-task.Done()
	if !sawBoth.Load() {
		t.Fatal("multi-shard op ran before earlier keyed work completed")
	}
	st := e.Stats()
	if st.Sharded != 2 || st.Barriers != 1 {
		t.Fatalf("stats = %+v, want 2 sharded / 1 barrier", st)
	}
	e.Stop()
}

// TestDrainWaits: Drain returns only after all submitted work ran.
func TestDrainWaits(t *testing.T) {
	e := New(4)
	defer e.Stop()
	var n atomic.Int32
	for i := 0; i < 100; i++ {
		e.Submit([][]byte{[]byte(fmt.Sprint(i))}, func() { n.Add(1) })
	}
	e.Drain()
	if n.Load() != 100 {
		t.Fatalf("drain returned with %d/100 tasks executed", n.Load())
	}
}

// TestReapOrderIsSubmissionOrder: waiting tasks in submission order
// observes every earlier same-key result (reply release order).
func TestReapOrderIsSubmissionOrder(t *testing.T) {
	e := New(4)
	defer e.Stop()
	results := make([]int, 0, 200)
	tasks := make([]*Task, 0, 200)
	slots := make([]int, 200)
	for i := 0; i < 200; i++ {
		i := i
		key := [][]byte{[]byte(fmt.Sprint("k", i%7))}
		tasks = append(tasks, e.Submit(key, func() { slots[i] = i + 1 }))
	}
	for i, task := range tasks {
		<-task.Done()
		results = append(results, slots[i])
	}
	for i, r := range results {
		if r != i+1 {
			t.Fatalf("result %d = %d, want %d", i, r, i+1)
		}
	}
}

func BenchmarkSubmitKeyed(b *testing.B) {
	e := New(4)
	defer e.Stop()
	key := [][]byte{[]byte("hot")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Submit(key, func() {})
	}
	e.Drain()
}

// TestWaitIdle: WaitIdle returns only after every ordered task ran, and
// ignores detached work.
func TestWaitIdle(t *testing.T) {
	e := New(4)
	defer e.Stop()
	var n atomic.Int32
	for i := 0; i < 200; i++ {
		e.Submit([][]byte{[]byte(fmt.Sprint(i % 9))}, func() { n.Add(1) })
	}
	slowRead := make(chan struct{})
	e.SubmitDetached([][]byte{[]byte("read-key")}, func() { <-slowRead })
	e.WaitIdle()
	if n.Load() != 200 {
		t.Fatalf("WaitIdle returned with %d/200 ordered tasks executed", n.Load())
	}
	close(slowRead) // the detached task never blocked WaitIdle
	e.WaitIdle()    // idempotent when idle
}

// TestSerialInlineFastPath: with one shard and nothing queued, Submit
// runs the task on the caller.
func TestSerialInlineFastPath(t *testing.T) {
	e := New(1)
	defer e.Stop()
	ran := false
	task := e.Submit(nil, func() { ran = true })
	if !ran {
		t.Fatal("serial idle submit did not run inline")
	}
	select {
	case <-task.Done():
	default:
		t.Fatal("inline task's Done channel is open")
	}
	// With a detached task in flight, ordered work must queue behind it.
	gate := make(chan struct{})
	e.SubmitDetached([][]byte{[]byte("k")}, func() { <-gate })
	var order []string
	var mu sync.Mutex
	e.Submit(nil, func() { mu.Lock(); order = append(order, "ordered"); mu.Unlock() })
	mu.Lock()
	if len(order) != 0 {
		mu.Unlock()
		t.Fatal("ordered op ran inline while a detached task was in flight")
	}
	mu.Unlock()
	close(gate)
	e.WaitIdle()
	if len(order) != 1 {
		t.Fatal("ordered op never ran after the detached task finished")
	}
}
