// Package exec implements the deterministic sharded execution engine:
// the pipeline stage between the ordered commit stream and the
// application.
//
// The replica's protocol loop hands the engine committed operations in
// sequence order, each tagged with its conflict keyset (core.Sharder).
// The engine hashes keysets onto a fixed set of shard workers: operations
// whose keys land on different shards run concurrently, operations on the
// same shard run FIFO in commit order, and operations without a keyset —
// or whose keys span shards — run as barriers that rendezvous every
// worker. Results are reaped by the submitter in submission order, so
// replies are released strictly in sequence order no matter how the work
// was scheduled.
//
// # Determinism
//
// The engine preserves the replicated-state contract without any
// cross-replica coordination:
//
//   - Conflicting operations (sharing a key, or involving a barrier)
//     execute in commit order on every replica, because same-key implies
//     same-shard and each shard queue is FIFO in submission order.
//   - Non-conflicting operations may interleave differently on different
//     replicas, but the Sharder contract requires them to commute at the
//     byte level (disjoint state footprints), so the region content at
//     every barrier — and therefore every checkpoint digest — is
//     independent of the interleaving.
//
// Consequently the shard count is a purely local tuning knob: replicas
// with different shard counts (including 1, the serial configuration)
// produce identical reply streams and checkpoint digests.
package exec

import (
	"sync"
	"sync/atomic"
)

// queueDepth bounds each shard's pending-task channel. The submitter (the
// replica's protocol loop) blocks when a queue is full; workers always
// drain their queues, so this backpressure cannot deadlock (a worker only
// waits at a gate that is already in its own queue).
const queueDepth = 1024

// Task is one scheduled unit of application work. Done is closed after
// the task's function returned; the submitter reaps tasks in submission
// order to release results in sequence order.
type Task struct {
	fn      func()
	gate    *gate
	ordered bool
	done    chan struct{}
}

// Done returns a channel closed when the task has executed.
func (t *Task) Done() <-chan struct{} { return t.done }

// gate is a barrier task: every worker must arrive before the function
// runs, exclusively, on the last arriver.
type gate struct {
	pending atomic.Int32
	release chan struct{}
}

// idleWaiter is one parked WaitIdle call: the channel is closed by the
// worker whose completion brings finishedOrdered up to target.
type idleWaiter struct {
	ch     chan struct{}
	target uint64
}

// Stats are cumulative scheduling counters (atomics; readable while the
// engine runs).
type Stats struct {
	// Sharded counts operations routed to a single shard (the
	// concurrent path).
	Sharded uint64
	// Barriers counts operations executed as all-shard barriers
	// (unkeyed or multi-shard keysets, plus explicit drains).
	Barriers uint64
}

// Engine schedules application execution across a fixed set of shard
// worker goroutines. All submission methods must be called from a single
// goroutine (the replica's protocol loop); Done channels and Stats may be
// read from anywhere.
type Engine struct {
	queues []chan *Task
	wg     sync.WaitGroup

	// queued counts every submitted-but-unfinished queue task (ordered
	// and detached). In the serial configuration the submitter runs an
	// ordered task inline — no queue hop, no wakeup, exactly the
	// pre-engine schedule — whenever this is zero (nothing, such as a
	// detached read, is in flight that the task would have to order
	// behind).
	queued atomic.Int64
	// submittedOrdered / finishedOrdered are monotone counters of
	// Submit tasks only (detached reads are excluded: they complete on
	// their own and nothing mutates state, so checkpoints and reply
	// reaping need not wait for them). WaitIdle parks until
	// finishedOrdered catches up with the submission count it
	// observed — exact accounting, so a finisher of an older span can
	// never wake a waiter armed for a newer one.
	submittedOrdered atomic.Uint64 // written by the submitter only
	finishedOrdered  atomic.Uint64 // written by workers
	idleW            atomic.Pointer[idleWaiter]
	inlineTask       *Task // shared pre-completed task for the inline path

	sharded  atomic.Uint64
	barriers atomic.Uint64
}

// New starts an engine with the given shard count (values below 1 are
// treated as 1, the serial configuration).
func New(shards int) *Engine {
	if shards < 1 {
		shards = 1
	}
	e := &Engine{queues: make([]chan *Task, shards)}
	e.inlineTask = &Task{done: make(chan struct{})}
	close(e.inlineTask.done)
	for i := range e.queues {
		q := make(chan *Task, queueDepth)
		e.queues[i] = q
		e.wg.Add(1)
		go e.worker(q)
	}
	return e
}

// Shards returns the worker count.
func (e *Engine) Shards() int { return len(e.queues) }

// Serial reports whether the engine runs a single shard (commit-order
// execution, no concurrency).
func (e *Engine) Serial() bool { return len(e.queues) == 1 }

// QueueDepth returns the number of submitted-but-unfinished tasks
// (ordered applies plus detached reads). Readable from any goroutine;
// the metrics surface exposes it as the execution backlog gauge.
func (e *Engine) QueueDepth() int { return int(e.queued.Load()) }

// Submit schedules an ordered operation with the given conflict keyset
// and returns its task. A nil/empty keyset, or one whose keys hash onto
// more than one shard, makes the operation a barrier: it runs
// exclusively, after all previously submitted work and before anything
// submitted later. WaitIdle waits for every Submit task.
func (e *Engine) Submit(keys [][]byte, fn func()) *Task {
	if len(e.queues) == 1 {
		// Serial: run inline while the single worker is idle (a queued
		// task would execute after everything outstanding anyway, and
		// there is no parallelism to gain). The workers' completion
		// decrements are the happens-before edges that make their
		// effects visible here once queued reads zero.
		if e.queued.Load() == 0 {
			if fn != nil {
				fn()
			}
			return e.inlineTask
		}
	}
	e.submittedOrdered.Add(1)
	return e.enqueue(keys, fn, true)
}

// SubmitDetached schedules fire-and-forget work (the read-only
// optimization): same conflict ordering as Submit, but WaitIdle does not
// wait for it — it must not mutate replicated state.
func (e *Engine) SubmitDetached(keys [][]byte, fn func()) {
	e.enqueue(keys, fn, false)
}

// enqueue routes one task onto its shard queue (or all queues, as a
// gate).
func (e *Engine) enqueue(keys [][]byte, fn func(), isOrdered bool) *Task {
	t := &Task{fn: fn, done: make(chan struct{}), ordered: isOrdered}
	e.queued.Add(1)
	if shard, ok := e.shardOf(keys); ok {
		if len(e.queues) > 1 {
			e.sharded.Add(1)
		}
		e.queues[shard] <- t
		return t
	}
	if len(e.queues) == 1 {
		e.queues[0] <- t
		return t
	}
	e.barriers.Add(1)
	t.gate = &gate{release: make(chan struct{})}
	t.gate.pending.Store(int32(len(e.queues)))
	for _, q := range e.queues {
		q <- t
	}
	return t
}

// finish accounts one completed queue task and signals an armed idle
// waiter once the waiter's observed submission count has been reached.
// The exact target makes the signal race-free in both directions: a
// stale finisher of an older span sees finished < target and stays
// silent; the finisher that reaches the target closes the channel even
// if it was armed concurrently (the waiter's re-check covers the
// load-before-arm window).
func (e *Engine) finish(t *Task) {
	e.queued.Add(-1)
	if !t.ordered {
		return
	}
	fin := e.finishedOrdered.Add(1)
	if w := e.idleW.Load(); w != nil && fin >= w.target && e.idleW.CompareAndSwap(w, nil) {
		close(w.ch)
	}
}

// WaitIdle blocks until every previously Submitted (ordered) task has
// executed: one park for a whole span of work, however many shards ran
// it. Only the submitting goroutine may call it. Detached reads may
// still be in flight afterwards.
func (e *Engine) WaitIdle() {
	target := e.submittedOrdered.Load() // exact: only this goroutine submits
	if e.finishedOrdered.Load() >= target {
		return
	}
	w := &idleWaiter{ch: make(chan struct{}), target: target}
	e.idleW.Store(w)
	if e.finishedOrdered.Load() >= target {
		// Drained between the first check and arming. Whether or not
		// the finisher claimed the waiter, the work is done; clear the
		// arm if it is still ours (an unclaimed channel is just
		// garbage-collected).
		e.idleW.CompareAndSwap(w, nil)
		return
	}
	<-w.ch
}

// Drain blocks until every previously submitted task — ordered and
// detached — has executed.
func (e *Engine) Drain() {
	<-e.Submit(nil, nil).Done()
}

// Stop drains outstanding work and terminates the workers. No submission
// may follow.
func (e *Engine) Stop() {
	for _, q := range e.queues {
		close(q)
	}
	e.wg.Wait()
}

// Stats returns the cumulative scheduling counters.
func (e *Engine) Stats() Stats {
	return Stats{Sharded: e.sharded.Load(), Barriers: e.barriers.Load()}
}

// worker executes one shard's queue FIFO, rendezvousing at gates.
func (e *Engine) worker(q chan *Task) {
	defer e.wg.Done()
	for t := range q {
		if t.gate == nil {
			if t.fn != nil {
				t.fn()
			}
			close(t.done)
			e.finish(t)
			continue
		}
		if t.gate.pending.Add(-1) == 0 {
			// Last worker to arrive: every other shard is parked at
			// this gate, so the task runs exclusively.
			if t.fn != nil {
				t.fn()
			}
			close(t.done)
			close(t.gate.release)
			e.finish(t)
		} else {
			<-t.gate.release
		}
	}
}

// shardOf maps a keyset onto a shard; ok is false when the keyset is
// empty or spans shards (barrier cases). The hash is FNV-1a, a fixed
// function of the key bytes, so conflicting operations land on the same
// shard at every replica regardless of its shard count.
func (e *Engine) shardOf(keys [][]byte) (int, bool) {
	if len(keys) == 0 {
		return 0, false
	}
	shard := -1
	for _, k := range keys {
		s := int(Hash64(k) % uint64(len(e.queues)))
		if shard == -1 {
			shard = s
		} else if shard != s {
			return 0, false
		}
	}
	return shard, true
}

// Hash64 is the engine's key hash (64-bit FNV-1a, allocation-free
// unlike hash/fnv): a fixed function of the key bytes, so conflicting
// operations land on the same shard at every replica regardless of its
// shard count. Exported for in-module applications that map names onto
// storage cells (harness.CounterApp); applications outside the module
// are free to use any fixed hash for their own cell mapping — conflict
// keys are opaque to the engine.
func Hash64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
