package client

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Call is one in-flight request: a future that completes when a reply
// quorum assembles, the submission context is cancelled, the
// retransmission budget runs out, or the client closes. Calls are created
// by Client.Submit and are safe for concurrent use.
type Call struct {
	c         *Client
	ctx       context.Context
	clientID  uint32
	timestamp uint64
	env       *wire.Envelope
	multicast bool // big/read-only/system: every send broadcasts
	windowed  bool // sequential timestamp, counted against the span window

	mu         sync.Mutex
	finished   bool
	attempts   int
	sentView   uint64    // view whose primary last received this call
	start      time.Time // first transmission; anchors the retry budget
	byDigest   map[crypto.Digest]*replyQuorum
	timer      *time.Timer
	stopCtx    func() bool
	holdsSlot  bool
	registered bool

	done   chan struct{}
	result []byte
	err    error
}

// Done returns a channel closed when the call completes.
func (call *Call) Done() <-chan struct{} { return call.done }

// Result blocks until the call completes and returns its outcome. It may
// be called any number of times from any goroutine.
func (call *Call) Result() ([]byte, error) {
	<-call.done
	return call.result, call.err
}

// Err returns nil while the call is in flight, and the call's outcome
// error (possibly nil) once it completed.
func (call *Call) Err() error {
	select {
	case <-call.done:
		return call.err
	default:
		return nil
	}
}

// failedCall builds an already-completed Call (Submit never returns nil).
func failedCall(err error) *Call {
	call := &Call{finished: true, err: err, done: make(chan struct{})}
	close(call.done)
	return call
}

// armCtx wires context cancellation into the call. context.AfterFunc
// keeps this allocation-only: no goroutine is parked per call.
func (call *Call) armCtx() {
	if call.ctx == nil || call.ctx.Done() == nil {
		return
	}
	call.mu.Lock()
	if call.finished {
		call.mu.Unlock()
		return
	}
	ctx := call.ctx
	call.stopCtx = context.AfterFunc(ctx, func() {
		call.finish(nil, ctx.Err())
	})
	call.mu.Unlock()
}

// armTimer starts the per-call retransmission timer. One time.AfterFunc
// per call, stopped on completion — timers cannot leak past the call by
// construction (the old awaitReplies allocated a fresh timer per round
// and leaked the final one on early return).
func (call *Call) armTimer(d time.Duration) {
	call.mu.Lock()
	if !call.finished {
		call.start = time.Now()
		call.timer = time.AfterFunc(d, call.onTimeout)
	}
	call.mu.Unlock()
}

// backoffGraceRounds is how many retransmission rounds stay at the base
// interval before exponential backoff starts. Early retransmissions are
// what drive recovery — they re-arm backup liveness timers through a
// view change and re-deliver requests a dead primary swallowed — so the
// first rounds stay dense and only a persistently unresponsive service
// gets backed off.
const backoffGraceRounds = 3

// retransmitDelay is the adaptive per-call backoff: the base interval
// (Options.RequestTimeout) holds for the grace rounds, then grows
// exponentially with the retransmission round, capped at the client's
// backoff ceiling; the wait is jittered across [d/2, d] (floored at the
// base) so a fleet of calls stalled by the same outage does not
// retransmit in lockstep when the service returns.
func (call *Call) retransmitDelay(attempt int) time.Duration {
	base := call.c.cfg.Opts.RequestTimeout
	d := base
	cap := call.c.backoffCap
	for i := backoffGraceRounds; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if half := d / 2; half > 0 {
		d = half + rand.N(half+1)
	}
	if d < base {
		// A cap at or below the base interval degrades to the old
		// fixed-interval scheme — backoff must never retransmit FASTER
		// than the base rate.
		d = base
	}
	return d
}

// onTimeout fires when a reply quorum did not assemble within one round:
// retransmit and back off. The call's total time budget stays maxRetries
// x RequestTimeout — what the fixed-interval scheme spent — so backoff
// changes how often a stalled service is hammered, not how long a caller
// waits for ErrTimeout.
//
// Retransmission is view-aware: when the client's f+1-supported view
// estimate has moved since this call was last sent — replies to sibling
// calls revealed a view change — the call is retargeted at the new view's
// primary, which may simply have never seen it (requests queued at the
// deposed primary are not carried over). Only when the view estimate is
// unchanged does the call fall back to blind broadcast, the heavyweight
// path that makes every backup relay to the primary and arm its
// view-change timer.
func (call *Call) onTimeout() {
	call.mu.Lock()
	if call.finished {
		call.mu.Unlock()
		return
	}
	call.attempts++
	budget := time.Duration(call.c.maxRetries) * call.c.cfg.Opts.RequestTimeout
	remaining := budget - time.Since(call.start)
	if remaining <= 0 {
		call.mu.Unlock()
		call.finish(nil, ErrTimeout)
		return
	}
	delay := call.retransmitDelay(call.attempts)
	if delay > remaining {
		delay = remaining
	}
	call.timer.Reset(delay)
	sentView := call.sentView
	call.mu.Unlock()
	call.c.maybeHello()
	if !call.multicast {
		if v := call.c.viewEstimate(); v != sentView {
			call.mu.Lock()
			call.sentView = v
			call.mu.Unlock()
			_ = call.c.conn.Send(call.c.primaryAddr(v), call.env.Raw())
			return
		}
	}
	_ = call.c.broadcast(call.env)
}

// deliver folds one authenticated, routed reply into the quorum state.
func (call *Call) deliver(rep *wire.Reply) {
	call.mu.Lock()
	if call.finished {
		call.mu.Unlock()
		return
	}
	result, ok := recordReply(call.byDigest, rep, call.c.f, call.c.quorum)
	call.mu.Unlock()
	if ok {
		call.finish(result, nil)
	}
}

// finish completes the call exactly once: record the outcome, stop the
// retransmission timer and context hook, leave the routing table, close
// Done, and release the pipeline slot.
func (call *Call) finish(result []byte, err error) {
	call.mu.Lock()
	if call.finished {
		call.mu.Unlock()
		return
	}
	call.finished = true
	call.result, call.err = result, err
	timer := call.timer
	stopCtx := call.stopCtx
	call.mu.Unlock()

	if timer != nil {
		timer.Stop()
	}
	if stopCtx != nil {
		stopCtx()
	}
	if call.registered {
		c := call.c
		c.mu.Lock()
		if c.calls[call.timestamp] == call {
			delete(c.calls, call.timestamp)
		}
		c.mu.Unlock()
	}
	if err == nil && call.c != nil && call.c.rec != nil {
		// Quorum assembled: seal the client-side timeline. Failed calls
		// stay unfinished in the recorder and age out by eviction.
		call.c.rec.Finish(call.clientID, call.timestamp, trace.ClientComplete)
	}
	close(call.done)
	if call.holdsSlot {
		call.c.slots <- struct{}{}
	}
}
