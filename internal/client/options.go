package client

import (
	"time"

	"repro/internal/trace"
)

// defaultMaxRetries bounds retransmission rounds per request when
// WithMaxRetries is not given (the original library's hard-coded 20).
const defaultMaxRetries = 20

// Option configures a Client at construction time.
type Option func(*Client)

// WithPipelineDepth bounds how many requests the client keeps in flight
// at once; Submit blocks (or fails on context cancellation) while the
// window is full. Values above the deployment's per-client replica window
// (Options.ClientWindow) only get the excess dropped at the primary and
// retransmitted later. 0 or negative selects the deployment window.
func WithPipelineDepth(n int) Option {
	return func(c *Client) { c.pipelineDepth = n }
}

// WithMaxRetries sizes the per-call retry budget: a call fails with
// ErrTimeout after n x the deployment's Options.RequestTimeout without a
// reply quorum (the time the old fixed-interval scheme spent on n
// rounds; with adaptive backoff, fewer retransmissions fit in the same
// budget). 0 or negative selects the default (20).
func WithMaxRetries(n int) Option {
	return func(c *Client) { c.maxRetries = n }
}

// WithBackoffCap bounds the per-call retransmission backoff. Each call
// retransmits after the deployment's Options.RequestTimeout, then backs
// off exponentially (with jitter) up to this cap, so a stalled service is
// not hammered at a fixed rate by every outstanding call. The delay never
// drops below RequestTimeout: a cap at or below it selects plain
// fixed-interval retransmission. 0 or negative selects the default cap
// of 8x RequestTimeout.
func WithBackoffCap(d time.Duration) Option {
	return func(c *Client) { c.backoffCap = d }
}

// WithRecorder attaches a flight recorder to the client: Submit stamps
// the client-side phases (submit, seal, first send) and quorum
// completion onto the per-request timeline. nil (the default) keeps the
// hot path at a single nil check per stamp point.
func WithRecorder(rec *trace.Recorder) Option {
	return func(c *Client) { c.rec = rec }
}

// callOpts collects per-call options.
type callOpts struct {
	readOnly bool
}

// CallOption configures one Submit.
type CallOption func(*callOpts)

// ReadOnly marks the operation read-only: replicas execute it immediately
// without agreement and the client assembles a 2f+1 matching quorum.
func ReadOnly() CallOption {
	return func(o *callOpts) { o.readOnly = true }
}
