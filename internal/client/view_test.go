package client

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// viewTestSetup is testSetup plus listeners on every replica address, so
// the test observes where the client actually transmits.
func viewTestSetup(t *testing.T) (*core.Config, *Client, []*crypto.KeyPair, []transport.Conn) {
	t.Helper()
	o := core.DefaultOptions()
	o.UseMACs = false
	o.AllBig = false // primary-routed requests: the path retargeting serves
	o.StateSize = 1 << 20
	o.RequestTimeout = time.Hour // timers are driven by hand
	cfg := &core.Config{Opts: o}
	rkeys := make([]*crypto.KeyPair, 4)
	net := transport.NewNetwork(7)
	t.Cleanup(func() { net.Close() })
	conns := make([]transport.Conn, 4)
	for i := 0; i < 4; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		rkeys[i] = kp
		addr := fmt.Sprintf("r%d", i)
		cfg.Replicas = append(cfg.Replicas, core.NodeInfo{ID: uint32(i), Addr: addr, PubKey: kp.Public()})
		conn, err := net.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
	}
	ckp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clients = append(cfg.Clients, core.NodeInfo{ID: 4, Addr: "c0", PubKey: ckp.Public()})
	cconn, err := net.Listen("c0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(cfg, 4, ckp, cconn, opts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cfg, cl, rkeys, conns
}

func opts() Option { return WithMaxRetries(20) }

// recvCount drains packets arriving at a replica listener within the
// window and reports how many were requests.
func recvCount(conn transport.Conn, window time.Duration) int {
	n := 0
	deadline := time.After(window)
	for {
		select {
		case pkt, ok := <-conn.Recv():
			if !ok {
				return n
			}
			if env, err := wire.UnmarshalEnvelope(pkt.Data); err == nil && env.Type == wire.MTRequest {
				n++
			}
		case <-deadline:
			return n
		}
	}
}

// TestRetransmitRetargetsNewPrimary: when the client's f+1-supported view
// estimate moves, the next retransmission goes to the new view's primary
// alone; a further timeout in the same view falls back to broadcast.
func TestRetransmitRetargetsNewPrimary(t *testing.T) {
	cfg, cl, rkeys, conns := viewTestSetup(t)

	call := cl.Submit(context.Background(), []byte("op"))
	t.Cleanup(func() { call.finish(nil, ErrClosed) })
	// Initial transmission: primary of view 0 only.
	if got := recvCount(conns[0], 100*time.Millisecond); got != 1 {
		t.Fatalf("primary of view 0 received %d requests, want 1", got)
	}
	if got := recvCount(conns[1], 50*time.Millisecond); got != 0 {
		t.Fatalf("backup received %d requests before any timeout", got)
	}

	// Forged replies (broken signatures) claiming a far-future view must
	// not steer targeting: a timeout now still broadcasts blindly instead
	// of retargeting at a primary of the forger's choosing.
	for _, id := range []uint32{1, 3} {
		rep := &wire.Reply{View: 7, Timestamp: 999, ClientID: 4, Replica: id, Result: []byte("x")}
		raw := sealReply(t, cfg, cl, rkeys, id, rep, false)
		raw[len(raw)-1] ^= 0xFF // break the signature, keep the framing
		cl.dispatch(raw)
	}
	if v := cl.viewEstimate(); v != 0 {
		t.Fatalf("forged replies moved the view estimate to %d, want 0", v)
	}
	call.onTimeout()
	for i := 0; i < 4; i++ {
		if got := recvCount(conns[i], 100*time.Millisecond); got != 1 {
			t.Fatalf("replica %d received %d requests in the post-forgery round, want 1 (blind broadcast)", i, got)
		}
	}

	// Replies from two distinct replicas reveal view 2 (f+1 support).
	// The replies answer an unrelated timestamp so the call stays open.
	for _, id := range []uint32{1, 3} {
		rep := &wire.Reply{View: 2, Timestamp: 999, ClientID: 4, Replica: id, Result: []byte("x")}
		cl.dispatch(sealReply(t, cfg, cl, rkeys, id, rep, false))
	}
	if v := cl.viewEstimate(); v != 2 {
		t.Fatalf("view estimate = %d, want 2", v)
	}

	// First timeout after the view moved: retarget the new primary (r2)
	// alone — no broadcast.
	call.onTimeout()
	if got := recvCount(conns[2], 100*time.Millisecond); got != 1 {
		t.Fatalf("new primary received %d requests after retarget, want 1", got)
	}
	for _, i := range []int{0, 1, 3} {
		if got := recvCount(conns[i], 50*time.Millisecond); got != 0 {
			t.Fatalf("replica %d received %d requests during the retargeted round, want 0", i, got)
		}
	}

	// Second timeout with an unchanged view estimate: blind broadcast —
	// the recovery path that arms every backup's liveness timer.
	call.onTimeout()
	for i := 0; i < 4; i++ {
		if got := recvCount(conns[i], 100*time.Millisecond); got != 1 {
			t.Fatalf("replica %d received %d requests during the broadcast round, want 1", i, got)
		}
	}
}
