// Package client implements the PBFT client protocol: asynchronous,
// pipelined request submission with adaptive per-call retransmission
// (exponential backoff with jitter, capped — see WithBackoffCap), reply
// quorum collection (f+1 stable or 2f+1 with tentative replies), the read-only
// and big-request paths, MAC session establishment with blind periodic
// retransmission (§2.3 of the paper), and the dynamic Join/Leave flow of
// §3.1.
//
// A Client is safe for concurrent use: Submit returns a *Call future and
// many goroutines may submit and await calls on one client at once, up to
// the pipeline window. A single demultiplexing goroutine owns the
// connection's receive side and routes authenticated replies to the
// per-call quorum trackers by timestamp; Invoke and InvokeReadOnly are
// thin synchronous wrappers over Submit.
package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// ErrTimeout is returned when no reply quorum assembled within the
// configured number of retransmission rounds.
var ErrTimeout = errors.New("client: request timed out")

// ErrNotJoined is returned when a dynamic client invokes before Join.
var ErrNotJoined = errors.New("client: not joined")

// ErrJoinDenied is returned when the replicated service refuses a Join.
type ErrJoinDenied struct{ Reason string }

func (e *ErrJoinDenied) Error() string { return "client: join denied: " + e.Reason }

// Client is a PBFT service client. It is safe for concurrent use: any
// number of goroutines may Submit/Invoke on one client, with at most the
// pipeline window in flight at once.
type Client struct {
	cfg  *core.Config
	kp   *crypto.KeyPair
	eph  *crypto.KeyPair // ephemeral session keys (transient by design)
	conn transport.Conn

	n, f, quorum int
	sessionKeys  []crypto.SessionKey
	replicaAddrs []string

	// rec is the optional client-side flight recorder (WithRecorder);
	// nil costs one nil check per stamp point.
	rec *trace.Recorder

	pipelineDepth int
	maxRetries    int
	backoffCap    time.Duration // retransmission backoff ceiling
	window        uint64        // replica-side dedup window W (timestamp span cap)
	slots         chan struct{} // pipeline window semaphore

	mu sync.Mutex
	id uint32
	// view is the client's view estimate: the highest view that f+1
	// distinct replicas have reported in authenticated replies. A single
	// (possibly Byzantine) replica can therefore never steer the client
	// toward a bogus primary; viewVotes holds the per-replica reports.
	view      uint64
	viewVotes []uint64
	timestamp uint64
	lastHello time.Time
	joined    bool
	closed    bool
	calls     map[uint64]*Call         // in-flight, keyed by request timestamp
	challSink chan *wire.JoinChallenge // non-nil while Join phase 1 runs

	demuxDone chan struct{} // closed when the demux goroutine exits
}

// New creates a client with a pre-provisioned identity (static
// membership). The connection is owned by the client afterwards.
func New(cfg *core.Config, id uint32, kp *crypto.KeyPair, conn transport.Conn, opts ...Option) (*Client, error) {
	c, err := newClient(cfg, kp, conn, opts)
	if err != nil {
		return nil, err
	}
	c.id = id
	c.joined = true
	c.start()
	return c, nil
}

// NewDynamic creates a client that must Join before invoking (§3.1).
func NewDynamic(cfg *core.Config, kp *crypto.KeyPair, conn transport.Conn, opts ...Option) (*Client, error) {
	c, err := newClient(cfg, kp, conn, opts)
	if err != nil {
		return nil, err
	}
	c.id = core.JoinSender
	c.start()
	return c, nil
}

func newClient(cfg *core.Config, kp *crypto.KeyPair, conn transport.Conn, opts []Option) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eph, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		return nil, fmt.Errorf("session keys: %w", err)
	}
	c := &Client{
		cfg:        cfg,
		kp:         kp,
		eph:        eph,
		conn:       conn,
		n:          cfg.N(),
		f:          cfg.Opts.F,
		quorum:     cfg.Quorum(),
		maxRetries: defaultMaxRetries,
		window:     cfg.ClientWindow(),
		// Like the original implementation, request timestamps are
		// wall-clock based so they stay monotonic across client
		// restarts (replicas deduplicate on them).
		timestamp: uint64(time.Now().UnixNano()),
		calls:     make(map[uint64]*Call),
		demuxDone: make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if c.pipelineDepth <= 0 {
		// Match the replica-side dedup window: submitting deeper than W
		// would only get the excess dropped at the primary.
		c.pipelineDepth = int(cfg.ClientWindow())
	}
	if c.maxRetries <= 0 {
		c.maxRetries = defaultMaxRetries
	}
	if c.backoffCap <= 0 {
		c.backoffCap = 8 * cfg.Opts.RequestTimeout
	}
	c.slots = make(chan struct{}, c.pipelineDepth)
	for i := 0; i < c.pipelineDepth; i++ {
		c.slots <- struct{}{}
	}
	c.sessionKeys = make([]crypto.SessionKey, c.n)
	c.replicaAddrs = make([]string, c.n)
	c.viewVotes = make([]uint64, c.n)
	for i, ri := range cfg.Replicas {
		c.replicaAddrs[i] = ri.Addr
		// Pairwise key: client ephemeral x replica static.
		sk, err := eph.SharedKey(ri.PubKey)
		if err != nil {
			return nil, fmt.Errorf("derive session key %d: %w", i, err)
		}
		c.sessionKeys[i] = sk
	}
	return c, nil
}

// start launches the demux goroutine; called once from the constructors.
func (c *Client) start() { go c.demux() }

// ID returns the client identifier (meaningful after Join for dynamic
// clients).
func (c *Client) ID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.id
}

// PipelineDepth returns the client's in-flight request bound.
func (c *Client) PipelineDepth() int { return c.pipelineDepth }

// Close releases the client's connection. In-flight calls complete with
// ErrClosed; Close returns once the demux goroutine has exited, so no
// goroutines or timers owned by the client survive it.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.demuxDone
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.demuxDone // demux fails every in-flight call with ErrClosed
	return err
}

// demux is the single goroutine that owns conn.Recv(): it authenticates
// inbound packets and routes replies to their calls by timestamp. It
// exits when the connection closes, failing whatever is still in flight.
func (c *Client) demux() {
	defer close(c.demuxDone)
	for pkt := range c.conn.Recv() {
		c.dispatch(pkt.Data)
	}
	c.mu.Lock()
	c.closed = true
	pending := make([]*Call, 0, len(c.calls))
	for _, call := range c.calls {
		pending = append(pending, call)
	}
	c.mu.Unlock()
	for _, call := range pending {
		call.finish(nil, ErrClosed)
	}
}

// dispatch authenticates and routes one inbound packet.
func (c *Client) dispatch(data []byte) {
	env, err := wire.UnmarshalEnvelope(data)
	if err != nil || int(env.Sender) >= c.n {
		return
	}
	switch env.Type {
	case wire.MTReply:
		if !c.verifyFromReplica(env) {
			return
		}
		rep, err := wire.UnmarshalReply(env.Payload)
		if err != nil || rep.Replica != env.Sender {
			return
		}
		c.mu.Lock()
		c.recordViewLocked(env.Sender, rep.View)
		call := c.calls[rep.Timestamp]
		c.mu.Unlock()
		if call == nil || call.clientID != rep.ClientID {
			return
		}
		call.deliver(rep)
	case wire.MTJoinChall:
		// Join challenges are always signed (no session exists yet).
		if env.Kind != wire.AuthSig || !env.VerifySig(c.cfg.Replicas[env.Sender].PubKey) {
			return
		}
		ch, err := wire.UnmarshalJoinChallenge(env.Payload)
		if err != nil || ch.Replica != env.Sender {
			return
		}
		c.mu.Lock()
		sink := c.challSink
		c.mu.Unlock()
		if sink != nil {
			select {
			case sink <- ch:
			default: // collector is behind; drop like the network would
			}
		}
	}
}

// recordViewLocked folds one replica's reported view into the estimate:
// the estimate advances to v only when f+1 distinct replicas have
// reported v or higher (at least one of them is then correct). Callers
// hold c.mu.
func (c *Client) recordViewLocked(replica uint32, view uint64) {
	if int(replica) >= len(c.viewVotes) || view <= c.viewVotes[replica] {
		return
	}
	c.viewVotes[replica] = view
	if view <= c.view {
		return
	}
	// The (f+1)-th highest vote is the highest view with f+1 supporters.
	votes := append([]uint64(nil), c.viewVotes...)
	sort.Slice(votes, func(i, j int) bool { return votes[i] > votes[j] })
	if supported := votes[c.f]; supported > c.view {
		c.view = supported
	}
}

// viewEstimate returns the f+1-supported view estimate.
func (c *Client) viewEstimate() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// primaryAddr returns the address of the primary of a view.
func (c *Client) primaryAddr(view uint64) string {
	return c.replicaAddrs[c.cfg.Primary(view)]
}

// verifyFromReplica authenticates a reply envelope from its sender.
func (c *Client) verifyFromReplica(env *wire.Envelope) bool {
	switch env.Kind {
	case wire.AuthMAC:
		return env.VerifyMACEntry(0, c.sessionKeys[env.Sender])
	case wire.AuthSig:
		return env.VerifySig(c.cfg.Replicas[env.Sender].PubKey)
	default:
		return false
	}
}

// seal authenticates an envelope to the replica group using the given
// sender identity: an authenticator in MAC mode, a signature otherwise.
// Join requests and session hellos are always signed.
func (c *Client) seal(sender uint32, t wire.MsgType, payload []byte, forceSig bool) *wire.Envelope {
	env := &wire.Envelope{Type: t, Sender: sender, Payload: payload}
	if c.cfg.Opts.UseMACs && !forceSig {
		env.SealMAC(c.sessionKeys)
	} else {
		env.SealSig(c.kp)
	}
	return env
}

// helloEnvelope builds the session-establishment envelope for the current
// identity. Callers broadcast it outside the client lock.
func (c *Client) helloEnvelope(id uint32) *wire.Envelope {
	h := wire.SessionHello{
		ClientID: id,
		Addr:     c.conn.Addr(),
		PubKey:   crypto.MarshalPublicKey(crypto.PublicKey{Sign: c.kp.Public().Sign, DH: c.eph.Public().DH}),
	}
	return c.seal(id, wire.MTSessionHello, h.Marshal(), true)
}

// maybeHello retransmits the session hello when its timer expired. Hellos
// are retransmitted blindly on HelloInterval; this is the authenticator
// retransmission mechanism whose recovery implications §2.3 analyzes.
func (c *Client) maybeHello() {
	c.mu.Lock()
	due := c.helloDueLocked()
	id := c.id
	c.mu.Unlock()
	if due {
		c.broadcast(c.helloEnvelope(id))
	}
}

// helloDueLocked checks and stamps the hello timer. Callers hold c.mu and
// build + transmit the (signed) hello envelope after unlocking: sealing is
// too expensive for the critical section.
func (c *Client) helloDueLocked() bool {
	if !c.cfg.Opts.UseMACs || c.id == core.JoinSender {
		return false
	}
	if time.Since(c.lastHello) < c.cfg.Opts.HelloInterval {
		return false
	}
	c.lastHello = time.Now()
	return true
}

// broadcast seals and marshals once, then fans the same byte slice out to
// every replica through the transport's native broadcast path. Request
// retransmissions reuse the memoized wire form across rounds.
func (c *Client) broadcast(env *wire.Envelope) error {
	return transport.Broadcast(c.conn, c.replicaAddrs, env.Raw())
}

// Submit hands an operation to the replicated service and returns a Call
// future that completes when a reply quorum assembles, the context ends,
// the retransmission budget runs out, or the client closes. Submit blocks
// only while the pipeline window is full (backpressure); the returned
// Call is never nil.
func (c *Client) Submit(ctx context.Context, op []byte, opts ...CallOption) *Call {
	var co callOpts
	for _, o := range opts {
		o(&co)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return failedCall(ErrClosed)
	}
	if !c.joined {
		c.mu.Unlock()
		return failedCall(ErrNotJoined)
	}
	c.mu.Unlock()

	// Bounded pipeline, part 1: wait for a window slot (released on
	// completion), capping in-flight count.
	select {
	case <-c.slots:
	case <-ctx.Done():
		return failedCall(ctx.Err())
	case <-c.demuxDone:
		return failedCall(ErrClosed)
	}

	// Bounded pipeline, part 2: cap the in-flight timestamp *span* at
	// the replica-side window W. Replicas treat any timestamp at or
	// below maxExecuted-W as a stale duplicate, so if faster siblings
	// kept completing and resubmitting while one call stalled, a new
	// timestamp more than W ahead of the stalled one could let the
	// replica floor overtake it — the request would then never execute.
	// Like a TCP window, the oldest outstanding call gates sliding.
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			c.slots <- struct{}{}
			return failedCall(ErrClosed)
		}
		oldest := c.oldestWindowedLocked()
		if oldest == nil || c.timestamp+1-oldest.timestamp < c.window {
			break
		}
		oldestDone := oldest.done
		c.mu.Unlock()
		select {
		case <-oldestDone:
		case <-ctx.Done():
			c.slots <- struct{}{}
			return failedCall(ctx.Err())
		case <-c.demuxDone:
			c.slots <- struct{}{}
			return failedCall(ErrClosed)
		}
		c.mu.Lock()
	}
	c.timestamp++
	ts := c.timestamp
	id := c.id
	view := c.view
	helloDue := c.helloDueLocked()
	c.mu.Unlock()
	if c.rec != nil {
		c.rec.Stamp(id, ts, trace.ClientSubmit)
	}

	// Crypto (MAC authenticator or signature) runs outside the client
	// lock so concurrent submitters seal in parallel.
	var helloEnv *wire.Envelope
	if helloDue {
		helloEnv = c.helloEnvelope(id)
	}
	req := &wire.Request{
		ClientID:  id,
		Timestamp: ts,
		Op:        op,
	}
	if co.readOnly {
		req.Flags |= wire.FlagReadOnly
	}
	big := c.cfg.IsBig(len(op)) && !co.readOnly
	if big {
		req.Flags |= wire.FlagBig
	}
	env := c.seal(id, wire.MTRequest, req.Marshal(), false)
	if c.rec != nil {
		c.rec.Stamp(id, ts, trace.ClientSealed)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.slots <- struct{}{}
		return failedCall(ErrClosed)
	}
	// Big and read-only requests are multicast by the client, relieving
	// the primary (§2.1); others go to the primary alone.
	call := c.register(ctx, id, ts, env, big || co.readOnly, true)
	call.windowed = true
	call.sentView = view
	c.mu.Unlock()

	if helloEnv != nil {
		c.broadcast(helloEnv)
	}
	c.launch(call, c.primaryAddr(view))
	if c.rec != nil {
		c.rec.Stamp(id, ts, trace.ClientFirstSend)
	}
	return call
}

// oldestWindowedLocked returns the in-flight call with the lowest
// sequential timestamp (nil when none). Join calls use nonce-derived
// timestamps outside the sequence and are excluded. Callers hold c.mu;
// the scan is bounded by the pipeline depth.
func (c *Client) oldestWindowedLocked() *Call {
	var oldest *Call
	for _, call := range c.calls {
		if !call.windowed {
			continue
		}
		if oldest == nil || call.timestamp < oldest.timestamp {
			oldest = call
		}
	}
	return oldest
}

// register creates a call and enters it into the routing table. Callers
// hold c.mu.
func (c *Client) register(ctx context.Context, clientID uint32, ts uint64, env *wire.Envelope, multicast, holdsSlot bool) *Call {
	call := &Call{
		c:         c,
		ctx:       ctx,
		clientID:  clientID,
		timestamp: ts,
		env:       env,
		multicast: multicast,
		holdsSlot: holdsSlot,
		byDigest:  make(map[crypto.Digest]*replyQuorum),
		done:      make(chan struct{}),
	}
	// Materialize the memoized wire form now, while the call is owned by
	// one goroutine: retransmission timers reuse the same bytes.
	env.Raw()
	call.registered = true
	c.calls[ts] = call
	return call
}

// launch arms a registered call's cancellation hook and retransmission
// timer, then performs the first transmission. A deterministic transport
// refusal (the datagram exceeds the size limit) fails the call
// immediately instead of spinning through retransmission rounds to
// ErrTimeout.
func (c *Client) launch(call *Call, primaryAddr string) {
	call.armCtx()
	call.armTimer(c.cfg.Opts.RequestTimeout)
	var err error
	if call.multicast || primaryAddr == "" {
		err = c.broadcast(call.env)
	} else {
		err = c.conn.Send(primaryAddr, call.env.Raw())
	}
	if errors.Is(err, transport.ErrTooLarge) {
		call.finish(nil, err)
	}
}

// Invoke submits an operation for totally ordered execution and waits for
// a reply quorum. It is a synchronous wrapper over Submit.
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	return c.Submit(ctx, op).Result()
}

// InvokeReadOnly submits a read-only operation (executed immediately by
// each replica, no agreement; needs a 2f+1 matching quorum).
func (c *Client) InvokeReadOnly(ctx context.Context, op []byte) ([]byte, error) {
	return c.Submit(ctx, op, ReadOnly()).Result()
}

// replyQuorum tracks matching replies for one request.
type replyQuorum struct {
	result    []byte
	stable    map[uint32]bool
	tentative map[uint32]bool
}

// recordReply folds one reply into the quorum state: f+1 matching stable
// replies accept, or 2f+1 matching replies when some are tentative.
func recordReply(byDigest map[crypto.Digest]*replyQuorum, rep *wire.Reply, f, quorum int) ([]byte, bool) {
	d := crypto.DigestOf(rep.Result)
	q, ok := byDigest[d]
	if !ok {
		q = &replyQuorum{
			result:    rep.Result,
			stable:    make(map[uint32]bool),
			tentative: make(map[uint32]bool),
		}
		byDigest[d] = q
	}
	if rep.Tentative() {
		q.tentative[rep.Replica] = true
	} else {
		q.stable[rep.Replica] = true
		delete(q.tentative, rep.Replica)
	}
	if len(q.stable) >= f+1 {
		return q.result, true
	}
	if len(q.stable)+len(q.tentative) >= quorum {
		return q.result, true
	}
	return nil, false
}
