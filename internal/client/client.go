// Package client implements the PBFT client protocol: request submission
// with retransmission, reply quorum collection (f+1 stable or 2f+1 with
// tentative replies), the read-only and big-request paths, MAC session
// establishment with blind periodic retransmission (§2.3 of the paper),
// and the dynamic Join/Leave flow of §3.1.
package client

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// ErrTimeout is returned when no reply quorum assembled within the
// configured number of retransmission rounds.
var ErrTimeout = errors.New("client: request timed out")

// ErrJoinDenied is returned when the replicated service refuses a Join.
type ErrJoinDenied struct{ Reason string }

func (e *ErrJoinDenied) Error() string { return "client: join denied: " + e.Reason }

// Client is a PBFT service client. It is not safe for concurrent use; run
// one client per goroutine (the benchmark harness runs many).
type Client struct {
	cfg  *core.Config
	id   uint32
	kp   *crypto.KeyPair
	eph  *crypto.KeyPair // ephemeral session keys (transient by design)
	conn transport.Conn

	n, f, quorum int
	view         uint64 // view estimate from replies
	timestamp    uint64
	sessionKeys  []crypto.SessionKey
	replicaAddrs []string
	lastHello    time.Time
	joined       bool
	closed       bool

	// MaxRetries bounds retransmission rounds per request (0 = default).
	MaxRetries int
}

// New creates a client with a pre-provisioned identity (static
// membership). The connection is owned by the client afterwards.
func New(cfg *core.Config, id uint32, kp *crypto.KeyPair, conn transport.Conn) (*Client, error) {
	c, err := newClient(cfg, kp, conn)
	if err != nil {
		return nil, err
	}
	c.id = id
	c.joined = true
	return c, nil
}

// NewDynamic creates a client that must Join before invoking (§3.1).
func NewDynamic(cfg *core.Config, kp *crypto.KeyPair, conn transport.Conn) (*Client, error) {
	c, err := newClient(cfg, kp, conn)
	if err != nil {
		return nil, err
	}
	c.id = core.JoinSender
	return c, nil
}

func newClient(cfg *core.Config, kp *crypto.KeyPair, conn transport.Conn) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eph, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		return nil, fmt.Errorf("session keys: %w", err)
	}
	c := &Client{
		cfg:    cfg,
		kp:     kp,
		eph:    eph,
		conn:   conn,
		n:      cfg.N(),
		f:      cfg.Opts.F,
		quorum: cfg.Quorum(),
		// Like the original implementation, request timestamps are
		// wall-clock based so they stay monotonic across client
		// restarts (replicas deduplicate on them).
		timestamp: uint64(time.Now().UnixNano()),
	}
	c.sessionKeys = make([]crypto.SessionKey, c.n)
	c.replicaAddrs = make([]string, c.n)
	for i, ri := range cfg.Replicas {
		c.replicaAddrs[i] = ri.Addr
		// Pairwise key: client ephemeral x replica static.
		sk, err := eph.SharedKey(ri.PubKey)
		if err != nil {
			return nil, fmt.Errorf("derive session key %d: %w", i, err)
		}
		c.sessionKeys[i] = sk
	}
	return c, nil
}

// ID returns the client identifier (meaningful after Join for dynamic
// clients).
func (c *Client) ID() uint32 { return c.id }

// Close releases the client's connection.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// seal authenticates an envelope to the replica group using the client's
// identity: an authenticator in MAC mode, a signature otherwise. Join
// requests and session hellos are always signed.
func (c *Client) seal(t wire.MsgType, payload []byte, forceSig bool) *wire.Envelope {
	env := &wire.Envelope{Type: t, Sender: c.id, Payload: payload}
	if c.cfg.Opts.UseMACs && !forceSig {
		env.Kind = wire.AuthMAC
		env.Auth = crypto.ComputeAuthenticator(c.sessionKeys, env.SignedBytes())
	} else {
		env.Kind = wire.AuthSig
		env.Sig = c.kp.Sign(env.SignedBytes())
	}
	return env
}

// sendHello (re)establishes session keys at every replica. Hellos are
// retransmitted blindly on HelloInterval; this is the authenticator
// retransmission mechanism whose recovery implications §2.3 analyzes.
func (c *Client) sendHello() {
	h := wire.SessionHello{
		ClientID: c.id,
		Addr:     c.conn.Addr(),
		PubKey:   crypto.MarshalPublicKey(crypto.PublicKey{Sign: c.kp.Public().Sign, DH: c.eph.Public().DH}),
	}
	env := c.seal(wire.MTSessionHello, h.Marshal(), true)
	c.broadcast(env)
	c.lastHello = time.Now()
}

// maybeHello retransmits the session hello when its timer expired.
func (c *Client) maybeHello() {
	if !c.cfg.Opts.UseMACs || c.id == core.JoinSender {
		return
	}
	if time.Since(c.lastHello) >= c.cfg.Opts.HelloInterval {
		c.sendHello()
	}
}

// broadcast seals and marshals once, then fans the same byte slice out to
// every replica through the transport's native broadcast path. Request
// retransmissions reuse the memoized wire form across rounds.
func (c *Client) broadcast(env *wire.Envelope) {
	_ = transport.Broadcast(c.conn, c.replicaAddrs, env.Raw())
}

func (c *Client) sendToPrimary(env *wire.Envelope) {
	_ = c.conn.Send(c.cfg.Replicas[c.cfg.Primary(c.view)].Addr, env.Raw())
}

// Invoke submits an operation for totally ordered execution and waits for
// a reply quorum.
func (c *Client) Invoke(op []byte) ([]byte, error) {
	return c.invoke(op, 0)
}

// InvokeReadOnly submits a read-only operation (executed immediately by
// each replica, no agreement; needs a 2f+1 matching quorum).
func (c *Client) InvokeReadOnly(op []byte) ([]byte, error) {
	return c.invoke(op, wire.FlagReadOnly)
}

func (c *Client) invoke(op []byte, flags uint8) ([]byte, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if !c.joined {
		return nil, errors.New("client: not joined")
	}
	c.timestamp++
	req := &wire.Request{
		ClientID:  c.id,
		Timestamp: c.timestamp,
		Flags:     flags,
		Op:        op,
	}
	big := c.cfg.IsBig(len(op)) && flags&wire.FlagReadOnly == 0
	if big {
		req.Flags |= wire.FlagBig
	}
	c.maybeHello()
	env := c.seal(wire.MTRequest, req.Marshal(), false)
	// Big and read-only requests are multicast by the client, relieving
	// the primary (§2.1); others go to the primary alone.
	if big || req.ReadOnly() {
		c.broadcast(env)
	} else {
		c.sendToPrimary(env)
	}
	return c.awaitReplies(req, env)
}

// replyQuorum tracks matching replies for one request.
type replyQuorum struct {
	result    []byte
	stable    map[uint32]bool
	tentative map[uint32]bool
}

// awaitReplies collects replies until a quorum: f+1 matching stable
// replies, or 2f+1 matching replies when some are tentative. On timeout it
// retransmits to all replicas (which relay to the primary and arm their
// view-change timers).
func (c *Client) awaitReplies(req *wire.Request, env *wire.Envelope) ([]byte, error) {
	byDigest := make(map[crypto.Digest]*replyQuorum)
	retries := c.MaxRetries
	if retries == 0 {
		retries = 20
	}
	for attempt := 0; attempt < retries; attempt++ {
		deadline := time.NewTimer(c.cfg.Opts.RequestTimeout)
		for {
			var pkt transport.Packet
			var ok bool
			select {
			case pkt, ok = <-c.conn.Recv():
				if !ok {
					deadline.Stop()
					return nil, ErrClosed
				}
			case <-deadline.C:
				ok = false
			}
			if !ok {
				break // timeout: retransmit
			}
			rep := c.parseReply(pkt.Data, req.Timestamp)
			if rep == nil {
				continue
			}
			if result := c.recordReply(byDigest, rep); result != nil {
				deadline.Stop()
				return result, nil
			}
		}
		// Timeout: retransmit to every replica; replicas relay to the
		// primary and their liveness timers start ticking.
		c.maybeHello()
		c.broadcast(env)
	}
	return nil, ErrTimeout
}

// parseReply authenticates and filters one packet for the outstanding
// request, updating the view estimate.
func (c *Client) parseReply(data []byte, ts uint64) *wire.Reply {
	renv, err := wire.UnmarshalEnvelope(data)
	if err != nil || renv.Type != wire.MTReply {
		return nil
	}
	if int(renv.Sender) >= c.n {
		return nil
	}
	switch renv.Kind {
	case wire.AuthMAC:
		if !renv.Auth.VerifyEntry(0, c.sessionKeys[renv.Sender], renv.SignedBytes()) {
			return nil
		}
	case wire.AuthSig:
		if !crypto.Verify(c.cfg.Replicas[renv.Sender].PubKey, renv.SignedBytes(), renv.Sig) {
			return nil
		}
	default:
		return nil
	}
	rep, err := wire.UnmarshalReply(renv.Payload)
	if err != nil || rep.Replica != renv.Sender {
		return nil
	}
	if rep.ClientID != c.id || rep.Timestamp != ts {
		return nil
	}
	if rep.View > c.view {
		c.view = rep.View
	}
	return rep
}

// recordReply folds one reply into the quorum state; a non-nil return is
// the accepted result.
func (c *Client) recordReply(byDigest map[crypto.Digest]*replyQuorum, rep *wire.Reply) []byte {
	d := crypto.DigestOf(rep.Result)
	q, ok := byDigest[d]
	if !ok {
		q = &replyQuorum{
			result:    rep.Result,
			stable:    make(map[uint32]bool),
			tentative: make(map[uint32]bool),
		}
		byDigest[d] = q
	}
	if rep.Tentative() {
		q.tentative[rep.Replica] = true
	} else {
		q.stable[rep.Replica] = true
		delete(q.tentative, rep.Replica)
	}
	if len(q.stable) >= c.f+1 {
		return q.result
	}
	if len(q.stable)+len(q.tentative) >= c.quorum {
		return q.result
	}
	return nil
}
