package client

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/wire"
)

// Join runs the two-phase dynamic membership protocol of §3.1 (Fig. 2):
// phase 1 submits the client's address, public key, nonce and the
// application-level identification buffer and waits for f+1 matching
// challenges; phase 2 echoes the challenge solution and waits for the
// ordered join result carrying the assigned client identifier.
func (c *Client) Join(appAuth []byte) error {
	if c.closed {
		return ErrClosed
	}
	if c.joined {
		return errors.New("client: already joined")
	}
	var nb [8]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return err
	}
	nonce := binary.BigEndian.Uint64(nb[:])
	pubRaw := crypto.MarshalPublicKey(c.kp.Public())

	hello := wire.JoinOp{
		Phase:   wire.JoinPhaseHello,
		Addr:    c.conn.Addr(),
		PubKey:  pubRaw,
		Nonce:   nonce,
		AppAuth: appAuth,
	}
	req1 := &wire.Request{
		ClientID:  core.JoinSender,
		Timestamp: nonce,
		Flags:     wire.FlagSystem | wire.FlagBig,
		Op:        wire.MarshalSysOp(wire.OpJoin, hello.Marshal()),
	}
	env1 := c.seal(wire.MTRequest, req1.Marshal(), true)
	challenge, err := c.awaitChallenges(env1)
	if err != nil {
		return err
	}

	response := wire.JoinOp{
		Phase:    wire.JoinPhaseResponse,
		Addr:     c.conn.Addr(),
		PubKey:   pubRaw,
		Nonce:    nonce,
		Response: core.JoinResponseDigest(challenge, nonce),
	}
	req2 := &wire.Request{
		ClientID:  core.JoinSender,
		Timestamp: nonce + 1,
		Flags:     wire.FlagSystem | wire.FlagBig,
		Op:        wire.MarshalSysOp(wire.OpJoin, response.Marshal()),
	}
	env2 := c.seal(wire.MTRequest, req2.Marshal(), true)
	c.broadcast(env2)
	result, err := c.awaitJoinResult(req2, env2)
	if err != nil {
		return err
	}
	if !result.Accepted {
		return &ErrJoinDenied{Reason: result.Reason}
	}
	c.id = result.ClientID
	c.joined = true
	c.timestamp = uint64(time.Now().UnixNano())
	if c.cfg.Opts.UseMACs {
		c.sendHello()
	}
	return nil
}

// awaitChallenges broadcasts the phase-1 request until f+1 replicas sent a
// matching (identical) challenge.
func (c *Client) awaitChallenges(env *wire.Envelope) (crypto.Digest, error) {
	byChallenge := make(map[crypto.Digest]map[uint32]bool)
	retries := c.MaxRetries
	if retries == 0 {
		retries = 20
	}
	for attempt := 0; attempt < retries; attempt++ {
		c.broadcast(env)
		deadline := time.NewTimer(c.cfg.Opts.RequestTimeout)
	recv:
		for {
			select {
			case pkt, ok := <-c.conn.Recv():
				if !ok {
					deadline.Stop()
					return crypto.Digest{}, ErrClosed
				}
				renv, err := wire.UnmarshalEnvelope(pkt.Data)
				if err != nil || renv.Type != wire.MTJoinChall {
					continue
				}
				if int(renv.Sender) >= c.n || renv.Kind != wire.AuthSig {
					continue
				}
				if !crypto.Verify(c.cfg.Replicas[renv.Sender].PubKey, renv.SignedBytes(), renv.Sig) {
					continue
				}
				ch, err := wire.UnmarshalJoinChallenge(renv.Payload)
				if err != nil || ch.Replica != renv.Sender {
					continue
				}
				voters, ok := byChallenge[ch.Challenge]
				if !ok {
					voters = make(map[uint32]bool)
					byChallenge[ch.Challenge] = voters
				}
				voters[ch.Replica] = true
				if len(voters) >= c.f+1 {
					deadline.Stop()
					return ch.Challenge, nil
				}
			case <-deadline.C:
				break recv
			}
		}
	}
	return crypto.Digest{}, ErrTimeout
}

// awaitJoinResult waits for a quorum of matching join replies and parses
// the embedded result.
func (c *Client) awaitJoinResult(req *wire.Request, env *wire.Envelope) (*wire.JoinResult, error) {
	raw, err := c.awaitReplies(req, env)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalJoinResult(raw)
}

// Leave withdraws the client from the service (§3.1); the replicas remove
// it from their tables and refuse further requests.
func (c *Client) Leave() error {
	if c.closed {
		return ErrClosed
	}
	if !c.joined {
		return errors.New("client: not joined")
	}
	c.timestamp++
	req := &wire.Request{
		ClientID:  c.id,
		Timestamp: c.timestamp,
		Flags:     wire.FlagSystem | wire.FlagBig,
		Op:        wire.MarshalSysOp(wire.OpLeave, nil),
	}
	env := c.seal(wire.MTRequest, req.Marshal(), false)
	c.broadcast(env)
	result, err := c.awaitReplies(req, env)
	if err != nil {
		return err
	}
	if string(result) != "bye" {
		return errors.New("client: unexpected leave reply")
	}
	c.joined = false
	return nil
}
