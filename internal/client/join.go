package client

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Join runs the two-phase dynamic membership protocol of §3.1 (Fig. 2):
// phase 1 submits the client's address, public key, nonce and the
// application-level identification buffer and waits for f+1 matching
// challenges; phase 2 echoes the challenge solution and waits for the
// ordered join result carrying the assigned client identifier. Join
// honors ctx for cancellation and deadlines.
func (c *Client) Join(ctx context.Context, appAuth []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.joined {
		c.mu.Unlock()
		return errors.New("client: already joined")
	}
	c.mu.Unlock()

	var nb [8]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return err
	}
	nonce := binary.BigEndian.Uint64(nb[:])
	pubRaw := crypto.MarshalPublicKey(c.kp.Public())

	hello := wire.JoinOp{
		Phase:   wire.JoinPhaseHello,
		Addr:    c.conn.Addr(),
		PubKey:  pubRaw,
		Nonce:   nonce,
		AppAuth: appAuth,
	}
	req1 := &wire.Request{
		ClientID:  core.JoinSender,
		Timestamp: nonce,
		Flags:     wire.FlagSystem | wire.FlagBig,
		Op:        wire.MarshalSysOp(wire.OpJoin, hello.Marshal()),
	}
	env1 := c.seal(core.JoinSender, wire.MTRequest, req1.Marshal(), true)
	challenge, err := c.awaitChallenges(ctx, env1)
	if err != nil {
		return err
	}

	response := wire.JoinOp{
		Phase:    wire.JoinPhaseResponse,
		Addr:     c.conn.Addr(),
		PubKey:   pubRaw,
		Nonce:    nonce,
		Response: core.JoinResponseDigest(challenge, nonce),
	}
	req2 := &wire.Request{
		ClientID:  core.JoinSender,
		Timestamp: nonce + 1,
		Flags:     wire.FlagSystem | wire.FlagBig,
		Op:        wire.MarshalSysOp(wire.OpJoin, response.Marshal()),
	}
	env2 := c.seal(core.JoinSender, wire.MTRequest, req2.Marshal(), true)
	raw, err := c.submitSystem(ctx, core.JoinSender, req2.Timestamp, env2)
	if err != nil {
		return err
	}
	result, err := wire.UnmarshalJoinResult(raw)
	if err != nil {
		return err
	}
	if !result.Accepted {
		return &ErrJoinDenied{Reason: result.Reason}
	}

	c.mu.Lock()
	c.id = result.ClientID
	c.joined = true
	c.timestamp = uint64(time.Now().UnixNano())
	if c.cfg.Opts.UseMACs {
		c.lastHello = time.Now()
	}
	c.mu.Unlock()
	if c.cfg.Opts.UseMACs {
		c.broadcast(c.helloEnvelope(result.ClientID))
	}
	return nil
}

// submitSystem runs one pre-sealed system request through the call
// machinery (window slot, demux routing, per-call retransmission) and
// waits for its reply quorum. System requests are always multicast.
func (c *Client) submitSystem(ctx context.Context, clientID uint32, ts uint64, env *wire.Envelope) ([]byte, error) {
	select {
	case <-c.slots:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.demuxDone:
		return nil, ErrClosed
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.slots <- struct{}{}
		return nil, ErrClosed
	}
	call := c.register(ctx, clientID, ts, env, true, true)
	c.mu.Unlock()
	c.launch(call, "")
	return call.Result()
}

// awaitChallenges broadcasts the phase-1 request until f+1 replicas sent a
// matching (identical) challenge. The demux goroutine feeds verified
// challenges through a sink channel registered for the duration.
func (c *Client) awaitChallenges(ctx context.Context, env *wire.Envelope) (crypto.Digest, error) {
	sink := make(chan *wire.JoinChallenge, 4*c.n)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return crypto.Digest{}, ErrClosed
	}
	c.challSink = sink
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.challSink = nil
		c.mu.Unlock()
	}()

	byChallenge := make(map[crypto.Digest]map[uint32]bool)
	deadline := time.NewTimer(c.cfg.Opts.RequestTimeout)
	defer deadline.Stop()
	for attempt := 0; attempt < c.maxRetries; attempt++ {
		if err := c.broadcast(env); errors.Is(err, transport.ErrTooLarge) {
			return crypto.Digest{}, err
		}
		if attempt > 0 {
			deadline.Reset(c.cfg.Opts.RequestTimeout)
		}
	recv:
		for {
			select {
			case ch := <-sink:
				voters, ok := byChallenge[ch.Challenge]
				if !ok {
					voters = make(map[uint32]bool)
					byChallenge[ch.Challenge] = voters
				}
				voters[ch.Replica] = true
				if len(voters) >= c.f+1 {
					return ch.Challenge, nil
				}
			case <-deadline.C:
				break recv
			case <-ctx.Done():
				return crypto.Digest{}, ctx.Err()
			case <-c.demuxDone:
				return crypto.Digest{}, ErrClosed
			}
		}
	}
	return crypto.Digest{}, ErrTimeout
}

// Leave withdraws the client from the service (§3.1); the replicas remove
// it from their tables and refuse further requests.
func (c *Client) Leave(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if !c.joined {
		c.mu.Unlock()
		return ErrNotJoined
	}
	c.timestamp++
	ts := c.timestamp
	id := c.id
	c.mu.Unlock()

	req := &wire.Request{
		ClientID:  id,
		Timestamp: ts,
		Flags:     wire.FlagSystem | wire.FlagBig,
		Op:        wire.MarshalSysOp(wire.OpLeave, nil),
	}
	env := c.seal(id, wire.MTRequest, req.Marshal(), false)
	result, err := c.submitSystem(ctx, id, ts, env)
	if err != nil {
		return err
	}
	if string(result) != "bye" {
		return errors.New("client: unexpected leave reply")
	}
	c.mu.Lock()
	c.joined = false
	c.mu.Unlock()
	return nil
}
