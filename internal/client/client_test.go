package client

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// testSetup builds a config (no live replicas) and a client over the mem
// network for white-box protocol tests.
func testSetup(t *testing.T, useMACs bool) (*core.Config, *Client, []*crypto.KeyPair) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.UseMACs = useMACs
	opts.StateSize = 1 << 20
	cfg := &core.Config{Opts: opts}
	rkeys := make([]*crypto.KeyPair, 4)
	for i := 0; i < 4; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		rkeys[i] = kp
		cfg.Replicas = append(cfg.Replicas, core.NodeInfo{ID: uint32(i), Addr: fmt.Sprintf("r%d", i), PubKey: kp.Public()})
	}
	ckp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clients = append(cfg.Clients, core.NodeInfo{ID: 4, Addr: "c0", PubKey: ckp.Public()})

	net := transport.NewNetwork(1)
	t.Cleanup(func() { net.Close() })
	conn, err := net.Listen("c0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(cfg, 4, ckp, conn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cfg, cl, rkeys
}

// sealReply builds a reply envelope as replica id would.
func sealReply(t *testing.T, cfg *core.Config, cl *Client, rkeys []*crypto.KeyPair, id uint32, rep *wire.Reply, mac bool) []byte {
	t.Helper()
	env := &wire.Envelope{Type: wire.MTReply, Sender: id, Payload: rep.Marshal()}
	if mac {
		env.Kind = wire.AuthMAC
		env.Auth = crypto.ComputeAuthenticator([]crypto.SessionKey{cl.sessionKeys[id]}, env.SignedBytes())
	} else {
		env.Kind = wire.AuthSig
		env.Sig = rkeys[id].Sign(env.SignedBytes())
	}
	return env.Marshal()
}

func TestRecordReplyQuorums(t *testing.T) {
	_, cl, _ := testSetup(t, false)
	mkReply := func(replica uint32, result string, tentative bool) *wire.Reply {
		rep := &wire.Reply{Timestamp: 1, ClientID: 4, Replica: replica, Result: []byte(result)}
		if tentative {
			rep.Flags |= wire.FlagTentative
		}
		return rep
	}

	t.Run("f+1 stable suffices", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		if cl.recordReply(q, mkReply(0, "ok", false)) != nil {
			t.Fatal("one stable reply must not suffice")
		}
		if got := cl.recordReply(q, mkReply(1, "ok", false)); string(got) != "ok" {
			t.Fatalf("two stable matching replies (f+1) must be accepted, got %v", got)
		}
	})

	t.Run("tentative needs 2f+1", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		if cl.recordReply(q, mkReply(0, "ok", true)) != nil {
			t.Fatal("one tentative reply")
		}
		if cl.recordReply(q, mkReply(1, "ok", true)) != nil {
			t.Fatal("two tentative replies are below the 2f+1 quorum")
		}
		if got := cl.recordReply(q, mkReply(2, "ok", true)); string(got) != "ok" {
			t.Fatal("three matching tentative replies (2f+1) must be accepted")
		}
	})

	t.Run("mismatching results never combine", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		cl.recordReply(q, mkReply(0, "a", false))
		if cl.recordReply(q, mkReply(1, "b", false)) != nil {
			t.Fatal("divergent results must not form a quorum")
		}
		if got := cl.recordReply(q, mkReply(2, "a", false)); string(got) != "a" {
			t.Fatal("the matching pair must win")
		}
	})

	t.Run("duplicate replica does not double count", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		cl.recordReply(q, mkReply(0, "ok", false))
		if cl.recordReply(q, mkReply(0, "ok", false)) != nil {
			t.Fatal("the same replica retransmitting must count once")
		}
	})

	t.Run("stable upgrade replaces tentative vote", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		cl.recordReply(q, mkReply(0, "ok", true))
		cl.recordReply(q, mkReply(1, "ok", true))
		// Replica 0 resends as stable: now 1 stable + 1 tentative = 2
		// total, still below both quorums.
		if cl.recordReply(q, mkReply(0, "ok", false)) != nil {
			t.Fatal("1 stable + 1 tentative must not be accepted")
		}
		if got := cl.recordReply(q, mkReply(1, "ok", false)); string(got) != "ok" {
			t.Fatal("2 stable must be accepted")
		}
	})
}

func TestParseReplyAuthentication(t *testing.T) {
	for _, mac := range []bool{true, false} {
		name := "signatures"
		if mac {
			name = "macs"
		}
		t.Run(name, func(t *testing.T) {
			cfg, cl, rkeys := testSetup(t, mac)
			rep := &wire.Reply{Timestamp: 9, ClientID: 4, Replica: 2, Result: []byte("r")}
			raw := sealReply(t, cfg, cl, rkeys, 2, rep, mac)
			if cl.parseReply(raw, 9) == nil {
				t.Fatal("authentic reply must parse")
			}
			if cl.parseReply(raw, 8) != nil {
				t.Fatal("stale timestamp must be filtered")
			}
			// Claimed sender != signer.
			env := &wire.Envelope{Type: wire.MTReply, Sender: 1, Payload: rep.Marshal(), Kind: wire.AuthSig}
			env.Sig = rkeys[2].Sign(env.SignedBytes())
			if cl.parseReply(env.Marshal(), 9) != nil {
				t.Fatal("reply claiming another replica must be rejected")
			}
			// Replica id out of range.
			badID := &wire.Envelope{Type: wire.MTReply, Sender: 99, Payload: rep.Marshal(), Kind: wire.AuthSig}
			badID.Sig = rkeys[2].Sign(badID.SignedBytes())
			if cl.parseReply(badID.Marshal(), 9) != nil {
				t.Fatal("unknown replica id must be rejected")
			}
			// Garbage bytes.
			if cl.parseReply([]byte("garbage"), 9) != nil {
				t.Fatal("garbage must be rejected")
			}
			// Reply body whose Replica field disagrees with the envelope.
			lying := &wire.Reply{Timestamp: 9, ClientID: 4, Replica: 3, Result: []byte("r")}
			rawLying := sealReply(t, cfg, cl, rkeys, 2, lying, mac)
			if cl.parseReply(rawLying, 9) != nil {
				t.Fatal("reply body/envelope sender mismatch must be rejected")
			}
		})
	}
}

func TestParseReplyUpdatesViewEstimate(t *testing.T) {
	cfg, cl, rkeys := testSetup(t, false)
	rep := &wire.Reply{View: 5, Timestamp: 1, ClientID: 4, Replica: 1, Result: []byte("x")}
	raw := sealReply(t, cfg, cl, rkeys, 1, rep, false)
	if cl.parseReply(raw, 1) == nil {
		t.Fatal("reply must parse")
	}
	if cl.view != 5 {
		t.Fatalf("view estimate = %d, want 5", cl.view)
	}
	// Older view does not regress the estimate.
	rep2 := &wire.Reply{View: 3, Timestamp: 1, ClientID: 4, Replica: 2, Result: []byte("x")}
	cl.parseReply(sealReply(t, cfg, cl, rkeys, 2, rep2, false), 1)
	if cl.view != 5 {
		t.Fatalf("view estimate regressed to %d", cl.view)
	}
}

func TestInvokeOnClosedClient(t *testing.T) {
	_, cl, _ := testSetup(t, false)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invoke([]byte("x")); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal("double close must be nil")
	}
}

func TestDynamicClientMustJoinFirst(t *testing.T) {
	opts := core.DefaultOptions()
	opts.DynamicClients = true
	opts.StateSize = 1 << 20
	cfg := &core.Config{Opts: opts}
	for i := 0; i < 4; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Replicas = append(cfg.Replicas, core.NodeInfo{ID: uint32(i), Addr: fmt.Sprintf("r%d", i), PubKey: kp.Public()})
	}
	net := transport.NewNetwork(1)
	defer net.Close()
	conn, err := net.Listen("dyn")
	if err != nil {
		t.Fatal(err)
	}
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewDynamic(cfg, kp, conn)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Invoke([]byte("x")); err == nil {
		t.Fatal("invoke before join must fail")
	}
	if err := cl.Leave(); err == nil {
		t.Fatal("leave before join must fail")
	}
}

func TestClientTimestampsMonotonicAcrossInstances(t *testing.T) {
	cfg, cl, _ := testSetup(t, false)
	first := cl.timestamp
	net2 := transport.NewNetwork(2)
	defer net2.Close()
	conn, err := net2.Listen("c0")
	if err != nil {
		t.Fatal(err)
	}
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := New(cfg, 4, kp, conn)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if cl2.timestamp < first {
		t.Fatal("a later client instance must not reuse earlier timestamps")
	}
}
