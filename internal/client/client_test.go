package client

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// testSetup builds a config (no live replicas) and a client over the mem
// network for white-box protocol tests.
func testSetup(t *testing.T, useMACs bool, opts ...Option) (*core.Config, *Client, []*crypto.KeyPair) {
	t.Helper()
	o := core.DefaultOptions()
	o.UseMACs = useMACs
	o.StateSize = 1 << 20
	o.RequestTimeout = 20 * time.Millisecond
	cfg := &core.Config{Opts: o}
	rkeys := make([]*crypto.KeyPair, 4)
	for i := 0; i < 4; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		rkeys[i] = kp
		cfg.Replicas = append(cfg.Replicas, core.NodeInfo{ID: uint32(i), Addr: fmt.Sprintf("r%d", i), PubKey: kp.Public()})
	}
	ckp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clients = append(cfg.Clients, core.NodeInfo{ID: 4, Addr: "c0", PubKey: ckp.Public()})

	net := transport.NewNetwork(1)
	t.Cleanup(func() { net.Close() })
	conn, err := net.Listen("c0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(cfg, 4, ckp, conn, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cfg, cl, rkeys
}

// sealReply builds a reply envelope as replica id would.
func sealReply(t *testing.T, cfg *core.Config, cl *Client, rkeys []*crypto.KeyPair, id uint32, rep *wire.Reply, mac bool) []byte {
	t.Helper()
	env := &wire.Envelope{Type: wire.MTReply, Sender: id, Payload: rep.Marshal()}
	if mac {
		env.Kind = wire.AuthMAC
		env.Auth = crypto.ComputeAuthenticator([]crypto.SessionKey{cl.sessionKeys[id]}, env.SignedBytes())
	} else {
		env.Kind = wire.AuthSig
		env.Sig = rkeys[id].Sign(env.SignedBytes())
	}
	return env.Marshal()
}

// pendingCall registers a bare in-flight call for dispatch tests.
func pendingCall(cl *Client, ts uint64) *Call {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	env := cl.seal(cl.id, wire.MTRequest, (&wire.Request{ClientID: cl.id, Timestamp: ts}).Marshal(), false)
	return cl.register(context.Background(), cl.id, ts, env, false, false)
}

func mkReply(ts uint64, replica uint32, result string, tentative bool) *wire.Reply {
	rep := &wire.Reply{Timestamp: ts, ClientID: 4, Replica: replica, Result: []byte(result)}
	if tentative {
		rep.Flags |= wire.FlagTentative
	}
	return rep
}

func TestRecordReplyQuorums(t *testing.T) {
	const f, quorum = 1, 3
	rec := func(q map[crypto.Digest]*replyQuorum, rep *wire.Reply) ([]byte, bool) {
		return recordReply(q, rep, f, quorum)
	}

	t.Run("f+1 stable suffices", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		if _, ok := rec(q, mkReply(1, 0, "ok", false)); ok {
			t.Fatal("one stable reply must not suffice")
		}
		if got, ok := rec(q, mkReply(1, 1, "ok", false)); !ok || string(got) != "ok" {
			t.Fatalf("two stable matching replies (f+1) must be accepted, got %v", got)
		}
	})

	t.Run("tentative needs 2f+1", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		if _, ok := rec(q, mkReply(1, 0, "ok", true)); ok {
			t.Fatal("one tentative reply")
		}
		if _, ok := rec(q, mkReply(1, 1, "ok", true)); ok {
			t.Fatal("two tentative replies are below the 2f+1 quorum")
		}
		if got, ok := rec(q, mkReply(1, 2, "ok", true)); !ok || string(got) != "ok" {
			t.Fatal("three matching tentative replies (2f+1) must be accepted")
		}
	})

	t.Run("mismatching results never combine", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		rec(q, mkReply(1, 0, "a", false))
		if _, ok := rec(q, mkReply(1, 1, "b", false)); ok {
			t.Fatal("divergent results must not form a quorum")
		}
		if got, ok := rec(q, mkReply(1, 2, "a", false)); !ok || string(got) != "a" {
			t.Fatal("the matching pair must win")
		}
	})

	t.Run("duplicate replica does not double count", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		rec(q, mkReply(1, 0, "ok", false))
		if _, ok := rec(q, mkReply(1, 0, "ok", false)); ok {
			t.Fatal("the same replica retransmitting must count once")
		}
	})

	t.Run("stable upgrade replaces tentative vote", func(t *testing.T) {
		q := make(map[crypto.Digest]*replyQuorum)
		rec(q, mkReply(1, 0, "ok", true))
		rec(q, mkReply(1, 1, "ok", true))
		// Replica 0 resends as stable: now 1 stable + 1 tentative = 2
		// total, still below both quorums.
		if _, ok := rec(q, mkReply(1, 0, "ok", false)); ok {
			t.Fatal("1 stable + 1 tentative must not be accepted")
		}
		if got, ok := rec(q, mkReply(1, 1, "ok", false)); !ok || string(got) != "ok" {
			t.Fatal("2 stable must be accepted")
		}
	})
}

func TestDispatchAuthentication(t *testing.T) {
	for _, mac := range []bool{true, false} {
		name := "signatures"
		if mac {
			name = "macs"
		}
		t.Run(name, func(t *testing.T) {
			cfg, cl, rkeys := testSetup(t, mac)
			call := pendingCall(cl, 9)

			// A reply for another timestamp must not touch this call.
			cl.dispatch(sealReply(t, cfg, cl, rkeys, 2, mkReply(8, 2, "r", false), mac))
			// Claimed sender != signer.
			lying := &wire.Envelope{Type: wire.MTReply, Sender: 1, Payload: mkReply(9, 1, "r", false).Marshal(), Kind: wire.AuthSig}
			lying.Sig = rkeys[2].Sign(lying.SignedBytes())
			cl.dispatch(lying.Marshal())
			// Replica id out of range.
			badID := &wire.Envelope{Type: wire.MTReply, Sender: 99, Payload: mkReply(9, 99, "r", false).Marshal(), Kind: wire.AuthSig}
			badID.Sig = rkeys[2].Sign(badID.SignedBytes())
			cl.dispatch(badID.Marshal())
			// Garbage bytes.
			cl.dispatch([]byte("garbage"))
			// Reply body whose Replica field disagrees with the envelope.
			cl.dispatch(sealReply(t, cfg, cl, rkeys, 2, mkReply(9, 3, "r", false), mac))
			if call.Err() != nil || len(call.byDigest) != 0 {
				t.Fatal("unauthentic or misrouted replies must not reach the call")
			}

			// Two authentic replies complete the call (f+1 stable).
			cl.dispatch(sealReply(t, cfg, cl, rkeys, 2, mkReply(9, 2, "r", false), mac))
			cl.dispatch(sealReply(t, cfg, cl, rkeys, 3, mkReply(9, 3, "r", false), mac))
			result, err := call.Result()
			if err != nil || string(result) != "r" {
				t.Fatalf("authentic quorum must complete the call, got %q/%v", result, err)
			}
		})
	}
}

// TestDispatchDropsCorruptReplies: replies whose authenticator or
// signature fails verification are dropped wholesale — they must not
// count toward a reply quorum, complete a call early, or contribute view
// votes — and a lying replica's divergent result must not reach the f+1
// acceptance bar.
func TestDispatchDropsCorruptReplies(t *testing.T) {
	for _, mac := range []bool{true, false} {
		name := "signatures"
		if mac {
			name = "macs"
		}
		t.Run(name, func(t *testing.T) {
			cfg, cl, rkeys := testSetup(t, mac)
			call := pendingCall(cl, 5)

			// f+1 matching replies with broken auth, all claiming a
			// far-future view: every one must be dropped before the view
			// votes or the reply quorum are touched.
			for _, id := range []uint32{0, 1} {
				rep := &wire.Reply{View: 9, Timestamp: 5, ClientID: 4, Replica: id, Result: []byte("ok")}
				raw := sealReply(t, cfg, cl, rkeys, id, rep, mac)
				raw[len(raw)-1] ^= 0xFF // break the auth tail, keep the framing
				cl.dispatch(raw)
			}
			select {
			case <-call.Done():
				t.Fatal("corrupt replies completed the call")
			default:
			}
			if v := cl.viewEstimate(); v != 0 {
				t.Fatalf("corrupt replies moved the view estimate to %d, want 0", v)
			}
			if len(call.byDigest) != 0 {
				t.Fatal("corrupt replies must not enter the reply quorum")
			}

			// One honest reply plus one lying (authentic but divergent
			// result) reply: two votes, no matching pair, no completion.
			cl.dispatch(sealReply(t, cfg, cl, rkeys, 0, mkReply(5, 0, "ok", false), mac))
			cl.dispatch(sealReply(t, cfg, cl, rkeys, 2, mkReply(5, 2, "evil", false), mac))
			select {
			case <-call.Done():
				t.Fatal("a lying replica's divergent result completed the call")
			default:
			}

			// The second honest reply forms the f+1 matching quorum; the
			// lie is outvoted.
			cl.dispatch(sealReply(t, cfg, cl, rkeys, 1, mkReply(5, 1, "ok", false), mac))
			result, err := call.Result()
			if err != nil || string(result) != "ok" {
				t.Fatalf("honest quorum must win, got %q/%v", result, err)
			}
		})
	}
}

func TestDispatchUpdatesViewEstimate(t *testing.T) {
	cfg, cl, rkeys := testSetup(t, false)
	pendingCall(cl, 1)
	// A single replica reporting a high view must not move the estimate:
	// one Byzantine replica could otherwise steer retransmissions at a
	// primary of its choosing.
	cl.dispatch(sealReply(t, cfg, cl, rkeys, 1, &wire.Reply{View: 5, Timestamp: 1, ClientID: 4, Replica: 1, Result: []byte("x")}, false))
	if cl.view != 0 {
		t.Fatalf("view estimate = %d after one vote, want 0 (needs f+1 support)", cl.view)
	}
	// A second distinct replica reporting >= 5 gives view 5 its f+1
	// support (f=1): the estimate is the highest view f+1 replicas back.
	cl.dispatch(sealReply(t, cfg, cl, rkeys, 2, &wire.Reply{View: 6, Timestamp: 1, ClientID: 4, Replica: 2, Result: []byte("x")}, false))
	if cl.view != 5 {
		t.Fatalf("view estimate = %d, want 5 (f+1-supported)", cl.view)
	}
	// Older view does not regress the estimate.
	cl.dispatch(sealReply(t, cfg, cl, rkeys, 3, &wire.Reply{View: 3, Timestamp: 1, ClientID: 4, Replica: 3, Result: []byte("x")}, false))
	if cl.view != 5 {
		t.Fatalf("view estimate regressed to %d", cl.view)
	}
}

func TestInvokeOnClosedClient(t *testing.T) {
	_, cl, _ := testSetup(t, false)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invoke(context.Background(), []byte("x")); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal("double close must be nil")
	}
}

func TestDynamicClientMustJoinFirst(t *testing.T) {
	opts := core.DefaultOptions()
	opts.DynamicClients = true
	opts.StateSize = 1 << 20
	cfg := &core.Config{Opts: opts}
	for i := 0; i < 4; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Replicas = append(cfg.Replicas, core.NodeInfo{ID: uint32(i), Addr: fmt.Sprintf("r%d", i), PubKey: kp.Public()})
	}
	net := transport.NewNetwork(1)
	defer net.Close()
	conn, err := net.Listen("dyn")
	if err != nil {
		t.Fatal(err)
	}
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewDynamic(cfg, kp, conn)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Invoke(context.Background(), []byte("x")); err != ErrNotJoined {
		t.Fatalf("invoke before join: got %v, want ErrNotJoined", err)
	}
	if err := cl.Leave(context.Background()); err != ErrNotJoined {
		t.Fatalf("leave before join: got %v, want ErrNotJoined", err)
	}
}

func TestClientTimestampsMonotonicAcrossInstances(t *testing.T) {
	cfg, cl, _ := testSetup(t, false)
	first := cl.timestamp
	net2 := transport.NewNetwork(2)
	defer net2.Close()
	conn, err := net2.Listen("c0")
	if err != nil {
		t.Fatal(err)
	}
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := New(cfg, 4, kp, conn)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if cl2.timestamp < first {
		t.Fatal("a later client instance must not reuse earlier timestamps")
	}
}

// TestSubmitContextCancellation: a call against unreachable replicas must
// complete promptly when its context is cancelled mid-quorum.
func TestSubmitContextCancellation(t *testing.T) {
	_, cl, _ := testSetup(t, false, WithMaxRetries(1000))
	ctx, cancel := context.WithCancel(context.Background())
	call := cl.Submit(ctx, []byte("never-answered"))
	select {
	case <-call.Done():
		t.Fatal("call must still be in flight")
	case <-time.After(5 * time.Millisecond):
	}
	cancel()
	select {
	case <-call.Done():
	case <-time.After(time.Second):
		t.Fatal("cancellation must complete the call promptly")
	}
	if _, err := call.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestSubmitWindowBackpressure: the pipeline window bounds in-flight
// calls; a blocked Submit honors context cancellation.
func TestSubmitWindowBackpressure(t *testing.T) {
	_, cl, _ := testSetup(t, false, WithPipelineDepth(2), WithMaxRetries(1000))
	ctx := context.Background()
	c1 := cl.Submit(ctx, []byte("a"))
	c2 := cl.Submit(ctx, []byte("b"))
	if c1.Err() != nil || c2.Err() != nil {
		t.Fatal("first two calls fill the window")
	}
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	c3 := cl.Submit(cctx, []byte("c"))
	if _, err := c3.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit must fail with the context: %v", err)
	}
}

// TestSubmitTimestampSpanGate: the pipeline must cap the in-flight
// timestamp span at the replica window W, or a stalled oldest request
// would slide below the replicas' dedup floor and never execute. With
// the oldest call stuck, fast siblings completing and resubmitting may
// advance the timestamp to stuck+W-1 but no further.
func TestSubmitTimestampSpanGate(t *testing.T) {
	const w = 4
	opts := []Option{WithPipelineDepth(2), WithMaxRetries(1000)}
	cfg, cl, rkeys := testSetup(t, false, opts...)
	cfg.Opts.ClientWindow = w
	cl.window = w // testSetup built the client before the override

	stuck := cl.Submit(context.Background(), []byte("stuck"))
	base := stuck.timestamp
	// Complete sibling calls by quorum so their slots recycle; each
	// resubmission takes a fresh, higher timestamp — up to base+w-1,
	// the last one inside the window.
	for i := 0; i < w-1; i++ {
		sib := cl.Submit(context.Background(), []byte("fast"))
		if got := sib.timestamp - base; got >= w {
			t.Fatalf("timestamp span %d breached window %d", got, w)
		}
		rep := &wire.Reply{Timestamp: sib.timestamp, ClientID: 4, Result: []byte("ok")}
		cl.dispatch(sealReply(t, cfg, cl, rkeys, 0, withReplica(rep, 0), false))
		cl.dispatch(sealReply(t, cfg, cl, rkeys, 1, withReplica(rep, 1), false))
		if _, err := sib.Result(); err != nil {
			t.Fatalf("sibling %d: %v", i, err)
		}
	}
	// The next submission would need ts base+w+1 — beyond the span.
	// It must block until the stuck call completes (here: via context).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	blocked := cl.Submit(ctx, []byte("blocked"))
	if _, err := blocked.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit beyond the span must block on the oldest call: %v", err)
	}
	if stuck.Err() != nil {
		t.Fatal("stuck call must still be in flight")
	}
	// Completing the oldest reopens the window.
	rep := &wire.Reply{Timestamp: base, ClientID: 4, Result: []byte("ok")}
	cl.dispatch(sealReply(t, cfg, cl, rkeys, 0, withReplica(rep, 0), false))
	cl.dispatch(sealReply(t, cfg, cl, rkeys, 1, withReplica(rep, 1), false))
	if _, err := stuck.Result(); err != nil {
		t.Fatal(err)
	}
	follow := cl.Submit(context.Background(), []byte("follow"))
	if follow.Err() != nil {
		t.Fatal("window must reopen after the oldest call completes")
	}
}

// withReplica stamps the reply's originating replica (quorum replies must
// come from distinct replicas).
func withReplica(rep *wire.Reply, id uint32) *wire.Reply {
	r := *rep
	r.Replica = id
	return &r
}

// TestCallCompletionAfterClose: closing the client completes in-flight
// calls with ErrClosed instead of leaving waiters hanging.
func TestCallCompletionAfterClose(t *testing.T) {
	_, cl, _ := testSetup(t, false, WithMaxRetries(1000))
	call := cl.Submit(context.Background(), []byte("x"))
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-call.Done():
	case <-time.After(time.Second):
		t.Fatal("close must complete in-flight calls")
	}
	if _, err := call.Result(); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestRetransmissionTimeout: with unreachable replicas the retry budget
// expires into ErrTimeout (and the per-call timer stops afterwards).
func TestRetransmissionTimeout(t *testing.T) {
	_, cl, _ := testSetup(t, false, WithMaxRetries(2))
	if _, err := cl.Invoke(context.Background(), []byte("x")); err != ErrTimeout {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

// TestCloseNoGoroutineLeak: a client that submitted calls and closed must
// leave no demux goroutine, timer callback, or context watcher behind.
func TestCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		_, cl, _ := testSetup(t, true, WithPipelineDepth(4), WithMaxRetries(1000))
		ctx, cancel := context.WithCancel(context.Background())
		calls := make([]*Call, 0, 4)
		for i := 0; i < 4; i++ {
			calls = append(calls, cl.Submit(ctx, []byte("x")))
		}
		cancel()
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
		for _, call := range calls {
			<-call.Done()
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tooLargeConn fails every transmit with transport.ErrTooLarge, modeling
// an oversized datagram.
type tooLargeConn struct {
	recv chan transport.Packet
}

func (c *tooLargeConn) Addr() string { return "huge" }
func (c *tooLargeConn) Send(string, []byte) error {
	return fmt.Errorf("%w: test", transport.ErrTooLarge)
}
func (c *tooLargeConn) Recv() <-chan transport.Packet { return c.recv }
func (c *tooLargeConn) Close() error {
	close(c.recv)
	return nil
}

// TestSubmitSurfacesErrTooLarge: a deterministic transport refusal fails
// the call immediately instead of burning retransmission rounds into
// ErrTimeout.
func TestSubmitSurfacesErrTooLarge(t *testing.T) {
	opts := core.DefaultOptions()
	opts.UseMACs = false
	opts.StateSize = 1 << 20
	cfg := &core.Config{Opts: opts}
	for i := 0; i < 4; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Replicas = append(cfg.Replicas, core.NodeInfo{ID: uint32(i), Addr: fmt.Sprintf("r%d", i), PubKey: kp.Public()})
	}
	ckp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clients = append(cfg.Clients, core.NodeInfo{ID: 4, Addr: "huge", PubKey: ckp.Public()})
	cl, err := New(cfg, 4, ckp, &tooLargeConn{recv: make(chan transport.Packet)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	if _, err := cl.Invoke(context.Background(), []byte("x")); !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("oversized send must fail immediately, took %s", elapsed)
	}
	if !strings.Contains(fmt.Sprint(transport.ErrTooLarge), "size limit") {
		t.Fatal("sanity: typed error text changed")
	}
}

// TestRetransmitBackoff: the per-call retransmission delay grows
// exponentially from the base interval, stays inside the jitter window
// [d/2, d], and caps at the backoff ceiling.
func TestRetransmitBackoff(t *testing.T) {
	_, cl, _ := testSetup(t, false)
	defer cl.Close()
	base := cl.cfg.Opts.RequestTimeout
	if want := 8 * base; cl.backoffCap != want {
		t.Fatalf("default backoff cap = %v, want %v", cl.backoffCap, want)
	}
	call := &Call{c: cl}
	for attempt := 0; attempt < 12; attempt++ {
		want := base
		for i := backoffGraceRounds; i < attempt && want < cl.backoffCap; i++ {
			want *= 2
		}
		if want > cl.backoffCap {
			want = cl.backoffCap
		}
		for trial := 0; trial < 50; trial++ {
			got := call.retransmitDelay(attempt)
			if got < base || got > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, base, want)
			}
		}
	}
}

// TestRetransmitBackoffCapOption: WithBackoffCap bounds the growth, and
// the delay never drops below the base interval — a cap at or below
// RequestTimeout degrades to fixed-interval retransmission, never to a
// faster rate.
func TestRetransmitBackoffCapOption(t *testing.T) {
	_, cl, _ := testSetup(t, false, WithBackoffCap(30*time.Millisecond))
	defer cl.Close()
	base := cl.cfg.Opts.RequestTimeout // 20ms in testSetup
	call := &Call{c: cl}
	for attempt := 0; attempt < 10; attempt++ {
		got := call.retransmitDelay(attempt)
		if got > 30*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds the 30ms cap", attempt, got)
		}
		if got < base {
			t.Fatalf("attempt %d: delay %v below the %v base interval", attempt, got, base)
		}
	}
	_, cl2, _ := testSetup(t, false, WithBackoffCap(time.Millisecond))
	defer cl2.Close()
	call2 := &Call{c: cl2}
	for attempt := 0; attempt < 5; attempt++ {
		if got := call2.retransmitDelay(attempt); got != base {
			t.Fatalf("cap below base: attempt %d delay %v, want fixed %v", attempt, got, base)
		}
	}
}
