package state

import (
	"fmt"

	"repro/internal/crypto"
)

// NodeRef names a Merkle tree node: level 0 is a page, the root sits at
// level Height.
type NodeRef struct {
	Level int
	Index int
}

// Syncer drives the tree-walking state-transfer algorithm of §2.1: given
// the agreed root digest of a checkpoint, it walks down from the root,
// compares remote child digests with the local tree, and requests only the
// differing subtrees. Every received node and page is verified against the
// digest expected from its (already verified) parent, so the transferred
// state is authenticated by the agreed root alone — data messages need no
// signatures.
//
// The caller owns the network: it asks Pending() what to fetch, feeds
// responses to OnNode/OnPage, and applies returned pages to the region.
type Syncer struct {
	target   crypto.Digest
	levels   [][]crypto.Digest // local tree
	expected map[NodeRef]crypto.Digest
	pending  map[NodeRef]struct{}
	verified int // pages fetched and verified
}

// NewSyncer prepares a sync of the local region content (described by its
// current leaf digests) toward the agreed root digest target.
func NewSyncer(localLeaves []crypto.Digest, target crypto.Digest) *Syncer {
	levels := buildLevels(localLeaves)
	s := &Syncer{
		target:   target,
		levels:   levels,
		expected: make(map[NodeRef]crypto.Digest),
		pending:  make(map[NodeRef]struct{}),
	}
	root := NodeRef{Level: len(levels) - 1, Index: 0}
	if levels[root.Level][0] != target {
		s.expected[root] = target
		s.pending[root] = struct{}{}
	}
	return s
}

// Done reports whether the local tree now matches the target root.
func (s *Syncer) Done() bool { return len(s.pending) == 0 }

// Pending returns the outstanding fetches (nodes whose children we need,
// or pages when Level == 0). The caller may re-request them at any time;
// fetching is idempotent.
func (s *Syncer) Pending() []NodeRef {
	out := make([]NodeRef, 0, len(s.pending))
	for ref := range s.pending {
		out = append(out, ref)
	}
	return out
}

// PagesVerified returns how many pages were fetched and verified.
func (s *Syncer) PagesVerified() int { return s.verified }

// OnNode processes the children digests of node ref (Level >= 1). It
// verifies them against the expected node digest and schedules fetches for
// the children that differ locally. It returns an error when the response
// fails verification (a faulty peer); the caller should retry elsewhere.
func (s *Syncer) OnNode(ref NodeRef, children []crypto.Digest) error {
	if ref.Level < 1 || ref.Level >= len(s.levels) {
		return fmt.Errorf("state: node level %d out of range", ref.Level)
	}
	want, ok := s.expected[ref]
	if !ok {
		// Not requested (duplicate or stale): ignore.
		return nil
	}
	var buf []byte
	for _, d := range children {
		buf = append(buf, d[:]...)
	}
	if crypto.DigestOf(buf) != want {
		return fmt.Errorf("state: node (%d,%d) children do not hash to the expected digest", ref.Level, ref.Index)
	}
	below := s.levels[ref.Level-1]
	base := ref.Index * Fanout
	if base+len(children) > len(below) {
		return fmt.Errorf("state: node (%d,%d) has %d children, local tree has %d", ref.Level, ref.Index, len(children), len(below)-base)
	}
	delete(s.pending, ref)
	delete(s.expected, ref)
	for i, d := range children {
		childRef := NodeRef{Level: ref.Level - 1, Index: base + i}
		if below[childRef.Index] == d {
			continue // subtree already identical
		}
		s.expected[childRef] = d
		s.pending[childRef] = struct{}{}
	}
	return nil
}

// OnPage processes fetched page data. It verifies the page against the
// expected leaf digest and, on success, reports that the page should be
// applied to the region (apply == true). Duplicate or unrequested pages
// return apply == false with no error.
func (s *Syncer) OnPage(index int, data []byte) (apply bool, err error) {
	ref := NodeRef{Level: 0, Index: index}
	want, ok := s.expected[ref]
	if !ok {
		return false, nil
	}
	if crypto.DigestOf(data) != want {
		return false, fmt.Errorf("state: page %d does not hash to the expected digest", index)
	}
	delete(s.pending, ref)
	delete(s.expected, ref)
	s.levels[0][index] = want
	s.verified++
	return true, nil
}
