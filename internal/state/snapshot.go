package state

import (
	"fmt"

	"repro/internal/crypto"
)

// Snapshot is an immutable checkpoint of the region at a sequence number.
// It shares unmodified pages with the live region (copy-on-write) and owns
// its full Merkle tree, so it can serve state-transfer fetches after the
// live region has moved on.
type Snapshot struct {
	Seq    uint64
	root   crypto.Digest
	levels [][]crypto.Digest
	pages  [][]byte // nil entry = zero page
	psize  int
}

// Snapshot captures the current content as checkpoint seq. The pages are
// shared copy-on-write: the snapshot stays O(dirty pages) as the live
// region keeps executing.
func (r *Region) Snapshot(seq uint64) *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLeavesLocked()
	leaf := make([]crypto.Digest, len(r.leaf))
	copy(leaf, r.leaf)
	pages := make([][]byte, len(r.pages))
	copy(pages, r.pages)
	for i := range r.shared {
		if r.pages[i] != nil {
			r.shared[i] = true
		}
	}
	levels := buildLevels(leaf)
	s := &Snapshot{
		Seq:    seq,
		root:   levels[len(levels)-1][0],
		levels: levels,
		pages:  pages,
		psize:  r.pageSize,
	}
	r.snaps[seq] = s
	return s
}

// SnapshotAt returns the retained snapshot for seq, if any.
func (r *Region) SnapshotAt(seq uint64) (*Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.snaps[seq]
	return s, ok
}

// ReleaseBelow discards retained snapshots with Seq < seq (log garbage
// collection at stable checkpoints).
func (r *Region) ReleaseBelow(seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.snaps {
		if k < seq {
			delete(r.snaps, k)
		}
	}
}

// ReleaseAbove discards retained snapshots with Seq > seq (rollback of
// tentative checkpoints during a view change).
func (r *Region) ReleaseAbove(seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.snaps {
		if k > seq {
			delete(r.snaps, k)
		}
	}
}

// Restore rewinds the live region to the snapshot's content (rollback of
// tentative executions on a view change). Only pages whose digest differs
// are touched.
func (r *Region) Restore(s *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLeavesLocked()
	for i := range r.pages {
		if r.leaf[i] == s.levels[0][i] {
			continue
		}
		r.touchPageLocked(i)
		if src := s.pages[i]; src != nil {
			copy(r.pages[i], src)
		} else {
			clear(r.pages[i])
		}
	}
}

// Root returns the snapshot's Merkle root.
func (s *Snapshot) Root() crypto.Digest { return s.root }

// Height returns the snapshot tree's height (root level).
func (s *Snapshot) Height() int { return len(s.levels) - 1 }

// Children returns the child digests of node (level, index); level 1 nodes
// have page digests as children. It returns an error outside the tree.
func (s *Snapshot) Children(level, index int) ([]crypto.Digest, error) {
	if level < 1 || level > s.Height() {
		return nil, fmt.Errorf("state: level %d out of range [1,%d]", level, s.Height())
	}
	if index < 0 || index >= len(s.levels[level]) {
		return nil, fmt.Errorf("state: node %d out of range at level %d", index, level)
	}
	return childrenOf(s.levels, level, index), nil
}

// NodeDigest returns the digest of node (level, index); level 0 is a page.
func (s *Snapshot) NodeDigest(level, index int) (crypto.Digest, error) {
	if level < 0 || level > s.Height() {
		return crypto.Digest{}, fmt.Errorf("state: level %d out of range [0,%d]", level, s.Height())
	}
	if index < 0 || index >= len(s.levels[level]) {
		return crypto.Digest{}, fmt.Errorf("state: node %d out of range at level %d", index, level)
	}
	return s.levels[level][index], nil
}

// Page returns a copy of the snapshot's page at index.
func (s *Snapshot) Page(index int) ([]byte, error) {
	if index < 0 || index >= len(s.pages) {
		return nil, fmt.Errorf("state: page %d out of range [0,%d)", index, len(s.pages))
	}
	out := make([]byte, s.psize)
	if src := s.pages[index]; src != nil {
		copy(out, src)
	}
	return out, nil
}

// NumPages returns the number of pages covered by the snapshot.
func (s *Snapshot) NumPages() int { return len(s.pages) }
