package state

import (
	"bytes"
	"testing"
)

func TestRestoreRewindsToSnapshot(t *testing.T) {
	r := mustRegion(t, 16*256, 256)
	if _, err := r.WriteAt([]byte("v1-page0"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteAt([]byte("v1-page5"), 5*256); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot(10)
	want := snap.Root()

	// Diverge: modify existing pages, touch a fresh one.
	if _, err := r.WriteAt([]byte("v2-page0"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteAt([]byte("fresh"), 9*256); err != nil {
		t.Fatal(err)
	}
	if r.Root() == want {
		t.Fatal("root must have diverged")
	}
	r.Restore(snap)
	if r.Root() != want {
		t.Fatal("Restore must reproduce the snapshot root exactly")
	}
	buf := make([]byte, 8)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("v1-page0")) {
		t.Fatalf("page 0 = %q", buf)
	}
	// The fresh page is back to zeros.
	if _, err := r.ReadAt(buf, 9*256); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("page touched after the snapshot must be zeroed by Restore")
		}
	}
}

func TestRestoreThenMutateDoesNotCorruptSnapshot(t *testing.T) {
	// Restore copies pages back; later mutations must not leak into the
	// snapshot through shared backing arrays.
	r := mustRegion(t, 4*256, 256)
	if _, err := r.WriteAt([]byte("original"), 0); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot(1)
	if _, err := r.WriteAt([]byte("mutated!"), 0); err != nil {
		t.Fatal(err)
	}
	r.Restore(snap)
	if _, err := r.WriteAt([]byte("again!!!"), 0); err != nil {
		t.Fatal(err)
	}
	page, err := snap.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page[:8], []byte("original")) {
		t.Fatalf("snapshot corrupted: %q", page[:8])
	}
}

func TestReleaseAboveDropsTentativeSnapshots(t *testing.T) {
	r := mustRegion(t, 4*256, 256)
	r.Snapshot(8)
	r.Snapshot(16)
	r.Snapshot(24)
	r.ReleaseAbove(8)
	if _, ok := r.SnapshotAt(8); !ok {
		t.Fatal("snapshot at the cutoff must survive")
	}
	if _, ok := r.SnapshotAt(16); ok {
		t.Fatal("snapshot above the cutoff must be gone")
	}
	if _, ok := r.SnapshotAt(24); ok {
		t.Fatal("snapshot above the cutoff must be gone")
	}
}
