package state

import (
	"repro/internal/crypto"
)

// Height returns the number of interior levels of a Merkle tree over n
// leaves with the package fanout: nodes exist at levels 1..Height, pages
// at level 0, and the root is the single node at level Height.
func Height(n int) int {
	h := 0
	w := n
	for w > 1 {
		w = (w + Fanout - 1) / Fanout
		h++
	}
	if h == 0 {
		h = 1 // even a single-page region has a root above the page
	}
	return h
}

// levelWidth returns the number of nodes at the given level for n leaves.
func levelWidth(n, level int) int {
	w := n
	for i := 0; i < level; i++ {
		w = (w + Fanout - 1) / Fanout
	}
	return w
}

// buildLevels computes all interior levels from leaf digests. Result[0] is
// the leaf level itself; Result[h] has a single root entry.
func buildLevels(leaf []crypto.Digest) [][]crypto.Digest {
	h := Height(len(leaf))
	levels := make([][]crypto.Digest, h+1)
	levels[0] = leaf
	for l := 1; l <= h; l++ {
		below := levels[l-1]
		width := (len(below) + Fanout - 1) / Fanout
		cur := make([]crypto.Digest, width)
		var buf [Fanout * crypto.DigestSize]byte
		for i := 0; i < width; i++ {
			lo := i * Fanout
			hi := lo + Fanout
			if hi > len(below) {
				hi = len(below)
			}
			n := 0
			for _, d := range below[lo:hi] {
				copy(buf[n:], d[:])
				n += crypto.DigestSize
			}
			cur[i] = crypto.DigestOf(buf[:n])
		}
		levels[l] = cur
	}
	return levels
}

// rootOf computes the Merkle root of the given leaf digests.
func rootOf(leaf []crypto.Digest) crypto.Digest {
	levels := buildLevels(leaf)
	return levels[len(levels)-1][0]
}

// childrenOf returns the child digests of node (level, index), where level
// must be >= 1. For level == 1 the children are leaf digests.
func childrenOf(levels [][]crypto.Digest, level, index int) []crypto.Digest {
	below := levels[level-1]
	lo := index * Fanout
	if lo >= len(below) {
		return nil
	}
	hi := lo + Fanout
	if hi > len(below) {
		hi = len(below)
	}
	out := make([]crypto.Digest, hi-lo)
	copy(out, below[lo:hi])
	return out
}
