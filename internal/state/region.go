// Package state implements the replicated-state subsystem of the PBFT
// middleware: a paged, sparse memory region with copy-on-write snapshots
// and a Merkle (hash) tree over the pages (§2.1 of the paper). Replicas
// agree on the region's root digest at checkpoints; a lagging replica walks
// the tree against a peer's snapshot and fetches only differing pages.
//
// The region is sparse: pages are allocated on first write, so a service
// can declare a large virtual state (the paper's sparse-file trick, §3.2)
// while memory use tracks the touched pages only.
package state

import (
	"fmt"
	"sync"

	"repro/internal/crypto"
)

// DefaultPageSize is the page granularity of checkpointing and state
// transfer.
const DefaultPageSize = 4096

// Fanout is the arity of the Merkle tree.
const Fanout = 16

// Region is the application-visible replicated memory. The application has
// free read access but must notify the region before modifying a range
// (Modify), allowing copy-on-write checkpoint snapshots. WriteAt performs
// the notification itself.
//
// A Region is safe for concurrent use, although the replica confines all
// writes to its event loop.
type Region struct {
	mu        sync.RWMutex
	pageSize  int
	numPages  int
	size      int64
	pages     [][]byte // nil entry = all-zero page, not yet allocated
	shared    []bool   // page is referenced by the newest snapshot
	dirtyLeaf []bool   // leaf digest out of date
	leaf      []crypto.Digest
	zeroLeaf  crypto.Digest // digest of an all-zero page
	anyDirty  bool
	snaps     map[uint64]*Snapshot
}

// NewRegion creates a sparse region of size bytes with the given page size
// (0 means DefaultPageSize). Size is rounded up to a whole number of pages.
func NewRegion(size int64, pageSize int) (*Region, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < 64 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("state: page size %d must be a power of two >= 64", pageSize)
	}
	if size <= 0 {
		return nil, fmt.Errorf("state: region size %d must be positive", size)
	}
	numPages := int((size + int64(pageSize) - 1) / int64(pageSize))
	r := &Region{
		pageSize:  pageSize,
		numPages:  numPages,
		size:      int64(numPages) * int64(pageSize),
		pages:     make([][]byte, numPages),
		shared:    make([]bool, numPages),
		dirtyLeaf: make([]bool, numPages),
		leaf:      make([]crypto.Digest, numPages),
		snaps:     make(map[uint64]*Snapshot),
	}
	r.zeroLeaf = crypto.DigestOf(make([]byte, pageSize))
	for i := range r.leaf {
		r.leaf[i] = r.zeroLeaf
	}
	return r, nil
}

// Size returns the region length in bytes.
func (r *Region) Size() int64 { return r.size }

// PageSize returns the page granularity.
func (r *Region) PageSize() int { return r.pageSize }

// NumPages returns the number of pages.
func (r *Region) NumPages() int { return r.numPages }

// ReadAt copies len(p) bytes at offset off into p. Reads of unallocated
// pages return zeros.
func (r *Region) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > r.size {
		return 0, fmt.Errorf("state: read [%d,%d) outside region of %d bytes", off, off+int64(len(p)), r.size)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for n < len(p) {
		page := int((off + int64(n)) / int64(r.pageSize))
		po := int((off + int64(n)) % int64(r.pageSize))
		chunk := r.pageSize - po
		if rem := len(p) - n; chunk > rem {
			chunk = rem
		}
		if src := r.pages[page]; src != nil {
			copy(p[n:n+chunk], src[po:])
		} else {
			for i := n; i < n+chunk; i++ {
				p[i] = 0
			}
		}
		n += chunk
	}
	return n, nil
}

// Modify notifies the region that [off, off+length) is about to change.
// It performs the copy-on-write split for pages referenced by snapshots.
// The application (or the VFS layer on its behalf) must call it before
// writing through any pointer it obtained; WriteAt calls it implicitly.
func (r *Region) Modify(off, length int64) error {
	if length == 0 {
		return nil
	}
	if off < 0 || length < 0 || off+length > r.size {
		return fmt.Errorf("state: modify [%d,%d) outside region of %d bytes", off, off+length, r.size)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	first := int(off / int64(r.pageSize))
	last := int((off + length - 1) / int64(r.pageSize))
	for p := first; p <= last; p++ {
		r.touchPageLocked(p)
	}
	return nil
}

// touchPageLocked prepares page p for mutation: allocates it if sparse and
// splits it from any snapshot that shares its backing array.
func (r *Region) touchPageLocked(p int) {
	if r.pages[p] == nil {
		r.pages[p] = make([]byte, r.pageSize)
	} else if r.shared[p] {
		fresh := make([]byte, r.pageSize)
		copy(fresh, r.pages[p])
		r.pages[p] = fresh
	}
	r.shared[p] = false
	r.dirtyLeaf[p] = true
	r.anyDirty = true
}

// WriteAt writes p at offset off, performing the modify notification
// itself.
func (r *Region) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > r.size {
		return 0, fmt.Errorf("state: write [%d,%d) outside region of %d bytes", off, off+int64(len(p)), r.size)
	}
	if len(p) == 0 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for n < len(p) {
		page := int((off + int64(n)) / int64(r.pageSize))
		po := int((off + int64(n)) % int64(r.pageSize))
		chunk := r.pageSize - po
		if rem := len(p) - n; chunk > rem {
			chunk = rem
		}
		r.touchPageLocked(page)
		copy(r.pages[page][po:], p[n:n+chunk])
		n += chunk
	}
	return n, nil
}

// ApplyPage installs fetched page data during state transfer.
func (r *Region) ApplyPage(index int, data []byte) error {
	if index < 0 || index >= r.numPages {
		return fmt.Errorf("state: page %d out of range [0,%d)", index, r.numPages)
	}
	if len(data) != r.pageSize {
		return fmt.Errorf("state: page data of %d bytes, want %d", len(data), r.pageSize)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.touchPageLocked(index)
	copy(r.pages[index], data)
	return nil
}

// Page returns a copy of page index's current content.
func (r *Region) Page(index int) ([]byte, error) {
	if index < 0 || index >= r.numPages {
		return nil, fmt.Errorf("state: page %d out of range [0,%d)", index, r.numPages)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]byte, r.pageSize)
	if src := r.pages[index]; src != nil {
		copy(out, src)
	}
	return out, nil
}

// refreshLeavesLocked brings dirty leaf digests up to date.
func (r *Region) refreshLeavesLocked() {
	if !r.anyDirty {
		return
	}
	for i, d := range r.dirtyLeaf {
		if !d {
			continue
		}
		if r.pages[i] == nil {
			r.leaf[i] = r.zeroLeaf
		} else {
			r.leaf[i] = crypto.DigestOf(r.pages[i])
		}
		r.dirtyLeaf[i] = false
	}
	r.anyDirty = false
}

// Root returns the Merkle root digest of the region's current content.
func (r *Region) Root() crypto.Digest {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLeavesLocked()
	return rootOf(r.leaf)
}

// LeafDigests returns a copy of the current per-page digests.
func (r *Region) LeafDigests() []crypto.Digest {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLeavesLocked()
	out := make([]crypto.Digest, len(r.leaf))
	copy(out, r.leaf)
	return out
}
