package state

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
)

func mustRegion(t *testing.T, size int64, pageSize int) *Region {
	t.Helper()
	r, err := NewRegion(size, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRegionValidation(t *testing.T) {
	tests := []struct {
		name     string
		size     int64
		pageSize int
		wantErr  bool
	}{
		{"ok default page size", 1 << 20, 0, false},
		{"ok explicit", 4096, 256, false},
		{"rounds up to whole pages", 100, 256, false},
		{"zero size", 0, 256, true},
		{"negative size", -4, 256, true},
		{"non power of two page", 4096, 1000, true},
		{"tiny page", 4096, 32, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := NewRegion(tt.size, tt.pageSize)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && r.Size()%int64(r.PageSize()) != 0 {
				t.Fatalf("size %d not page aligned", r.Size())
			}
		})
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	r := mustRegion(t, 1<<16, 256)
	data := []byte("the quick brown fox")
	// Write straddling a page boundary.
	off := int64(256 - 7)
	if _, err := r.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := r.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestSparseReadsReturnZeros(t *testing.T) {
	r := mustRegion(t, 1<<16, 256)
	buf := make([]byte, 512)
	for i := range buf {
		buf[i] = 0xFF
	}
	if _, err := r.ReadAt(buf, 1024); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %x, want 0", i, b)
		}
	}
}

func TestBoundsChecks(t *testing.T) {
	r := mustRegion(t, 4096, 256)
	if _, err := r.ReadAt(make([]byte, 10), 4090); err == nil {
		t.Fatal("read past end must fail")
	}
	if _, err := r.WriteAt(make([]byte, 10), -1); err == nil {
		t.Fatal("negative offset must fail")
	}
	if err := r.Modify(4000, 1000); err == nil {
		t.Fatal("modify past end must fail")
	}
	if _, err := r.Page(-1); err == nil {
		t.Fatal("negative page must fail")
	}
	if _, err := r.Page(r.NumPages()); err == nil {
		t.Fatal("page past end must fail")
	}
	if err := r.ApplyPage(0, []byte("short")); err == nil {
		t.Fatal("short page data must fail")
	}
	if err := r.ApplyPage(99, make([]byte, 256)); err == nil {
		t.Fatal("out-of-range apply must fail")
	}
}

func TestRootChangesWithContent(t *testing.T) {
	r := mustRegion(t, 1<<16, 256)
	r0 := r.Root()
	if _, err := r.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	r1 := r.Root()
	if r0 == r1 {
		t.Fatal("root must change when content changes")
	}
	// Writing the same content back restores the root.
	if _, err := r.WriteAt([]byte{0}, 0); err != nil {
		t.Fatal(err)
	}
	if r.Root() != r0 {
		t.Fatal("root must be a pure function of content")
	}
}

func TestRootIndependentRegionsAgree(t *testing.T) {
	a := mustRegion(t, 1<<16, 256)
	b := mustRegion(t, 1<<16, 256)
	writes := []struct {
		off  int64
		data string
	}{{0, "alpha"}, {1000, "beta"}, {60000, "gamma"}}
	for _, w := range writes {
		if _, err := a.WriteAt([]byte(w.data), w.off); err != nil {
			t.Fatal(err)
		}
	}
	// Same content written in a different order.
	for i := len(writes) - 1; i >= 0; i-- {
		if _, err := b.WriteAt([]byte(writes[i].data), writes[i].off); err != nil {
			t.Fatal(err)
		}
	}
	if a.Root() != b.Root() {
		t.Fatal("regions with identical content must have identical roots")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := mustRegion(t, 1<<16, 256)
	if _, err := r.WriteAt([]byte("v1"), 100); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot(10)
	rootAtSnap := r.Root()

	// Mutate after the snapshot; the snapshot must keep the old bytes.
	if _, err := r.WriteAt([]byte("v2"), 100); err != nil {
		t.Fatal(err)
	}
	page, err := snap.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page[100:102], []byte("v1")) {
		t.Fatalf("snapshot page = %q, want v1", page[100:102])
	}
	if snap.Root() != rootAtSnap {
		t.Fatal("snapshot root must be frozen")
	}
	if r.Root() == rootAtSnap {
		t.Fatal("live root must have moved on")
	}

	got, ok := r.SnapshotAt(10)
	if !ok || got != snap {
		t.Fatal("SnapshotAt must return the retained snapshot")
	}
	r.ReleaseBelow(11)
	if _, ok := r.SnapshotAt(10); ok {
		t.Fatal("released snapshot must be gone")
	}
}

func TestSnapshotSharingIsCopyOnWrite(t *testing.T) {
	r := mustRegion(t, 1<<20, 4096)
	if _, err := r.WriteAt(bytes.Repeat([]byte{1}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot(1)
	// Unmodified pages must be shared, not copied.
	if &snap.pages[0][0] != &r.pages[0][0] {
		t.Fatal("snapshot must share unmodified pages with the live region")
	}
	if _, err := r.WriteAt([]byte{2}, 0); err != nil {
		t.Fatal(err)
	}
	if &snap.pages[0][0] == &r.pages[0][0] {
		t.Fatal("modify must split the page from the snapshot")
	}
}

func TestMerkleHeightAndWidth(t *testing.T) {
	tests := []struct {
		pages  int
		height int
	}{{1, 1}, {2, 1}, {16, 1}, {17, 2}, {256, 2}, {257, 3}, {4096, 3}}
	for _, tt := range tests {
		if got := Height(tt.pages); got != tt.height {
			t.Fatalf("Height(%d) = %d, want %d", tt.pages, got, tt.height)
		}
		if got := levelWidth(tt.pages, Height(tt.pages)); got != 1 {
			t.Fatalf("root level of %d pages has width %d, want 1", tt.pages, got)
		}
	}
}

func TestSnapshotChildrenMatchDigests(t *testing.T) {
	r := mustRegion(t, 64*256, 256) // 64 pages, height 2
	for i := 0; i < 64; i += 3 {
		if _, err := r.WriteAt([]byte{byte(i)}, int64(i)*256); err != nil {
			t.Fatal(err)
		}
	}
	snap := r.Snapshot(1)
	h := snap.Height()
	if h != 2 {
		t.Fatalf("height = %d, want 2", h)
	}
	// Walk the whole tree: every node's children must hash to the node.
	for level := h; level >= 1; level-- {
		width := levelWidth(snap.NumPages(), level)
		for idx := 0; idx < width; idx++ {
			children, err := snap.Children(level, idx)
			if err != nil {
				t.Fatal(err)
			}
			var buf []byte
			for _, d := range children {
				buf = append(buf, d[:]...)
			}
			want, err := snap.NodeDigest(level, idx)
			if err != nil {
				t.Fatal(err)
			}
			if crypto.DigestOf(buf) != want {
				t.Fatalf("node (%d,%d): children hash mismatch", level, idx)
			}
		}
	}
	if _, err := snap.Children(0, 0); err == nil {
		t.Fatal("level 0 has no children")
	}
	if _, err := snap.Children(h+1, 0); err == nil {
		t.Fatal("level above root must fail")
	}
}

// runSync drives a Syncer to completion against a source snapshot,
// returning the number of page fetches.
func runSync(t *testing.T, dst *Region, src *Snapshot) int {
	t.Helper()
	s := NewSyncer(dst.LeafDigests(), src.Root())
	for rounds := 0; !s.Done(); rounds++ {
		if rounds > 10000 {
			t.Fatal("sync did not converge")
		}
		for _, ref := range s.Pending() {
			if ref.Level == 0 {
				data, err := src.Page(ref.Index)
				if err != nil {
					t.Fatal(err)
				}
				apply, err := s.OnPage(ref.Index, data)
				if err != nil {
					t.Fatal(err)
				}
				if apply {
					if err := dst.ApplyPage(ref.Index, data); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				children, err := src.Children(ref.Level, ref.Index)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.OnNode(ref, children); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s.PagesVerified()
}

func TestSyncTransfersOnlyDiff(t *testing.T) {
	src := mustRegion(t, 64*256, 256)
	dst := mustRegion(t, 64*256, 256)
	common := bytes.Repeat([]byte{7}, 256)
	for i := 0; i < 64; i++ {
		_, _ = src.WriteAt(common, int64(i)*256)
		_, _ = dst.WriteAt(common, int64(i)*256)
	}
	// Diverge three pages on the source.
	for _, p := range []int{3, 17, 60} {
		if _, err := src.WriteAt([]byte("changed"), int64(p)*256); err != nil {
			t.Fatal(err)
		}
	}
	snap := src.Snapshot(5)
	fetched := runSync(t, dst, snap)
	if fetched != 3 {
		t.Fatalf("fetched %d pages, want 3", fetched)
	}
	if dst.Root() != src.Root() {
		t.Fatal("roots must match after sync")
	}
}

func TestSyncFromEmptyRegion(t *testing.T) {
	src := mustRegion(t, 32*256, 256)
	for i := 0; i < 32; i++ {
		if _, err := src.WriteAt([]byte{byte(i + 1)}, int64(i)*256); err != nil {
			t.Fatal(err)
		}
	}
	snap := src.Snapshot(1)
	dst := mustRegion(t, 32*256, 256)
	fetched := runSync(t, dst, snap)
	if fetched != 32 {
		t.Fatalf("fetched %d pages, want 32", fetched)
	}
	if dst.Root() != snap.Root() {
		t.Fatal("roots must match after sync")
	}
}

func TestSyncAlreadyIdentical(t *testing.T) {
	a := mustRegion(t, 16*256, 256)
	s := NewSyncer(a.LeafDigests(), a.Root())
	if !s.Done() {
		t.Fatal("identical content must need no fetches")
	}
}

func TestSyncRejectsForgedData(t *testing.T) {
	src := mustRegion(t, 16*256, 256)
	if _, err := src.WriteAt([]byte("real"), 0); err != nil {
		t.Fatal(err)
	}
	snap := src.Snapshot(1)
	dst := mustRegion(t, 16*256, 256)
	s := NewSyncer(dst.LeafDigests(), snap.Root())

	// Forged root children.
	forged := make([]crypto.Digest, Fanout)
	root := NodeRef{Level: snap.Height(), Index: 0}
	if err := s.OnNode(root, forged); err == nil {
		t.Fatal("forged node children must be rejected")
	}
	// Legit children, then a forged page.
	children, err := snap.Children(root.Level, root.Index)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OnNode(root, children); err != nil {
		t.Fatal(err)
	}
	var pageRef *NodeRef
	for _, ref := range s.Pending() {
		if ref.Level == 0 {
			r := ref
			pageRef = &r
			break
		}
	}
	if pageRef == nil {
		t.Fatal("expected pending page fetches")
	}
	if _, err := s.OnPage(pageRef.Index, bytes.Repeat([]byte{9}, 256)); err == nil {
		t.Fatal("forged page must be rejected")
	}
	// Unrequested page is ignored without error.
	if apply, err := s.OnPage(15, bytes.Repeat([]byte{0}, 256)); err != nil || apply {
		t.Fatalf("unrequested page: apply=%v err=%v", apply, err)
	}
}

func TestQuickRegionMatchesReferenceBuffer(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		const size = 1 << 14
		r, err := NewRegion(size, 256)
		if err != nil {
			return false
		}
		ref := make([]byte, size)
		for op := 0; op < 50; op++ {
			off := rnd.Int63n(size - 1)
			length := rnd.Intn(int(size-off)) % 700
			data := make([]byte, length)
			rnd.Read(data)
			if _, err := r.WriteAt(data, off); err != nil {
				return false
			}
			copy(ref[off:], data)
		}
		got := make([]byte, size)
		if _, err := r.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSyncConvergesFromAnyDivergence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		const pages = 48
		src, _ := NewRegion(pages*256, 256)
		dst, _ := NewRegion(pages*256, 256)
		for i := 0; i < pages; i++ {
			buf := make([]byte, 256)
			rnd.Read(buf)
			_, _ = src.WriteAt(buf, int64(i)*256)
			if rnd.Intn(2) == 0 {
				_, _ = dst.WriteAt(buf, int64(i)*256) // same page
			} else if rnd.Intn(2) == 0 {
				other := make([]byte, 256)
				rnd.Read(other)
				_, _ = dst.WriteAt(other, int64(i)*256) // diverged page
			} // else: dst page left sparse
		}
		snap := src.Snapshot(1)
		s := NewSyncer(dst.LeafDigests(), snap.Root())
		for rounds := 0; !s.Done(); rounds++ {
			if rounds > 1000 {
				return false
			}
			for _, ref := range s.Pending() {
				if ref.Level == 0 {
					data, err := snap.Page(ref.Index)
					if err != nil {
						return false
					}
					apply, err := s.OnPage(ref.Index, data)
					if err != nil {
						return false
					}
					if apply {
						if err := dst.ApplyPage(ref.Index, data); err != nil {
							return false
						}
					}
				} else {
					children, err := snap.Children(ref.Level, ref.Index)
					if err != nil {
						return false
					}
					if err := s.OnNode(ref, children); err != nil {
						return false
					}
				}
			}
		}
		return dst.Root() == snap.Root()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRegionWrite4K(b *testing.B) {
	r, err := NewRegion(64<<20, 4096)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.WriteAt(data, int64(i%16384)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegionRoot16MiB(b *testing.B) {
	r, err := NewRegion(16<<20, 4096)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	for i := 0; i < 4096; i++ {
		_, _ = r.WriteAt(data, int64(i)*4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One dirty page per checkpoint, the common case.
		_, _ = r.WriteAt([]byte{byte(i)}, 0)
		r.Root()
	}
}

func BenchmarkSnapshot16MiB(b *testing.B) {
	r, err := NewRegion(16<<20, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Snapshot(uint64(i))
		r.ReleaseBelow(uint64(i))
	}
}
