package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
)

func TestRequestRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		req  Request
	}{
		{"empty op", Request{ClientID: 4, Timestamp: 1}},
		{"flags", Request{ClientID: 9, Timestamp: 77, Flags: FlagReadOnly | FlagBig, Op: []byte("get x")}},
		{"system", Request{ClientID: 1, Timestamp: 2, Flags: FlagSystem, Op: []byte{OpLeave}}},
		{"large op", Request{ClientID: 2, Timestamp: 3, Op: bytes.Repeat([]byte("v"), 4096)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := UnmarshalRequest(tt.req.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*got, tt.req) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, tt.req)
			}
			if got.Digest() != tt.req.Digest() {
				t.Fatal("digest must be stable across round trip")
			}
		})
	}
}

func TestRequestFlagAccessors(t *testing.T) {
	r := Request{Flags: FlagReadOnly}
	if !r.ReadOnly() || r.System() || r.Big() {
		t.Fatalf("flag accessors wrong for %08b", r.Flags)
	}
	r = Request{Flags: FlagSystem | FlagBig}
	if r.ReadOnly() || !r.System() || !r.Big() {
		t.Fatalf("flag accessors wrong for %08b", r.Flags)
	}
}

func TestRequestDigestDistinguishesFields(t *testing.T) {
	base := Request{ClientID: 1, Timestamp: 2, Flags: 0, Op: []byte("op")}
	variants := []Request{
		{ClientID: 2, Timestamp: 2, Flags: 0, Op: []byte("op")},
		{ClientID: 1, Timestamp: 3, Flags: 0, Op: []byte("op")},
		{ClientID: 1, Timestamp: 2, Flags: FlagReadOnly, Op: []byte("op")},
		{ClientID: 1, Timestamp: 2, Flags: 0, Op: []byte("oq")},
	}
	for i, v := range variants {
		if v.Digest() == base.Digest() {
			t.Fatalf("variant %d must have a different digest", i)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	m := Reply{View: 3, Timestamp: 9, ClientID: 12, Replica: 2, Flags: FlagTentative, Result: []byte("ok")}
	got, err := UnmarshalReply(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, m) {
		t.Fatalf("round trip mismatch: got %+v want %+v", *got, m)
	}
	if !got.Tentative() {
		t.Fatal("tentative flag lost")
	}
}

func TestPrePrepareRoundTrip(t *testing.T) {
	full := Request{ClientID: 7, Timestamp: 11, Op: []byte("write a=1")}
	m := PrePrepare{
		View:   2,
		Seq:    100,
		NonDet: (&NonDet{Time: 123456789}).Marshal(),
		Entries: []BatchEntry{
			{Full: true, Req: full},
			{Full: false, ClientID: 8, Timestamp: 12, Digest: crypto.DigestOf([]byte("big body"))},
		},
	}
	got, err := UnmarshalPrePrepare(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, m)
	}
	if got.BatchDigest() != m.BatchDigest() {
		t.Fatal("batch digest must be stable across round trip")
	}
}

func TestBatchDigestDependsOnNonDetAndOrder(t *testing.T) {
	e1 := BatchEntry{Full: true, Req: Request{ClientID: 1, Timestamp: 1, Op: []byte("a")}}
	e2 := BatchEntry{Full: true, Req: Request{ClientID: 2, Timestamp: 1, Op: []byte("b")}}
	a := PrePrepare{View: 1, Seq: 1, Entries: []BatchEntry{e1, e2}}
	b := PrePrepare{View: 1, Seq: 1, Entries: []BatchEntry{e2, e1}}
	if a.BatchDigest() == b.BatchDigest() {
		t.Fatal("batch digest must depend on request order")
	}
	c := PrePrepare{View: 1, Seq: 1, NonDet: []byte{1}, Entries: []BatchEntry{e1, e2}}
	if a.BatchDigest() == c.BatchDigest() {
		t.Fatal("batch digest must depend on the non-deterministic payload")
	}
}

func TestBatchEntryDigestAgreesAcrossForms(t *testing.T) {
	req := Request{ClientID: 5, Timestamp: 6, Flags: FlagBig, Op: []byte("payload")}
	full := BatchEntry{Full: true, Req: req}
	thin := BatchEntry{ClientID: 5, Timestamp: 6, Digest: req.Digest()}
	if full.RequestDigest() != thin.RequestDigest() {
		t.Fatal("digest-only and full entries must agree on the request digest")
	}
	c1, t1 := full.RequestID()
	c2, t2 := thin.RequestID()
	if c1 != c2 || t1 != t2 {
		t.Fatal("request identity must agree across entry forms")
	}
}

func TestPrepareCommitCheckpointRoundTrip(t *testing.T) {
	d := crypto.DigestOf([]byte("batch"))
	p := Prepare{View: 1, Seq: 2, Digest: d, Replica: 3}
	gp, err := UnmarshalPrepare(p.Marshal())
	if err != nil || !reflect.DeepEqual(*gp, p) {
		t.Fatalf("prepare round trip: %v %+v", err, gp)
	}
	c := Commit{View: 1, Seq: 2, Digest: d, Replica: 3}
	gc, err := UnmarshalCommit(c.Marshal())
	if err != nil || !reflect.DeepEqual(*gc, c) {
		t.Fatalf("commit round trip: %v %+v", err, gc)
	}
	ck := Checkpoint{Seq: 128, StateDigest: d, Replica: 1}
	gck, err := UnmarshalCheckpoint(ck.Marshal())
	if err != nil || !reflect.DeepEqual(*gck, ck) {
		t.Fatalf("checkpoint round trip: %v %+v", err, gck)
	}
}

func TestViewChangeRoundTrip(t *testing.T) {
	m := ViewChange{
		NewView:      4,
		LastStable:   256,
		StableDigest: crypto.DigestOf([]byte("state")),
		Prepared: []PreparedInfo{
			{Seq: 257, View: 3, Digest: crypto.DigestOf([]byte("b1"))},
			{Seq: 258, View: 2, Digest: crypto.DigestOf([]byte("b2"))},
		},
		Replica: 2,
	}
	got, err := UnmarshalViewChange(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, m)
	}
}

func TestNewViewRoundTrip(t *testing.T) {
	vc := ViewChange{NewView: 2, Replica: 1}
	env := Envelope{Type: MTViewChange, Sender: 1, Payload: vc.Marshal(), Kind: AuthSig, Sig: []byte("sig")}
	m := NewView{
		View:        2,
		ViewChanges: [][]byte{env.Marshal()},
		PrePrepares: []PrePrepare{
			{View: 2, Seq: 9, Entries: []BatchEntry{{Full: true, Req: Request{ClientID: 1, Timestamp: 5, Op: []byte("x")}}}},
			{View: 2, Seq: 10}, // null request fills the gap
		},
	}
	got, err := UnmarshalNewView(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, m)
	}
}

func TestMembershipRoundTrip(t *testing.T) {
	j := JoinOp{
		Phase:    JoinPhaseHello,
		Addr:     "10.0.0.8:7001",
		PubKey:   bytes.Repeat([]byte{7}, crypto.PublicKeySize),
		Nonce:    0xDEADBEEF,
		AppAuth:  []byte("user:alice"),
		Response: crypto.DigestOf([]byte("resp")),
	}
	gj, err := UnmarshalJoinOp(j.Marshal())
	if err != nil || !reflect.DeepEqual(*gj, j) {
		t.Fatalf("join op round trip: %v\n got %+v\nwant %+v", err, gj, j)
	}

	ch := JoinChallenge{Replica: 3, Seq: 42, Challenge: crypto.DigestOf([]byte("ch"))}
	gch, err := UnmarshalJoinChallenge(ch.Marshal())
	if err != nil || !reflect.DeepEqual(*gch, ch) {
		t.Fatalf("join challenge round trip: %v %+v", err, gch)
	}

	h := SessionHello{ClientID: 900, Addr: "127.0.0.1:9", PubKey: []byte("pk")}
	gh, err := UnmarshalSessionHello(h.Marshal())
	if err != nil || !reflect.DeepEqual(*gh, h) {
		t.Fatalf("session hello round trip: %v %+v", err, gh)
	}

	jr := JoinResult{ClientID: 900, Accepted: true, Reason: ""}
	gjr, err := UnmarshalJoinResult(jr.Marshal())
	if err != nil || !reflect.DeepEqual(*gjr, jr) {
		t.Fatalf("join result round trip: %v %+v", err, gjr)
	}
	jr2 := JoinResult{Accepted: false, Reason: "node table full"}
	gjr2, err := UnmarshalJoinResult(jr2.Marshal())
	if err != nil || !reflect.DeepEqual(*gjr2, jr2) {
		t.Fatalf("join result round trip: %v %+v", err, gjr2)
	}
}

func TestSysOpSplit(t *testing.T) {
	op := MarshalSysOp(OpJoin, []byte("body"))
	code, body, ok := SplitSysOp(op)
	if !ok || code != OpJoin || string(body) != "body" {
		t.Fatalf("split sys op: %v %d %q", ok, code, body)
	}
	if _, _, ok := SplitSysOp(nil); ok {
		t.Fatal("empty sys op must not split")
	}
}

func TestStateTransferRoundTrip(t *testing.T) {
	f := Fetch{Seq: 128, Level: 2, Index: 5, Replica: 1}
	gf, err := UnmarshalFetch(f.Marshal())
	if err != nil || !reflect.DeepEqual(*gf, f) {
		t.Fatalf("fetch round trip: %v %+v", err, gf)
	}
	n := StateNode{Seq: 128, Level: 1, Index: 0, Children: []crypto.Digest{
		crypto.DigestOf([]byte("c0")), crypto.DigestOf([]byte("c1")),
	}}
	gn, err := UnmarshalStateNode(n.Marshal())
	if err != nil || !reflect.DeepEqual(*gn, n) {
		t.Fatalf("state node round trip: %v %+v", err, gn)
	}
	p := StatePage{Seq: 128, Index: 7, Data: bytes.Repeat([]byte{0xAB}, 4096)}
	gp, err := UnmarshalStatePage(p.Marshal())
	if err != nil || !reflect.DeepEqual(*gp, p) {
		t.Fatalf("state page round trip: %v", err)
	}
}

func TestStatusAndNonDetRoundTrip(t *testing.T) {
	s := Status{View: 1, LastExec: 99, LastStable: 64, Replica: 2}
	gs, err := UnmarshalStatus(s.Marshal())
	if err != nil || !reflect.DeepEqual(*gs, s) {
		t.Fatalf("status round trip: %v %+v", err, gs)
	}
	nd := NonDet{Time: 424242}
	copy(nd.Rand[:], bytes.Repeat([]byte{9}, 32))
	gnd, err := UnmarshalNonDet(nd.Marshal())
	if err != nil || !reflect.DeepEqual(*gnd, nd) {
		t.Fatalf("nondet round trip: %v %+v", err, gnd)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		env  Envelope
	}{
		{"unauthenticated", Envelope{Type: MTStatePage, Sender: 2, Payload: []byte("page"), Kind: AuthNone}},
		{"signed", Envelope{Type: MTRequest, Sender: 7, Payload: []byte("req"), Kind: AuthSig, Sig: bytes.Repeat([]byte{1}, crypto.SignatureSize)}},
		{"mac", Envelope{Type: MTPrepare, Sender: 1, Payload: []byte("prep"), Kind: AuthMAC,
			Auth: crypto.ComputeAuthenticator([]crypto.SessionKey{crypto.NewSessionKey([]byte("a")), crypto.NewSessionKey([]byte("b"))}, []byte("prep"))}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := UnmarshalEnvelope(tt.env.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			if got.Type != tt.env.Type || got.Sender != tt.env.Sender || !bytes.Equal(got.Payload, tt.env.Payload) || got.Kind != tt.env.Kind {
				t.Fatalf("round trip mismatch: got %+v want %+v", got, tt.env)
			}
			if tt.env.Kind == AuthSig && !bytes.Equal(got.Sig, tt.env.Sig) {
				t.Fatal("signature lost")
			}
			if tt.env.Kind == AuthMAC && !reflect.DeepEqual(got.Auth, tt.env.Auth) {
				t.Fatal("authenticator lost")
			}
			if !bytes.Equal(got.SignedBytes(), tt.env.SignedBytes()) {
				t.Fatal("signed bytes must be stable across round trip")
			}
		})
	}
}

func TestEnvelopeRejectsGarbage(t *testing.T) {
	good := (&Envelope{Type: MTRequest, Sender: 1, Payload: []byte("p"), Kind: AuthSig, Sig: []byte("s")}).Marshal()
	for i := 0; i < len(good); i++ {
		if _, err := UnmarshalEnvelope(good[:i]); err == nil {
			t.Fatalf("truncation to %d bytes must fail", i)
		}
	}
	bad := append([]byte(nil), good...)
	bad[0] = 250 // unknown type
	if _, err := UnmarshalEnvelope(bad); err == nil {
		t.Fatal("unknown message type must be rejected")
	}
	badKind := append([]byte(nil), good...)
	// Locate auth kind byte: 1 type + 4 sender + 4 len + 1 payload.
	badKind[10] = 99
	if _, err := UnmarshalEnvelope(badKind); err == nil {
		t.Fatal("unknown auth kind must be rejected")
	}
}

func TestDecodersRejectHostileLengths(t *testing.T) {
	// A pre-prepare claiming 2^31 entries must fail fast, not allocate.
	w := NewWriter(32)
	w.U64(1) // view
	w.U64(1) // seq
	w.Bytes32(nil)
	w.U32(0x7FFFFFFF)
	if _, err := UnmarshalPrePrepare(w.Bytes()); err == nil {
		t.Fatal("hostile entry count must be rejected")
	}

	w2 := NewWriter(16)
	w2.U32(0xFFFFFFFF)
	r := NewReader(w2.Bytes())
	if r.Bytes32() != nil || r.Err() == nil {
		t.Fatal("hostile byte length must be rejected")
	}
}

func quickRequest(rnd *rand.Rand) Request {
	var op []byte
	if n := rnd.Intn(256); n > 0 {
		op = make([]byte, n)
		rnd.Read(op)
	}
	return Request{
		ClientID:  rnd.Uint32(),
		Timestamp: rnd.Uint64(),
		Flags:     uint8(rnd.Intn(8)),
		Op:        op,
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		req := quickRequest(rnd)
		if len(req.Op) == 0 {
			req.Op = nil // decoders return nil for empty fields
		}
		got, err := UnmarshalRequest(req.Marshal())
		return err == nil && reflect.DeepEqual(*got, req)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrePrepareRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		m := PrePrepare{View: rnd.Uint64(), Seq: rnd.Uint64()}
		nd := make([]byte, rnd.Intn(64))
		rnd.Read(nd)
		m.NonDet = nd
		for i := 0; i < rnd.Intn(5); i++ {
			if rnd.Intn(2) == 0 {
				m.Entries = append(m.Entries, BatchEntry{Full: true, Req: quickRequest(rnd)})
			} else {
				var d crypto.Digest
				rnd.Read(d[:])
				m.Entries = append(m.Entries, BatchEntry{ClientID: rnd.Uint32(), Timestamp: rnd.Uint64(), Digest: d})
			}
		}
		got, err := UnmarshalPrePrepare(m.Marshal())
		if err != nil {
			return false
		}
		// Normalize: decoders return nil for empty variable-length fields.
		if len(m.NonDet) == 0 {
			m.NonDet = nil
		}
		return reflect.DeepEqual(*got, m)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnvelopeNeverPanics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(b []byte) bool {
		// Hostile input must return an error or a message, never panic.
		_, _ = UnmarshalEnvelope(b)
		_, _ = UnmarshalPrePrepare(b)
		_, _ = UnmarshalViewChange(b)
		_, _ = UnmarshalNewView(b)
		_, _ = UnmarshalJoinOp(b)
		_, _ = UnmarshalStateNode(b)
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalPrePrepareBatch64(b *testing.B) {
	m := PrePrepare{View: 1, Seq: 1}
	for i := 0; i < 64; i++ {
		m.Entries = append(m.Entries, BatchEntry{Full: true, Req: Request{ClientID: uint32(i), Timestamp: 1, Op: make([]byte, 1024)}})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Marshal()
	}
}

func BenchmarkUnmarshalPrePrepareBatch64(b *testing.B) {
	m := PrePrepare{View: 1, Seq: 1}
	for i := 0; i < 64; i++ {
		m.Entries = append(m.Entries, BatchEntry{Full: true, Req: Request{ClientID: uint32(i), Timestamp: 1, Op: make([]byte, 1024)}})
	}
	raw := m.Marshal()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalPrePrepare(raw); err != nil {
			b.Fatal(err)
		}
	}
}
