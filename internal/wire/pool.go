package wire

import (
	"sync"
	"sync/atomic"
)

// This file is the hot path's buffer arena: size-classed sync.Pool-backed
// byte buffers and pooled Writers, shared by the wire encoders, the seal
// paths in internal/core and the transports.
//
// Ownership rules (see also ARCHITECTURE.md, "Hot path & memory
// discipline"):
//
//   - GetBuf / GetWriter transfer exclusive ownership to the caller.
//   - PutBuf / Writer.Free transfer it back; the caller must not touch the
//     buffer afterwards. Releasing is always OPTIONAL: a buffer that is
//     retained (a logged pre-prepare, a stored checkpoint vote) is simply
//     left to the garbage collector — only a release while someone still
//     holds a reference is a bug.
//   - Released buffers may be scribbled over at any time. SetPoolDebug
//     makes that eager: every PutBuf overwrites the buffer with a junk
//     pattern, so an ownership violation corrupts data deterministically
//     (and trips the race detector when the violator reads concurrently)
//     instead of lurking until the pool recycles the memory.

// bufClasses are the pooled capacity classes. The smallest covers
// agreement votes and status gossip, the middle ones cover sealed requests
// and replies, the largest covers full datagrams (the UDP receive ring).
var bufClasses = [...]int{256, 1024, 4096, 16384, 65536}

// bufPools holds *pooledBuf wrappers per class; the wrappers themselves
// recycle through bufWrappers, so neither Get nor Put allocates in steady
// state (a bare []byte in a sync.Pool would box a fresh header per Put).
var bufPools [len(bufClasses)]sync.Pool

type pooledBuf struct{ b []byte }

var bufWrappers = sync.Pool{New: func() any { return new(pooledBuf) }}

// poolDebug enables eager scribbling of released buffers.
var poolDebug atomic.Bool

// SetPoolDebug toggles debug scribbling: when enabled, every buffer
// returned to the arena is immediately overwritten with a junk pattern.
// Tests enable it (together with -race) to catch release-after-send
// ownership violations.
func SetPoolDebug(on bool) { poolDebug.Store(on) }

// scribble fills a released buffer with a recognizable junk pattern.
func scribble(b []byte) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0xDB
	}
}

// classFor returns the index of the smallest class that can hold n, or -1
// when n exceeds every class.
func classFor(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetBuf returns a zero-length buffer with capacity at least n. The caller
// owns it exclusively until PutBuf.
func GetBuf(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return make([]byte, 0, n)
	}
	if w, _ := bufPools[ci].Get().(*pooledBuf); w != nil {
		b := w.b
		w.b = nil
		bufWrappers.Put(w)
		return b[:0]
	}
	return make([]byte, 0, bufClasses[ci])
}

// PutBuf returns a buffer obtained from GetBuf (or grown from one) to the
// arena. Buffers whose capacity matches no class — or that were never
// pooled to begin with — are dropped for the garbage collector; passing
// them is harmless. PutBuf(nil) is a no-op.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	// Find the largest class the capacity can serve; a grown buffer files
	// into the class it still satisfies.
	ci := -1
	for i, c := range bufClasses {
		if cap(b) >= c {
			ci = i
		}
	}
	if ci < 0 {
		return
	}
	if poolDebug.Load() {
		scribble(b)
	}
	w := bufWrappers.Get().(*pooledBuf)
	w.b = b[:0]
	bufPools[ci].Put(w)
}

// writerPool recycles Writer headers; their buffers cycle through the
// byte-buffer arena independently.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns a pooled Writer with at least the given capacity.
// Release it with Free (buffer included) or keep the encoded bytes with
// Detach.
func GetWriter(capacity int) *Writer {
	w := writerPool.Get().(*Writer)
	w.buf = GetBuf(capacity)
	return w
}

// Free returns the Writer and its buffer to the arena. The caller must not
// use the Writer, nor any slice obtained from Bytes, afterwards.
func (w *Writer) Free() {
	PutBuf(w.buf)
	w.buf = nil
	writerPool.Put(w)
}

// Detach takes ownership of the encoded buffer away from the Writer (the
// buffer can later be released with PutBuf) and recycles the Writer
// header.
func (w *Writer) Detach() []byte {
	b := w.buf
	w.buf = nil
	writerPool.Put(w)
	return b
}
