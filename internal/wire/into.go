package wire

// Decode-into variants of the standalone unmarshal functions, for the
// pooled ingress path: the destination struct is caller-owned (an inline
// field of a recycled message slot), so a steady-state decode performs no
// allocation. Each function is a typed wrapper (rather than one generic
// helper over a Decode interface) so the Reader stays on the caller's
// stack.

// UnmarshalPrepareInto parses a standalone Prepare into m.
func UnmarshalPrepareInto(m *Prepare, b []byte) error {
	r := NewReader(b)
	m.Decode(r)
	return r.Done()
}

// UnmarshalCommitInto parses a standalone Commit into m.
func UnmarshalCommitInto(m *Commit, b []byte) error {
	r := NewReader(b)
	m.Decode(r)
	return r.Done()
}

// UnmarshalCheckpointInto parses a standalone Checkpoint into m.
func UnmarshalCheckpointInto(m *Checkpoint, b []byte) error {
	r := NewReader(b)
	m.Decode(r)
	return r.Done()
}

// UnmarshalStatusInto parses a standalone Status into m.
func UnmarshalStatusInto(m *Status, b []byte) error {
	r := NewReader(b)
	m.Decode(r)
	return r.Done()
}

// UnmarshalSessionHelloInto parses a standalone SessionHello into m. The
// Addr and PubKey fields are copies (Decode copies them), so the hello
// outlives the input buffer.
func UnmarshalSessionHelloInto(m *SessionHello, b []byte) error {
	r := NewReader(b)
	m.Decode(r)
	return r.Done()
}
