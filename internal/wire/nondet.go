package wire

// NonDet is the non-deterministic payload the primary attaches to each
// pre-prepare (§2.5): a wall-clock timestamp and a random seed. Every
// replica executes the batch with the same values, and each replica's
// validation upcall may accept or reject the primary's choices.
type NonDet struct {
	// Time is the primary's wall clock in nanoseconds since the Unix
	// epoch. It also timestamps client sessions for staleness eviction
	// (§3.1).
	Time uint64
	// Rand is the seed all replicas use for "random" values requested
	// during execution of this batch.
	Rand [32]byte
}

// Marshal returns the standalone wire form.
func (m *NonDet) Marshal() []byte {
	w := NewWriter(40)
	w.U64(m.Time)
	w.Raw(m.Rand[:])
	return w.Bytes()
}

// UnmarshalNonDet parses a standalone NonDet.
func UnmarshalNonDet(b []byte) (*NonDet, error) {
	r := NewReader(b)
	var m NonDet
	m.Time = r.U64()
	r.Fixed(m.Rand[:])
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}
