package wire

import (
	"repro/internal/crypto"
)

// Request flag bits.
const (
	// FlagReadOnly marks requests the client asks to execute without
	// running agreement (§2.1, read-only optimization).
	FlagReadOnly uint8 = 1 << 0
	// FlagSystem marks middleware-internal requests (Join/Leave, §3.1);
	// they are ordered like application requests but never reach the
	// application's Execute upcall.
	FlagSystem uint8 = 1 << 1
	// FlagBig marks requests whose body was multicast directly to all
	// replicas by the client, so the primary forwards only a digest.
	FlagBig uint8 = 1 << 2
)

// Request is a client operation submitted for total ordering.
//
// A Request is not safe for concurrent use: Digest memoizes its result, so
// the identifying fields must not change after the first Digest call. The
// memo travels with value copies, letting the ingress pipeline compute big
// request digests once, off the protocol loop.
type Request struct {
	ClientID  uint32
	Timestamp uint64 // client-local, strictly increasing request identifier
	Flags     uint8
	Op        []byte

	digest    crypto.Digest // memoized Digest
	hasDigest bool
}

// ReadOnly reports whether the read-only flag is set.
func (m *Request) ReadOnly() bool { return m.Flags&FlagReadOnly != 0 }

// System reports whether the request is middleware-internal.
func (m *Request) System() bool { return m.Flags&FlagSystem != 0 }

// Big reports whether the request body was multicast by the client.
func (m *Request) Big() bool { return m.Flags&FlagBig != 0 }

// Digest returns the content digest identifying the request in agreement
// messages and batch digests. The result is memoized; see the Request
// concurrency note.
func (m *Request) Digest() crypto.Digest {
	if !m.hasDigest {
		w := GetWriter(16 + len(m.Op))
		w.U32(m.ClientID)
		w.U64(m.Timestamp)
		w.U8(m.Flags)
		w.Raw(m.Op)
		m.digest = crypto.DigestOf(w.Bytes())
		w.Free()
		m.hasDigest = true
	}
	return m.digest
}

// Encode appends the wire form to w.
func (m *Request) Encode(w *Writer) {
	w.U32(m.ClientID)
	w.U64(m.Timestamp)
	w.U8(m.Flags)
	w.Bytes32(m.Op)
}

// Decode parses the wire form from r.
func (m *Request) Decode(r *Reader) {
	m.ClientID = r.U32()
	m.Timestamp = r.U64()
	m.Flags = r.U8()
	m.Op = r.Bytes32()
}

// Marshal returns the standalone wire form.
func (m *Request) Marshal() []byte {
	w := NewWriter(32 + len(m.Op))
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalRequest parses a standalone Request.
func UnmarshalRequest(b []byte) (*Request, error) {
	r := NewReader(b)
	var m Request
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Reply flag bits.
const (
	// FlagTentative marks replies produced by tentative execution
	// (before commit); clients need 2f+1 of these instead of f+1.
	FlagTentative uint8 = 1 << 0
)

// Reply is a replica's response to an executed request.
type Reply struct {
	View      uint64
	Timestamp uint64
	ClientID  uint32
	Replica   uint32
	Flags     uint8
	Result    []byte
}

// Tentative reports whether the reply is from tentative execution.
func (m *Reply) Tentative() bool { return m.Flags&FlagTentative != 0 }

// Encode appends the wire form to w.
func (m *Reply) Encode(w *Writer) {
	w.U64(m.View)
	w.U64(m.Timestamp)
	w.U32(m.ClientID)
	w.U32(m.Replica)
	w.U8(m.Flags)
	w.Bytes32(m.Result)
}

// Decode parses the wire form from r.
func (m *Reply) Decode(r *Reader) {
	m.View = r.U64()
	m.Timestamp = r.U64()
	m.ClientID = r.U32()
	m.Replica = r.U32()
	m.Flags = r.U8()
	m.Result = r.Bytes32()
}

// Marshal returns the standalone wire form.
func (m *Reply) Marshal() []byte {
	w := NewWriter(40 + len(m.Result))
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalReply parses a standalone Reply.
func UnmarshalReply(b []byte) (*Reply, error) {
	r := NewReader(b)
	var m Reply
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// BatchEntry is one request inside a pre-prepare. For "big" requests the
// primary forwards only identifying metadata plus the digest; otherwise it
// embeds the full request body.
type BatchEntry struct {
	Full      bool
	Req       Request // set when Full
	ClientID  uint32  // the following identify the request when !Full
	Timestamp uint64
	Digest    crypto.Digest
}

// RequestDigest returns the digest of the underlying request regardless of
// whether the body is embedded.
func (e *BatchEntry) RequestDigest() crypto.Digest {
	if e.Full {
		return e.Req.Digest()
	}
	return e.Digest
}

// RequestID returns the (client, timestamp) pair identifying the request.
func (e *BatchEntry) RequestID() (uint32, uint64) {
	if e.Full {
		return e.Req.ClientID, e.Req.Timestamp
	}
	return e.ClientID, e.Timestamp
}

func (e *BatchEntry) encode(w *Writer) {
	if e.Full {
		w.U8(1)
		e.Req.Encode(w)
		return
	}
	w.U8(0)
	w.U32(e.ClientID)
	w.U64(e.Timestamp)
	w.Raw(e.Digest[:])
}

func (e *BatchEntry) decode(r *Reader) {
	switch r.U8() {
	case 1:
		e.Full = true
		e.Req.Decode(r)
	default:
		e.Full = false
		e.ClientID = r.U32()
		e.Timestamp = r.U64()
		r.Fixed(e.Digest[:])
	}
}

// PrePrepare is the primary's sequence-number assignment for a batch of
// requests, carrying the non-deterministic choices for their execution.
//
// A PrePrepare is not safe for concurrent use: BatchDigest memoizes its
// result, so NonDet and Entries must not change after the first
// BatchDigest call.
type PrePrepare struct {
	View    uint64
	Seq     uint64
	NonDet  []byte
	Entries []BatchEntry

	batchDigest    crypto.Digest // memoized BatchDigest
	hasBatchDigest bool
}

// BatchDigest returns the digest that prepares and commits agree on: the
// digest of the sequence of request digests plus the non-deterministic
// payload. The result is memoized; see the PrePrepare concurrency note.
func (m *PrePrepare) BatchDigest() crypto.Digest {
	if !m.hasBatchDigest {
		w := GetWriter(len(m.Entries)*crypto.DigestSize + len(m.NonDet) + 8)
		w.Bytes32(m.NonDet)
		for i := range m.Entries {
			d := m.Entries[i].RequestDigest()
			w.Raw(d[:])
		}
		m.batchDigest = crypto.DigestOf(w.Bytes())
		w.Free()
		m.hasBatchDigest = true
	}
	return m.batchDigest
}

// Encode appends the wire form to w.
func (m *PrePrepare) Encode(w *Writer) {
	w.U64(m.View)
	w.U64(m.Seq)
	w.Bytes32(m.NonDet)
	w.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].encode(w)
	}
}

// Decode parses the wire form from r.
func (m *PrePrepare) Decode(r *Reader) {
	m.View = r.U64()
	m.Seq = r.U64()
	m.NonDet = r.Bytes32()
	n := int(r.U32())
	if r.Err() != nil {
		return
	}
	if n > maxFieldLen/8 {
		r.err = ErrOversized
		return
	}
	if n > 0 {
		m.Entries = make([]BatchEntry, 0, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		var e BatchEntry
		e.decode(r)
		m.Entries = append(m.Entries, e)
	}
}

// Marshal returns the standalone wire form.
func (m *PrePrepare) Marshal() []byte {
	w := NewWriter(64)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalPrePrepare parses a standalone PrePrepare.
func UnmarshalPrePrepare(b []byte) (*PrePrepare, error) {
	r := NewReader(b)
	var m PrePrepare
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Prepare is a backup's agreement to the primary's sequence assignment.
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Digest
	Replica uint32
}

// Encode appends the wire form to w.
func (m *Prepare) Encode(w *Writer) {
	w.U64(m.View)
	w.U64(m.Seq)
	w.Raw(m.Digest[:])
	w.U32(m.Replica)
}

// Decode parses the wire form from r.
func (m *Prepare) Decode(r *Reader) {
	m.View = r.U64()
	m.Seq = r.U64()
	r.Fixed(m.Digest[:])
	m.Replica = r.U32()
}

// Marshal returns the standalone wire form.
func (m *Prepare) Marshal() []byte {
	w := NewWriter(52)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalPrepare parses a standalone Prepare.
func UnmarshalPrepare(b []byte) (*Prepare, error) {
	r := NewReader(b)
	var m Prepare
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Commit certifies total order across views for a sequence number.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Digest
	Replica uint32
}

// Encode appends the wire form to w.
func (m *Commit) Encode(w *Writer) {
	w.U64(m.View)
	w.U64(m.Seq)
	w.Raw(m.Digest[:])
	w.U32(m.Replica)
}

// Decode parses the wire form from r.
func (m *Commit) Decode(r *Reader) {
	m.View = r.U64()
	m.Seq = r.U64()
	r.Fixed(m.Digest[:])
	m.Replica = r.U32()
}

// Marshal returns the standalone wire form.
func (m *Commit) Marshal() []byte {
	w := NewWriter(52)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalCommit parses a standalone Commit.
func UnmarshalCommit(b []byte) (*Commit, error) {
	r := NewReader(b)
	var m Commit
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Checkpoint announces the digest of a replica's state after executing all
// requests up to and including Seq. StateDigest is the composite digest
// replicas agree on; Root and MetaDigest are its two inputs (the state
// region's Merkle root and the digest of the middleware metadata blob:
// reply cache, client table, membership), carried so a lagging replica can
// verify both halves of a state transfer against the agreed StateDigest.
type Checkpoint struct {
	Seq         uint64
	StateDigest crypto.Digest
	Root        crypto.Digest
	MetaDigest  crypto.Digest
	Replica     uint32
}

// CompositeStateDigest combines a region root and a metadata digest into
// the digest checkpoint agreement runs on.
func CompositeStateDigest(root, meta crypto.Digest) crypto.Digest {
	return crypto.DigestOf(root[:], meta[:])
}

// Consistent reports whether StateDigest matches its claimed components.
func (m *Checkpoint) Consistent() bool {
	return m.StateDigest == CompositeStateDigest(m.Root, m.MetaDigest)
}

// Encode appends the wire form to w.
func (m *Checkpoint) Encode(w *Writer) {
	w.U64(m.Seq)
	w.Raw(m.StateDigest[:])
	w.Raw(m.Root[:])
	w.Raw(m.MetaDigest[:])
	w.U32(m.Replica)
}

// Decode parses the wire form from r.
func (m *Checkpoint) Decode(r *Reader) {
	m.Seq = r.U64()
	r.Fixed(m.StateDigest[:])
	r.Fixed(m.Root[:])
	r.Fixed(m.MetaDigest[:])
	m.Replica = r.U32()
}

// Marshal returns the standalone wire form.
func (m *Checkpoint) Marshal() []byte {
	w := NewWriter(108)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalCheckpoint parses a standalone Checkpoint.
func UnmarshalCheckpoint(b []byte) (*Checkpoint, error) {
	r := NewReader(b)
	var m Checkpoint
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}
