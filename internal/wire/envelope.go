package wire

import (
	"fmt"

	"repro/internal/crypto"
)

// AuthKind says how an Envelope is authenticated.
type AuthKind uint8

// Authentication kinds.
const (
	// AuthNone marks unauthenticated envelopes (only used for messages
	// whose payload carries its own proof, e.g. state pages verified
	// against an agreed Merkle root).
	AuthNone AuthKind = 0
	// AuthSig marks envelopes signed with the sender's private key.
	AuthSig AuthKind = 1
	// AuthMAC marks envelopes carrying an authenticator (one MAC per
	// replica) — the optimization of §2.1 of the paper.
	AuthMAC AuthKind = 2
)

// Envelope frames every message on the wire: type, sender identity, opaque
// payload, and the authentication trailer.
//
// An Envelope is not safe for concurrent use: Raw memoizes the marshaled
// form, so no field may change after the first Raw call. The pipeline
// stages rely on single ownership: a verifier worker decodes and
// authenticates an envelope before handing it to the protocol loop, and
// egress paths seal an envelope completely before broadcasting its Raw
// form.
//
// Memory discipline: a decoded Envelope's Payload aliases the raw input
// buffer (no copy), so the envelope and its payload live exactly as long
// as the buffer. A marshaled envelope's Raw form comes from the buffer
// arena; egress paths that do not retain it (agreement votes, status
// gossip, replies) release it after the send with ReleaseRaw.
type Envelope struct {
	Type   MsgType
	Sender uint32
	// Payload is the marshaled message body. On decoded envelopes it is a
	// sub-slice of the raw wire form, not a copy.
	Payload []byte
	// Kind selects which trailer field is meaningful.
	Kind AuthKind
	// Sig is the signature over SignedBytes when Kind == AuthSig.
	Sig []byte
	// Auth is the authenticator over SignedBytes when Kind == AuthMAC.
	Auth crypto.Authenticator

	raw       []byte // memoized Marshal (via Raw)
	rawPooled bool   // raw came from the buffer arena (ReleaseRaw eligible)
}

// signedSize is the length of the byte string covered by the signature or
// authenticator.
func (e *Envelope) signedSize() int { return 5 + len(e.Payload) }

// appendSigned appends the covered byte string: type, sender, payload.
func (e *Envelope) appendSigned(dst []byte) []byte {
	dst = append(dst, uint8(e.Type))
	dst = append(dst, byte(e.Sender>>24), byte(e.Sender>>16), byte(e.Sender>>8), byte(e.Sender))
	return append(dst, e.Payload...)
}

// SignedBytes returns the byte string covered by the signature or
// authenticator: type, sender, and payload. The slice is freshly
// allocated; the pooled Seal*/Verify* methods below avoid that on the hot
// path.
func (e *Envelope) SignedBytes() []byte {
	return e.appendSigned(make([]byte, 0, e.signedSize()))
}

// withSignedBytes runs f over the covered byte string built in a pooled
// scratch buffer. f must not retain the slice.
func (e *Envelope) withSignedBytes(f func(msg []byte) bool) bool {
	w := GetWriter(e.signedSize())
	w.AppendWith(e.appendSigned)
	ok := f(w.Bytes())
	w.Free()
	return ok
}

// SealMAC authenticates the envelope with one MAC per session key
// (Kind = AuthMAC), building the covered bytes in pooled scratch.
func (e *Envelope) SealMAC(keys []crypto.SessionKey) {
	e.Kind = AuthMAC
	e.withSignedBytes(func(msg []byte) bool {
		e.Auth = crypto.ComputeAuthenticator(keys, msg)
		return true
	})
}

// SealMAC1 is SealMAC for the single-receiver case (replies to one
// client): one tag, no key-slice detour.
func (e *Envelope) SealMAC1(key crypto.SessionKey) {
	e.Kind = AuthMAC
	e.withSignedBytes(func(msg []byte) bool {
		e.Auth = crypto.Authenticator{Tags: []crypto.MAC{key.MAC(msg)}}
		return true
	})
}

// SealSig authenticates the envelope with a signature by kp
// (Kind = AuthSig), building the covered bytes in pooled scratch.
func (e *Envelope) SealSig(kp *crypto.KeyPair) {
	e.Kind = AuthSig
	e.withSignedBytes(func(msg []byte) bool {
		e.Sig = kp.Sign(msg)
		return true
	})
}

// VerifyMACEntry checks the authenticator entry for receiver id under key,
// building the covered bytes in pooled scratch.
func (e *Envelope) VerifyMACEntry(id int, key crypto.SessionKey) bool {
	return e.withSignedBytes(func(msg []byte) bool {
		return e.Auth.VerifyEntry(id, key, msg)
	})
}

// VerifySig checks the envelope signature under pub, building the covered
// bytes in pooled scratch.
func (e *Envelope) VerifySig(pub crypto.PublicKey) bool {
	return e.withSignedBytes(func(msg []byte) bool {
		return crypto.Verify(pub, msg, e.Sig)
	})
}

// Raw returns the memoized wire form of a fully sealed envelope. Egress
// paths use it to marshal-and-authenticate once and fan the same byte
// slice out to every destination; callers must not mutate the envelope
// (or the returned slice) afterwards. The buffer comes from the arena;
// egress paths that do not retain it call ReleaseRaw after the send.
func (e *Envelope) Raw() []byte {
	if e.raw == nil {
		w := GetWriter(e.marshaledSize())
		e.encode(w)
		e.raw = w.Detach()
		e.rawPooled = true
	}
	return e.raw
}

// ReleaseRaw returns the memoized wire form to the buffer arena. Only
// valid when the envelope and every alias of Raw's result are dead to the
// caller: transports consume the bytes before Send/Broadcast return, so
// the idiomatic sequence is seal → send → ReleaseRaw. Decoded envelopes
// (whose raw is the receive buffer, owned by the transport) are a no-op.
func (e *Envelope) ReleaseRaw() {
	if e.rawPooled {
		PutBuf(e.raw)
		e.raw = nil
		e.rawPooled = false
	}
}

// marshaledSize bounds the envelope's wire form.
func (e *Envelope) marshaledSize() int {
	return 16 + len(e.Payload) + len(e.Sig) + e.Auth.MarshaledSize()
}

// encode writes the wire form into w.
func (e *Envelope) encode(w *Writer) {
	w.U8(uint8(e.Type))
	w.U32(e.Sender)
	w.Bytes32(e.Payload)
	w.U8(uint8(e.Kind))
	switch e.Kind {
	case AuthSig:
		w.Bytes32(e.Sig)
	case AuthMAC:
		w.AppendWith(e.Auth.AppendMarshal)
	}
}

// Marshal flattens the envelope for transmission.
func (e *Envelope) Marshal() []byte {
	w := NewWriter(e.marshaledSize())
	e.encode(w)
	return w.Bytes()
}

// UnmarshalEnvelope parses a transmitted envelope. The envelope's Payload
// (and memoized raw form) alias b: the caller must keep b alive and
// unmodified for as long as the envelope or anything decoded by reference
// from it is in use.
func UnmarshalEnvelope(b []byte) (*Envelope, error) {
	e := new(Envelope)
	if err := UnmarshalEnvelopeInto(e, b); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset clears the envelope for reuse, keeping the Auth.Tags backing
// array so a following UnmarshalEnvelopeInto decodes without allocating.
// The caller must own the envelope exclusively (nothing may still alias
// its previous contents).
func (e *Envelope) Reset() {
	tags := e.Auth.Tags[:0]
	*e = Envelope{}
	e.Auth.Tags = tags
}

// UnmarshalEnvelopeInto is UnmarshalEnvelope decoding into a caller-owned
// (typically pooled) envelope: no Envelope and no Auth.Tags allocation in
// steady state. On error the envelope is left reset. The same aliasing
// contract applies: Payload, Sig and the memoized raw form alias b.
func UnmarshalEnvelopeInto(e *Envelope, b []byte) error {
	e.Reset()
	r := NewReader(b)
	e.Type = MsgType(r.U8())
	e.Sender = r.U32()
	e.Payload = r.Bytes32Ref()
	e.Kind = AuthKind(r.U8())
	switch e.Kind {
	case AuthNone:
	case AuthSig:
		e.Sig = r.Bytes32Ref()
	case AuthMAC:
		if r.Err() == nil {
			n, ok := crypto.UnmarshalAuthenticatorInto(&e.Auth, b[r.Offset():])
			if !ok {
				e.Reset()
				return ErrTruncated
			}
			r.Skip(n)
		}
	default:
		kind := e.Kind
		e.Reset()
		return fmt.Errorf("wire: unknown auth kind %d", kind)
	}
	if err := r.Done(); err != nil {
		e.Reset()
		return err
	}
	if e.Type == MTInvalid || e.Type > MTStatus {
		t := e.Type
		e.Reset()
		return fmt.Errorf("wire: unknown message type %d", t)
	}
	// The input buffer IS the wire form; callers that relay or store the
	// envelope (Raw) reuse it instead of re-marshaling.
	e.raw = b
	return nil
}
