package wire

import (
	"fmt"

	"repro/internal/crypto"
)

// AuthKind says how an Envelope is authenticated.
type AuthKind uint8

// Authentication kinds.
const (
	// AuthNone marks unauthenticated envelopes (only used for messages
	// whose payload carries its own proof, e.g. state pages verified
	// against an agreed Merkle root).
	AuthNone AuthKind = 0
	// AuthSig marks envelopes signed with the sender's private key.
	AuthSig AuthKind = 1
	// AuthMAC marks envelopes carrying an authenticator (one MAC per
	// replica) — the optimization of §2.1 of the paper.
	AuthMAC AuthKind = 2
)

// Envelope frames every message on the wire: type, sender identity, opaque
// payload, and the authentication trailer.
//
// An Envelope is not safe for concurrent use: Raw memoizes the marshaled
// form, so no field may change after the first Raw call. The pipeline
// stages rely on single ownership: a verifier worker decodes and
// authenticates an envelope before handing it to the protocol loop, and
// egress paths seal an envelope completely before broadcasting its Raw
// form.
type Envelope struct {
	Type   MsgType
	Sender uint32
	// Payload is the marshaled message body.
	Payload []byte
	// Kind selects which trailer field is meaningful.
	Kind AuthKind
	// Sig is the signature over SignedBytes when Kind == AuthSig.
	Sig []byte
	// Auth is the authenticator over SignedBytes when Kind == AuthMAC.
	Auth crypto.Authenticator

	raw []byte // memoized Marshal (via Raw)
}

// SignedBytes returns the byte string covered by the signature or
// authenticator: type, sender, and payload.
func (e *Envelope) SignedBytes() []byte {
	w := NewWriter(5 + len(e.Payload))
	w.U8(uint8(e.Type))
	w.U32(e.Sender)
	w.Raw(e.Payload)
	return w.Bytes()
}

// Raw returns the memoized wire form of a fully sealed envelope. Egress
// paths use it to marshal-and-authenticate once and fan the same byte
// slice out to every destination; callers must not mutate the envelope
// (or the returned slice) afterwards.
func (e *Envelope) Raw() []byte {
	if e.raw == nil {
		e.raw = e.Marshal()
	}
	return e.raw
}

// Marshal flattens the envelope for transmission.
func (e *Envelope) Marshal() []byte {
	w := NewWriter(16 + len(e.Payload) + len(e.Sig) + len(e.Auth.Tags)*crypto.MACSize)
	w.U8(uint8(e.Type))
	w.U32(e.Sender)
	w.Bytes32(e.Payload)
	w.U8(uint8(e.Kind))
	switch e.Kind {
	case AuthSig:
		w.Bytes32(e.Sig)
	case AuthMAC:
		w.Raw(e.Auth.Marshal())
	}
	return w.Bytes()
}

// UnmarshalEnvelope parses a transmitted envelope.
func UnmarshalEnvelope(b []byte) (*Envelope, error) {
	r := NewReader(b)
	e := &Envelope{
		Type:   MsgType(r.U8()),
		Sender: r.U32(),
	}
	e.Payload = r.Bytes32()
	e.Kind = AuthKind(r.U8())
	switch e.Kind {
	case AuthNone:
	case AuthSig:
		e.Sig = r.Bytes32()
	case AuthMAC:
		if r.Err() == nil {
			auth, n, ok := crypto.UnmarshalAuthenticator(b[r.Offset():])
			if !ok {
				return nil, ErrTruncated
			}
			e.Auth = auth
			r.Fixed(make([]byte, n))
		}
	default:
		return nil, fmt.Errorf("wire: unknown auth kind %d", e.Kind)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if e.Type == MTInvalid || e.Type > MTStatus {
		return nil, fmt.Errorf("wire: unknown message type %d", e.Type)
	}
	// The input buffer IS the wire form; callers that relay or store the
	// envelope (Raw) reuse it instead of re-marshaling.
	e.raw = b
	return e, nil
}
