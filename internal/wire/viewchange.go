package wire

import (
	"repro/internal/crypto"
)

// PreparedInfo summarizes a prepared certificate carried in a view change:
// the sequence number, the view in which the pre-prepare was sent, the
// batch digest it prepared, and the original pre-prepare bytes so the new
// primary can re-propose the batch contents in its new-view message.
type PreparedInfo struct {
	Seq    uint64
	View   uint64
	Digest crypto.Digest
	PPRaw  []byte
}

func (p *PreparedInfo) encode(w *Writer) {
	w.U64(p.Seq)
	w.U64(p.View)
	w.Raw(p.Digest[:])
	w.Bytes32(p.PPRaw)
}

func (p *PreparedInfo) decode(r *Reader) {
	p.Seq = r.U64()
	p.View = r.U64()
	r.Fixed(p.Digest[:])
	p.PPRaw = r.Bytes32()
}

// ViewChange is a replica's vote to move to a new view, carrying its last
// stable checkpoint and its prepared certificates above it (the C and P
// sets of Castro–Liskov). View changes are always signed.
type ViewChange struct {
	NewView      uint64
	LastStable   uint64
	StableDigest crypto.Digest
	Prepared     []PreparedInfo
	Replica      uint32
}

// Encode appends the wire form to w.
func (m *ViewChange) Encode(w *Writer) {
	w.U64(m.NewView)
	w.U64(m.LastStable)
	w.Raw(m.StableDigest[:])
	w.U32(uint32(len(m.Prepared)))
	for i := range m.Prepared {
		m.Prepared[i].encode(w)
	}
	w.U32(m.Replica)
}

// Decode parses the wire form from r.
func (m *ViewChange) Decode(r *Reader) {
	m.NewView = r.U64()
	m.LastStable = r.U64()
	r.Fixed(m.StableDigest[:])
	n := int(r.U32())
	if r.Err() != nil {
		return
	}
	if n > maxFieldLen/8 {
		r.err = ErrOversized
		return
	}
	if n > 0 {
		m.Prepared = make([]PreparedInfo, 0, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		var p PreparedInfo
		p.decode(r)
		m.Prepared = append(m.Prepared, p)
	}
	m.Replica = r.U32()
}

// Marshal returns the standalone wire form.
func (m *ViewChange) Marshal() []byte {
	w := NewWriter(64 + len(m.Prepared)*48)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalViewChange parses a standalone ViewChange.
func UnmarshalViewChange(b []byte) (*ViewChange, error) {
	r := NewReader(b)
	var m ViewChange
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// NewView is the new primary's proof that a view change is justified and
// its re-proposal of in-flight sequence numbers (the V and O sets).
// ViewChanges holds the raw signed envelopes of the 2f+1 supporting view
// changes so every replica can re-verify them.
type NewView struct {
	View        uint64
	ViewChanges [][]byte
	PrePrepares []PrePrepare
}

// Encode appends the wire form to w.
func (m *NewView) Encode(w *Writer) {
	w.U64(m.View)
	w.U32(uint32(len(m.ViewChanges)))
	for _, vc := range m.ViewChanges {
		w.Bytes32(vc)
	}
	w.U32(uint32(len(m.PrePrepares)))
	for i := range m.PrePrepares {
		pp := m.PrePrepares[i].Marshal()
		w.Bytes32(pp)
	}
}

// Decode parses the wire form from r.
func (m *NewView) Decode(r *Reader) {
	m.View = r.U64()
	n := int(r.U32())
	if r.Err() != nil {
		return
	}
	if n > maxFieldLen/8 {
		r.err = ErrOversized
		return
	}
	if n > 0 {
		m.ViewChanges = make([][]byte, 0, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		m.ViewChanges = append(m.ViewChanges, r.Bytes32())
	}
	n = int(r.U32())
	if r.Err() != nil {
		return
	}
	if n > maxFieldLen/8 {
		r.err = ErrOversized
		return
	}
	if n > 0 {
		m.PrePrepares = make([]PrePrepare, 0, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		raw := r.Bytes32()
		if r.Err() != nil {
			return
		}
		pp, err := UnmarshalPrePrepare(raw)
		if err != nil {
			r.err = err
			return
		}
		m.PrePrepares = append(m.PrePrepares, *pp)
	}
}

// Marshal returns the standalone wire form.
func (m *NewView) Marshal() []byte {
	w := NewWriter(256)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalNewView parses a standalone NewView.
func UnmarshalNewView(b []byte) (*NewView, error) {
	r := NewReader(b)
	var m NewView
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Status is a periodic gossip of a replica's progress; peers use it to
// retransmit what the sender is missing and to detect lag.
type Status struct {
	View       uint64
	LastExec   uint64
	LastStable uint64
	Replica    uint32
}

// Encode appends the wire form to w.
func (m *Status) Encode(w *Writer) {
	w.U64(m.View)
	w.U64(m.LastExec)
	w.U64(m.LastStable)
	w.U32(m.Replica)
}

// Decode parses the wire form from r.
func (m *Status) Decode(r *Reader) {
	m.View = r.U64()
	m.LastExec = r.U64()
	m.LastStable = r.U64()
	m.Replica = r.U32()
}

// Marshal returns the standalone wire form.
func (m *Status) Marshal() []byte {
	w := NewWriter(28)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalStatus parses a standalone Status.
func UnmarshalStatus(b []byte) (*Status, error) {
	r := NewReader(b)
	var m Status
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}
