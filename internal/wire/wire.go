// Package wire defines the binary wire format for every message exchanged
// by the PBFT middleware: client requests and replies, the three-phase
// agreement messages, checkpointing, view changes, state transfer, and the
// dynamic-membership extension of the paper (§3.1).
//
// All messages travel inside an Envelope that carries the message type, the
// sender identity and an authentication trailer (a signature, an
// authenticator of per-replica MACs, or nothing). Encoding is explicit
// big-endian with length prefixes; there is no reflection and no external
// dependency.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// MsgType identifies the kind of protocol message inside an Envelope.
type MsgType uint8

// Message types. The numbering is part of the wire format.
const (
	MTInvalid      MsgType = 0
	MTRequest      MsgType = 1
	MTReply        MsgType = 2
	MTPrePrepare   MsgType = 3
	MTPrepare      MsgType = 4
	MTCommit       MsgType = 5
	MTCheckpoint   MsgType = 6
	MTViewChange   MsgType = 7
	MTNewView      MsgType = 8
	MTJoinChall    MsgType = 9
	MTSessionHello MsgType = 10
	MTFetch        MsgType = 11
	MTStateNode    MsgType = 12
	MTStatePage    MsgType = 13
	MTStatus       MsgType = 14
)

// String returns the conventional PBFT name of the message type.
func (t MsgType) String() string {
	switch t {
	case MTRequest:
		return "request"
	case MTReply:
		return "reply"
	case MTPrePrepare:
		return "pre-prepare"
	case MTPrepare:
		return "prepare"
	case MTCommit:
		return "commit"
	case MTCheckpoint:
		return "checkpoint"
	case MTViewChange:
		return "view-change"
	case MTNewView:
		return "new-view"
	case MTJoinChall:
		return "join-challenge"
	case MTSessionHello:
		return "session-hello"
	case MTFetch:
		return "fetch"
	case MTStateNode:
		return "state-node"
	case MTStatePage:
		return "state-page"
	case MTStatus:
		return "status"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// ErrTruncated is returned when a buffer ends before a complete message.
var ErrTruncated = errors.New("wire: truncated message")

// ErrOversized is returned when a length prefix exceeds sane bounds.
var ErrOversized = errors.New("wire: oversized field")

// maxFieldLen bounds any single variable-length field. It protects decoders
// from hostile length prefixes; legitimate messages (state pages, batched
// requests) stay well under it.
const maxFieldLen = 16 << 20

// Writer is an append-only encoder. Methods never fail; the caller takes
// the accumulated buffer with Bytes.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Bytes32 appends a 4-byte length prefix followed by b.
func (w *Writer) Bytes32(b []byte) {
	if len(b) > math.MaxUint32 {
		panic("wire: field too large")
	}
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String32 appends a length-prefixed string.
func (w *Writer) String32(s string) { w.Bytes32([]byte(s)) }

// Raw appends b with no prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// AppendWith hands the accumulated buffer to f, which appends to it and
// returns the result (the append-style idiom). It lets encoders outside
// this package (crypto.Authenticator) write into the Writer without an
// intermediate allocation.
func (w *Writer) AppendWith(f func([]byte) []byte) { w.buf = f(w.buf) }

// Reader is a sticky-error decoder over a byte slice.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// Done returns nil only if the reader consumed the whole buffer cleanly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.buf)-r.off < n {
		r.err = ErrTruncated
		return false
	}
	return true
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Bytes32 reads a 4-byte length prefix and the following bytes. The result
// is a copy, safe to retain after the underlying buffer is reused.
func (r *Reader) Bytes32() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n > maxFieldLen {
		r.err = ErrOversized
		return nil
	}
	if n == 0 {
		return nil
	}
	if !r.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

// String32 reads a length-prefixed string.
func (r *Reader) String32() string { return string(r.Bytes32()) }

// Bytes32Ref reads a 4-byte length prefix and returns the following bytes
// as a sub-slice of the underlying buffer — no copy. The result is only
// valid while the underlying buffer is; callers that retain it must own
// the buffer for at least as long (the envelope decoder does: an Envelope
// retains its raw wire form anyway).
func (r *Reader) Bytes32Ref() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n > maxFieldLen {
		r.err = ErrOversized
		return nil
	}
	if n == 0 {
		return nil
	}
	if !r.need(n) {
		return nil
	}
	out := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return out
}

// Skip advances the reader past n bytes without reading them.
func (r *Reader) Skip(n int) {
	if n < 0 {
		if r.err == nil {
			r.err = ErrTruncated
		}
		return
	}
	if !r.need(n) {
		return
	}
	r.off += n
}

// Fixed reads exactly n bytes into dst.
func (r *Reader) Fixed(dst []byte) {
	if !r.need(len(dst)) {
		return
	}
	copy(dst, r.buf[r.off:])
	r.off += len(dst)
}
