package wire

import (
	"repro/internal/crypto"
)

// Fetch asks a peer for a node of its checkpointed state's Merkle tree
// (Level > 0) or for a data page (Level == 0). Seq names the checkpoint the
// requester is synchronizing to.
type Fetch struct {
	Seq     uint64
	Level   uint32
	Index   uint32
	Replica uint32 // requester
}

// Encode appends the wire form to w.
func (m *Fetch) Encode(w *Writer) {
	w.U64(m.Seq)
	w.U32(m.Level)
	w.U32(m.Index)
	w.U32(m.Replica)
}

// Decode parses the wire form from r.
func (m *Fetch) Decode(r *Reader) {
	m.Seq = r.U64()
	m.Level = r.U32()
	m.Index = r.U32()
	m.Replica = r.U32()
}

// Marshal returns the standalone wire form.
func (m *Fetch) Marshal() []byte {
	w := NewWriter(20)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalFetch parses a standalone Fetch.
func UnmarshalFetch(b []byte) (*Fetch, error) {
	r := NewReader(b)
	var m Fetch
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// StateNode answers a Fetch for an inner Merkle node: the digests of its
// children. The requester compares them with its own tree and recurses only
// into differing subtrees.
type StateNode struct {
	Seq      uint64
	Level    uint32
	Index    uint32
	Children []crypto.Digest
}

// Encode appends the wire form to w.
func (m *StateNode) Encode(w *Writer) {
	w.U64(m.Seq)
	w.U32(m.Level)
	w.U32(m.Index)
	w.U32(uint32(len(m.Children)))
	for i := range m.Children {
		w.Raw(m.Children[i][:])
	}
}

// Decode parses the wire form from r.
func (m *StateNode) Decode(r *Reader) {
	m.Seq = r.U64()
	m.Level = r.U32()
	m.Index = r.U32()
	n := int(r.U32())
	if r.Err() != nil {
		return
	}
	if n > maxFieldLen/crypto.DigestSize {
		r.err = ErrOversized
		return
	}
	m.Children = make([]crypto.Digest, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		r.Fixed(m.Children[i][:])
	}
}

// Marshal returns the standalone wire form.
func (m *StateNode) Marshal() []byte {
	w := NewWriter(24 + len(m.Children)*crypto.DigestSize)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalStateNode parses a standalone StateNode.
func UnmarshalStateNode(b []byte) (*StateNode, error) {
	r := NewReader(b)
	var m StateNode
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// StatePage answers a Fetch for a leaf: the raw bytes of one state page at
// the named checkpoint.
type StatePage struct {
	Seq   uint64
	Index uint32
	Data  []byte
}

// Encode appends the wire form to w.
func (m *StatePage) Encode(w *Writer) {
	w.U64(m.Seq)
	w.U32(m.Index)
	w.Bytes32(m.Data)
}

// Decode parses the wire form from r.
func (m *StatePage) Decode(r *Reader) {
	m.Seq = r.U64()
	m.Index = r.U32()
	m.Data = r.Bytes32()
}

// Marshal returns the standalone wire form.
func (m *StatePage) Marshal() []byte {
	w := NewWriter(16 + len(m.Data))
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalStatePage parses a standalone StatePage.
func UnmarshalStatePage(b []byte) (*StatePage, error) {
	r := NewReader(b)
	var m StatePage
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}
