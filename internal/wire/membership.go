package wire

import (
	"repro/internal/crypto"
)

// Join phases (§3.1 of the paper). The join is split in two so that a
// malicious client cannot exhaust the node table with phony addresses: the
// client must receive the challenge at the address it claims to own before
// it can complete the join.
const (
	// JoinPhaseHello is the first phase: the client submits its address,
	// public key, nonce and application-level identification buffer.
	JoinPhaseHello uint8 = 1
	// JoinPhaseResponse is the second phase: the client echoes the
	// challenge solution.
	JoinPhaseResponse uint8 = 2
)

// JoinOp is the body (Request.Op) of a system Join request. Leave requests
// have an empty body; they are identified by the OpLeave code.
type JoinOp struct {
	Phase    uint8
	Addr     string
	PubKey   []byte // crypto.MarshalPublicKey form
	Nonce    uint64
	AppAuth  []byte        // application-level identification buffer
	Response crypto.Digest // solution, set in phase 2
}

// SysOp codes distinguish system request bodies.
const (
	OpJoin  uint8 = 1
	OpLeave uint8 = 2
)

// MarshalSysOp wraps a system operation body with its code.
func MarshalSysOp(code uint8, body []byte) []byte {
	out := make([]byte, 0, 1+len(body))
	out = append(out, code)
	return append(out, body...)
}

// SplitSysOp splits a system request body into code and payload.
func SplitSysOp(op []byte) (code uint8, body []byte, ok bool) {
	if len(op) < 1 {
		return 0, nil, false
	}
	return op[0], op[1:], true
}

// Marshal returns the standalone wire form.
func (m *JoinOp) Marshal() []byte {
	w := NewWriter(64 + len(m.Addr) + len(m.PubKey) + len(m.AppAuth))
	w.U8(m.Phase)
	w.String32(m.Addr)
	w.Bytes32(m.PubKey)
	w.U64(m.Nonce)
	w.Bytes32(m.AppAuth)
	w.Raw(m.Response[:])
	return w.Bytes()
}

// UnmarshalJoinOp parses a standalone JoinOp.
func UnmarshalJoinOp(b []byte) (*JoinOp, error) {
	r := NewReader(b)
	var m JoinOp
	m.Phase = r.U8()
	m.Addr = r.String32()
	m.PubKey = r.Bytes32()
	m.Nonce = r.U64()
	m.AppAuth = r.Bytes32()
	r.Fixed(m.Response[:])
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// JoinChallenge is sent by each replica to the claimed client address after
// ordering a phase-1 join. The challenge is derived deterministically from
// the ordered request so all correct replicas send the same value.
type JoinChallenge struct {
	Replica   uint32
	Seq       uint64
	Challenge crypto.Digest
}

// Encode appends the wire form to w.
func (m *JoinChallenge) Encode(w *Writer) {
	w.U32(m.Replica)
	w.U64(m.Seq)
	w.Raw(m.Challenge[:])
}

// Decode parses the wire form from r.
func (m *JoinChallenge) Decode(r *Reader) {
	m.Replica = r.U32()
	m.Seq = r.U64()
	r.Fixed(m.Challenge[:])
}

// Marshal returns the standalone wire form.
func (m *JoinChallenge) Marshal() []byte {
	w := NewWriter(44)
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalJoinChallenge parses a standalone JoinChallenge.
func UnmarshalJoinChallenge(b []byte) (*JoinChallenge, error) {
	r := NewReader(b)
	var m JoinChallenge
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SessionHello (re-)establishes a client's session key material at a
// replica. Clients retransmit it blindly on a timer; this is the
// authenticator-retransmission mechanism whose interaction with recovery
// the paper analyzes in §2.3 (a restarted replica has no session keys and
// cannot authenticate logged requests until the next hello arrives).
type SessionHello struct {
	ClientID uint32
	Addr     string
	PubKey   []byte
}

// Encode appends the wire form to w.
func (m *SessionHello) Encode(w *Writer) {
	w.U32(m.ClientID)
	w.String32(m.Addr)
	w.Bytes32(m.PubKey)
}

// Decode parses the wire form from r.
func (m *SessionHello) Decode(r *Reader) {
	m.ClientID = r.U32()
	m.Addr = r.String32()
	m.PubKey = r.Bytes32()
}

// Marshal returns the standalone wire form.
func (m *SessionHello) Marshal() []byte {
	w := NewWriter(16 + len(m.Addr) + len(m.PubKey))
	m.Encode(w)
	return w.Bytes()
}

// UnmarshalSessionHello parses a standalone SessionHello.
func UnmarshalSessionHello(b []byte) (*SessionHello, error) {
	r := NewReader(b)
	var m SessionHello
	m.Decode(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}

// JoinResult is the reply body of a successful join: the identifier the
// service assigned to the client.
type JoinResult struct {
	ClientID uint32
	Accepted bool
	Reason   string
}

// Marshal returns the standalone wire form.
func (m *JoinResult) Marshal() []byte {
	w := NewWriter(16 + len(m.Reason))
	w.U32(m.ClientID)
	if m.Accepted {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.String32(m.Reason)
	return w.Bytes()
}

// UnmarshalJoinResult parses a standalone JoinResult.
func UnmarshalJoinResult(b []byte) (*JoinResult, error) {
	r := NewReader(b)
	var m JoinResult
	m.ClientID = r.U32()
	m.Accepted = r.U8() == 1
	m.Reason = r.String32()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &m, nil
}
