package adversary

import (
	"math/rand"
	"sync"

	"repro/internal/crypto"
	"repro/internal/wire"
)

// typeSet builds the message-type filter shared by the selective
// behaviors. An empty set matches every type.
func typeSet(types []wire.MsgType) map[wire.MsgType]bool {
	if len(types) == 0 {
		return nil
	}
	s := make(map[wire.MsgType]bool, len(types))
	for _, t := range types {
		s[t] = true
	}
	return s
}

func matches(s map[wire.MsgType]bool, t wire.MsgType) bool {
	return s == nil || s[t]
}

// Equivocator turns a primary Byzantine in the classic sense: every
// outgoing pre-prepare is replaced by per-destination variants with
// perturbed non-deterministic payloads, so each backup is told a
// different batch digest for the same (view, sequence) slot. Two
// variants go to each destination, so every backup also *observes* the
// equivocation directly (its second variant conflicts with its first,
// incrementing ConflictingPrePrepares) rather than only discovering it
// through a failed prepare quorum.
//
// The perturbation touches only NonDet.Rand — the timestamp survives,
// so every variant passes the receiver's non-determinism validation and
// the attack targets agreement, not input sanitation. Variants are
// re-sealed under the adversary's real identity: equivocation is an
// attack on consistency, not on the authenticator.
type Equivocator struct {
	ident *Identity
}

// NewEquivocator builds an equivocator sealing as ident.
func NewEquivocator(ident *Identity) *Equivocator { return &Equivocator{ident: ident} }

// Outgoing implements Behavior.
func (e *Equivocator) Outgoing(to string, data []byte) [][]byte {
	env, err := wire.UnmarshalEnvelope(data)
	if err != nil || env.Type != wire.MTPrePrepare {
		return [][]byte{data}
	}
	pp, err := wire.UnmarshalPrePrepare(env.Payload)
	if err != nil || len(pp.Entries) == 0 {
		return [][]byte{data}
	}
	nd, err := wire.UnmarshalNonDet(pp.NonDet)
	if err != nil {
		return [][]byte{data}
	}
	// Derive the per-destination perturbation from the address so the
	// schedule is deterministic for a fixed cluster layout.
	mask := crypto.DigestOf([]byte(to))
	out := make([][]byte, 0, 2)
	for variant := byte(1); variant <= 2; variant++ {
		ndv := *nd
		for i := 0; i < 8; i++ {
			ndv.Rand[i] ^= mask[i]
		}
		ndv.Rand[len(ndv.Rand)-1] ^= variant
		ppv := wire.PrePrepare{View: pp.View, Seq: pp.Seq, NonDet: ndv.Marshal(), Entries: pp.Entries}
		out = append(out, e.ident.Seal(&wire.Envelope{Type: wire.MTPrePrepare, Payload: ppv.Marshal()}))
	}
	return out
}

// Corruptor flips a bit inside the authenticated payload of matching
// messages, leaving the envelope framing intact: receivers decode the
// envelope, fail MAC/signature verification, and count the packet in
// DroppedBadAuth — the paper's "corrupt authenticator" fault, visible
// as pbft_drops_total{reason="auth"}.
type Corruptor struct {
	types map[wire.MsgType]bool
	rate  float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewCorruptor corrupts the given message types (all types when empty)
// with the given probability, drawing from a deterministic seeded
// stream.
func NewCorruptor(seed int64, rate float64, types ...wire.MsgType) *Corruptor {
	return &Corruptor{types: typeSet(types), rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Outgoing implements Behavior.
func (c *Corruptor) Outgoing(to string, data []byte) [][]byte {
	cp := append([]byte(nil), data...)
	var env wire.Envelope
	if err := wire.UnmarshalEnvelopeInto(&env, cp); err != nil || !matches(c.types, env.Type) || len(env.Payload) == 0 {
		return [][]byte{data}
	}
	c.mu.Lock()
	hit := c.rate >= 1 || c.rng.Float64() < c.rate
	c.mu.Unlock()
	if !hit {
		return [][]byte{data}
	}
	env.Payload[0] ^= 0x80 // Payload aliases cp: the copy is now corrupt
	return [][]byte{cp}
}

// Withholder silently drops matching outgoing messages — a replica that
// participates in agreement but never votes (silent on prepare/commit),
// or one that ghosts checkpoints. With at most f withholders the
// protocol must mask the silence entirely.
type Withholder struct {
	types map[wire.MsgType]bool
}

// NewWithholder suppresses the given message types (all when empty).
func NewWithholder(types ...wire.MsgType) *Withholder {
	return &Withholder{types: typeSet(types)}
}

// Outgoing implements Behavior.
func (w *Withholder) Outgoing(_ string, data []byte) [][]byte {
	var env wire.Envelope
	if err := wire.UnmarshalEnvelopeInto(&env, data); err == nil && matches(w.types, env.Type) {
		return nil
	}
	return [][]byte{data}
}

// Replayer taps matching outgoing messages, recording their raw wire
// form while passing them through unmodified. The captures are
// genuinely signed envelopes, so a scenario can later re-inject them
// from any endpoint — the stale view-change-proof replay the paper's
// recovery discussion worries about. Receivers authenticate the replay
// successfully (the signature is real) and must reject it on protocol
// state alone.
type Replayer struct {
	types map[wire.MsgType]bool

	mu       sync.Mutex
	captured [][]byte
}

// NewReplayer captures the given message types (all when empty).
func NewReplayer(types ...wire.MsgType) *Replayer {
	return &Replayer{types: typeSet(types)}
}

// Outgoing implements Behavior.
func (r *Replayer) Outgoing(_ string, data []byte) [][]byte {
	var env wire.Envelope
	if err := wire.UnmarshalEnvelopeInto(&env, data); err == nil && matches(r.types, env.Type) {
		cp := append([]byte(nil), data...)
		r.mu.Lock()
		r.captured = append(r.captured, cp)
		r.mu.Unlock()
	}
	return [][]byte{data}
}

// Captured returns copies of every datagram recorded so far.
func (r *Replayer) Captured() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.captured))
	for i, d := range r.captured {
		out[i] = append([]byte(nil), d...)
	}
	return out
}
