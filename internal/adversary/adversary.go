// Package adversary scripts Byzantine behavior for harness and chaos
// testing. It interposes on a replica's (or client's) transport
// connection and rewrites, multiplies, or suppresses outgoing datagrams
// according to a composable Behavior — so a single unmodified protocol
// stack can be driven as an equivocating primary, a MAC corruptor, a
// vote withholder, or a replayer of stale proofs, without forking any
// core code.
//
// The package deliberately does NOT implement transport.Broadcaster:
// core's fan-out helper then falls back to per-destination Send, which
// is exactly the hook an equivocator needs to tell different stories to
// different peers.
package adversary

import (
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// Behavior inspects one outgoing datagram. The return value replaces
// the original transmission:
//
//	nil            — suppress the datagram entirely
//	[][]byte{d}    — send d (pass-through or rewrite)
//	[][]byte{a,b}  — send both, in order (duplication / equivocation)
//
// Implementations must not retain or mutate data after returning; if a
// rewrite is needed, work on a copy.
type Behavior interface {
	Outgoing(to string, data []byte) [][]byte
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(to string, data []byte) [][]byte

// Outgoing implements Behavior.
func (f BehaviorFunc) Outgoing(to string, data []byte) [][]byte { return f(to, data) }

// Passthrough forwards every datagram unchanged.
var Passthrough Behavior = BehaviorFunc(func(_ string, data []byte) [][]byte {
	return [][]byte{data}
})

// Conn wraps a transport.Conn and filters outgoing traffic through a
// swappable Behavior. Inbound traffic is untouched: a Byzantine node
// still reads the world honestly, it only lies on the way out.
type Conn struct {
	inner transport.Conn

	mu       sync.Mutex
	behavior Behavior
}

// Wrap interposes behavior on conn. A nil behavior is Passthrough.
func Wrap(conn transport.Conn, behavior Behavior) *Conn {
	if behavior == nil {
		behavior = Passthrough
	}
	return &Conn{inner: conn, behavior: behavior}
}

// SetBehavior swaps the active behavior at runtime (chaos phases flip a
// node between honest and adversarial without restarting it). A nil
// behavior restores Passthrough.
func (c *Conn) SetBehavior(b Behavior) {
	if b == nil {
		b = Passthrough
	}
	c.mu.Lock()
	c.behavior = b
	c.mu.Unlock()
}

// Addr returns the wrapped endpoint's address.
func (c *Conn) Addr() string { return c.inner.Addr() }

// Send filters data through the behavior, then transmits whatever
// survives. Errors from suppressed sends cannot exist; for multiplied
// sends the first transport error wins.
func (c *Conn) Send(to string, data []byte) error {
	c.mu.Lock()
	b := c.behavior
	c.mu.Unlock()
	var first error
	for _, out := range b.Outgoing(to, data) {
		if err := c.inner.Send(to, out); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Recv returns the wrapped endpoint's inbound channel.
func (c *Conn) Recv() <-chan transport.Packet { return c.inner.Recv() }

// Close releases the wrapped endpoint.
func (c *Conn) Close() error { return c.inner.Close() }

// Chain composes behaviors left to right: every datagram produced by
// behavior i is fed to behavior i+1, so suppression and multiplication
// compose the way shell pipelines do.
func Chain(behaviors ...Behavior) Behavior {
	return BehaviorFunc(func(to string, data []byte) [][]byte {
		frames := [][]byte{data}
		for _, b := range behaviors {
			var next [][]byte
			for _, f := range frames {
				next = append(next, b.Outgoing(to, f)...)
			}
			if len(next) == 0 {
				return nil
			}
			frames = next
		}
		return frames
	})
}

// Gate arms and disarms a behavior atomically. Disarmed, it is a pure
// passthrough; armed, it delegates to the wrapped behavior. Chaos
// scenarios use it to timestamp fault injection precisely: build the
// conn disarmed, let the cluster settle, then Arm() and start the
// recovery clock.
type Gate struct {
	inner Behavior
	armed atomic.Bool
}

// NewGate wraps b, initially disarmed.
func NewGate(b Behavior) *Gate { return &Gate{inner: b} }

// Arm activates the wrapped behavior.
func (g *Gate) Arm() { g.armed.Store(true) }

// Disarm restores passthrough.
func (g *Gate) Disarm() { g.armed.Store(false) }

// Armed reports whether the wrapped behavior is active.
func (g *Gate) Armed() bool { return g.armed.Load() }

// Outgoing implements Behavior.
func (g *Gate) Outgoing(to string, data []byte) [][]byte {
	if !g.armed.Load() {
		return [][]byte{data}
	}
	return g.inner.Outgoing(to, data)
}
