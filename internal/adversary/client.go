package adversary

import (
	"sync/atomic"

	"repro/internal/crypto"
	"repro/internal/wire"
)

// NewClientIdentity builds the sealing identity of an adversarial
// CLIENT: clients sign with their registered key pair in signature
// deployments, so the interposer can re-authenticate rewritten requests.
// (In MAC deployments client traffic is sealed with private ephemeral
// session keys an interposer does not hold — client-side equivocation
// scenarios therefore run with signatures.)
func NewClientIdentity(id uint32, kp *crypto.KeyPair) *Identity {
	return &Identity{ID: id, kp: kp}
}

// TimestampEquivocator is a Byzantine client behavior: alongside every
// outgoing request it sends each replica a second, validly signed copy
// of the same operation bearing a DIFFERENT (stale) timestamp — and a
// different one per destination, so no two replicas see the same lie.
// The attack probes the per-client dedup window: a window that admitted
// the stale copies would let replicas execute (or relay, or start
// liveness timers for) operations the client already completed,
// diverging state across the group. A correct window absorbs every
// variant below its floor without protocol activity.
type TimestampEquivocator struct {
	ident *Identity
	// window is the deployment's ClientWindow W: offsets are chosen
	// beyond it so every variant lands below the dedup floor once the
	// client has more than W+offset timestamps behind it.
	window uint64
	stale  atomic.Uint64
}

// NewTimestampEquivocator equivocates requests signed as ident across
// the replicas of one group. window is the deployment's ClientWindow.
func NewTimestampEquivocator(ident *Identity, window uint64) *TimestampEquivocator {
	return &TimestampEquivocator{ident: ident, window: window}
}

// Stale returns how many stale request variants were injected.
func (t *TimestampEquivocator) Stale() uint64 { return t.stale.Load() }

// Outgoing implements Behavior. Only writable request traffic is
// equivocated; read-only and system (join/leave) requests pass through
// untouched, as does anything that fails to parse.
func (t *TimestampEquivocator) Outgoing(to string, data []byte) [][]byte {
	env, err := wire.UnmarshalEnvelope(data)
	if err != nil || env.Type != wire.MTRequest {
		return [][]byte{data}
	}
	req, err := wire.UnmarshalRequest(env.Payload)
	if err != nil || req.ReadOnly() || req.System() {
		return [][]byte{data}
	}
	// Per-destination offset: hash the address so each replica receives
	// a different stale timestamp (the equivocation), all of them at
	// least window+2 behind — below the dedup floor at any pipeline
	// depth the scenario runs.
	mask := crypto.DigestOf([]byte(to))
	off := t.window + 2 + uint64(mask[0]&3)
	if req.Timestamp <= off {
		return [][]byte{data}
	}
	staleReq := &wire.Request{
		ClientID:  req.ClientID,
		Timestamp: req.Timestamp - off,
		Flags:     req.Flags,
		Op:        req.Op,
	}
	t.stale.Add(1)
	variant := t.ident.Seal(&wire.Envelope{Type: wire.MTRequest, Payload: staleReq.Marshal()})
	return [][]byte{data, variant}
}
