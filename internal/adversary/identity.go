package adversary

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/wire"
)

// Identity holds the key material an adversarial replica needs to
// re-authenticate envelopes it has tampered with. Equivocation only
// works when every variant verifies: the attack is on consistency, not
// on the authenticator.
type Identity struct {
	// ID is the replica identity envelopes are sealed as.
	ID uint32

	useMACs bool
	kp      *crypto.KeyPair
	macKeys []crypto.SessionKey // pairwise keys indexed by peer id; zero at ID
}

// NewIdentity derives the pairwise MAC keys (when useMACs) for replica
// id against the group's public keys, mirroring how an honest replica
// seals group traffic.
func NewIdentity(id uint32, kp *crypto.KeyPair, peers []crypto.PublicKey, useMACs bool) (*Identity, error) {
	ident := &Identity{ID: id, useMACs: useMACs, kp: kp}
	if useMACs {
		ident.macKeys = make([]crypto.SessionKey, len(peers))
		for i, pub := range peers {
			if uint32(i) == id {
				continue
			}
			k, err := kp.SharedKey(pub)
			if err != nil {
				return nil, fmt.Errorf("adversary: pairwise key with replica %d: %w", i, err)
			}
			ident.macKeys[i] = k
		}
	}
	return ident, nil
}

// Seal authenticates env as this identity and returns the wire form:
// a full MAC authenticator in MAC mode, a signature otherwise.
func (id *Identity) Seal(env *wire.Envelope) []byte {
	env.Sender = id.ID
	if id.useMACs {
		env.Kind = wire.AuthMAC
		env.Auth = crypto.ComputeAuthenticator(id.macKeys, env.SignedBytes())
	} else {
		env.Kind = wire.AuthSig
		env.Sig = id.kp.Sign(env.SignedBytes())
	}
	return env.Marshal()
}
