package adversary

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// fixture is a 4-replica key universe with replica 0 as the adversary.
type fixture struct {
	kps   []*crypto.KeyPair
	pubs  []crypto.PublicKey
	ident *Identity
}

func newFixture(t *testing.T, useMACs bool) *fixture {
	t.Helper()
	const n = 4
	f := &fixture{kps: make([]*crypto.KeyPair, n), pubs: make([]crypto.PublicKey, n)}
	for i := range f.kps {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		f.kps[i] = kp
		f.pubs[i] = kp.Public()
	}
	ident, err := NewIdentity(0, f.kps[0], f.pubs, useMACs)
	if err != nil {
		t.Fatal(err)
	}
	f.ident = ident
	return f
}

// verifyAs checks an envelope the way receiver id would.
func (f *fixture) verifyAs(t *testing.T, id int, env *wire.Envelope) bool {
	t.Helper()
	switch env.Kind {
	case wire.AuthMAC:
		k, err := f.kps[id].SharedKey(f.pubs[env.Sender])
		if err != nil {
			t.Fatal(err)
		}
		return env.VerifyMACEntry(id, k)
	case wire.AuthSig:
		return env.VerifySig(f.pubs[env.Sender])
	default:
		return false
	}
}

func (f *fixture) sealPrePrepare(t *testing.T, seq uint64) []byte {
	t.Helper()
	pp := wire.PrePrepare{
		View:   0,
		Seq:    seq,
		NonDet: (&wire.NonDet{Time: 42}).Marshal(),
		Entries: []wire.BatchEntry{
			{Full: true, Req: wire.Request{ClientID: 4, Timestamp: 1, Op: []byte("op")}},
		},
	}
	return f.ident.Seal(&wire.Envelope{Type: wire.MTPrePrepare, Payload: pp.Marshal()})
}

func digestOf(t *testing.T, raw []byte) crypto.Digest {
	t.Helper()
	env, err := wire.UnmarshalEnvelope(raw)
	if err != nil {
		t.Fatalf("variant does not decode as an envelope: %v", err)
	}
	pp, err := wire.UnmarshalPrePrepare(env.Payload)
	if err != nil {
		t.Fatalf("variant does not decode as a pre-prepare: %v", err)
	}
	return pp.BatchDigest()
}

func TestEquivocatorDivergesPerDestination(t *testing.T) {
	for _, useMACs := range []bool{true, false} {
		f := newFixture(t, useMACs)
		eq := NewEquivocator(f.ident)
		orig := f.sealPrePrepare(t, 7)
		origDigest := digestOf(t, orig)

		toA := eq.Outgoing("a", orig)
		toB := eq.Outgoing("b", orig)
		if len(toA) != 2 || len(toB) != 2 {
			t.Fatalf("want 2 variants per destination, got %d and %d", len(toA), len(toB))
		}
		seen := map[crypto.Digest]bool{origDigest: true}
		for _, raw := range append(append([][]byte{}, toA...), toB...) {
			d := digestOf(t, raw)
			if seen[d] {
				t.Fatalf("digest %x repeated — variants must pairwise disagree", d[:4])
			}
			seen[d] = true

			env, err := wire.UnmarshalEnvelope(raw)
			if err != nil {
				t.Fatal(err)
			}
			if env.Sender != 0 {
				t.Fatalf("variant sender = %d, want the adversary's identity 0", env.Sender)
			}
			for id := 1; id <= 3; id++ {
				if !f.verifyAs(t, id, env) {
					t.Fatalf("receiver %d rejected an equivocated variant (useMACs=%v) — the attack must authenticate", id, useMACs)
				}
			}
			pp, err := wire.UnmarshalPrePrepare(env.Payload)
			if err != nil {
				t.Fatal(err)
			}
			nd, err := wire.UnmarshalNonDet(pp.NonDet)
			if err != nil {
				t.Fatalf("perturbed NonDet must stay decodable: %v", err)
			}
			if nd.Time != 42 {
				t.Fatalf("NonDet.Time = %d, want 42 preserved (validators check it)", nd.Time)
			}
			if pp.View != 0 || pp.Seq != 7 {
				t.Fatalf("slot moved: view=%d seq=%d", pp.View, pp.Seq)
			}
		}
		// Determinism: the same destination yields the same variants.
		again := eq.Outgoing("a", orig)
		if !bytes.Equal(again[0], toA[0]) || !bytes.Equal(again[1], toA[1]) {
			t.Fatal("equivocation schedule must be deterministic per destination")
		}
	}
}

func TestEquivocatorPassesThroughOtherTypes(t *testing.T) {
	f := newFixture(t, true)
	eq := NewEquivocator(f.ident)
	p := wire.Prepare{View: 0, Seq: 1, Digest: crypto.DigestOf([]byte("d")), Replica: 0}
	raw := f.ident.Seal(&wire.Envelope{Type: wire.MTPrepare, Payload: p.Marshal()})
	out := eq.Outgoing("a", raw)
	if len(out) != 1 || !bytes.Equal(out[0], raw) {
		t.Fatal("non-pre-prepare traffic must pass through untouched")
	}
}

func TestCorruptorBreaksAuthNotFraming(t *testing.T) {
	f := newFixture(t, true)
	c := NewCorruptor(1, 1, wire.MTPrepare)
	p := wire.Prepare{View: 0, Seq: 3, Digest: crypto.DigestOf([]byte("d")), Replica: 0}
	raw := f.ident.Seal(&wire.Envelope{Type: wire.MTPrepare, Payload: p.Marshal()})
	pristine := append([]byte(nil), raw...)

	out := c.Outgoing("a", raw)
	if len(out) != 1 {
		t.Fatalf("corruptor must emit exactly one frame, got %d", len(out))
	}
	if !bytes.Equal(raw, pristine) {
		t.Fatal("corruptor mutated the caller's buffer")
	}
	if bytes.Equal(out[0], raw) {
		t.Fatal("rate-1 corruptor left the frame intact")
	}
	env, err := wire.UnmarshalEnvelope(out[0])
	if err != nil {
		t.Fatalf("corrupt frame must keep valid framing, got %v", err)
	}
	if f.verifyAs(t, 1, env) {
		t.Fatal("corrupt frame still authenticates")
	}

	// Unselected types pass through untouched.
	ck := f.ident.Seal(&wire.Envelope{Type: wire.MTCommit, Payload: (&wire.Commit{View: 0, Seq: 3, Digest: crypto.DigestOf([]byte("d")), Replica: 0}).Marshal()})
	if out := c.Outgoing("a", ck); len(out) != 1 || !bytes.Equal(out[0], ck) {
		t.Fatal("commit should pass an MTPrepare-only corruptor untouched")
	}
}

func TestWithholderAndGateOnConn(t *testing.T) {
	f := newFixture(t, true)
	n := transport.NewNetwork(1)
	defer n.Close()
	raw0, err := n.Listen("r0")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := n.Listen("r1")
	if err != nil {
		t.Fatal(err)
	}
	gate := NewGate(NewWithholder(wire.MTPrepare))
	conn := Wrap(raw0, gate)

	prep := f.ident.Seal(&wire.Envelope{Type: wire.MTPrepare, Payload: (&wire.Prepare{View: 0, Seq: 1, Digest: crypto.DigestOf([]byte("d")), Replica: 0}).Marshal()})
	cmt := f.ident.Seal(&wire.Envelope{Type: wire.MTCommit, Payload: (&wire.Commit{View: 0, Seq: 1, Digest: crypto.DigestOf([]byte("d")), Replica: 0}).Marshal()})

	// Disarmed: everything flows.
	if err := conn.Send("r1", prep); err != nil {
		t.Fatal(err)
	}
	recvPacket(t, r1)

	// Armed: prepares vanish, commits flow.
	gate.Arm()
	if err := conn.Send("r1", prep); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send("r1", cmt); err != nil {
		t.Fatal(err)
	}
	got := recvPacket(t, r1)
	env, err := wire.UnmarshalEnvelope(got.Data)
	if err != nil || env.Type != wire.MTCommit {
		t.Fatalf("expected the commit to arrive (prepare withheld), got type %v err %v", env.Type, err)
	}
}

func TestChainComposes(t *testing.T) {
	double := BehaviorFunc(func(_ string, data []byte) [][]byte { return [][]byte{data, data} })
	var dropped int
	dropSecond := BehaviorFunc(func(_ string, data []byte) [][]byte {
		dropped++
		if dropped%2 == 0 {
			return nil
		}
		return [][]byte{data}
	})
	out := Chain(double, dropSecond).Outgoing("a", []byte("x"))
	if len(out) != 1 || string(out[0]) != "x" {
		t.Fatalf("chain output = %v, want one surviving frame", out)
	}
	suppress := BehaviorFunc(func(string, []byte) [][]byte { return nil })
	if out := Chain(double, suppress).Outgoing("a", []byte("y")); out != nil {
		t.Fatal("a suppressing stage must empty the chain")
	}
}

func TestReplayerCaptures(t *testing.T) {
	f := newFixture(t, false)
	r := NewReplayer(wire.MTViewChange)
	vc := f.ident.Seal(&wire.Envelope{Type: wire.MTViewChange, Payload: []byte("body")})
	other := f.ident.Seal(&wire.Envelope{Type: wire.MTCommit, Payload: (&wire.Commit{Replica: 0}).Marshal()})

	if out := r.Outgoing("a", vc); len(out) != 1 || !bytes.Equal(out[0], vc) {
		t.Fatal("replayer must pass traffic through")
	}
	r.Outgoing("b", other)
	caps := r.Captured()
	if len(caps) != 1 || !bytes.Equal(caps[0], vc) {
		t.Fatalf("captured %d frames, want just the view change", len(caps))
	}
	caps[0][0] ^= 0xFF
	if got := r.Captured(); !bytes.Equal(got[0], vc) {
		t.Fatal("Captured must return copies")
	}
}

func TestSlowlorisHelloThenGarbage(t *testing.T) {
	n := transport.NewNetwork(1)
	defer n.Close()
	atk, err := n.Listen("attacker")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := n.Listen("r0")
	if err != nil {
		t.Fatal(err)
	}
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := NewSlowloris(atk, 4, kp, []string{"r0"}, time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	sl.Start()
	defer sl.Stop()

	first := recvPacket(t, victim)
	env, err := wire.UnmarshalEnvelope(first.Data)
	if err != nil || env.Type != wire.MTSessionHello {
		t.Fatalf("first packet must be a session hello, got err %v", err)
	}
	if !env.VerifySig(kp.Public()) {
		t.Fatal("hello must carry a genuine signature")
	}
	var sawGarbage bool
	for i := 0; i < 8 && !sawGarbage; i++ {
		p := recvPacket(t, victim)
		if _, err := wire.UnmarshalEnvelope(p.Data); err != nil {
			sawGarbage = true
		}
	}
	if !sawGarbage {
		t.Fatal("trickle never produced undecodable bytes")
	}
}

func recvPacket(t *testing.T, c *transport.MemConn) transport.Packet {
	t.Helper()
	select {
	case p, ok := <-c.Recv():
		if !ok {
			t.Fatal("conn closed")
		}
		return p
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for a packet")
	}
	panic("unreachable")
}
