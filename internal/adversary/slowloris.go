package adversary

import (
	"math/rand"
	"time"

	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Slowloris is a resource-exhaustion client: it establishes a genuine
// MAC session with every replica (a validly signed hello from a real
// provisioned identity, consuming a MaxClientSessions slot) and then
// never issues a request — it just trickles undecodable bytes to keep
// the connection warm. Replicas count the trickle in DroppedMalformed
// and must evict the idle session by staleness; correct clients must
// keep completing calls while the slot is occupied.
type Slowloris struct {
	conn     transport.Conn
	targets  []string
	hello    []byte
	interval time.Duration
	rng      *rand.Rand

	stop chan struct{}
	done chan struct{}
}

// helloTicks is how many trickle intervals pass between hello
// retransmissions (the attacker re-pins its session slot the same way
// an honest client refreshes authenticators).
const helloTicks = 16

// NewSlowloris builds the attacker for a provisioned client identity.
// kp must be the client's real long-term key — the hello is honestly
// signed; only what follows is garbage. seed fixes the trickle bytes.
func NewSlowloris(conn transport.Conn, id uint32, kp *crypto.KeyPair, targets []string, interval time.Duration, seed int64) (*Slowloris, error) {
	eph, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		return nil, err
	}
	h := wire.SessionHello{
		ClientID: id,
		Addr:     conn.Addr(),
		PubKey:   crypto.MarshalPublicKey(crypto.PublicKey{Sign: kp.Public().Sign, DH: eph.Public().DH}),
	}
	env := &wire.Envelope{Type: wire.MTSessionHello, Sender: id, Payload: h.Marshal()}
	env.SealSig(kp)
	return &Slowloris{
		conn:     conn,
		targets:  append([]string(nil), targets...),
		hello:    env.Marshal(),
		interval: interval,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Start opens the session and begins the trickle in a background
// goroutine. Call Stop to end it.
func (s *Slowloris) Start() {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run()
}

// Stop halts the trickle and waits for the goroutine to exit. The
// session slot stays pinned replica-side until staleness eviction.
func (s *Slowloris) Stop() {
	close(s.stop)
	<-s.done
}

func (s *Slowloris) run() {
	defer close(s.done)
	s.sendAll(s.hello)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for tick := 1; ; tick++ {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		if tick%helloTicks == 0 {
			s.sendAll(s.hello)
			continue
		}
		// A short undecodable dribble: too small to be an envelope, so
		// ingress drops it as malformed at near-zero cost.
		junk := make([]byte, 1+s.rng.Intn(7))
		s.rng.Read(junk)
		s.sendAll(junk)
	}
}

func (s *Slowloris) sendAll(data []byte) {
	for _, to := range s.targets {
		_ = s.conn.Send(to, data)
	}
}
