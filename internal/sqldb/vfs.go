package sqldb

import (
	"crypto/rand"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File is the VFS file abstraction the engine reads and writes through.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Truncate resizes the file.
	Truncate(size int64) error
	// Sync forces the file's content to stable storage. Durability
	// hinges on it; a replicated VFS may treat it differently for the
	// database (memory-backed) and the journal (disk-backed).
	Sync() error
	// Size returns the current file size.
	Size() (int64, error)
	// Close releases the file.
	Close() error
}

// VFS abstracts the environment below the engine: file storage plus the
// non-deterministic services (time, randomness) that a replicated
// deployment must route through the agreement layer (§3.2, Fig. 3).
type VFS interface {
	// Open opens (creating if needed) the named file.
	Open(name string) (File, error)
	// Delete removes the named file (no error if absent).
	Delete(name string) error
	// Exists reports whether the named file exists.
	Exists(name string) (bool, error)
	// Now is the engine's clock (SQL now()).
	Now() time.Time
	// Rand fills p with randomness (SQL random()).
	Rand(p []byte) error
}

// DiskVFS is the ordinary single-node VFS: real files, real clock, real
// entropy. Root confines all files to one directory.
type DiskVFS struct {
	Root string
}

var _ VFS = (*DiskVFS)(nil)

// Open implements VFS.
func (v *DiskVFS) Open(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(v.Root, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &diskFile{f: f}, nil
}

// Delete implements VFS.
func (v *DiskVFS) Delete(name string) error {
	err := os.Remove(filepath.Join(v.Root, name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Exists implements VFS.
func (v *DiskVFS) Exists(name string) (bool, error) {
	_, err := os.Stat(filepath.Join(v.Root, name))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// Now implements VFS.
func (v *DiskVFS) Now() time.Time { return time.Now() }

// Rand implements VFS.
func (v *DiskVFS) Rand(p []byte) error {
	_, err := rand.Read(p)
	return err
}

type diskFile struct{ f *os.File }

func (d *diskFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := d.f.ReadAt(p, off)
	if err == io.EOF && n == len(p) {
		err = nil
	}
	return n, err
}
func (d *diskFile) WriteAt(p []byte, off int64) (int, error) { return d.f.WriteAt(p, off) }
func (d *diskFile) Truncate(size int64) error                { return d.f.Truncate(size) }
func (d *diskFile) Sync() error                              { return d.f.Sync() }
func (d *diskFile) Close() error                             { return d.f.Close() }
func (d *diskFile) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// MemVFS is an in-memory VFS for tests: deterministic time and randomness
// can be injected.
type MemVFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	// NowFunc overrides the clock (nil = real time).
	NowFunc func() time.Time
	// RandFunc overrides entropy (nil = crypto/rand).
	RandFunc func(p []byte) error
	// FailSyncAfter makes the N+1-th Sync fail (crash injection);
	// negative disables.
	FailSyncAfter int
	syncs         int
}

var _ VFS = (*MemVFS)(nil)

// NewMemVFS builds an empty in-memory VFS.
func NewMemVFS() *MemVFS {
	return &MemVFS{files: make(map[string]*memFile), FailSyncAfter: -1}
}

// Open implements VFS.
func (v *MemVFS) Open(name string) (File, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.files[name]
	if !ok {
		f = &memFile{vfs: v}
		v.files[name] = f
	}
	return f, nil
}

// Delete implements VFS.
func (v *MemVFS) Delete(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.files, name)
	return nil
}

// Exists implements VFS.
func (v *MemVFS) Exists(name string) (bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.files[name]
	return ok, nil
}

// Now implements VFS.
func (v *MemVFS) Now() time.Time {
	if v.NowFunc != nil {
		return v.NowFunc()
	}
	return time.Now()
}

// Rand implements VFS.
func (v *MemVFS) Rand(p []byte) error {
	if v.RandFunc != nil {
		return v.RandFunc(p)
	}
	_, err := rand.Read(p)
	return err
}

type memFile struct {
	vfs  *MemVFS
	data []byte
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	m.vfs.mu.Lock()
	defer m.vfs.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	m.vfs.mu.Lock()
	defer m.vfs.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(m.data)) {
		grown := make([]byte, need)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:], p)
	return len(p), nil
}

func (m *memFile) Truncate(size int64) error {
	m.vfs.mu.Lock()
	defer m.vfs.mu.Unlock()
	if size <= int64(len(m.data)) {
		m.data = m.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, m.data)
		m.data = grown
	}
	return nil
}

func (m *memFile) Sync() error {
	m.vfs.mu.Lock()
	defer m.vfs.mu.Unlock()
	m.vfs.syncs++
	if m.vfs.FailSyncAfter >= 0 && m.vfs.syncs > m.vfs.FailSyncAfter {
		return fmt.Errorf("sqldb: injected sync failure")
	}
	return nil
}

func (m *memFile) Size() (int64, error) {
	m.vfs.mu.Lock()
	defer m.vfs.mu.Unlock()
	return int64(len(m.data)), nil
}

func (m *memFile) Close() error { return nil }
