package sqldb

import (
	"errors"
	"fmt"
)

// PageSize is the engine's page granularity. It matches the default state
// region page size so one database page maps onto one replicated page.
const PageSize = 4096

// Magic numbers identifying database and journal files.
var (
	dbMagic      = [8]byte{'G', 'o', 'S', 'Q', 'L', 'd', 'b', '1'}
	journalMagic = [8]byte{'G', 'o', 'S', 'Q', 'L', 'j', 'n', '1'}
)

// ErrNoTransaction is returned by Commit/Rollback outside a transaction.
var ErrNoTransaction = errors.New("sqldb: no active transaction")

// ErrInTransaction is returned by Begin inside a transaction.
var ErrInTransaction = errors.New("sqldb: transaction already active")

// Header layout (page 1):
//
//	[0:8)   magic
//	[8:12)  format version
//	[12:16) page count
//	[16:20) freelist head (0 = empty)
//	[20:24) catalog root page
const (
	hdrVersionOff  = 8
	hdrPageCount   = 12
	hdrFreelist    = 16
	hdrCatalogRoot = 20
	formatVersion  = 1
)

// Pager provides transactional page access over a VFS file pair: the
// database file and its rollback journal (§3.2). With Durable set, every
// commit journals before-images and syncs journal-then-database, giving
// atomicity and durability across crashes; without it, commits write in
// place with no journal and no sync (the paper's no-ACID comparison
// point, §4.2).
type Pager struct {
	vfs     VFS
	name    string
	db      File
	durable bool

	pageCount uint32
	cache     map[uint32][]byte
	dirty     map[uint32]bool

	inTx      bool
	origCount uint32
	before    map[uint32][]byte // before-images of this tx
	journaled bool              // journal file written and synced

	// Stats for the benchmarks.
	Commits   uint64
	Rollbacks uint64
	Syncs     uint64
}

// OpenPager opens (creating or recovering as needed) the named database.
func OpenPager(vfs VFS, name string, durable bool) (*Pager, error) {
	return openPager(vfs, name, durable, false)
}

// OpenPagerReadOnly opens an existing database for reading: no
// hot-journal recovery, no initialization of an empty file — the pager
// never writes through the VFS. Concurrent readers (the replicated SQL
// layer's sharded SELECT path) must never touch the shared file: a
// leftover journal is the owning writer's to resolve, and replaying or
// initializing from a reader would mutate the replicated state outside
// commit order.
func OpenPagerReadOnly(vfs VFS, name string) (*Pager, error) {
	return openPager(vfs, name, false, true)
}

func openPager(vfs VFS, name string, durable, readOnly bool) (*Pager, error) {
	db, err := vfs.Open(name)
	if err != nil {
		return nil, fmt.Errorf("open database: %w", err)
	}
	p := &Pager{
		vfs:     vfs,
		name:    name,
		db:      db,
		durable: durable,
		cache:   make(map[uint32][]byte),
		dirty:   make(map[uint32]bool),
	}
	if !readOnly {
		if err := p.recover(); err != nil {
			_ = db.Close()
			return nil, err
		}
	}
	size, err := db.Size()
	if err != nil {
		_ = db.Close()
		return nil, err
	}
	if size == 0 {
		if readOnly {
			_ = db.Close()
			return nil, fmt.Errorf("sqldb: %q is empty (read-only open cannot initialize)", name)
		}
		if err := p.initialize(); err != nil {
			_ = db.Close()
			return nil, err
		}
		return p, nil
	}
	hdr, err := p.Get(1)
	if err != nil {
		_ = db.Close()
		return nil, err
	}
	if [8]byte(hdr[:8]) != dbMagic {
		_ = db.Close()
		return nil, fmt.Errorf("sqldb: %q is not a database file", name)
	}
	if v := getU32(hdr[hdrVersionOff:]); v != formatVersion {
		_ = db.Close()
		return nil, fmt.Errorf("sqldb: unsupported format version %d", v)
	}
	p.pageCount = getU32(hdr[hdrPageCount:])
	return p, nil
}

// journalName returns the rollback journal's file name.
func (p *Pager) journalName() string { return p.name + "-journal" }

// initialize lays out a fresh database: header page plus the empty
// catalog B+tree root.
func (p *Pager) initialize() error {
	hdr := make([]byte, PageSize)
	copy(hdr, dbMagic[:])
	putU32(hdr[hdrVersionOff:], formatVersion)
	putU32(hdr[hdrPageCount:], 2)
	putU32(hdr[hdrFreelist:], 0)
	putU32(hdr[hdrCatalogRoot:], 2)
	p.pageCount = 2
	p.cache[1] = hdr
	p.dirty[1] = true
	root := make([]byte, PageSize)
	initLeaf(root)
	p.cache[2] = root
	p.dirty[2] = true
	return p.flush()
}

// Reload drops the page cache and re-reads the header, picking up
// external changes to the underlying file (a PBFT state transfer or
// rollback rewrites the region under the engine). It must not be called
// inside a transaction.
func (p *Pager) Reload() error {
	if p.inTx {
		return ErrInTransaction
	}
	p.cache = make(map[uint32][]byte)
	p.dirty = make(map[uint32]bool)
	size, err := p.db.Size()
	if err != nil {
		return err
	}
	if size == 0 {
		return p.initialize()
	}
	hdr, err := p.Get(1)
	if err != nil {
		return err
	}
	if [8]byte(hdr[:8]) != dbMagic {
		return fmt.Errorf("sqldb: reload: not a database file")
	}
	p.pageCount = getU32(hdr[hdrPageCount:])
	return nil
}

// recover rolls back a hot journal left by a crash: restore the
// before-images, truncate to the original size, and delete the journal.
func (p *Pager) recover() error {
	exists, err := p.vfs.Exists(p.journalName())
	if err != nil {
		return err
	}
	if !exists {
		return nil
	}
	// A journal without a database (fresh region after a replica
	// restart, with a stale journal on disk) is meaningless: the state
	// it would restore no longer exists. Discard it; state transfer
	// rebuilds the database.
	if size, err := p.db.Size(); err != nil {
		return err
	} else if size == 0 {
		return p.vfs.Delete(p.journalName())
	}
	jf, err := p.vfs.Open(p.journalName())
	if err != nil {
		return err
	}
	defer jf.Close()
	size, err := jf.Size()
	if err != nil {
		return err
	}
	if size < 12 {
		// Truncated before the header completed: the database was
		// never touched.
		return p.vfs.Delete(p.journalName())
	}
	hdr := make([]byte, 12)
	if _, err := jf.ReadAt(hdr, 0); err != nil {
		return err
	}
	if [8]byte(hdr[:8]) != journalMagic {
		// Garbage journal: the database was never touched (we sync the
		// journal before writing the database).
		return p.vfs.Delete(p.journalName())
	}
	origCount := getU32(hdr[8:])
	const recSize = 4 + PageSize + 4
	n := (size - 12) / recSize
	rec := make([]byte, recSize)
	for i := int64(0); i < n; i++ {
		if _, err := jf.ReadAt(rec, 12+i*recSize); err != nil {
			return err
		}
		pgno := getU32(rec)
		data := rec[4 : 4+PageSize]
		if getU32(rec[4+PageSize:]) != journalChecksum(pgno, data) {
			break // torn tail: stop replaying
		}
		if _, err := p.db.WriteAt(data, int64(pgno-1)*PageSize); err != nil {
			return err
		}
	}
	if err := p.db.Truncate(int64(origCount) * PageSize); err != nil {
		return err
	}
	if err := p.db.Sync(); err != nil {
		return err
	}
	p.pageCount = origCount
	return p.vfs.Delete(p.journalName())
}

func journalChecksum(pgno uint32, data []byte) uint32 {
	sum := uint32(0x9E3779B9) ^ pgno
	for i := 0; i < len(data); i += 64 {
		sum = sum*31 + uint32(data[i])
	}
	return sum
}

// NumPages returns the database size in pages.
func (p *Pager) NumPages() uint32 { return p.pageCount }

// CatalogRoot returns the catalog B+tree's root page.
func (p *Pager) CatalogRoot() (uint32, error) {
	hdr, err := p.Get(1)
	if err != nil {
		return 0, err
	}
	return getU32(hdr[hdrCatalogRoot:]), nil
}

// Get returns the content of page pgno. The returned slice is the cache
// entry: callers must treat it as read-only and use Put to modify.
func (p *Pager) Get(pgno uint32) ([]byte, error) {
	if pgno == 0 {
		return nil, fmt.Errorf("sqldb: page 0 does not exist")
	}
	if data, ok := p.cache[pgno]; ok {
		return data, nil
	}
	data := make([]byte, PageSize)
	if _, err := p.db.ReadAt(data, int64(pgno-1)*PageSize); err != nil {
		return nil, fmt.Errorf("read page %d: %w", pgno, err)
	}
	p.cache[pgno] = data
	return data, nil
}

// Put replaces the content of page pgno, journaling the before-image if a
// transaction is active and the page predates it.
func (p *Pager) Put(pgno uint32, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("sqldb: page data of %d bytes", len(data))
	}
	if p.inTx && pgno <= p.origCount {
		if _, done := p.before[pgno]; !done {
			old, err := p.Get(pgno)
			if err != nil {
				return err
			}
			img := make([]byte, PageSize)
			copy(img, old)
			p.before[pgno] = img
		}
	}
	buf := make([]byte, PageSize)
	copy(buf, data)
	p.cache[pgno] = buf
	p.dirty[pgno] = true
	return nil
}

// Allocate returns a fresh (or recycled) page number.
func (p *Pager) Allocate() (uint32, error) {
	hdr, err := p.Get(1)
	if err != nil {
		return 0, err
	}
	if head := getU32(hdr[hdrFreelist:]); head != 0 {
		fp, err := p.Get(head)
		if err != nil {
			return 0, err
		}
		next := getU32(fp)
		newHdr := make([]byte, PageSize)
		copy(newHdr, hdr)
		putU32(newHdr[hdrFreelist:], next)
		if err := p.Put(1, newHdr); err != nil {
			return 0, err
		}
		zero := make([]byte, PageSize)
		if err := p.Put(head, zero); err != nil {
			return 0, err
		}
		return head, nil
	}
	pgno := p.pageCount + 1
	newHdr := make([]byte, PageSize)
	copy(newHdr, hdr)
	putU32(newHdr[hdrPageCount:], pgno)
	if err := p.Put(1, newHdr); err != nil {
		return 0, err
	}
	p.pageCount = pgno
	zero := make([]byte, PageSize)
	if err := p.Put(pgno, zero); err != nil {
		return 0, err
	}
	return pgno, nil
}

// Free returns a page to the freelist.
func (p *Pager) Free(pgno uint32) error {
	hdr, err := p.Get(1)
	if err != nil {
		return err
	}
	head := getU32(hdr[hdrFreelist:])
	fp := make([]byte, PageSize)
	putU32(fp, head)
	if err := p.Put(pgno, fp); err != nil {
		return err
	}
	newHdr := make([]byte, PageSize)
	copy(newHdr, hdr)
	putU32(newHdr[hdrFreelist:], pgno)
	return p.Put(1, newHdr)
}

// Begin opens a transaction.
func (p *Pager) Begin() error {
	if p.inTx {
		return ErrInTransaction
	}
	p.inTx = true
	p.origCount = p.pageCount
	p.before = make(map[uint32][]byte)
	p.journaled = false
	return nil
}

// InTransaction reports whether a transaction is active.
func (p *Pager) InTransaction() bool { return p.inTx }

// Commit makes the transaction's writes visible and, in durable mode,
// crash-safe: before-images are journaled and synced before the database
// is overwritten and synced (write-ahead discipline of the rollback
// journal, §3.2).
func (p *Pager) Commit() error {
	if !p.inTx {
		return ErrNoTransaction
	}
	if p.durable && len(p.before) > 0 {
		if err := p.writeJournal(); err != nil {
			p.abort()
			return err
		}
	}
	if err := p.flush(); err != nil {
		p.abort()
		return err
	}
	if p.durable {
		if err := p.db.Sync(); err != nil {
			p.abort()
			return err
		}
		p.Syncs++
		if p.journaled {
			if err := p.vfs.Delete(p.journalName()); err != nil {
				return err
			}
		}
	}
	p.inTx = false
	p.before = nil
	p.Commits++
	return nil
}

// writeJournal persists the before-images and syncs them.
func (p *Pager) writeJournal() error {
	jf, err := p.vfs.Open(p.journalName())
	if err != nil {
		return err
	}
	defer jf.Close()
	buf := make([]byte, 0, 12+len(p.before)*(8+PageSize))
	buf = append(buf, journalMagic[:]...)
	buf = appendU32(buf, p.origCount)
	for pgno, img := range p.before {
		buf = appendU32(buf, pgno)
		buf = append(buf, img...)
		buf = appendU32(buf, journalChecksum(pgno, img))
	}
	if err := jf.Truncate(0); err != nil {
		return err
	}
	if _, err := jf.WriteAt(buf, 0); err != nil {
		return err
	}
	if err := jf.Sync(); err != nil {
		return err
	}
	p.Syncs++
	p.journaled = true
	return nil
}

// flush writes dirty pages to the database file.
func (p *Pager) flush() error {
	for pgno := range p.dirty {
		data := p.cache[pgno]
		if _, err := p.db.WriteAt(data, int64(pgno-1)*PageSize); err != nil {
			return err
		}
	}
	p.dirty = make(map[uint32]bool)
	return nil
}

// Rollback undoes the transaction from the in-memory before-images.
func (p *Pager) Rollback() error {
	if !p.inTx {
		return ErrNoTransaction
	}
	p.abort()
	p.Rollbacks++
	return nil
}

// abort restores before-images and discards dirty state.
func (p *Pager) abort() {
	for pgno, img := range p.before {
		p.cache[pgno] = img
	}
	for pgno := range p.dirty {
		if _, hadBefore := p.before[pgno]; !hadBefore {
			// Page born in this tx (or never journaled): drop it.
			if pgno > p.origCount {
				delete(p.cache, pgno)
			}
		}
		delete(p.dirty, pgno)
	}
	// Write the restored images back so the file matches the cache.
	for pgno, img := range p.before {
		_, _ = p.db.WriteAt(img, int64(pgno-1)*PageSize)
	}
	if p.pageCount != p.origCount {
		_ = p.db.Truncate(int64(p.origCount) * PageSize)
		p.pageCount = p.origCount
	}
	if p.journaled {
		_ = p.vfs.Delete(p.journalName())
	}
	p.inTx = false
	p.before = nil
}

// Close flushes nothing (commits do) and releases the file. A transaction
// still open is rolled back.
func (p *Pager) Close() error {
	if p.inTx {
		_ = p.Rollback()
	}
	return p.db.Close()
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
