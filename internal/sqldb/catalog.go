package sqldb

import (
	"fmt"
	"strings"
)

// ColDef describes one column.
type ColDef struct {
	Name string
	Type Type
}

// TableMeta is one catalog entry: the table's schema, its B+tree root and
// the next rowid to assign.
type TableMeta struct {
	catRowID  int64
	Name      string
	Root      uint32
	NextRowID int64
	Cols      []ColDef
}

// ColIndex returns the position of the named column, or -1.
func (t *TableMeta) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// encodeMeta serializes a catalog entry as a row of values.
func encodeMeta(t *TableMeta) []byte {
	vals := []Value{
		Text(t.Name),
		Int(int64(t.Root)),
		Int(t.NextRowID),
		Int(int64(len(t.Cols))),
	}
	for _, c := range t.Cols {
		vals = append(vals, Text(c.Name), Int(int64(c.Type)))
	}
	return EncodeRow(vals)
}

// decodeMeta parses a catalog entry.
func decodeMeta(rowid int64, payload []byte) (*TableMeta, error) {
	vals, err := DecodeRow(payload)
	if err != nil {
		return nil, err
	}
	if len(vals) < 4 {
		return nil, fmt.Errorf("sqldb: corrupt catalog row")
	}
	t := &TableMeta{
		catRowID:  rowid,
		Name:      vals[0].AsText(),
		Root:      uint32(vals[1].AsInt()),
		NextRowID: vals[2].AsInt(),
	}
	ncols := int(vals[3].AsInt())
	if len(vals) != 4+2*ncols {
		return nil, fmt.Errorf("sqldb: corrupt catalog row arity")
	}
	for i := 0; i < ncols; i++ {
		t.Cols = append(t.Cols, ColDef{
			Name: vals[4+2*i].AsText(),
			Type: Type(vals[5+2*i].AsInt()),
		})
	}
	return t, nil
}

// catalog gives access to the table directory stored in the catalog
// B+tree (itself rooted at a fixed page recorded in the header).
type catalog struct {
	tree *BTree
}

func openCatalog(p *Pager) (*catalog, error) {
	root, err := p.CatalogRoot()
	if err != nil {
		return nil, err
	}
	return &catalog{tree: NewBTree(p, root)}, nil
}

// lookup returns the named table's metadata, or nil.
func (c *catalog) lookup(name string) (*TableMeta, error) {
	for cur := c.tree.First(); cur.Valid(); cur.Next() {
		t, err := decodeMeta(cur.RowID(), cur.Payload())
		if err != nil {
			return nil, err
		}
		if strings.EqualFold(t.Name, name) {
			return t, nil
		}
	}
	return nil, nil
}

// tables lists every table.
func (c *catalog) tables() ([]*TableMeta, error) {
	var out []*TableMeta
	for cur := c.tree.First(); cur.Valid(); cur.Next() {
		t, err := decodeMeta(cur.RowID(), cur.Payload())
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// create registers a new table (the caller checked for duplicates).
func (c *catalog) create(t *TableMeta) error {
	maxID := int64(0)
	for cur := c.tree.First(); cur.Valid(); cur.Next() {
		if cur.RowID() > maxID {
			maxID = cur.RowID()
		}
	}
	t.catRowID = maxID + 1
	return c.tree.Insert(t.catRowID, encodeMeta(t))
}

// update rewrites a table's catalog entry (root or next rowid changed).
func (c *catalog) update(t *TableMeta) error {
	return c.tree.Insert(t.catRowID, encodeMeta(t))
}

// drop removes a table's catalog entry.
func (c *catalog) drop(t *TableMeta) error {
	_, err := c.tree.Delete(t.catRowID)
	return err
}
