// Package sqldb is an embedded relational database engine with ACID
// semantics: the SQLite substitute of the paper's §3.2 state abstraction.
// It stores all data in a single database "file" accessed through a VFS
// layer (Fig. 3), uses a rollback journal for atomicity and durability,
// organizes rows in B+trees keyed by rowid, and exposes a SQL subset
// (CREATE/DROP TABLE, INSERT, SELECT, UPDATE, DELETE, BEGIN/COMMIT/
// ROLLBACK) sufficient for the paper's e-voting workload and well beyond.
//
// Mounted over the PBFT state region (package sqlstate), the VFS routes
// page writes through the region's modify notifications and sources time
// and randomness from the agreed non-determinism values, exactly the
// architecture of Fig. 3.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies a column or value type.
type Type uint8

// Value types. NULL is the zero value's type.
const (
	TNull Type = iota
	TInt
	TReal
	TText
	TBlob
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "INTEGER"
	case TReal:
		return "REAL"
	case TText:
		return "TEXT"
	case TBlob:
		return "BLOB"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is one dynamically typed SQL value.
type Value struct {
	T    Type
	I    int64
	F    float64
	S    string
	Blob []byte
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int builds an INTEGER value.
func Int(v int64) Value { return Value{T: TInt, I: v} }

// Real builds a REAL value.
func Real(v float64) Value { return Value{T: TReal, F: v} }

// Text builds a TEXT value.
func Text(s string) Value { return Value{T: TText, S: s} }

// Bytes builds a BLOB value.
func Bytes(b []byte) Value { return Value{T: TBlob, Blob: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.T == TNull }

// AsInt coerces the value to an integer (SQLite-style affinity).
func (v Value) AsInt() int64 {
	switch v.T {
	case TInt:
		return v.I
	case TReal:
		return int64(v.F)
	case TText:
		n, _ := strconv.ParseInt(v.S, 10, 64)
		return n
	default:
		return 0
	}
}

// AsReal coerces the value to a float.
func (v Value) AsReal() float64 {
	switch v.T {
	case TInt:
		return float64(v.I)
	case TReal:
		return v.F
	case TText:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	default:
		return 0
	}
}

// AsText renders the value as text.
func (v Value) AsText() string {
	switch v.T {
	case TNull:
		return ""
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TReal:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TText:
		return v.S
	case TBlob:
		return string(v.Blob)
	default:
		return ""
	}
}

// Truthy reports whether the value counts as true in a WHERE clause.
func (v Value) Truthy() bool {
	switch v.T {
	case TNull:
		return false
	case TInt:
		return v.I != 0
	case TReal:
		return v.F != 0
	case TText:
		return v.S != ""
	case TBlob:
		return len(v.Blob) > 0
	default:
		return false
	}
}

// Compare orders two values: NULL < numbers < text < blob, numbers by
// numeric value across INTEGER/REAL (SQLite's cross-type ordering).
func Compare(a, b Value) int {
	ra, rb := typeRank(a.T), typeRank(b.T)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // numeric
		fa, fb := a.AsReal(), b.AsReal()
		if a.T == TInt && b.T == TInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	case 2: // text
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	default: // blob
		sa, sb := string(a.Blob), string(b.Blob)
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		default:
			return 0
		}
	}
}

func typeRank(t Type) int {
	switch t {
	case TNull:
		return 0
	case TInt, TReal:
		return 1
	case TText:
		return 2
	default:
		return 3
	}
}

// Equal reports value equality under Compare semantics, with NULL never
// equal to anything (including NULL), per SQL.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// String renders the value for debugging.
func (v Value) String() string {
	switch v.T {
	case TNull:
		return "NULL"
	case TText:
		return strconv.Quote(v.S)
	case TBlob:
		return fmt.Sprintf("x'%x'", v.Blob)
	default:
		return v.AsText()
	}
}

// encodeValue appends the storage form of v.
func encodeValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.T))
	switch v.T {
	case TNull:
	case TInt:
		dst = appendU64(dst, uint64(v.I))
	case TReal:
		dst = appendU64(dst, math.Float64bits(v.F))
	case TText:
		dst = appendU32(dst, uint32(len(v.S)))
		dst = append(dst, v.S...)
	case TBlob:
		dst = appendU32(dst, uint32(len(v.Blob)))
		dst = append(dst, v.Blob...)
	}
	return dst
}

// decodeValue parses one value, returning it and the bytes consumed.
func decodeValue(b []byte) (Value, int, error) {
	if len(b) < 1 {
		return Value{}, 0, fmt.Errorf("sqldb: truncated value")
	}
	t := Type(b[0])
	switch t {
	case TNull:
		return Value{}, 1, nil
	case TInt:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("sqldb: truncated integer")
		}
		return Int(int64(getU64(b[1:]))), 9, nil
	case TReal:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("sqldb: truncated real")
		}
		return Real(math.Float64frombits(getU64(b[1:]))), 9, nil
	case TText, TBlob:
		if len(b) < 5 {
			return Value{}, 0, fmt.Errorf("sqldb: truncated string header")
		}
		n := int(getU32(b[1:]))
		if len(b) < 5+n {
			return Value{}, 0, fmt.Errorf("sqldb: truncated string body")
		}
		if t == TText {
			return Text(string(b[5 : 5+n])), 5 + n, nil
		}
		blob := make([]byte, n)
		copy(blob, b[5:5+n])
		return Bytes(blob), 5 + n, nil
	default:
		return Value{}, 0, fmt.Errorf("sqldb: unknown value type %d", t)
	}
}

// EncodeRow serializes a row of values.
func EncodeRow(vals []Value) []byte {
	out := appendU32(nil, uint32(len(vals)))
	for _, v := range vals {
		out = encodeValue(out, v)
	}
	return out
}

// DecodeRow parses a serialized row.
func DecodeRow(b []byte) ([]Value, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("sqldb: truncated row")
	}
	n := int(getU32(b))
	if n > len(b) {
		return nil, fmt.Errorf("sqldb: implausible row arity %d", n)
	}
	off := 4
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		v, sz, err := decodeValue(b[off:])
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		off += sz
	}
	return out, nil
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b))<<32 | uint64(getU32(b[4:]))
}
