package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSQLAgainstMapOracle drives random INSERT/UPDATE/DELETE/SELECT
// workloads through the SQL layer and mirrors them in a plain map,
// checking full-table agreement after every few steps. This exercises the
// whole stack — parser, executor, B+tree, pager — under workloads no
// hand-written test would produce.
func TestSQLAgainstMapOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 8}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		vfs := NewMemVFS()
		db, err := Open(vfs, "oracle.db", false)
		if err != nil {
			return false
		}
		defer db.Close()
		if _, err := db.Exec("CREATE TABLE o (k INTEGER, v TEXT)"); err != nil {
			return false
		}
		type row struct {
			k int64
			v string
		}
		oracle := make(map[int64]row) // rowid -> row
		nextRowid := int64(1)

		check := func() bool {
			rows, err := db.Query("SELECT rowid, k, v FROM o ORDER BY rowid")
			if err != nil {
				return false
			}
			if len(rows.Data) != len(oracle) {
				return false
			}
			for _, r := range rows.Data {
				want, ok := oracle[r[0].I]
				if !ok || want.k != r[1].I || want.v != r[2].S {
					return false
				}
			}
			return true
		}

		for step := 0; step < 120; step++ {
			switch rnd.Intn(10) {
			case 0, 1, 2, 3: // insert
				k := int64(rnd.Intn(50))
				v := fmt.Sprintf("v%d", rnd.Intn(1000))
				res, err := db.Exec("INSERT INTO o VALUES (?, ?)", Int(k), Text(v))
				if err != nil {
					return false
				}
				if res.LastInsertID != nextRowid {
					return false
				}
				oracle[nextRowid] = row{k, v}
				nextRowid++
			case 4, 5: // update by key
				k := int64(rnd.Intn(50))
				v := fmt.Sprintf("u%d", rnd.Intn(1000))
				res, err := db.Exec("UPDATE o SET v = ? WHERE k = ?", Text(v), Int(k))
				if err != nil {
					return false
				}
				n := int64(0)
				for id, r := range oracle {
					if r.k == k {
						oracle[id] = row{k, v}
						n++
					}
				}
				if res.RowsAffected != n {
					return false
				}
			case 6, 7: // delete by key range
				k := int64(rnd.Intn(50))
				res, err := db.Exec("DELETE FROM o WHERE k >= ? AND k < ?", Int(k), Int(k+5))
				if err != nil {
					return false
				}
				n := int64(0)
				for id, r := range oracle {
					if r.k >= k && r.k < k+5 {
						delete(oracle, id)
						n++
					}
				}
				if res.RowsAffected != n {
					return false
				}
			case 8: // point query by rowid
				if len(oracle) == 0 {
					continue
				}
				var anyID int64
				for id := range oracle {
					anyID = id
					break
				}
				rows, err := db.Query("SELECT v FROM o WHERE rowid = ?", Int(anyID))
				if err != nil || len(rows.Data) != 1 || rows.Data[0][0].S != oracle[anyID].v {
					return false
				}
			case 9: // aggregate cross-check
				rows, err := db.Query("SELECT count(*) FROM o")
				if err != nil || rows.Data[0][0].I != int64(len(oracle)) {
					return false
				}
			}
			if step%20 == 19 && !check() {
				return false
			}
		}
		return check()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSQLOracleWithTransactions layers BEGIN/COMMIT/ROLLBACK over the
// oracle: rolled-back steps must vanish from both worlds.
func TestSQLOracleWithTransactions(t *testing.T) {
	cfg := &quick.Config{MaxCount: 6}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		vfs := NewMemVFS()
		db, err := Open(vfs, "txo.db", true)
		if err != nil {
			return false
		}
		defer db.Close()
		if _, err := db.Exec("CREATE TABLE o (v INTEGER)"); err != nil {
			return false
		}
		committed := 0
		for round := 0; round < 15; round++ {
			if _, err := db.Exec("BEGIN"); err != nil {
				return false
			}
			added := 0
			for i := 0; i < rnd.Intn(5); i++ {
				if _, err := db.Exec("INSERT INTO o VALUES (1)"); err != nil {
					return false
				}
				added++
			}
			if rnd.Intn(2) == 0 {
				if _, err := db.Exec("COMMIT"); err != nil {
					return false
				}
				committed += added
			} else {
				if _, err := db.Exec("ROLLBACK"); err != nil {
					return false
				}
			}
			rows, err := db.Query("SELECT count(*) FROM o")
			if err != nil || rows.Data[0][0].I != int64(committed) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
