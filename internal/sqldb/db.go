package sqldb

import (
	"fmt"
)

// DB is one open database: a pager over the VFS plus the SQL layer.
// Statements run in autocommit mode unless BEGIN opened an explicit
// transaction. A DB is not safe for concurrent use (the replicated
// deployment serializes everything through the replica's event loop,
// like SQLite's single-writer model).
type DB struct {
	vfs   VFS
	pager *Pager
}

// Open opens (creating or crash-recovering) the named database on the
// VFS. durable selects rollback-journal ACID mode (§3.2); without it
// commits neither journal nor sync — the paper's no-ACID comparison
// (§4.2).
func Open(vfs VFS, name string, durable bool) (*DB, error) {
	pager, err := OpenPager(vfs, name, durable)
	if err != nil {
		return nil, err
	}
	return &DB{vfs: vfs, pager: pager}, nil
}

// OpenReadOnly opens an existing database for queries only: no journal
// recovery, no durability — the file is never written through this
// handle. Used by concurrent readers over a file another pager owns.
func OpenReadOnly(vfs VFS, name string) (*DB, error) {
	pager, err := OpenPagerReadOnly(vfs, name)
	if err != nil {
		return nil, err
	}
	return &DB{vfs: vfs, pager: pager}, nil
}

// Close releases the database (rolling back any open transaction).
func (d *DB) Close() error { return d.pager.Close() }

// Pager exposes the pager for statistics (commits, syncs).
func (d *DB) Pager() *Pager { return d.pager }

// Exec parses and runs one statement that returns no rows.
func (d *DB) Exec(sql string, args ...Value) (Result, error) {
	st, nparams, err := Parse(sql)
	if err != nil {
		return Result{}, err
	}
	if nparams > len(args) {
		return Result{}, fmt.Errorf("sqldb: statement needs %d arguments, got %d", nparams, len(args))
	}
	switch x := st.(type) {
	case *BeginStmt:
		return Result{}, d.pager.Begin()
	case *CommitStmt:
		return Result{}, d.pager.Commit()
	case *RollbackStmt:
		return Result{}, d.pager.Rollback()
	case *SelectStmt:
		return Result{}, fmt.Errorf("sqldb: use Query for SELECT")
	default:
		return d.execMutation(x, args)
	}
}

// execMutation wraps a write statement in an autocommit transaction when
// none is open.
func (d *DB) execMutation(st Stmt, args []Value) (Result, error) {
	auto := !d.pager.InTransaction()
	if auto {
		if err := d.pager.Begin(); err != nil {
			return Result{}, err
		}
	}
	res, err := d.runMutation(st, args)
	if err != nil {
		if auto {
			_ = d.pager.Rollback()
		}
		return Result{}, err
	}
	if auto {
		if err := d.pager.Commit(); err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

func (d *DB) runMutation(st Stmt, args []Value) (Result, error) {
	switch x := st.(type) {
	case *CreateTableStmt:
		return d.execCreate(x)
	case *DropTableStmt:
		return d.execDrop(x)
	case *InsertStmt:
		return d.execInsert(x, args)
	case *UpdateStmt:
		return d.execUpdate(x, args)
	case *DeleteStmt:
		return d.execDelete(x, args)
	default:
		return Result{}, fmt.Errorf("sqldb: unsupported statement %T", st)
	}
}

// Query parses and runs a SELECT, returning the materialized rows.
func (d *DB) Query(sql string, args ...Value) (*Rows, error) {
	st, nparams, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if nparams > len(args) {
		return nil, fmt.Errorf("sqldb: statement needs %d arguments, got %d", nparams, len(args))
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT (got %T)", st)
	}
	return d.execSelect(sel, args)
}

// Tables lists the table names (for tools and tests).
func (d *DB) Tables() ([]string, error) {
	cat, err := openCatalog(d.pager)
	if err != nil {
		return nil, err
	}
	metas, err := cat.tables()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(metas))
	for _, m := range metas {
		names = append(names, m.Name)
	}
	return names, nil
}
