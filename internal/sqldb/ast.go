package sqldb

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (col type, ...).
type CreateTableStmt struct {
	Name        string
	Cols        []ColDef
	IfNotExists bool
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// SelectItem is one projection: an expression with an optional alias, or
// the star.
type SelectItem struct {
	Star bool
	Expr Expr
	As   string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is SELECT items [FROM t] [WHERE e] [ORDER BY ...] [LIMIT n].
type SelectStmt struct {
	Items   []SelectItem
	Table   string // empty for table-less SELECT (e.g. SELECT 1+1)
	Where   Expr
	OrderBy []OrderItem
	Limit   Expr // nil = no limit
}

// UpdateStmt is UPDATE t SET c=e, ... [WHERE e].
type UpdateStmt struct {
	Table string
	Sets  []Assign
	Where Expr
}

// Assign is one SET clause.
type Assign struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM t [WHERE e].
type DeleteStmt struct {
	Table string
	Where Expr
}

// BeginStmt, CommitStmt and RollbackStmt control transactions.
type (
	BeginStmt    struct{}
	CommitStmt   struct{}
	RollbackStmt struct{}
)

func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}

// Expr is an expression tree node.
type Expr interface{ expr() }

// LiteralExpr is a constant.
type LiteralExpr struct{ Val Value }

// ColumnExpr references a column (or "rowid").
type ColumnExpr struct{ Name string }

// ParamExpr is a ? placeholder, filled from the statement arguments.
type ParamExpr struct{ Index int }

// UnaryExpr is NOT e or -e.
type UnaryExpr struct {
	Op string
	E  Expr
}

// BinaryExpr is l op r (comparisons, AND/OR, arithmetic).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// CallExpr is a function call: now(), random(), and the aggregates
// count(*), count(e), sum(e), min(e), max(e), avg(e).
type CallExpr struct {
	Name string
	Star bool
	Args []Expr
}

func (*LiteralExpr) expr() {}
func (*ColumnExpr) expr()  {}
func (*ParamExpr) expr()   {}
func (*UnaryExpr) expr()   {}
func (*BinaryExpr) expr()  {}
func (*CallExpr) expr()    {}
