package sqldb

import (
	"fmt"
	"sort"
)

// B+tree page layout.
//
// Leaf:     [0]=pageLeaf  [1:3)=ncells [3:7)=next-leaf  cells...
//
//	cell: rowid i64, payload-len u16, payload
//
// Interior: [0]=pageInt   [1:3)=ncells [3:7)=rightmost  cells...
//
//	cell: key i64 (max rowid of child's subtree), child u32
//
// Rowids are unique and assigned in increasing order by the table layer,
// so inserts cluster on the right edge. Deletes are lazy (no rebalancing;
// pages may underflow but the leaf chain stays intact), a documented
// simplification shared with many embedded engines' early versions.
const (
	pageLeaf     = 1
	pageInterior = 2
	pageHdrSize  = 7
	leafCellOvh  = 10 // rowid + length
	intCellSize  = 12
	// MaxPayload bounds one row's encoded size so any cell fits a page.
	MaxPayload = PageSize - pageHdrSize - leafCellOvh
)

type leafCell struct {
	rowid   int64
	payload []byte
}

type intCell struct {
	key   int64
	child uint32
}

func initLeaf(data []byte) {
	data[0] = pageLeaf
}

func decodeLeaf(data []byte) (cells []leafCell, next uint32, err error) {
	if data[0] != pageLeaf {
		return nil, 0, fmt.Errorf("sqldb: page is not a leaf (type %d)", data[0])
	}
	n := int(data[1])<<8 | int(data[2])
	next = getU32(data[3:])
	off := pageHdrSize
	cells = make([]leafCell, 0, n)
	for i := 0; i < n; i++ {
		if off+leafCellOvh > len(data) {
			return nil, 0, fmt.Errorf("sqldb: corrupt leaf page")
		}
		rowid := int64(getU64(data[off:]))
		plen := int(data[off+8])<<8 | int(data[off+9])
		off += leafCellOvh
		if off+plen > len(data) {
			return nil, 0, fmt.Errorf("sqldb: corrupt leaf cell")
		}
		payload := make([]byte, plen)
		copy(payload, data[off:off+plen])
		off += plen
		cells = append(cells, leafCell{rowid: rowid, payload: payload})
	}
	return cells, next, nil
}

func leafSize(cells []leafCell) int {
	size := pageHdrSize
	for _, c := range cells {
		size += leafCellOvh + len(c.payload)
	}
	return size
}

func encodeLeaf(cells []leafCell, next uint32) ([]byte, bool) {
	if leafSize(cells) > PageSize {
		return nil, false
	}
	data := make([]byte, PageSize)
	data[0] = pageLeaf
	data[1], data[2] = byte(len(cells)>>8), byte(len(cells))
	putU32(data[3:], next)
	off := pageHdrSize
	for _, c := range cells {
		putU64(data[off:], uint64(c.rowid))
		data[off+8], data[off+9] = byte(len(c.payload)>>8), byte(len(c.payload))
		off += leafCellOvh
		copy(data[off:], c.payload)
		off += len(c.payload)
	}
	return data, true
}

func decodeInterior(data []byte) (cells []intCell, right uint32, err error) {
	if data[0] != pageInterior {
		return nil, 0, fmt.Errorf("sqldb: page is not interior (type %d)", data[0])
	}
	n := int(data[1])<<8 | int(data[2])
	right = getU32(data[3:])
	off := pageHdrSize
	cells = make([]intCell, 0, n)
	for i := 0; i < n; i++ {
		if off+intCellSize > len(data) {
			return nil, 0, fmt.Errorf("sqldb: corrupt interior page")
		}
		cells = append(cells, intCell{
			key:   int64(getU64(data[off:])),
			child: getU32(data[off+8:]),
		})
		off += intCellSize
	}
	return cells, right, nil
}

func encodeInterior(cells []intCell, right uint32) ([]byte, bool) {
	if pageHdrSize+len(cells)*intCellSize > PageSize {
		return nil, false
	}
	data := make([]byte, PageSize)
	data[0] = pageInterior
	data[1], data[2] = byte(len(cells)>>8), byte(len(cells))
	putU32(data[3:], right)
	off := pageHdrSize
	for _, c := range cells {
		putU64(data[off:], uint64(c.key))
		putU32(data[off+8:], c.child)
		off += intCellSize
	}
	return data, true
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v>>32))
	putU32(b[4:], uint32(v))
}

// BTree is a rowid-keyed B+tree rooted at a fixed page (the root page
// number never changes; root splits copy downward).
type BTree struct {
	pager *Pager
	root  uint32
}

// NewBTree opens the tree rooted at page root.
func NewBTree(pager *Pager, root uint32) *BTree {
	return &BTree{pager: pager, root: root}
}

// CreateBTree allocates an empty tree and returns it.
func CreateBTree(pager *Pager) (*BTree, error) {
	pgno, err := pager.Allocate()
	if err != nil {
		return nil, err
	}
	data := make([]byte, PageSize)
	initLeaf(data)
	if err := pager.Put(pgno, data); err != nil {
		return nil, err
	}
	return &BTree{pager: pager, root: pgno}, nil
}

// Root returns the root page number.
func (t *BTree) Root() uint32 { return t.root }

// Get returns the payload stored under rowid.
func (t *BTree) Get(rowid int64) ([]byte, bool, error) {
	pgno := t.root
	for {
		data, err := t.pager.Get(pgno)
		if err != nil {
			return nil, false, err
		}
		switch data[0] {
		case pageLeaf:
			cells, _, err := decodeLeaf(data)
			if err != nil {
				return nil, false, err
			}
			i := sort.Search(len(cells), func(i int) bool { return cells[i].rowid >= rowid })
			if i < len(cells) && cells[i].rowid == rowid {
				return cells[i].payload, true, nil
			}
			return nil, false, nil
		case pageInterior:
			cells, right, err := decodeInterior(data)
			if err != nil {
				return nil, false, err
			}
			pgno = childFor(cells, right, rowid)
		default:
			return nil, false, fmt.Errorf("sqldb: corrupt page %d", pgno)
		}
	}
}

// childFor picks the child covering rowid.
func childFor(cells []intCell, right uint32, rowid int64) uint32 {
	i := sort.Search(len(cells), func(i int) bool { return rowid <= cells[i].key })
	if i < len(cells) {
		return cells[i].child
	}
	return right
}

// Insert stores payload under rowid, replacing any previous payload.
func (t *BTree) Insert(rowid int64, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("sqldb: row of %d bytes exceeds the %d-byte limit", len(payload), MaxPayload)
	}
	split, sep, newRight, err := t.insertInto(t.root, rowid, payload)
	if err != nil {
		return err
	}
	if !split {
		return nil
	}
	// Root split with a fixed root page: move the (already split) left
	// half into a fresh page and turn the root into an interior node.
	leftPg, err := t.pager.Allocate()
	if err != nil {
		return err
	}
	rootData, err := t.pager.Get(t.root)
	if err != nil {
		return err
	}
	leftCopy := make([]byte, PageSize)
	copy(leftCopy, rootData)
	if err := t.pager.Put(leftPg, leftCopy); err != nil {
		return err
	}
	newRoot, _ := encodeInterior([]intCell{{key: sep, child: leftPg}}, newRight)
	return t.pager.Put(t.root, newRoot)
}

// insertInto descends; on split it returns the separator key (max key of
// the left node) and the new right sibling.
func (t *BTree) insertInto(pgno uint32, rowid int64, payload []byte) (bool, int64, uint32, error) {
	data, err := t.pager.Get(pgno)
	if err != nil {
		return false, 0, 0, err
	}
	switch data[0] {
	case pageLeaf:
		cells, next, err := decodeLeaf(data)
		if err != nil {
			return false, 0, 0, err
		}
		i := sort.Search(len(cells), func(i int) bool { return cells[i].rowid >= rowid })
		if i < len(cells) && cells[i].rowid == rowid {
			cells[i].payload = payload
		} else {
			cells = append(cells, leafCell{})
			copy(cells[i+1:], cells[i:])
			cells[i] = leafCell{rowid: rowid, payload: payload}
		}
		if enc, ok := encodeLeaf(cells, next); ok {
			return false, 0, 0, t.pager.Put(pgno, enc)
		}
		// Split: left keeps the lower half (by bytes).
		mid := splitPointLeaf(cells)
		rightPg, err := t.pager.Allocate()
		if err != nil {
			return false, 0, 0, err
		}
		leftEnc, ok := encodeLeaf(cells[:mid], rightPg)
		if !ok {
			return false, 0, 0, fmt.Errorf("sqldb: leaf split left overflow")
		}
		rightEnc, ok := encodeLeaf(cells[mid:], next)
		if !ok {
			return false, 0, 0, fmt.Errorf("sqldb: leaf split right overflow")
		}
		if err := t.pager.Put(pgno, leftEnc); err != nil {
			return false, 0, 0, err
		}
		if err := t.pager.Put(rightPg, rightEnc); err != nil {
			return false, 0, 0, err
		}
		return true, cells[mid-1].rowid, rightPg, nil
	case pageInterior:
		cells, right, err := decodeInterior(data)
		if err != nil {
			return false, 0, 0, err
		}
		ci := sort.Search(len(cells), func(i int) bool { return rowid <= cells[i].key })
		var childPg uint32
		if ci < len(cells) {
			childPg = cells[ci].child
		} else {
			childPg = right
		}
		split, sep, newRight, err := t.insertInto(childPg, rowid, payload)
		if err != nil || !split {
			return false, 0, 0, err
		}
		// The child split into (childPg: keys <= sep) and newRight.
		if ci < len(cells) {
			cells = append(cells, intCell{})
			copy(cells[ci+1:], cells[ci:])
			cells[ci] = intCell{key: sep, child: childPg}
			cells[ci+1].child = newRight
		} else {
			cells = append(cells, intCell{key: sep, child: childPg})
			right = newRight
		}
		if enc, ok := encodeInterior(cells, right); ok {
			return false, 0, 0, t.pager.Put(pgno, enc)
		}
		// Split the interior node: promote the middle key.
		mid := len(cells) / 2
		promote := cells[mid].key
		leftCells := append([]intCell(nil), cells[:mid]...)
		leftRight := cells[mid].child
		rightCells := append([]intCell(nil), cells[mid+1:]...)
		rightPg, err := t.pager.Allocate()
		if err != nil {
			return false, 0, 0, err
		}
		leftEnc, ok := encodeInterior(leftCells, leftRight)
		if !ok {
			return false, 0, 0, fmt.Errorf("sqldb: interior split left overflow")
		}
		rightEnc, ok := encodeInterior(rightCells, right)
		if !ok {
			return false, 0, 0, fmt.Errorf("sqldb: interior split right overflow")
		}
		if err := t.pager.Put(pgno, leftEnc); err != nil {
			return false, 0, 0, err
		}
		if err := t.pager.Put(rightPg, rightEnc); err != nil {
			return false, 0, 0, err
		}
		return true, promote, rightPg, nil
	default:
		return false, 0, 0, fmt.Errorf("sqldb: corrupt page %d", pgno)
	}
}

// splitPointLeaf picks the split index balancing bytes.
func splitPointLeaf(cells []leafCell) int {
	total := leafSize(cells)
	acc := pageHdrSize
	for i, c := range cells {
		acc += leafCellOvh + len(c.payload)
		if acc >= total/2 && i+1 < len(cells) {
			return i + 1
		}
	}
	return len(cells) - 1
}

// Delete removes rowid; it reports whether the row existed. Underflowing
// pages are left in place (lazy deletion).
func (t *BTree) Delete(rowid int64) (bool, error) {
	pgno := t.root
	for {
		data, err := t.pager.Get(pgno)
		if err != nil {
			return false, err
		}
		switch data[0] {
		case pageLeaf:
			cells, next, err := decodeLeaf(data)
			if err != nil {
				return false, err
			}
			i := sort.Search(len(cells), func(i int) bool { return cells[i].rowid >= rowid })
			if i >= len(cells) || cells[i].rowid != rowid {
				return false, nil
			}
			cells = append(cells[:i], cells[i+1:]...)
			enc, _ := encodeLeaf(cells, next)
			return true, t.pager.Put(pgno, enc)
		case pageInterior:
			cells, right, err := decodeInterior(data)
			if err != nil {
				return false, err
			}
			pgno = childFor(cells, right, rowid)
		default:
			return false, fmt.Errorf("sqldb: corrupt page %d", pgno)
		}
	}
}

// Cursor iterates leaf cells in rowid order.
type Cursor struct {
	tree  *BTree
	cells []leafCell
	next  uint32
	idx   int
	err   error
	valid bool
}

// First positions a cursor at the smallest rowid.
func (t *BTree) First() *Cursor {
	return t.SeekGE(-1 << 62)
}

// SeekGE positions a cursor at the smallest rowid >= target.
func (t *BTree) SeekGE(target int64) *Cursor {
	c := &Cursor{tree: t}
	pgno := t.root
	for {
		data, err := t.pager.Get(pgno)
		if err != nil {
			c.err = err
			return c
		}
		switch data[0] {
		case pageLeaf:
			cells, next, err := decodeLeaf(data)
			if err != nil {
				c.err = err
				return c
			}
			c.cells, c.next = cells, next
			c.idx = sort.Search(len(cells), func(i int) bool { return cells[i].rowid >= target })
			c.valid = true
			c.skipEmpty()
			return c
		case pageInterior:
			cells, right, err := decodeInterior(data)
			if err != nil {
				c.err = err
				return c
			}
			pgno = childFor(cells, right, target)
		default:
			c.err = fmt.Errorf("sqldb: corrupt page %d", pgno)
			return c
		}
	}
}

// skipEmpty advances across exhausted leaves.
func (c *Cursor) skipEmpty() {
	for c.valid && c.idx >= len(c.cells) {
		if c.next == 0 {
			c.valid = false
			return
		}
		data, err := c.tree.pager.Get(c.next)
		if err != nil {
			c.err = err
			c.valid = false
			return
		}
		cells, next, err := decodeLeaf(data)
		if err != nil {
			c.err = err
			c.valid = false
			return
		}
		c.cells, c.next, c.idx = cells, next, 0
	}
}

// Valid reports whether the cursor is on a row.
func (c *Cursor) Valid() bool { return c.valid && c.err == nil }

// Err returns the cursor's error, if any.
func (c *Cursor) Err() error { return c.err }

// RowID returns the current row's id.
func (c *Cursor) RowID() int64 { return c.cells[c.idx].rowid }

// Payload returns the current row's payload.
func (c *Cursor) Payload() []byte { return c.cells[c.idx].payload }

// Next advances the cursor.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	c.idx++
	c.skipEmpty()
}
