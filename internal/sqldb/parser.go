package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks   []token
	pos    int
	params int
}

// Parse parses a single SQL statement. It returns the statement and the
// number of ? placeholders it contains.
func Parse(src string) (Stmt, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, 0, err
	}
	// Optional trailing semicolon.
	p.acceptOp(";")
	if p.cur().kind != tkEOF {
		return nil, 0, fmt.Errorf("sqldb: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return st, p.params, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tkKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sqldb: expected %s at %d, got %q", kw, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tkOp && p.cur().text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sqldb: expected %q at %d, got %q", op, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tkIdent {
		return "", fmt.Errorf("sqldb: expected identifier at %d, got %q", p.cur().pos, p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.cur()
	if t.kind != tkKeyword {
		return nil, fmt.Errorf("sqldb: expected statement at %d, got %q", t.pos, t.text)
	}
	switch t.text {
	case "CREATE":
		return p.createTable()
	case "DROP":
		return p.dropTable()
	case "INSERT":
		return p.insert()
	case "SELECT":
		return p.selectStmt()
	case "UPDATE":
		return p.update()
	case "DELETE":
		return p.deleteStmt()
	case "BEGIN":
		p.pos++
		p.acceptKw("TRANSACTION")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.pos++
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.pos++
		return &RollbackStmt{}, nil
	default:
		return nil, fmt.Errorf("sqldb: unsupported statement %q", t.text)
	}
}

func (p *parser) createTable() (Stmt, error) {
	p.pos++ // CREATE
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ := TText
		if p.cur().kind == tkKeyword {
			switch p.cur().text {
			case "INTEGER", "INT":
				typ = TInt
				p.pos++
			case "REAL":
				typ = TReal
				p.pos++
			case "TEXT":
				typ = TText
				p.pos++
			case "BLOB":
				typ = TBlob
				p.pos++
			}
		}
		// Tolerate PRIMARY KEY on one column (rowid aliasing is not
		// implemented; the clause is accepted and ignored).
		if p.acceptKw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
		}
		st.Cols = append(st.Cols, ColDef{Name: col, Type: typ})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) dropTable() (Stmt, error) {
	p.pos++ // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	st := &DropTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) insert() (Stmt, error) {
	p.pos++ // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	st := &InsertStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	p.pos++ // SELECT
	st := &SelectStmt{}
	for {
		if p.acceptOp("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKw("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.As = alias
			}
			st.Items = append(st.Items, item)
		}
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Table = name
	}
	if p.acceptKw("WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Limit = e
	}
	return st, nil
}

func (p *parser) update() (Stmt, error) {
	p.pos++ // UPDATE
	st := &UpdateStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, Assign{Col: col, Expr: e})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	p.pos++ // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	st := &DeleteStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptKw("WHERE") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// Expression grammar (precedence climbing):
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add ((=|!=|<|<=|>|>=) add)?
//	add  := mul ((+|-) mul)*
//	mul  := unary ((*|/) unary)*
//	unary:= - unary | primary
//	prim := literal | ? | name | name(args) | ( or )
func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.acceptOp(op) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tkInt:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqldb: bad integer %q", t.text)
		}
		return &LiteralExpr{Val: Int(v)}, nil
	case tkFloat:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sqldb: bad number %q", t.text)
		}
		return &LiteralExpr{Val: Real(v)}, nil
	case tkString:
		p.pos++
		return &LiteralExpr{Val: Text(t.text)}, nil
	case tkParam:
		p.pos++
		idx := p.params
		p.params++
		return &ParamExpr{Index: idx}, nil
	case tkKeyword:
		if t.text == "NULL" {
			p.pos++
			return &LiteralExpr{Val: Null()}, nil
		}
		return nil, fmt.Errorf("sqldb: unexpected keyword %q in expression", t.text)
	case tkIdent:
		p.pos++
		if p.acceptOp("(") {
			call := &CallExpr{Name: strings.ToLower(t.text)}
			if p.acceptOp("*") {
				call.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptOp(")") {
				return call, nil
			}
			for {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &ColumnExpr{Name: t.text}, nil
	case tkOp:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sqldb: unexpected token %q at %d", t.text, t.pos)
}
