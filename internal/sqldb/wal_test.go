package sqldb

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// walWrite writes p at off and fails the test on error.
func walWrite(t *testing.T, f File, p []byte, off int64) {
	t.Helper()
	if _, err := f.WriteAt(p, off); err != nil {
		t.Fatalf("WriteAt(%d): %v", off, err)
	}
}

// walReadAll reads the file's full logical content.
func walReadAll(t *testing.T, f File) []byte {
	t.Helper()
	size, err := f.Size()
	if err != nil {
		t.Fatalf("Size: %v", err)
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf
	}
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt: %v", err)
	}
	return buf
}

func TestWALBasicReadWrite(t *testing.T) {
	v := NewWALVFS(t.TempDir())
	f, err := v.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Unaligned write straddling sectors.
	payload := bytes.Repeat([]byte("abcdefgh"), 200) // 1600 bytes
	walWrite(t, f, payload, 300)
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 300); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch before commit")
	}
	// Zero-fill below the write.
	head := make([]byte, 300)
	if _, err := f.ReadAt(head, 0); err != nil {
		t.Fatalf("ReadAt head: %v", err)
	}
	if !bytes.Equal(head, make([]byte, 300)) {
		t.Fatal("expected zero fill before first write")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st := v.Stats(); st.Fsyncs != 1 || st.Bytes == 0 {
		t.Fatalf("stats after one commit: %+v", st)
	}
}

func TestWALDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	v := NewWALVFS(dir)
	f, err := v.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	walWrite(t, f, []byte("committed"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	walWrite(t, f, []byte("NEVER-SYNCED"), 4096)
	f.Close() // crash: uncommitted write must vanish

	f2, err := v.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	size, _ := f2.Size()
	if size != 9 {
		t.Fatalf("recovered size = %d, want 9 (uncommitted write must not survive)", size)
	}
	buf := make([]byte, 9)
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "committed" {
		t.Fatalf("recovered content %q", buf)
	}
}

func TestWALCheckpointFoldback(t *testing.T) {
	dir := t.TempDir()
	v := NewWALVFS(dir)
	v.CheckpointBytes = 4 * walDataRecSize // fold back quickly
	f, err := v.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte{0xAB}, 5*walSectorSize)
	walWrite(t, f, content, 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.Checkpoints != 1 {
		t.Fatalf("expected a fold-back checkpoint, stats %+v", st)
	}
	// After fold-back the base file holds everything and the WAL is empty.
	base, err := os.ReadFile(filepath.Join(dir, "db"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, content) {
		t.Fatal("base file does not match folded content")
	}
	wal, err := os.ReadFile(filepath.Join(dir, "db.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 0 {
		t.Fatalf("WAL not reset after checkpoint: %d bytes", len(wal))
	}
	f.Close()

	f2, err := v.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got := walReadAll(t, f2); !bytes.Equal(got, content) {
		t.Fatal("content mismatch after checkpoint + reopen")
	}
}

func TestWALTruncateZeroesTail(t *testing.T) {
	v := NewWALVFS(t.TempDir())
	f, err := v.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	walWrite(t, f, bytes.Repeat([]byte{0xFF}, 2000), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	// Regrow: the previously-written range must now read as zeros.
	if err := f.Truncate(2000); err != nil {
		t.Fatal(err)
	}
	buf := walReadAll(t, f)
	want := make([]byte, 2000)
	copy(want, bytes.Repeat([]byte{0xFF}, 100))
	if !bytes.Equal(buf, want) {
		t.Fatal("stale data visible after shrink+regrow")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestWALDeleteRemovesSidecar(t *testing.T) {
	dir := t.TempDir()
	v := NewWALVFS(dir)
	f, err := v.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	walWrite(t, f, []byte("x"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := v.Delete("db"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"db", "db.wal"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s still present after Delete", name)
		}
	}
}

// buildWALImage commits three batches and returns the WAL bytes plus
// the per-commit expected file images, so corruption tests can check
// that recovery lands exactly on a commit prefix.
func buildWALImage(t *testing.T) (dir string, images [][]byte) {
	t.Helper()
	dir = t.TempDir()
	v := NewWALVFS(dir)
	f, err := v.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	images = append(images, []byte{}) // zero commits applied
	for batch := 0; batch < 3; batch++ {
		for s := 0; s <= batch; s++ {
			pat := bytes.Repeat([]byte{byte(0x10 + batch*16 + s)}, walSectorSize)
			walWrite(t, f, pat, int64(s)*walSectorSize)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		img := make([]byte, (batch+1)*walSectorSize)
		if _, err := f.ReadAt(img, 0); err != nil {
			t.Fatal(err)
		}
		images = append(images, img)
	}
	f.Close()
	return dir, images
}

// matchesCommitPrefix reports whether got equals one of the recorded
// per-commit images.
func matchesCommitPrefix(got []byte, images [][]byte) bool {
	for _, img := range images {
		if bytes.Equal(got, img) {
			return true
		}
	}
	return false
}

// TestWALTornWriteTruncation truncates the WAL at EVERY byte offset and
// asserts recovery always lands on a complete commit prefix and never
// panics — the power-cut-mid-append model.
func TestWALTornWriteTruncation(t *testing.T) {
	dir, images := buildWALImage(t)
	walPath := filepath.Join(dir, "db.wal")
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(walBytes); cut++ {
		work := t.TempDir()
		copyWALFixture(t, dir, work)
		if err := os.WriteFile(filepath.Join(work, "db.wal"), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		v := NewWALVFS(work)
		f, err := v.Open("db")
		if err != nil {
			t.Fatalf("cut=%d: recovery error: %v", cut, err)
		}
		got := walReadAllT(t, f, cut)
		f.Close()
		if !matchesCommitPrefix(got, images) {
			t.Fatalf("cut=%d: recovered image (%d bytes) matches no commit prefix", cut, len(got))
		}
	}
}

// TestWALBitFlipTail flips every bit... at every byte offset (one flip
// per trial) and asserts recovery never panics and always lands on a
// complete commit prefix — corrupted records must terminate the scan.
func TestWALBitFlipTail(t *testing.T) {
	dir, images := buildWALImage(t)
	walBytes, err := os.ReadFile(filepath.Join(dir, "db.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(walBytes); pos++ {
		work := t.TempDir()
		copyWALFixture(t, dir, work)
		mut := append([]byte(nil), walBytes...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(filepath.Join(work, "db.wal"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		v := NewWALVFS(work)
		f, err := v.Open("db")
		if err != nil {
			t.Fatalf("pos=%d: recovery error: %v", pos, err)
		}
		got := walReadAllT(t, f, pos)
		f.Close()
		if !matchesCommitPrefix(got, images) {
			t.Fatalf("pos=%d: recovered image (%d bytes) matches no commit prefix", pos, len(got))
		}
	}
}

// copyWALFixture copies the base file (not the WAL) from src to dst.
func copyWALFixture(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(src, "db"))
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "db"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func walReadAllT(t *testing.T, f File, tag int) []byte {
	t.Helper()
	size, err := f.Size()
	if err != nil {
		t.Fatalf("tag=%d Size: %v", tag, err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatalf("tag=%d ReadAt: %v", tag, err)
		}
	}
	return buf
}

// FuzzWALRecovery feeds arbitrary bytes as a WAL sidecar: recovery must
// never panic and the recovered image must be readable end to end.
func FuzzWALRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{walKindCommit, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4})
	rec := make([]byte, walDataRecSize)
	rec[0] = walKindData
	f.Add(rec)
	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "db.wal"), wal, 0o644); err != nil {
			t.Skip()
		}
		v := NewWALVFS(dir)
		file, err := v.Open("db")
		if err != nil {
			t.Fatalf("recovery must not error on arbitrary WAL bytes: %v", err)
		}
		defer file.Close()
		size, err := file.Size()
		if err != nil {
			t.Fatal(err)
		}
		if size > 0 {
			buf := make([]byte, size)
			if _, err := file.ReadAt(buf, 0); err != nil && err != io.EOF {
				t.Fatalf("recovered file unreadable: %v", err)
			}
		}
	})
}
