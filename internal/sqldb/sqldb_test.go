package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func openTestDB(t *testing.T) (*DB, *MemVFS) {
	t.Helper()
	vfs := NewMemVFS()
	db, err := Open(vfs, "test.db", true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, vfs
}

func mustExec(t *testing.T, db *DB, sql string, args ...Value) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return rows
}

func TestValueRoundTrip(t *testing.T) {
	rows := [][]Value{
		{},
		{Null()},
		{Int(42), Int(-42), Int(1 << 60)},
		{Real(3.14), Real(-0.5)},
		{Text(""), Text("hello"), Text("ünïcode")},
		{Bytes(nil), Bytes([]byte{0, 1, 2, 255})},
		{Null(), Int(1), Real(2), Text("3"), Bytes([]byte("4"))},
	}
	for i, row := range rows {
		enc := EncodeRow(row)
		got, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if len(got) != len(row) {
			t.Fatalf("row %d: arity %d != %d", i, len(got), len(row))
		}
		for j := range row {
			a, b := row[j], got[j]
			if a.T != b.T || a.I != b.I || a.F != b.F || a.S != b.S || string(a.Blob) != string(b.Blob) {
				t.Fatalf("row %d col %d: %v != %v", i, j, a, b)
			}
		}
	}
}

func TestValueCompareOrdering(t *testing.T) {
	ordered := []Value{
		Null(),
		Int(-5), Int(0), Real(0.5), Int(1), Real(99.5), Int(100),
		Text(""), Text("a"), Text("b"),
		Bytes([]byte("a")), Bytes([]byte("b")),
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			c := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Adjacent equal-valued entries (none here) aside, ordering
			// must match index order.
			if (c < 0) != (want < 0) || (c > 0) != (want > 0) {
				t.Fatalf("Compare(%v,%v) = %d, want sign %d", ordered[i], ordered[j], c, want)
			}
		}
	}
	if Equal(Null(), Null()) {
		t.Fatal("NULL must not equal NULL")
	}
	if !Equal(Int(3), Real(3)) {
		t.Fatal("3 must equal 3.0 across numeric types")
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE votes (voter TEXT, vote TEXT, ts INTEGER, rnd INTEGER)")
	res := mustExec(t, db, "INSERT INTO votes VALUES ('alice', 'yes', 100, 7)")
	if res.RowsAffected != 1 || res.LastInsertID != 1 {
		t.Fatalf("insert result %+v", res)
	}
	mustExec(t, db, "INSERT INTO votes (voter, vote, ts, rnd) VALUES ('bob', 'no', 200, 8), ('carol', 'yes', 300, 9)")

	rows := mustQuery(t, db, "SELECT voter, vote FROM votes WHERE vote = 'yes' ORDER BY voter")
	if !reflect.DeepEqual(rows.Columns, []string{"voter", "vote"}) {
		t.Fatalf("columns %v", rows.Columns)
	}
	if len(rows.Data) != 2 || rows.Data[0][0].S != "alice" || rows.Data[1][0].S != "carol" {
		t.Fatalf("data %v", rows.Data)
	}

	rows = mustQuery(t, db, "SELECT * FROM votes ORDER BY ts DESC LIMIT 2")
	if len(rows.Data) != 2 || rows.Data[0][0].S != "carol" || rows.Data[1][0].S != "bob" {
		t.Fatalf("data %v", rows.Data)
	}
}

func TestInsertParams(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE kv (k TEXT, v BLOB)")
	mustExec(t, db, "INSERT INTO kv VALUES (?, ?)", Text("key1"), Bytes([]byte{1, 2, 3}))
	rows := mustQuery(t, db, "SELECT v FROM kv WHERE k = ?", Text("key1"))
	if len(rows.Data) != 1 || string(rows.Data[0][0].Blob) != "\x01\x02\x03" {
		t.Fatalf("data %v", rows.Data)
	}
	if _, err := db.Exec("INSERT INTO kv VALUES (?, ?)", Text("only-one")); err == nil {
		t.Fatal("missing argument must error")
	}
}

func TestUpdateDelete(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	for i := 1; i <= 10; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'x')", i))
	}
	res := mustExec(t, db, "UPDATE t SET b = 'big' WHERE a > 5")
	if res.RowsAffected != 5 {
		t.Fatalf("updated %d rows", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT count(*) FROM t WHERE b = 'big'")
	if rows.Data[0][0].I != 5 {
		t.Fatalf("count %v", rows.Data)
	}
	res = mustExec(t, db, "DELETE FROM t WHERE a <= 3")
	if res.RowsAffected != 3 {
		t.Fatalf("deleted %d rows", res.RowsAffected)
	}
	rows = mustQuery(t, db, "SELECT count(*), min(a), max(a) FROM t")
	if rows.Data[0][0].I != 7 || rows.Data[0][1].I != 4 || rows.Data[0][2].I != 10 {
		t.Fatalf("aggregates %v", rows.Data)
	}
}

func TestAggregates(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE n (v INTEGER, r REAL)")
	mustExec(t, db, "INSERT INTO n VALUES (1, 1.5), (2, 2.5), (3, NULL)")
	rows := mustQuery(t, db, "SELECT count(*), count(r), sum(v), avg(v), sum(r) FROM n")
	d := rows.Data[0]
	if d[0].I != 3 || d[1].I != 2 || d[2].I != 6 {
		t.Fatalf("aggregates %v", d)
	}
	if d[3].F != 2.0 || d[4].F != 4.0 {
		t.Fatalf("avg/sum %v", d)
	}
	// Aggregates over an empty relation.
	rows = mustQuery(t, db, "SELECT count(*), sum(v), min(v) FROM n WHERE v > 100")
	d = rows.Data[0]
	if d[0].I != 0 || !d[1].IsNull() || !d[2].IsNull() {
		t.Fatalf("empty aggregates %v", d)
	}
}

func TestExpressions(t *testing.T) {
	db, _ := openTestDB(t)
	tests := []struct {
		sql  string
		want Value
	}{
		{"SELECT 1 + 2 * 3", Int(7)},
		{"SELECT (1 + 2) * 3", Int(9)},
		{"SELECT -4 + 1", Int(-3)},
		{"SELECT 10 / 4", Int(2)},
		{"SELECT 10.0 / 4", Real(2.5)},
		{"SELECT 'a' + 'b'", Text("ab")},
		{"SELECT 1 < 2 AND 2 < 3", Int(1)},
		{"SELECT 1 > 2 OR 2 > 3", Int(0)},
		{"SELECT NOT 0", Int(1)},
		{"SELECT 1 = 1", Int(1)},
		{"SELECT 1 != 1", Int(0)},
		{"SELECT 3 <= 3", Int(1)},
		{"SELECT NULL = NULL", Null()},
		{"SELECT 5 / 0", Null()},
		{"SELECT length('hello')", Int(5)},
	}
	for _, tt := range tests {
		rows := mustQuery(t, db, tt.sql)
		got := rows.Data[0][0]
		if got.T != tt.want.T || got.I != tt.want.I || got.F != tt.want.F || got.S != tt.want.S {
			t.Fatalf("%s = %v, want %v", tt.sql, got, tt.want)
		}
	}
}

func TestNowAndRandomRoutedThroughVFS(t *testing.T) {
	vfs := NewMemVFS()
	fixed := time.Unix(1234, 5678)
	vfs.NowFunc = func() time.Time { return fixed }
	vfs.RandFunc = func(p []byte) error {
		for i := range p {
			p[i] = 0xAB
		}
		return nil
	}
	db, err := Open(vfs, "t.db", true)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rows := mustQuery(t, db, "SELECT now(), random()")
	if rows.Data[0][0].I != fixed.UnixNano() {
		t.Fatalf("now() = %d, want %d", rows.Data[0][0].I, fixed.UnixNano())
	}
	u := uint64(0xABABABABABABABAB)
	want := int64(u)
	if rows.Data[0][1].I != want {
		t.Fatalf("random() = %d, want %d", rows.Data[0][1].I, want)
	}
}

func TestTransactionsCommitRollback(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	mustExec(t, db, "ROLLBACK")
	rows := mustQuery(t, db, "SELECT count(*) FROM t")
	if rows.Data[0][0].I != 0 {
		t.Fatalf("rollback left %d rows", rows.Data[0][0].I)
	}
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t VALUES (3)")
	mustExec(t, db, "COMMIT")
	rows = mustQuery(t, db, "SELECT a FROM t")
	if len(rows.Data) != 1 || rows.Data[0][0].I != 3 {
		t.Fatalf("commit result %v", rows.Data)
	}
	if _, err := db.Exec("COMMIT"); err != ErrNoTransaction {
		t.Fatalf("commit outside tx: %v", err)
	}
	if _, err := db.Exec("ROLLBACK"); err != ErrNoTransaction {
		t.Fatalf("rollback outside tx: %v", err)
	}
	mustExec(t, db, "BEGIN")
	if _, err := db.Exec("BEGIN"); err != ErrInTransaction {
		t.Fatalf("nested begin: %v", err)
	}
	mustExec(t, db, "COMMIT")
}

func TestFailedStatementRollsBackAutocommit(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	// Second row references an unknown column: the whole statement
	// (both rows) must roll back.
	_, err := db.Exec("INSERT INTO t VALUES (1), (nosuchcol)")
	if err == nil {
		t.Fatal("expected error")
	}
	rows := mustQuery(t, db, "SELECT count(*) FROM t")
	if rows.Data[0][0].I != 0 {
		t.Fatalf("failed statement left %d rows", rows.Data[0][0].I)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	vfs := NewMemVFS()
	db, err := Open(vfs, "p.db", true)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'one'), (2, 'two')")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(vfs, "p.db", true)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query("SELECT b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 || rows.Data[0][0].S != "one" || rows.Data[1][0].S != "two" {
		t.Fatalf("data %v", rows.Data)
	}
}

func TestCrashRecoveryRollsBackHotJournal(t *testing.T) {
	vfs := NewMemVFS()
	db, err := Open(vfs, "c.db", true)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	// Simulate a crash mid-commit: journal written and synced, database
	// half-written. We emulate by running a transaction, then manually
	// re-creating the "hot journal + modified db" condition: start a tx,
	// commit it, then restore the journal file as if the db write had
	// happened but the journal deletion had not.
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	// Peek the journal the commit will write by intercepting: commit,
	// then recreate a stale journal claiming the old state.
	p := db.Pager()
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Craft a hot journal that reverts page contents to "before row 2".
	// Easiest authentic path: do it with real pager calls.
	db, err = Open(vfs, "c.db", true)
	if err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, "SELECT count(*) FROM t")
	if rows.Data[0][0].I != 2 {
		t.Fatalf("both rows must be present, got %d", rows.Data[0][0].I)
	}
	db.Close()
}

func TestCrashMidCommitTornJournalIgnored(t *testing.T) {
	vfs := NewMemVFS()
	db, err := Open(vfs, "c2.db", true)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	db.Close()

	// A torn journal (garbage header) must be discarded and the
	// database must open with its committed content intact.
	jf, err := vfs.Open("c2.db-journal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteAt([]byte("garbage!"), 0); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	db, err = Open(vfs, "c2.db", true)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rows := mustQuery(t, db, "SELECT count(*) FROM t")
	if rows.Data[0][0].I != 1 {
		t.Fatalf("count %v", rows.Data)
	}
	if ok, _ := vfs.Exists("c2.db-journal"); ok {
		t.Fatal("stale journal must be deleted")
	}
}

func TestHotJournalRecoveryRestoresBeforeImages(t *testing.T) {
	// Authentic crash: write the journal, apply the page writes, but
	// "crash" before the journal delete. Reopen must roll back.
	vfs := NewMemVFS()
	db, err := Open(vfs, "c3.db", true)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	p := db.Pager()
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO t VALUES (2)") // runs inside the open tx
	// Reach into the pager like a crash would: write the journal and
	// flush pages, then abandon everything without deleting the journal.
	if err := p.writeJournal(); err != nil {
		t.Fatal(err)
	}
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	// "Power failure": drop the in-memory state without cleanup.
	db2, err := Open(vfs, "c3.db", true)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].I != 1 {
		t.Fatalf("recovery must roll back the uncommitted row, got %d rows", rows.Data[0][0].I)
	}
}

func TestBTreeLargeVolume(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE big (k INTEGER, pad TEXT)")
	const n = 2000
	pad := make([]byte, 100)
	for i := range pad {
		pad[i] = 'x'
	}
	mustExec(t, db, "BEGIN")
	for i := 0; i < n; i++ {
		mustExec(t, db, "INSERT INTO big VALUES (?, ?)", Int(int64(i)), Text(string(pad)))
	}
	mustExec(t, db, "COMMIT")
	rows := mustQuery(t, db, "SELECT count(*), min(k), max(k) FROM big")
	d := rows.Data[0]
	if d[0].I != n || d[1].I != 0 || d[2].I != n-1 {
		t.Fatalf("aggregates %v", d)
	}
	// Spot-check ordering through the leaf chain.
	rows = mustQuery(t, db, "SELECT k FROM big ORDER BY rowid LIMIT 5")
	for i, r := range rows.Data {
		if r[0].I != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestBTreeRandomOperationsAgainstOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		vfs := NewMemVFS()
		pager, err := OpenPager(vfs, "bt.db", false)
		if err != nil {
			return false
		}
		defer pager.Close()
		tree, err := CreateBTree(pager)
		if err != nil {
			return false
		}
		oracle := make(map[int64][]byte)
		for op := 0; op < 600; op++ {
			key := int64(rnd.Intn(300))
			switch rnd.Intn(3) {
			case 0, 1: // insert/replace
				payload := make([]byte, rnd.Intn(200))
				rnd.Read(payload)
				if err := tree.Insert(key, payload); err != nil {
					return false
				}
				oracle[key] = payload
			case 2: // delete
				found, err := tree.Delete(key)
				if err != nil {
					return false
				}
				_, want := oracle[key]
				if found != want {
					return false
				}
				delete(oracle, key)
			}
		}
		// Full comparison via cursor.
		seen := 0
		prev := int64(-1 << 62)
		for cur := tree.First(); cur.Valid(); cur.Next() {
			if cur.RowID() <= prev {
				return false // ordering violated
			}
			prev = cur.RowID()
			want, ok := oracle[cur.RowID()]
			if !ok || string(want) != string(cur.Payload()) {
				return false
			}
			seen++
		}
		return seen == len(oracle)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRowSizeLimit(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE t (v TEXT)")
	huge := make([]byte, MaxPayload+1)
	if _, err := db.Exec("INSERT INTO t VALUES (?)", Text(string(huge))); err == nil {
		t.Fatal("oversized row must be rejected")
	}
	// And the failed autocommit statement must leave no trace.
	rows := mustQuery(t, db, "SELECT count(*) FROM t")
	if rows.Data[0][0].I != 0 {
		t.Fatalf("count %v", rows.Data)
	}
}

func TestDropTableFreesAndForgets(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	mustExec(t, db, "DROP TABLE a")
	if _, err := db.Query("SELECT * FROM a"); err == nil {
		t.Fatal("dropped table must be gone")
	}
	if _, err := db.Exec("DROP TABLE a"); err == nil {
		t.Fatal("dropping a missing table must fail")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS a")
	// Pages must be recycled: creating a new table reuses freelist pages
	// rather than growing the file unboundedly.
	before := db.Pager().NumPages()
	mustExec(t, db, "CREATE TABLE b (y INTEGER)")
	after := db.Pager().NumPages()
	if after > before {
		t.Fatalf("pages grew %d -> %d despite freelist", before, after)
	}
}

func TestSQLSyntaxErrors(t *testing.T) {
	db, _ := openTestDB(t)
	bad := []string{
		"",
		"BANANA",
		"SELECT",
		"SELECT FROM",
		"CREATE TABLE",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"INSERT INTO",
		"INSERT INTO t VALUES",
		"SELECT * FROM t WHERE",
		"SELECT 'unterminated",
		"DELETE t",
		"UPDATE SET",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			if _, err := db.Query(sql); err == nil {
				t.Fatalf("%q must not parse", sql)
			}
		}
	}
}

func TestTablesListing(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE t1 (a INTEGER)")
	mustExec(t, db, "CREATE TABLE t2 (b TEXT)")
	names, err := db.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("tables %v", names)
	}
}

func TestDiskVFS(t *testing.T) {
	dir := t.TempDir()
	vfs := &DiskVFS{Root: dir}
	db, err := Open(vfs, "disk.db", true)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (42)")
	db.Close()

	db2, err := Open(vfs, "disk.db", true)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].I != 42 {
		t.Fatalf("data %v", rows.Data)
	}
}

func TestNonDurableModeSkipsJournal(t *testing.T) {
	vfs := NewMemVFS()
	db, err := Open(vfs, "nd.db", false)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if ok, _ := vfs.Exists("nd.db-journal"); ok {
		t.Fatal("non-durable mode must not write a journal")
	}
	if db.Pager().Syncs != 0 {
		t.Fatalf("non-durable mode issued %d syncs", db.Pager().Syncs)
	}
	// Explicit rollback still works (in-memory before-images).
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	mustExec(t, db, "ROLLBACK")
	rows := mustQuery(t, db, "SELECT count(*) FROM t")
	if rows.Data[0][0].I != 1 {
		t.Fatalf("count %v", rows.Data)
	}
}

func BenchmarkInsertDurable(b *testing.B) {
	dir := b.TempDir()
	vfs := &DiskVFS{Root: dir}
	db, err := Open(vfs, "bench.db", true)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (k TEXT, v TEXT, ts INTEGER, rnd INTEGER)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, 'v', now(), random())", Text(fmt.Sprint(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertNonDurable(b *testing.B) {
	dir := b.TempDir()
	vfs := &DiskVFS{Root: dir}
	db, err := Open(vfs, "bench.db", false)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (k TEXT, v TEXT, ts INTEGER, rnd INTEGER)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, 'v', now(), random())", Text(fmt.Sprint(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan1000(b *testing.B) {
	vfs := NewMemVFS()
	db, err := Open(vfs, "bench.db", false)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (k INTEGER, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("BEGIN"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, 'value')", Int(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec("COMMIT"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Query("SELECT count(*) FROM t WHERE k >= 500")
		if err != nil || rows.Data[0][0].I != 500 {
			b.Fatalf("%v %v", err, rows)
		}
	}
}

func TestOrderByExpressionAndParamLimit(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b'), (5, 'e'), (4, 'd')")
	// Order by a computed key, descending, limited by a parameter.
	rows := mustQuery(t, db, "SELECT b FROM t ORDER BY a * -1 LIMIT ?", Int(3))
	if len(rows.Data) != 3 || rows.Data[0][0].S != "e" || rows.Data[1][0].S != "d" || rows.Data[2][0].S != "c" {
		t.Fatalf("data %v", rows.Data)
	}
	// Multi-key ordering with ties.
	mustExec(t, db, "INSERT INTO t VALUES (1, 'z')")
	rows = mustQuery(t, db, "SELECT a, b FROM t ORDER BY a, b DESC")
	if rows.Data[0][1].S != "z" || rows.Data[1][1].S != "a" {
		t.Fatalf("tie-break wrong: %v", rows.Data)
	}
	// LIMIT 0 and negative limits.
	rows = mustQuery(t, db, "SELECT a FROM t LIMIT 0")
	if len(rows.Data) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(rows.Data))
	}
	rows = mustQuery(t, db, "SELECT a FROM t LIMIT -1")
	if len(rows.Data) != 6 {
		t.Fatalf("negative limit must mean no limit, got %d rows", len(rows.Data))
	}
}

func TestTextComparisonsAndWhereOnRowid(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE t (name TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('apple'), ('banana'), ('cherry')")
	rows := mustQuery(t, db, "SELECT name FROM t WHERE name > 'apple' ORDER BY name")
	if len(rows.Data) != 2 || rows.Data[0][0].S != "banana" {
		t.Fatalf("data %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT name FROM t WHERE rowid = 2")
	if len(rows.Data) != 1 || rows.Data[0][0].S != "banana" {
		t.Fatalf("data %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT rowid FROM t WHERE name = 'cherry'")
	if len(rows.Data) != 1 || rows.Data[0][0].I != 3 {
		t.Fatalf("data %v", rows.Data)
	}
	// NULL comparisons never match.
	mustExec(t, db, "INSERT INTO t VALUES (NULL)")
	rows = mustQuery(t, db, "SELECT count(*) FROM t WHERE name = NULL")
	if rows.Data[0][0].I != 0 {
		t.Fatalf("NULL = NULL matched %d rows", rows.Data[0][0].I)
	}
	rows = mustQuery(t, db, "SELECT count(*) FROM t WHERE NOT (name = 'apple')")
	if rows.Data[0][0].I != 2 {
		t.Fatalf("NOT with NULL row: %d", rows.Data[0][0].I)
	}
}

func TestRowidPointQueryOptimization(t *testing.T) {
	db, _ := openTestDB(t)
	mustExec(t, db, "CREATE TABLE t (v TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('a'), ('b'), ('c'), ('d')")
	mustExec(t, db, "DELETE FROM t WHERE rowid = 3")

	tests := []struct {
		sql  string
		args []Value
		want []string
	}{
		{"SELECT v FROM t WHERE rowid = 2", nil, []string{"b"}},
		{"SELECT v FROM t WHERE 2 = rowid", nil, []string{"b"}},
		{"SELECT v FROM t WHERE rowid = ?", []Value{Int(4)}, []string{"d"}},
		{"SELECT v FROM t WHERE rowid = 1 + 1", nil, []string{"b"}},
		{"SELECT v FROM t WHERE rowid = 3", nil, nil},  // deleted
		{"SELECT v FROM t WHERE rowid = 99", nil, nil}, // absent
		{"SELECT v FROM t WHERE rowid = 2.0", nil, []string{"b"}},
		{"SELECT v FROM t WHERE rowid = 2.5", nil, nil}, // fractional
		{"SELECT v FROM t WHERE rowid = NULL", nil, nil},
		// Not a point query: must still work via scan.
		{"SELECT v FROM t WHERE rowid = rowid", nil, []string{"a", "b", "d"}},
		{"SELECT v FROM t WHERE rowid > 1", nil, []string{"b", "d"}},
	}
	for _, tt := range tests {
		rows := mustQuery(t, db, tt.sql, tt.args...)
		var got []string
		for _, r := range rows.Data {
			got = append(got, r[0].S)
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Fatalf("%s = %v, want %v", tt.sql, got, tt.want)
		}
	}

	// UPDATE and DELETE ride the same path.
	res := mustExec(t, db, "UPDATE t SET v = 'B' WHERE rowid = 2")
	if res.RowsAffected != 1 {
		t.Fatalf("update affected %d", res.RowsAffected)
	}
	res = mustExec(t, db, "DELETE FROM t WHERE rowid = ?", Int(1))
	if res.RowsAffected != 1 {
		t.Fatalf("delete affected %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT v FROM t ORDER BY rowid")
	if len(rows.Data) != 2 || rows.Data[0][0].S != "B" || rows.Data[1][0].S != "d" {
		t.Fatalf("final rows %v", rows.Data)
	}
}
