package sqldb

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkKeyword
	tkInt
	tkFloat
	tkString
	tkParam // ? placeholder
	tkOp    // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; strings unquoted
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "DROP": true, "IF": true, "NOT": true,
	"EXISTS": true, "INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "UPDATE": true, "SET": true,
	"DELETE": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"AND": true, "OR": true, "NULL": true, "INTEGER": true, "INT": true,
	"REAL": true, "TEXT": true, "BLOB": true, "PRIMARY": true, "KEY": true,
	"AS": true, "TRANSACTION": true,
}

// lex tokenizes one SQL statement.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isDigit(ch) || (ch == '.' && i+1 < len(src) && isDigit(src[i+1])):
			start := i
			isFloat := false
			for i < len(src) && (isDigit(src[i]) || src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && i > start && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				if src[i] == '.' || src[i] == 'e' || src[i] == 'E' {
					isFloat = true
				}
				i++
			}
			kind := tkInt
			if isFloat {
				kind = tkFloat
			}
			toks = append(toks, token{kind: kind, text: src[start:i], pos: start})
		case isIdentStart(ch):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tkKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tkIdent, text: word, pos: start})
			}
		case ch == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqldb: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tkString, text: sb.String(), pos: i})
		case ch == '?':
			toks = append(toks, token{kind: tkParam, text: "?", pos: i})
			i++
		case ch == '<' || ch == '>' || ch == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tkOp, text: src[i : i+2], pos: i})
				i += 2
			} else if ch == '<' && i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{kind: tkOp, text: "!=", pos: i})
				i += 2
			} else if ch == '!' {
				return nil, fmt.Errorf("sqldb: unexpected '!' at %d", i)
			} else {
				toks = append(toks, token{kind: tkOp, text: string(ch), pos: i})
				i++
			}
		case strings.ContainsRune("(),;*=+-/", rune(ch)):
			toks = append(toks, token{kind: tkOp, text: string(ch), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sqldb: unexpected character %q at %d", ch, i)
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: len(src)})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|0x20 >= 'a' && c|0x20 <= 'z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
