package sqldb

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	st, _, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s', 42, 4.5, ? FROM t -- comment\nWHERE x <= 3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "it's", ",", "42", ",", "4.5", ",", "?", "FROM", "t", "WHERE", "x", "<=", "3", ""}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts = %q, want %q", texts, want)
	}
	if kinds[0] != tkKeyword || kinds[1] != tkIdent || kinds[3] != tkString ||
		kinds[5] != tkInt || kinds[7] != tkFloat || kinds[9] != tkParam || kinds[14] != tkOp {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'open", "a @ b", "x ! y"} {
		if _, err := lex(src); err == nil {
			t.Fatalf("%q must fail to lex", src)
		}
	}
}

func TestLexerNotEqualsVariants(t *testing.T) {
	for _, src := range []string{"a != b", "a <> b"} {
		toks, err := lex(src)
		if err != nil {
			t.Fatal(err)
		}
		if toks[1].text != "!=" {
			t.Fatalf("%q lexed as %q", src, toks[1].text)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE IF NOT EXISTS users (id INTEGER PRIMARY KEY, name TEXT, score REAL, pic BLOB, extra)")
	ct := st.(*CreateTableStmt)
	if !ct.IfNotExists || ct.Name != "users" {
		t.Fatalf("%+v", ct)
	}
	wantCols := []ColDef{
		{"id", TInt}, {"name", TText}, {"score", TReal}, {"pic", TBlob}, {"extra", TText},
	}
	if !reflect.DeepEqual(ct.Cols, wantCols) {
		t.Fatalf("cols = %+v", ct.Cols)
	}
}

func TestParseInsertForms(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	ins := st.(*InsertStmt)
	if ins.Table != "t" || !reflect.DeepEqual(ins.Cols, []string{"a", "b"}) || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	st = mustParse(t, "INSERT INTO t VALUES (now(), random(), ?, NULL)")
	ins = st.(*InsertStmt)
	if ins.Cols != nil || len(ins.Rows[0]) != 4 {
		t.Fatalf("%+v", ins)
	}
	if _, ok := ins.Rows[0][0].(*CallExpr); !ok {
		t.Fatal("now() must parse as a call")
	}
	if _, ok := ins.Rows[0][2].(*ParamExpr); !ok {
		t.Fatal("? must parse as a parameter")
	}
	if lit, ok := ins.Rows[0][3].(*LiteralExpr); !ok || !lit.Val.IsNull() {
		t.Fatal("NULL must parse as the null literal")
	}
}

func TestParseSelectClauses(t *testing.T) {
	st := mustParse(t, "SELECT a, b + 1 AS bp, count(*) FROM t WHERE a = 1 AND NOT b < 2 OR c != 'x' ORDER BY a DESC, b LIMIT 10")
	sel := st.(*SelectStmt)
	if sel.Table != "t" || len(sel.Items) != 3 {
		t.Fatalf("%+v", sel)
	}
	if sel.Items[1].As != "bp" {
		t.Fatalf("alias = %q", sel.Items[1].As)
	}
	call := sel.Items[2].Expr.(*CallExpr)
	if call.Name != "count" || !call.Star {
		t.Fatalf("%+v", call)
	}
	if sel.Where == nil || len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("%+v", sel)
	}
	if sel.Limit == nil {
		t.Fatal("limit lost")
	}
	// OR binds looser than AND.
	or := sel.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top op = %s, want OR", or.Op)
	}
	and := or.L.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("left op = %s, want AND", and.Op)
	}
}

func TestParsePrecedence(t *testing.T) {
	st := mustParse(t, "SELECT 1 + 2 * 3 - 4 / 2")
	sel := st.(*SelectStmt)
	// ((1 + (2*3)) - (4/2))
	top := sel.Items[0].Expr.(*BinaryExpr)
	if top.Op != "-" {
		t.Fatalf("top = %s", top.Op)
	}
	left := top.L.(*BinaryExpr)
	if left.Op != "+" {
		t.Fatalf("left = %s", left.Op)
	}
	mul := left.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("left.R = %s", mul.Op)
	}
	div := top.R.(*BinaryExpr)
	if div.Op != "/" {
		t.Fatalf("right = %s", div.Op)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE rowid = 5")
	up := st.(*UpdateStmt)
	if up.Table != "t" || len(up.Sets) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	st = mustParse(t, "DELETE FROM t")
	del := st.(*DeleteStmt)
	if del.Table != "t" || del.Where != nil {
		t.Fatalf("%+v", del)
	}
}

func TestParseTransactions(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*BeginStmt); !ok {
		t.Fatal("BEGIN")
	}
	if _, ok := mustParse(t, "BEGIN TRANSACTION").(*BeginStmt); !ok {
		t.Fatal("BEGIN TRANSACTION")
	}
	if _, ok := mustParse(t, "COMMIT;").(*CommitStmt); !ok {
		t.Fatal("COMMIT")
	}
	if _, ok := mustParse(t, "rollback").(*RollbackStmt); !ok {
		t.Fatal("case-insensitive ROLLBACK")
	}
}

func TestParseParamCounting(t *testing.T) {
	_, n, err := Parse("INSERT INTO t VALUES (?, ?, ? + ?)")
	if err != nil || n != 4 {
		t.Fatalf("n = %d err = %v", n, err)
	}
	_, n, err = Parse("SELECT 1")
	if err != nil || n != 0 {
		t.Fatalf("n = %d err = %v", n, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM t WHERE",
		"SELECT *, FROM t",
		"CREATE TABLE t (a INTEGER,)",
		"INSERT INTO t (a VALUES (1)",
		"INSERT INTO t VALUES (1",
		"UPDATE t SET = 3",
		"DELETE FROM WHERE a = 1",
		"SELECT (1 + 2",
		"SELECT 1 2",
		"CREATE VIEW v",
		"SELECT FROM",
		"SELECT count(* FROM t",
		"SELECT 'a' ORDER",
	}
	for _, src := range bad {
		if _, _, err := Parse(src); err == nil {
			t.Fatalf("%q must fail to parse", src)
		}
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	st := mustParse(t, "select A, B from T where A > 1 order by B limit 3")
	sel := st.(*SelectStmt)
	if sel.Table != "T" || len(sel.Items) != 2 {
		t.Fatalf("%+v", sel)
	}
}

func TestParseStringEscapes(t *testing.T) {
	st := mustParse(t, "SELECT 'it''s a ''test'''")
	sel := st.(*SelectStmt)
	lit := sel.Items[0].Expr.(*LiteralExpr)
	if lit.Val.S != "it's a 'test'" {
		t.Fatalf("got %q", lit.Val.S)
	}
}

func TestParseLongStatement(t *testing.T) {
	// A wide INSERT exercises the writer paths without pathology.
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES (0")
	for i := 1; i < 200; i++ {
		sb.WriteString(", ")
		sb.WriteString("1")
	}
	sb.WriteString(")")
	st := mustParse(t, sb.String())
	if len(st.(*InsertStmt).Rows[0]) != 200 {
		t.Fatal("arity lost")
	}
}
