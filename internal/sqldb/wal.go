package sqldb

import (
	"crypto/rand"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WAL on-disk format. Every opened file NAME is backed by a base file
// NAME plus a sidecar log NAME.wal. Writes accumulate in memory as
// dirty 512-byte sectors; Sync appends one record per dirty sector
// followed by a commit record carrying the logical file size, then
// fsyncs the log — that single fsync IS the commit point. A fold-back
// checkpoint later rewrites committed sectors into the base file and
// truncates the log.
//
//	data record:   [kind=1 u8][sector u64][len u32][len bytes][crc32 u32]
//	commit record: [kind=2 u8][size u64][crc32 u32]
//
// The CRC (IEEE, over everything before it) makes torn appends
// detectable: recovery replays complete commit batches and stops at the
// first short, misformed, or checksum-failing record, truncating the
// log back to the last commit boundary. A power cut mid-append
// therefore recovers to the last complete record, never to a torn one.
const (
	walSectorSize = 512

	walKindData   = 1
	walKindCommit = 2

	walDataHeader  = 1 + 8 + 4 // kind, sector, len
	walDataRecSize = walDataHeader + walSectorSize + 4
	walCommitSize  = 1 + 8 + 4 // kind, size, crc
)

// defaultWALCheckpointBytes is the log size past which Sync folds the
// committed sectors back into the base file.
const defaultWALCheckpointBytes = 1 << 20

// WALStats is a point-in-time snapshot of a WALVFS's durability
// counters (monotonic across every file the VFS has opened).
type WALStats struct {
	// Fsyncs counts commit fsyncs of WAL sidecars.
	Fsyncs uint64
	// Bytes counts bytes appended to WAL sidecars.
	Bytes uint64
	// Checkpoints counts fold-backs of a WAL into its base file.
	Checkpoints uint64
}

// WALVFS is the durable VFS variant: sector-based file backing with a
// write-ahead log per file. Commit is a WAL append + fsync; checkpoint
// folds the WAL back into the base file; per-record checksums detect
// torn writes so crash recovery lands on the last complete record.
// Root confines all files (and their .wal sidecars) to one directory.
type WALVFS struct {
	Root string
	// CheckpointBytes is the WAL size past which Sync folds the log
	// back into the base file (0 = 1 MiB).
	CheckpointBytes int64

	fsyncs      atomic.Uint64
	bytes       atomic.Uint64
	checkpoints atomic.Uint64
}

var _ VFS = (*WALVFS)(nil)

// NewWALVFS builds a WAL-backed VFS rooted at dir.
func NewWALVFS(dir string) *WALVFS { return &WALVFS{Root: dir} }

// Stats returns the VFS's cumulative durability counters.
func (v *WALVFS) Stats() WALStats {
	return WALStats{
		Fsyncs:      v.fsyncs.Load(),
		Bytes:       v.bytes.Load(),
		Checkpoints: v.checkpoints.Load(),
	}
}

func (v *WALVFS) checkpointBytes() int64 {
	if v.CheckpointBytes > 0 {
		return v.CheckpointBytes
	}
	return defaultWALCheckpointBytes
}

// Open implements VFS: it opens base and sidecar, then replays the
// sidecar's complete commit batches (recovery), truncating any torn
// tail left by a crash mid-append.
func (v *WALVFS) Open(name string) (File, error) {
	base, err := os.OpenFile(filepath.Join(v.Root, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(v.Root, name+".wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		base.Close()
		return nil, err
	}
	f := &walFile{
		vfs:       v,
		base:      base,
		wal:       wal,
		pending:   make(map[int64][]byte),
		committed: make(map[int64][]byte),
	}
	if err := f.recover(); err != nil {
		base.Close()
		wal.Close()
		return nil, err
	}
	return f, nil
}

// Delete implements VFS: it removes both the base file and the sidecar.
func (v *WALVFS) Delete(name string) error {
	err := os.Remove(filepath.Join(v.Root, name))
	if os.IsNotExist(err) {
		err = nil
	}
	werr := os.Remove(filepath.Join(v.Root, name+".wal"))
	if os.IsNotExist(werr) {
		werr = nil
	}
	if err != nil {
		return err
	}
	return werr
}

// Exists implements VFS.
func (v *WALVFS) Exists(name string) (bool, error) {
	_, err := os.Stat(filepath.Join(v.Root, name))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// Now implements VFS.
func (v *WALVFS) Now() time.Time { return time.Now() }

// Rand implements VFS.
func (v *WALVFS) Rand(p []byte) error {
	_, err := rand.Read(p)
	return err
}

// walFile is one WAL-backed file: reads overlay dirty (pending) sectors
// over committed-but-unfolded sectors over the base file.
type walFile struct {
	vfs  *WALVFS
	base *os.File
	wal  *os.File

	mu sync.Mutex
	// pending holds dirty sectors not yet committed (lost on crash).
	pending map[int64][]byte
	// committed holds sectors durable in the WAL but not yet folded
	// into the base file.
	committed map[int64][]byte
	// size is the logical size including uncommitted writes;
	// commitSize is the logical size as of the last commit record.
	size       int64
	commitSize int64
	// baseSize is the base file's on-disk size.
	baseSize int64
	// walOff is the append offset: the end of the last complete
	// commit batch.
	walOff int64
}

var _ File = (*walFile)(nil)

func walCRC(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// recover replays the sidecar: complete commit batches are applied in
// order; the scan stops at the first torn or corrupt record and the log
// is truncated back to the last commit boundary.
func (f *walFile) recover() error {
	st, err := f.base.Stat()
	if err != nil {
		return err
	}
	f.baseSize = st.Size()
	f.commitSize = f.baseSize
	log, err := io.ReadAll(f.wal)
	if err != nil {
		return err
	}
	batch := make(map[int64][]byte)
	var off int64
scan:
	for off < int64(len(log)) {
		rest := log[off:]
		switch rest[0] {
		case walKindData:
			if int64(len(rest)) < walDataRecSize {
				break scan // torn tail
			}
			rec := rest[:walDataRecSize]
			if binary.BigEndian.Uint32(rec[9:13]) != walSectorSize {
				break scan
			}
			if walCRC(rec[:walDataRecSize-4]) != binary.BigEndian.Uint32(rec[walDataRecSize-4:]) {
				break scan
			}
			sector := int64(binary.BigEndian.Uint64(rec[1:9]))
			data := make([]byte, walSectorSize)
			copy(data, rec[walDataHeader:walDataHeader+walSectorSize])
			batch[sector] = data
			off += walDataRecSize
		case walKindCommit:
			if int64(len(rest)) < walCommitSize {
				break scan
			}
			rec := rest[:walCommitSize]
			if walCRC(rec[:walCommitSize-4]) != binary.BigEndian.Uint32(rec[walCommitSize-4:]) {
				break scan
			}
			for s, d := range batch {
				f.committed[s] = d
			}
			batch = make(map[int64][]byte)
			f.commitSize = int64(binary.BigEndian.Uint64(rec[1:9]))
			off += walCommitSize
		default:
			break scan // corrupt kind byte
		}
	}
	f.walOff = off
	f.size = f.commitSize
	if off < int64(len(log)) {
		// Drop the torn tail so future appends start at a clean
		// commit boundary.
		if err := f.wal.Truncate(off); err != nil {
			return err
		}
		if err := f.wal.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// sector returns a mutable copy of the given sector's current content,
// reading through pending → committed → base (zero-filled past EOF).
func (f *walFile) sector(idx int64) ([]byte, error) {
	if buf, ok := f.pending[idx]; ok {
		return buf, nil
	}
	buf := make([]byte, walSectorSize)
	if src, ok := f.committed[idx]; ok {
		copy(buf, src)
		return buf, nil
	}
	off := idx * walSectorSize
	if off < f.baseSize {
		n := walSectorSize
		if off+int64(n) > f.baseSize {
			n = int(f.baseSize - off)
		}
		if _, err := f.base.ReadAt(buf[:n], off); err != nil && err != io.EOF {
			return nil, err
		}
	}
	return buf, nil
}

// ReadAt implements File with the same EOF semantics as diskFile: a
// read ending exactly at EOF returns nil error.
func (f *walFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= f.size {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	n := len(p)
	var eof error
	if off+int64(n) > f.size {
		n = int(f.size - off)
		eof = io.EOF
	}
	read := 0
	for read < n {
		idx := (off + int64(read)) / walSectorSize
		within := int((off + int64(read)) % walSectorSize)
		buf, err := f.sector(idx)
		if err != nil {
			return read, err
		}
		read += copy(p[read:n], buf[within:])
	}
	return read, eof
}

// WriteAt implements File: sectors become pending until the next Sync.
func (f *walFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	written := 0
	for written < len(p) {
		idx := (off + int64(written)) / walSectorSize
		within := int((off + int64(written)) % walSectorSize)
		buf, err := f.sector(idx)
		if err != nil {
			return written, err
		}
		written += copy(buf[within:], p[written:])
		f.pending[idx] = buf
	}
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	return len(p), nil
}

// Truncate implements File. Shrinking zeroes every known sector at or
// beyond the new size so a later re-growth reads zeros, not stale data.
func (f *walFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < f.size {
		limit := f.size
		if f.baseSize > limit {
			limit = f.baseSize
		}
		for idx := size / walSectorSize; idx*walSectorSize < limit; idx++ {
			start := idx * walSectorSize
			if start >= size {
				_, inPending := f.pending[idx]
				_, inCommitted := f.committed[idx]
				if inPending || inCommitted || start < f.baseSize {
					f.pending[idx] = make([]byte, walSectorSize)
				}
				continue
			}
			// Straddling sector: zero the tail beyond the new size.
			buf, err := f.sector(idx)
			if err != nil {
				return err
			}
			for i := size - start; i < walSectorSize; i++ {
				buf[i] = 0
			}
			f.pending[idx] = buf
		}
	}
	f.size = size
	return nil
}

// Sync implements File: it is the commit point. Dirty sectors are
// appended to the WAL followed by a commit record, and one fsync makes
// the batch durable. Past the checkpoint threshold the committed
// sectors fold back into the base file.
func (f *walFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.pending) == 0 && f.size == f.commitSize {
		return nil
	}
	idxs := make([]int64, 0, len(f.pending))
	for idx := range f.pending {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	out := make([]byte, 0, len(idxs)*walDataRecSize+walCommitSize)
	for _, idx := range idxs {
		rec := make([]byte, walDataRecSize)
		rec[0] = walKindData
		binary.BigEndian.PutUint64(rec[1:9], uint64(idx))
		binary.BigEndian.PutUint32(rec[9:13], walSectorSize)
		copy(rec[walDataHeader:], f.pending[idx])
		binary.BigEndian.PutUint32(rec[walDataRecSize-4:], walCRC(rec[:walDataRecSize-4]))
		out = append(out, rec...)
	}
	commit := make([]byte, walCommitSize)
	commit[0] = walKindCommit
	binary.BigEndian.PutUint64(commit[1:9], uint64(f.size))
	binary.BigEndian.PutUint32(commit[walCommitSize-4:], walCRC(commit[:walCommitSize-4]))
	out = append(out, commit...)
	if _, err := f.wal.WriteAt(out, f.walOff); err != nil {
		return err
	}
	if err := f.wal.Sync(); err != nil {
		return err
	}
	f.walOff += int64(len(out))
	f.vfs.fsyncs.Add(1)
	f.vfs.bytes.Add(uint64(len(out)))
	for _, idx := range idxs {
		f.committed[idx] = f.pending[idx]
	}
	f.pending = make(map[int64][]byte)
	f.commitSize = f.size
	if f.walOff >= f.vfs.checkpointBytes() {
		return f.checkpoint()
	}
	return nil
}

// checkpoint folds committed sectors into the base file and resets the
// WAL. Called with f.mu held. Crash safety: the WAL still holds every
// record until it is truncated, and truncation happens only after the
// base file content is fsynced — a crash at any point replays into the
// same state.
func (f *walFile) checkpoint() error {
	for idx, buf := range f.committed {
		if _, err := f.base.WriteAt(buf, idx*walSectorSize); err != nil {
			return err
		}
	}
	if err := f.base.Truncate(f.commitSize); err != nil {
		return err
	}
	if err := f.base.Sync(); err != nil {
		return err
	}
	f.baseSize = f.commitSize
	if err := f.wal.Truncate(0); err != nil {
		return err
	}
	if err := f.wal.Sync(); err != nil {
		return err
	}
	f.walOff = 0
	f.committed = make(map[int64][]byte)
	f.vfs.checkpoints.Add(1)
	return nil
}

// Checkpoint forces a fold-back of the committed WAL content into the
// base file regardless of the size threshold. Pending (uncommitted)
// writes are committed first.
func (f *walFile) Checkpoint() error {
	if err := f.Sync(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.walOff == 0 && len(f.committed) == 0 {
		return nil
	}
	return f.checkpoint()
}

// Size implements File (logical size, including uncommitted writes).
func (f *walFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size, nil
}

// Close implements File. Uncommitted (never-synced) writes are
// discarded, matching the durability contract: only what Sync returned
// success for survives.
func (f *walFile) Close() error {
	err := f.wal.Close()
	if berr := f.base.Close(); err == nil {
		err = berr
	}
	return err
}
