package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Result reports the outcome of a mutating statement.
type Result struct {
	RowsAffected int64
	LastInsertID int64
}

// Rows is a fully materialized result set.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// evalEnv supplies column values during expression evaluation.
type evalEnv struct {
	db    *DB
	table *TableMeta
	row   []Value
	rowid int64
	args  []Value
}

// eval evaluates an expression.
func (env *evalEnv) eval(e Expr) (Value, error) {
	switch x := e.(type) {
	case *LiteralExpr:
		return x.Val, nil
	case *ParamExpr:
		if x.Index >= len(env.args) {
			return Value{}, fmt.Errorf("sqldb: missing argument %d", x.Index+1)
		}
		return env.args[x.Index], nil
	case *ColumnExpr:
		if env.table == nil || env.row == nil {
			return Value{}, fmt.Errorf("sqldb: no row context for column %q", x.Name)
		}
		if strings.EqualFold(x.Name, "rowid") {
			return Int(env.rowid), nil
		}
		idx := env.table.ColIndex(x.Name)
		if idx < 0 {
			return Value{}, fmt.Errorf("sqldb: no column %q in table %q", x.Name, env.table.Name)
		}
		if idx >= len(env.row) {
			return Null(), nil
		}
		return env.row[idx], nil
	case *UnaryExpr:
		v, err := env.eval(x.E)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			if v.Truthy() {
				return Int(0), nil
			}
			return Int(1), nil
		case "-":
			switch v.T {
			case TInt:
				return Int(-v.I), nil
			case TReal:
				return Real(-v.F), nil
			case TNull:
				return Null(), nil
			default:
				return Real(-v.AsReal()), nil
			}
		}
		return Value{}, fmt.Errorf("sqldb: unknown unary %q", x.Op)
	case *BinaryExpr:
		return env.evalBinary(x)
	case *CallExpr:
		return env.evalCall(x)
	default:
		return Value{}, fmt.Errorf("sqldb: unknown expression %T", e)
	}
}

func (env *evalEnv) evalBinary(x *BinaryExpr) (Value, error) {
	l, err := env.eval(x.L)
	if err != nil {
		return Value{}, err
	}
	// AND/OR short-circuit.
	switch x.Op {
	case "AND":
		if !l.IsNull() && !l.Truthy() {
			return Int(0), nil
		}
		r, err := env.eval(x.R)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return boolVal(l.Truthy() && r.Truthy()), nil
	case "OR":
		if !l.IsNull() && l.Truthy() {
			return Int(1), nil
		}
		r, err := env.eval(x.R)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return boolVal(l.Truthy() || r.Truthy()), nil
	}
	r, err := env.eval(x.R)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c := Compare(l, r)
		switch x.Op {
		case "=":
			return boolVal(c == 0), nil
		case "!=":
			return boolVal(c != 0), nil
		case "<":
			return boolVal(c < 0), nil
		case "<=":
			return boolVal(c <= 0), nil
		case ">":
			return boolVal(c > 0), nil
		default:
			return boolVal(c >= 0), nil
		}
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		// TEXT + TEXT concatenates; everything else is numeric.
		if x.Op == "+" && l.T == TText && r.T == TText {
			return Text(l.S + r.S), nil
		}
		if l.T == TInt && r.T == TInt {
			switch x.Op {
			case "+":
				return Int(l.I + r.I), nil
			case "-":
				return Int(l.I - r.I), nil
			case "*":
				return Int(l.I * r.I), nil
			default:
				if r.I == 0 {
					return Null(), nil
				}
				return Int(l.I / r.I), nil
			}
		}
		lf, rf := l.AsReal(), r.AsReal()
		switch x.Op {
		case "+":
			return Real(lf + rf), nil
		case "-":
			return Real(lf - rf), nil
		case "*":
			return Real(lf * rf), nil
		default:
			if rf == 0 {
				return Null(), nil
			}
			return Real(lf / rf), nil
		}
	}
	return Value{}, fmt.Errorf("sqldb: unknown operator %q", x.Op)
}

func (env *evalEnv) evalCall(x *CallExpr) (Value, error) {
	switch x.Name {
	case "now":
		// Routed through the VFS so a replicated deployment uses the
		// agreed timestamp (§3.2, Fig. 3).
		return Int(env.db.vfs.Now().UnixNano()), nil
	case "random":
		var b [8]byte
		if err := env.db.vfs.Rand(b[:]); err != nil {
			return Value{}, err
		}
		v := int64(getU64(b[:]))
		return Int(v), nil
	case "length":
		if len(x.Args) != 1 {
			return Value{}, fmt.Errorf("sqldb: length() takes one argument")
		}
		v, err := env.eval(x.Args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			return Null(), nil
		}
		return Int(int64(len(v.AsText()))), nil
	case "count", "sum", "min", "max", "avg":
		return Value{}, fmt.Errorf("sqldb: aggregate %s() outside an aggregate query", x.Name)
	default:
		return Value{}, fmt.Errorf("sqldb: unknown function %q", x.Name)
	}
}

func boolVal(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// hasAggregate reports whether the expression contains an aggregate call.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *CallExpr:
		switch x.Name {
		case "count", "sum", "min", "max", "avg":
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *UnaryExpr:
		return hasAggregate(x.E)
	case *BinaryExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	}
	return false
}

// scanRow is one matched row during statement execution.
type scanRow struct {
	rowid int64
	vals  []Value
}

// scanTable runs the WHERE filter over a table and returns matches. A
// WHERE of the form `rowid = <row-independent expression>` is served by a
// B+tree point lookup instead of a full scan.
func (d *DB) scanTable(meta *TableMeta, where Expr, args []Value) ([]scanRow, error) {
	tree := NewBTree(d.pager, meta.Root)
	env := &evalEnv{db: d, table: meta, args: args}

	if target, ok, err := rowidPointQuery(where, env); err != nil {
		return nil, err
	} else if ok {
		payload, found, err := tree.Get(target)
		if err != nil || !found {
			return nil, err
		}
		vals, err := DecodeRow(payload)
		if err != nil {
			return nil, err
		}
		return []scanRow{{rowid: target, vals: vals}}, nil
	}

	var out []scanRow
	for cur := tree.First(); cur.Valid(); cur.Next() {
		vals, err := DecodeRow(cur.Payload())
		if err != nil {
			return nil, err
		}
		if where != nil {
			env.row, env.rowid = vals, cur.RowID()
			v, err := env.eval(where)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		out = append(out, scanRow{rowid: cur.RowID(), vals: vals})
	}
	if err := tree.First().Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// rowidPointQuery recognizes `rowid = expr` (either operand order) where
// expr needs no row context, and evaluates the target rowid.
func rowidPointQuery(where Expr, env *evalEnv) (int64, bool, error) {
	be, ok := where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return 0, false, nil
	}
	var other Expr
	if isRowidRef(be.L) {
		other = be.R
	} else if isRowidRef(be.R) {
		other = be.L
	} else {
		return 0, false, nil
	}
	if dependsOnRow(other) {
		return 0, false, nil
	}
	v, err := env.eval(other)
	if err != nil {
		return 0, false, err
	}
	if v.IsNull() || (v.T != TInt && v.T != TReal) {
		return 0, false, nil // NULL never matches; non-numeric falls back
	}
	if v.T == TReal && v.F != float64(int64(v.F)) {
		return 0, false, nil // fractional rowid matches nothing via scan too
	}
	return v.AsInt(), true, nil
}

func isRowidRef(e Expr) bool {
	col, ok := e.(*ColumnExpr)
	return ok && strings.EqualFold(col.Name, "rowid")
}

// dependsOnRow reports whether evaluating e needs a row context.
func dependsOnRow(e Expr) bool {
	switch x := e.(type) {
	case *ColumnExpr:
		return true
	case *UnaryExpr:
		return dependsOnRow(x.E)
	case *BinaryExpr:
		return dependsOnRow(x.L) || dependsOnRow(x.R)
	case *CallExpr:
		for _, a := range x.Args {
			if dependsOnRow(a) {
				return true
			}
		}
	}
	return false
}

func (d *DB) execCreate(st *CreateTableStmt) (Result, error) {
	cat, err := openCatalog(d.pager)
	if err != nil {
		return Result{}, err
	}
	if existing, err := cat.lookup(st.Name); err != nil {
		return Result{}, err
	} else if existing != nil {
		if st.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: table %q already exists", st.Name)
	}
	seen := make(map[string]bool, len(st.Cols))
	for _, c := range st.Cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return Result{}, fmt.Errorf("sqldb: duplicate column %q", c.Name)
		}
		seen[lc] = true
	}
	tree, err := CreateBTree(d.pager)
	if err != nil {
		return Result{}, err
	}
	meta := &TableMeta{Name: st.Name, Root: tree.Root(), NextRowID: 1, Cols: st.Cols}
	if err := cat.create(meta); err != nil {
		return Result{}, err
	}
	return Result{}, nil
}

func (d *DB) execDrop(st *DropTableStmt) (Result, error) {
	cat, err := openCatalog(d.pager)
	if err != nil {
		return Result{}, err
	}
	meta, err := cat.lookup(st.Name)
	if err != nil {
		return Result{}, err
	}
	if meta == nil {
		if st.IfExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: no table %q", st.Name)
	}
	// Free the table's pages (walk the tree).
	if err := d.freeTree(meta.Root); err != nil {
		return Result{}, err
	}
	if err := cat.drop(meta); err != nil {
		return Result{}, err
	}
	return Result{}, nil
}

// freeTree returns a whole subtree's pages to the freelist.
func (d *DB) freeTree(pgno uint32) error {
	data, err := d.pager.Get(pgno)
	if err != nil {
		return err
	}
	if data[0] == pageInterior {
		cells, right, err := decodeInterior(data)
		if err != nil {
			return err
		}
		for _, c := range cells {
			if err := d.freeTree(c.child); err != nil {
				return err
			}
		}
		if err := d.freeTree(right); err != nil {
			return err
		}
	}
	return d.pager.Free(pgno)
}

func (d *DB) execInsert(st *InsertStmt, args []Value) (Result, error) {
	cat, err := openCatalog(d.pager)
	if err != nil {
		return Result{}, err
	}
	meta, err := cat.lookup(st.Table)
	if err != nil {
		return Result{}, err
	}
	if meta == nil {
		return Result{}, fmt.Errorf("sqldb: no table %q", st.Table)
	}
	colIdx := make([]int, 0, len(st.Cols))
	if len(st.Cols) > 0 {
		for _, c := range st.Cols {
			idx := meta.ColIndex(c)
			if idx < 0 {
				return Result{}, fmt.Errorf("sqldb: no column %q in table %q", c, st.Table)
			}
			colIdx = append(colIdx, idx)
		}
	}
	tree := NewBTree(d.pager, meta.Root)
	env := &evalEnv{db: d, args: args}
	res := Result{}
	for _, rowExprs := range st.Rows {
		want := len(meta.Cols)
		if len(st.Cols) > 0 {
			want = len(st.Cols)
		}
		if len(rowExprs) != want {
			return Result{}, fmt.Errorf("sqldb: %d values for %d columns", len(rowExprs), want)
		}
		row := make([]Value, len(meta.Cols))
		for i, e := range rowExprs {
			v, err := env.eval(e)
			if err != nil {
				return Result{}, err
			}
			if len(st.Cols) > 0 {
				row[colIdx[i]] = v
			} else {
				row[i] = v
			}
		}
		rowid := meta.NextRowID
		meta.NextRowID++
		if err := tree.Insert(rowid, EncodeRow(row)); err != nil {
			return Result{}, err
		}
		res.RowsAffected++
		res.LastInsertID = rowid
	}
	if err := cat.update(meta); err != nil {
		return Result{}, err
	}
	return res, nil
}

func (d *DB) execUpdate(st *UpdateStmt, args []Value) (Result, error) {
	cat, err := openCatalog(d.pager)
	if err != nil {
		return Result{}, err
	}
	meta, err := cat.lookup(st.Table)
	if err != nil {
		return Result{}, err
	}
	if meta == nil {
		return Result{}, fmt.Errorf("sqldb: no table %q", st.Table)
	}
	matches, err := d.scanTable(meta, st.Where, args)
	if err != nil {
		return Result{}, err
	}
	setIdx := make([]int, len(st.Sets))
	for i, a := range st.Sets {
		idx := meta.ColIndex(a.Col)
		if idx < 0 {
			return Result{}, fmt.Errorf("sqldb: no column %q in table %q", a.Col, st.Table)
		}
		setIdx[i] = idx
	}
	tree := NewBTree(d.pager, meta.Root)
	env := &evalEnv{db: d, table: meta, args: args}
	res := Result{}
	for _, m := range matches {
		env.row, env.rowid = m.vals, m.rowid
		newRow := append([]Value(nil), m.vals...)
		for len(newRow) < len(meta.Cols) {
			newRow = append(newRow, Null())
		}
		for i, a := range st.Sets {
			v, err := env.eval(a.Expr)
			if err != nil {
				return Result{}, err
			}
			newRow[setIdx[i]] = v
		}
		if err := tree.Insert(m.rowid, EncodeRow(newRow)); err != nil {
			return Result{}, err
		}
		res.RowsAffected++
	}
	return res, nil
}

func (d *DB) execDelete(st *DeleteStmt, args []Value) (Result, error) {
	cat, err := openCatalog(d.pager)
	if err != nil {
		return Result{}, err
	}
	meta, err := cat.lookup(st.Table)
	if err != nil {
		return Result{}, err
	}
	if meta == nil {
		return Result{}, fmt.Errorf("sqldb: no table %q", st.Table)
	}
	matches, err := d.scanTable(meta, st.Where, args)
	if err != nil {
		return Result{}, err
	}
	tree := NewBTree(d.pager, meta.Root)
	res := Result{}
	for _, m := range matches {
		found, err := tree.Delete(m.rowid)
		if err != nil {
			return Result{}, err
		}
		if found {
			res.RowsAffected++
		}
	}
	return res, nil
}

func (d *DB) execSelect(st *SelectStmt, args []Value) (*Rows, error) {
	// Table-less SELECT evaluates expressions once.
	if st.Table == "" {
		env := &evalEnv{db: d, args: args}
		row := make([]Value, 0, len(st.Items))
		cols := make([]string, 0, len(st.Items))
		for i, item := range st.Items {
			if item.Star {
				return nil, fmt.Errorf("sqldb: SELECT * needs a table")
			}
			v, err := env.eval(item.Expr)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			cols = append(cols, itemName(item, i))
		}
		return &Rows{Columns: cols, Data: [][]Value{row}}, nil
	}
	cat, err := openCatalog(d.pager)
	if err != nil {
		return nil, err
	}
	meta, err := cat.lookup(st.Table)
	if err != nil {
		return nil, err
	}
	if meta == nil {
		return nil, fmt.Errorf("sqldb: no table %q", st.Table)
	}

	aggregate := false
	for _, item := range st.Items {
		if !item.Star && hasAggregate(item.Expr) {
			aggregate = true
		}
	}
	matches, err := d.scanTable(meta, st.Where, args)
	if err != nil {
		return nil, err
	}
	if aggregate {
		return d.aggregateSelect(st, meta, matches, args)
	}

	cols := make([]string, 0, len(st.Items))
	for i, item := range st.Items {
		if item.Star {
			for _, c := range meta.Cols {
				cols = append(cols, c.Name)
			}
		} else {
			cols = append(cols, itemName(item, i))
		}
	}
	env := &evalEnv{db: d, table: meta, args: args}
	type outRow struct {
		vals []Value
		keys []Value
	}
	rows := make([]outRow, 0, len(matches))
	for _, m := range matches {
		env.row, env.rowid = m.vals, m.rowid
		out := make([]Value, 0, len(cols))
		for _, item := range st.Items {
			if item.Star {
				for ci := range meta.Cols {
					if ci < len(m.vals) {
						out = append(out, m.vals[ci])
					} else {
						out = append(out, Null())
					}
				}
				continue
			}
			v, err := env.eval(item.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		var keys []Value
		for _, ob := range st.OrderBy {
			v, err := env.eval(ob.Expr)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		rows = append(rows, outRow{vals: out, keys: keys})
	}
	if len(st.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k, ob := range st.OrderBy {
				c := Compare(rows[i].keys[k], rows[j].keys[k])
				if c == 0 {
					continue
				}
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	data := make([][]Value, 0, len(rows))
	for _, r := range rows {
		data = append(data, r.vals)
	}
	if st.Limit != nil {
		env := &evalEnv{db: d, args: args}
		lv, err := env.eval(st.Limit)
		if err != nil {
			return nil, err
		}
		n := lv.AsInt()
		if n >= 0 && int64(len(data)) > n {
			data = data[:n]
		}
	}
	return &Rows{Columns: cols, Data: data}, nil
}

// aggregateSelect evaluates aggregate-only projections (no GROUP BY).
func (d *DB) aggregateSelect(st *SelectStmt, meta *TableMeta, matches []scanRow, args []Value) (*Rows, error) {
	cols := make([]string, 0, len(st.Items))
	out := make([]Value, 0, len(st.Items))
	env := &evalEnv{db: d, table: meta, args: args}
	for i, item := range st.Items {
		if item.Star {
			return nil, fmt.Errorf("sqldb: cannot mix * with aggregates")
		}
		call, ok := item.Expr.(*CallExpr)
		if !ok || !hasAggregate(item.Expr) {
			return nil, fmt.Errorf("sqldb: aggregate queries support only plain aggregate projections")
		}
		v, err := d.runAggregate(call, env, matches)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		cols = append(cols, itemName(item, i))
	}
	return &Rows{Columns: cols, Data: [][]Value{out}}, nil
}

func (d *DB) runAggregate(call *CallExpr, env *evalEnv, matches []scanRow) (Value, error) {
	if call.Name == "count" && call.Star {
		return Int(int64(len(matches))), nil
	}
	if len(call.Args) != 1 {
		return Value{}, fmt.Errorf("sqldb: %s() takes one argument", call.Name)
	}
	count := int64(0)
	var sum float64
	sumInt := int64(0)
	allInt := true
	var minV, maxV Value
	for _, m := range matches {
		env.row, env.rowid = m.vals, m.rowid
		v, err := env.eval(call.Args[0])
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		count++
		sum += v.AsReal()
		sumInt += v.AsInt()
		if v.T != TInt {
			allInt = false
		}
		if minV.IsNull() || Compare(v, minV) < 0 {
			minV = v
		}
		if maxV.IsNull() || Compare(v, maxV) > 0 {
			maxV = v
		}
	}
	switch call.Name {
	case "count":
		return Int(count), nil
	case "sum":
		if count == 0 {
			return Null(), nil
		}
		if allInt {
			return Int(sumInt), nil
		}
		return Real(sum), nil
	case "avg":
		if count == 0 {
			return Null(), nil
		}
		return Real(sum / float64(count)), nil
	case "min":
		return minV, nil
	case "max":
		return maxV, nil
	default:
		return Value{}, fmt.Errorf("sqldb: unknown aggregate %q", call.Name)
	}
}

func itemName(item SelectItem, i int) string {
	if item.As != "" {
		return item.As
	}
	if col, ok := item.Expr.(*ColumnExpr); ok {
		return col.Name
	}
	return fmt.Sprintf("col%d", i+1)
}
