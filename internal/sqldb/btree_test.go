package sqldb

import (
	"bytes"
	"fmt"
	"testing"
)

func testTree(t *testing.T) (*BTree, *Pager) {
	t.Helper()
	vfs := NewMemVFS()
	pager, err := OpenPager(vfs, "bt.db", false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pager.Close() })
	tree, err := CreateBTree(pager)
	if err != nil {
		t.Fatal(err)
	}
	return tree, pager
}

func TestBTreeBasicCRUD(t *testing.T) {
	tree, _ := testTree(t)
	if _, found, err := tree.Get(1); err != nil || found {
		t.Fatalf("empty tree Get: %v %v", found, err)
	}
	if err := tree.Insert(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tree.Get(1)
	if err != nil || !found || string(v) != "one" {
		t.Fatalf("%q %v %v", v, found, err)
	}
	// Replace in place.
	if err := tree.Insert(1, []byte("uno")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = tree.Get(1)
	if string(v) != "uno" {
		t.Fatalf("%q", v)
	}
	found, err = tree.Delete(1)
	if err != nil || !found {
		t.Fatalf("%v %v", found, err)
	}
	found, err = tree.Delete(1)
	if err != nil || found {
		t.Fatal("double delete must report not-found")
	}
	if _, found, _ := tree.Get(1); found {
		t.Fatal("deleted row still visible")
	}
}

func TestBTreeSequentialSplitChain(t *testing.T) {
	// Monotonic inserts with payloads large enough to force many leaf
	// splits and at least one interior split.
	tree, _ := testTree(t)
	payload := bytes.Repeat([]byte{7}, 900) // ~4 cells per page
	const n = 3000
	for i := int64(0); i < n; i++ {
		if err := tree.Insert(i, payload); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Every key readable.
	for _, k := range []int64{0, 1, n / 2, n - 2, n - 1} {
		if _, found, err := tree.Get(k); err != nil || !found {
			t.Fatalf("Get(%d): %v %v", k, found, err)
		}
	}
	// The cursor sees all keys in order across the leaf chain.
	count := int64(0)
	for cur := tree.First(); cur.Valid(); cur.Next() {
		if cur.RowID() != count {
			t.Fatalf("cursor at %d, want %d", cur.RowID(), count)
		}
		count++
	}
	if count != n {
		t.Fatalf("cursor saw %d rows, want %d", count, n)
	}
}

func TestBTreeReverseAndInterleavedInserts(t *testing.T) {
	tree, _ := testTree(t)
	payload := bytes.Repeat([]byte{1}, 500)
	// Reverse order stresses the left-edge split path.
	for i := int64(999); i >= 0; i-- {
		if err := tree.Insert(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave fresh keys between existing ones.
	for i := int64(0); i < 1000; i++ {
		if err := tree.Insert(10000+i*2, payload); err != nil {
			t.Fatal(err)
		}
	}
	prev := int64(-1)
	n := 0
	for cur := tree.First(); cur.Valid(); cur.Next() {
		if cur.RowID() <= prev {
			t.Fatalf("order violated: %d after %d", cur.RowID(), prev)
		}
		prev = cur.RowID()
		n++
	}
	if n != 2000 {
		t.Fatalf("saw %d rows, want 2000", n)
	}
}

func TestBTreeSeekGE(t *testing.T) {
	tree, _ := testTree(t)
	for _, k := range []int64{10, 20, 30, 40} {
		if err := tree.Insert(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		target int64
		want   int64
		valid  bool
	}{
		{5, 10, true}, {10, 10, true}, {11, 20, true}, {40, 40, true}, {41, 0, false},
	}
	for _, tt := range tests {
		cur := tree.SeekGE(tt.target)
		if cur.Valid() != tt.valid {
			t.Fatalf("SeekGE(%d).Valid() = %v", tt.target, cur.Valid())
		}
		if tt.valid && cur.RowID() != tt.want {
			t.Fatalf("SeekGE(%d) = %d, want %d", tt.target, cur.RowID(), tt.want)
		}
	}
}

func TestBTreeCursorSkipsEmptiedLeaves(t *testing.T) {
	tree, _ := testTree(t)
	payload := bytes.Repeat([]byte{2}, 800)
	for i := int64(0); i < 50; i++ {
		if err := tree.Insert(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Hollow out the middle.
	for i := int64(10); i < 40; i++ {
		if _, err := tree.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	for cur := tree.First(); cur.Valid(); cur.Next() {
		got = append(got, cur.RowID())
	}
	if len(got) != 20 || got[9] != 9 || got[10] != 40 {
		t.Fatalf("rows = %v", got)
	}
}

func TestBTreePayloadLimit(t *testing.T) {
	tree, _ := testTree(t)
	if err := tree.Insert(1, make([]byte, MaxPayload)); err != nil {
		t.Fatalf("max payload must fit: %v", err)
	}
	if err := tree.Insert(2, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload must be rejected")
	}
}

func TestBTreeManyTreesSharePager(t *testing.T) {
	_, pager := testTree(t)
	trees := make([]*BTree, 5)
	for i := range trees {
		tr, err := CreateBTree(pager)
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tr
	}
	for i, tr := range trees {
		for k := int64(0); k < 50; k++ {
			if err := tr.Insert(k, []byte(fmt.Sprintf("t%d-%d", i, k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, tr := range trees {
		v, found, err := tr.Get(25)
		if err != nil || !found || string(v) != fmt.Sprintf("t%d-25", i) {
			t.Fatalf("tree %d: %q %v %v", i, v, found, err)
		}
	}
}

func TestPagerFreelistReuse(t *testing.T) {
	vfs := NewMemVFS()
	pager, err := OpenPager(vfs, "fl.db", false)
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()
	a, err := pager.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pager.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	grown := pager.NumPages()
	if err := pager.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := pager.Free(b); err != nil {
		t.Fatal(err)
	}
	// LIFO reuse, no growth.
	c, err := pager.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	d, err := pager.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c != b || d != a {
		t.Fatalf("reuse order: got %d,%d want %d,%d", c, d, b, a)
	}
	if pager.NumPages() != grown {
		t.Fatalf("pages grew from %d to %d despite freelist", grown, pager.NumPages())
	}
	// Freshly allocated pages are zeroed.
	data, err := pager.Get(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, by := range data {
		if by != 0 {
			t.Fatal("recycled page must be zeroed")
		}
	}
}

func TestPagerTransactionGuards(t *testing.T) {
	vfs := NewMemVFS()
	pager, err := OpenPager(vfs, "tx.db", true)
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()
	if err := pager.Commit(); err != ErrNoTransaction {
		t.Fatalf("%v", err)
	}
	if err := pager.Rollback(); err != ErrNoTransaction {
		t.Fatalf("%v", err)
	}
	if err := pager.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := pager.Begin(); err != ErrInTransaction {
		t.Fatalf("%v", err)
	}
	if err := pager.Reload(); err != ErrInTransaction {
		t.Fatal("Reload inside a transaction must refuse")
	}
	if !pager.InTransaction() {
		t.Fatal("InTransaction")
	}
	if err := pager.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPagerRollbackRestoresAllocations(t *testing.T) {
	vfs := NewMemVFS()
	pager, err := OpenPager(vfs, "ra.db", true)
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()
	before := pager.NumPages()
	if err := pager.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := pager.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := pager.Rollback(); err != nil {
		t.Fatal(err)
	}
	if pager.NumPages() != before {
		t.Fatalf("pages = %d after rollback, want %d", pager.NumPages(), before)
	}
	// Header freelist must be back to its original state too: allocate
	// again and confirm the file grows from the same point.
	if err := pager.Begin(); err != nil {
		t.Fatal(err)
	}
	p, err := pager.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p != before+1 {
		t.Fatalf("allocation after rollback = %d, want %d", p, before+1)
	}
	if err := pager.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPagerSyncFailureAborts(t *testing.T) {
	vfs := NewMemVFS()
	pager, err := OpenPager(vfs, "sf.db", true)
	if err != nil {
		t.Fatal(err)
	}
	defer pager.Close()
	tree, err := CreateBTree(pager)
	if err != nil {
		t.Fatal(err)
	}
	// Committed baseline.
	if err := pager.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := pager.Commit(); err != nil {
		t.Fatal(err)
	}
	// Now make the next sync fail: the commit must abort and roll back.
	vfs.FailSyncAfter = int(vfs.syncs)
	if err := pager.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(2, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := pager.Commit(); err == nil {
		t.Fatal("commit with failing sync must error")
	}
	vfs.FailSyncAfter = -1
	if _, found, _ := tree.Get(2); found {
		t.Fatal("aborted commit must leave no trace")
	}
	if _, found, _ := tree.Get(1); !found {
		t.Fatal("earlier committed data must survive")
	}
}

func BenchmarkRowidPointQuery(b *testing.B) {
	vfs := NewMemVFS()
	db, err := Open(vfs, "pq.db", false)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (v TEXT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("BEGIN"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES ('row')"); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec("COMMIT"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Query("SELECT v FROM t WHERE rowid = ?", Int(int64(i%5000)+1))
		if err != nil || len(rows.Data) != 1 {
			b.Fatalf("%v %v", err, rows)
		}
	}
}
