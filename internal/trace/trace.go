// Package trace implements per-request lifecycle tracing: monotonic
// phase marks stamped at the existing pipeline chokepoints (client
// submit → ingress → agreement quorums → execution → reply), a bounded
// in-memory "flight recorder" of completed request timelines plus
// protocol events, and a slow-request log retaining outlier timelines
// verbatim with per-phase attribution.
//
// Requests are keyed by (clientID, timestamp) — the pair that already
// uniquely identifies a request on the wire — so tracing needs no wire
// change. A Recorder is per node (one per replica, or one per client);
// every method is safe for concurrent use from any goroutine. A nil
// *Recorder is the disabled state: call sites guard each stamp with one
// nil check and skip all work, so the disabled hot path costs nothing
// and allocates nothing.
//
// Memory is bounded by construction: a fixed-size active-slot table
// (collisions evict, counted), a fixed-size completed ring, a fixed-size
// protocol-event ring and a fixed-size slow log. The completed ring is
// lock-free for both writers and readers (atomic pointer slots over
// immutable published timelines); only the per-slot stamp path takes a
// narrow per-slot mutex.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase enumerates the request-lifecycle stamp points, in pipeline
// order. Client-side phases are stamped by the submitting client's
// recorder; the rest by each replica's. A timeline need not contain
// every phase: a backup that never saw the raw request has no ingress
// marks, a read-only request skips the quorum phases.
type Phase uint8

const (
	// ClientSubmit: the client assigned the request its timestamp.
	ClientSubmit Phase = iota
	// ClientSealed: the request envelope is sealed (MAC/signature done).
	ClientSealed
	// ClientFirstSend: the first transmission left the client.
	ClientFirstSend
	// IngressArrive: the datagram was pulled off the replica's transport.
	IngressArrive
	// VerifyDone: the ingress worker finished authentication + decode.
	VerifyDone
	// LoopDispatch: the protocol loop picked the request up.
	LoopDispatch
	// BatchEnqueue: the primary queued the request for proposal.
	BatchEnqueue
	// PrePrepareSent: the primary broadcast the pre-prepare covering it.
	PrePrepareSent
	// PrepareQuorum: the entry reached its 2f prepare certificate.
	PrepareQuorum
	// CommitQuorum: the entry reached its 2f+1 commit certificate.
	CommitQuorum
	// ExecSchedule: the operation was handed to the execution engine.
	ExecSchedule
	// ExecDone: Application.Execute returned (on the shard worker).
	ExecDone
	// ReplySealed: the reply envelope is sealed.
	ReplySealed
	// ReplySent: the reply left the replica. Finalizes replica timelines.
	ReplySent
	// ClientComplete: the client's reply quorum completed. Finalizes
	// client timelines.
	ClientComplete

	// NumPhases sizes per-timeline mark storage.
	NumPhases

	// EndToEnd is a synthetic phase reported to the Sink (first mark →
	// finalize mark). It is never stored in a timeline's mark array.
	EndToEnd = NumPhases
)

var phaseNames = [NumPhases + 1]string{
	"client_submit", "client_sealed", "client_first_send",
	"ingress_arrive", "verify_done", "loop_dispatch",
	"batch_enqueue", "preprepare_sent",
	"prepare_quorum", "commit_quorum",
	"exec_schedule", "exec_done",
	"reply_sealed", "reply_sent",
	"client_complete",
	"end_to_end",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Key identifies one request: the (clientID, timestamp) pair carried by
// the wire request, replies and batch entries.
type Key struct {
	Client    uint32
	Timestamp uint64
}

// Timeline is one request's recorded lifecycle on one node. Marks are
// nanoseconds since the recorder's base instant; zero means the phase
// was not observed. A timeline is mutable only while it occupies an
// active slot; once published to the completed ring it is immutable.
type Timeline struct {
	Key  Key
	Seq  uint64 // agreement slot, once known (0 before)
	View uint64 // view it committed in, once known

	Marks [NumPhases]int64
}

// First returns the earliest stamped mark (0 if none).
func (t *Timeline) First() int64 {
	for _, m := range t.Marks {
		if m != 0 {
			return m
		}
	}
	return 0
}

// Last returns the latest stamped mark (0 if none). Marks are stamped
// at monotonically later instants but may be recorded slightly out of
// order across goroutines, so scan rather than trust pipeline order.
func (t *Timeline) Last() int64 {
	var last int64
	for _, m := range t.Marks {
		if m > last {
			last = m
		}
	}
	return last
}

// EndToEnd returns last-first over the stamped marks.
func (t *Timeline) EndToEnd() time.Duration {
	f := t.First()
	if f == 0 {
		return 0
	}
	return time.Duration(t.Last() - f)
}

// Segment is the interval between two adjacent stamped marks,
// attributed to the later phase ("time spent reaching To").
type Segment struct {
	From, To Phase
	Dur      time.Duration
}

// Segments decomposes the timeline into adjacent-phase intervals in
// pipeline order, skipping unstamped phases. Negative intervals (marks
// recorded out of order across goroutines within clock resolution) are
// clamped to zero.
func (t *Timeline) Segments() []Segment {
	var out []Segment
	prev := Phase(0)
	havePrev := false
	for p := Phase(0); p < NumPhases; p++ {
		if t.Marks[p] == 0 {
			continue
		}
		if havePrev {
			d := time.Duration(t.Marks[p] - t.Marks[prev])
			if d < 0 {
				d = 0
			}
			out = append(out, Segment{From: prev, To: p, Dur: d})
		}
		prev, havePrev = p, true
	}
	return out
}

// EventKind enumerates protocol events the flight recorder keeps
// alongside request timelines.
type EventKind uint8

const (
	EvViewChangeStart EventKind = iota
	EvViewChangeInstall
	EvCheckpoint
	EvCheckpointStable
	EvStateTransferStart
	EvStateTransferFinish
	EvStateTransferAbort
	EvDropBadAuth
	EvDropMalformed
	EvDropIgnored
	numEventKinds
)

var eventNames = [numEventKinds]string{
	"view_change_start", "view_change_install",
	"checkpoint", "checkpoint_stable",
	"state_transfer_start", "state_transfer_finish", "state_transfer_abort",
	"drop_bad_auth", "drop_malformed", "drop_ignored",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one protocol event: a view change, checkpoint, state
// transfer transition, or an (adversary-triggered) ingress drop.
type Event struct {
	At   int64 // nanos since the recorder base
	Kind EventKind
	View uint64
	Seq  uint64
}

// Sink receives per-phase durations as timelines finalize. Implemented
// by pbft/metrics to feed the pbft_phase_seconds histograms. Called on
// whatever goroutine finalizes the request (reaper, shard worker, or
// client demux); implementations must be concurrency-safe and must not
// block.
type Sink interface {
	ObservePhase(replica uint32, phase Phase, d time.Duration)
}

// Config sizes a Recorder. Zero values take the defaults; sizes round
// up to powers of two.
type Config struct {
	Replica int // node id the Sink observations are labeled with

	Slots  int // active (in-flight) timeline table   (default 1024)
	Ring   int // completed-timeline ring             (default 256)
	Events int // protocol-event ring                 (default 256)

	SlowCap      int     // retained slow timelines             (default 32)
	SlowQuantile float64 // rolling threshold quantile          (default 0.99)

	Sink Sink // optional per-phase duration consumer
}

const (
	defaultSlots      = 1024
	defaultRing       = 256
	defaultEvents     = 256
	defaultSlowCap    = 32
	defaultSlowQ      = 0.99
	slowWindow        = 256 // rolling end-to-end sample window
	slowRecalcEvery   = 64  // threshold recomputation cadence
	slowMinSamples    = 64  // no slow verdicts before this many samples
	slowHardFloorNano = 1   // guards a degenerate all-zero window
)

// slot is one entry of the active-timeline table.
type slot struct {
	mu   sync.Mutex
	live bool
	key  Key
	tl   *Timeline
}

// Recorder is the per-node flight recorder. All methods are safe for
// concurrent use. The zero value is not usable; construct with New. A
// nil *Recorder is the disabled state — callers guard stamps with a nil
// check.
type Recorder struct {
	replica uint32
	base    time.Time
	sink    Sink

	slots    []slot
	slotMask uint64

	ring     []atomic.Pointer[Timeline]
	ringMask uint64
	ringHead atomic.Uint64 // total publishes; ring index = (head-1)&mask

	events    []atomic.Pointer[Event]
	eventMask uint64
	eventHead atomic.Uint64

	evicted   atomic.Uint64 // in-flight timelines lost to slot collisions
	completed atomic.Uint64 // total finalized timelines

	// Slow-request log: a rolling window of end-to-end latencies feeds a
	// quantile threshold; timelines exceeding it are retained verbatim.
	// Touched only on the finalize path, never per stamp.
	slowMu       sync.Mutex
	slowQ        float64
	window       [slowWindow]int64
	windowNext   int
	windowCount  int // total inserts, saturating at slowWindow for fill checks
	sinceRecalc  int
	threshold    int64 // 0 until enough samples
	slow         []*Timeline
	slowNext     int
	slowRetained uint64
}

func pow2(n, def int) int {
	if n <= 0 {
		n = def
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds a Recorder from cfg (zero fields take defaults).
func New(cfg Config) *Recorder {
	slots := pow2(cfg.Slots, defaultSlots)
	ring := pow2(cfg.Ring, defaultRing)
	events := pow2(cfg.Events, defaultEvents)
	slowCap := cfg.SlowCap
	if slowCap <= 0 {
		slowCap = defaultSlowCap
	}
	q := cfg.SlowQuantile
	if q <= 0 || q >= 1 {
		q = defaultSlowQ
	}
	return &Recorder{
		replica:   uint32(cfg.Replica),
		base:      time.Now(),
		sink:      cfg.Sink,
		slots:     make([]slot, slots),
		slotMask:  uint64(slots - 1),
		ring:      make([]atomic.Pointer[Timeline], ring),
		ringMask:  uint64(ring - 1),
		events:    make([]atomic.Pointer[Event], events),
		eventMask: uint64(events - 1),
		slowQ:     q,
		slow:      make([]*Timeline, slowCap),
	}
}

// Replica returns the node id the recorder labels Sink observations
// with.
func (r *Recorder) Replica() uint32 { return r.replica }

// Now returns the current mark value: nanoseconds since the recorder's
// base instant (monotonic).
func (r *Recorder) Now() int64 { return int64(time.Since(r.base)) }

func mix(k Key) uint64 {
	h := (uint64(k.Client)+1)*0x9E3779B97F4A7C15 ^ k.Timestamp
	h ^= h >> 33
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return h
}

// claimLocked returns the slot's timeline for key, evicting a colliding
// in-flight timeline if necessary. Caller holds s.mu.
func (r *Recorder) claimLocked(s *slot, key Key) *Timeline {
	if s.live && s.key == key {
		return s.tl
	}
	if s.live {
		r.evicted.Add(1)
	}
	s.live = true
	s.key = key
	s.tl = &Timeline{Key: key}
	return s.tl
}

// Stamp records phase p for the request now. The first stamp of a phase
// wins; re-stamps (retransmissions) are ignored.
func (r *Recorder) Stamp(client uint32, ts uint64, p Phase) {
	r.StampAt(client, ts, p, r.Now())
}

// StampAt records phase p at an explicit mark taken earlier with Now()
// (e.g. ingress arrival time captured before decode identified the
// request).
func (r *Recorder) StampAt(client uint32, ts uint64, p Phase, at int64) {
	key := Key{Client: client, Timestamp: ts}
	s := &r.slots[mix(key)&r.slotMask]
	s.mu.Lock()
	tl := r.claimLocked(s, key)
	if tl.Marks[p] == 0 {
		tl.Marks[p] = at
	}
	s.mu.Unlock()
}

// StampSeq records phase p and annotates the timeline with the
// agreement slot and view (first annotation wins).
func (r *Recorder) StampSeq(client uint32, ts uint64, p Phase, seq, view uint64) {
	at := r.Now()
	key := Key{Client: client, Timestamp: ts}
	s := &r.slots[mix(key)&r.slotMask]
	s.mu.Lock()
	tl := r.claimLocked(s, key)
	if tl.Marks[p] == 0 {
		tl.Marks[p] = at
	}
	if tl.Seq == 0 {
		tl.Seq = seq
		tl.View = view
	}
	s.mu.Unlock()
}

// Finish stamps the finalizing phase (ReplySent replica-side,
// ClientComplete client-side), publishes the completed timeline to the
// flight ring, feeds the Sink, and applies the slow-request check.
func (r *Recorder) Finish(client uint32, ts uint64, p Phase) {
	at := r.Now()
	key := Key{Client: client, Timestamp: ts}
	s := &r.slots[mix(key)&r.slotMask]
	s.mu.Lock()
	tl := r.claimLocked(s, key)
	if tl.Marks[p] == 0 {
		tl.Marks[p] = at
	}
	s.live = false
	s.tl = nil
	s.mu.Unlock()
	// tl is exclusively ours now: the slot no longer references it, and
	// every publish target treats it as immutable.
	r.publish(tl)
}

// publish makes a finalized (now immutable) timeline visible: completed
// ring, Sink, slow log.
func (r *Recorder) publish(tl *Timeline) {
	r.completed.Add(1)
	i := r.ringHead.Add(1) - 1
	r.ring[i&r.ringMask].Store(tl)

	e2e := tl.EndToEnd()
	if r.sink != nil {
		for _, seg := range tl.Segments() {
			r.sink.ObservePhase(r.replica, seg.To, seg.Dur)
		}
		if e2e > 0 {
			r.sink.ObservePhase(r.replica, EndToEnd, e2e)
		}
	}
	r.observeSlow(tl, int64(e2e))
}

// observeSlow maintains the rolling latency window + quantile threshold
// and retains outlier timelines. Finalize-path only.
func (r *Recorder) observeSlow(tl *Timeline, e2e int64) {
	if e2e <= 0 {
		return
	}
	r.slowMu.Lock()
	r.window[r.windowNext] = e2e
	r.windowNext = (r.windowNext + 1) % slowWindow
	if r.windowCount < slowWindow {
		r.windowCount++
	}
	r.sinceRecalc++
	if r.threshold == 0 && r.windowCount >= slowMinSamples ||
		r.sinceRecalc >= slowRecalcEvery && r.windowCount >= slowMinSamples {
		r.threshold = r.quantileLocked()
		r.sinceRecalc = 0
	}
	if r.threshold > 0 && e2e > r.threshold {
		r.slow[r.slowNext] = tl
		r.slowNext = (r.slowNext + 1) % len(r.slow)
		r.slowRetained++
	}
	r.slowMu.Unlock()
}

// quantileLocked computes the slow threshold from the filled window
// (insertion sort into a scratch copy — the window is small and the
// cadence amortizes it). Caller holds slowMu.
func (r *Recorder) quantileLocked() int64 {
	n := r.windowCount
	var scratch [slowWindow]int64
	copy(scratch[:n], r.window[:n])
	s := scratch[:n]
	for i := 1; i < n; i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
	idx := int(r.slowQ * float64(n-1))
	v := s[idx]
	if v < slowHardFloorNano {
		v = slowHardFloorNano
	}
	return v
}

// RecordEvent appends a protocol event to the flight recorder's event
// ring.
func (r *Recorder) RecordEvent(kind EventKind, view, seq uint64) {
	e := &Event{At: r.Now(), Kind: kind, View: view, Seq: seq}
	i := r.eventHead.Add(1) - 1
	r.events[i&r.eventMask].Store(e)
}

// Evicted returns how many in-flight timelines were lost to active-slot
// collisions.
func (r *Recorder) Evicted() uint64 { return r.evicted.Load() }

// Completed returns the total number of finalized timelines.
func (r *Recorder) Completed() uint64 { return r.completed.Load() }
