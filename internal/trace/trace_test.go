package trace

import (
	"sync"
	"testing"
	"time"
)

// stampAll drives one request through a canonical replica-side lifecycle.
func stampAll(r *Recorder, client uint32, ts uint64) {
	r.Stamp(client, ts, IngressArrive)
	r.Stamp(client, ts, VerifyDone)
	r.Stamp(client, ts, LoopDispatch)
	r.StampSeq(client, ts, PrepareQuorum, ts, 0)
	r.Stamp(client, ts, CommitQuorum)
	r.Stamp(client, ts, ExecSchedule)
	r.Stamp(client, ts, ExecDone)
	r.Stamp(client, ts, ReplySealed)
	r.Finish(client, ts, ReplySent)
}

func TestTimelinePhaseOrderAndSegments(t *testing.T) {
	r := New(Config{Replica: 3})
	stampAll(r, 7, 42)
	td, ok := r.Lookup(7, 42)
	if !ok {
		t.Fatal("completed timeline not in the flight ring")
	}
	if td.Client != 7 || td.Timestamp != 42 || td.Seq != 42 {
		t.Fatalf("bad identity: %+v", td)
	}
	if len(td.Phases) != 9 {
		t.Fatalf("expected 9 stamped phases, got %d: %+v", len(td.Phases), td.Phases)
	}
	var last int64
	for _, pm := range td.Phases {
		if pm.AtNs < last {
			t.Fatalf("marks not monotonic: %+v", td.Phases)
		}
		last = pm.AtNs
	}
	if len(td.Segments) != len(td.Phases)-1 {
		t.Fatalf("expected %d segments, got %d", len(td.Phases)-1, len(td.Segments))
	}
	if td.EndToEnd <= 0 {
		t.Fatal("end-to-end must be positive")
	}
}

func TestStampFirstWins(t *testing.T) {
	r := New(Config{})
	r.StampAt(1, 1, IngressArrive, 100)
	r.StampAt(1, 1, IngressArrive, 200) // retransmission re-stamp
	r.Finish(1, 1, ReplySent)
	td, ok := r.Lookup(1, 1)
	if !ok {
		t.Fatal("timeline missing")
	}
	if td.Phases[0].Phase != IngressArrive.String() || td.Phases[0].AtNs != 100 {
		t.Fatalf("first stamp must win: %+v", td.Phases)
	}
}

// TestRingWrapAround churns more requests than the completed ring holds
// and asserts only the newest survive while the totals keep counting.
func TestRingWrapAround(t *testing.T) {
	const ringSize = 16
	r := New(Config{Ring: ringSize})
	const total = 5 * ringSize
	for ts := uint64(1); ts <= total; ts++ {
		stampAll(r, 1, ts)
	}
	if got := r.Completed(); got != total {
		t.Fatalf("completed total = %d, want %d", got, total)
	}
	d := r.Dump()
	if len(d.Completed) != ringSize {
		t.Fatalf("ring holds %d, want %d", len(d.Completed), ringSize)
	}
	for _, td := range d.Completed {
		if td.Timestamp <= total-ringSize {
			t.Fatalf("ring retained an overwritten timeline: ts=%d", td.Timestamp)
		}
	}
	if _, ok := r.Lookup(1, 1); ok {
		t.Fatal("oldest timeline must have been overwritten")
	}
	if _, ok := r.Lookup(1, total); !ok {
		t.Fatal("newest timeline must be present")
	}
}

// TestConcurrentStampDump hammers the recorder from stamping,
// event-recording and dumping goroutines at once; run under -race this
// is the memory-safety proof for dump-under-load.
func TestConcurrentStampDump(t *testing.T) {
	r := New(Config{Slots: 64, Ring: 32, Events: 32})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for ts := uint64(1); ts <= 500; ts++ {
				stampAll(r, uint32(g), ts)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < 500; i++ {
			r.RecordEvent(EvCheckpoint, 0, i)
		}
	}()
	var dumps sync.WaitGroup
	dumps.Add(1)
	go func() {
		defer dumps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := r.Dump()
			for _, td := range d.Completed {
				if len(td.Phases) == 0 {
					t.Error("published timeline with no phases")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	dumps.Wait()
	if got := r.Completed(); got != 4*500 {
		t.Fatalf("completed = %d, want %d", got, 4*500)
	}
}

// TestSlotCollisionEvicts forces two live keys into the same slot (one
// slot table) and asserts the collision is counted, not corrupted.
func TestSlotCollisionEvicts(t *testing.T) {
	r := New(Config{Slots: 1})
	r.Stamp(1, 1, IngressArrive)
	r.Stamp(2, 2, IngressArrive) // evicts (1,1)
	if got := r.Evicted(); got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	r.Finish(2, 2, ReplySent)
	if _, ok := r.Lookup(2, 2); !ok {
		t.Fatal("surviving timeline must finalize normally")
	}
}

// TestSlowLogRetainsOutliers feeds a uniform latency population plus a
// handful of large outliers and asserts the rolling-quantile slow log
// catches the outliers (and only plausibly slow timelines).
func TestSlowLogRetainsOutliers(t *testing.T) {
	r := New(Config{SlowQuantile: 0.9, SlowCap: 8})
	mkTimeline := func(ts uint64, e2e int64) *Timeline {
		tl := &Timeline{Key: Key{Client: 1, Timestamp: ts}}
		tl.Marks[IngressArrive] = 1000
		tl.Marks[ReplySent] = 1000 + e2e
		return tl
	}
	// Build the baseline window.
	for ts := uint64(1); ts <= 200; ts++ {
		r.publish(mkTimeline(ts, int64(time.Millisecond)))
	}
	// Outliers: 100x the baseline.
	for ts := uint64(1000); ts < 1004; ts++ {
		r.publish(mkTimeline(ts, int64(100*time.Millisecond)))
	}
	d := r.Dump()
	if d.SlowThresholdNs <= 0 {
		t.Fatal("threshold never established")
	}
	found := 0
	for _, td := range d.Slow {
		if td.Timestamp >= 1000 {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("slow log retained %d/4 outliers: %+v", found, d.Slow)
	}
}

func TestEventRingWrap(t *testing.T) {
	r := New(Config{Events: 8})
	for i := uint64(0); i < 20; i++ {
		r.RecordEvent(EvViewChangeInstall, i, 0)
	}
	d := r.Dump()
	if len(d.Events) != 8 {
		t.Fatalf("event ring holds %d, want 8", len(d.Events))
	}
	if d.Events[len(d.Events)-1].View != 19 {
		t.Fatalf("newest event missing: %+v", d.Events)
	}
}

func TestPhaseNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p <= EndToEnd; p++ {
		n := p.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("bad phase name for %d: %q", p, n)
		}
		seen[n] = true
	}
}
