package trace

import "time"

// Dump is a point-in-time snapshot of a Recorder, shaped for JSON
// exposition (the /debug/flight endpoint and Replica.FlightDump).
// Completed and Slow are ordered oldest → newest; mark and event
// offsets are nanoseconds since WallBase.
type Dump struct {
	Replica  uint32    `json:"replica"`
	WallBase time.Time `json:"wall_base"`

	Completed []TimelineDump `json:"completed"`
	Slow      []TimelineDump `json:"slow"`
	Events    []EventDump    `json:"events"`

	CompletedTotal  uint64 `json:"completed_total"`
	SlowRetained    uint64 `json:"slow_retained"`
	Evicted         uint64 `json:"evicted"`
	SlowThresholdNs int64  `json:"slow_threshold_ns"`
}

// TimelineDump is one request timeline in exposition form: stamped
// phases in pipeline order plus the adjacent-phase attribution.
type TimelineDump struct {
	Client    uint32        `json:"client"`
	Timestamp uint64        `json:"timestamp"`
	Seq       uint64        `json:"seq,omitempty"`
	View      uint64        `json:"view,omitempty"`
	Phases    []PhaseMark   `json:"phases"`
	Segments  []SegmentDump `json:"segments,omitempty"`
	EndToEnd  int64         `json:"end_to_end_ns"`
}

// PhaseMark is one stamped phase.
type PhaseMark struct {
	Phase string `json:"phase"`
	AtNs  int64  `json:"at_ns"`
}

// SegmentDump attributes an interval to the phase that ended it.
type SegmentDump struct {
	Phase string `json:"phase"`
	DurNs int64  `json:"dur_ns"`
}

// EventDump is one protocol event in exposition form.
type EventDump struct {
	Kind string `json:"kind"`
	AtNs int64  `json:"at_ns"`
	View uint64 `json:"view,omitempty"`
	Seq  uint64 `json:"seq,omitempty"`
}

func dumpTimeline(tl *Timeline) TimelineDump {
	d := TimelineDump{
		Client:    tl.Key.Client,
		Timestamp: tl.Key.Timestamp,
		Seq:       tl.Seq,
		View:      tl.View,
		EndToEnd:  int64(tl.EndToEnd()),
	}
	for p := Phase(0); p < NumPhases; p++ {
		if tl.Marks[p] != 0 {
			d.Phases = append(d.Phases, PhaseMark{Phase: p.String(), AtNs: tl.Marks[p]})
		}
	}
	for _, seg := range tl.Segments() {
		d.Segments = append(d.Segments, SegmentDump{Phase: seg.To.String(), DurNs: int64(seg.Dur)})
	}
	return d
}

// Dump snapshots the recorder. It is safe to call concurrently with
// stamping: published timelines are immutable and the rings are read
// through atomic pointers, so a dump under load is a loose but
// memory-safe snapshot.
func (r *Recorder) Dump() Dump {
	d := Dump{
		Replica:        r.replica,
		WallBase:       r.base,
		CompletedTotal: r.completed.Load(),
		Evicted:        r.evicted.Load(),
	}

	head := r.ringHead.Load()
	n := uint64(len(r.ring))
	if head < n {
		n = head
	}
	for i := head - n; i < head; i++ {
		if tl := r.ring[i&r.ringMask].Load(); tl != nil {
			d.Completed = append(d.Completed, dumpTimeline(tl))
		}
	}

	ehead := r.eventHead.Load()
	en := uint64(len(r.events))
	if ehead < en {
		en = ehead
	}
	for i := ehead - en; i < ehead; i++ {
		if e := r.events[i&r.eventMask].Load(); e != nil {
			d.Events = append(d.Events, EventDump{Kind: e.Kind.String(), AtNs: e.At, View: e.View, Seq: e.Seq})
		}
	}

	r.slowMu.Lock()
	d.SlowRetained = r.slowRetained
	d.SlowThresholdNs = r.threshold
	// Oldest → newest: slowNext points at the oldest retained entry once
	// the ring has wrapped.
	for i := 0; i < len(r.slow); i++ {
		if tl := r.slow[(r.slowNext+i)%len(r.slow)]; tl != nil {
			d.Slow = append(d.Slow, dumpTimeline(tl))
		}
	}
	r.slowMu.Unlock()
	return d
}

// Lookup returns the completed timeline for a request if it is still in
// the flight ring (newest match wins), in exposition form.
func (r *Recorder) Lookup(client uint32, ts uint64) (TimelineDump, bool) {
	head := r.ringHead.Load()
	n := uint64(len(r.ring))
	if head < n {
		n = head
	}
	for i := head; i > head-n; i-- {
		tl := r.ring[(i-1)&r.ringMask].Load()
		if tl != nil && tl.Key.Client == client && tl.Key.Timestamp == ts {
			return dumpTimeline(tl), true
		}
	}
	return TimelineDump{}, false
}
