// Package partition runs N independent PBFT replica groups behind a
// single routing layer, each group owning a static slice of a 64-bit
// key-hash ring. It is the horizontal-scale answer to the paper's
// single-group throughput ceiling: one ordering pipeline per group, no
// shared state between groups, and a deterministic key→group mapping in
// front.
//
// # The partition contract
//
// Routing reuses the Sharder conflict keysets the execution engine
// already understands (core.Sharder.Keys): an operation whose keyset
// hashes entirely into one group's range is ordered by that group and is
// linearizable against every other operation routed there. Operations
// with no keyset (barriers) and — under the default policy — operations
// whose keyset spans several groups are ordered by a deterministic home
// group instead; RejectCrossGroup switches the router to fail them with
// a typed *CrossGroupError so callers can split the operation or fan
// out.
//
// Linearizability therefore stops at the group boundary: there is no
// cross-group ordering, no cross-group transaction, and a multi-group
// read fan-out observes each group at an independent point in its
// history. Data placement follows the keyset, so a correct deployment
// keys every operation on state it actually touches (the sqlstate
// adapter, for example, places whole tables: every statement naming
// table T routes to T's owner).
//
// # Partition-table versioning
//
// The Map is a versioned value: Version names the epoch of the Bounds
// layout, and the binary Marshal form is deterministic, so a later
// change can carry the table itself as a replicated object (installed
// via the existing membership machinery) without changing any caller —
// routers compare versions, not pointer identity. This change ships
// static tables only: every participant is provisioned with the same
// Map at startup.
package partition

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/exec"
)

// Map is the versioned partition table: group g owns the hash range
// [Bounds[g], Bounds[g+1]) on the 64-bit ring (the last group's range is
// unbounded above). Keys are placed by exec.Hash64 — the same function
// the execution engine uses for its slot hashing — so placement is a
// pure function of the key bytes and the table, stable across restarts
// and across processes.
type Map struct {
	// Version names the epoch of this layout. Static deployments use
	// version 1; a future replicated table bumps it on every change.
	Version uint64
	// Bounds holds one inclusive lower bound per group, strictly
	// increasing, with Bounds[0] == 0 so the table covers the whole
	// ring.
	Bounds []uint64
}

// Uniform builds a version-1 table splitting the ring evenly across
// groups.
func Uniform(groups int) *Map {
	if groups < 1 {
		groups = 1
	}
	m := &Map{Version: 1, Bounds: make([]uint64, groups)}
	stride := ^uint64(0) / uint64(groups)
	for g := 1; g < groups; g++ {
		m.Bounds[g] = uint64(g) * stride
	}
	return m
}

// Groups returns the number of groups in the table.
func (m *Map) Groups() int { return len(m.Bounds) }

// Validate checks the table invariants.
func (m *Map) Validate() error {
	if len(m.Bounds) == 0 {
		return errors.New("partition: empty map")
	}
	if m.Bounds[0] != 0 {
		return fmt.Errorf("partition: map must cover the ring from 0, starts at %d", m.Bounds[0])
	}
	for g := 1; g < len(m.Bounds); g++ {
		if m.Bounds[g] <= m.Bounds[g-1] {
			return fmt.Errorf("partition: bounds not strictly increasing at group %d", g)
		}
	}
	return nil
}

// mix64 is the MurmurHash3 finalizer. FNV-1a's high bits are poorly
// distributed on short keys, and range partitioning buckets by the high
// bits; the avalanche pass spreads short sequential keys evenly across
// uniform ranges. Deterministic, so placement stays a pure function of
// the key bytes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// GroupOfKey returns the group owning key's hash.
func (m *Map) GroupOfKey(key []byte) int {
	h := mix64(exec.Hash64(key))
	// Binary search for the last bound at or below h.
	lo, hi := 0, len(m.Bounds)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.Bounds[mid] <= h {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Marshal renders the table in its deterministic binary form (the shape
// a future replicated table ships over the wire): version, group count,
// then the bounds, all big-endian.
func (m *Map) Marshal() []byte {
	out := make([]byte, 12+8*len(m.Bounds))
	binary.BigEndian.PutUint64(out, m.Version)
	binary.BigEndian.PutUint32(out[8:], uint32(len(m.Bounds)))
	for i, b := range m.Bounds {
		binary.BigEndian.PutUint64(out[12+8*i:], b)
	}
	return out
}

// UnmarshalMap parses and validates a Marshal-ed table.
func UnmarshalMap(b []byte) (*Map, error) {
	if len(b) < 12 {
		return nil, errors.New("partition: short map")
	}
	n := binary.BigEndian.Uint32(b[8:])
	if uint64(len(b)) != 12+8*uint64(n) {
		return nil, errors.New("partition: map length mismatch")
	}
	m := &Map{Version: binary.BigEndian.Uint64(b), Bounds: make([]uint64, n)}
	for i := range m.Bounds {
		m.Bounds[i] = binary.BigEndian.Uint64(b[12+8*i:])
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
