package partition

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// syntheticKeys treats the op as a comma-separated key list. Enough to
// steer Spread in unit tests.
func syntheticKeys(op []byte) [][]byte {
	if len(op) == 0 {
		return nil
	}
	return bytes.Split(op, []byte(","))
}

func TestUniformMapCoversRing(t *testing.T) {
	for _, groups := range []int{1, 2, 3, 4, 7, 16} {
		m := Uniform(groups)
		if err := m.Validate(); err != nil {
			t.Fatalf("Uniform(%d): %v", groups, err)
		}
		if m.Groups() != groups {
			t.Fatalf("Uniform(%d): %d groups", groups, m.Groups())
		}
		counts := make([]int, groups)
		for i := 0; i < 4096; i++ {
			g := m.GroupOfKey([]byte(fmt.Sprintf("key-%d", i)))
			if g < 0 || g >= groups {
				t.Fatalf("GroupOfKey out of range: %d", g)
			}
			counts[g]++
		}
		for g, n := range counts {
			if groups > 1 && n == 0 {
				t.Fatalf("Uniform(%d): group %d owns no keys of 4096", groups, g)
			}
		}
	}
}

// TestMappingStableAcrossRestart is the router-restart stability check:
// a router rebuilt from the marshalled table places every key on the
// same group as the original.
func TestMappingStableAcrossRestart(t *testing.T) {
	m := Uniform(4)
	r1, err := NewRouter(m, syntheticKeys)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := UnmarshalMap(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != m.Version {
		t.Fatalf("version changed across marshal: %d != %d", m2.Version, m.Version)
	}
	r2, err := NewRouter(m2, syntheticKeys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		op := []byte{byte(i), byte(i >> 3)}
		g1, err1 := r1.Route(op)
		g2, err2 := r2.Route(op)
		if err1 != nil || err2 != nil {
			t.Fatalf("route errors: %v / %v", err1, err2)
		}
		if g1 != g2 {
			t.Fatalf("op %v moved: group %d before restart, %d after", op, g1, g2)
		}
	}
}

func TestSpreadAndRoutePolicies(t *testing.T) {
	m := Uniform(4)
	// Pick two keys owned by different groups.
	a := []byte("k0")
	ga := m.GroupOfKey(a)
	var b []byte
	for i := 1; i < 4096; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if m.GroupOfKey(k) != ga {
			b = k
			break
		}
	}
	if b == nil {
		t.Fatal("could not find keys in two distinct groups")
	}
	cross := append(append(append([]byte{}, a...), ','), b...)

	r, err := NewRouter(m, syntheticKeys, WithHomeGroup(2))
	if err != nil {
		t.Fatal(err)
	}
	// Single-key op routes to its owner, not home.
	if g, err := r.Route(a); err != nil || g != ga {
		t.Fatalf("single-key route: g=%d err=%v", g, err)
	}
	// Cross-group op falls back to home under the default policy.
	if g, err := r.Route(cross); err != nil || g != 2 {
		t.Fatalf("cross-group route: g=%d err=%v, want home=2", g, err)
	}
	// Unkeyed op falls back to home.
	if g, err := r.Route(nil); err != nil || g != 2 {
		t.Fatalf("unkeyed route: g=%d err=%v, want home=2", g, err)
	}
	// Spread reports both owners, ascending and deduplicated.
	spread := r.Spread(append(append([]byte{}, cross...), append([]byte{','}, a...)...))
	if len(spread) != 2 || spread[0] >= spread[1] {
		t.Fatalf("spread = %v, want two ascending groups", spread)
	}

	// Reject policy: cross-group and unkeyed ops fail typed.
	rr, err := NewRouter(m, syntheticKeys, RejectCrossGroup())
	if err != nil {
		t.Fatal(err)
	}
	_, err = rr.Route(cross)
	if !errors.Is(err, ErrCrossGroup) {
		t.Fatalf("cross-group under reject: err=%v, want ErrCrossGroup", err)
	}
	var cge *CrossGroupError
	if !errors.As(err, &cge) || len(cge.Groups) != 2 {
		t.Fatalf("cross-group error detail: %#v", err)
	}
	if _, err := rr.Route(nil); !errors.Is(err, ErrCrossGroup) {
		t.Fatalf("unkeyed under reject: err=%v, want ErrCrossGroup", err)
	}
	// Spread still works under reject (read fan-out stays available).
	if got := rr.Spread(cross); len(got) != 2 {
		t.Fatalf("spread under reject = %v", got)
	}
}

func TestMapValidation(t *testing.T) {
	cases := []struct {
		name string
		m    *Map
	}{
		{"empty", &Map{Version: 1}},
		{"hole-at-zero", &Map{Version: 1, Bounds: []uint64{10, 20}}},
		{"non-increasing", &Map{Version: 1, Bounds: []uint64{0, 20, 20}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid map", tc.name)
		}
	}
	if _, err := UnmarshalMap([]byte{1, 2, 3}); err == nil {
		t.Error("UnmarshalMap accepted short input")
	}
	bad := (&Map{Version: 1, Bounds: []uint64{5, 9}}).Marshal()
	if _, err := UnmarshalMap(bad); err == nil {
		t.Error("UnmarshalMap accepted invalid bounds")
	}
	if _, err := NewRouter(Uniform(2), nil, WithHomeGroup(7)); err == nil {
		t.Error("NewRouter accepted out-of-range home group")
	}
}
