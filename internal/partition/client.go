package partition

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/client"
)

// Client is the partition-aware counterpart of client.Client: it holds
// one pipelined session per group and routes every operation through a
// Router. Sessions are independent PBFT clients — each carries its own
// identity inside its group, its own pipeline window, and its own retry
// machinery — so a slow group never blocks traffic bound elsewhere.
type Client struct {
	router   *Router
	sessions []*client.Client
}

// NewClient wraps one session per group behind router. sessions[g] must
// be a client of group g's deployment; the constructor only checks the
// count (group membership is not observable from here).
func NewClient(router *Router, sessions []*client.Client) (*Client, error) {
	if len(sessions) != router.Groups() {
		return nil, fmt.Errorf("partition: %d sessions for %d groups", len(sessions), router.Groups())
	}
	return &Client{router: router, sessions: sessions}, nil
}

// Router returns the routing layer, e.g. to inspect placement.
func (c *Client) Router() *Router { return c.router }

// Session returns the underlying per-group session, for callers that
// already know the group (tests, fan-in tooling).
func (c *Client) Session(g int) *client.Client { return c.sessions[g] }

// Invoke routes op to its owning group and executes it there.
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	g, err := c.router.Route(op)
	if err != nil {
		return nil, err
	}
	return c.sessions[g].Invoke(ctx, op)
}

// InvokeReadOnly routes op to its owning group and executes it on the
// optimized read-only path. The result is linearizable only within that
// group's history.
func (c *Client) InvokeReadOnly(ctx context.Context, op []byte) ([]byte, error) {
	g, err := c.router.Route(op)
	if err != nil {
		return nil, err
	}
	return c.sessions[g].InvokeReadOnly(ctx, op)
}

// Submit routes op and submits it asynchronously on the owning group's
// session, returning the in-flight call.
func (c *Client) Submit(ctx context.Context, op []byte, opts ...client.CallOption) (*client.Call, error) {
	g, err := c.router.Route(op)
	if err != nil {
		return nil, err
	}
	return c.sessions[g].Submit(ctx, op, opts...), nil
}

// FanOutReadOnly runs op as a read-only request on every group its
// keyset touches — all groups when the operation is unkeyed — and
// returns the per-group results indexed by position in Groups order.
// Each group answers at an independent point in its own history; the
// fan-out is NOT a snapshot (see the package contract).
func (c *Client) FanOutReadOnly(ctx context.Context, op []byte) ([]GroupResult, error) {
	groups := c.router.Spread(op)
	if len(groups) == 0 {
		groups = make([]int, c.router.Groups())
		for g := range groups {
			groups[g] = g
		}
	}
	out := make([]GroupResult, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i, g int) {
			defer wg.Done()
			resp, err := c.sessions[g].InvokeReadOnly(ctx, op)
			out[i] = GroupResult{Group: g, Resp: resp, Err: err}
		}(i, g)
	}
	wg.Wait()
	var firstErr error
	for _, r := range out {
		if r.Err != nil {
			firstErr = fmt.Errorf("partition: group %d: %w", r.Group, r.Err)
			break
		}
	}
	return out, firstErr
}

// GroupResult is one group's answer to a fan-out read.
type GroupResult struct {
	Group int
	Resp  []byte
	Err   error
}

// Close closes every per-group session, returning the first error.
func (c *Client) Close() error {
	var first error
	for _, s := range c.sessions {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
