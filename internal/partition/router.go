package partition

import (
	"errors"
	"fmt"
	"sort"
)

// KeysFunc extracts the placement keyset of an operation. It is the same
// shape as core.Sharder.Keys: nil means "no keys" (the operation is a
// barrier at the execution layer and routes to the home group here).
type KeysFunc func(op []byte) [][]byte

// ErrCrossGroup is the sentinel matched by errors.Is for operations a
// RejectCrossGroup router refuses to place.
var ErrCrossGroup = errors.New("partition: operation spans groups")

// CrossGroupError reports an operation whose keyset does not resolve to
// exactly one group under the reject policy. Groups lists the distinct
// owning groups (empty for unkeyed operations).
type CrossGroupError struct {
	// Groups owning the operation's keys, ascending; empty when the
	// operation carried no keys at all.
	Groups []int
}

func (e *CrossGroupError) Error() string {
	if len(e.Groups) == 0 {
		return "partition: unkeyed operation has no owning group"
	}
	return fmt.Sprintf("partition: operation spans groups %v", e.Groups)
}

func (e *CrossGroupError) Is(target error) bool { return target == ErrCrossGroup }

// Router maps operations onto groups through a Map and a KeysFunc. It is
// immutable after construction: rebuilding a router from the same
// (marshalled) Map and the same KeysFunc yields identical placement,
// which is what makes restarts and multi-process deployments agree.
type Router struct {
	m           *Map
	keys        KeysFunc
	home        int
	rejectCross bool
}

// RouterOption configures a Router.
type RouterOption func(*Router)

// WithHomeGroup sets the group that receives unkeyed and (under the
// default policy) cross-group operations. Default 0.
func WithHomeGroup(g int) RouterOption {
	return func(r *Router) { r.home = g }
}

// RejectCrossGroup makes Route fail unkeyed and multi-group operations
// with a *CrossGroupError instead of falling back to the home group.
// Spread is unaffected: read fan-out remains available under either
// policy.
func RejectCrossGroup() RouterOption {
	return func(r *Router) { r.rejectCross = true }
}

// NewRouter builds a router over m. keys may be nil, in which case every
// operation is unkeyed and routes to the home group (or is rejected).
func NewRouter(m *Map, keys KeysFunc, opts ...RouterOption) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	r := &Router{m: m, keys: keys}
	for _, o := range opts {
		o(r)
	}
	if r.home < 0 || r.home >= m.Groups() {
		return nil, fmt.Errorf("partition: home group %d out of range [0,%d)", r.home, m.Groups())
	}
	return r, nil
}

// Map returns the router's partition table.
func (r *Router) Map() *Map { return r.m }

// Groups returns the number of groups routed over.
func (r *Router) Groups() int { return r.m.Groups() }

// Route returns the single group that must order op. Single-group
// keysets route directly; unkeyed and cross-group operations go to the
// home group, or fail with *CrossGroupError under RejectCrossGroup.
func (r *Router) Route(op []byte) (int, error) {
	groups := r.Spread(op)
	switch len(groups) {
	case 1:
		return groups[0], nil
	case 0:
		if r.rejectCross {
			return 0, &CrossGroupError{}
		}
		return r.home, nil
	default:
		if r.rejectCross {
			return 0, &CrossGroupError{Groups: groups}
		}
		return r.home, nil
	}
}

// Spread returns the distinct groups owning op's keys, ascending. An
// unkeyed operation returns nil: the caller decides whether that means
// "home group" (Route's default) or "every group" (read fan-out).
func (r *Router) Spread(op []byte) []int {
	if r.keys == nil {
		return nil
	}
	ks := r.keys(op)
	if len(ks) == 0 {
		return nil
	}
	seen := make(map[int]struct{}, len(ks))
	groups := make([]int, 0, len(ks))
	for _, k := range ks {
		g := r.m.GroupOfKey(k)
		if _, dup := seen[g]; dup {
			continue
		}
		seen[g] = struct{}{}
		groups = append(groups, g)
	}
	sort.Ints(groups)
	return groups
}
