package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed endpoint or network.
var ErrClosed = errors.New("transport: closed")

// Faults describes the failure behaviour of a link (or of the whole network
// when set as the default). The zero value is a perfect link.
type Faults struct {
	// LossRate is the probability in [0,1] that a packet is dropped.
	LossRate float64
	// DuplicateRate is the probability in [0,1] that a packet is
	// delivered twice.
	DuplicateRate float64
	// ReorderRate is the probability in [0,1] that a packet is held back
	// long enough for packets sent after it to overtake it (delivered,
	// but out of order — the UDP reordering the dedup paths must mask).
	ReorderRate float64
	// ReorderDelay is how long a reordered packet is held
	// (0 = defaultReorderDelay). It adds on top of Delay/Jitter.
	ReorderDelay time.Duration
	// Delay delivers packets after a fixed latency (for WAN emulation).
	Delay time.Duration
	// Jitter adds a uniformly random extra latency in [0,Jitter).
	Jitter time.Duration
	// Partitioned drops every packet on the link. Setting it on a single
	// direction via SetLinkFaults models an asymmetric partition: the
	// victim keeps transmitting but hears nothing back.
	Partitioned bool
}

// defaultReorderDelay holds a reordered packet long enough that traffic
// sent after it (delivered inline, sub-timer-resolution) overtakes it.
const defaultReorderDelay = 2 * time.Millisecond

// Stats counts traffic through the network; the WAN experiment (§3.3.3)
// uses it to demonstrate PBFT's quadratic message complexity.
type Stats struct {
	Packets uint64
	Bytes   uint64
	// Dropped counts every lost packet regardless of cause — unknown
	// destination, fault-injected loss, partition, or receive-buffer
	// overflow. All paths funnel through one accounting helper
	// (dropLocked), so the causes cannot double- or under-count.
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
}

// LinkStats counts per-directed-link outcomes; the chaos scenarios assert
// on them (a partitioned link must show drops, a reordering link must
// show holds) without inferring link behaviour from global totals.
type LinkStats struct {
	Packets    uint64
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
}

type linkKey struct{ from, to string }

// Network is an in-memory datagram network. Endpoints attach by address;
// links can be given independent fault behaviour at runtime.
type Network struct {
	mu        sync.Mutex
	endpoints map[string]*MemConn
	links     map[linkKey]Faults
	def       Faults
	rng       *rand.Rand
	stats     Stats
	linkStats map[linkKey]*LinkStats
	wg        sync.WaitGroup
	closed    bool

	// bandwidth models per-node egress serialization (bytes/second);
	// 0 means infinite. egressFree tracks when each sender's "NIC"
	// frees up, so back-to-back packets queue like on a real link —
	// this is what makes the paper's big-request optimization (§2.1)
	// measurable: it moves body bytes off the primary's egress.
	bandwidth  float64
	egressFree map[string]time.Time
}

// SetBandwidth models each node's egress link speed in bytes per second
// (0 = infinite). The paper's testbed was 1 GbE measured at 938 Mbit/s.
func (n *Network) SetBandwidth(bytesPerSec float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bandwidth = bytesPerSec
	n.egressFree = make(map[string]time.Time)
}

// NewNetwork creates an in-memory network. The seed makes loss and jitter
// reproducible.
func NewNetwork(seed int64) *Network {
	return &Network{
		endpoints: make(map[string]*MemConn),
		links:     make(map[linkKey]Faults),
		linkStats: make(map[linkKey]*LinkStats),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// recvBuffer is the per-endpoint inbound queue length. Packets arriving at
// a full queue are dropped, mirroring a UDP socket buffer overflow — the
// exact failure mode the paper observed on the loop-back interface (§2.4).
const recvBuffer = 8192

// Listen attaches a new endpoint at addr.
func (n *Network) Listen(addr string) (*MemConn, error) {
	return n.ListenBuffered(addr, recvBuffer)
}

// ListenBuffered attaches a new endpoint with an explicit inbound queue
// length (depth <= 0 means the default recvBuffer). Channel buffers
// allocate eagerly, so a swarm of thousands of client endpoints would pay
// recvBuffer slots each; clients expect at most a few replies per in-flight
// request and get by with a tiny queue, while replicas keep the full
// socket-buffer-sized one.
func (n *Network) ListenBuffered(addr string, depth int) (*MemConn, error) {
	if depth <= 0 {
		depth = recvBuffer
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	c := &MemConn{
		net:  n,
		addr: addr,
		ch:   make(chan Packet, depth),
	}
	n.endpoints[addr] = c
	return c, nil
}

// SetDefaultFaults sets the behaviour of every link without an explicit
// override.
func (n *Network) SetDefaultFaults(f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = f
}

// SetLinkFaults overrides the behaviour of the directed link from → to.
func (n *Network) SetLinkFaults(from, to string, f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = f
}

// ClearLinkFaults removes a per-link override.
func (n *Network) ClearLinkFaults(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, linkKey{from, to})
}

// Isolate partitions a node away from everyone (both directions).
func (n *Network) Isolate(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for a := range n.endpoints {
		if a == addr {
			continue
		}
		n.links[linkKey{addr, a}] = Faults{Partitioned: true}
		n.links[linkKey{a, addr}] = Faults{Partitioned: true}
	}
}

// Heal removes all per-link overrides involving addr.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k := range n.links {
		if k.from == addr || k.to == addr {
			delete(n.links, k)
		}
	}
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// LinkStats returns the counters of the directed link from → to.
func (n *Network) LinkStats(from, to string) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ls := n.linkStats[linkKey{from, to}]; ls != nil {
		return *ls
	}
	return LinkStats{}
}

// ResetStats zeroes the traffic counters, global and per-link.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
	n.linkStats = make(map[linkKey]*LinkStats)
}

// linkOf returns (creating if needed) the counters of one directed link.
// Caller holds n.mu.
func (n *Network) linkOf(k linkKey) *LinkStats {
	ls := n.linkStats[k]
	if ls == nil {
		ls = &LinkStats{}
		n.linkStats[k] = ls
	}
	return ls
}

// dropLocked is the single drop-accounting path: every lost packet —
// unknown destination, fault-injected loss, partition, receive-buffer
// overflow — is counted here and nowhere else. Caller holds n.mu.
func (n *Network) dropLocked(k linkKey) {
	n.stats.Dropped++
	n.linkOf(k).Dropped++
}

// noteDrop is dropLocked for callers not holding n.mu (the overflow path
// in MemConn.deliver).
func (n *Network) noteDrop(k linkKey) {
	n.mu.Lock()
	n.dropLocked(k)
	n.mu.Unlock()
}

// Close shuts the network down: all endpoints close and in-flight delayed
// deliveries are awaited.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*MemConn, 0, len(n.endpoints))
	for _, c := range n.endpoints {
		eps = append(eps, c)
	}
	n.mu.Unlock()
	for _, c := range eps {
		_ = c.Close()
	}
	n.wg.Wait()
	return nil
}

// delivery is one routed datagram awaiting execution: where it goes, when
// it leaves, and how many copies arrive. data is the send's single shared
// snapshot of the payload: every destination of a broadcast (and every
// duplicated copy) receives the same read-only buffer by reference, so a
// fan-out costs one allocation instead of one per recipient.
type delivery struct {
	dst    *MemConn
	from   string
	data   []byte
	delay  time.Duration
	copies int
}

// routeLocked decides one datagram's fate (drop, duplicate, delay,
// bandwidth queuing). Caller holds n.mu; a nil return means the packet
// was dropped (or the destination does not exist).
func (n *Network) routeLocked(from, to string, data []byte) *delivery {
	k := linkKey{from, to}
	dst, ok := n.endpoints[to]
	f, okLink := n.links[k]
	if !okLink {
		f = n.def
	}
	n.stats.Packets++
	n.stats.Bytes += uint64(len(data))
	n.linkOf(k).Packets++
	if !ok {
		// Unknown destination: a UDP sendto succeeds; the packet vanishes.
		n.dropLocked(k)
		return nil
	}
	drop := f.Partitioned || (f.LossRate > 0 && n.rng.Float64() < f.LossRate)
	dup := f.DuplicateRate > 0 && n.rng.Float64() < f.DuplicateRate
	reorder := f.ReorderRate > 0 && n.rng.Float64() < f.ReorderRate
	delay := f.Delay
	if f.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(f.Jitter)))
	}
	if drop {
		n.dropLocked(k)
		return nil
	}
	if dup {
		n.stats.Duplicated++
		n.linkOf(k).Duplicated++
	}
	if reorder {
		hold := f.ReorderDelay
		if hold <= 0 {
			hold = defaultReorderDelay
		}
		delay += hold
		n.stats.Reordered++
		n.linkOf(k).Reordered++
	}
	if n.bandwidth > 0 {
		// Egress serialization: the packet leaves when the sender's
		// link is free plus its own transmission time.
		now := time.Now()
		free := n.egressFree[from]
		if free.Before(now) {
			free = now
		}
		tx := time.Duration(float64(len(data)) / n.bandwidth * float64(time.Second))
		free = free.Add(tx)
		n.egressFree[from] = free
		delay += free.Sub(now)
	}
	d := &delivery{dst: dst, from: from, data: data, delay: delay, copies: 1}
	if dup {
		d.copies = 2
	}
	return d
}

// execute performs a routed delivery. Caller must NOT hold n.mu. The
// payload was snapshotted once at send time; deliveries reference it.
func (n *Network) execute(d *delivery) {
	k := linkKey{d.from, d.dst.addr}
	for i := 0; i < d.copies; i++ {
		pkt := Packet{From: d.from, Data: d.data}
		// Sub-timer-resolution delays are delivered inline: the OS
		// timer wheel cannot express them, and the egress accounting
		// above still charges the sender's link, so saturation (the
		// case that matters) produces real, schedulable delays.
		if d.delay < 100*time.Microsecond {
			d.dst.deliver(pkt, n, k)
			continue
		}
		n.wg.Add(1)
		time.AfterFunc(d.delay, func() {
			defer n.wg.Done()
			d.dst.deliver(pkt, n, k)
		})
	}
}

// clone snapshots a payload at send time: the Send contract lets the
// caller reuse its buffer immediately, so the network keeps exactly one
// private copy per send and shares it across every delivery.
func clone(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// send routes one datagram. Called by MemConn.Send.
func (n *Network) send(from, to string, data []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	d := n.routeLocked(from, to, data)
	n.mu.Unlock()
	if d != nil {
		d.data = clone(data)
		n.execute(d)
	}
	return nil
}

// sendMany routes one datagram to several destinations under a single
// lock acquisition — the fan-out path behind MemConn.Broadcast. All
// destinations share one payload snapshot by reference.
func (n *Network) sendMany(from string, addrs []string, data []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	deliveries := make([]*delivery, 0, len(addrs))
	for _, to := range addrs {
		if d := n.routeLocked(from, to, data); d != nil {
			deliveries = append(deliveries, d)
		}
	}
	n.mu.Unlock()
	if len(deliveries) == 0 {
		return nil
	}
	shared := clone(data)
	for _, d := range deliveries {
		d.data = shared
		n.execute(d)
	}
	return nil
}

// MemConn is an endpoint on a Network.
type MemConn struct {
	net  *Network
	addr string

	mu     sync.Mutex
	ch     chan Packet
	closed bool
}

var (
	_ Conn        = (*MemConn)(nil)
	_ Broadcaster = (*MemConn)(nil)
)

// Addr returns the endpoint's address.
func (c *MemConn) Addr() string { return c.addr }

// Send transmits data to the endpoint at to, subject to link faults.
func (c *MemConn) Send(to string, data []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	return c.net.send(c.addr, to, data)
}

// Recv returns the inbound packet channel.
func (c *MemConn) Recv() <-chan Packet { return c.ch }

// Broadcast sends data to every address, routing the whole fan-out under
// one network lock acquisition.
func (c *MemConn) Broadcast(addrs []string, data []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	return c.net.sendMany(c.addr, addrs, data)
}

// deliver enqueues a packet, dropping it if the receiver's buffer is full
// or the endpoint closed (UDP semantics). Overflow drops route through
// the network's single accounting path like every other loss.
func (c *MemConn) deliver(p Packet, n *Network, k linkKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	select {
	case c.ch <- p:
	default:
		n.noteDrop(k)
	}
}

// Close detaches the endpoint from the network and closes its channel.
func (c *MemConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.ch)
	c.mu.Unlock()

	c.net.mu.Lock()
	delete(c.net.endpoints, c.addr)
	c.net.mu.Unlock()
	return nil
}
