//go:build windows

package transport

// Windows reports truncation through WSAEMSGSIZE errors rather than a
// recvmsg flag; the flag check is compiled out.
const msgTrunc = 0
