// Package transport moves datagrams between nodes. Two implementations are
// provided: an in-memory network with controllable packet loss, delay,
// duplication and partitions (used by tests, benchmarks and the fault
// experiments of §2.4 of the paper), and a UDP transport matching the
// original PBFT deployment. Both present unreliable, unordered datagram
// semantics: the protocol layer must tolerate loss and duplication.
package transport

import (
	"errors"

	"repro/internal/wire"
)

// Packet is one received datagram.
type Packet struct {
	// From is the sender's address as observed by the transport.
	From string
	// Data is the datagram payload. The receiver must treat it as
	// read-only: the in-memory transport delivers one shared buffer to
	// every broadcast destination, and the UDP transport delivers pooled
	// receive-ring buffers.
	Data []byte
	// pooled marks Data as a buffer-arena receive buffer (UDP ring).
	pooled bool
}

// Release returns the packet's buffer to the receive ring when it came
// from one (UDP), and is a no-op otherwise. Only the consumer that has
// finished with Data — and retained no alias of it — may call it; calling
// it is optional (an unreleased buffer is garbage collected).
func (p Packet) Release() {
	if p.pooled {
		wire.PutBuf(p.Data)
	}
}

// Conn is a node's endpoint on the network. Implementations are safe for
// concurrent use.
type Conn interface {
	// Addr returns the endpoint's own address.
	Addr() string
	// Send transmits data to the endpoint at address to. Delivery is
	// best-effort: a nil error does not mean the packet arrived. Send
	// fully consumes data before returning — the caller may reuse (or
	// release to the buffer arena) the slice immediately afterwards.
	Send(to string, data []byte) error
	// Recv returns the channel of inbound packets. The channel is closed
	// when the connection closes.
	Recv() <-chan Packet
	// Close releases the endpoint. Further Sends fail.
	Close() error
}

// Broadcaster is the optional fan-out fast path of a Conn: transmit one
// already-marshaled datagram to many destinations in a single call. Both
// built-in transports implement it; wrappers (e.g. fault-injecting test
// conns) may not, and then Broadcast falls back to per-address Send.
type Broadcaster interface {
	// Broadcast sends the same data to every address. Best-effort like
	// Send; the first per-destination error is returned but the remaining
	// destinations are still attempted.
	Broadcast(addrs []string, data []byte) error
}

// Broadcast transmits data to every address through the Conn's native
// fan-out when it has one, or by looping over Send otherwise. Protocol
// egress stages use it to seal and marshal a message once and ship the
// same byte slice to all peers.
func Broadcast(c Conn, addrs []string, data []byte) error {
	if b, ok := c.(Broadcaster); ok {
		return b.Broadcast(addrs, data)
	}
	var first error
	for _, to := range addrs {
		if err := c.Send(to, data); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ErrTooLarge is returned (wrapped) when a datagram exceeds the
// transport's size limit. Oversized sends are silently lost on real
// networks; the typed error plus the per-conn counter make the drop
// observable to the protocol layer.
var ErrTooLarge = errors.New("transport: datagram exceeds size limit")
