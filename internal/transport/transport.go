// Package transport moves datagrams between nodes. Two implementations are
// provided: an in-memory network with controllable packet loss, delay,
// duplication and partitions (used by tests, benchmarks and the fault
// experiments of §2.4 of the paper), and a UDP transport matching the
// original PBFT deployment. Both present unreliable, unordered datagram
// semantics: the protocol layer must tolerate loss and duplication.
package transport

// Packet is one received datagram.
type Packet struct {
	// From is the sender's address as observed by the transport.
	From string
	// Data is the datagram payload. The slice is owned by the receiver.
	Data []byte
}

// Conn is a node's endpoint on the network. Implementations are safe for
// concurrent use.
type Conn interface {
	// Addr returns the endpoint's own address.
	Addr() string
	// Send transmits data to the endpoint at address to. Delivery is
	// best-effort: a nil error does not mean the packet arrived.
	Send(to string, data []byte) error
	// Recv returns the channel of inbound packets. The channel is closed
	// when the connection closes.
	Recv() <-chan Packet
	// Close releases the endpoint. Further Sends fail.
	Close() error
}
