//go:build linux && arm64

package transport

// sendmmsg(2) on linux/arm64 (the stdlib syscall table stops before it).
const sysSENDMMSG = 269
