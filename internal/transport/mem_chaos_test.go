package transport

import (
	"testing"
	"time"
)

// TestMemNetworkReorder holds back selected packets so later traffic
// overtakes them: with ReorderRate 1 on a->b, a burst sent in order must
// arrive with the first packet displaced behind un-reordered traffic.
func TestMemNetworkReorder(t *testing.T) {
	n := NewNetwork(3)
	defer n.Close()
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	// Reorder only the first send, then clear the fault: the held packet
	// must arrive after the fault-free ones that followed it.
	n.SetLinkFaults("a", "b", Faults{ReorderRate: 1, ReorderDelay: 20 * time.Millisecond})
	if err := a.Send("b", []byte("first")); err != nil {
		t.Fatal(err)
	}
	n.ClearLinkFaults("a", "b")
	if err := a.Send("b", []byte("second")); err != nil {
		t.Fatal(err)
	}
	p1, p2 := recvOne(t, b), recvOne(t, b)
	if string(p1.Data) != "second" || string(p2.Data) != "first" {
		t.Fatalf("expected overtake, got %q then %q", p1.Data, p2.Data)
	}
	if st := n.Stats(); st.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", st.Reordered)
	}
	if ls := n.LinkStats("a", "b"); ls.Reordered != 1 || ls.Packets != 2 {
		t.Fatalf("link stats = %+v, want 1 reordered of 2 packets", ls)
	}
}

// TestMemNetworkPerLinkCounters checks that drops, duplicates and packet
// totals are attributed to the directed link that suffered them, and that
// the global totals agree with the per-link sums.
func TestMemNetworkPerLinkCounters(t *testing.T) {
	n := NewNetwork(4)
	defer n.Close()
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	if _, err := n.Listen("c"); err != nil {
		t.Fatal(err)
	}
	n.SetLinkFaults("a", "b", Faults{Partitioned: true})
	n.SetLinkFaults("a", "c", Faults{DuplicateRate: 1})
	for i := 0; i < 5; i++ {
		_ = a.Send("b", []byte("x"))
	}
	_ = a.Send("c", []byte("y"))
	_ = b.Send("a", []byte("z"))
	recvOne(t, a)

	if ls := n.LinkStats("a", "b"); ls.Dropped != 5 || ls.Packets != 5 {
		t.Fatalf("a->b = %+v, want 5 dropped of 5", ls)
	}
	if ls := n.LinkStats("a", "c"); ls.Duplicated != 1 || ls.Dropped != 0 {
		t.Fatalf("a->c = %+v, want 1 duplicated, 0 dropped", ls)
	}
	if ls := n.LinkStats("b", "a"); ls.Packets != 1 || ls.Dropped != 0 {
		t.Fatalf("b->a = %+v, want 1 clean packet", ls)
	}
	st := n.Stats()
	if st.Dropped != 5 || st.Duplicated != 1 || st.Packets != 7 {
		t.Fatalf("global = %+v, want 5 dropped / 1 duplicated / 7 packets", st)
	}
}

// TestMemNetworkOverflowCountedOnce fills a tiny receive buffer and checks
// the overflow drops land in both the global and the per-link counters —
// the single-accounting-path invariant (overflow used to be counted on a
// separate code path from routing drops).
func TestMemNetworkOverflowCountedOnce(t *testing.T) {
	n := NewNetwork(5)
	defer n.Close()
	a, _ := n.Listen("a")
	if _, err := n.ListenBuffered("b", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := a.Send("b", []byte("flood")); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	ls := n.LinkStats("a", "b")
	if st.Dropped != 4 || ls.Dropped != 4 {
		t.Fatalf("dropped global=%d link=%d, want 4 overflow drops in both", st.Dropped, ls.Dropped)
	}
	if ls.Packets != 6 {
		t.Fatalf("link packets = %d, want 6", ls.Packets)
	}
}

// TestMemNetworkResetStatsClearsLinks: ResetStats must zero the per-link
// counters along with the globals.
func TestMemNetworkResetStatsClearsLinks(t *testing.T) {
	n := NewNetwork(6)
	defer n.Close()
	a, _ := n.Listen("a")
	_ = a.Send("ghost", []byte("x"))
	n.ResetStats()
	if st := n.Stats(); st != (Stats{}) {
		t.Fatalf("global stats after reset = %+v", st)
	}
	if ls := n.LinkStats("a", "ghost"); ls != (LinkStats{}) {
		t.Fatalf("link stats after reset = %+v", ls)
	}
}
