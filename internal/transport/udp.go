package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// maxDatagram is the largest datagram the UDP transport sends or receives.
// The original PBFT implementation fragmented larger messages; we keep
// protocol messages under this bound (state pages are 4 KiB) and let the
// OS fragment at the IP layer when needed.
const maxDatagram = 64 << 10

// udpBatch is the syscall batching factor: how many datagrams one
// recvmmsg/sendmmsg call moves at most. Under light load batches degrade
// to single datagrams (no added latency); under a connection swarm the
// kernel queue is deep enough that most calls move several.
const udpBatch = 32

// UDPConn is a Conn over a UDP socket, mirroring the deployment
// environment of the original PBFT implementation.
type UDPConn struct {
	sock    *net.UDPConn
	addr    string
	ch      chan Packet
	recvBuf int // receive-ring buffer size (maxDatagram; tests shrink it)

	oversized atomic.Uint64
	truncated atomic.Uint64
	batch     batchCounters

	mu      sync.Mutex
	peers   map[string]*peerAddr
	truncBy map[string]uint64 // per-peer truncated-receive counts
	closed  bool
	wg      sync.WaitGroup

	sendMu sync.Mutex // serializes the platform send-batch state
	sender *sendBatcher
}

// peerAddr is one resolved destination: the net-layer address plus (on
// platforms with sendmmsg) its raw sockaddr form, precomputed once so the
// send path never re-encodes it.
type peerAddr struct {
	ua  *net.UDPAddr
	raw rawSockaddr
}

var (
	_ Conn        = (*UDPConn)(nil)
	_ Broadcaster = (*UDPConn)(nil)
)

// batchCounters tracks syscall batching effectiveness: how many
// recv/send syscalls were issued and how many datagrams each moved.
// The occupancy buckets are sized 1, 2-3, 4-7, 8-15, 16+.
type batchCounters struct {
	recvCalls atomic.Uint64
	recvMsgs  atomic.Uint64
	sendCalls atomic.Uint64
	sendMsgs  atomic.Uint64
	recvOcc   [5]atomic.Uint64
	sendOcc   [5]atomic.Uint64
}

// BatchOccupancyBounds are the inclusive upper bounds of the first four
// occupancy buckets; the fifth bucket is unbounded (16+ datagrams).
var BatchOccupancyBounds = [4]uint64{1, 3, 7, 15}

func occBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 3:
		return 1
	case n <= 7:
		return 2
	case n <= 15:
		return 3
	default:
		return 4
	}
}

func (c *UDPConn) noteRecvBatch(n int) {
	c.batch.recvCalls.Add(1)
	c.batch.recvMsgs.Add(uint64(n))
	c.batch.recvOcc[occBucket(n)].Add(1)
}

func (c *UDPConn) noteSendBatch(n int) {
	c.batch.sendCalls.Add(1)
	c.batch.sendMsgs.Add(uint64(n))
	c.batch.sendOcc[occBucket(n)].Add(1)
}

// BatchStats is a snapshot of the syscall batching counters.
type BatchStats struct {
	// RecvCalls counts receive syscalls that returned at least one
	// datagram; RecvMsgs counts the datagrams they returned (including
	// truncated ones that were then dropped).
	RecvCalls uint64
	RecvMsgs  uint64
	// SendCalls counts send syscalls; SendMsgs the datagrams they moved.
	SendCalls uint64
	SendMsgs  uint64
	// RecvOccupancy / SendOccupancy are datagrams-per-syscall histograms
	// over the buckets 1, 2-3, 4-7, 8-15, 16+.
	RecvOccupancy [5]uint64
	SendOccupancy [5]uint64
}

// RecvPerCall returns the mean datagrams moved per receive syscall.
func (s BatchStats) RecvPerCall() float64 {
	if s.RecvCalls == 0 {
		return 0
	}
	return float64(s.RecvMsgs) / float64(s.RecvCalls)
}

// SendPerCall returns the mean datagrams moved per send syscall.
func (s BatchStats) SendPerCall() float64 {
	if s.SendCalls == 0 {
		return 0
	}
	return float64(s.SendMsgs) / float64(s.SendCalls)
}

// Syscalls returns the total socket syscalls issued (recv + send).
func (s BatchStats) Syscalls() uint64 { return s.RecvCalls + s.SendCalls }

// BatchStats returns a snapshot of the syscall batching counters.
func (c *UDPConn) BatchStats() BatchStats {
	var s BatchStats
	s.RecvCalls = c.batch.recvCalls.Load()
	s.RecvMsgs = c.batch.recvMsgs.Load()
	s.SendCalls = c.batch.sendCalls.Load()
	s.SendMsgs = c.batch.sendMsgs.Load()
	for i := range s.RecvOccupancy {
		s.RecvOccupancy[i] = c.batch.recvOcc[i].Load()
		s.SendOccupancy[i] = c.batch.sendOcc[i].Load()
	}
	return s
}

// ListenUDP opens a UDP endpoint at addr (e.g. "127.0.0.1:7001"; a port of
// 0 picks a free port).
func ListenUDP(addr string) (*UDPConn, error) {
	return listenUDPBuf(addr, maxDatagram)
}

// listenUDPBuf is ListenUDP with a configurable receive buffer size, so
// tests can force datagram truncation without crafting >64 KiB datagrams.
func listenUDPBuf(addr string, recvBuf int) (*UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("listen %q: %w", addr, err)
	}
	c := &UDPConn{
		sock:    sock,
		addr:    sock.LocalAddr().String(),
		ch:      make(chan Packet, recvBuffer),
		recvBuf: recvBuf,
		peers:   make(map[string]*peerAddr),
		truncBy: make(map[string]uint64),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Addr returns the bound local address.
func (c *UDPConn) Addr() string { return c.addr }

// Recv returns the inbound packet channel. Packet buffers come from the
// pooled receive ring; consumers that are done with a packet (and retain
// no alias of its Data) may hand the buffer back with Packet.Release.
func (c *UDPConn) Recv() <-chan Packet { return c.ch }

// Send transmits one datagram to the UDP address to. Payloads over the
// datagram limit return a wrapped ErrTooLarge and count in
// OversizedSends, so protocol-layer drops stay observable even when the
// caller treats sends as best-effort.
func (c *UDPConn) Send(to string, data []byte) error {
	if len(data) > maxDatagram {
		c.oversized.Add(1)
		return fmt.Errorf("%w: %d bytes over limit %d", ErrTooLarge, len(data), maxDatagram)
	}
	pa, err := c.resolve(to)
	if err != nil {
		return err
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	_, err = c.sock.WriteToUDP(data, pa.ua)
	c.noteSendBatch(1)
	return err
}

// Broadcast sends the same datagram to every address: one size check and
// one close check for the whole fan-out, and — where the platform has
// sendmmsg — one syscall per udpBatch destinations instead of one each.
func (c *UDPConn) Broadcast(addrs []string, data []byte) error {
	if len(data) > maxDatagram {
		c.oversized.Add(uint64(len(addrs)))
		return fmt.Errorf("%w: %d bytes over limit %d", ErrTooLarge, len(data), maxDatagram)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return c.sendBatch(addrs, data)
}

// OversizedSends returns how many sends were refused for exceeding the
// datagram size limit.
func (c *UDPConn) OversizedSends() uint64 { return c.oversized.Load() }

// TruncatedRecvs returns how many inbound datagrams were dropped because
// they exceeded the receive buffer. Before this counter existed such
// datagrams were silently truncated to the buffer size and handed to the
// protocol layer as garbage; now they are counted (see TruncatedRecvsFrom
// for the per-peer breakdown) and dropped whole, like any lost datagram.
func (c *UDPConn) TruncatedRecvs() uint64 { return c.truncated.Load() }

// TruncatedRecvsFrom returns the per-peer truncated-receive counts, keyed
// by the sender address the transport observed. The map is a copy.
func (c *UDPConn) TruncatedRecvsFrom() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.truncBy))
	for k, v := range c.truncBy {
		out[k] = v
	}
	return out
}

// noteTruncated records one truncated receive from peer.
func (c *UDPConn) noteTruncated(peer string) {
	c.truncated.Add(1)
	c.mu.Lock()
	c.truncBy[peer]++
	c.mu.Unlock()
}

func (c *UDPConn) resolve(to string) (*peerAddr, error) {
	c.mu.Lock()
	pa, ok := c.peers[to]
	c.mu.Unlock()
	if ok {
		return pa, nil
	}
	ua, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", to, err)
	}
	pa = &peerAddr{ua: ua}
	fillRawSockaddr(pa)
	c.mu.Lock()
	c.peers[to] = pa
	c.mu.Unlock()
	return pa, nil
}

// recvMsg is one received datagram as produced by the platform batcher:
// a pooled ring buffer sliced to the datagram, the sender address, and
// whether the datagram was truncated (and must be dropped).
type recvMsg struct {
	buf       []byte
	from      string
	truncated bool
}

// readLoop pulls datagrams into pooled ring buffers: each receive borrows
// a buffer from the arena and delivers it by reference; the consumer
// returns it with Packet.Release (or lets the garbage collector have it —
// retained packets, like logged pre-prepares, simply keep theirs). The
// platform batcher drains up to udpBatch datagrams per syscall where the
// kernel supports it (recvmmsg), so a deep socket queue — the connection
// swarm case — costs one syscall per batch, not per datagram.
func (c *UDPConn) readLoop() {
	defer c.wg.Done()
	b := newRecvBatcher(c)
	for {
		n, err := b.fill()
		if err != nil {
			// Socket closed (or fatal error): end the loop.
			b.release()
			close(c.ch)
			return
		}
		for i := 0; i < n; i++ {
			m := &b.msgs[i]
			if m.truncated {
				// The datagram exceeded the receive buffer: dropping it
				// whole (with a counter) beats handing truncated garbage
				// upstream.
				c.noteTruncated(m.from)
				wire.PutBuf(m.buf)
				m.buf = nil
				continue
			}
			select {
			case c.ch <- Packet{From: m.from, Data: m.buf, pooled: true}:
			default:
				// Receiver too slow: drop, exactly like a kernel socket
				// buffer overflow.
				wire.PutBuf(m.buf)
			}
			m.buf = nil
		}
	}
}

// Close shuts the socket down and waits for the reader goroutine.
func (c *UDPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.sock.Close()
	c.wg.Wait()
	return err
}
