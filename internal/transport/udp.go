package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// maxDatagram is the largest datagram the UDP transport sends or receives.
// The original PBFT implementation fragmented larger messages; we keep
// protocol messages under this bound (state pages are 4 KiB) and let the
// OS fragment at the IP layer when needed.
const maxDatagram = 64 << 10

// UDPConn is a Conn over a UDP socket, mirroring the deployment
// environment of the original PBFT implementation.
type UDPConn struct {
	sock    *net.UDPConn
	addr    string
	ch      chan Packet
	recvBuf int // receive-ring buffer size (maxDatagram; tests shrink it)

	oversized atomic.Uint64
	truncated atomic.Uint64

	mu      sync.Mutex
	peers   map[string]*net.UDPAddr
	truncBy map[string]uint64 // per-peer truncated-receive counts
	closed  bool
	wg      sync.WaitGroup
}

var (
	_ Conn        = (*UDPConn)(nil)
	_ Broadcaster = (*UDPConn)(nil)
)

// ListenUDP opens a UDP endpoint at addr (e.g. "127.0.0.1:7001"; a port of
// 0 picks a free port).
func ListenUDP(addr string) (*UDPConn, error) {
	return listenUDPBuf(addr, maxDatagram)
}

// listenUDPBuf is ListenUDP with a configurable receive buffer size, so
// tests can force datagram truncation without crafting >64 KiB datagrams.
func listenUDPBuf(addr string, recvBuf int) (*UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("listen %q: %w", addr, err)
	}
	c := &UDPConn{
		sock:    sock,
		addr:    sock.LocalAddr().String(),
		ch:      make(chan Packet, recvBuffer),
		recvBuf: recvBuf,
		peers:   make(map[string]*net.UDPAddr),
		truncBy: make(map[string]uint64),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Addr returns the bound local address.
func (c *UDPConn) Addr() string { return c.addr }

// Recv returns the inbound packet channel. Packet buffers come from the
// pooled receive ring; consumers that are done with a packet (and retain
// no alias of its Data) may hand the buffer back with Packet.Release.
func (c *UDPConn) Recv() <-chan Packet { return c.ch }

// Send transmits one datagram to the UDP address to. Payloads over the
// datagram limit return a wrapped ErrTooLarge and count in
// OversizedSends, so protocol-layer drops stay observable even when the
// caller treats sends as best-effort.
func (c *UDPConn) Send(to string, data []byte) error {
	if len(data) > maxDatagram {
		c.oversized.Add(1)
		return fmt.Errorf("%w: %d bytes over limit %d", ErrTooLarge, len(data), maxDatagram)
	}
	ua, err := c.resolve(to)
	if err != nil {
		return err
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	_, err = c.sock.WriteToUDP(data, ua)
	return err
}

// Broadcast sends the same datagram to every address: one size check and
// one close check for the whole fan-out.
func (c *UDPConn) Broadcast(addrs []string, data []byte) error {
	if len(data) > maxDatagram {
		c.oversized.Add(uint64(len(addrs)))
		return fmt.Errorf("%w: %d bytes over limit %d", ErrTooLarge, len(data), maxDatagram)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var first error
	for _, to := range addrs {
		ua, err := c.resolve(to)
		if err == nil {
			_, err = c.sock.WriteToUDP(data, ua)
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OversizedSends returns how many sends were refused for exceeding the
// datagram size limit.
func (c *UDPConn) OversizedSends() uint64 { return c.oversized.Load() }

// TruncatedRecvs returns how many inbound datagrams were dropped because
// they exceeded the receive buffer. Before this counter existed such
// datagrams were silently truncated to the buffer size and handed to the
// protocol layer as garbage; now they are counted (see TruncatedRecvsFrom
// for the per-peer breakdown) and dropped whole, like any lost datagram.
func (c *UDPConn) TruncatedRecvs() uint64 { return c.truncated.Load() }

// TruncatedRecvsFrom returns the per-peer truncated-receive counts, keyed
// by the sender address the transport observed. The map is a copy.
func (c *UDPConn) TruncatedRecvsFrom() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.truncBy))
	for k, v := range c.truncBy {
		out[k] = v
	}
	return out
}

// noteTruncated records one truncated receive from peer.
func (c *UDPConn) noteTruncated(peer string) {
	c.truncated.Add(1)
	c.mu.Lock()
	c.truncBy[peer]++
	c.mu.Unlock()
}

func (c *UDPConn) resolve(to string) (*net.UDPAddr, error) {
	c.mu.Lock()
	ua, ok := c.peers[to]
	c.mu.Unlock()
	if ok {
		return ua, nil
	}
	ua, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", to, err)
	}
	c.mu.Lock()
	c.peers[to] = ua
	c.mu.Unlock()
	return ua, nil
}

// readLoop pulls datagrams into pooled ring buffers: each receive borrows
// a buffer from the arena and delivers it by reference; the consumer
// returns it with Packet.Release (or lets the garbage collector have it —
// retained packets, like logged pre-prepares, simply keep theirs).
func (c *UDPConn) readLoop() {
	defer c.wg.Done()
	for {
		buf := wire.GetBuf(c.recvBuf)[:c.recvBuf]
		n, _, flags, from, err := c.sock.ReadMsgUDP(buf, nil)
		if err != nil {
			// Socket closed (or fatal error): end the loop.
			wire.PutBuf(buf)
			close(c.ch)
			return
		}
		if flags&msgTrunc != 0 {
			// The datagram exceeded the receive buffer: dropping it whole
			// (with a counter) beats handing truncated garbage upstream.
			c.noteTruncated(from.String())
			wire.PutBuf(buf)
			continue
		}
		select {
		case c.ch <- Packet{From: from.String(), Data: buf[:n], pooled: true}:
		default:
			// Receiver too slow: drop, exactly like a kernel socket
			// buffer overflow.
			wire.PutBuf(buf)
		}
	}
}

// Close shuts the socket down and waits for the reader goroutine.
func (c *UDPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.sock.Close()
	c.wg.Wait()
	return err
}
