//go:build linux && amd64

package transport

// sendmmsg(2) on linux/amd64 (the stdlib syscall table stops before it).
const sysSENDMMSG = 307
