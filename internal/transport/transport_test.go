package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func recvOne(t *testing.T, c Conn) Packet {
	t.Helper()
	select {
	case p, ok := <-c.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return p
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for packet")
	}
	return Packet{}
}

func expectNone(t *testing.T, c Conn, d time.Duration) {
	t.Helper()
	select {
	case p, ok := <-c.Recv():
		if ok {
			t.Fatalf("unexpected packet from %s: %q", p.From, p.Data)
		}
	case <-time.After(d):
	}
}

func TestMemNetworkDelivery(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if p.From != "a" || string(p.Data) != "hello" {
		t.Fatalf("got %+v", p)
	}
}

func TestMemNetworkAddressReuseRejected(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("second Listen on same address must fail")
	}
}

func TestMemNetworkUnknownDestinationVanishes(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", []byte("x")); err != nil {
		t.Fatalf("UDP-style send to unknown host must not error: %v", err)
	}
	if got := n.Stats().Dropped; got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}

func TestMemNetworkLoss(t *testing.T) {
	n := NewNetwork(42)
	defer n.Close()
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	n.SetLinkFaults("a", "b", Faults{LossRate: 1})
	for i := 0; i < 10; i++ {
		if err := a.Send("b", []byte("lost")); err != nil {
			t.Fatal(err)
		}
	}
	expectNone(t, b, 50*time.Millisecond)
	st := n.Stats()
	if st.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", st.Dropped)
	}
	// Other direction unaffected.
	if err := b.Send("a", []byte("back")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, a); string(p.Data) != "back" {
		t.Fatalf("got %q", p.Data)
	}
}

func TestMemNetworkPartialLossIsSeeded(t *testing.T) {
	run := func(seed int64) int {
		n := NewNetwork(seed)
		defer n.Close()
		a, _ := n.Listen("a")
		b, _ := n.Listen("b")
		n.SetDefaultFaults(Faults{LossRate: 0.5})
		for i := 0; i < 200; i++ {
			_ = a.Send("b", []byte{byte(i)})
		}
		got := 0
		for {
			select {
			case <-b.Recv():
				got++
			case <-time.After(20 * time.Millisecond):
				return got
			}
		}
	}
	g1, g2 := run(7), run(7)
	if g1 != g2 {
		t.Fatalf("same seed must give same loss pattern: %d vs %d", g1, g2)
	}
	if g1 == 0 || g1 == 200 {
		t.Fatalf("50%% loss delivered %d/200", g1)
	}
}

func TestMemNetworkDuplicate(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	n.SetLinkFaults("a", "b", Faults{DuplicateRate: 1})
	if err := a.Send("b", []byte("twice")); err != nil {
		t.Fatal(err)
	}
	p1, p2 := recvOne(t, b), recvOne(t, b)
	if string(p1.Data) != "twice" || string(p2.Data) != "twice" {
		t.Fatalf("got %q %q", p1.Data, p2.Data)
	}
}

func TestMemNetworkDelay(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	n.SetLinkFaults("a", "b", Faults{Delay: 50 * time.Millisecond})
	start := time.Now()
	if err := a.Send("b", []byte("late")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("packet arrived after %v, want >= 50ms", elapsed)
	}
}

func TestMemNetworkIsolateAndHeal(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	n.Isolate("b")
	_ = a.Send("b", []byte("blocked"))
	_ = b.Send("a", []byte("blocked"))
	expectNone(t, b, 30*time.Millisecond)
	expectNone(t, a, 30*time.Millisecond)
	n.Heal("b")
	_ = a.Send("b", []byte("open"))
	if p := recvOne(t, b); string(p.Data) != "open" {
		t.Fatalf("got %q", p.Data)
	}
}

func TestMemConnCloseSemantics(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if err := b.Send("a", nil); err != ErrClosed {
		t.Fatalf("send on closed conn: got %v, want ErrClosed", err)
	}
	// Sending to the departed endpoint behaves like UDP: no error.
	if err := a.Send("b", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	// The address can be reused after close.
	if _, err := n.Listen("b"); err != nil {
		t.Fatalf("address must be reusable after close: %v", err)
	}
}

func TestMemNetworkStatsCountBytes(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	_ = a.Send("b", make([]byte, 100))
	_ = a.Send("b", make([]byte, 28))
	recvOne(t, b)
	recvOne(t, b)
	st := n.Stats()
	if st.Packets != 2 || st.Bytes != 128 {
		t.Fatalf("stats = %+v", st)
	}
	n.ResetStats()
	if st := n.Stats(); st.Packets != 0 || st.Bytes != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestMemNetworkConcurrentSenders(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	dst, _ := n.Listen("dst")
	const senders, each = 8, 100
	for i := 0; i < senders; i++ {
		c, err := n.Listen(fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		go func(c Conn) {
			for j := 0; j < each; j++ {
				_ = c.Send("dst", []byte{1})
			}
		}(c)
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < senders*each {
		select {
		case <-dst.Recv():
			got++
		case <-deadline:
			t.Fatalf("received %d/%d", got, senders*each)
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if string(p.Data) != "ping" {
		t.Fatalf("got %q", p.Data)
	}
	if p.From != a.Addr() {
		t.Fatalf("from = %q, want %q", p.From, a.Addr())
	}
	if err := b.Send(p.From, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, a); string(p.Data) != "pong" {
		t.Fatalf("got %q", p.Data)
	}
}

func TestUDPOversizedDatagramRejected(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	err = a.Send(a.Addr(), make([]byte, maxDatagram+1))
	if err == nil {
		t.Fatal("oversized datagram must be rejected")
	}
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error %v must wrap ErrTooLarge", err)
	}
	if got := a.OversizedSends(); got != 1 {
		t.Fatalf("OversizedSends = %d, want 1", got)
	}
	// The broadcast path counts one refusal per destination.
	err = a.Broadcast([]string{a.Addr(), a.Addr()}, make([]byte, maxDatagram+1))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("broadcast error %v must wrap ErrTooLarge", err)
	}
	if got := a.OversizedSends(); got != 3 {
		t.Fatalf("OversizedSends = %d, want 3", got)
	}
}

func TestUDPBroadcastDelivers(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := a.Broadcast([]string{b.Addr(), c.Addr()}, []byte("fanout")); err != nil {
		t.Fatal(err)
	}
	for _, dst := range []*UDPConn{b, c} {
		if p := recvOne(t, dst); string(p.Data) != "fanout" {
			t.Fatalf("got %q", p.Data)
		}
	}
}

func TestMemBroadcastDelivers(t *testing.T) {
	n := NewNetwork(7)
	defer n.Close()
	a, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	c, err := n.Listen("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := transportBroadcast(a, []string{"b", "c"}, []byte("fanout")); err != nil {
		t.Fatal(err)
	}
	for _, dst := range []*MemConn{b, c} {
		if p := recvOne(t, dst); string(p.Data) != "fanout" {
			t.Fatalf("got %q", p.Data)
		}
	}
	st := n.Stats()
	if st.Packets != 2 {
		t.Fatalf("packets = %d, want 2", st.Packets)
	}
}

// transportBroadcast calls the package-level Broadcast helper through the
// Conn interface, exercising the Broadcaster fast-path detection.
func transportBroadcast(c Conn, addrs []string, data []byte) error {
	return Broadcast(c, addrs, data)
}

func TestUDPCloseStopsReceiver(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Fatal("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Fatal("recv channel must close on Close")
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}
