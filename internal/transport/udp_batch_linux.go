//go:build linux

package transport

import (
	"net"
	"syscall"
	"unsafe"

	"repro/internal/wire"
)

// Linux syscall batching: recvmmsg drains up to udpBatch datagrams per
// syscall into pooled ring buffers, sendmmsg pushes a Broadcast fan-out
// out in one call. Both integrate with the Go netpoller through
// syscall.RawConn — the raw calls use MSG_DONTWAIT and return "not ready"
// on EAGAIN so the runtime parks the goroutine instead of spinning.
//
// Everything here sticks to the stdlib syscall package (no external
// deps): struct mmsghdr is declared locally and the calls go through
// Syscall6 with SYS_RECVMMSG / SYS_SENDMMSG.

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// per-message byte count filled in by the kernel. Go pads the trailing
// uint32 to the struct's 8-byte alignment, matching the kernel layout.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
}

func recvmmsg(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(flags), 0, 0)
	return int(n), e
}

func sendmmsg(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(flags), 0, 0)
	return int(n), e
}

// rawSockaddr is a destination address in the kernel's wire form,
// precomputed at resolve time. len == 0 means the address could not be
// encoded (the send path then falls back to WriteToUDP).
type rawSockaddr struct {
	data syscall.RawSockaddrInet6 // large enough for Inet4 too
	len  uint32
}

// fillRawSockaddr precomputes the sockaddr bytes for a resolved peer.
func fillRawSockaddr(pa *peerAddr) {
	ip := pa.ua.IP
	if ip4 := ip.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&pa.raw.data))
		sa.Family = syscall.AF_INET
		putBEPort(&sa.Port, pa.ua.Port)
		copy(sa.Addr[:], ip4)
		pa.raw.len = syscall.SizeofSockaddrInet4
		return
	}
	if ip16 := ip.To16(); ip16 != nil {
		sa := &pa.raw.data
		sa.Family = syscall.AF_INET6
		putBEPort(&sa.Port, pa.ua.Port)
		copy(sa.Addr[:], ip16)
		// Zone/scope ids are not encoded; such addresses fall back to
		// WriteToUDP below by leaving len at 0.
		if pa.ua.Zone == "" {
			pa.raw.len = syscall.SizeofSockaddrInet6
		}
	}
}

// putBEPort stores a port in network byte order regardless of host
// endianness (the raw sockaddr Port field is a native uint16 holding
// big-endian bytes).
func putBEPort(dst *uint16, port int) {
	p := (*[2]byte)(unsafe.Pointer(dst))
	p[0] = byte(port >> 8)
	p[1] = byte(port)
}

// bePort reads a network-byte-order port from a raw sockaddr field.
func bePort(src *uint16) int {
	p := (*[2]byte)(unsafe.Pointer(src))
	return int(p[0])<<8 | int(p[1])
}

// recvBatcher is the receive side: one recvmmsg call fills up to udpBatch
// pooled ring buffers. It is used by the single readLoop goroutine only.
type recvBatcher struct {
	c    *UDPConn
	rc   syscall.RawConn
	msgs []recvMsg

	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
	bufs  [][]byte

	// fromCache interns sender address strings keyed by raw sockaddr
	// bytes, so a swarm of stable peers costs no per-packet allocation
	// for the From field.
	fromCache map[string]string
}

func newRecvBatcher(c *UDPConn) *recvBatcher {
	b := &recvBatcher{c: c, msgs: make([]recvMsg, udpBatch)}
	rc, err := c.sock.SyscallConn()
	if err != nil {
		// No raw access: degrade to the portable single-datagram path.
		b.msgs = b.msgs[:1]
		return b
	}
	b.rc = rc
	b.hdrs = make([]mmsghdr, udpBatch)
	b.iovs = make([]syscall.Iovec, udpBatch)
	b.names = make([]syscall.RawSockaddrInet6, udpBatch)
	b.bufs = make([][]byte, udpBatch)
	b.fromCache = make(map[string]string)
	for i := range b.hdrs {
		b.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&b.names[i]))
		b.hdrs[i].hdr.Iov = &b.iovs[i]
		b.hdrs[i].hdr.Iovlen = 1
	}
	return b
}

// fill blocks until at least one datagram arrives and returns how many of
// b.msgs are populated. The caller takes ownership of each msg's buffer.
func (b *recvBatcher) fill() (int, error) {
	if b.rc == nil {
		return b.fillSingle()
	}
	// Re-arm: every slot needs a fresh pooled buffer (delivered buffers
	// belong to the consumer now) and reset name/flags fields (the kernel
	// overwrites them per call).
	for i := range b.hdrs {
		if b.bufs[i] == nil {
			buf := wire.GetBuf(b.c.recvBuf)[:b.c.recvBuf]
			b.bufs[i] = buf
			b.iovs[i].Base = &buf[0]
			b.iovs[i].SetLen(len(buf))
		}
		b.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
		b.hdrs[i].hdr.Flags = 0
		b.hdrs[i].msgLen = 0
	}
	var n int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		n, errno = recvmmsg(fd, b.hdrs, syscall.MSG_DONTWAIT)
		return !(errno == syscall.EAGAIN || errno == syscall.EINTR)
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < n; i++ {
		ln := int(b.hdrs[i].msgLen)
		if ln > len(b.bufs[i]) {
			ln = len(b.bufs[i])
		}
		b.msgs[i] = recvMsg{
			buf:       b.bufs[i][:ln],
			from:      b.fromString(i),
			truncated: b.hdrs[i].hdr.Flags&syscall.MSG_TRUNC != 0,
		}
		b.bufs[i] = nil
	}
	b.c.noteRecvBatch(n)
	return n, nil
}

// fillSingle is the degraded one-datagram-per-call path (no RawConn).
func (b *recvBatcher) fillSingle() (int, error) {
	buf := wire.GetBuf(b.c.recvBuf)[:b.c.recvBuf]
	n, _, flags, from, err := b.c.sock.ReadMsgUDP(buf, nil)
	if err != nil {
		wire.PutBuf(buf)
		return 0, err
	}
	b.msgs[0] = recvMsg{buf: buf[:n], from: from.String(), truncated: flags&msgTrunc != 0}
	b.c.noteRecvBatch(1)
	return 1, nil
}

// fromString interns the sender address of message i.
func (b *recvBatcher) fromString(i int) string {
	sa := &b.names[i]
	nl := int(b.hdrs[i].hdr.Namelen)
	if nl > syscall.SizeofSockaddrInet6 {
		nl = syscall.SizeofSockaddrInet6
	}
	key := (*[syscall.SizeofSockaddrInet6]byte)(unsafe.Pointer(sa))[:nl]
	if s, ok := b.fromCache[string(key)]; ok {
		return s
	}
	var ua net.UDPAddr
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		ua.IP = net.IPv4(sa4.Addr[0], sa4.Addr[1], sa4.Addr[2], sa4.Addr[3])
		ua.Port = bePort(&sa4.Port)
	case syscall.AF_INET6:
		ua.IP = append(net.IP(nil), sa.Addr[:]...)
		ua.Port = bePort(&sa.Port)
	default:
		return "?"
	}
	s := ua.String()
	if len(b.fromCache) > 1<<16 {
		// A hostile sender space cannot grow the intern table without
		// bound; stable swarms re-intern after a reset.
		clear(b.fromCache)
	}
	b.fromCache[string(key)] = s
	return s
}

// release returns any armed-but-undelivered buffers to the arena.
func (b *recvBatcher) release() {
	for i := range b.bufs {
		if b.bufs[i] != nil {
			wire.PutBuf(b.bufs[i])
			b.bufs[i] = nil
		}
	}
}

// sendBatcher is the send side: one sendmmsg call pushes a fan-out chunk.
// Guarded by UDPConn.sendMu.
type sendBatcher struct {
	c    *UDPConn
	rc   syscall.RawConn
	hdrs []mmsghdr
	iov  syscall.Iovec
}

func newSendBatcher(c *UDPConn) *sendBatcher {
	b := &sendBatcher{c: c}
	if sysSENDMMSG == 0 {
		return b // architecture without a sendmmsg number: fall back
	}
	rc, err := c.sock.SyscallConn()
	if err != nil {
		return b // rc == nil: fall back to WriteToUDP per destination
	}
	b.rc = rc
	b.hdrs = make([]mmsghdr, udpBatch)
	return b
}

// sendBatch fans data out to every address, coalescing destinations into
// sendmmsg calls of up to udpBatch messages.
func (c *UDPConn) sendBatch(addrs []string, data []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.sender == nil {
		c.sender = newSendBatcher(c)
	}
	return c.sender.send(addrs, data)
}

func (b *sendBatcher) send(addrs []string, data []byte) error {
	var first error
	if b.rc == nil || len(data) == 0 {
		for _, to := range addrs {
			if err := b.sendOne(to, data); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	b.iov.Base = &data[0]
	b.iov.SetLen(len(data))
	i := 0
	for i < len(addrs) {
		cnt := 0
		for cnt < len(b.hdrs) && i < len(addrs) {
			pa, err := b.c.resolve(addrs[i])
			i++
			if err != nil {
				if first == nil {
					first = err
				}
				continue
			}
			if pa.raw.len == 0 {
				// Address with no raw encoding (e.g. zoned IPv6): plain
				// sendto.
				if _, err := b.c.sock.WriteToUDP(data, pa.ua); err != nil && first == nil {
					first = err
				}
				b.c.noteSendBatch(1)
				continue
			}
			h := &b.hdrs[cnt]
			h.hdr.Name = (*byte)(unsafe.Pointer(&pa.raw.data))
			h.hdr.Namelen = pa.raw.len
			h.hdr.Iov = &b.iov
			h.hdr.Iovlen = 1
			h.hdr.Flags = 0
			h.msgLen = 0
			cnt++
		}
		if cnt == 0 {
			continue
		}
		if err := b.flush(cnt); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flush pushes hdrs[0:cnt] through sendmmsg, retrying partial sends.
func (b *sendBatcher) flush(cnt int) error {
	off := 0
	for off < cnt {
		var n int
		var errno syscall.Errno
		err := b.rc.Write(func(fd uintptr) bool {
			n, errno = sendmmsg(fd, b.hdrs[off:cnt], syscall.MSG_DONTWAIT)
			return !(errno == syscall.EAGAIN || errno == syscall.EINTR)
		})
		if err != nil {
			return err
		}
		if errno != 0 {
			return errno
		}
		if n <= 0 {
			return syscall.EIO
		}
		b.c.noteSendBatch(n)
		off += n
	}
	return nil
}

// sendOne is the per-destination fallback.
func (b *sendBatcher) sendOne(to string, data []byte) error {
	pa, err := b.c.resolve(to)
	if err != nil {
		return err
	}
	_, err = b.c.sock.WriteToUDP(data, pa.ua)
	b.c.noteSendBatch(1)
	return err
}
