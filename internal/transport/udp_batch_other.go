//go:build !linux

package transport

import "repro/internal/wire"

// Portable fallback: no recvmmsg/sendmmsg, so every syscall moves exactly
// one datagram. The batching counters still run (occupancy is always 1),
// keeping the observability surface identical across platforms.

// rawSockaddr has no content off Linux; peer resolution keeps only the
// net-layer address.
type rawSockaddr struct{}

func fillRawSockaddr(*peerAddr) {}

// recvBatcher receives one datagram per fill call.
type recvBatcher struct {
	c    *UDPConn
	msgs []recvMsg
}

func newRecvBatcher(c *UDPConn) *recvBatcher {
	return &recvBatcher{c: c, msgs: make([]recvMsg, 1)}
}

func (b *recvBatcher) fill() (int, error) {
	buf := wire.GetBuf(b.c.recvBuf)[:b.c.recvBuf]
	n, _, flags, from, err := b.c.sock.ReadMsgUDP(buf, nil)
	if err != nil {
		wire.PutBuf(buf)
		return 0, err
	}
	b.msgs[0] = recvMsg{buf: buf[:n], from: from.String(), truncated: flags&msgTrunc != 0}
	b.c.noteRecvBatch(1)
	return 1, nil
}

func (b *recvBatcher) release() {}

// sendBatcher exists only to satisfy the UDPConn field; sends go one
// WriteToUDP at a time.
type sendBatcher struct{}

func (c *UDPConn) sendBatch(addrs []string, data []byte) error {
	var first error
	for _, to := range addrs {
		pa, err := c.resolve(to)
		if err == nil {
			_, err = c.sock.WriteToUDP(data, pa.ua)
			c.noteSendBatch(1)
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
