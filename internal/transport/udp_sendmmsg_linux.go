//go:build linux && !amd64 && !arm64

package transport

// The stdlib syscall package predates sendmmsg, so its number is declared
// locally per architecture. 0 disables the batched send path (the send
// side falls back to one sendto per destination; recvmmsg still batches).
const sysSENDMMSG = 0
