package transport

import (
	"testing"
	"time"
)

func TestBandwidthSerializesEgress(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	// 1 MB/s: a 100 KB packet takes 100 ms on the sender's link.
	n.SetBandwidth(1e6)
	a, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100_000)
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-b.Recv():
		case <-time.After(2 * time.Second):
			t.Fatal("packet lost")
		}
	}
	elapsed := time.Since(start)
	// 3 × 100 ms of serialization; allow generous slack below but the
	// last packet cannot legally arrive before ~250 ms.
	if elapsed < 250*time.Millisecond {
		t.Fatalf("3x100KB at 1MB/s arrived in %v; egress serialization missing", elapsed)
	}
}

func TestBandwidthSmallPacketsUnaffected(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	n.SetBandwidth(100e6) // 100 MB/s: a 100-byte packet costs 1 µs
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	start := time.Now()
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send("b", make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		select {
		case <-b.Recv():
		case <-time.After(time.Second):
			t.Fatal("packet lost")
		}
	}
	// 200 µs of serialization total: far below the inline-delivery
	// threshold, so this must complete quickly.
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("small packets throttled: %v", elapsed)
	}
}

func TestBandwidthIdleLinkRecovers(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	n.SetBandwidth(1e6)
	a, _ := n.Listen("a")
	b, _ := n.Listen("b")
	// Saturate, wait for the link to drain, then a small packet must go
	// through inline (no inherited backlog).
	_ = a.Send("b", make([]byte, 200_000))
	select {
	case <-b.Recv():
	case <-time.After(2 * time.Second):
		t.Fatal("big packet lost")
	}
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	_ = a.Send("b", []byte("tiny"))
	select {
	case <-b.Recv():
	case <-time.After(time.Second):
		t.Fatal("tiny packet lost")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("idle link still throttled: %v", elapsed)
	}
}
