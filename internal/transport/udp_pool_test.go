package transport

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestUDPTruncatedRecvs: a datagram larger than the receive buffer is
// dropped whole and counted — globally and per peer — instead of being
// silently truncated and handed upstream as garbage.
func TestUDPTruncatedRecvs(t *testing.T) {
	recv, err := listenUDPBuf("127.0.0.1:0", 512)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	big := bytes.Repeat([]byte{7}, 1024) // over the 512-byte ring buffer
	if err := send.Send(recv.Addr(), big); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for recv.TruncatedRecvs() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := recv.TruncatedRecvs(); got != 1 {
		t.Fatalf("TruncatedRecvs = %d, want 1", got)
	}
	byPeer := recv.TruncatedRecvsFrom()
	if got := byPeer[send.Addr()]; got != 1 {
		t.Fatalf("TruncatedRecvsFrom[%q] = %d, want 1 (map: %v)", send.Addr(), got, byPeer)
	}

	// A fitting datagram still arrives, intact.
	small := bytes.Repeat([]byte{9}, 256)
	if err := send.Send(recv.Addr(), small); err != nil {
		t.Fatal(err)
	}
	pkt := recvOne(t, recv)
	if !bytes.Equal(pkt.Data, small) {
		t.Fatal("small datagram corrupted")
	}
	if got := recv.TruncatedRecvs(); got != 1 {
		t.Fatalf("TruncatedRecvs moved to %d on a fitting datagram", got)
	}
}

// TestUDPPooledRecvRing: receive buffers cycle through the arena — a
// released packet's buffer is reused by later receives, and with debug
// scribbling enabled a (correctly) released buffer never corrupts a
// packet still being consumed.
func TestUDPPooledRecvRing(t *testing.T) {
	wire.SetPoolDebug(true)
	defer wire.SetPoolDebug(false)

	recv, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	for round := 0; round < 32; round++ {
		msg := bytes.Repeat([]byte{byte(round + 1)}, 700)
		if err := send.Send(recv.Addr(), msg); err != nil {
			t.Fatal(err)
		}
		pkt := recvOne(t, recv)
		if !bytes.Equal(pkt.Data, msg) {
			t.Fatalf("round %d: payload corrupted (scribbled ring buffer reused while owned?)", round)
		}
		pkt.Release() // done with it: hand the ring buffer back
	}
}
