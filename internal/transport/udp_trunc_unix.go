//go:build !windows

package transport

import "syscall"

// msgTrunc is the recvmsg flag set by the kernel when a datagram did not
// fit the receive buffer.
const msgTrunc = syscall.MSG_TRUNC
