package transport

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

// newUnreadUDPConn builds a UDPConn whose readLoop is NOT running, so a
// test can queue datagrams in the kernel socket buffer and observe how the
// recvBatcher drains them. The caller closes the socket directly.
func newUnreadUDPConn(t *testing.T) *UDPConn {
	t.Helper()
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = sock.Close() })
	return &UDPConn{
		sock:    sock,
		addr:    sock.LocalAddr().String(),
		ch:      make(chan Packet, 64),
		recvBuf: maxDatagram,
		peers:   make(map[string]*peerAddr),
		truncBy: make(map[string]uint64),
	}
}

// TestRecvBatchOccupancy queues a burst of datagrams before the first
// receive call, then drains through the platform batcher: on Linux one
// recvmmsg call must move several datagrams (occupancy > 1); on the
// portable path every call moves exactly one. Either way every datagram
// arrives and the occupancy histogram accounts for every syscall.
func TestRecvBatchOccupancy(t *testing.T) {
	const burst = 12
	c := newUnreadUDPConn(t)

	sender, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer sender.Close()
	for i := 0; i < burst; i++ {
		if _, err := sender.Write([]byte(fmt.Sprintf("datagram-%02d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Let the kernel queue the burst before the first receive syscall —
	// this is the deep-socket-queue swarm condition batching exists for.
	time.Sleep(100 * time.Millisecond)

	// Deadline so a lost datagram fails the test instead of hanging it.
	_ = c.sock.SetReadDeadline(time.Now().Add(5 * time.Second))
	b := newRecvBatcher(c)
	defer b.release()
	got := make(map[string]bool)
	for len(got) < burst {
		n, err := b.fill()
		if err != nil {
			t.Fatalf("fill after %d datagrams: %v", len(got), err)
		}
		for i := 0; i < n; i++ {
			if b.msgs[i].truncated {
				t.Fatalf("unexpected truncation of %q", b.msgs[i].buf)
			}
			if b.msgs[i].from != sender.LocalAddr().String() {
				t.Fatalf("from = %q, want %q", b.msgs[i].from, sender.LocalAddr().String())
			}
			got[string(b.msgs[i].buf)] = true
		}
	}

	s := c.BatchStats()
	if s.RecvMsgs != burst {
		t.Fatalf("RecvMsgs = %d, want %d", s.RecvMsgs, burst)
	}
	var occCalls uint64
	for _, n := range s.RecvOccupancy {
		occCalls += n
	}
	if occCalls != s.RecvCalls {
		t.Fatalf("occupancy buckets sum to %d calls, counter says %d", occCalls, s.RecvCalls)
	}
	if runtime.GOOS == "linux" {
		if s.RecvCalls >= burst {
			t.Fatalf("no batching: %d syscalls for %d queued datagrams", s.RecvCalls, burst)
		}
		if s.RecvPerCall() <= 1 {
			t.Fatalf("recv occupancy = %.2f, want > 1", s.RecvPerCall())
		}
	} else if s.RecvCalls != burst {
		t.Fatalf("portable path: %d syscalls, want %d (one per datagram)", s.RecvCalls, burst)
	}
}

// TestSendBatchOccupancy fans one payload out to several destinations
// through the platform send batcher: on Linux the fan-out coalesces into
// fewer sendmmsg calls than destinations; everywhere the datagrams arrive
// and the counters balance.
func TestSendBatchOccupancy(t *testing.T) {
	const fanout = 8
	c := newUnreadUDPConn(t)

	recvs := make([]*net.UDPConn, fanout)
	addrs := make([]string, fanout)
	for i := range recvs {
		sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("receiver %d: %v", i, err)
		}
		defer sock.Close()
		recvs[i] = sock
		addrs[i] = sock.LocalAddr().String()
	}

	payload := []byte("broadcast payload")
	if err := c.sendBatch(addrs, payload); err != nil {
		t.Fatalf("sendBatch: %v", err)
	}
	buf := make([]byte, 64)
	for i, sock := range recvs {
		_ = sock.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := sock.Read(buf)
		if err != nil {
			t.Fatalf("receiver %d: %v", i, err)
		}
		if string(buf[:n]) != string(payload) {
			t.Fatalf("receiver %d got %q", i, buf[:n])
		}
	}

	s := c.BatchStats()
	if s.SendMsgs != fanout {
		t.Fatalf("SendMsgs = %d, want %d", s.SendMsgs, fanout)
	}
	var occCalls uint64
	for _, n := range s.SendOccupancy {
		occCalls += n
	}
	if occCalls != s.SendCalls {
		t.Fatalf("occupancy buckets sum to %d calls, counter says %d", occCalls, s.SendCalls)
	}
	if runtime.GOOS == "linux" && sysSENDMMSG != 0 {
		if s.SendCalls >= fanout {
			t.Fatalf("no coalescing: %d syscalls for a %d-way fan-out", s.SendCalls, fanout)
		}
	}
}
