package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
)

// MACSize is the size in bytes of a truncated MAC tag, matching the 8-byte
// tags of the UMAC32 construction used by the original implementation.
const MACSize = 8

// MAC is a truncated per-pair message authentication tag.
type MAC [MACSize]byte

// SessionKey is a pairwise symmetric key used to compute MACs between two
// specific nodes.
type SessionKey struct {
	key [32]byte
}

// NewSessionKey builds a session key from raw bytes; it is primarily useful
// in tests. Production keys come from KeyPair.SharedKey.
func NewSessionKey(b []byte) SessionKey {
	var sk SessionKey
	d := DigestOf(b)
	copy(sk.key[:], d[:])
	return sk
}

// MAC computes the truncated tag over msg.
func (sk SessionKey) MAC(msg []byte) MAC {
	h := hmac.New(sha256.New, sk.key[:])
	h.Write(msg)
	var full [sha256.Size]byte
	h.Sum(full[:0])
	var m MAC
	copy(m[:], full[:MACSize])
	return m
}

// VerifyMAC reports whether tag authenticates msg under the session key,
// in constant time.
func (sk SessionKey) VerifyMAC(msg []byte, tag MAC) bool {
	want := sk.MAC(msg)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// Authenticator is the multi-receiver authentication structure of PBFT: one
// MAC per replica, in replica-id order. A sender computes it once per
// message; each replica verifies only its own entry.
type Authenticator struct {
	Tags []MAC
}

// ComputeAuthenticator builds an authenticator over msg for the given
// per-replica session keys (indexed by replica id).
func ComputeAuthenticator(keys []SessionKey, msg []byte) Authenticator {
	tags := make([]MAC, len(keys))
	for i, k := range keys {
		tags[i] = k.MAC(msg)
	}
	return Authenticator{Tags: tags}
}

// VerifyEntry reports whether the authenticator's entry for replica id
// authenticates msg under the pairwise key.
func (a Authenticator) VerifyEntry(id int, key SessionKey, msg []byte) bool {
	if id < 0 || id >= len(a.Tags) {
		return false
	}
	return key.VerifyMAC(msg, a.Tags[id])
}

// Marshal flattens the authenticator: a 2-byte count followed by the tags.
func (a Authenticator) Marshal() []byte {
	out := make([]byte, 2+len(a.Tags)*MACSize)
	binary.BigEndian.PutUint16(out, uint16(len(a.Tags)))
	for i, t := range a.Tags {
		copy(out[2+i*MACSize:], t[:])
	}
	return out
}

// UnmarshalAuthenticator parses the output of Marshal. It returns the
// number of bytes consumed.
func UnmarshalAuthenticator(b []byte) (Authenticator, int, bool) {
	if len(b) < 2 {
		return Authenticator{}, 0, false
	}
	n := int(binary.BigEndian.Uint16(b))
	need := 2 + n*MACSize
	if len(b) < need {
		return Authenticator{}, 0, false
	}
	a := Authenticator{Tags: make([]MAC, n)}
	for i := 0; i < n; i++ {
		copy(a.Tags[i][:], b[2+i*MACSize:])
	}
	return a, need, true
}
