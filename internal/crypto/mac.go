package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"hash"
	"sync"
)

// MACSize is the size in bytes of a truncated MAC tag, matching the 8-byte
// tags of the UMAC32 construction used by the original implementation.
const MACSize = 8

// MAC is a truncated per-pair message authentication tag.
type MAC [MACSize]byte

// SessionKey is a pairwise symmetric key used to compute MACs between two
// specific nodes.
//
// Keys built by the constructors (NewSessionKey, KeyPair.SharedKey) carry
// a pool of reusable keyed HMAC states: value copies of the key share the
// pool, so the per-message cost is a Reset instead of a fresh key schedule
// and two hash-state allocations. The zero value still works (MAC falls
// back to hmac.New per call); it just doesn't amortize.
type SessionKey struct {
	key [32]byte
	// states pools keyed HMAC states for this key. The pointer is shared
	// by every value copy of the key; nil on zero-value keys.
	states *sync.Pool
}

// macState is one pooled keyed HMAC state plus its sum scratch (kept
// alongside so the Sum destination never escapes to a fresh allocation).
type macState struct {
	h   hash.Hash
	sum [sha256.Size]byte
}

// newSessionKeyFromDigest builds a key (with its HMAC state pool) from a
// 32-byte digest.
func newSessionKeyFromDigest(d Digest) SessionKey {
	var sk SessionKey
	copy(sk.key[:], d[:])
	key := sk.key
	sk.states = &sync.Pool{New: func() any {
		return &macState{h: hmac.New(sha256.New, key[:])}
	}}
	return sk
}

// NewSessionKey builds a session key from raw bytes; it is primarily useful
// in tests. Production keys come from KeyPair.SharedKey.
func NewSessionKey(b []byte) SessionKey {
	return newSessionKeyFromDigest(DigestOf(b))
}

// mac computes the truncated tag using a pooled HMAC state when available.
func (sk SessionKey) mac(msg []byte) MAC {
	var st *macState
	if sk.states != nil {
		st = sk.states.Get().(*macState)
		st.h.Reset()
	} else {
		st = &macState{h: hmac.New(sha256.New, sk.key[:])}
	}
	st.h.Write(msg)
	st.h.Sum(st.sum[:0])
	var m MAC
	copy(m[:], st.sum[:MACSize])
	if sk.states != nil {
		sk.states.Put(st)
	}
	return m
}

// MAC computes the truncated tag over msg.
func (sk SessionKey) MAC(msg []byte) MAC { return sk.mac(msg) }

// VerifyMAC reports whether tag authenticates msg under the session key,
// in constant time.
func (sk SessionKey) VerifyMAC(msg []byte, tag MAC) bool {
	want := sk.mac(msg)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// Authenticator is the multi-receiver authentication structure of PBFT: one
// MAC per replica, in replica-id order. A sender computes it once per
// message; each replica verifies only its own entry.
type Authenticator struct {
	Tags []MAC
}

// ComputeAuthenticator builds an authenticator over msg for the given
// per-replica session keys (indexed by replica id).
func ComputeAuthenticator(keys []SessionKey, msg []byte) Authenticator {
	tags := make([]MAC, len(keys))
	for i, k := range keys {
		tags[i] = k.mac(msg)
	}
	return Authenticator{Tags: tags}
}

// VerifyEntry reports whether the authenticator's entry for replica id
// authenticates msg under the pairwise key.
func (a Authenticator) VerifyEntry(id int, key SessionKey, msg []byte) bool {
	if id < 0 || id >= len(a.Tags) {
		return false
	}
	return key.VerifyMAC(msg, a.Tags[id])
}

// MarshaledSize returns the length of the authenticator's wire form.
func (a Authenticator) MarshaledSize() int { return 2 + len(a.Tags)*MACSize }

// AppendMarshal appends the authenticator's wire form (a 2-byte count
// followed by the tags) to dst and returns the extended slice.
func (a Authenticator) AppendMarshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(a.Tags)))
	for _, t := range a.Tags {
		dst = append(dst, t[:]...)
	}
	return dst
}

// Marshal flattens the authenticator: a 2-byte count followed by the tags.
func (a Authenticator) Marshal() []byte {
	return a.AppendMarshal(make([]byte, 0, a.MarshaledSize()))
}

// UnmarshalAuthenticator parses the output of Marshal. It returns the
// number of bytes consumed.
func UnmarshalAuthenticator(b []byte) (Authenticator, int, bool) {
	var a Authenticator
	n, ok := UnmarshalAuthenticatorInto(&a, b)
	return a, n, ok
}

// UnmarshalAuthenticatorInto parses the output of Marshal into a, reusing
// the Tags backing array when its capacity suffices — the pooled ingress
// path decodes one authenticator per packet without allocating. It
// returns the number of bytes consumed.
func UnmarshalAuthenticatorInto(a *Authenticator, b []byte) (int, bool) {
	if len(b) < 2 {
		return 0, false
	}
	n := int(binary.BigEndian.Uint16(b))
	need := 2 + n*MACSize
	if len(b) < need {
		return 0, false
	}
	if cap(a.Tags) >= n {
		a.Tags = a.Tags[:n]
	} else {
		a.Tags = make([]MAC, n)
	}
	for i := 0; i < n; i++ {
		copy(a.Tags[i][:], b[2+i*MACSize:])
	}
	return need, true
}
