package crypto

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"io"
)

// SignatureSize is the size in bytes of a public-key signature.
const SignatureSize = ed25519.SignatureSize

// PublicKeySize is the size in bytes of a marshaled node public identity
// (signing key followed by key-agreement key).
const PublicKeySize = ed25519.PublicKeySize + 32

// KeyPair holds a node's long-term private key material: an Ed25519 signing
// key and an X25519 key-agreement key. It stands in for the Rabin key pair
// of the original implementation.
type KeyPair struct {
	signPriv ed25519.PrivateKey
	dhPriv   *ecdh.PrivateKey
	pub      PublicKey
}

// PublicKey is a node's public identity: the verification half of the
// signing key and the public half of the key-agreement key.
type PublicKey struct {
	Sign ed25519.PublicKey
	DH   []byte // X25519 public key bytes
}

// GenerateKeyPair creates a fresh key pair using the given entropy source
// (nil means crypto/rand.Reader).
func GenerateKeyPair(rng io.Reader) (*KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	signPub, signPriv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("generate signing key: %w", err)
	}
	dhPriv, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("generate key-agreement key: %w", err)
	}
	return &KeyPair{
		signPriv: signPriv,
		dhPriv:   dhPriv,
		pub: PublicKey{
			Sign: signPub,
			DH:   dhPriv.PublicKey().Bytes(),
		},
	}, nil
}

// Public returns the public identity for the key pair.
func (k *KeyPair) Public() PublicKey { return k.pub }

// privateKeySize is the marshaled private key material length: the
// Ed25519 private key (64 bytes) followed by the X25519 scalar (32).
const privateKeySize = ed25519.PrivateKeySize + 32

// Marshal serializes the private key material (for key files used by the
// cmd/ deployment tools). Guard it like any credential.
func (k *KeyPair) Marshal() []byte {
	out := make([]byte, 0, privateKeySize)
	out = append(out, k.signPriv...)
	out = append(out, k.dhPriv.Bytes()...)
	return out
}

// UnmarshalKeyPair parses the output of Marshal.
func UnmarshalKeyPair(b []byte) (*KeyPair, error) {
	if len(b) != privateKeySize {
		return nil, fmt.Errorf("private key: got %d bytes, want %d", len(b), privateKeySize)
	}
	signPriv := ed25519.PrivateKey(append([]byte(nil), b[:ed25519.PrivateKeySize]...))
	dhPriv, err := ecdh.X25519().NewPrivateKey(b[ed25519.PrivateKeySize:])
	if err != nil {
		return nil, fmt.Errorf("key-agreement key: %w", err)
	}
	return &KeyPair{
		signPriv: signPriv,
		dhPriv:   dhPriv,
		pub: PublicKey{
			Sign: signPriv.Public().(ed25519.PublicKey),
			DH:   dhPriv.PublicKey().Bytes(),
		},
	}, nil
}

// Sign signs msg with the node's signing key.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.signPriv, msg)
}

// SharedKey derives the pairwise session MAC key between this node and the
// peer identified by its public identity. Both sides derive the same key,
// replacing the original implementation's "client picks a key and encrypts
// it to the replica" scheme with stdlib X25519 agreement.
func (k *KeyPair) SharedKey(peer PublicKey) (SessionKey, error) {
	peerDH, err := ecdh.X25519().NewPublicKey(peer.DH)
	if err != nil {
		return SessionKey{}, fmt.Errorf("peer key-agreement key: %w", err)
	}
	secret, err := k.dhPriv.ECDH(peerDH)
	if err != nil {
		return SessionKey{}, fmt.Errorf("ecdh: %w", err)
	}
	// Bind the derived key to both identities so that A->B and B->A use
	// the same key regardless of which side derives it.
	return newSessionKeyFromDigest(DigestOf([]byte("pbft-session-key"), secret)), nil
}

// Verify reports whether sig is a valid signature over msg by pub.
func Verify(pub PublicKey, msg, sig []byte) bool {
	if len(pub.Sign) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub.Sign, msg, sig)
}

// MarshalPublicKey flattens a public identity to PublicKeySize bytes.
func MarshalPublicKey(pub PublicKey) []byte {
	out := make([]byte, 0, PublicKeySize)
	out = append(out, pub.Sign...)
	out = append(out, pub.DH...)
	return out
}

// UnmarshalPublicKey parses the output of MarshalPublicKey.
func UnmarshalPublicKey(b []byte) (PublicKey, error) {
	if len(b) != PublicKeySize {
		return PublicKey{}, fmt.Errorf("public key: got %d bytes, want %d", len(b), PublicKeySize)
	}
	pub := PublicKey{
		Sign: ed25519.PublicKey(append([]byte(nil), b[:ed25519.PublicKeySize]...)),
		DH:   append([]byte(nil), b[ed25519.PublicKeySize:]...),
	}
	return pub, nil
}
