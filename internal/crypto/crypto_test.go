package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDigestOf(t *testing.T) {
	tests := []struct {
		name  string
		a, b  [][]byte
		equal bool
	}{
		{"same single part", [][]byte{[]byte("abc")}, [][]byte{[]byte("abc")}, true},
		{"split differently same bytes", [][]byte{[]byte("ab"), []byte("c")}, [][]byte{[]byte("abc")}, true},
		{"different content", [][]byte{[]byte("abc")}, [][]byte{[]byte("abd")}, false},
		{"empty vs nil", [][]byte{}, [][]byte{nil}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			da, db := DigestOf(tt.a...), DigestOf(tt.b...)
			if (da == db) != tt.equal {
				t.Fatalf("DigestOf(%q) == DigestOf(%q): got %v, want %v", tt.a, tt.b, da == db, tt.equal)
			}
		})
	}
}

func TestDigestIsZero(t *testing.T) {
	var zero Digest
	if !zero.IsZero() {
		t.Fatal("zero digest must report IsZero")
	}
	if DigestOf([]byte("x")).IsZero() {
		t.Fatal("non-trivial digest must not report IsZero")
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("vote for replica 3")
	sig := kp.Sign(msg)
	if !Verify(kp.Public(), msg, sig) {
		t.Fatal("signature must verify under the signer's public key")
	}
	if Verify(kp.Public(), []byte("tampered"), sig) {
		t.Fatal("signature over different message must not verify")
	}
	other, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if Verify(other.Public(), msg, sig) {
		t.Fatal("signature must not verify under a different public key")
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	kp, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if Verify(PublicKey{}, []byte("m"), kp.Sign([]byte("m"))) {
		t.Fatal("empty public key must not verify")
	}
	if Verify(kp.Public(), []byte("m"), nil) {
		t.Fatal("nil signature must not verify")
	}
	if Verify(kp.Public(), []byte("m"), []byte("short")) {
		t.Fatal("truncated signature must not verify")
	}
}

func TestSharedKeySymmetry(t *testing.T) {
	a, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	kab, err := a.SharedKey(b.Public())
	if err != nil {
		t.Fatal(err)
	}
	kba, err := b.SharedKey(a.Public())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pairwise")
	if !kba.VerifyMAC(msg, kab.MAC(msg)) {
		t.Fatal("both sides of an ECDH agreement must derive the same session key")
	}
	c, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	kac, err := a.SharedKey(c.Public())
	if err != nil {
		t.Fatal(err)
	}
	if kac.VerifyMAC(msg, kab.MAC(msg)) {
		t.Fatal("distinct peers must derive distinct session keys")
	}
}

func TestSharedKeyRejectsGarbagePeer(t *testing.T) {
	a, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SharedKey(PublicKey{DH: []byte("nope")}); err == nil {
		t.Fatal("malformed peer DH key must be rejected")
	}
}

func TestMACRoundTrip(t *testing.T) {
	k := NewSessionKey([]byte("k1"))
	msg := []byte("hello")
	tag := k.MAC(msg)
	if !k.VerifyMAC(msg, tag) {
		t.Fatal("MAC must verify under the same key")
	}
	if k.VerifyMAC([]byte("hellp"), tag) {
		t.Fatal("MAC must not verify for a different message")
	}
	if NewSessionKey([]byte("k2")).VerifyMAC(msg, tag) {
		t.Fatal("MAC must not verify under a different key")
	}
}

func TestAuthenticator(t *testing.T) {
	keys := []SessionKey{
		NewSessionKey([]byte("r0")),
		NewSessionKey([]byte("r1")),
		NewSessionKey([]byte("r2")),
		NewSessionKey([]byte("r3")),
	}
	msg := []byte("pre-prepare v=0 n=1")
	auth := ComputeAuthenticator(keys, msg)
	for i, k := range keys {
		if !auth.VerifyEntry(i, k, msg) {
			t.Fatalf("replica %d must verify its own authenticator entry", i)
		}
	}
	if auth.VerifyEntry(0, keys[1], msg) {
		t.Fatal("entry must not verify under another replica's key")
	}
	if auth.VerifyEntry(-1, keys[0], msg) || auth.VerifyEntry(4, keys[0], msg) {
		t.Fatal("out-of-range entries must not verify")
	}
}

func TestAuthenticatorMarshalRoundTrip(t *testing.T) {
	f := func(seed []byte, n uint8) bool {
		nn := int(n % 8)
		keys := make([]SessionKey, nn)
		for i := range keys {
			keys[i] = NewSessionKey(append(seed, byte(i)))
		}
		a := ComputeAuthenticator(keys, seed)
		raw := a.Marshal()
		// Append trailing junk; Unmarshal must report the exact consumed length.
		got, n2, ok := UnmarshalAuthenticator(append(raw, 0xEE, 0xFF))
		if !ok || n2 != len(raw) || len(got.Tags) != nn {
			return false
		}
		for i := range got.Tags {
			if got.Tags[i] != a.Tags[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalAuthenticatorTruncated(t *testing.T) {
	a := ComputeAuthenticator([]SessionKey{NewSessionKey([]byte("k"))}, []byte("m"))
	raw := a.Marshal()
	for i := 0; i < len(raw); i++ {
		if _, _, ok := UnmarshalAuthenticator(raw[:i]); ok {
			t.Fatalf("truncation to %d bytes must fail", i)
		}
	}
}

func TestMarshalPublicKeyRoundTrip(t *testing.T) {
	kp, err := GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	raw := MarshalPublicKey(kp.Public())
	if len(raw) != PublicKeySize {
		t.Fatalf("marshaled key: got %d bytes, want %d", len(raw), PublicKeySize)
	}
	got, err := UnmarshalPublicKey(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Sign, kp.Public().Sign) || !bytes.Equal(got.DH, kp.Public().DH) {
		t.Fatal("public key must round-trip")
	}
	if _, err := UnmarshalPublicKey(raw[:10]); err == nil {
		t.Fatal("short key must be rejected")
	}
}

func BenchmarkSign(b *testing.B) {
	kp, err := GenerateKeyPair(nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kp.Sign(msg)
	}
}

func BenchmarkVerifySignature(b *testing.B) {
	kp, err := GenerateKeyPair(nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 1024)
	sig := kp.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(kp.Public(), msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkMAC(b *testing.B) {
	k := NewSessionKey([]byte("bench"))
	msg := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MAC(msg)
	}
}

func BenchmarkAuthenticator4Replicas(b *testing.B) {
	keys := make([]SessionKey, 4)
	for i := range keys {
		keys[i] = NewSessionKey([]byte{byte(i)})
	}
	msg := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeAuthenticator(keys, msg)
	}
}
