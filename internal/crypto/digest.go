// Package crypto provides the cryptographic substrate used by the PBFT
// middleware: content digests, per-pair message authentication codes
// (MACs), multi-receiver authenticators, public-key signatures, and
// pairwise session-key agreement.
//
// The original Castro–Liskov code base used the Rabin cryptosystem for
// signatures, UMAC32 for MACs and MD5 for digests. This package keeps the
// same *cost structure* (signing and verifying are orders of magnitude more
// expensive than MACs, digests are cheap) using only the Go standard
// library: Ed25519 signatures, HMAC-SHA-256 truncated to 8 bytes, and
// SHA-256 digests. See DESIGN.md, "Substitutions".
package crypto

import (
	"crypto/sha256"
	"encoding/hex"
)

// DigestSize is the size in bytes of a content digest.
const DigestSize = sha256.Size

// Digest is a collision-resistant content digest. The zero value is the
// digest of "nothing" and is used to denote null requests in new-view
// messages.
type Digest [DigestSize]byte

// DigestOf returns the digest of the concatenation of the given byte slices.
func DigestOf(parts ...[]byte) Digest {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// IsZero reports whether d is the zero (null) digest.
func (d Digest) IsZero() bool {
	return d == Digest{}
}

// String returns a short hexadecimal form of the digest for logs.
func (d Digest) String() string {
	return hex.EncodeToString(d[:8])
}
