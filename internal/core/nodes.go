package core

import (
	"sort"

	"repro/internal/crypto"
	"repro/internal/wire"
)

// nodeEntry is one row of the node table: a replica or a client.
type nodeEntry struct {
	ID   uint32
	Addr string
	Pub  crypto.PublicKey
	// HasSession is set once a SessionHello established MAC key
	// material. Session keys are deliberately transient (lost on
	// restart): this models the original implementation's
	// client-chosen MAC keys and reproduces the recovery behaviour of
	// §2.3.
	HasSession bool
	Session    crypto.SessionKey
	// Principal is the application-level identity of a dynamic client.
	Principal string
	// LastActive is the primary timestamp (ns) of the client's last
	// executed request, used for staleness eviction (§3.1).
	LastActive uint64
	// Dynamic marks entries created by Join (evictable).
	Dynamic bool

	// sessPrev/sessNext link entries with live sessions into the table's
	// recency list (head = least recently active). Local bookkeeping for
	// the MaxClientSessions bound — never replicated.
	sessPrev, sessNext *nodeEntry
	sessLinked         bool
}

// nodeTable is the redirection table of §3.1: it maps arbitrary node
// identifiers to entries, bounded by a maximum capacity. Looking up the
// identifier is cheap and happens before any signature or MAC
// verification.
type nodeTable struct {
	byID     map[uint32]*nodeEntry
	capacity int

	// Session recency list (intrusive, via nodeEntry.sessPrev/sessNext):
	// every entry with a live MAC session, least recently active first.
	// Backs the MaxClientSessions eviction policy.
	sessHead, sessTail *nodeEntry
	sessCount          int
}

func newNodeTable(capacity int) *nodeTable {
	return &nodeTable{
		byID:     make(map[uint32]*nodeEntry),
		capacity: capacity,
	}
}

// get returns the entry for id, or nil.
func (t *nodeTable) get(id uint32) *nodeEntry {
	return t.byID[id]
}

// full reports whether the table reached capacity.
func (t *nodeTable) full() bool {
	return t.capacity > 0 && len(t.byID) >= t.capacity
}

// add inserts an entry; the caller checked capacity.
func (t *nodeTable) add(e *nodeEntry) {
	t.byID[e.ID] = e
}

// remove deletes the entry for id.
func (t *nodeTable) remove(id uint32) {
	if e := t.byID[id]; e != nil {
		t.unlinkSession(e)
	}
	delete(t.byID, id)
}

// touchSession marks e most recently active in the session list, linking
// it on first touch. Call whenever a session is installed or used.
func (t *nodeTable) touchSession(e *nodeEntry) {
	if e.sessLinked {
		if t.sessTail == e {
			return
		}
		t.detachSession(e)
	} else {
		e.sessLinked = true
		t.sessCount++
	}
	e.sessPrev = t.sessTail
	e.sessNext = nil
	if t.sessTail != nil {
		t.sessTail.sessNext = e
	}
	t.sessTail = e
	if t.sessHead == nil {
		t.sessHead = e
	}
}

// unlinkSession removes e from the session list (session dropped, entry
// evicted or removed).
func (t *nodeTable) unlinkSession(e *nodeEntry) {
	if !e.sessLinked {
		return
	}
	t.detachSession(e)
	e.sessLinked = false
	t.sessCount--
}

// detachSession splices e out of the list without touching sessLinked.
func (t *nodeTable) detachSession(e *nodeEntry) {
	if e.sessPrev != nil {
		e.sessPrev.sessNext = e.sessNext
	} else {
		t.sessHead = e.sessNext
	}
	if e.sessNext != nil {
		e.sessNext.sessPrev = e.sessPrev
	} else {
		t.sessTail = e.sessPrev
	}
	e.sessPrev, e.sessNext = nil, nil
}

// oldestSession returns the least recently active entry with a live
// session, or nil.
func (t *nodeTable) oldestSession() *nodeEntry { return t.sessHead }

// sessionCount returns the number of live sessions.
func (t *nodeTable) sessionCount() int { return t.sessCount }

// byPrincipal returns the dynamic entries bound to the principal.
func (t *nodeTable) byPrincipal(principal string) []*nodeEntry {
	var out []*nodeEntry
	for _, e := range t.byID {
		if e.Dynamic && e.Principal == principal {
			out = append(out, e)
		}
	}
	return out
}

// staleBefore returns dynamic entries whose last activity predates the
// cutoff timestamp.
func (t *nodeTable) staleBefore(cutoff uint64) []*nodeEntry {
	var out []*nodeEntry
	for _, e := range t.byID {
		if e.Dynamic && e.LastActive < cutoff {
			out = append(out, e)
		}
	}
	return out
}

// sortedIDs returns all ids in ascending order (deterministic iteration
// for digests and marshaling).
func (t *nodeTable) sortedIDs() []uint32 {
	ids := make([]uint32, 0, len(t.byID))
	for id := range t.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// marshalDynamic serializes the dynamic membership rows (the part of the
// table that lives in replicated state) deterministically; it is folded
// into checkpoint digests and shipped during state transfer.
func (t *nodeTable) marshalDynamic() []byte {
	w := wire.NewWriter(256)
	ids := t.sortedIDs()
	count := 0
	for _, id := range ids {
		if t.byID[id].Dynamic {
			count++
		}
	}
	w.U32(uint32(count))
	for _, id := range ids {
		e := t.byID[id]
		if !e.Dynamic {
			continue
		}
		w.U32(e.ID)
		w.String32(e.Addr)
		w.Bytes32(crypto.MarshalPublicKey(e.Pub))
		w.String32(e.Principal)
		w.U64(e.LastActive)
	}
	return w.Bytes()
}

// unmarshalDynamic replaces the dynamic rows with the serialized set
// (state transfer install).
func (t *nodeTable) unmarshalDynamic(b []byte) error {
	r := wire.NewReader(b)
	n := int(r.U32())
	entries := make([]*nodeEntry, 0, n)
	for i := 0; i < n; i++ {
		e := &nodeEntry{Dynamic: true}
		e.ID = r.U32()
		e.Addr = r.String32()
		raw := r.Bytes32()
		e.Principal = r.String32()
		e.LastActive = r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		pub, err := crypto.UnmarshalPublicKey(raw)
		if err != nil {
			return err
		}
		e.Pub = pub
		entries = append(entries, e)
	}
	if err := r.Done(); err != nil {
		return err
	}
	for id, e := range t.byID {
		if e.Dynamic {
			t.unlinkSession(e)
			delete(t.byID, id)
		}
	}
	for _, e := range entries {
		t.byID[e.ID] = e
	}
	return nil
}
