package core

import (
	"encoding/hex"

	"repro/internal/crypto"
	"repro/internal/wire"
)

// joinChallengeDigest derives the phase-1 challenge deterministically from
// the ordered request, so every correct replica issues the same value
// (§3.1: replicas must process joins identically).
func joinChallengeDigest(pubRaw []byte, nonce uint64, seq uint64) crypto.Digest {
	w := wire.NewWriter(len(pubRaw) + 16)
	w.Bytes32(pubRaw)
	w.U64(nonce)
	w.U64(seq)
	return crypto.DigestOf([]byte("join-challenge"), w.Bytes())
}

// JoinResponseDigest computes the phase-2 solution the client must echo:
// possession of the challenge (received at the claimed address) and of the
// nonce proves address ownership.
func JoinResponseDigest(challenge crypto.Digest, nonce uint64) crypto.Digest {
	w := wire.NewWriter(40)
	w.Raw(challenge[:])
	w.U64(nonce)
	return crypto.DigestOf([]byte("join-response"), w.Bytes())
}

// onJoinRequest authenticates a Join system request against the key
// embedded in its body, then feeds it into ordering like any other
// request (§3.1: a single total order across application and system
// requests).
func (r *Replica) onJoinRequest(env *wire.Envelope, req *wire.Request) {
	code, body, ok := wire.SplitSysOp(req.Op)
	if !ok || code != wire.OpJoin {
		return
	}
	op, err := wire.UnmarshalJoinOp(body)
	if err != nil {
		return
	}
	pub, err := crypto.UnmarshalPublicKey(op.PubKey)
	if err != nil {
		return
	}
	if env.Kind != wire.AuthSig || !crypto.Verify(pub, env.SignedBytes(), env.Sig) {
		// The envelope does not verify against the credential it
		// presents: a fabricated join identity. Typed separately from
		// generic auth failures so the adversarial suite can assert the
		// drop without protocol activity.
		r.stats.DroppedBadAuth++
		r.stats.DroppedForgedJoins++
		return
	}
	// Retransmissions: a join that already progressed is answered from
	// the pending-join record or the join reply cache instead of being
	// ordered again.
	pkKey := pubKeyKey(op.PubKey)
	switch op.Phase {
	case wire.JoinPhaseHello:
		if pj := r.pendingJoins[pkKey]; pj != nil && pj.nonce == op.Nonce {
			ch := wire.JoinChallenge{Replica: r.id, Challenge: pj.challenge}
			r.sendToAddr(pj.addr, r.sealSigned(wire.MTJoinChall, ch.Marshal()))
			return
		}
	case wire.JoinPhaseResponse:
		if cached := r.joinReplies[pkKey]; cached != nil && cached.rep.Timestamp == req.Timestamp {
			r.sendToAddr(cached.addr, r.sealSigned(wire.MTReply, cached.rep.Marshal()))
			return
		}
	}
	// Join requests are always multicast by the client (big path):
	// store the body and let the primary order it.
	r.bigBodies[req.Digest()] = &bigBody{req: req}
	if r.isPrimary() && !r.inViewChange {
		key := "join:" + pubKeyKey(op.PubKey) + ":" + hexU64(op.Nonce) + ":" + hexU64(uint64(op.Phase))
		if r.primaryJoinSeen == nil {
			r.primaryJoinSeen = make(map[string]bool)
		}
		if r.primaryJoinSeen[key] {
			return
		}
		r.primaryJoinSeen[key] = true
		r.pendingQueue = append(r.pendingQueue, req)
		r.tryPropose()
	} else {
		k := reqKey{JoinSender, req.Timestamp}
		if _, seen := r.pendingSeen[k]; !seen {
			r.pendingSeen[k] = r.now()
		}
	}
}

// pubKeyKey keys pending joins by the digest of the joining public key.
func pubKeyKey(pubRaw []byte) string {
	d := crypto.DigestOf(pubRaw)
	return hex.EncodeToString(d[:])
}

func hexU64(v uint64) string {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[7-i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// executeSystem applies an ordered system request (Join/Leave).
func (r *Replica) executeSystem(req *wire.Request, nd NonDetValues, tentative bool, seq uint64) *wire.Reply {
	code, body, ok := wire.SplitSysOp(req.Op)
	if !ok {
		return nil
	}
	switch code {
	case wire.OpJoin:
		op, err := wire.UnmarshalJoinOp(body)
		if err != nil {
			return nil
		}
		switch op.Phase {
		case wire.JoinPhaseHello:
			return r.execJoinHello(req, op, nd, seq)
		case wire.JoinPhaseResponse:
			return r.execJoinResponse(req, op, nd, tentative)
		}
	case wire.OpLeave:
		return r.execLeave(req, tentative)
	}
	return nil
}

// execJoinHello runs phase 1: record the pending join and send the
// deterministic challenge to the claimed address.
func (r *Replica) execJoinHello(req *wire.Request, op *wire.JoinOp, nd NonDetValues, seq uint64) *wire.Reply {
	pub, err := crypto.UnmarshalPublicKey(op.PubKey)
	if err != nil {
		return nil
	}
	key := pubKeyKey(op.PubKey)
	challenge := joinChallengeDigest(op.PubKey, op.Nonce, seq)
	r.pendingJoins[key] = &pendingJoin{
		addr:      op.Addr,
		pubRaw:    append([]byte(nil), op.PubKey...),
		pub:       pub,
		nonce:     op.Nonce,
		appAuth:   append([]byte(nil), op.AppAuth...),
		challenge: challenge,
		ts:        uint64(nd.Time.UnixNano()),
	}
	ch := wire.JoinChallenge{Replica: r.id, Seq: seq, Challenge: challenge}
	env := r.sealSigned(wire.MTJoinChall, ch.Marshal())
	r.sendToAddr(op.Addr, env)
	return nil
}

// execJoinResponse runs phase 2: verify the challenge solution, authorize
// at the application level, enforce single-session-per-principal, evict
// stale sessions if the table is full, allocate the identifier, and admit
// the client (§3.1, Fig. 2).
func (r *Replica) execJoinResponse(req *wire.Request, op *wire.JoinOp, nd NonDetValues, tentative bool) *wire.Reply {
	key := pubKeyKey(op.PubKey)
	pj, ok := r.pendingJoins[key]
	result := wire.JoinResult{}
	switch {
	case !ok:
		result.Reason = "no pending join"
	case op.Response != JoinResponseDigest(pj.challenge, pj.nonce):
		result.Reason = "challenge response mismatch"
	default:
		principal := ""
		authorized := true
		if auth, okA := r.app.(Authorizer); okA {
			principal, authorized = auth.Authorize(pj.appAuth)
		}
		if !authorized {
			result.Reason = "authorization denied"
			break
		}
		// Single live session per principal: terminate the others.
		if principal != "" {
			for _, old := range r.nodes.byPrincipal(principal) {
				r.nodes.remove(old.ID)
				r.unpublishClientAuth(old.ID)
				delete(r.clientWins, old.ID)
				delete(r.primaryQueued, old.ID)
				r.stats.SessionsEvicted++
				r.traceClientSession(old.ID, SessionEvict)
			}
		}
		if r.nodes.full() {
			// Evict sessions idle longer than the staleness threshold,
			// measured against the join's primary timestamp (§3.1).
			cutoff := uint64(0)
			if stale := r.cfg.Opts.SessionStaleAfter; stale > 0 && pj.ts > uint64(stale) {
				cutoff = pj.ts - uint64(stale)
			}
			for _, old := range r.nodes.staleBefore(cutoff) {
				r.nodes.remove(old.ID)
				r.unpublishClientAuth(old.ID)
				delete(r.clientWins, old.ID)
				delete(r.primaryQueued, old.ID)
				r.stats.SessionsEvicted++
				r.traceClientSession(old.ID, SessionEvict)
			}
		}
		if r.nodes.full() {
			result.Reason = "node table full"
			break
		}
		id := r.allocateClientID(op.PubKey)
		admitted := &nodeEntry{
			ID:         id,
			Addr:       pj.addr,
			Pub:        pj.pub,
			Principal:  principal,
			LastActive: uint64(nd.Time.UnixNano()),
			Dynamic:    true,
		}
		r.nodes.add(admitted)
		r.publishClientAuth(admitted)
		result.ClientID = id
		result.Accepted = true
		r.stats.JoinsExecuted++
		r.traceClientSession(id, SessionJoin)
	}
	delete(r.pendingJoins, key)

	rep := &wire.Reply{
		View:      r.view,
		Timestamp: req.Timestamp,
		ClientID:  JoinSender,
		Replica:   r.id,
		Result:    result.Marshal(),
	}
	if tentative {
		rep.Flags |= wire.FlagTentative
	}
	// The reply is addressed by the join's claimed address; it is
	// signed (no session exists yet).
	addr := ""
	if ok {
		addr = pj.addr
	}
	if addr != "" {
		if r.joinReplies == nil {
			r.joinReplies = make(map[string]*joinReply)
		}
		r.joinReplies[key] = &joinReply{rep: rep, addr: addr}
		env := r.sealSigned(wire.MTReply, rep.Marshal())
		r.sendToAddr(addr, env)
	}
	return rep
}

// joinReply caches the outcome of an executed join for retransmissions
// (transient; a restarted replica relies on the client restarting the
// join).
type joinReply struct {
	rep  *wire.Reply
	addr string
}

// execLeave removes the client from the node table; all further
// communication from it is refused (§3.1).
func (r *Replica) execLeave(req *wire.Request, tentative bool) *wire.Reply {
	client := r.nodes.get(req.ClientID)
	if client == nil || !client.Dynamic {
		return nil
	}
	rep := &wire.Reply{
		View:      r.view,
		Timestamp: req.Timestamp,
		ClientID:  req.ClientID,
		Replica:   r.id,
		Result:    []byte("bye"),
	}
	if tentative {
		rep.Flags |= wire.FlagTentative
	}
	r.sendReply(rep, client)
	r.nodes.remove(req.ClientID)
	r.unpublishClientAuth(req.ClientID)
	delete(r.clientWins, req.ClientID)
	delete(r.primaryQueued, req.ClientID)
	r.stats.LeavesExecuted++
	r.traceClientSession(req.ClientID, SessionLeave)
	return rep
}

// allocateClientID picks a deterministic, unused identifier for a new
// client. Identifiers live outside the replica range and the sentinel.
func (r *Replica) allocateClientID(pubRaw []byte) uint32 {
	for {
		r.idSeed++
		d := crypto.DigestOf([]byte("client-id"), pubRaw, []byte{
			byte(r.idSeed), byte(r.idSeed >> 8), byte(r.idSeed >> 16), byte(r.idSeed >> 24),
			byte(r.idSeed >> 32), byte(r.idSeed >> 40), byte(r.idSeed >> 48), byte(r.idSeed >> 56),
		})
		id := uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
		if int(id) < r.n || id == JoinSender {
			continue
		}
		if r.nodes.get(id) != nil {
			continue
		}
		return id
	}
}

// onSessionHello (re-)establishes a client's MAC session keys. Clients
// retransmit hellos blindly on a timer; a replica that restarted regains
// the ability to authenticate the client only when the next hello arrives
// — the recovery behaviour of §2.3. The ingress worker already verified
// the hello's signature and derived the shared key; the loop re-checks
// that the entry's identity is still the one the worker verified against
// (the client could have left and another joined under the same id in the
// meantime), then installs the key.
func (r *Replica) onSessionHello(m *inMsg) {
	h := m.hello
	client := r.nodes.get(h.ClientID)
	if client == nil || int(h.ClientID) < r.n {
		return
	}
	sk := m.sessionKey
	if m.authPending {
		// The worker could not clear the hello (unknown client or
		// failed signature against its view). An unmoved view means
		// its verdict stands — and an unknown client with an unmoved
		// view cannot reach here (nodes.get above would be nil), so
		// this counts exactly the definitive signature failures.
		if r.ingress.clients.generation() == m.authGen {
			r.stats.DroppedBadAuth++
			return
		}
		// The view moved: verify and derive here, against the loop's
		// current table.
		env := &m.env
		if env.Kind != wire.AuthSig || !crypto.Verify(client.Pub, env.SignedBytes(), env.Sig) {
			r.stats.DroppedBadAuth++
			return
		}
		ephemeral, err := crypto.UnmarshalPublicKey(h.PubKey)
		if err != nil {
			return
		}
		sk, err = r.kp.SharedKey(ephemeral)
		if err != nil {
			return
		}
	} else if !pubKeyEqual(client.Pub, m.verifiedPub) {
		// The entry's identity changed between verification and
		// processing (leave + rejoin under the same id): the worker's
		// verification no longer vouches for this entry.
		return
	}
	client.Session = sk
	client.HasSession = true
	if h.Addr != "" {
		client.Addr = h.Addr
	}
	r.nodes.touchSession(client)
	r.enforceSessionCap()
	r.publishClientAuth(client)
	r.traceClientSession(client.ID, SessionHello)
}

// enforceSessionCap evicts least-recently-active MAC sessions until the
// table fits MaxClientSessions. Eviction drops only the (local, transient)
// key material: the entry — and with it the client's identity and dedup
// window — survives, so the client's next periodic hello re-establishes
// the session exactly like post-restart recovery (§2.3).
func (r *Replica) enforceSessionCap() {
	cap := r.cfg.MaxClientSessions()
	if cap <= 0 {
		return
	}
	for r.nodes.sessionCount() > cap {
		old := r.nodes.oldestSession()
		if old == nil {
			return
		}
		r.nodes.unlinkSession(old)
		old.HasSession = false
		old.Session = crypto.SessionKey{}
		// Republish without session key material: requests signed under
		// the long-term key still verify; MAC'd ones fail until the next
		// hello, as after a restart.
		r.publishClientAuth(old)
		r.stats.SessionsEvicted++
		r.traceClientSession(old.ID, SessionEvict)
	}
}
