package core

import "sync"

// reaper overlaps agreement with application execution
// (Options.AsyncReap): the protocol loop hands it spans of submitted-but-
// unfinished applies (the applyQueue of one tryExecute pass) and returns
// to agreement work immediately; the reaper goroutine waits for each
// span's engine tasks in submission order, seals and sends the replies —
// still strictly in sequence order, from state snapshotted at submission —
// and hands the span back for loop-side integration (reply cache, stats,
// client liveness).
//
// Integration is the only part that touches loop-owned state, and it runs
// only on the protocol loop: opportunistically when the reaper's notify
// channel fires, and exhaustively at every barrier (checkpoint,
// membership operation, view-change rollback, state transfer, shutdown)
// via drain. The barrier discipline is what keeps checkpoint digests
// byte-identical to synchronous reaping: a snapshot is never taken with a
// span in flight.
type reaper struct {
	r *Replica

	mu   sync.Mutex
	cond *sync.Cond // guards/wakes queue consumers and drain waiters
	// queue holds spans handed off and not yet reply-sent; done holds
	// spans reply-sent and not yet integrated by the loop; outstanding
	// counts both (handed off minus integrated).
	queue       [][]*pendingApply
	done        [][]*pendingApply
	outstanding int
	stopped     bool

	// notify wakes the protocol loop (capacity 1, non-blocking sends) to
	// integrate completed spans between protocol events.
	notify chan struct{}
	wg     sync.WaitGroup
}

func newReaper(r *Replica) *reaper {
	rp := &reaper{r: r, notify: make(chan struct{}, 1)}
	rp.cond = sync.NewCond(&rp.mu)
	return rp
}

// start launches the reaper goroutine (called from the replica's run).
func (rp *reaper) start() {
	rp.wg.Add(1)
	go rp.run()
}

// stop winds the reaper down after the current queue empties and waits
// for the goroutine. The engine keeps executing queued tasks regardless
// of the replica's lifecycle, so every handed-off span completes.
func (rp *reaper) stop() {
	rp.mu.Lock()
	rp.stopped = true
	rp.cond.Broadcast()
	rp.mu.Unlock()
	rp.wg.Wait()
}

// submit hands one span to the reaper. Loop-side only.
func (rp *reaper) submit(span []*pendingApply) {
	rp.mu.Lock()
	rp.queue = append(rp.queue, span)
	rp.outstanding++
	rp.cond.Broadcast()
	rp.mu.Unlock()
}

// idle reports whether no span is in flight or awaiting integration.
// Loop-side gate for the inline fast path: replies may leave the loop
// directly only when nothing older could be reordered behind them.
func (rp *reaper) idle() bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.outstanding == 0
}

// collect returns the spans that have been reply-sent and now await
// integration. Loop-side only.
func (rp *reaper) collect() [][]*pendingApply {
	rp.mu.Lock()
	spans := rp.done
	rp.done = nil
	rp.outstanding -= len(spans)
	if rp.outstanding == 0 {
		rp.cond.Broadcast()
	}
	rp.mu.Unlock()
	return spans
}

// drain blocks until every handed-off span has been reply-sent and
// integrated, invoking integrate (loop-side) for each span in order. This
// is the barrier entry point behind Replica.reapApplies.
func (rp *reaper) drain(integrate func([]*pendingApply)) {
	rp.mu.Lock()
	for {
		for len(rp.done) > 0 {
			span := rp.done[0]
			rp.done = rp.done[1:]
			rp.outstanding--
			rp.mu.Unlock()
			integrate(span)
			rp.mu.Lock()
		}
		if rp.outstanding == 0 {
			break
		}
		rp.cond.Wait()
	}
	rp.mu.Unlock()
}

// run is the reaper goroutine: wait each span's tasks in submission
// order, send its replies, hand it back.
func (rp *reaper) run() {
	defer rp.wg.Done()
	for {
		rp.mu.Lock()
		for len(rp.queue) == 0 && !rp.stopped {
			rp.cond.Wait()
		}
		if len(rp.queue) == 0 {
			rp.mu.Unlock()
			return
		}
		span := rp.queue[0]
		rp.queue = rp.queue[1:]
		rp.mu.Unlock()

		for _, pa := range span {
			// The task's done channel is the happens-before edge
			// publishing the shard worker's result write.
			<-pa.task.Done()
			rp.r.sealAndSendReply(pa)
		}

		rp.mu.Lock()
		rp.done = append(rp.done, span)
		rp.cond.Broadcast()
		rp.mu.Unlock()
		select {
		case rp.notify <- struct{}{}:
		default:
		}
	}
}
