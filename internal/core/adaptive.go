package core

import "time"

// batchController is the primary's adaptive batch-sizing control loop
// (Options.AdaptiveBatching): an AIMD window over the number of requests
// one pre-prepare may carry, driven by the two signals the tracer surface
// also exposes as histograms — batch occupancy (how full proposed batches
// run against the window) and commit latency (propose → 2f+1 commit
// certificate).
//
// Policy:
//
//   - Additive increase: a proposed batch that fills the current window
//     while commit latency is flat (EMA within inflationFactor of the best
//     observed baseline) grows the window by one. Full batches mean the
//     offered load is clipped by the window; flat latency means the larger
//     pre-prepares are not hurting agreement.
//   - Multiplicative decrease: commit-latency inflation (EMA beyond
//     inflationFactor × baseline) halves the window and starts a hold-off
//     so one congestion event is not charged twice.
//   - Bounds: the window never leaves [1, MaxBatch] — the static knob is
//     the ceiling, a single request the floor — and MaxBatchBytes still
//     caps the pre-prepare's wire size independently.
//
// The controller lives on the protocol loop (no locking) and is purely
// primary-local tuning: replicas never need to agree on it, exactly like
// the execution shard count.
type batchController struct {
	window  int // current batch-size window
	ceiling int // static MaxBatch
	// latEMA is the exponential moving average of commit latency;
	// baseline is the smallest EMA observed since the last decrease —
	// "flat" means within inflationFactor of it. baseline relaxes
	// additively toward the EMA so a permanent shift in service time
	// (bigger ops, slower disk) becomes the new normal instead of a
	// perpetual congestion signal.
	latEMA   float64 // seconds; 0 = no sample yet
	baseline float64 // seconds; 0 = no sample yet
	holdoff  int     // commit samples to ignore after a decrease
}

// Controller tuning constants. Deliberately few: everything else derives
// from the observed signals.
const (
	// batchEMAWeight is the weight of a new commit-latency sample.
	batchEMAWeight = 0.2
	// batchInflationFactor is how far the latency EMA may rise above the
	// baseline before the window is cut.
	batchInflationFactor = 2.0
	// batchBaselineRelax drifts the baseline toward the current EMA by
	// this fraction of the gap per sample, so regime changes re-anchor.
	batchBaselineRelax = 0.05
	// batchDecreaseHoldoff is how many commit samples after a decrease
	// are observed but not acted on (the in-flight batches were sized by
	// the old window).
	batchDecreaseHoldoff = 8
)

// unboundedBatchCeiling stands in for "no static cap" (MaxBatch <= 0,
// which the static path treats as unbounded): latency feedback, not the
// ceiling, becomes the effective bound.
const unboundedBatchCeiling = 1 << 16

// newBatchController starts at the floor and grows, TCP-slow-start style:
// an idle primary proposes immediately (window 1 ≈ no batching), and a
// loaded one earns its window from evidence.
func newBatchController(ceiling int) *batchController {
	if ceiling < 1 {
		ceiling = unboundedBatchCeiling
	}
	return &batchController{window: 1, ceiling: ceiling}
}

// size returns the current batch-size bound.
func (bc *batchController) size() int { return bc.window }

// observeBatch feeds one proposed batch's occupancy: n requests proposed
// against the window in force. Growth happens here — a full window with
// flat latency is the signal that load is being clipped.
func (bc *batchController) observeBatch(n int) {
	if n < bc.window || bc.window >= bc.ceiling {
		return
	}
	if bc.latEMA > bc.inflationBound() {
		return // latency already elevated: do not grow into congestion
	}
	bc.window++
}

// observeCommit feeds one commit-latency sample (propose → commit
// certificate at the primary). Decrease happens here.
func (bc *batchController) observeCommit(d time.Duration) {
	s := d.Seconds()
	if s < 0 {
		return
	}
	if bc.latEMA == 0 {
		bc.latEMA = s
	} else {
		bc.latEMA = (1-batchEMAWeight)*bc.latEMA + batchEMAWeight*s
	}
	if bc.baseline == 0 || bc.latEMA < bc.baseline {
		bc.baseline = bc.latEMA
	} else {
		// Relax toward the EMA so a durable latency shift becomes the
		// new baseline instead of triggering decreases forever.
		bc.baseline += batchBaselineRelax * (bc.latEMA - bc.baseline)
	}
	if bc.holdoff > 0 {
		bc.holdoff--
		return
	}
	if bc.latEMA > bc.inflationBound() && bc.window > 1 {
		bc.window /= 2
		if bc.window < 1 {
			bc.window = 1
		}
		bc.holdoff = batchDecreaseHoldoff
		// The congestion evidence is consumed; measure the halved
		// window against a fresh anchor.
		bc.baseline = bc.latEMA
	}
}

// inflationBound is the latency above which the window stops growing and
// (past the holdoff) shrinks.
func (bc *batchController) inflationBound() float64 {
	return bc.baseline * batchInflationFactor
}

// batchWindow resolves the batch-size bound in force for the next
// pre-prepare: the adaptive window when the controller runs, the static
// MaxBatch otherwise.
func (r *Replica) batchWindow() int {
	if r.batchCtl != nil {
		return r.batchCtl.size()
	}
	return r.cfg.Opts.MaxBatch
}
